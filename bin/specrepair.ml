(* specrepair — command-line front end.

   Subcommands: parse, analyze, repair, evaluate, domains.  `evaluate`
   regenerates the paper's tables and figures (optionally on a stratified
   sample for quick runs). *)

open Cmdliner
module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Repair = Specrepair_repair
module Llm = Specrepair_llm
module Benchmarks = Specrepair_benchmarks
module Eval = Specrepair_eval

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Load + frontend-check a spec, rendering positioned diagnostics.
   Warnings go to stderr; an error renders with its caret line and exits
   1 (a diagnostic is a verdict on the input, not a usage error). *)
let load_env path =
  let src = read_file path in
  match Alloy.Frontend.check ~file:path src with
  | Ok ok ->
      List.iter
        (fun w -> prerr_endline (Alloy.Diagnostic.render ~source:src w))
        ok.Alloy.Frontend.warnings;
      ok.Alloy.Frontend.env
  | Error d ->
      prerr_endline (Alloy.Diagnostic.render ~source:src d);
      exit 1

(* [--jobs 0], negative [--jobs] and [--sample 0] are always mistakes:
   reject them at parse time with a usage error instead of forking zero
   workers or running an empty study. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ | None -> Error (`Msg "expected a positive integer")
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let nonneg_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ | None -> Error (`Msg "expected a non-negative integer")
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

(* Solving options shared by [sat], [repair] and [evaluate]. *)
let simplify_flag =
  Arg.(
    value & flag
    & info [ "simplify" ]
        ~doc:
          "Route SAT solving through the proof-preserving simplifier: \
           preprocessing (subsumption, self-subsuming resolution, \
           vivification, bounded variable elimination) plus periodic \
           inprocessing between conflict-budgeted solve chunks.")

let portfolio_arg =
  Arg.(
    value
    & opt positive_int 1
    & info [ "portfolio" ] ~docv:"N"
        ~doc:
          "Race $(docv) diversified solver configurations (seed, restart \
           schedule, phase polarity, simplification) in forked workers; \
           the first verdict wins.  $(b,1) (the default) solves in-process.")

(* The simulated-LLM profile, shared by [repair], [evaluate] and
   [hybrid-table].  An [Arg.enum] over the panel registry rejects unknown
   names at parse time (usage error, exit 124) — a typoed profile must
   never fall back silently to the default model. *)
let profile_conv =
  Arg.enum
    (List.map (fun (p : Llm.Model.profile) -> (p.Llm.Model.name, p)) Llm.Model.panel)

let profile_arg =
  Arg.(
    value
    & opt profile_conv Llm.Model.gpt4
    & info [ "profile" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Simulated LLM profile for the LLM-backed engines: one of %s."
             (String.concat ", " Llm.Model.panel_names)))

(* {2 parse} *)

let parse_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let pretty =
    Arg.(
      value & flag
      & info [ "pretty" ]
          ~doc:"Reprint the parsed specification as Alloy source on stdout")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json-diagnostics" ]
          ~doc:
            "Report diagnostics as a JSON array on stdout instead of \
             rendering them on stderr")
  in
  let run file pretty json =
    let src = read_file file in
    let print_json ds =
      print_endline
        ("[" ^ String.concat "," (List.map Alloy.Diagnostic.to_json ds) ^ "]")
    in
    match Alloy.Frontend.check ~file src with
    | Ok ok ->
        if json then print_json ok.Alloy.Frontend.warnings
        else
          List.iter
            (fun w -> prerr_endline (Alloy.Diagnostic.render ~source:src w))
            ok.Alloy.Frontend.warnings;
        if pretty then print_string (Alloy.Pretty.source ok.Alloy.Frontend.spec);
        `Ok ()
    | Error d ->
        if json then print_json [ d ]
        else prerr_endline (Alloy.Diagnostic.render ~source:src d);
        exit 1
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:
         "Parse, elaborate and type-check a specification through the Alloy \
          4.2 frontend; exit 0 if it is well-formed")
    Term.(ret (const run $ file $ pretty $ json))

(* {2 analyze} *)

let analyze_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    match load_env file with
    | env ->
        if env.Alloy.Typecheck.spec.commands = [] then
          print_endline "no commands to run"
        else
          List.iter
            (fun (c : Alloy.Ast.command) ->
              let label =
                match c.cmd_kind with
                | Alloy.Ast.Run_pred n -> "run " ^ n
                | Alloy.Ast.Run_fmla _ -> "run {...}"
                | Alloy.Ast.Check n -> "check " ^ n
              in
              match Solver.Analyzer.run_command env c with
              | Solver.Analyzer.Sat inst ->
                  Format.printf "%s: SAT@.%a@." label Alloy.Instance.pp inst
              | Solver.Analyzer.Unsat -> Format.printf "%s: UNSAT@." label
              | Solver.Analyzer.Unknown -> Format.printf "%s: UNKNOWN@." label)
            env.Alloy.Typecheck.spec.commands;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run every command of a specification")
    Term.(ret (const run $ file))

(* {2 repair} *)

let repair_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let tool =
    Arg.(
      value
      & opt
          (enum
             [
               ("beafix", `Beafix);
               ("atr", `Atr);
               ("multi-round", `Multi);
               ("portfolio", `Portfolio);
             ])
          `Beafix
      & info [ "tool" ]
          ~doc:"Repair engine: beafix, atr, multi-round, or portfolio")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock deadline for the whole repair (monotonic clock). \
             Expired runs return their best effort with timed out: true.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:"Print the session's telemetry as one JSON line on stderr")
  in
  let learned =
    Arg.(
      value & flag
      & info [ "learned" ]
          ~doc:
            "With $(b,--tool portfolio): order the runnable techniques by \
             the mined statistics in $(b,--stats) (expected value per \
             millisecond for the task's defect class) and race the top of \
             the ranking under the deadline.  Without statistics for the \
             class the static ATR $(i,then) Multi-Round pipeline runs \
             unchanged.")
  in
  let stats_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Learned-portfolio statistics file (written by \
             $(b,hybrid-table --stats-out) or mined from telemetry).  A \
             tampered or truncated file is rejected loudly.")
  in
  let run file tool seed deadline_ms telemetry learned stats_file profile
      simplify portfolio =
    match load_env file with
    | env ->
        let session =
          Repair.Session.create ~seed ?deadline_ms ~simplify ~portfolio env
        in
        let result =
          match tool with
          | `Beafix -> Repair.Beafix.repair ~session env
          | `Atr -> Repair.Atr.repair ~session env
          | `Multi ->
              let task =
                Llm.Task.make ~spec_id:file ~domain:"cli"
                  ~faulty:env.Alloy.Typecheck.spec ()
              in
              Llm.Multi_round.repair ~session ~profile task
                Llm.Multi_round.Generic
          | `Portfolio ->
              let task =
                Llm.Task.make ~spec_id:file ~domain:"cli"
                  ~faulty:env.Alloy.Typecheck.spec ()
              in
              if learned || Option.is_some stats_file then begin
                let stats =
                  match stats_file with
                  | None -> None
                  | Some path -> (
                      try Some (Eval.Learned.load path)
                      with Eval.Learned.Corrupt_stats msg ->
                        Printf.eprintf "repair: statistics rejected: %s\n%!"
                          msg;
                        exit 1)
                in
                let o =
                  Eval.Portfolio.repair_learned ~session ~profile ?stats task
                in
                Printf.eprintf "plan: class %s, %s%s\n%!"
                  o.Eval.Portfolio.chosen_plan.Eval.Portfolio.defect_class
                  (if o.chosen_plan.Eval.Portfolio.learned then "learned"
                   else "cold start (static pipeline)")
                  (match o.attempted with
                  | [] -> ""
                  | ts -> "; attempted " ^ String.concat ", " ts);
                o.Eval.Portfolio.result
              end
              else fst (Eval.Portfolio.repair ~session ~profile task)
        in
        Format.printf
          "tool: %s@.repaired: %b@.candidates tried: %d@.timed out: %b@.@.%s"
          result.Repair.Common.tool result.repaired result.candidates_tried
          result.timed_out
          (Alloy.Pretty.spec_to_string result.final_spec);
        if telemetry then
          prerr_endline
            (Repair.Session.telemetry_json
               ~extra:[ ("tool", result.Repair.Common.tool) ]
               session);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:"Repair a faulty specification against its own commands")
    Term.(
      ret
        (const run $ file $ tool $ seed $ deadline_ms $ telemetry $ learned
       $ stats_file $ profile_arg $ simplify_flag $ portfolio_arg))

(* {2 domains} *)

let domains_cmd =
  let run () =
    Printf.printf "%-14s %-8s %6s  %s\n" "domain" "bench" "count" "fault mix";
    List.iter
      (fun (d : Benchmarks.Domains.t) ->
        Printf.printf "%-14s %-8s %6d  %s\n" d.name
          (Benchmarks.Domains.benchmark_to_string d.benchmark)
          d.count
          (String.concat ", "
             (List.map (fun (c, w) -> Printf.sprintf "%s:%.2f" c w) d.fault_mix)))
      Benchmarks.Domains.all;
    Printf.printf "\nTotal: A4F %d + ARepair %d = %d\n"
      (Benchmarks.Domains.total_count Benchmarks.Domains.A4F)
      (Benchmarks.Domains.total_count Benchmarks.Domains.ARepair_bench)
      (Benchmarks.Domains.total_count Benchmarks.Domains.A4F
      + Benchmarks.Domains.total_count Benchmarks.Domains.ARepair_bench)
  in
  Cmd.v (Cmd.info "domains" ~doc:"List benchmark domains") Term.(const run $ const ())

(* {2 evaluate} *)

let evaluate_cmd =
  let sample =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "sample" ] ~docv:"N" ~doc:"Use only the first N variants per domain")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let jobs =
    Arg.(
      value
      & opt positive_int 1
      & info [ "jobs"; "j" ] ~doc:"Parallel worker processes")
  in
  let retries =
    Arg.(
      value
      & opt nonneg_int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "How many times a chunk of study rows may be requeued after its \
             worker dies before the run fails (parallel runs only)")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress per-chunk progress messages on stderr")
  in
  let what =
    Arg.(
      value
      & opt_all (enum [ ("table1", `T1); ("fig2", `F2); ("fig3", `F3); ("table2", `T2); ("table3", `T3); ("summary", `S) ]) []
      & info [ "show" ]
          ~doc:
            "Artifacts to print (default: all of table1, fig2, fig3, \
             table2, summary; $(b,table3) — the model-panel union coverage \
             — is opt-in)")
  in
  let profiles =
    Arg.(
      value
      & opt_all profile_conv []
      & info [ "profile" ] ~docv:"NAME"
          ~doc:
            "Add this simulated-LLM profile's techniques to the study \
             roster (repeatable).  Default: the paper's roster, i.e. the \
             gpt-4 profile only.")
  in
  let csv_out =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write raw results CSV")
  in
  let csv_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "from-csv" ] ~docv:"FILE" ~doc:"Render from a cached results CSV instead of running")
  in
  let artifacts_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts-dir" ] ~docv:"DIR"
          ~doc:"Also write table1.csv, fig2.csv, fig3.csv, table2.csv to DIR")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-row wall-clock deadline (monotonic clock)")
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:"Write per-row telemetry as JSON lines to FILE")
  in
  let run_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "run-dir" ] ~docv:"DIR"
          ~doc:
            "Stream the study through the checkpoint/resume scheduler: \
             result shards and a manifest land in $(docv) as chunks \
             complete, so a crashed run can be picked up with \
             $(b,--resume).  Tables are rendered from the merged shards.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume the checkpointed run in $(b,--run-dir): validate the \
             manifest and its shards, then compute only the pending rows.")
  in
  let run sample seed jobs retries quiet what profiles csv_out csv_in
      artifacts_dir deadline_ms telemetry_out simplify portfolio run_dir
      resume =
    (* conflicting corpus selections are usage errors, caught before any
       work: the streamed corpus is an index range, a per-domain sample is
       not, and a resumed run's corpus is fixed by its manifest *)
    if resume && Option.is_none run_dir then
      `Error (true, "--resume requires --run-dir (the checkpoint to resume)")
    else if Option.is_some sample && resume then
      `Error
        ( true,
          "--sample cannot be combined with --resume: the resumed corpus is \
           fixed by the run directory's manifest" )
    else if Option.is_some sample && Option.is_some run_dir then
      `Error
        ( true,
          "--sample cannot be combined with --run-dir: streamed runs index \
           the full corpus" )
    else begin
      (* the paper's twelve-technique roster unless profiles widen it: the
         four traditional engines plus each requested profile's LLM
         techniques (labelled with an @profile suffix past the default) *)
      let techniques =
        match profiles with
        | [] -> Eval.Technique.all
        | ps ->
            Eval.Technique.traditional
            @ List.concat_map Eval.Technique.llm_for ps
      in
      let telemetry_chan = Option.map open_out telemetry_out in
      let telemetry =
        Option.map
          (fun oc line ->
            output_string oc line;
            output_char oc '\n')
          telemetry_chan
      in
      let progress =
        if quiet then fun _ -> () else fun msg -> Printf.eprintf "  %s\n%!" msg
      in
      let results =
        match csv_in with
        | Some path -> Eval.Study.of_csv (read_file path)
        | None -> (
            match run_dir with
            | Some dir ->
                let total = Eval.Corpus_stream.natural_total () in
                if not quiet then
                  Printf.eprintf
                    "streaming %d variants x %d techniques into %s%s...\n%!"
                    total
                    (List.length techniques)
                    dir
                    (if resume then " (resume)" else "");
                ignore
                  (Eval.Study.run_stream ~seed ~jobs ~max_retries:retries
                     ?deadline_ms ?telemetry ~simplify ~portfolio ~techniques
                     ~progress ~resume ~dir ~total ());
                (* lazy merge of the shards, then the usual renderers *)
                let buf = Buffer.create 65536 in
                ignore
                  (Eval.Scheduler.fold_shards ~dir
                     (fun n _i line ->
                       Buffer.add_string buf line;
                       Buffer.add_char buf '\n';
                       n + 1)
                     0);
                Eval.Study.of_csv (Buffer.contents buf)
            | None ->
                let variants =
                  match sample with
                  | Some n -> Benchmarks.Generate.sample ~seed ~per_domain:n ()
                  | None -> Benchmarks.Generate.all ~seed ()
                in
                if not quiet then
                  Printf.eprintf "running %d variants x %d techniques...\n%!"
                    (List.length variants)
                    (List.length techniques);
                Eval.Study.run_parallel ~seed ~jobs ~max_retries:retries
                  ?deadline_ms ?telemetry ~simplify ~portfolio ~techniques
                  ~progress variants)
      in
      Option.iter close_out telemetry_chan;
      (match csv_out with
      | Some path ->
          let oc = open_out path in
          output_string oc (Eval.Study.to_csv results);
          close_out oc
      | None -> ());
      (match artifacts_dir with
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          List.iter
            (fun (name, text) ->
              let oc = open_out (Filename.concat dir name) in
              output_string oc text;
              close_out oc)
            [
              ("table1.csv", Eval.Tables.table1_csv results);
              ("fig2.csv", Eval.Tables.fig2_csv results);
              ("fig3.csv", Eval.Tables.fig3_csv results);
              ("table2.csv", Eval.Tables.table2_csv results);
            ]
      | None -> ());
      let what = if what = [] then [ `T1; `F2; `F3; `T2; `S ] else what in
      List.iter
        (fun w ->
          let text =
            match w with
            | `T1 -> Eval.Tables.table1 results
            | `F2 -> Eval.Tables.fig2 results
            | `F3 -> Eval.Tables.fig3 results
            | `T2 -> Eval.Tables.table2 results
            | `T3 -> Eval.Tables.panel_table results
            | `S -> Eval.Tables.summary results
          in
          print_endline text)
        what;
      `Ok ()
    end
  in
  let run sample seed jobs retries quiet what profiles csv_out csv_in
      artifacts_dir deadline_ms telemetry_out simplify portfolio run_dir
      resume =
    try
      run sample seed jobs retries quiet what profiles csv_out csv_in
        artifacts_dir deadline_ms telemetry_out simplify portfolio run_dir
        resume
    with Eval.Manifest.Corrupt msg ->
      Printf.eprintf "evaluate: checkpoint rejected: %s\n%!" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"Run the study and regenerate the paper's tables and figures")
    Term.(
      ret
        (const run $ sample $ seed $ jobs $ retries $ quiet $ what $ profiles
        $ csv_out $ csv_in $ artifacts_dir $ deadline_ms $ telemetry_out
        $ simplify_flag $ portfolio_arg $ run_dir $ resume))

(* {2 hybrid-table} *)

let hybrid_table_cmd =
  let sample =
    Arg.(
      value & opt positive_int 1
      & info [ "sample" ] ~docv:"N"
          ~doc:"Variants per domain for the panel study (default 1)")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let csv_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "from-csv" ] ~docv:"FILE"
          ~doc:
            "Render from a cached results CSV (e.g. a full \
             $(b,evaluate --profile …) run) instead of running the panel \
             study")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the raw panel-study CSV")
  in
  let table_csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "table-csv" ] ~docv:"FILE"
          ~doc:"Write the coverage table itself as CSV")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:
            "Mine the results into a learned-portfolio statistics file \
             (digest-protected; feed it back via $(b,repair --tool \
             portfolio --stats))")
  in
  let run sample seed csv_in csv_out table_csv_out stats_out =
    let results =
      match csv_in with
      | Some path -> Eval.Study.of_csv (read_file path)
      | None ->
          (* one Multi-Round/Auto run per panel profile: the cheapest
             roster that still exercises every profile on every sampled
             variant, deterministic for the given seed *)
          let variants = Benchmarks.Generate.sample ~seed ~per_domain:sample () in
          let techniques =
            List.map
              (fun p -> Eval.Technique.Multi (Llm.Multi_round.Auto, p))
              Llm.Model.panel
          in
          Eval.Study.run ~seed ~techniques variants
    in
    let write path text =
      let oc = open_out path in
      output_string oc text;
      close_out oc
    in
    Option.iter (fun p -> write p (Eval.Study.to_csv results)) csv_out;
    Option.iter (fun p -> write p (Eval.Tables.panel_table_csv results)) table_csv_out;
    Option.iter
      (fun p ->
        let stats = Eval.Learned.empty () in
        Eval.Learned.add_rows stats results;
        Eval.Learned.save stats p)
      stats_out;
    print_string (Eval.Tables.panel_table results)
  in
  Cmd.v
    (Cmd.info "hybrid-table"
       ~doc:
         "Run the model-panel study and print the hybrid coverage table \
          (the paper's Table II union analysis extended across the \
          profile panel), optionally mining the results into a \
          learned-portfolio statistics file")
    Term.(
      const run $ sample $ seed $ csv_in $ csv_out $ table_csv_out $ stats_out)

(* {2 study} *)

let study_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Checkpoint directory: receives the manifest and one result \
             shard per completed chunk.  Must be empty (or absent) unless \
             $(b,--resume) is given.")
  in
  let total =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "total" ] ~docv:"N"
          ~doc:
            "Corpus size: rows are derived on demand from global variant \
             indices 0..N-1, so N can exceed the natural corpus (indices \
             wrap into fresh derivation epochs).  Default: the natural \
             corpus size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let jobs =
    Arg.(
      value
      & opt positive_int 1
      & info [ "jobs"; "j" ] ~doc:"Parallel worker processes")
  in
  let retries =
    Arg.(
      value
      & opt nonneg_int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "How many times a chunk may be requeued after its worker dies \
             before the run fails")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Pick up a crashed run: validate DIR's manifest and every \
             recorded shard, then compute only the pending rows.")
  in
  let techniques =
    let tech_conv =
      Arg.conv
        ( (fun s ->
            match Eval.Technique.of_name s with
            | Some t -> Ok t
            | None ->
                Error
                  (`Msg
                     (Printf.sprintf "unknown technique %S (expected one of %s)"
                        s
                        (String.concat ", "
                           (List.map Eval.Technique.name Eval.Technique.all))))),
          fun ppf t -> Format.pp_print_string ppf (Eval.Technique.name t) )
    in
    Arg.(
      value
      & opt_all tech_conv []
      & info [ "technique" ] ~docv:"NAME"
          ~doc:
            "Restrict the study to this technique (repeatable; default: all \
             twelve)")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:
            "Where to write the merged results CSV once the run is complete \
             (default: DIR/results.csv)")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress progress messages on stderr")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-row wall-clock deadline (monotonic clock)")
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:"Write scheduler telemetry as JSON lines to FILE")
  in
  let run dir total seed jobs retries resume techniques csv_out quiet
      deadline_ms telemetry_out simplify portfolio =
    let techniques =
      if techniques = [] then Eval.Technique.all else techniques
    in
    let total =
      match total with
      | Some n -> n
      | None -> Eval.Corpus_stream.natural_total ()
    in
    let telemetry_chan = Option.map open_out telemetry_out in
    let telemetry =
      Option.map
        (fun oc line ->
          output_string oc line;
          output_char oc '\n')
        telemetry_chan
    in
    let progress =
      if quiet then fun _ -> () else fun msg -> Printf.eprintf "  %s\n%!" msg
    in
    if not quiet then
      Printf.eprintf "study: %d variants x %d techniques -> %s%s\n%!" total
        (List.length techniques) dir
        (if resume then " (resume)" else "");
    (try
       ignore
         (Eval.Study.run_stream ~seed ~jobs ~max_retries:retries ?deadline_ms
            ?telemetry ~simplify ~portfolio ~techniques ~progress ~resume ~dir
            ~total ())
     with
     | Eval.Manifest.Corrupt msg ->
         Printf.eprintf "study: checkpoint rejected: %s\n%!" msg;
         exit 1
     | Failure msg ->
         Printf.eprintf "study: %s\n%!" msg;
         exit 1);
    Option.iter close_out telemetry_chan;
    let csv = Option.value csv_out ~default:(Filename.concat dir "results.csv") in
    let oc = open_out csv in
    let rows = Eval.Study.write_stream_csv ~dir oc in
    close_out oc;
    Printf.printf "study: %d rows -> %s\n%!" rows csv
  in
  Cmd.v
    (Cmd.info "study"
       ~doc:
         "Run a streaming study with checkpoint/resume: rows are generated \
          on demand, results land in sharded files as chunks complete, and \
          a killed run restarts from its manifest with $(b,--resume)")
    Term.(
      const run $ dir $ total $ seed $ jobs $ retries $ resume $ techniques
      $ csv_out $ quiet $ deadline_ms $ telemetry_out $ simplify_flag
      $ portfolio_arg)

(* {2 sat / check-proof} *)

let proof_format =
  Arg.enum
    [ ("text", Specrepair_sat.Proof.Text); ("binary", Specrepair_sat.Proof.Binary) ]

let format_arg =
  Arg.(
    value
    & opt proof_format Specrepair_sat.Proof.Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Proof file format: $(b,text) (classic DRUP) or $(b,binary) (DRAT).")

let sat_cmd =
  let module Sat = Specrepair_sat in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"CNF") in
  let proof =
    Arg.(
      value
      & opt (some string) None
      & info [ "proof" ] ~docv:"FILE"
          ~doc:
            "Stream a DRUP proof of the run to $(docv); for unsatisfiable \
             inputs the file is a certificate $(b,check-proof) can verify \
             against the CNF.")
  in
  let run file proof format simplify portfolio =
    match Sat.Dimacs.parse (read_file file) with
    | exception Sat.Dimacs.Parse_error msg -> `Error (false, msg)
    | cnf ->
        let oc = Option.map open_out_bin proof in
        let sink = Option.map (Sat.Proof.file_sink format) oc in
        (* Stats go to stderr so stdout stays byte-identical across solving
           options (for equal verdicts; models may legitimately differ). *)
        let emit result value =
          match result with
          | Sat.Solver.Sat ->
              let buf = Buffer.create 64 in
              for v = 0 to cnf.Sat.Dimacs.num_vars - 1 do
                Buffer.add_string buf
                  (Printf.sprintf " %d" (if value v then v + 1 else -(v + 1)))
              done;
              Printf.printf "s SATISFIABLE\nv%s 0\n" (Buffer.contents buf)
          | Sat.Solver.Unsat -> print_endline "s UNSATISFIABLE"
          | Sat.Solver.Unknown -> print_endline "s UNKNOWN"
        in
        let of_model model v =
          match model with Some m -> v < Array.length m && m.(v) | None -> false
        in
        if portfolio > 1 then begin
          let o = Sat.Portfolio.solve ~jobs:portfolio ~simplify ?proof:sink cnf in
          Option.iter close_out oc;
          Printf.eprintf "c portfolio: winner %d of %d worker(s), %d rejected\n"
            o.Sat.Portfolio.winner o.workers o.rejected;
          emit o.result (of_model o.model)
        end
        else if simplify then begin
          let r = Sat.Simplify.solve ?proof:sink cnf in
          Option.iter close_out oc;
          let st = r.Sat.Simplify.sstats in
          Printf.eprintf
            "c simplify: %d subsumed, %d strengthened, %d vivified, %d \
             eliminated; %d conflicts, %d propagations, %d restarts\n"
            st.Sat.Simplify.subsumed st.strengthened st.vivified st.eliminated
            r.Sat.Simplify.conflicts r.propagations r.restarts;
          emit r.result (of_model r.model)
        end
        else begin
          let s = Sat.Solver.create () in
          Option.iter (fun sink -> Sat.Solver.set_proof s (Some sink)) sink;
          Sat.Dimacs.load_into s cnf;
          let result = Sat.Solver.solve s in
          Option.iter close_out oc;
          emit result (Sat.Solver.value s)
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "sat"
       ~doc:
         "Solve a DIMACS CNF file, optionally logging a DRUP proof of the run")
    Term.(
      ret (const run $ file $ proof $ format_arg $ simplify_flag $ portfolio_arg))

let check_proof_cmd =
  let module Sat = Specrepair_sat in
  let cnf_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"CNF") in
  let proof_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"PROOF")
  in
  let run cnf_file proof_file format =
    match Sat.Dimacs.parse (read_file cnf_file) with
    | exception Sat.Dimacs.Parse_error msg -> `Error (false, msg)
    | cnf -> (
        match Sat.Drat.check_file ~cnf ~format proof_file with
        | Ok () ->
            print_endline "proof accepted";
            `Ok ()
        | Error msg ->
            (* a bad certificate is a verification verdict, not a usage
               error: report it on stderr and exit 1 (cmdliner's `Error
               path would exit 124) *)
            Printf.eprintf "proof rejected: %s\n" msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "check-proof"
       ~doc:
         "Verify a DRUP proof against its CNF with the independent checker: \
          exit 0 and print 'proof accepted' if the certificate derives a \
          conflict by reverse unit propagation, exit 1 with the offending \
          step otherwise")
    Term.(ret (const run $ cnf_file $ proof_file $ format_arg))

(* {2 fuzz} *)

let fuzz_cmd =
  let module Fuzz = Specrepair_fuzz.Harness in
  let target =
    let target_conv =
      Arg.enum
        (List.map (fun t -> (Fuzz.target_name t, t)) Fuzz.all_targets)
    in
    Arg.(
      value
      & opt (some target_conv) None
      & info [ "target" ] ~docv:"TARGET"
          ~doc:
            "Fuzz a single target ($(b,sat), $(b,solver), $(b,oracle), \
             $(b,eval), $(b,proof), $(b,simplify), $(b,parse), \
             $(b,stream) or $(b,panel)); default: all nine.")
  in
  let seed =
    Arg.(
      value & opt nonneg_int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (reproducible).")
  in
  let iters =
    Arg.(
      value & opt positive_int 200
      & info [ "iters" ] ~docv:"N" ~doc:"Iterations per target.")
  in
  let corpus_dir =
    Arg.(
      value
      & opt string "artifacts/fuzz"
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:"Where shrunk failing inputs are persisted.")
  in
  let run seed iters target corpus_dir =
    let targets =
      match target with None -> Fuzz.all_targets | Some t -> [ t ]
    in
    let reports =
      List.map (fun t -> Fuzz.run ~corpus_dir t ~seed ~iters ()) targets
    in
    print_endline (Fuzz.summary_json ~corpus_dir ~seed reports);
    let total =
      List.fold_left
        (fun n (r : Fuzz.report) -> n + r.discrepancies)
        0 reports
    in
    if total > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: cross-check the \
          SAT/solver/oracle/eval/proof/simplify/parse/stream/panel stack \
          against independent reference oracles")
    Term.(const run $ seed $ iters $ target $ corpus_dir)

(* {2 serve / client} *)

let serve_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let serve_tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"TCP port on 127.0.0.1")

let serve_cmd =
  let module Serve = Specrepair_serve in
  let workers =
    Arg.(
      value & opt positive_int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker processes.  Requests route stickily (by payload digest) \
             over the workers, so warm caches accrue per worker.")
  in
  let max_sessions =
    Arg.(
      value & opt positive_int 32
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Warm sessions kept per worker (LRU beyond this bound)")
  in
  let max_inflight =
    Arg.(
      value & opt positive_int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission bound on requests in the system (dispatched + \
             queued); beyond it requests are refused with an immediate \
             $(b,overloaded) reply")
  in
  let queue_depth =
    Arg.(
      value & opt positive_int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Bound on the wait queue alone")
  in
  let max_request_bytes =
    Arg.(
      value
      & opt positive_int (8 * 1024 * 1024)
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Request lines beyond this are refused as $(b,oversized)")
  in
  let hard_timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "hard-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Hard SIGKILL backstop for requests without their own \
             deadline_ms (requests with one get 3 x deadline + 2 s)")
  in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:"Append per-request telemetry as JSON lines to FILE")
  in
  let run socket tcp workers max_sessions max_inflight queue_depth
      max_request_bytes hard_timeout_ms telemetry =
    match (socket, tcp) with
    | None, None -> `Error (true, "serve needs --socket PATH or --tcp PORT")
    | _ ->
        Serve.Daemon.run
          {
            Serve.Daemon.socket;
            tcp;
            workers;
            max_sessions;
            max_inflight;
            queue_depth;
            max_request_bytes;
            hard_timeout_ms;
            telemetry;
          };
        `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the repair daemon: answer concurrent repair / evaluate / sat \
          / status requests over a Unix-domain socket (or TCP) as \
          newline-delimited JSON, from warm per-worker sessions; SIGTERM \
          shuts down cleanly")
    Term.(
      ret
        (const run $ serve_socket_arg $ serve_tcp_arg $ workers $ max_sessions
       $ max_inflight $ queue_depth $ max_request_bytes $ hard_timeout_ms
       $ telemetry))

let client_cmd =
  let module Serve = Specrepair_serve in
  let meth =
    Arg.(
      value
      & pos 0
          (some
             (enum
                [
                  ("repair", `Repair);
                  ("evaluate", `Evaluate);
                  ("sat", `Sat);
                  ("status", `Status);
                ]))
          None
      & info [] ~docv:"METHOD"
          ~doc:"repair, evaluate, sat, or status (omit with $(b,--raw))")
  in
  let payload =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Payload file: an Alloy spec for repair/evaluate, a DIMACS CNF \
             for sat")
  in
  let tool =
    Arg.(
      value
      & opt (some string) None
      & info [ "tool" ]
          ~doc:"Repair engine: beafix, atr, multi-round, or portfolio")
  in
  let profile =
    (* a plain string, validated daemon-side: the client forwards the
       request and the protocol layer rejects unknown profiles with an
       invalid_request reply listing the panel *)
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"NAME"
          ~doc:
            "Simulated-LLM profile for repair/evaluate requests (validated \
             by the daemon against its panel registry)")
  in
  let seed = Arg.(value & opt (some int) None & info [ "seed" ]) in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request wall-clock deadline, enforced by the daemon")
  in
  let id =
    Arg.(
      value & opt string ""
      & info [ "id" ] ~doc:"Correlation id echoed in the reply")
  in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"JSON"
          ~doc:"Send this exact request line instead of building one")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Fault injection (honoured only by daemons running with \
             SPECREPAIR_SERVE_CHAOS=1): $(b,kill) or $(b,sleep:<ms>)")
  in
  let repeat =
    Arg.(
      value & opt positive_int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Send the request N times sequentially over one connection")
  in
  let burst =
    Arg.(
      value & opt positive_int 1
      & info [ "burst" ] ~docv:"N"
          ~doc:
            "Send N copies concurrently, one forked connection per copy \
             (overrides --repeat)")
  in
  let run meth socket tcp payload tool profile seed deadline_ms id raw chaos
      repeat burst simplify portfolio =
    let module J = Serve.Json in
    let addr =
      match (socket, tcp) with
      | Some path, _ -> Ok (Serve.Client.Unix_sock path)
      | None, Some port -> Ok (Serve.Client.Tcp ("127.0.0.1", port))
      | None, None -> Error "client needs --socket PATH or --tcp PORT"
    in
    let opt_field name v f ps =
      match v with None -> ps | Some x -> ps @ [ (name, f x) ]
    in
    let line =
      match raw with
      | Some l -> Ok l
      | None -> (
          match meth with
          | None ->
              Error "client needs a METHOD (repair|evaluate|sat|status) or --raw"
          | Some m ->
              let name =
                match m with
                | `Repair -> "repair"
                | `Evaluate -> "evaluate"
                | `Sat -> "sat"
                | `Status -> "status"
              in
              let params =
                match m with
                | `Status -> Ok []
                | `Sat -> (
                    match payload with
                    | None -> Error "sat needs --file CNF"
                    | Some f ->
                        Ok
                          (opt_field "chaos" chaos
                             (fun c -> J.Str c)
                             [ ("dimacs", J.Str (read_file f)) ]))
                | `Repair | `Evaluate -> (
                    match payload with
                    | None -> Error (name ^ " needs --file SPEC")
                    | Some f ->
                        let ps =
                          [ ("source", J.Str (read_file f)); ("file", J.Str f) ]
                        in
                        let ps =
                          if m = `Repair then
                            opt_field "tool" tool (fun t -> J.Str t) ps
                            |> opt_field "seed" seed (fun s ->
                                   J.Num (float_of_int s))
                          else ps
                        in
                        let ps =
                          opt_field "profile" profile (fun p -> J.Str p) ps
                        in
                        let ps =
                          opt_field "deadline_ms" deadline_ms
                            (fun d -> J.Num d)
                            ps
                        in
                        let ps =
                          if simplify then ps @ [ ("simplify", J.Bool true) ]
                          else ps
                        in
                        let ps =
                          if portfolio > 1 then
                            ps
                            @ [ ("portfolio", J.Num (float_of_int portfolio)) ]
                          else ps
                        in
                        Ok (opt_field "chaos" chaos (fun c -> J.Str c) ps))
              in
              Result.map
                (fun ps ->
                  J.to_string
                    (J.Obj
                       [
                         ("id", J.Str id);
                         ("method", J.Str name);
                         ("params", J.Obj ps);
                       ]))
                params)
    in
    match (addr, line) with
    | Error m, _ | _, Error m -> `Error (true, m)
    | Ok addr, Ok line -> (
        let replies =
          if burst > 1 then
            Serve.Client.burst addr (List.init burst (fun _ -> line))
          else
            match Serve.Client.connect addr with
            | Error m -> Error m
            | Ok c ->
                let rec go acc n =
                  if n = 0 then Ok (List.rev acc)
                  else
                    match Serve.Client.roundtrip c line with
                    | Ok r -> go (r :: acc) (n - 1)
                    | Error m -> Error m
                in
                let r = go [] repeat in
                Serve.Client.close c;
                r
        in
        match replies with
        | Error m ->
            Printf.eprintf "client: %s\n" m;
            exit 1
        | Ok rs ->
            List.iter print_endline rs;
            if List.for_all Serve.Protocol.reply_is_ok rs then `Ok ()
            else exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send requests to a running repair daemon and print the reply \
          lines; exit 0 only if every reply reports ok")
    Term.(
      ret
        (const run $ meth $ serve_socket_arg $ serve_tcp_arg $ payload $ tool
       $ profile $ seed $ deadline_ms $ id $ raw $ chaos $ repeat $ burst
       $ simplify_flag $ portfolio_arg))

let () =
  let info =
    Cmd.info "specrepair" ~version:"1.0.0"
      ~doc:
        "Alloy specification repair: traditional and LLM-based techniques \
         (DSN'25 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            parse_cmd;
            analyze_cmd;
            repair_cmd;
            domains_cmd;
            evaluate_cmd;
            hybrid_table_cmd;
            study_cmd;
            sat_cmd;
            check_proof_cmd;
            fuzz_cmd;
            serve_cmd;
            client_cmd;
          ]))
