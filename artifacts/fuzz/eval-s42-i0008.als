// specrepair fuzz regression eval-s42-i0008 (seed 42)
// pinned-translation vs direct-evaluation disagreement witness (fixed:
// generated instances must respect the symmetry-breaking prefix order)
sig A {
  f0: set B,
  f1: lone A
}
sig B {}

fact F0 {
  some iden <=> no f1.f0
}

pred p {
  no f1.iden
}

run { } for 2
