// A small file-system spec exercising the Alloy 4.2 surface syntax the
// frontend must accept: module header, open (ignored with a warning),
// abstract sigs with extends, multiplicity-qualified sigs, disj field
// declarations, appended sig facts, disj quantifier declarations,
// labelled commands and exactly scopes.
module filesystem

open util/ordering

abstract sig Object {}

sig File extends Object {}

sig Dir extends Object {
  disj contents, links: set Object
} {
  // appended sig fact: a directory never contains itself directly
  this not in this.contents
}

one sig Root extends Dir {}

fact Reachability {
  // every object hangs off the root through containment
  Object in Root.*contents
}

fact NoSharing {
  // distinct directories never share direct contents
  all disj d1, d2: Dir | no d1.contents & d2.contents
}

pred nonEmpty {
  some File
}

assert RootIsTop {
  no contents.Root
}

check RootIsTop for 4

check RootIsTop for exactly 3 Dir, 4 Object

run nonEmpty for 3
