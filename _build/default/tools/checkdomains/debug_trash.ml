module B = Specrepair_benchmarks
module R = Specrepair_repair
module A = Specrepair_alloy

let () =
  let d = Option.get (B.Domains.find "trash") in
  List.iter (fun i ->
    let v = List.nth (B.Generate.variants d) i in
    let inj = v.injected in
    Printf.printf "=== variant %d: class=%s\n" i inj.class_name;
    List.iter (fun m -> Format.printf "  mutation: %a@." B.Fault.Mutation.Mutate.pp m) inj.mutations;
    let env = A.Typecheck.check inj.faulty in
    let r = R.Beafix.repair env in
    Printf.printf "  beafix: claimed=%b tried=%d\n" r.repaired r.candidates_tried;
    let r = R.Atr.repair env in
    Printf.printf "  atr: claimed=%b tried=%d\n%!" r.repaired r.candidates_tried)
    [0;1;2]
