tools/checkdomains/prof2.ml: List Option Printf Specrepair_benchmarks Specrepair_eval Unix
