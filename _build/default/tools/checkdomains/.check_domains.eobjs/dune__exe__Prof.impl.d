tools/checkdomains/prof.ml: List Option Printf Specrepair_benchmarks Specrepair_eval Unix
