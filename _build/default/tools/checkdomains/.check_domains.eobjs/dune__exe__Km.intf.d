tools/checkdomains/km.mli:
