tools/checkdomains/debug_trash.ml: Format List Option Printf Specrepair_alloy Specrepair_benchmarks Specrepair_repair
