tools/checkdomains/km.ml: List Option Printf Specrepair_alloy Specrepair_benchmarks Specrepair_metrics
