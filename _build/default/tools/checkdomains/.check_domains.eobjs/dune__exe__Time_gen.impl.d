tools/checkdomains/time_gen.ml: Hashtbl List Option Printf Specrepair_benchmarks Unix
