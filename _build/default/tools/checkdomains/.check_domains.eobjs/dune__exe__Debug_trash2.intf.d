tools/checkdomains/debug_trash2.mli:
