tools/checkdomains/debug_trash.mli:
