tools/checkdomains/check_domains.ml: List Printexc Printf Specrepair_benchmarks Specrepair_repair String
