tools/checkdomains/time_gen.mli:
