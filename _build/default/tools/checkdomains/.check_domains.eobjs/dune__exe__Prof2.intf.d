tools/checkdomains/prof2.mli:
