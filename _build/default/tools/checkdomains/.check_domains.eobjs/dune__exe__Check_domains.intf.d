tools/checkdomains/check_domains.mli:
