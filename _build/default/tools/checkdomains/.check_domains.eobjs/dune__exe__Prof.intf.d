tools/checkdomains/prof.mli:
