module B = Specrepair_benchmarks
module E = Specrepair_eval
let () =
  let d = Option.get (B.Domains.find "classroom") in
  let all = B.Generate.variants d in
  let vs = List.filteri (fun i _ -> i >= 200 && i < 230) all in
  List.iter
    (fun (v : B.Generate.variant) ->
      let t0 = Unix.gettimeofday () in
      let rows = E.Study.run ~techniques:E.Technique.all [ v ] in
      let dt = (Unix.gettimeofday () -. t0) *. 1000. in
      if dt > 800. then begin
        Printf.printf "%s class=%s %.0f ms:" v.id v.injected.class_name dt;
        List.iter
          (fun (r : E.Study.spec_result) ->
            if r.time_ms > 150. then
              Printf.printf " %s=%.0fms" r.technique r.time_ms)
          rows;
        print_newline ()
      end)
    vs;
  Printf.printf "done\n"
