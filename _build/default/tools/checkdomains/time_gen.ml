let () =
  let t0 = Unix.gettimeofday () in
  let d = Option.get (Specrepair_benchmarks.Domains.find "classroom") in
  let vs = Specrepair_benchmarks.Generate.variants d in
  Printf.printf "classroom: %d variants in %.1fs\n%!" (List.length vs)
    (Unix.gettimeofday () -. t0);
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (v : Specrepair_benchmarks.Generate.variant) ->
      let c = v.injected.class_name in
      Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    vs;
  Hashtbl.iter (Printf.printf "  %-15s %d\n") counts
