module B = Specrepair_benchmarks
module M = Specrepair_metrics
let () =
  let d = Option.get (B.Domains.find "classroom") in
  let v = List.nth (B.Generate.variants d) 0 in
  let gt = v.ground_truth and f = v.injected.faulty in
  List.iter (fun decay ->
    let t1 = M.Tree_kernel.of_spec gt and t2 = M.Tree_kernel.of_spec f in
    Printf.printf "decay %.2f: SM(gt,faulty)=%.3f\n%!" decay
      (M.Tree_kernel.similarity ~decay t1 t2))
    [0.5; 0.3; 0.2; 0.1; 0.05];
  Printf.printf "TM(gt,faulty)=%.3f\n"
    (M.Bleu.token_match
       ~reference:(Specrepair_alloy.Pretty.spec_to_string gt)
       ~candidate:(Specrepair_alloy.Pretty.spec_to_string f))
