module B = Specrepair_benchmarks
module E = Specrepair_eval
let () =
  let d = Option.get (B.Domains.find "classroom") in
  let vs = List.filteri (fun i _ -> i < 8) (B.Generate.variants d) in
  List.iter
    (fun tech ->
      let t0 = Unix.gettimeofday () in
      let rows = E.Study.run ~techniques:[ tech ] vs in
      let reps = List.fold_left (fun a (r : E.Study.spec_result) -> a + r.rep) 0 rows in
      Printf.printf "%-24s %6.1f ms/variant  rep=%d/8\n%!"
        (E.Technique.name tech)
        ((Unix.gettimeofday () -. t0) *. 1000. /. 8.)
        reps)
    E.Technique.all
