module B = Specrepair_benchmarks
module R = Specrepair_repair
module A = Specrepair_alloy
module S = Specrepair_solver
module F = Specrepair_faultloc.Faultloc
module Mu = Specrepair_mutation

let () =
  let d = Option.get (B.Domains.find "trash") in
  let v = List.nth (B.Generate.variants d) 2 in
  let env = A.Typecheck.check v.injected.faulty in
  let failing = R.Common.failing_checks env in
  Printf.printf "failing checks: %s\n"
    (String.concat "," (List.map (fun (_, n, _) -> n) failing));
  (match failing with
   | (c, name, _) :: _ ->
     let a = Option.get (A.Ast.find_assert env.spec name) in
     let scope = S.Bounds.scope_of_command c in
     let cexs = R.Common.counterexamples_for ~limit:3 env name scope in
     let wits = R.Common.witnesses_for ~limit:3 env name scope in
     Printf.printf "cexs=%d wits=%d\n" (List.length cexs) (List.length wits);
     ignore a;
     let ranked = F.rank_by_instances env ~goal_of:(F.goal_of_assert name)
         ~counterexamples:cexs ~witnesses:wits () in
     List.iter (fun (l : F.location) ->
       Format.printf "  ranked: %a@." F.pp_location l) ranked
   | [] -> ());
  (* manually apply the known revert *)
  let revert_body = A.Parser.parse_fmla "no f: File | f in Trash.contents && f in Live.files" in
  let fixed = Mu.Location.with_body v.injected.faulty (Assert_site "NoBoth") revert_body in
  let env' = A.Typecheck.check fixed in
  Printf.printf "revert oracle passes: %b\n" (R.Common.oracle_passes env');
  Printf.printf "revert REP: %b\n"
    (Specrepair_metrics.Rep.rep ~ground_truth:v.ground_truth ~candidate:fixed ())
