(* Quickstart: parse a faulty specification, analyze it, repair it with a
   traditional engine, and measure the repair against the ground truth.

   Run with: dune exec examples/quickstart.exe *)

open Specrepair

let ground_truth_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  no n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

(* the same spec with a quantifier bug: "no" became "some" *)
let faulty_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let () =
  (* 1. parse and type-check *)
  let gt = Alloy.Parser.parse ground_truth_src in
  let faulty = Alloy.Parser.parse faulty_src in
  let env = Alloy.Typecheck.check faulty in
  Printf.printf "parsed faulty spec (%d AST nodes)\n\n"
    (Alloy.Ast.spec_size faulty);

  (* 2. analyze: the check command has a counterexample *)
  List.iter
    (fun (c : Alloy.Ast.command) ->
      let label =
        match c.cmd_kind with
        | Alloy.Ast.Check n -> "check " ^ n
        | Alloy.Ast.Run_pred n -> "run " ^ n
        | Alloy.Ast.Run_fmla _ -> "run {...}"
      in
      match Analyzer.run_command env c with
      | Analyzer.Sat inst ->
          Format.printf "%s: SAT@.%a@.@." label Alloy.Instance.pp inst
      | Analyzer.Unsat -> Format.printf "%s: UNSAT@.@." label
      | Analyzer.Unknown -> Format.printf "%s: UNKNOWN@.@." label)
    env.spec.commands;

  (* 3. repair with BeAFix (bounded-exhaustive, verified by the analyzer) *)
  let result = Repair.Beafix.repair env in
  Printf.printf "BeAFix: repaired=%b after %d candidates\n\n" result.repaired
    result.candidates_tried;
  print_endline (Alloy.Pretty.spec_to_string result.final_spec);

  (* 4. score the repair against the ground truth *)
  let rep =
    Metrics.Rep.rep ~ground_truth:gt ~candidate:result.final_spec ()
  in
  let tm =
    Metrics.Bleu.token_match
      ~reference:(Alloy.Pretty.spec_to_string gt)
      ~candidate:(Alloy.Pretty.spec_to_string result.final_spec)
  in
  let sm = Metrics.Tree_kernel.syntax_match gt result.final_spec in
  Printf.printf "REP=%b  TM=%.3f  SM=%.3f\n" rep tm sm
