examples/hotel.mli:
