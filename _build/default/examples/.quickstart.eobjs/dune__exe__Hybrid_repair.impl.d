examples/hybrid_repair.ml: Benchmarks Eval List Llm Printf Specrepair String
