examples/llm_dialogue.mli:
