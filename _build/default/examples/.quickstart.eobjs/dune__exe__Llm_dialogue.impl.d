examples/llm_dialogue.ml: Alloy Benchmarks List Llm Metrics Option Printf Specrepair String
