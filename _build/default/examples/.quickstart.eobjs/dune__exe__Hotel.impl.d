examples/hotel.ml: Alloy Analyzer List Llm Mutation Printf Specrepair
