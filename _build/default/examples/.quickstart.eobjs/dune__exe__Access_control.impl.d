examples/access_control.ml: Alloy Analyzer Eval List Llm Mutation Printf Specrepair
