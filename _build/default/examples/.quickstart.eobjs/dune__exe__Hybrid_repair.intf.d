examples/hybrid_repair.mli:
