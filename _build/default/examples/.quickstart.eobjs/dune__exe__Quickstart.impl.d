examples/quickstart.ml: Alloy Analyzer Format List Metrics Printf Repair Specrepair
