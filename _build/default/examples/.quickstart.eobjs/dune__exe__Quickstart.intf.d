examples/quickstart.mli:
