(* A richer modelling example exercising the full Mini-Alloy kernel —
   relational functions, set comprehensions, and let bindings — on a
   role-based access-control policy, then repairing an injected policy bug
   with the portfolio tool (traditional engine first, LLM pipeline as
   backup).

   Run with: dune exec examples/access_control.exe *)

open Specrepair

let policy ~grant_rule =
  Printf.sprintf
    {|
module rbac

sig User {
  roles: set Role
}
sig Role {
  grants: set Perm
}
sig Perm {}
one sig Admin extends Role {}

fun permsOf[u: User]: set Perm {
  u.roles.grants
}

fact AdminHasAll {
  Perm in Admin.grants
}

fact SomeSeparation {
  some r: Role | r != Admin && Perm not in r.grants
}

fact GrantRule {
  %s
}

assert AdminsAreOmnipotent {
  all u: User | Admin in u.roles => Perm in permsOf[u]
}

assert NoGhostPerms {
  all u: User | let p = permsOf[u] | p in Perm
}

pred leastPrivilegeUser {
  some u: User | some { q: Perm | q not in permsOf[u] }
}

check AdminsAreOmnipotent for 3
check NoGhostPerms for 3
run leastPrivilegeUser for 3
|}
    grant_rule

(* ground truth: every user holds some role *)
let correct = policy ~grant_rule:"all u: User | some u.roles"

(* the faulty policy demands that every user hold EVERY role — least
   privilege becomes unsatisfiable *)
let faulty = policy ~grant_rule:"all u: User | Role in u.roles"

let show title src =
  let env = Alloy.Typecheck.check (Alloy.Parser.parse src) in
  Printf.printf "%s:\n" title;
  List.iter
    (fun (c : Alloy.Ast.command) ->
      let label =
        match c.cmd_kind with
        | Alloy.Ast.Check n -> "check " ^ n
        | Alloy.Ast.Run_pred n -> "run " ^ n
        | Alloy.Ast.Run_fmla _ -> "run {...}"
      in
      let verdict =
        match Analyzer.run_command env c with
        | Analyzer.Sat _ -> "SAT"
        | Analyzer.Unsat -> "UNSAT"
        | Analyzer.Unknown -> "UNKNOWN"
      in
      Printf.printf "  %-28s %s\n" label verdict)
    env.spec.commands;
  print_newline ();
  env

let () =
  ignore (show "correct policy" correct);
  let faulty_env = show "faulty policy (users forced into every role)" faulty in

  let task =
    Llm.Task.make ~spec_id:"rbac" ~domain:"rbac"
      ~faulty:faulty_env.Alloy.Typecheck.spec
      ~check_names:[ "AdminsAreOmnipotent"; "NoGhostPerms" ]
      ()
  in
  let result, stage = Eval.Portfolio.repair task in
  Printf.printf "portfolio repair: repaired=%b (stage: %s)\n\n" result.repaired
    (Eval.Portfolio.stage_to_string stage);
  if result.repaired then begin
    let body =
      Mutation.Location.body result.final_spec (Mutation.Location.Fact_site 2)
    in
    Printf.printf "repaired GrantRule:\n  %s\n\n"
      (Alloy.Pretty.fmla_to_string body);
    ignore
      (show "analyzer verdicts after repair"
         (Alloy.Pretty.spec_to_string result.final_spec))
  end
