// A directed graph with an acyclicity fact; the NoLoop assertion follows.
sig Node {
  edges: set Node
}

fact Acyclic {
  no n: Node | n in n.^edges
}

assert NoLoop {
  all n: Node | n not in n.^edges
}

check NoLoop for 3
run { some edges } for 3
