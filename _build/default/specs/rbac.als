// Role-based access control, exercising relational functions, set
// comprehensions, and let bindings.
module rbac

sig User {
  roles: set Role
}
sig Role {
  grants: set Perm
}
sig Perm {}
one sig Admin extends Role {}

fun permsOf[u: User]: set Perm {
  u.roles.grants
}

fact AdminHasAll {
  Perm in Admin.grants
}

fact Assignment {
  all u: User | some u.roles
}

assert AdminsAreOmnipotent {
  all u: User | Admin in u.roles => Perm in permsOf[u]
}

assert NoGhostPerms {
  all u: User | let p = permsOf[u] | p in Perm
}

pred leastPrivilegeUser {
  some u: User | some { q: Perm | q not in permsOf[u] }
}

check AdminsAreOmnipotent for 3
check NoGhostPerms for 3
run leastPrivilegeUser for 3
