// The hotel key-management example from the paper's Section II, with the
// overly restrictive check-in constraint ("no g.held").
module hotel

abstract sig Key {}
sig RoomKey extends Key {}
sig Room {
  issued: set Key
}
sig Guest {
  held: set Key
}
one sig FrontDesk {
  lastKey: Room -> lone RoomKey,
  occupant: Room -> lone Guest
}

fact Issuance {
  all r: Room | r.issued in RoomKey
  all r: Room | r.(FrontDesk.lastKey) in r.issued
}

pred checkIn[g: Guest, r: Room, k: RoomKey] {
  no r.(FrontDesk.occupant)
  no g.held
  k in r.issued
}

pred returningGuestCheckIn {
  some g: Guest, r: Room, k: RoomKey | some g.held && checkIn[g, r, k]
}

assert OccupiedRoomsStay {
  all r: Room | lone r.(FrontDesk.occupant)
}

run returningGuestCheckIn for 3
check OccupiedRoomsStay for 3
