// The same graph model with a quantifier bug: the Acyclic fact now DEMANDS
// a cycle.  `specrepair repair specs/graph_faulty.als` fixes it.
sig Node {
  edges: set Node
}

fact Acyclic {
  some n: Node | n in n.^edges
}

assert NoLoop {
  all n: Node | n not in n.^edges
}

check NoLoop for 3
run { some edges } for 3
