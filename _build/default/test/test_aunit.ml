(* Tests for the AUnit-style test framework and fault localization. *)

open Specrepair_alloy
module Aunit = Specrepair_aunit.Aunit
module Faultloc = Specrepair_faultloc.Faultloc
module Solver = Specrepair_solver
module Location = Specrepair_mutation.Location

let gt_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  no n: Node | n in n.^edges
}
pred hasEdge {
  some edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run hasEdge for 3
|}

let faulty_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
pred hasEdge {
  some edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run hasEdge for 3
|}

let gt_env = lazy (Typecheck.check (Parser.parse gt_src))
let faulty_env = lazy (Typecheck.check (Parser.parse faulty_src))
let scope = { Solver.Bounds.default = 3; overrides = [] }

let suite = lazy (Aunit.generate ~per_kind:4 (Lazy.force gt_env) ~scope)

let test_generate_nonempty () =
  let tests = Lazy.force suite in
  Alcotest.(check bool) "several tests" true (List.length tests >= 6);
  let facts_tests =
    List.filter (fun (t : Aunit.test) -> t.target = Aunit.Facts) tests
  in
  let pred_tests =
    List.filter
      (fun (t : Aunit.test) ->
        match t.target with Aunit.Pred _ -> true | _ -> false)
      tests
  in
  Alcotest.(check bool) "facts tests present" true (facts_tests <> []);
  Alcotest.(check bool) "pred tests present" true (pred_tests <> [])

let test_gt_passes_all () =
  Alcotest.(check bool) "ground truth passes its own suite" true
    (Aunit.all_pass (Lazy.force gt_env) (Lazy.force suite))

let test_faulty_fails_some () =
  let v = Aunit.run_suite (Lazy.force faulty_env) (Lazy.force suite) in
  Alcotest.(check bool) "faulty spec fails something" true (v.failing <> [])

let test_expectations_balanced () =
  let tests = Lazy.force suite in
  Alcotest.(check bool) "positive tests exist" true
    (List.exists (fun (t : Aunit.test) -> t.expect) tests);
  Alcotest.(check bool) "negative tests exist" true
    (List.exists (fun (t : Aunit.test) -> not t.expect) tests)

let test_of_counterexample () =
  match
    Solver.Analyzer.check_assert (Lazy.force faulty_env) scope "NoLoop"
  with
  | Sat cex ->
      let t = Aunit.of_counterexample ~name:"cex" cex in
      (* the counterexample is admitted by the faulty facts, so the test
         (expect: not admitted) fails there... *)
      Alcotest.(check bool) "cex test fails on faulty spec" false
        (Aunit.run_test (Lazy.force faulty_env) t);
      (* ...and passes on the ground truth, which excludes it *)
      Alcotest.(check bool) "cex test passes on ground truth" true
        (Aunit.run_test (Lazy.force gt_env) t)
  | Unsat | Unknown -> Alcotest.fail "expected a counterexample"

let test_broken_pred_counts_as_failing () =
  let t =
    {
      Aunit.test_name = "missing pred";
      valuation = { Instance.sigs = [ ("Node", []) ]; fields = [ ("edges", Instance.Tuple_set.empty) ] };
      target = Aunit.Pred "doesNotExist";
      expect = true;
    }
  in
  Alcotest.(check bool) "missing predicate fails" false
    (Aunit.run_test (Lazy.force gt_env) t)

(* {2 Fault localization} *)

let test_rank_by_tests_finds_fault () =
  let ranked =
    Faultloc.rank_by_tests (Lazy.force faulty_env) (Lazy.force suite) ()
  in
  Alcotest.(check bool) "some locations ranked" true (ranked <> []);
  let top3 = List.filteri (fun i _ -> i < 3) ranked in
  Alcotest.(check bool) "faulty fact ranked in top 3" true
    (List.exists
       (fun (l : Faultloc.location) -> l.site = Location.Fact_site 0)
       top3)

let test_rank_by_instances_finds_fault () =
  let env = Lazy.force faulty_env in
  let cexs =
    Solver.Analyzer.enumerate ~limit:3 env scope
      (Parser.parse_fmla "some n: Node | n in n.^edges")
  in
  let ranked =
    Faultloc.rank_by_instances env
      ~goal_of:(Faultloc.goal_of_assert "NoLoop")
      ~counterexamples:cexs ~witnesses:[] ()
  in
  Alcotest.(check bool) "some locations ranked" true (ranked <> []);
  let top = List.filteri (fun i _ -> i < 4) ranked in
  Alcotest.(check bool) "faulty fact among top locations" true
    (List.exists
       (fun (l : Faultloc.location) -> l.site = Location.Fact_site 0)
       top)

let test_no_failing_tests_no_ranking () =
  let ranked =
    Faultloc.rank_by_tests (Lazy.force gt_env) (Lazy.force suite) ()
  in
  Alcotest.(check (list string)) "nothing to localize" []
    (List.map (fun (l : Faultloc.location) -> Location.site_to_string l.site) ranked)

let test_per_kind_controls_size () =
  let env = Lazy.force gt_env in
  let small = Aunit.generate ~per_kind:1 env ~scope in
  let large = Aunit.generate ~per_kind:4 env ~scope in
  Alcotest.(check bool) "per_kind scales the suite" true
    (List.length small < List.length large)

let test_suite_deterministic () =
  let env = Lazy.force gt_env in
  let a = Aunit.generate ~per_kind:3 env ~scope in
  let b = Aunit.generate ~per_kind:3 env ~scope in
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  List.iter2
    (fun (x : Aunit.test) (y : Aunit.test) ->
      Alcotest.(check bool) "same valuation" true
        (Instance.equal x.valuation y.valuation))
    a b

let () =
  Alcotest.run "aunit"
    [
      ( "suite",
        [
          Alcotest.test_case "generation" `Quick test_generate_nonempty;
          Alcotest.test_case "ground truth green" `Quick test_gt_passes_all;
          Alcotest.test_case "faulty red" `Quick test_faulty_fails_some;
          Alcotest.test_case "balanced expectations" `Quick
            test_expectations_balanced;
          Alcotest.test_case "counterexample conversion" `Quick
            test_of_counterexample;
          Alcotest.test_case "missing predicate" `Quick
            test_broken_pred_counts_as_failing;
          Alcotest.test_case "per_kind scaling" `Quick test_per_kind_controls_size;
          Alcotest.test_case "deterministic generation" `Quick
            test_suite_deterministic;
        ] );
      ( "faultloc",
        [
          Alcotest.test_case "rank by tests" `Quick test_rank_by_tests_finds_fault;
          Alcotest.test_case "rank by instances" `Quick
            test_rank_by_instances_finds_fault;
          Alcotest.test_case "green suite" `Quick test_no_failing_tests_no_ranking;
        ] );
    ]
