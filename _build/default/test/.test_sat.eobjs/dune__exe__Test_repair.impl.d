test/test_repair.ml: Alcotest Ast Lazy List Parser Result Specrepair_alloy Specrepair_aunit Specrepair_repair Specrepair_solver Typecheck
