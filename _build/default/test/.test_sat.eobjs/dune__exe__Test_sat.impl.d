test/test_sat.ml: Alcotest Array Card Dimacs Format Formula Fun List Lit Order_heap Printf QCheck2 QCheck_alcotest Random Solver Specrepair_sat Tseitin Vec
