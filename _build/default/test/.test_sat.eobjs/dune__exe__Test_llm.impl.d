test/test_llm.ml: Alcotest Ast Fun Hashtbl Lazy List Option Parser Result Specrepair_alloy Specrepair_llm Specrepair_mutation Specrepair_repair String Typecheck
