test/test_solver.ml: Alcotest Array Ast Eval Gen Instance Lazy List Option Parser Pretty QCheck2 QCheck_alcotest Specrepair_alloy Specrepair_sat Specrepair_solver Test Typecheck
