test/test_alloy.ml: Alcotest Array Ast Eval Hashtbl Instance Lazy Lexer List Option Parser Pretty Printexc QCheck2 QCheck_alcotest Specrepair_alloy String Typecheck
