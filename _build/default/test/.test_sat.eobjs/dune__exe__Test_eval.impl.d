test/test_eval.ml: Alcotest Lazy List Specrepair_alloy Specrepair_benchmarks Specrepair_eval Specrepair_llm String
