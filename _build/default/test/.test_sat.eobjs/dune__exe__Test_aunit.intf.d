test/test_aunit.mli:
