test/test_benchmarks.ml: Alcotest Ast Float Lazy List Option Result Specrepair_alloy Specrepair_benchmarks Specrepair_metrics Specrepair_repair Typecheck
