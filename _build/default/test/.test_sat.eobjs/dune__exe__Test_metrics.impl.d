test/test_metrics.ml: Alcotest Array Float Parser Pretty Printf QCheck2 QCheck_alcotest Specrepair_alloy Specrepair_metrics Specrepair_solver String
