test/test_mutation.ml: Alcotest Ast Format Lazy List Parser Pretty Printf Specrepair_alloy Specrepair_mutation Typecheck
