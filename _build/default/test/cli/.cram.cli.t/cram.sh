  $ ../../bin/specrepair.exe parse ../../specs/graph.als | head -4
  $ ../../bin/specrepair.exe analyze ../../specs/graph_faulty.als | grep -E 'UNSAT|SAT' | head -2
  $ ../../bin/specrepair.exe analyze ../../specs/rbac.als | grep -c 'UNSAT'
  $ ../../bin/specrepair.exe domains | tail -1
  $ ../../bin/specrepair.exe repair ../../specs/graph_faulty.als --tool beafix | head -2
  $ echo "sig {}" > bad.als
  $ ../../bin/specrepair.exe parse bad.als
