module Alloy = Specrepair_alloy
module Mutation = Specrepair_mutation
module Aunit = Specrepair_aunit.Aunit
module Location = Mutation.Location
module Ast = Alloy.Ast

type location = { site : Location.site; path : Location.path; score : float }

let pp_location ppf l =
  Format.fprintf ppf "%s[%s] %.3f"
    (Location.site_to_string l.site)
    (Location.path_to_string l.path)
    l.score

let candidate_locations spec ~sites =
  List.concat_map
    (fun site ->
      let body = Location.body spec site in
      List.filter_map
        (fun (path, node) ->
          match node with
          | Location.F (Ast.True | Ast.False) -> None
          | Location.F _ -> Some (site, path)
          | Location.E _ -> None)
        (Location.subnodes body))
    sites

(* The two relaxations of a location: node replaced by true and by false. *)
let relaxations spec (site, path) =
  List.filter_map
    (fun replacement ->
      let body = Location.body spec site in
      match Location.replace body path replacement with
      | body' -> Some (Location.with_body spec site body')
      | exception _ -> None)
    [ Location.F Ast.True; Location.F Ast.False ]

let env_of spec =
  match Alloy.Typecheck.check_result spec with
  | Ok env -> Some env
  | Error _ -> None

(* Sort best-first; ties: smaller subtree first, then textual position. *)
let order spec locations =
  List.stable_sort
    (fun a b ->
      match compare b.score a.score with
      | 0 ->
          let size l =
            Location.node_size (Location.get (Location.body spec l.site) l.path)
          in
          compare (size a, a.site, a.path) (size b, b.site, b.path)
      | c -> c)
    locations

let rank_by_tests (env : Alloy.Typecheck.env) tests ?sites () =
  let spec = env.spec in
  let sites =
    match sites with Some s -> s | None -> Location.sites spec
  in
  let baseline = Aunit.run_suite env tests in
  let n_failing = List.length baseline.failing in
  if n_failing = 0 then []
  else
    let score_loc (site, path) =
      let best =
        List.fold_left
          (fun best relaxed ->
            match env_of relaxed with
            | None -> best
            | Some env' ->
                let fixed =
                  List.length
                    (List.filter (Aunit.run_test env') baseline.failing)
                in
                let newly_broken =
                  List.length
                    (List.filter
                       (fun t -> not (Aunit.run_test env' t))
                       baseline.passing)
                in
                let s =
                  (float_of_int fixed /. float_of_int n_failing)
                  -. (0.3
                    *. float_of_int newly_broken
                    /. float_of_int (max 1 (List.length baseline.passing)))
                in
                max best s)
          0. (relaxations spec (site, path))
      in
      { site; path; score = best }
    in
    let locations = List.map score_loc (candidate_locations spec ~sites) in
    order spec (List.filter (fun l -> l.score > 0.) locations)

let goal_of_assert name (env : Alloy.Typecheck.env) =
  match Ast.find_assert env.spec name with
  | Some a -> Ast.Not a.assert_body
  | None -> Ast.True

let rank_by_instances (env : Alloy.Typecheck.env) ~goal_of ~counterexamples
    ~witnesses ?sites () =
  let spec = env.spec in
  let sites = match sites with Some s -> s | None -> Location.sites spec in
  (* classification of an instance under a (possibly relaxed) spec; the
     goal formula is re-read from that spec so relaxations of assertion
     bodies are visible *)
  let classify env' inst =
    match
      ( Alloy.Eval.facts_hold env' inst,
        Alloy.Eval.fmla env' inst [] (goal_of env') )
    with
    | facts, g -> (facts, g)
    | exception Alloy.Eval.Eval_error _ -> (false, false)
  in
  let cex_baseline = List.map (classify env) counterexamples in
  let wit_baseline = List.map (classify env) witnesses in
  let score_loc (site, path) =
    let relaxed_envs =
      List.filter_map env_of (relaxations spec (site, path))
    in
    (* fraction of instances whose classification changes under some
       relaxation of the node *)
    let fraction_changed insts baseline =
      match (insts, relaxed_envs) with
      | [], _ | _, [] -> 0.
      | _ ->
          let changed inst base =
            List.exists (fun env' -> classify env' inst <> base) relaxed_envs
          in
          let n =
            List.length
              (List.filter Fun.id (List.map2 changed insts baseline))
          in
          float_of_int n /. float_of_int (List.length insts)
    in
    let cex_relevance = fraction_changed counterexamples cex_baseline in
    let wit_disturbance = fraction_changed witnesses wit_baseline in
    { site; path; score = cex_relevance -. (0.3 *. wit_disturbance) }
  in
  let locations = List.map score_loc (candidate_locations spec ~sites) in
  order spec (List.filter (fun l -> l.score > 0.) locations)
