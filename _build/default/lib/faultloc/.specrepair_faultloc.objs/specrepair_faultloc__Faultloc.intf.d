lib/faultloc/faultloc.mli: Format Specrepair_alloy Specrepair_aunit Specrepair_mutation
