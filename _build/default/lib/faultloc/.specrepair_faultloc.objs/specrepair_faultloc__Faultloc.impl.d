lib/faultloc/faultloc.ml: Format Fun List Specrepair_alloy Specrepair_aunit Specrepair_mutation
