(** Fault localization for Mini-Alloy specifications.

    Two rankers over formula-node locations:

    - {!rank_by_tests} (ARepair-style) scores a node by how many failing
      AUnit tests flip to passing when the node is {e relaxed} — replaced by
      the constant [true] or [false] — discounted by the passing tests it
      breaks.

    - {!rank_by_instances} (FLACK-style) scores a node by its {e relevance}
      to counterexamples versus satisfying instances: a node whose
      relaxation changes the admission of counterexamples but not of valid
      instances is likely at fault.

    Both return locations best-first; ties break towards smaller subtrees
    (more precise repairs) and earlier positions. *)

module Alloy = Specrepair_alloy
module Mutation = Specrepair_mutation

type location = {
  site : Mutation.Location.site;
  path : Mutation.Location.path;
  score : float;
}

val pp_location : Format.formatter -> location -> unit

val candidate_locations :
  Alloy.Ast.spec ->
  sites:Mutation.Location.site list ->
  (Mutation.Location.site * Mutation.Location.path) list
(** Formula-valued nodes of the given sites (constants excluded). *)

val rank_by_tests :
  Alloy.Typecheck.env ->
  Specrepair_aunit.Aunit.test list ->
  ?sites:Mutation.Location.site list ->
  unit ->
  location list

val rank_by_instances :
  Alloy.Typecheck.env ->
  goal_of:(Alloy.Typecheck.env -> Alloy.Ast.fmla) ->
  counterexamples:Alloy.Instance.t list ->
  witnesses:Alloy.Instance.t list ->
  ?sites:Mutation.Location.site list ->
  unit ->
  location list
(** [goal_of env] is the formula whose truth classifies the instances
    (typically the negated body of a checked assertion, {!goal_of_assert}):
    counterexamples satisfy facts and the goal; witnesses satisfy facts and
    its negation.  The goal is recomputed against every relaxed candidate
    spec, so faults inside assertion bodies are rankable too. *)

val goal_of_assert : string -> Alloy.Typecheck.env -> Alloy.Ast.fmla
(** The negated body of the named assertion in the given spec (or [True]
    when absent). *)
