(** Materialisation of the two benchmarks: 1,936 Alloy4Fun variants and 38
    ARepair variants, each a faulty specification paired with its ground
    truth and fault metadata.  Deterministic in the study seed. *)

module Alloy = Specrepair_alloy
module Llm = Specrepair_llm

type variant = {
  id : string;  (** e.g. "classroom_0017" *)
  domain : Domains.t;
  ground_truth : Alloy.Ast.spec;
  injected : Fault.injected;
}

val variants : ?seed:int -> Domains.t -> variant list
(** The domain's [count] variants. *)

val benchmark : ?seed:int -> Domains.benchmark -> variant list

val all : ?seed:int -> unit -> variant list
(** Both benchmarks; 1,974 variants at the default seed (42). *)

val sample : ?seed:int -> per_domain:int -> unit -> variant list
(** A stratified subsample (first [per_domain] variants of each domain),
    for quick evaluation runs. *)

val to_task : variant -> Llm.Task.t
(** Package a variant for the LLM pipelines, exposing the hint metadata. *)
