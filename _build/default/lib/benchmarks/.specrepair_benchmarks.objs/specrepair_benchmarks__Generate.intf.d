lib/benchmarks/generate.mli: Domains Fault Specrepair_alloy Specrepair_llm
