lib/benchmarks/fault.ml: Domains Fun Hashtbl List Printf Specrepair_alloy Specrepair_llm Specrepair_mutation Specrepair_solver
