lib/benchmarks/fault.mli: Domains Specrepair_alloy Specrepair_mutation
