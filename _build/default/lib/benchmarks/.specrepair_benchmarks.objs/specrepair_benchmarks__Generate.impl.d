lib/benchmarks/generate.ml: Domains Fault Hashtbl List Printf Specrepair_alloy Specrepair_llm Specrepair_mutation
