lib/benchmarks/domains.ml: Hashtbl List Specrepair_alloy
