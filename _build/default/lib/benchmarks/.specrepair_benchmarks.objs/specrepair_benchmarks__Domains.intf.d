lib/benchmarks/domains.mli: Specrepair_alloy
