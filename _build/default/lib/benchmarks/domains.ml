module Alloy = Specrepair_alloy

type benchmark = A4F | ARepair_bench

let benchmark_to_string = function A4F -> "A4F" | ARepair_bench -> "ARepair"

type t = {
  name : string;
  benchmark : benchmark;
  source : string;
  count : int;
  fault_mix : (string * float) list;
  familiarity : float;
}

(* {2 Alloy4Fun domains} *)

let classroom_src =
  {|
module classroom

abstract sig Person {}
sig Teacher extends Person {}
sig Student extends Person {
  tutor: lone Teacher
}
sig Class {
  taughtBy: one Teacher,
  enrolled: set Student
}

fact Enrollment {
  all c: Class | some c.enrolled
  all s: Student | some enrolled.s
}

fact Tutoring {
  all s: Student | s.tutor in enrolled.s.taughtBy
}

assert TutorTeachesOwnClass {
  all s: Student | s.tutor in enrolled.s.taughtBy
}

assert EveryoneEnrolled {
  all s: Student | some c: Class | s in c.enrolled
}

pred tutoringHappens {
  some tutor
}

check TutorTeachesOwnClass for 3
check EveryoneEnrolled for 3
run tutoringHappens for 3
|}

let cv_src =
  {|
module cv

sig Skill {}
sig Person {
  skills: set Skill
}
sig Job {
  requires: set Skill,
  holder: lone Person
}

fact SomeRequirement {
  all j: Job | some j.requires
}

fact Qualified {
  all j: Job | j.requires in j.holder.skills
}

assert HoldersQualified {
  all j: Job, s: Skill | s in j.requires => s in j.holder.skills
}

assert JobsFilled {
  all j: Job | some j.holder
}

pred employment {
  some holder
}

check HoldersQualified for 3
check JobsFilled for 3
run employment for 3
|}

let graphs_src =
  {|
module graphs

sig Node {
  adj: set Node
}

fact Undirected {
  adj = ~adj
}

fact NoSelfLoop {
  no iden & adj
}

assert SymmetricReach {
  all a: Node, b: Node | b in a.^adj => a in b.^adj
}

assert Irreflexive {
  all n: Node | n not in n.adj
}

pred connected {
  all a: Node, b: Node | a != b => b in a.^adj
}

check SymmetricReach for 3
check Irreflexive for 3
run connected for 3
|}

let lts_src =
  {|
module lts

sig Label {}
sig State {
  next: set State,
  emits: set Label
}
one sig Init extends State {}
sig Final extends State {}

fact AllReachable {
  State in Init.*next
}

fact Progress {
  all s: State | s not in Final => some s.next
}

fact FinalSink {
  all f: Final | no f.next
}

fact Observable {
  all s: State | some s.next => some s.emits
}

assert InitReachesAll {
  all s: State | s in Init.*next
}

assert DeadEndsAreFinal {
  all s: State | no s.next => s in Final
}

assert FinalHasNoSuccessor {
  no Final.next
}

assert ActiveStatesEmit {
  all s: State | some s.next => some s.emits
}

pred loops {
  some s: State | s in s.^next
}

pred terminating {
  some Final && Final in Init.^next
}

check InitReachesAll for 3
check DeadEndsAreFinal for 3
check FinalHasNoSuccessor for 3
check ActiveStatesEmit for 3
run loops for 3
run terminating for 3
|}

let production_src =
  {|
module production

abstract sig Resource {}
sig Material extends Resource {}
sig Product extends Resource {
  parts: set Material
}
sig Machine {
  consumes: set Material,
  produces: set Product
}

fact ProductsNeedParts {
  all p: Product | some p.parts
}

fact MachinesStocked {
  all m: Machine, p: Product | p in m.produces => p.parts in m.consumes
}

assert NoFreeLunch {
  all m: Machine | some m.produces => some m.consumes
}

assert PartsAvailable {
  all m: Machine, p: Product | p in m.produces => p.parts in m.consumes
}

pred working {
  some produces
}

check NoFreeLunch for 3
check PartsAvailable for 3
run working for 3
|}

let trash_src =
  {|
module trash

sig File {}
one sig Trash {
  contents: set File
}
one sig Live {
  files: set File
}

fact Partition {
  no Trash.contents & Live.files
  File in Trash.contents + Live.files
  all f: File | f in Live.files || f in Trash.contents
  all f: File | f in Trash.contents => f not in Live.files
  all f: File | f in Live.files => f not in Trash.contents
}

assert NoLimbo {
  all f: File | f in Trash.contents || f in Live.files
}

assert NoBoth {
  no f: File | f in Trash.contents && f in Live.files
}

pred somethingDeleted {
  some Trash.contents
}

check NoLimbo for 3
check NoBoth for 3
run somethingDeleted for 3
|}

(* {2 ARepair benchmark problems} *)

let addr_src =
  {|
module addr

sig Name {}
sig Addr {}
one sig Book {
  entries: Name -> lone Addr
}

fact Total {
  all n: Name | some n.(Book.entries)
}

assert Resolvable {
  all n: Name | one n.(Book.entries)
}

check Resolvable for 3
run { some Book.entries } for 3
|}

let arr_src =
  {|
module arr

sig Elem {
  nxt: lone Elem,
  leq: set Elem
}

fact ReflexiveOrder {
  all e: Elem | e in e.leq
}

fact AntisymmetricOrder {
  all a: Elem, b: Elem | b in a.leq && a in b.leq => a = b
}

fact TransitiveOrder {
  all a: Elem, b: Elem, c: Elem | b in a.leq && c in b.leq => c in a.leq
}

fact SortedChain {
  all e: Elem | e.nxt in e.leq
}

assert ChainSorted {
  all e: Elem | e.^nxt in e.leq
}

check ChainSorted for 3
run { some nxt } for 3
|}

let balanced_bst_src =
  {|
module balancedBST

sig BNode {
  left: lone BNode,
  right: lone BNode
}
one sig BRoot extends BNode {}

fact TreeShape {
  no n: BNode | n in n.^(left + right)
  all n: BNode | lone (left + right).n
  BNode in BRoot.*(left + right)
}

fact DistinctChildren {
  no left & right
}

assert NonRootHasParent {
  all n: BNode | n != BRoot => one (left + right).n
}

check NonRootHasParent for 3
run { some left } for 3
|}

let bempl_src =
  {|
module bempl

sig Employee {
  manager: lone Employee
}
one sig CEO extends Employee {}

fact Hierarchy {
  no CEO.manager
  all e: Employee | e != CEO => CEO in e.^manager
}

fact NoCycles {
  no e: Employee | e in e.^manager
}

assert NoSelfManager {
  all e: Employee | e not in e.manager
}

check NoSelfManager for 3
run { some manager } for 3
|}

let cd_src =
  {|
module cd

sig ClassNode {
  ext: lone ClassNode,
  methods: set Method
}
sig Method {}

fact AcyclicInheritance {
  no c: ClassNode | c in c.^ext
}

fact MethodsOwned {
  all m: Method | some methods.m
}

assert NoSelfInheritance {
  all c: ClassNode | c.ext != c
}

check NoSelfInheritance for 3
run { some ext } for 3
|}

let ctree_src =
  {|
module ctree

abstract sig Color {}
one sig Red extends Color {}
one sig Black extends Color {}
sig CNode {
  children: set CNode,
  color: one Color
}

fact TreeShape {
  no n: CNode | n in n.^children
  all n: CNode | lone children.n
}

fact RedHasBlackChildren {
  all n: CNode | n.color = Red => n.children.color in Black
}

assert NoRedRed {
  all n: CNode, c: CNode | c in n.children && n.color = Red => c.color = Black
}

check NoRedRed for 3 but 2 Color
run { some children } for 3 but 2 Color
|}

let dll_src =
  {|
module dll

sig DNode {
  nxt: lone DNode,
  prv: lone DNode
}

fact Linked {
  all a: DNode, b: DNode | b in a.nxt <=> a in b.prv
}

fact AcyclicList {
  no n: DNode | n in n.^nxt
}

assert PrvIsInverse {
  prv = ~nxt
}

check PrvIsInverse for 3
run { some nxt } for 3
|}

let farmer_src =
  {|
module farmer

abstract sig Object {}
one sig Farmer extends Object {}
one sig Fox extends Object {}
one sig Chicken extends Object {}
one sig Grain extends Object {}
sig CrossState {
  near: set Object,
  far: set Object
}

fact Partition {
  all s: CrossState | no s.near & s.far
  all s: CrossState | Object in s.near + s.far
}

fact Safety {
  all s: CrossState | Farmer not in s.near => !(Fox in s.near && Chicken in s.near)
  all s: CrossState | Farmer not in s.near => !(Chicken in s.near && Grain in s.near)
  all s: CrossState | Farmer not in s.far => !(Fox in s.far && Chicken in s.far)
  all s: CrossState | Farmer not in s.far => !(Chicken in s.far && Grain in s.far)
}

assert ChickenProtected {
  all s: CrossState | Fox in s.near && Chicken in s.near => Farmer in s.near
}

check ChickenProtected for 3 but 4 Object
run { some s: CrossState | Farmer in s.near } for 3 but 4 Object
|}

let fsm_src =
  {|
module fsm

sig FsmState {
  transition: set FsmState
}
one sig Start extends FsmState {}
one sig Final extends FsmState {}

fact Connected {
  FsmState in Start.*transition
}

fact NoDeadEnd {
  all s: FsmState | s != Final => some s.transition
}

assert FinalReachable {
  Final in Start.*transition
}

check FinalReachable for 3
run { some transition } for 3
|}

let grade_src =
  {|
module grade

sig GStudent {}
sig Score {}
sig Assignment {
  score: GStudent -> lone Score
}

fact AllGraded {
  all a: Assignment, s: GStudent | some s.(a.score)
}

assert ExactlyOneGrade {
  all a: Assignment, s: GStudent | one s.(a.score)
}

check ExactlyOneGrade for 3
run { some score } for 3
|}

let other_src =
  {|
module other

sig Thing {
  rel: set Thing
}

fact Reflexive {
  all t: Thing | t in t.rel
}

fact Transitive {
  all a: Thing, b: Thing, c: Thing | b in a.rel && c in b.rel => c in a.rel
}

assert ClosureStable {
  all t: Thing | t.*rel = t.rel
}

check ClosureStable for 3
run { some rel } for 3
|}

let student_src =
  {|
module student

sig LNode {
  link: lone LNode
}
one sig List {
  head: lone LNode
}

fact Reachable {
  LNode in List.head.*link
}

fact AcyclicChain {
  no n: LNode | n in n.^link
}

assert ChainTerminates {
  some LNode => some n: LNode | no n.link
}

check ChainTerminates for 3
run { some link } for 3
|}

(* {2 Domain records}

   Fault mixtures are the study's main calibration surface: they determine
   which repair strategies can reach each domain's faults, reproducing the
   per-domain structure of Table I (see DESIGN.md, "Expected shape"). *)

let a4f =
  [
    {
      name = "classroom";
      benchmark = A4F;
      source = classroom_src;
      count = 999;
      fault_mix =
        [
          ("quant", 0.22);
          ("cmpop", 0.18);
          ("binop", 0.14);
          ("mult", 0.14);
          ("junct-drop", 0.10);
          ("connective", 0.10);
          ("wrong-rel", 0.07);
          ("compound", 0.05);
        ];
      familiarity = 1.0;
    };
    {
      name = "cv";
      benchmark = A4F;
      source = cv_src;
      count = 138;
      fault_mix =
        [
          ("underconstrain", 0.45);
          ("junct-drop", 0.10);
          ("quant", 0.20);
          ("cmpop", 0.15);
          ("compound", 0.10);
        ];
      familiarity = 1.1;
    };
    {
      name = "graphs";
      benchmark = A4F;
      source = graphs_src;
      count = 283;
      fault_mix =
        [
          ("binop", 0.30);
          ("closure", 0.30);
          ("quant", 0.15);
          ("cmpop", 0.15);
          ("compound", 0.10);
        ];
      familiarity = 0.8;
    };
    {
      name = "lts";
      benchmark = A4F;
      source = lts_src;
      count = 249;
      fault_mix =
        [
          ("wrong-rel", 0.40);
          ("compound", 0.35);
          ("closure", 0.15);
          ("card", 0.10);
        ];
      familiarity = 0.7;
    };
    {
      name = "production";
      benchmark = A4F;
      source = production_src;
      count = 61;
      fault_mix =
        [
          ("binop", 0.30);
          ("quant", 0.20);
          ("mult", 0.20);
          ("cmpop", 0.20);
          ("negation", 0.10);
        ];
      familiarity = 1.2;
    };
    {
      name = "trash";
      benchmark = A4F;
      source = trash_src;
      count = 206;
      fault_mix =
        [
          ("quant", 0.25);
          ("cmpop", 0.20);
          ("binop", 0.15);
          ("negation", 0.10);
          ("compound", 0.30);
        ];
      familiarity = 1.0;
    };
  ]

let arepair_mix_simple =
  [
    ("quant", 0.25);
    ("cmpop", 0.25);
    ("binop", 0.20);
    ("mult", 0.15);
    ("negation", 0.15);
  ]

let arepair =
  [
    {
      name = "addr";
      benchmark = ARepair_bench;
      source = addr_src;
      count = 1;
      fault_mix = arepair_mix_simple;
      familiarity = 1.2;
    };
    {
      name = "arr";
      benchmark = ARepair_bench;
      source = arr_src;
      count = 2;
      fault_mix = [ ("cmpop", 0.4); ("quant", 0.3); ("closure", 0.3) ];
      familiarity = 1.0;
    };
    {
      name = "balancedBST";
      benchmark = ARepair_bench;
      source = balanced_bst_src;
      count = 3;
      fault_mix = [ ("compound", 0.5); ("binop", 0.3); ("quant", 0.2) ];
      familiarity = 0.9;
    };
    {
      name = "bempl";
      benchmark = ARepair_bench;
      source = bempl_src;
      count = 1;
      fault_mix = [ ("negation", 0.5); ("quant", 0.5) ];
      familiarity = 1.0;
    };
    {
      name = "cd";
      benchmark = ARepair_bench;
      source = cd_src;
      count = 2;
      fault_mix = arepair_mix_simple;
      familiarity = 1.1;
    };
    {
      name = "ctree";
      benchmark = ARepair_bench;
      source = ctree_src;
      count = 1;
      fault_mix = [ ("wrong-rel", 0.6); ("compound", 0.4) ];
      familiarity = 1.1;
    };
    {
      name = "dll";
      benchmark = ARepair_bench;
      source = dll_src;
      count = 4;
      fault_mix = [ ("connective", 0.4); ("cmpop", 0.3); ("negation", 0.3) ];
      familiarity = 1.2;
    };
    {
      name = "farmer";
      benchmark = ARepair_bench;
      source = farmer_src;
      count = 1;
      fault_mix = [ ("compound", 0.6); ("negation", 0.4) ];
      familiarity = 1.2;
    };
    {
      name = "fsm";
      benchmark = ARepair_bench;
      source = fsm_src;
      count = 2;
      fault_mix = arepair_mix_simple;
      familiarity = 1.0;
    };
    {
      name = "grade";
      benchmark = ARepair_bench;
      source = grade_src;
      count = 1;
      fault_mix = [ ("mult", 0.5); ("quant", 0.5) ];
      familiarity = 1.0;
    };
    {
      name = "other";
      benchmark = ARepair_bench;
      source = other_src;
      count = 1;
      fault_mix = [ ("closure", 0.5); ("quant", 0.5) ];
      familiarity = 1.0;
    };
    {
      name = "student";
      benchmark = ARepair_bench;
      source = student_src;
      count = 19;
      fault_mix =
        [
          ("quant", 0.25);
          ("cmpop", 0.20);
          ("mult", 0.15);
          ("closure", 0.15);
          ("junct-drop", 0.10);
          ("compound", 0.15);
        ];
      familiarity = 1.0;
    };
  ]

let all = a4f @ arepair

let find name = List.find_opt (fun d -> d.name = name) all

let spec_cache : (string, Alloy.Ast.spec) Hashtbl.t = Hashtbl.create 18
let env_cache : (string, Alloy.Typecheck.env) Hashtbl.t = Hashtbl.create 18

let spec d =
  match Hashtbl.find_opt spec_cache d.name with
  | Some s -> s
  | None ->
      let s = Alloy.Parser.parse d.source in
      Hashtbl.replace spec_cache d.name s;
      s

let env d =
  match Hashtbl.find_opt env_cache d.name with
  | Some e -> e
  | None ->
      let e = Alloy.Typecheck.check (spec d) in
      Hashtbl.replace env_cache d.name e;
      e

let total_count bench =
  List.fold_left
    (fun acc d -> if d.benchmark = bench then acc + d.count else acc)
    0 all
