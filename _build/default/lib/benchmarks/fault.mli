(** Seeded fault injection into ground-truth specifications.

    Each injected fault is
    - {e observable}: at least one command outcome differs from the ground
      truth (otherwise the variant would trivially count as repaired), and
    - {e revertible}: the mutation space the repair tools search (same
      operators, same expression pool) contains an edit restoring the
      original node, so every benchmark fault is reachable in principle by
      every engine — difficulty comes from search, not from impossibility.

    Fault classes group the mutation operators of
    {!Specrepair_mutation.Mutate} into the taxonomy used by the domains'
    difficulty mixtures; [compound] composes two simple faults. *)

module Alloy = Specrepair_alloy
module Mutation = Specrepair_mutation

type injected = {
  faulty : Alloy.Ast.spec;
  mutations : Mutation.Mutate.t list;  (** the edits applied, in order *)
  sites : Mutation.Location.site list;  (** fault locations (Loc hint) *)
  revert_classes : string list;
      (** operator names of the reverting edits (Fix hint) *)
  description : string;  (** natural-language fix description *)
  class_name : string;  (** fault-class label, for reporting *)
}

val classes : string list
val ops_of_class : string -> string list

val inject :
  seed:int -> Domains.t -> index:int -> injected
(** Derives the [index]-th faulty variant of a domain.  Deterministic in
    [(seed, domain, index)].  Raises [Failure] if no observable, revertible
    fault can be constructed (a ground-truth authoring error, caught by the
    test suite). *)
