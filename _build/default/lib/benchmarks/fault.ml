module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast
module Mutation = Specrepair_mutation
module Location = Mutation.Location
module Rng = Specrepair_llm.Rng

type injected = {
  faulty : Alloy.Ast.spec;
  mutations : Mutation.Mutate.t list;
  sites : Mutation.Location.site list;
  revert_classes : string list;
  description : string;
  class_name : string;
}

let class_table =
  [
    ("quant", [ "quant-swap" ]);
    ("mult", [ "fmult-swap" ]);
    ("cmpop", [ "cmpop-swap" ]);
    ("binop", [ "binop-swap" ]);
    ("closure", [ "closure-swap"; "closure-drop"; "closure-add" ]);
    ("negation", [ "negation-add"; "negation-drop" ]);
    ("junct-drop", [ "junct-drop" ]);
    ("overconstrain", [ "junct-add-and" ]);
    ("underconstrain", [ "junct-add-or" ]);
    ("wrong-rel", [ "expr-replace" ]);
    ("card", [ "card-bump"; "intcmp-swap" ]);
    ("connective", [ "connective-swap"; "implies-flip" ]);
  ]

let classes = "compound" :: List.map fst class_table

let ops_of_class c =
  match List.assoc_opt c class_table with Some ops -> ops | None -> []

let simple_classes = List.map fst class_table

let describe_op site op =
  let where = Location.site_to_string site in
  match op with
  | "quant-swap" -> Printf.sprintf "the quantifier in %s is wrong" where
  | "fmult-swap" ->
      Printf.sprintf "the multiplicity keyword in %s is wrong" where
  | "cmpop-swap" ->
      Printf.sprintf "a comparison operator in %s is wrong" where
  | "binop-swap" -> Printf.sprintf "a set operator in %s is wrong" where
  | "closure-swap" | "closure-drop" | "closure-add" ->
      Printf.sprintf "a closure operator in %s is wrong or missing" where
  | "negation-add" | "negation-drop" ->
      Printf.sprintf "a negation in %s is wrong" where
  | "junct-drop" ->
      Printf.sprintf "a constraint conjunct is missing from %s" where
  | "junct-add-and" | "junct-add-or" ->
      Printf.sprintf "%s contains a spurious constraint" where
  | "expr-replace" ->
      Printf.sprintf "an expression in %s refers to the wrong relation" where
  | "card-bump" | "intcmp-swap" ->
      Printf.sprintf "a cardinality comparison in %s is wrong" where
  | "connective-swap" | "implies-flip" ->
      Printf.sprintf "a logical connective in %s is wrong" where
  | other -> Printf.sprintf "the constraint in %s needs %s" where other

(* Command outcomes of the ground truth, memoized per domain. *)
let gt_outcomes_cache : (string, [ `Sat | `Unsat | `Unknown ] list) Hashtbl.t =
  Hashtbl.create 18

let outcome_tag = function
  | Solver.Analyzer.Sat _ -> `Sat
  | Solver.Analyzer.Unsat -> `Unsat
  | Solver.Analyzer.Unknown -> `Unknown

let gt_outcomes (d : Domains.t) =
  match Hashtbl.find_opt gt_outcomes_cache d.name with
  | Some o -> o
  | None ->
      let env = Domains.env d in
      let o =
        List.map
          (fun c -> outcome_tag (Solver.Analyzer.run_command env c))
          env.spec.commands
      in
      Hashtbl.replace gt_outcomes_cache d.name o;
      o

(* Observability: some command outcome differs from the ground truth. *)
let observable (d : Domains.t) (candidate : Ast.spec) =
  match Alloy.Typecheck.check_result candidate with
  | Error _ -> false
  | Ok env' -> (
      let gt = gt_outcomes d in
      match
        List.map2
          (fun c o -> outcome_tag (Solver.Analyzer.run_command env' c) <> o)
          env'.spec.commands gt
      with
      | diffs -> List.exists Fun.id diffs
      | exception Invalid_argument _ -> false)

(* Revertibility: the repair search space at the mutated location contains
   an edit restoring the original node.  Returns the reverting operator
   name. *)
let revert_op gt_spec (faulty : Ast.spec) (m : Mutation.Mutate.t) =
  match Alloy.Typecheck.check_result faulty with
  | Error _ -> None
  | Ok env' -> (
      match Location.get (Location.body gt_spec m.site) m.path with
      | original ->
          let candidates =
            Mutation.Mutate.mutations_at env' faulty m.site m.path
              ~with_pool:true ()
          in
          List.find_map
            (fun (r : Mutation.Mutate.t) ->
              if r.replacement = original then Some r.op else None)
            candidates
      | exception Not_found -> None)

(* One simple fault of the given class; [rng] drives all choices.  Faults
   land mostly in facts, sometimes in predicates, occasionally in
   assertions — mirroring where users write buggy constraints.
   [only_site] restricts candidates (used by same-site compound faults). *)
let try_simple_fault ?only_site rng base_spec class_name =
  let ops = ops_of_class class_name in
  match Alloy.Typecheck.check_result base_spec with
  | Error _ -> None
  | Ok env ->
      let with_pool =
        List.exists
          (fun op -> op = "expr-replace" || op = "junct-add-and" || op = "junct-add-or")
          ops
      in
      let site_kind =
        Rng.choose_weighted rng [ (`Fact, 0.65); (`Pred, 0.15); (`Assert, 0.2) ]
      in
      let kind_matches (s : Location.site) =
        match (site_kind, s) with
        | Some `Fact, Location.Fact_site _ -> true
        | Some `Pred, Location.Pred_site _ -> true
        | Some `Assert, Location.Assert_site _ -> true
        | _ -> false
      in
      let all = Mutation.Mutate.all_mutations env base_spec ~with_pool () in
      let of_class =
        List.filter (fun (m : Mutation.Mutate.t) -> List.mem m.op ops) all
      in
      let of_class =
        match only_site with
        | Some site ->
            let restricted =
              List.filter (fun (m : Mutation.Mutate.t) -> m.site = site) of_class
            in
            if restricted = [] then of_class else restricted
        | None -> of_class
      in
      let preferred =
        List.filter (fun (m : Mutation.Mutate.t) -> kind_matches m.site) of_class
      in
      let candidates = if preferred = [] then of_class else preferred in
      let shuffled = Rng.shuffle rng candidates in
      List.find_map
        (fun (m : Mutation.Mutate.t) ->
          match Mutation.Mutate.apply base_spec m with
          | faulty when faulty <> base_spec -> (
              match Alloy.Typecheck.check_result faulty with
              | Ok _ -> (
                  match revert_op base_spec faulty m with
                  | Some rop -> Some (m, faulty, rop)
                  | None -> None)
              | Error _ -> None)
          | _ -> None
          | exception _ -> None)
        (List.filteri (fun i _ -> i < 40) shuffled)

let pick_class rng (d : Domains.t) =
  match Rng.choose_weighted rng d.fault_mix with
  | Some c -> c
  | None -> "quant"

(* Compound faults prefer a second edit in the same site (so that
   single-location template tools are not shut out), falling back to any
   site. *)
let try_compound rng (d : Domains.t) gt =
  let simple_of_mix =
    List.filter (fun (c, _) -> c <> "compound") d.fault_mix
  in
  let pick () =
    match Rng.choose_weighted rng simple_of_mix with
    | Some c -> c
    | None -> List.nth simple_classes (Rng.int rng (List.length simple_classes))
  in
  match try_simple_fault rng gt (pick ()) with
  | None -> None
  | Some (m1, spec1, rop1) -> (
      (* prefer a second edit in the same site (same-constraint compound
         bugs are the common real-world shape) *)
      let second_try () =
        if Rng.float rng < 0.7 then
          try_simple_fault ~only_site:m1.Mutation.Mutate.site rng spec1 (pick ())
        else try_simple_fault rng spec1 (pick ())
      in
      let rec attempt n =
        if n = 0 then None
        else
          match second_try () with
          | Some (m2, spec2, rop2) when spec2 <> gt -> Some (m2, spec2, rop2)
          | _ -> attempt (n - 1)
      in
      match attempt 4 with
      | None -> None
      | Some (m2, spec2, rop2) ->
          if observable d spec2 then
            Some
              {
                faulty = spec2;
                mutations = [ m1; m2 ];
                sites =
                  List.sort_uniq compare [ m1.Mutation.Mutate.site; m2.Mutation.Mutate.site ];
                revert_classes = List.sort_uniq compare [ rop1; rop2 ];
                description =
                  describe_op m1.site m1.op ^ "; also, "
                  ^ describe_op m2.site m2.op;
                class_name = "compound";
              }
          else None)

(* With some probability the benchmark's fix comment is misleading — it
   names the wrong kind of edit, as human-written annotations sometimes
   do.  (A pipeline that trusts the Fix hint then anchors on the wrong
   edit family: the paper's Loc+Fix setting trails Loc on Alloy4Fun.) *)
let misleading_probability = 0.45

let mislead rng site actual_op =
  let families =
    [ "quant-swap"; "cmpop-swap"; "binop-swap"; "fmult-swap"; "negation-drop";
      "expr-replace"; "junct-drop" ]
  in
  let others = List.filter (fun o -> o <> actual_op) families in
  let wrong = List.nth others (Rng.int rng (List.length others)) in
  (wrong, describe_op site wrong)

let inject_once rng (d : Domains.t) class_name =
  let gt = Domains.spec d in
  if class_name = "compound" then try_compound rng d gt
  else
    match try_simple_fault rng gt class_name with
    | Some (m, faulty, rop) when observable d faulty ->
        let revert_classes, description =
          if Rng.float rng < misleading_probability then
            let wrong_op, text = mislead rng m.site rop in
            ([ wrong_op ], text)
          else ([ rop ], describe_op m.site m.op)
        in
        Some
          {
            faulty;
            mutations = [ m ];
            sites = [ m.site ];
            revert_classes;
            description;
            class_name;
          }
    | _ -> None

let inject ~seed (d : Domains.t) ~index =
  let rec attempt try_no =
    if try_no > 40 then
      failwith
        (Printf.sprintf "Fault.inject: no observable fault for %s variant %d"
           d.name index)
    else begin
      let rng =
        Rng.of_context ~seed
          [ "fault"; d.name; string_of_int index; string_of_int try_no ]
      in
      let class_name =
        (* after a few failures, cycle through every class *)
        if try_no < 6 then pick_class rng d
        else
          List.nth ("compound" :: simple_classes)
            (try_no mod (1 + List.length simple_classes))
      in
      match inject_once rng d class_name with
      | Some inj -> inj
      | None -> attempt (try_no + 1)
    end
  in
  attempt 0
