(** The benchmark domains: ground-truth specifications for the six
    Alloy4Fun problem families and the twelve ARepair problems, together
    with the per-domain parameters that shape the study — variant counts
    (Table I row sizes), fault-class mixtures, and the simulated model's
    domain familiarity.

    Every ground truth is verified by the test suite to type-check, to pass
    its own commands (checks hold, runs are satisfiable), and to admit
    observable faults. *)

module Alloy = Specrepair_alloy

type benchmark = A4F | ARepair_bench

val benchmark_to_string : benchmark -> string

type t = {
  name : string;
  benchmark : benchmark;
  source : string;  (** Mini-Alloy text of the ground truth *)
  count : int;  (** number of faulty variants to derive (Table I) *)
  fault_mix : (string * float) list;
      (** fault-class name -> weight; see {!Fault.classes} *)
  familiarity : float;
      (** simulated-model familiarity (sampling sharpness), 1.0 = baseline *)
}

val all : t list
val a4f : t list
val arepair : t list
val find : string -> t option

val spec : t -> Alloy.Ast.spec
(** Parsed ground truth (memoized). *)

val env : t -> Alloy.Typecheck.env
(** Type-checked ground truth (memoized). *)

val total_count : benchmark -> int
(** 1936 for A4F, 38 for the ARepair benchmark. *)
