(** Pearson product-moment correlation with two-tailed significance, used
    for the study's Figure 3 heatmap. *)

val r : float array -> float array -> float
(** Correlation coefficient; 0 for degenerate inputs (constant vectors or
    length < 2).  Raises [Invalid_argument] on length mismatch. *)

val p_value : r:float -> n:int -> float
(** Two-tailed p-value of the null hypothesis r = 0, via the exact
    t-distribution CDF (regularised incomplete beta). *)

val correlate : float array -> float array -> float * float
(** [(r, p)] in one call. *)
