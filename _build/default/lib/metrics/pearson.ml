let r xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Pearson.r: length mismatch";
  if n < 2 then 0.
  else begin
    let mean a = Array.fold_left ( +. ) 0. a /. float_of_int n in
    let mx = mean xs and my = mean ys in
    let num = ref 0. and dx2 = ref 0. and dy2 = ref 0. in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      num := !num +. (dx *. dy);
      dx2 := !dx2 +. (dx *. dx);
      dy2 := !dy2 +. (dy *. dy)
    done;
    if !dx2 <= 0. || !dy2 <= 0. then 0.
    else !num /. sqrt (!dx2 *. !dy2)
  end

(* Regularised incomplete beta function by continued fraction (Lentz), as
   in Numerical Recipes; needed for the exact t-distribution CDF. *)
let rec betai a b x =
  if x < 0. || x > 1. then invalid_arg "betai";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let lbeta =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x) +. (b *. log (1. -. x))
    in
    let front = exp lbeta in
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf a b x /. a
    else 1. -. (exp lbeta *. betacf b a (1. -. x) /. b)
  end

and betacf a b x =
  let max_iter = 200 and eps = 3e-12 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iter do
       let fm = float_of_int m in
       let m2 = 2. *. fm in
       (* even step *)
       let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       h := !h *. !d *. !c;
       (* odd step *)
       let aa = -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  !h

(* Lanczos approximation. *)
and log_gamma x =
  let cof =
    [|
      76.18009172947146;
      -86.50532032941677;
      24.01409824083091;
      -1.231739572450155;
      0.1208650973866179e-2;
      -0.5395239384953e-5;
    |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.;
      ser := !ser +. (c /. !y))
    cof;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

let p_value ~r ~n =
  if n <= 2 then 1.
  else begin
    let r = Float.min 0.999999999 (Float.max (-0.999999999) r) in
    let df = float_of_int (n - 2) in
    let t = r *. sqrt (df /. (1. -. (r *. r))) in
    (* two-tailed p = I_{df/(df+t^2)}(df/2, 1/2) *)
    betai (df /. 2.) 0.5 (df /. (df +. (t *. t)))
  end

let correlate xs ys =
  let rv = r xs ys in
  (rv, p_value ~r:rv ~n:(Array.length xs))
