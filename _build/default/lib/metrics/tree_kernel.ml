module Ast = Specrepair_alloy.Ast
module Pretty = Specrepair_alloy.Pretty

type tree = Node of string * tree list

let leaf label = Node (label, [])

let rec of_expr = function
  | Ast.Rel n -> Node ("rel:" ^ n, [])
  | Ast.Univ -> leaf "univ"
  | Ast.Iden -> leaf "iden"
  | Ast.None_ -> leaf "none"
  | Ast.Unop (op, e) ->
      Node
        ( (match op with
          | Transpose -> "transpose"
          | Closure -> "closure"
          | Rclosure -> "rclosure"),
          [ of_expr e ] )
  | Ast.Binop (op, a, b) -> Node (binop_label op, [ of_expr a; of_expr b ])
  | Ast.Ite (c, a, b) -> Node ("ite", [ of_fmla c; of_expr a; of_expr b ])
  | Ast.Compr (decls, body) ->
      Node
        ( "compr",
          List.map (fun (x, bound) -> Node ("decl:" ^ x, [ of_expr bound ])) decls
          @ [ of_fmla body ] )

and binop_label op =
  match op with
  | Ast.Join -> "join"
  | Ast.Product -> "product"
  | Ast.Union -> "union"
  | Ast.Diff -> "diff"
  | Ast.Inter -> "inter"
  | Ast.Override -> "override"
  | Ast.Domrestr -> "domrestr"
  | Ast.Ranrestr -> "ranrestr"

and of_fmla = function
  | Ast.True -> leaf "true"
  | Ast.False -> leaf "false"
  | Ast.Cmp (op, a, b) ->
      let label =
        match op with
        | Ast.Cin -> "in"
        | Ast.Cnotin -> "notin"
        | Ast.Ceq -> "eq"
        | Ast.Cneq -> "neq"
      in
      Node ("cmp:" ^ label, [ of_expr a; of_expr b ])
  | Ast.Multf (m, e) -> Node ("mult:" ^ Pretty.fmult_to_string m, [ of_expr e ])
  | Ast.Card (op, e, k) ->
      Node
        ( "card:" ^ intcmp_label op,
          [ of_expr e; leaf ("int:" ^ string_of_int k) ] )
  | Ast.Not f -> Node ("not", [ of_fmla f ])
  | Ast.And (a, b) -> Node ("and", [ of_fmla a; of_fmla b ])
  | Ast.Or (a, b) -> Node ("or", [ of_fmla a; of_fmla b ])
  | Ast.Implies (a, b) -> Node ("implies", [ of_fmla a; of_fmla b ])
  | Ast.Iff (a, b) -> Node ("iff", [ of_fmla a; of_fmla b ])
  | Ast.Quant (q, decls, body) ->
      Node
        ( "quant:" ^ Pretty.quant_to_string q,
          List.map
            (fun (x, bound) -> Node ("decl:" ^ x, [ of_expr bound ]))
            decls
          @ [ of_fmla body ] )
  | Ast.Call (name, args) -> Node ("call:" ^ name, List.map of_expr args)
  | Ast.Let (name, value, body) ->
      Node ("let:" ^ name, [ of_expr value; of_fmla body ])

and intcmp_label = function
  | Ast.Ilt -> "lt"
  | Ast.Ile -> "le"
  | Ast.Ieq -> "eq"
  | Ast.Ineq -> "neq"
  | Ast.Ige -> "ge"
  | Ast.Igt -> "gt"

let of_field (f : Ast.field) =
  Node
    ( "field:" ^ f.fld_name ^ ":" ^ Pretty.mult_to_string f.fld_mult,
      List.map of_expr f.fld_cols )

let of_sig (s : Ast.sig_decl) =
  let label =
    Printf.sprintf "sig:%s:%s:%s%s" s.sig_name
      (Pretty.mult_to_string s.sig_mult)
      (if s.sig_abstract then "abstract" else "concrete")
      (match s.sig_parent with Some p -> ":extends:" ^ p | None -> "")
  in
  Node (label, List.map of_field s.sig_fields)

let of_command (c : Ast.command) =
  let scopes =
    List.map
      (fun (n, k) -> leaf (Printf.sprintf "scope:%s:%d" n k))
      c.cmd_scopes
  in
  match c.cmd_kind with
  | Ast.Run_pred n ->
      Node (Printf.sprintf "run:%s:%d" n c.cmd_scope, scopes)
  | Ast.Run_fmla f -> Node (Printf.sprintf "run:%d" c.cmd_scope, of_fmla f :: scopes)
  | Ast.Check n -> Node (Printf.sprintf "check:%s:%d" n c.cmd_scope, scopes)

let of_spec (spec : Ast.spec) =
  Node
    ( "spec",
      List.map of_sig spec.sigs
      @ List.map
          (fun (f : Ast.fact_decl) ->
            Node
              ( ("fact" ^ match f.fact_name with Some n -> ":" ^ n | None -> ""),
                [ of_fmla f.fact_body ] ))
          spec.facts
      @ List.map
          (fun (f : Ast.fun_decl) ->
            Node
              ( "fun:" ^ f.fun_name,
                List.map
                  (fun (x, bound) -> Node ("param:" ^ x, [ of_expr bound ]))
                  f.fun_params
                @ [ of_expr f.fun_result; of_expr f.fun_body ] ))
          spec.funs
      @ List.map
          (fun (p : Ast.pred_decl) ->
            Node
              ( "pred:" ^ p.pred_name,
                List.map
                  (fun (x, bound) -> Node ("param:" ^ x, [ of_expr bound ]))
                  p.pred_params
                @ [ of_fmla p.pred_body ] ))
          spec.preds
      @ List.map
          (fun (a : Ast.assert_decl) ->
            Node ("assert:" ^ a.assert_name, [ of_fmla a.assert_body ]))
          spec.asserts
      @ List.map of_command spec.commands )

let rec size (Node (_, kids)) = 1 + List.fold_left (fun n t -> n + size t) 0 kids

(* Flatten a tree to arrays: per node, its label and the ids of its
   children.  Node 0 is the root; ids are preorder. *)
let annotate t =
  let labels = ref [] and children = ref [] and count = ref 0 in
  let rec walk (Node (label, kids)) =
    let id = !count in
    incr count;
    labels := (id, label) :: !labels;
    let kid_ids = List.map walk kids in
    children := (id, kid_ids) :: !children;
    id
  in
  ignore (walk t);
  let n = !count in
  let label_arr = Array.make n "" in
  List.iter (fun (i, l) -> label_arr.(i) <- l) !labels;
  let child_arr = Array.make n [] in
  List.iter (fun (i, ks) -> child_arr.(i) <- ks) !children;
  (label_arr, child_arr)

(* Collins-Duffy subset-tree kernel with decay.  C(n1, n2) = 0 when labels
   or child counts differ; lambda when both are leaves; otherwise
   lambda * prod_i (1 + C(child_i, child_i')). *)
let kernel ?(decay = 0.2) t1 t2 =
  let l1, c1 = annotate t1 and l2, c2 = annotate t2 in
  let n1 = Array.length l1 and n2 = Array.length l2 in
  let memo = Array.make (n1 * n2) Float.nan in
  let rec c i j =
    if l1.(i) <> l2.(j) || List.length c1.(i) <> List.length c2.(j) then 0.
    else begin
      let key = (i * n2) + j in
      let v = memo.(key) in
      if not (Float.is_nan v) then v
      else begin
        let v =
          if c1.(i) = [] then decay
          else
            decay
            *. List.fold_left2
                 (fun acc ki kj -> acc *. (1. +. c ki kj))
                 1. c1.(i) c2.(j)
        in
        memo.(key) <- v;
        v
      end
    end
  in
  let total = ref 0. in
  for i = 0 to n1 - 1 do
    for j = 0 to n2 - 1 do
      total := !total +. c i j
    done
  done;
  !total

let similarity ?(decay = 0.2) t1 t2 =
  let k12 = kernel ~decay t1 t2 in
  let k11 = kernel ~decay t1 t1 in
  let k22 = kernel ~decay t2 t2 in
  if k11 <= 0. || k22 <= 0. then 0. else k12 /. sqrt (k11 *. k22)

let syntax_match a b = similarity (of_spec a) (of_spec b)
