(** The Repair (REP) metric: command-outcome equisatisfiability against the
    ground truth, exactly as defined in the study — every command of the
    ground-truth specification is executed (via the analyzer) against both
    the ground truth and the proposed fix; REP is 1 iff all outcomes agree.

    A proposed fix that fails to type-check, lacks a predicate or assertion
    named by a ground-truth command, or drives the analyzer to an Unknown
    outcome scores 0. *)

module Alloy = Specrepair_alloy

val rep :
  ?max_conflicts:int ->
  ground_truth:Alloy.Ast.spec ->
  candidate:Alloy.Ast.spec ->
  unit ->
  bool

val rep_score :
  ?max_conflicts:int ->
  ground_truth:Alloy.Ast.spec ->
  candidate:Alloy.Ast.spec ->
  unit ->
  int
(** 1 / 0 form used in the tables. *)

val equivalent_constraints :
  ?max_conflicts:int ->
  scope:Specrepair_solver.Bounds.scope ->
  ground_truth:Alloy.Ast.spec ->
  candidate:Alloy.Ast.spec ->
  unit ->
  bool option
(** A stronger check than the paper's REP (provided as an extension): are
    the fact conjunctions of the two specs equivalent within the scope?
    Requires identical signature/field declarations; [None] when they
    differ or when the analyzer is inconclusive. *)
