let tokens text =
  String.split_on_char ' '
    (String.map (fun c -> if c = '\n' || c = '\t' || c = '\r' then ' ' else c) text)
  |> List.filter (( <> ) "")

let ngrams n words =
  let arr = Array.of_list words in
  let len = Array.length arr in
  if len < n then []
  else
    List.init (len - n + 1) (fun i -> Array.to_list (Array.sub arr i n))

let counts xs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun x ->
      Hashtbl.replace tbl x (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x)))
    xs;
  tbl

let ngram_precision ~n ~reference ~candidate =
  let cand_grams = ngrams n candidate in
  let ref_counts = counts (ngrams n reference) in
  let cand_counts = counts cand_grams in
  let matches =
    Hashtbl.fold
      (fun gram c acc ->
        let r = Option.value ~default:0 (Hashtbl.find_opt ref_counts gram) in
        acc + min c r)
      cand_counts 0
  in
  let total = List.length cand_grams in
  let p = if total = 0 then 0. else float_of_int matches /. float_of_int total in
  (p, matches, total)

let sentence_bleu ?(max_n = 4) ~reference ~candidate () =
  if candidate = [] || reference = [] then if candidate = reference then 1. else 0.
  else begin
    let log_sum = ref 0. in
    let usable = ref 0 in
    for n = 1 to max_n do
      let _, matches, total = ngram_precision ~n ~reference ~candidate in
      if total > 0 then begin
        incr usable;
        let p =
          if n = 1 then
            if matches = 0 then 1e-9
            else float_of_int matches /. float_of_int total
          else
            (* add-one smoothing for higher orders *)
            float_of_int (matches + 1) /. float_of_int (total + 1)
        in
        log_sum := !log_sum +. log p
      end
    done;
    if !usable = 0 then 0.
    else begin
      let geo = exp (!log_sum /. float_of_int !usable) in
      let c = float_of_int (List.length candidate) in
      let r = float_of_int (List.length reference) in
      let brevity = if c >= r then 1. else exp (1. -. (r /. c)) in
      brevity *. geo
    end
  end

let token_match ~reference ~candidate =
  sentence_bleu ~reference:(tokens reference) ~candidate:(tokens candidate) ()
