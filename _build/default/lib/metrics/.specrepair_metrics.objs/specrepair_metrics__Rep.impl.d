lib/metrics/rep.ml: List Specrepair_alloy Specrepair_solver
