lib/metrics/tree_kernel.ml: Array Float List Printf Specrepair_alloy
