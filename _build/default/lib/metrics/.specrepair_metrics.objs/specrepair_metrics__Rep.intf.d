lib/metrics/rep.mli: Specrepair_alloy Specrepair_solver
