lib/metrics/pearson.mli:
