lib/metrics/bleu.ml: Array Hashtbl List Option String
