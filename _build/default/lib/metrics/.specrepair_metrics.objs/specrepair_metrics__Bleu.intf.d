lib/metrics/bleu.mli:
