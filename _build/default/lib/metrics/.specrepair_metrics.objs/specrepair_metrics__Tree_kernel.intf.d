lib/metrics/tree_kernel.mli: Specrepair_alloy
