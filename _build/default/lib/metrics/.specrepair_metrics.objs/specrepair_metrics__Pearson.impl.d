lib/metrics/pearson.ml: Array Float
