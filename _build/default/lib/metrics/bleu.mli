(** Sentence-level BLEU (Papineni et al., ACL'02) — the Token Match (TM)
    metric of the study.

    Tokens are whitespace-separated words of the pretty-printed
    specifications.  Modified n-gram precisions for n = 1..4 are combined
    geometrically with a brevity penalty; higher-order precisions use add-one
    smoothing (Chen & Cherry method 2) so near-identical short texts do not
    collapse to zero. *)

val ngram_precision : n:int -> reference:string list -> candidate:string list -> float * int * int
(** [(clipped matches / total, matches, total)] for diagnostics. *)

val sentence_bleu :
  ?max_n:int -> reference:string list -> candidate:string list -> unit -> float
(** In [0, 1]; 1 iff token sequences are identical (for texts of length
    >= [max_n]). *)

val tokens : string -> string list
(** Whitespace tokenization. *)

val token_match : reference:string -> candidate:string -> float
(** [sentence_bleu] over {!tokens} of both texts. *)
