module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast

let outcome_tag = function
  | Solver.Analyzer.Sat _ -> `Sat
  | Solver.Analyzer.Unsat -> `Unsat
  | Solver.Analyzer.Unknown -> `Unknown

let command_applicable (spec : Ast.spec) (c : Ast.command) =
  match c.cmd_kind with
  | Ast.Run_pred name -> Ast.find_pred spec name <> None
  | Ast.Check name -> Ast.find_assert spec name <> None
  | Ast.Run_fmla _ -> true

let rep ?max_conflicts ~ground_truth ~candidate () =
  match
    ( Alloy.Typecheck.check_result ground_truth,
      Alloy.Typecheck.check_result candidate )
  with
  | Ok gt_env, Ok cand_env ->
      ground_truth.commands <> []
      && List.for_all
           (fun c ->
             command_applicable candidate c
             &&
             let o1 =
               outcome_tag (Solver.Analyzer.run_command ?max_conflicts gt_env c)
             in
             let o2 =
               outcome_tag
                 (Solver.Analyzer.run_command ?max_conflicts cand_env c)
             in
             o1 <> `Unknown && o1 = o2)
           ground_truth.commands
  | _ -> false

let rep_score ?max_conflicts ~ground_truth ~candidate () =
  if rep ?max_conflicts ~ground_truth ~candidate () then 1 else 0

let conj_facts (spec : Ast.spec) =
  List.fold_left
    (fun acc (f : Ast.fact_decl) -> Ast.And (acc, f.fact_body))
    Ast.True spec.facts

let same_declarations (a : Ast.spec) (b : Ast.spec) = a.sigs = b.sigs

let equivalent_constraints ?max_conflicts ~scope ~ground_truth ~candidate () =
  if not (same_declarations ground_truth candidate) then None
  else
    match Alloy.Typecheck.check_result { ground_truth with facts = [] } with
    | Error _ -> None
    | Ok env -> (
        let difference =
          Ast.Not (Ast.Iff (conj_facts ground_truth, conj_facts candidate))
        in
        match Solver.Analyzer.solve_fmla ?max_conflicts env scope difference with
        | Solver.Analyzer.Unsat -> Some true
        | Solver.Analyzer.Sat _ -> Some false
        | Solver.Analyzer.Unknown -> None
        | exception Solver.Translate.Translate_error _ -> None)
