(** Subtree-kernel similarity between parse trees (Collins & Duffy style
    subset-tree kernel) — the Syntax Match (SM) metric of the study.

    Specifications are rendered as labeled ordered trees (whitespace and
    formatting are irrelevant by construction); the kernel counts common
    subset trees with a decay factor and is normalised so identical trees
    score 1 and structurally disjoint trees score ~0. *)

type tree = Node of string * tree list

val of_spec : Specrepair_alloy.Ast.spec -> tree
val of_fmla : Specrepair_alloy.Ast.fmla -> tree
val size : tree -> int
val kernel : ?decay:float -> tree -> tree -> float
(** Raw (unnormalised) subset-tree kernel value. *)

val similarity : ?decay:float -> tree -> tree -> float
(** Normalised: [kernel a b / sqrt (kernel a a *. kernel b b)], in [0, 1]. *)

val syntax_match : Specrepair_alloy.Ast.spec -> Specrepair_alloy.Ast.spec -> float
(** [similarity] of the two parse trees (decay 0.2 — small enough that
    the kernel's diagonal dominance does not crush single-edit distances). *)
