(** Typed synthesis of candidate expressions and atomic formulas.

    The pool enumerates, deterministically and in increasing size, the
    well-typed expressions of a requested arity over the specification's
    vocabulary (signatures, fields, variables in scope) up to a small depth.
    It feeds replacement-based mutation operators, ATR's repair templates,
    and the simulated LLM's edit proposals. *)

module Ast = Specrepair_alloy.Ast

val exprs :
  Specrepair_alloy.Typecheck.env ->
  vars:(string * int) list ->
  arity:int ->
  depth:int ->
  ?limit:int ->
  unit ->
  Ast.expr list
(** Expressions of exactly [arity], nested at most [depth] operators deep
    (depth 1 = bare names and constants).  At most [limit] (default 200)
    results. *)

val atomic_fmlas :
  Specrepair_alloy.Typecheck.env ->
  vars:(string * int) list ->
  ?limit:int ->
  unit ->
  Ast.fmla list
(** Atomic formulas (comparisons and multiplicity tests) over depth-2
    expressions; the building blocks of strengthen/weaken templates. *)
