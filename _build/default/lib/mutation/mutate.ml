module Alloy = Specrepair_alloy
module Ast = Specrepair_alloy.Ast
open Ast

type t = {
  site : Location.site;
  path : Location.path;
  replacement : Location.node;
  op : string;
}

let pp ppf m =
  let repl =
    match m.replacement with
    | Location.F f -> Alloy.Pretty.fmla_to_string f
    | Location.E e -> Alloy.Pretty.expr_to_string e
  in
  Format.fprintf ppf "%s at %s[%s]: %s" m.op
    (Location.site_to_string m.site)
    (Location.path_to_string m.path)
    repl

let apply spec m =
  let body = Location.body spec m.site in
  Location.with_body spec m.site (Location.replace body m.path m.replacement)

let binop_swaps = function
  | Union -> [ Diff; Inter ]
  | Diff -> [ Union; Inter ]
  | Inter -> [ Union; Diff ]
  | Override -> [ Union ]
  | Join | Product | Domrestr | Ranrestr -> []

let cmpop_swaps = function
  | Cin -> [ Ceq; Cnotin ]
  | Cnotin -> [ Cin; Cneq ]
  | Ceq -> [ Cin; Cneq ]
  | Cneq -> [ Ceq; Cnotin ]

let fmult_swaps = function
  | Fno -> [ Fsome; Flone ]
  | Fsome -> [ Fno; Fone; Flone ]
  | Flone -> [ Fone; Fsome; Fno ]
  | Fone -> [ Flone; Fsome ]

let quant_swaps = function
  | Qall -> [ Qsome; Qno; Qone ]
  | Qsome -> [ Qall; Qno; Qone ]
  | Qno -> [ Qsome; Qall; Qlone ]
  | Qlone -> [ Qone; Qall ]
  | Qone -> [ Qlone; Qsome; Qall ]

let intcmp_swaps = function
  | Ilt -> [ Ile; Igt ]
  | Ile -> [ Ilt; Ige; Ieq ]
  | Ieq -> [ Ineq; Ile; Ige ]
  | Ineq -> [ Ieq ]
  | Ige -> [ Igt; Ile; Ieq ]
  | Igt -> [ Ige; Ilt ]

(* Mutations of an expression node. *)
let expr_mutations env vars e ~with_pool =
  let arity_of e =
    match Alloy.Typecheck.expr_arity env vars e with
    | a -> Some a
    | exception Alloy.Typecheck.Type_error _ -> None
  in
  let structural =
    match e with
    | Binop (op, a, b) ->
        List.map (fun op' -> ("binop-swap", Binop (op', a, b))) (binop_swaps op)
        @ (match op with
          | Union | Diff | Inter ->
              [ ("operand-drop", a); ("operand-drop", b) ]
          | Join | Product | Override | Domrestr | Ranrestr -> [])
        @
        (match op with
        | Product when arity_of a = arity_of b ->
            [ ("operand-swap", Binop (op, b, a)) ]
        | _ -> [])
    | Unop (Closure, inner) ->
        [ ("closure-swap", Unop (Rclosure, inner)); ("closure-drop", inner) ]
    | Unop (Rclosure, inner) ->
        [ ("closure-swap", Unop (Closure, inner)); ("closure-drop", inner) ]
    | Unop (Transpose, inner) -> [ ("transpose-drop", inner) ]
    | Rel _ | Univ | Iden | None_ | Ite _ -> []
    | Compr (decls, body) ->
        (* comprehension body quantifier-polarity flips *)
        [ ("compr-negate", Compr (decls, Not body)) ]
  in
  let unary_additions =
    match arity_of e with
    | Some 2 -> (
        match e with
        | Unop _ -> []
        | _ ->
            [
              ("closure-add", Unop (Closure, e));
              ("transpose-add", Unop (Transpose, e));
            ])
    | _ -> []
  in
  let pool_replacements =
    match arity_of e with
    | Some a ->
        let depth = if with_pool then 2 else 1 in
        let limit = if with_pool then 60 else 15 in
        Pool.exprs env ~vars ~arity:a ~depth ~limit ()
        |> List.filter (fun e' -> e' <> e)
        |> List.map (fun e' -> ("expr-replace", e'))
    | None -> []
  in
  structural @ unary_additions @ pool_replacements

(* Mutations of a formula node. *)
let fmla_mutations env vars f ~with_pool =
  let structural =
    match f with
    | Cmp (op, a, b) ->
        List.map (fun op' -> ("cmpop-swap", Cmp (op', a, b))) (cmpop_swaps op)
        @ [ ("cmp-operand-swap", Cmp (op, b, a)) ]
    | Multf (m, e) ->
        List.map (fun m' -> ("fmult-swap", Multf (m', e))) (fmult_swaps m)
    | Card (op, e, k) ->
        List.map (fun op' -> ("intcmp-swap", Card (op', e, k))) (intcmp_swaps op)
        @ (("card-bump", Card (op, e, k + 1))
          :: (if k > 0 then [ ("card-bump", Card (op, e, k - 1)) ] else []))
    | Not g -> [ ("negation-drop", g) ]
    | And (a, b) ->
        [
          ("junct-drop", a);
          ("junct-drop", b);
          ("connective-swap", Or (a, b));
          ("connective-swap", Implies (a, b));
        ]
    | Or (a, b) ->
        [
          ("junct-drop", a);
          ("junct-drop", b);
          ("connective-swap", And (a, b));
          ("connective-swap", Implies (a, b));
        ]
    | Implies (a, b) ->
        [
          ("connective-swap", And (a, b));
          ("connective-swap", Or (a, b));
          ("connective-swap", Iff (a, b));
          ("implies-flip", Implies (b, a));
          ("implies-drop-lhs", b);
        ]
    | Iff (a, b) ->
        [ ("connective-swap", Implies (a, b)); ("connective-swap", And (a, b)) ]
    | Quant (q, decls, body) ->
        List.map (fun q' -> ("quant-swap", Quant (q', decls, body))) (quant_swaps q)
    | True | False | Call _ | Let _ -> []
  in
  let negation_add =
    match f with Not _ -> [] | _ -> [ ("negation-add", Not f) ]
  in
  let pool_juncts =
    if not with_pool then []
    else
      Pool.atomic_fmlas env ~vars ~limit:40 ()
      |> List.concat_map (fun atom ->
             [
               ("junct-add-and", And (f, atom));
               ("junct-add-or", Or (f, atom));
             ])
  in
  structural @ negation_add @ pool_juncts

let mutations_at env spec site path ?(with_pool = false) () =
  let node = Location.get (Location.body spec site) path in
  let vars = Location.vars_at env spec site path in
  let results =
    match node with
    | Location.F f ->
        List.map
          (fun (op, f') -> { site; path; replacement = Location.F f'; op })
          (fmla_mutations env vars f ~with_pool)
    | Location.E e ->
        List.map
          (fun (op, e') -> { site; path; replacement = Location.E e'; op })
          (expr_mutations env vars e ~with_pool)
  in
  (* drop no-op mutations *)
  List.filter (fun m -> m.replacement <> node) results

let all_mutations env spec ?sites ?(with_pool = false) () =
  let sites = match sites with Some s -> s | None -> Location.sites spec in
  List.concat_map
    (fun site ->
      let body = Location.body spec site in
      List.concat_map
        (fun (path, _) -> mutations_at env spec site path ~with_pool ())
        (Location.subnodes body))
    sites

let well_typed _env spec =
  match Alloy.Typecheck.check_result spec with Ok _ -> true | Error _ -> false
