(** Mutation operators over specification constraint bodies.

    Mutations are the shared search space of the traditional repair tools
    (ARepair's greedy search, BeAFix's bounded-exhaustive search) and the
    fault-injection side of the benchmark generator.  Each mutation replaces
    the node at one location with a well-typed alternative. *)

module Ast = Specrepair_alloy.Ast

type t = {
  site : Location.site;
  path : Location.path;
  replacement : Location.node;
  op : string;  (** operator label, e.g. "binop-swap", for diagnostics *)
}

val pp : Format.formatter -> t -> unit

val apply : Ast.spec -> t -> Ast.spec
(** Raises [Not_found] / [Invalid_argument] on stale locations. *)

val mutations_at :
  Specrepair_alloy.Typecheck.env ->
  Ast.spec ->
  Location.site ->
  Location.path ->
  ?with_pool:bool ->
  unit ->
  t list
(** All single mutations of the node at the location.  [with_pool] (default
    false) additionally proposes replacement expressions and added juncts
    drawn from {!Pool}, which widens the space considerably. *)

val all_mutations :
  Specrepair_alloy.Typecheck.env ->
  Ast.spec ->
  ?sites:Location.site list ->
  ?with_pool:bool ->
  unit ->
  t list
(** Mutations at every node of the given sites (default: all sites). *)

val well_typed : Specrepair_alloy.Typecheck.env -> Ast.spec -> bool
(** Does the mutated spec still type-check?  ([apply] can produce arity
    violations only through pool replacements at positions whose expected
    arity depends on context; callers filter with this.) *)
