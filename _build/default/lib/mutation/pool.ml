module Alloy = Specrepair_alloy
module Ast = Specrepair_alloy.Ast

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs

(* Vocabulary of named relations with their arities: variables first (they
   make the most local repairs), then signatures, then fields. *)
let vocabulary (env : Alloy.Typecheck.env) vars =
  let sigs = List.map (fun s -> (s.Ast.sig_name, 1)) env.spec.sigs in
  let fields =
    List.concat_map
      (fun (s : Ast.sig_decl) ->
        List.map
          (fun (f : Ast.field) -> (f.Ast.fld_name, 1 + List.length f.fld_cols))
          s.sig_fields)
      env.spec.sigs
  in
  vars @ sigs @ fields

let rec level env vocab vars n =
  if n <= 1 then
    List.filter_map
      (fun (name, _a) -> Some (Ast.Rel name))
      vocab
    @ [ Ast.Univ; Ast.Iden; Ast.None_ ]
  else
    let below = level env vocab vars (n - 1) in
    let smaller = level env vocab vars 1 in
    let arity_of e =
      match Alloy.Typecheck.expr_arity env vars e with
      | a -> Some a
      | exception Alloy.Typecheck.Type_error _ -> None
    in
    let joins =
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              match (arity_of a, arity_of b) with
              | Some aa, Some ab when aa + ab - 2 >= 1 ->
                  Some (Ast.Binop (Join, a, b))
              | _ -> None)
            smaller)
        below
    in
    let setops =
      List.concat_map
        (fun a ->
          List.concat_map
            (fun b ->
              match (arity_of a, arity_of b) with
              | Some aa, Some ab when aa = ab ->
                  [
                    Ast.Binop (Union, a, b);
                    Ast.Binop (Diff, a, b);
                    Ast.Binop (Inter, a, b);
                  ]
              | _ -> [])
            smaller)
        below
    in
    let unops =
      List.filter_map
        (fun e ->
          match arity_of e with
          | Some 2 -> Some (Ast.Unop (Closure, e))
          | _ -> None)
        below
      @ List.filter_map
          (fun e ->
            match arity_of e with
            | Some 2 -> Some (Ast.Unop (Transpose, e))
            | _ -> None)
          below
    in
    below @ joins @ unops @ setops

let exprs env ~vars ~arity ~depth ?(limit = 200) () =
  let vocab = vocabulary env vars in
  let candidates = level env vocab vars depth in
  let arity_of e =
    match Alloy.Typecheck.expr_arity env vars e with
    | a -> Some a
    | exception Alloy.Typecheck.Type_error _ -> None
  in
  let matching = List.filter (fun e -> arity_of e = Some arity) candidates in
  (* stable dedup preserving enumeration order *)
  let seen = Hashtbl.create 64 in
  let deduped =
    List.filter
      (fun e ->
        if Hashtbl.mem seen e then false
        else begin
          Hashtbl.add seen e ();
          true
        end)
      matching
  in
  take limit deduped

let atomic_fmlas env ~vars ?(limit = 300) () =
  let pool1 = exprs env ~vars ~arity:1 ~depth:2 ~limit:40 () in
  let pool2 = exprs env ~vars ~arity:2 ~depth:2 ~limit:30 () in
  let mults =
    List.concat_map
      (fun e ->
        [
          Ast.Multf (Fsome, e);
          Ast.Multf (Fno, e);
          Ast.Multf (Fone, e);
          Ast.Multf (Flone, e);
        ])
      (take 15 pool1 @ take 10 pool2)
  in
  let cmps pool =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            if a = b then []
            else
              [
                Ast.Cmp (Cin, a, b);
                Ast.Cmp (Ceq, a, b);
                Ast.Cmp (Cnotin, a, b);
              ])
          (take 14 pool))
      (take 14 pool)
  in
  take limit (mults @ cmps pool1 @ cmps pool2)
