lib/mutation/location.ml: List Printf Specrepair_alloy String
