lib/mutation/mutate.mli: Format Location Specrepair_alloy
