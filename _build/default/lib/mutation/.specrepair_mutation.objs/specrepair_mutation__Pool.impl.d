lib/mutation/pool.ml: Hashtbl List Specrepair_alloy
