lib/mutation/mutate.ml: Format List Location Pool Specrepair_alloy
