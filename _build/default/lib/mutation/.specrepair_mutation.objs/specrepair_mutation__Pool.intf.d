lib/mutation/pool.mli: Specrepair_alloy
