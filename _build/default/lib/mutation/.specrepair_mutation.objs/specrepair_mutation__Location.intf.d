lib/mutation/location.mli: Specrepair_alloy
