type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t array
  | Or of t array
  | Iff of t * t
  | Ite of t * t * t

let tru = True
let fls = False

let var v =
  if v < 0 then invalid_arg "Formula.var";
  Var v

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let is_true = function True -> true | _ -> false
let is_false = function False -> true | _ -> false

(* Flatten one level of nesting and drop neutral elements; detect the
   absorbing constant.  Shared by [and_] and [or_]. *)
let gather ~absorbing ~neutral ~sub fs =
  let exception Absorbed in
  let acc = ref [] in
  let n = ref 0 in
  try
    List.iter
      (fun f ->
        if f = absorbing then raise Absorbed
        else if f = neutral then ()
        else
          match sub f with
          | Some inner ->
              Array.iter
                (fun g ->
                  acc := g :: !acc;
                  incr n)
                inner
          | None ->
              acc := f :: !acc;
              incr n)
      fs;
    Some (List.rev !acc, !n)
  with Absorbed -> None

let and_ fs =
  match gather ~absorbing:False ~neutral:True
          ~sub:(function And gs -> Some gs | _ -> None)
          fs
  with
  | None -> False
  | Some ([], _) -> True
  | Some ([ f ], _) -> f
  | Some (fs, _) -> And (Array.of_list fs)

let or_ fs =
  match gather ~absorbing:True ~neutral:False
          ~sub:(function Or gs -> Some gs | _ -> None)
          fs
  with
  | None -> True
  | Some ([], _) -> False
  | Some ([ f ], _) -> f
  | Some (fs, _) -> Or (Array.of_list fs)

let and2 a b = match (a, b) with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | _ -> and_ [ a; b ]

let or2 a b = match (a, b) with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | _ -> or_ [ a; b ]

let imp a b = or2 (not_ a) b

let iff a b =
  match (a, b) with
  | True, f | f, True -> f
  | False, f | f, False -> not_ f
  | _ -> if a == b then True else Iff (a, b)

let ite c t e =
  match c with
  | True -> t
  | False -> e
  | _ -> (
      match (t, e) with
      | True, _ -> or2 c e
      | False, _ -> and2 (not_ c) e
      | _, True -> or2 (not_ c) t
      | _, False -> and2 c t
      | _ -> if t == e then t else Ite (c, t, e))

let rec eval env = function
  | True -> true
  | False -> false
  | Var v -> env v
  | Not f -> not (eval env f)
  | And fs -> Array.for_all (eval env) fs
  | Or fs -> Array.exists (eval env) fs
  | Iff (a, b) -> eval env a = eval env b
  | Ite (c, t, e) -> if eval env c then eval env t else eval env e

module Phys = struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end

module Phys_tbl = Hashtbl.Make (Phys)

let size f =
  let seen = Phys_tbl.create 64 in
  let count = ref 0 in
  let rec go f =
    if not (Phys_tbl.mem seen f) then begin
      Phys_tbl.add seen f ();
      incr count;
      match f with
      | True | False | Var _ -> ()
      | Not g -> go g
      | And gs | Or gs -> Array.iter go gs
      | Iff (a, b) ->
          go a;
          go b
      | Ite (a, b, c) ->
          go a;
          go b;
          go c
    end
  in
  go f;
  !count

let vars f =
  let seen = Phys_tbl.create 64 in
  let acc = Hashtbl.create 16 in
  let rec go f =
    if not (Phys_tbl.mem seen f) then begin
      Phys_tbl.add seen f ();
      match f with
      | True | False -> ()
      | Var v -> Hashtbl.replace acc v ()
      | Not g -> go g
      | And gs | Or gs -> Array.iter go gs
      | Iff (a, b) ->
          go a;
          go b
      | Ite (a, b, c) ->
          go a;
          go b;
          go c
    end
  in
  go f;
  List.sort Int.compare (Hashtbl.fold (fun v () l -> v :: l) acc [])

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Var v -> Format.fprintf ppf "v%d" v
  | Not f -> Format.fprintf ppf "!%a" pp_atom f
  | And fs -> pp_nary ppf "&" fs
  | Or fs -> pp_nary ppf "|" fs
  | Iff (a, b) -> Format.fprintf ppf "(%a <=> %a)" pp a pp b
  | Ite (c, t, e) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp t pp e

and pp_atom ppf f =
  match f with
  | True | False | Var _ | Not _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f

and pp_nary ppf op fs =
  Format.pp_print_char ppf '(';
  Array.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf " %s " op;
      pp ppf f)
    fs;
  Format.pp_print_char ppf ')'
