(** Boolean circuits over solver variables.

    This is the intermediate form produced by the relational compiler: each
    node is a boolean combination of primary variables (tuple-membership
    variables allocated in a {!Solver.t}).  Smart constructors perform local
    simplification ([and_ [] = tru], constant absorption, double-negation,
    flattening) so the compiler can combine matrices without special-casing
    constants.  Physical sharing of subterms is preserved and exploited by
    {!Tseitin}. *)

type t = private
  | True
  | False
  | Var of int  (** a solver variable *)
  | Not of t
  | And of t array
  | Or of t array
  | Iff of t * t
  | Ite of t * t * t  (** boolean if-then-else *)

val tru : t
val fls : t
val var : int -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val and2 : t -> t -> t
val or2 : t -> t -> t
val imp : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t

val is_true : t -> bool
val is_false : t -> bool

val eval : (int -> bool) -> t -> bool
(** [eval env f] evaluates [f] under the variable assignment [env]. *)

val size : t -> int
(** Number of nodes, counting shared subterms once. *)

val vars : t -> int list
(** Sorted list of distinct variables occurring in the formula. *)

val pp : Format.formatter -> t -> unit

module Phys_tbl : Hashtbl.S with type key = t
(** Hash table keyed on physical identity of formula nodes; used by
    {!Tseitin} to share definition variables across a DAG. *)
