type t = {
  heap : int Vec.t; (* heap of variable indices *)
  indices : int Vec.t; (* variable -> position in [heap], -1 if absent *)
  activity : int -> float;
}

let create ~activity =
  { heap = Vec.create ~dummy:(-1); indices = Vec.create ~dummy:(-1); activity }

let ensure t v =
  while Vec.length t.indices <= v do
    Vec.push t.indices (-1)
  done

let in_heap t v = v < Vec.length t.indices && Vec.get t.indices v >= 0
let is_empty t = Vec.is_empty t.heap
let size t = Vec.length t.heap
let left i = (2 * i) + 1
let right i = (2 * i) + 2
let parent i = (i - 1) / 2

let place t v i =
  Vec.set t.heap i v;
  Vec.set t.indices v i

let rec sift_up t i =
  if i > 0 then begin
    let v = Vec.get t.heap i in
    let p = parent i in
    let pv = Vec.get t.heap p in
    if t.activity v > t.activity pv then begin
      place t pv i;
      place t v p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let n = Vec.length t.heap in
  let l = left i and r = right i in
  let best = ref i in
  if l < n && t.activity (Vec.get t.heap l) > t.activity (Vec.get t.heap !best)
  then best := l;
  if r < n && t.activity (Vec.get t.heap r) > t.activity (Vec.get t.heap !best)
  then best := r;
  if !best <> i then begin
    let v = Vec.get t.heap i and bv = Vec.get t.heap !best in
    place t bv i;
    place t v !best;
    sift_down t !best
  end

let insert t v =
  ensure t v;
  if not (in_heap t v) then begin
    Vec.push t.heap v;
    Vec.set t.indices v (Vec.length t.heap - 1);
    sift_up t (Vec.length t.heap - 1)
  end

let increase t v = if in_heap t v then sift_up t (Vec.get t.indices v)

let remove_max t =
  if is_empty t then raise Not_found;
  let top = Vec.get t.heap 0 in
  let last = Vec.pop t.heap in
  Vec.set t.indices top (-1);
  if not (Vec.is_empty t.heap) then begin
    place t last 0;
    sift_down t 0
  end;
  top

let rebuild t vars =
  Vec.clear t.heap;
  for i = 0 to Vec.length t.indices - 1 do
    Vec.set t.indices i (-1)
  done;
  List.iter (insert t) vars
