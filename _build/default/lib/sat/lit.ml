type t = int

let pos v =
  if v < 0 then invalid_arg "Lit.pos: negative variable";
  v * 2

let neg v =
  if v < 0 then invalid_arg "Lit.neg: negative variable";
  (v * 2) + 1

let make v sign = if sign then pos v else neg v
let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1
let to_int l = l

let of_int i =
  if i < 0 then invalid_arg "Lit.of_int: negative encoding";
  i

let to_dimacs l = if sign l then var l + 1 else -(var l + 1)

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: zero";
  if i > 0 then pos (i - 1) else neg (-i - 1)

let compare = Int.compare
let equal = Int.equal
let pp ppf l = Format.fprintf ppf "%d" (to_dimacs l)
