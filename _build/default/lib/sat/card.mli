(** Cardinality constraints over boolean formulas.

    Builds sequential-counter circuits (Sinz 2005) expressing "at least /
    at most / exactly [k] of the inputs hold".  The result is an ordinary
    {!Formula.t}, so counters compose with the rest of a translation and
    share structure through {!Tseitin}.  Cost is O(n·k) nodes. *)

val at_least : int -> Formula.t list -> Formula.t
(** [at_least k fs] holds iff at least [k] of [fs] are true.
    [at_least 0 _] is [tru]. *)

val at_most : int -> Formula.t list -> Formula.t
(** [at_most k fs] holds iff at most [k] of [fs] are true. *)

val exactly : int -> Formula.t list -> Formula.t

val count_geq : Formula.t list -> int -> Formula.t
(** [count_geq fs k = at_least k fs]; spelled for comparison operators. *)

val compare_const : [ `Lt | `Le | `Eq | `Ne | `Ge | `Gt ] -> Formula.t list -> int -> Formula.t
(** [compare_const op fs k] holds iff [|{f in fs | f}| op k]. *)
