(** Growable arrays (OCaml 5.1 predates [Dynarray], so we provide our own).

    Elements are stored contiguously; [push] is amortised O(1).  The vector
    keeps a dummy element to fill unused capacity, supplied at creation. *)

type 'a t

val create : dummy:'a -> 'a t
val make : int -> 'a -> dummy:'a -> 'a t
(** [make n x ~dummy] is a vector of [n] copies of [x]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Removes and returns the last element.  Raises [Invalid_argument] when
    empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val copy : 'a t -> 'a t

val swap_remove : 'a t -> int -> unit
(** [swap_remove v i] removes element [i] by moving the last element into its
    place; O(1), does not preserve order. *)
