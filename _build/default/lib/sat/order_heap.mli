(** Indexed max-heap over variables ordered by activity, in the style of
    MiniSat's [OrderHeap].  The heap stores variable indices; the comparison
    reads a caller-supplied activity lookup so activities can be bumped
    in place (callers must call {!decrease}/{!increase} after a change to
    restore heap order — with VSIDS bumping only increases occur). *)

type t

val create : activity:(int -> float) -> t
(** [create ~activity] is an empty heap whose order is given by [activity]. *)

val in_heap : t -> int -> bool
val insert : t -> int -> unit
(** Inserts a variable; no-op if already present. *)

val increase : t -> int -> unit
(** Notify that the activity of a present variable increased. *)

val remove_max : t -> int
(** Removes and returns the variable with the highest activity.
    Raises [Not_found] when empty. *)

val is_empty : t -> bool
val size : t -> int
val rebuild : t -> int list -> unit
(** [rebuild h vars] resets the heap to exactly [vars]. *)
