(** Propositional literals.

    A variable is a non-negative integer; a literal packs a variable and a
    sign into a single integer ([2 * var] for the positive literal,
    [2 * var + 1] for the negative one).  This encoding is shared by the
    solver, the Tseitin transformer, and the DIMACS reader/writer. *)

type t = private int

val pos : int -> t
(** [pos v] is the positive literal of variable [v].  Raises
    [Invalid_argument] if [v < 0]. *)

val neg : int -> t
(** [neg v] is the negative literal of variable [v]. *)

val make : int -> bool -> t
(** [make v sign] is [pos v] when [sign] and [neg v] otherwise. *)

val var : t -> int
(** Variable of a literal. *)

val sign : t -> bool
(** [sign l] is [true] for positive literals. *)

val negate : t -> t
(** Complement literal. *)

val to_int : t -> int
(** Raw encoded value (used as an array index by the solver). *)

val of_int : int -> t
(** Inverse of {!to_int}.  Raises [Invalid_argument] on negative input. *)

val to_dimacs : t -> int
(** Signed DIMACS form: variable index plus one, negated when negative. *)

val of_dimacs : int -> t
(** Inverse of {!to_dimacs}.  Raises [Invalid_argument] on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
