lib/sat/card.ml: Array Formula List
