lib/sat/vec.mli:
