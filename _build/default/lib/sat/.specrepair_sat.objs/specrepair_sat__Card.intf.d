lib/sat/card.mli: Formula
