lib/sat/dimacs.mli: Format Lit Solver
