lib/sat/formula.mli: Format Hashtbl
