lib/sat/formula.ml: Array Format Hashtbl Int List
