lib/sat/tseitin.ml: Array Formula Lit Solver
