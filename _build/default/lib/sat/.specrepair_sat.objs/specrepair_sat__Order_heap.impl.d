lib/sat/order_heap.ml: List Vec
