lib/sat/solver.ml: Array Int Lazy List Lit Order_heap Vec
