lib/sat/solver.ml: Array Int Lazy List Lit Option Order_heap Vec
