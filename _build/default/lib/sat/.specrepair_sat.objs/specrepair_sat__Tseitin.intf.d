lib/sat/tseitin.mli: Formula Lit Solver
