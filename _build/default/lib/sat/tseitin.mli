(** Clausification of {!Formula.t} circuits into a {!Solver.t}.

    Uses the Tseitin transformation with memoisation on physical identity,
    so formula DAGs produced by the relational compiler translate to linearly
    many clauses.  The top level is treated specially: asserting a
    conjunction asserts each conjunct, and a top-level disjunction of
    literals becomes a single clause, avoiding needless definition
    variables. *)

type t

val create : Solver.t -> t
(** A clausifier writing into the given solver.  [Formula.Var v] refers to
    solver variable [v], which must already exist. *)

val lit_of : t -> Formula.t -> Lit.t
(** Returns a literal equivalent to the formula (introducing and defining a
    fresh variable when needed).  Raises [Invalid_argument] on the constants
    [True]/[False]; use {!assert_formula} for top-level constraints. *)

val assert_formula : t -> Formula.t -> unit
(** Adds clauses forcing the formula to hold. *)
