type cnf = { num_vars : int; clauses : Lit.t list list }

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let header_seen = ref false in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> failwith (Printf.sprintf "Dimacs.parse: bad token %S" tok)
    | Some 0 ->
        clauses := List.rev !current :: !clauses;
        current := []
    | Some i ->
        let l = Lit.of_dimacs i in
        if Lit.var l >= !num_vars then num_vars := Lit.var l + 1;
        current := l :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        header_seen := true;
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> (
            match int_of_string_opt nv with
            | Some n -> num_vars := max !num_vars n
            | None -> failwith "Dimacs.parse: bad header")
        | _ -> failwith "Dimacs.parse: bad header"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter handle_token)
    lines;
  if not !header_seen then failwith "Dimacs.parse: missing p-line";
  if !current <> [] then failwith "Dimacs.parse: clause not 0-terminated";
  { num_vars = !num_vars; clauses = List.rev !clauses }

let print ppf { num_vars; clauses } =
  Format.fprintf ppf "p cnf %d %d@." num_vars (List.length clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) c;
      Format.fprintf ppf "0@.")
    clauses

let load_into solver { num_vars; clauses } =
  let missing = num_vars - Solver.n_vars solver in
  if missing > 0 then ignore (Solver.new_vars solver missing);
  List.iter (Solver.add_clause solver) clauses
