type t = { solver : Solver.t; defs : Lit.t Formula.Phys_tbl.t }

let create solver = { solver; defs = Formula.Phys_tbl.create 256 }

let rec lit_of t (f : Formula.t) =
  match f with
  | True | False -> invalid_arg "Tseitin.lit_of: constant"
  | Var v -> Lit.pos v
  | Not g -> Lit.negate (lit_of t g)
  | And _ | Or _ | Iff _ | Ite _ -> (
      match Formula.Phys_tbl.find_opt t.defs f with
      | Some l -> l
      | None ->
          let l = define t f in
          Formula.Phys_tbl.add t.defs f l;
          l)

(* Introduce a definition variable [x] with clauses encoding x <=> f. *)
and define t (f : Formula.t) =
  let x = Lit.pos (Solver.new_var t.solver) in
  let nx = Lit.negate x in
  (match f with
  | True | False | Var _ | Not _ -> assert false
  | And fs ->
      let ls = Array.map (lit_of t) fs in
      Array.iter (fun l -> Solver.add_clause t.solver [ nx; l ]) ls;
      Solver.add_clause t.solver
        (x :: Array.to_list (Array.map Lit.negate ls))
  | Or fs ->
      let ls = Array.map (lit_of t) fs in
      Array.iter (fun l -> Solver.add_clause t.solver [ x; Lit.negate l ]) ls;
      Solver.add_clause t.solver (nx :: Array.to_list ls)
  | Iff (a, b) ->
      let la = lit_of t a and lb = lit_of t b in
      let nla = Lit.negate la and nlb = Lit.negate lb in
      Solver.add_clause t.solver [ nx; nla; lb ];
      Solver.add_clause t.solver [ nx; la; nlb ];
      Solver.add_clause t.solver [ x; la; lb ];
      Solver.add_clause t.solver [ x; nla; nlb ]
  | Ite (c, th, el) ->
      let lc = lit_of t c and lt = lit_of t th and le = lit_of t el in
      let nlc = Lit.negate lc and nlt = Lit.negate lt and nle = Lit.negate le in
      Solver.add_clause t.solver [ nx; nlc; lt ];
      Solver.add_clause t.solver [ nx; lc; le ];
      Solver.add_clause t.solver [ x; nlc; nlt ];
      Solver.add_clause t.solver [ x; lc; nle ]);
  x

let rec assert_formula t (f : Formula.t) =
  match f with
  | True -> ()
  | False -> Solver.add_clause t.solver []
  | And fs -> Array.iter (assert_formula t) fs
  | Or fs ->
      (* a top-level clause: clausify disjuncts to literals *)
      let ls = Array.to_list (Array.map (lit_of t) fs) in
      Solver.add_clause t.solver ls
  | Var _ | Not _ | Iff _ | Ite _ -> Solver.add_clause t.solver [ lit_of t f ]
