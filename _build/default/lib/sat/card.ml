(* Sequential counter: column [j] of row [i] says "at least j of the first i
   inputs hold".  We materialise rows up to column [k], reusing formula
   sharing for the Tseitin stage. *)

let counter_row k fs =
  (* returns the final row c.(j) for j = 0..k; c.(0) = tru *)
  let row = Array.make (k + 1) Formula.fls in
  row.(0) <- Formula.tru;
  List.iter
    (fun x ->
      (* update in place from high column to low so we read row i-1 values *)
      for j = k downto 1 do
        row.(j) <- Formula.or2 row.(j) (Formula.and2 x row.(j - 1))
      done)
    fs;
  row

let at_least k fs =
  if k <= 0 then Formula.tru
  else if k > List.length fs then Formula.fls
  else (counter_row k fs).(k)

let at_most k fs =
  if k < 0 then Formula.fls
  else if k >= List.length fs then Formula.tru
  else Formula.not_ (at_least (k + 1) fs)

let exactly k fs = Formula.and2 (at_least k fs) (at_most k fs)
let count_geq fs k = at_least k fs

let compare_const op fs k =
  match op with
  | `Lt -> at_most (k - 1) fs
  | `Le -> at_most k fs
  | `Eq -> exactly k fs
  | `Ne -> Formula.not_ (exactly k fs)
  | `Ge -> at_least k fs
  | `Gt -> at_least (k + 1) fs
