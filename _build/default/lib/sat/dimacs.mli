(** DIMACS CNF reading and writing, for interoperability and testing. *)

type cnf = { num_vars : int; clauses : Lit.t list list }

val parse : string -> cnf
(** Parses DIMACS CNF text.  Raises [Failure] with a diagnostic on
    malformed input. *)

val print : Format.formatter -> cnf -> unit

val load_into : Solver.t -> cnf -> unit
(** Allocates the variables of [cnf] in the solver (those not already
    present) and adds every clause. *)
