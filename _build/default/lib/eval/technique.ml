module Llm = Specrepair_llm

type t =
  | ARepair
  | ICEBAR
  | BeAFix
  | ATR
  | Single of Llm.Prompt.single_setting
  | Multi of Llm.Multi_round.feedback

let traditional = [ ARepair; ICEBAR; BeAFix; ATR ]

let llm_based =
  List.map (fun s -> Single s) Llm.Prompt.all_single_settings
  @ List.map (fun f -> Multi f) Llm.Multi_round.all_feedbacks

let all = traditional @ llm_based

let name = function
  | ARepair -> "ARepair"
  | ICEBAR -> "ICEBAR"
  | BeAFix -> "BeAFix"
  | ATR -> "ATR"
  | Single s -> Llm.Single_round.tool_name s
  | Multi f -> Llm.Multi_round.tool_name f

let of_name n = List.find_opt (fun t -> name t = n) all
