(** The twelve repair techniques of the study: four traditional tools, five
    Single-Round prompt settings, three Multi-Round feedback settings. *)

module Llm = Specrepair_llm

type t =
  | ARepair
  | ICEBAR
  | BeAFix
  | ATR
  | Single of Llm.Prompt.single_setting
  | Multi of Llm.Multi_round.feedback

val all : t list
(** In the paper's column order. *)

val traditional : t list
val llm_based : t list

val name : t -> string
(** Column label as printed in the tables, e.g. "Single-Round_Loc+Fix". *)

val of_name : string -> t option
