lib/eval/tables.mli: Specrepair_benchmarks Study
