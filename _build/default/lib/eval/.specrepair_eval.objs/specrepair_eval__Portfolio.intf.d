lib/eval/portfolio.mli: Specrepair_llm Specrepair_repair
