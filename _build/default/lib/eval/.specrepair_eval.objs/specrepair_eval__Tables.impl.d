lib/eval/tables.ml: Array Buffer Hashtbl List Printf Specrepair_benchmarks Specrepair_metrics String Study Technique
