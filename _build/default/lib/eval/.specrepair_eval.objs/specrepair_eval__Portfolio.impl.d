lib/eval/portfolio.ml: Specrepair_alloy Specrepair_llm Specrepair_repair
