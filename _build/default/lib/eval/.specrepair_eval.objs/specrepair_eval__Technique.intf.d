lib/eval/technique.mli: Specrepair_llm
