lib/eval/technique.ml: List Specrepair_llm
