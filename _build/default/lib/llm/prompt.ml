module Alloy = Specrepair_alloy

type hint = Loc | Fix | Pass

type single_setting = SLoc_fix | SLoc | SPass | SNone | SLoc_pass

let hints_of_setting = function
  | SLoc_fix -> [ Loc; Fix ]
  | SLoc -> [ Loc ]
  | SPass -> [ Pass ]
  | SNone -> []
  | SLoc_pass -> [ Loc; Pass ]

let single_setting_to_string = function
  | SLoc_fix -> "Loc+Fix"
  | SLoc -> "Loc"
  | SPass -> "Pass"
  | SNone -> "None"
  | SLoc_pass -> "Loc+Pass"

let all_single_settings = [ SLoc_fix; SLoc; SPass; SNone; SLoc_pass ]

type t = {
  task : Task.t;
  hints : hint list;
  round : int;
  feedback : string option;
}

let single task setting = { task; hints = hints_of_setting setting; round = 0; feedback = None }

let render p =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "You are an expert in the Alloy specification language. The following \
     Alloy specification is faulty. Repair it and return the complete \
     corrected specification in a fenced code block.\n\n";
  add "```alloy\n%s```\n\n" (Alloy.Pretty.spec_to_string p.task.Task.faulty);
  List.iter
    (fun h ->
      match h with
      | Loc ->
          List.iter
            (fun site ->
              add "Hint: the bug is located in %s.\n"
                (Specrepair_mutation.Location.site_to_string site))
            p.task.Task.fault_sites
      | Fix ->
          if p.task.Task.fix_description <> "" then
            add "Hint: a possible fix is: %s.\n" p.task.Task.fix_description
      | Pass ->
          List.iter
            (fun name -> add "The repaired specification must pass: check %s.\n" name)
            p.task.Task.check_names)
    p.hints;
  (match p.feedback with
  | Some fb -> add "\nFeedback on your previous attempt (round %d):\n%s\n" p.round fb
  | None -> ());
  Buffer.contents buf
