lib/llm/rng.ml: Char Int64 List String
