lib/llm/multi_round.mli: Model Prompt Specrepair_alloy Specrepair_repair Specrepair_solver Task
