lib/llm/rng.mli:
