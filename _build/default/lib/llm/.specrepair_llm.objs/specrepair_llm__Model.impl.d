lib/llm/model.ml: List Option Printf Prompt Result Rng Specrepair_alloy Specrepair_mutation String Task
