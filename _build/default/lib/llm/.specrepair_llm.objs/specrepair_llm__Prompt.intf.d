lib/llm/prompt.mli: Task
