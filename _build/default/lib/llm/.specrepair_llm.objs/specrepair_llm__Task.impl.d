lib/llm/task.ml: Specrepair_alloy Specrepair_mutation
