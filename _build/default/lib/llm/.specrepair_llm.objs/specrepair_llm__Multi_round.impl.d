lib/llm/multi_round.ml: Extract Format List Model Option Printf Prompt Rng Specrepair_alloy Specrepair_faultloc Specrepair_mutation Specrepair_repair Specrepair_solver String Task
