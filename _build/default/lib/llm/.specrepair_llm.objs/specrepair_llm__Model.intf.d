lib/llm/model.mli: Prompt Rng Specrepair_alloy Specrepair_mutation Task
