lib/llm/extract.ml: List Specrepair_alloy String
