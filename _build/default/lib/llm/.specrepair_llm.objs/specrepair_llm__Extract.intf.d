lib/llm/extract.mli: Specrepair_alloy
