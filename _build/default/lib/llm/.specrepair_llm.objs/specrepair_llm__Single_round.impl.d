lib/llm/single_round.ml: Extract List Model Prompt Rng Specrepair_alloy Specrepair_repair Task
