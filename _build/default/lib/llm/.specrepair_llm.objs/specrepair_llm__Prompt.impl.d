lib/llm/prompt.ml: Buffer List Printf Specrepair_alloy Specrepair_mutation Task
