lib/llm/task.mli: Specrepair_alloy Specrepair_mutation
