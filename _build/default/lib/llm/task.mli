(** A repair task handed to an LLM pipeline: the faulty specification plus
    the side information the study's prompt settings can reveal.

    The hint fields are ground-truth metadata carried by the benchmark (the
    paper's Loc / Fix / Pass hints came from the benchmark's fault
    annotations); pipelines only read the fields their prompt setting
    includes. *)

module Alloy = Specrepair_alloy
module Mutation = Specrepair_mutation

type t = {
  spec_id : string;  (** stable identifier, part of the sampling seed *)
  domain : string;  (** benchmark domain, modulates model competence *)
  faulty : Alloy.Ast.spec;
  fault_sites : Mutation.Location.site list;  (** true fault locations *)
  fault_paths : (Mutation.Location.site * Mutation.Location.path) list;
      (** node-level fault positions (the Loc hint is line-level) *)
  fault_classes : string list;  (** mutation-operator names of the faults *)
  fix_description : string;  (** natural-language description of the fix *)
  check_names : string list;  (** assertions the fix must make pass *)
}

val make :
  spec_id:string ->
  domain:string ->
  faulty:Alloy.Ast.spec ->
  ?fault_sites:Mutation.Location.site list ->
  ?fault_paths:(Mutation.Location.site * Mutation.Location.path) list ->
  ?fault_classes:string list ->
  ?fix_description:string ->
  ?check_names:string list ->
  unit ->
  t
