(** Prompt construction for the LLM repair pipelines.

    Mirrors the study's two prompt families: single zero-shot prompts with
    optional Loc / Fix / Pass hints (Hasan et al. [33]) and the iterative
    multi-round dialogue with analyzer feedback (Alhanahnah et al. [34]).
    The rendered text is what a real deployment would send; the simulated
    model consumes the structured form and the rendered text is used by
    examples and documentation. *)

type hint = Loc | Fix | Pass

type single_setting = SLoc_fix | SLoc | SPass | SNone | SLoc_pass

val hints_of_setting : single_setting -> hint list
val single_setting_to_string : single_setting -> string
val all_single_settings : single_setting list

type t = {
  task : Task.t;
  hints : hint list;
  round : int;  (** 0 for single-round *)
  feedback : string option;  (** analyzer feedback text, multi-round *)
}

val single : Task.t -> single_setting -> t
val render : t -> string
