(** Extraction of Alloy specifications from LLM response text — the
    "specialized parser" of the study's experimental setup.

    Responses mix prose with code; the extractor prefers fenced code blocks
    and falls back to scanning for the first paragraph keyword.  Returns
    [None] when nothing in the response parses as a specification. *)

val spec_of_response : string -> Specrepair_alloy.Ast.spec option

val code_blocks : string -> string list
(** All fenced (```) block bodies, in order of appearance. *)
