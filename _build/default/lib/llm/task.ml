module Alloy = Specrepair_alloy
module Mutation = Specrepair_mutation

type t = {
  spec_id : string;
  domain : string;
  faulty : Alloy.Ast.spec;
  fault_sites : Mutation.Location.site list;
  fault_paths : (Mutation.Location.site * Mutation.Location.path) list;
  fault_classes : string list;
  fix_description : string;
  check_names : string list;
}

let make ~spec_id ~domain ~faulty ?(fault_sites = []) ?(fault_paths = [])
    ?(fault_classes = []) ?(fix_description = "") ?(check_names = []) () =
  {
    spec_id;
    domain;
    faulty;
    fault_sites;
    fault_paths;
    fault_classes;
    fix_description;
    check_names;
  }
