(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice of the simulated LLM derives its stream from a
    study seed plus structured context (spec id, technique, round), so runs
    are reproducible bit-for-bit and independent across specs. *)

type t

val create : int64 -> t
val of_context : seed:int -> string list -> t
(** Derive a generator from the study seed and a context path, e.g.
    [["classroom_17"; "single-round"; "loc"]]. *)

val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, n). *)

val choose_weighted : t -> ('a * float) list -> 'a option
(** Samples proportionally to the (non-negative) weights; [None] when all
    weights are zero or the list is empty. *)

val shuffle : t -> 'a list -> 'a list
