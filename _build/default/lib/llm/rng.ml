type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

(* Fold a context string into the seed with a simple 64-bit FNV-ish hash. *)
let hash_string h s =
  String.fold_left
    (fun h c -> Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) 0x100000001B3L)
    h s

let of_context ~seed context =
  let h =
    List.fold_left
      (fun h s -> hash_string (Int64.add h 0x517CC1B727220A95L) s)
      (Int64.of_int seed) context
  in
  create (mix h)

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992. (* 2^53 *)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  int_of_float (float t *. float_of_int n)

let choose_weighted t weighted =
  let total = List.fold_left (fun acc (_, w) -> acc +. max 0. w) 0. weighted in
  if total <= 0. then None
  else begin
    let target = float t *. total in
    let rec pick acc = function
      | [] -> None
      | (x, w) :: rest ->
          let acc = acc +. max 0. w in
          if target < acc then Some x else pick acc rest
    in
    pick 0. weighted
  end

let shuffle t xs =
  xs
  |> List.map (fun x -> (next_int64 t, x))
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
  |> List.map snd
