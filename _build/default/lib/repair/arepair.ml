module Alloy = Specrepair_alloy
module Aunit = Specrepair_aunit.Aunit
module Mutation = Specrepair_mutation
module Faultloc = Specrepair_faultloc.Faultloc

let score env tests = List.length (Aunit.run_suite env tests).passing

let repair ?(budget = Common.default_budget) (env0 : Alloy.Typecheck.env) tests
    =
  let n_tests = List.length tests in
  let tried = ref 0 in
  (* one greedy step: the candidate (from mutations at the most suspicious
     locations) that passes the most tests, if it improves *)
  let step (env : Alloy.Typecheck.env) current_score =
    let locations = Faultloc.rank_by_tests env tests () in
    let top =
      List.filteri (fun i _ -> i < budget.locations) locations
    in
    let candidates =
      List.concat_map
        (fun (l : Faultloc.location) ->
          Mutation.Mutate.mutations_at env env.spec l.site l.path
            ~with_pool:budget.use_pool ())
        top
    in
    List.fold_left
      (fun best m ->
        if !tried >= budget.max_candidates then best
        else begin
          incr tried;
          match Common.env_of_spec (Mutation.Mutate.apply env.spec m) with
          | None -> best
          | Some env' ->
              let s = score env' tests in
              let best_score =
                match best with Some (_, bs) -> bs | None -> current_score
              in
              if s > best_score then Some (env', s) else best
        end)
      None candidates
  in
  let rec loop env current_score depth =
    if current_score = n_tests then
      Common.result ~tool:"ARepair" ~repaired:true env.Alloy.Typecheck.spec
        ~candidates:!tried ~iterations:depth
    else if depth >= budget.max_depth || !tried >= budget.max_candidates then
      Common.result ~tool:"ARepair" ~repaired:false env.Alloy.Typecheck.spec
        ~candidates:!tried ~iterations:depth
    else
      match step env current_score with
      | Some (env', s) -> loop env' s (depth + 1)
      | None ->
          Common.result ~tool:"ARepair" ~repaired:false env.Alloy.Typecheck.spec
            ~candidates:!tried ~iterations:depth
  in
  loop env0 (score env0 tests) 0
