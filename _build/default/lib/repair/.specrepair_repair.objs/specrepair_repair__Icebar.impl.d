lib/repair/icebar.ml: Arepair Common List Printf Specrepair_alloy Specrepair_aunit Specrepair_solver
