lib/repair/common.ml: List Specrepair_alloy Specrepair_solver
