lib/repair/atr.ml: Common List Specrepair_alloy Specrepair_faultloc Specrepair_mutation Specrepair_solver
