lib/repair/beafix.mli: Common Specrepair_alloy Specrepair_solver
