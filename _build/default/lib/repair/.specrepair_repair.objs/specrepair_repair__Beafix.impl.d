lib/repair/beafix.ml: Array Common Hashtbl List Specrepair_alloy Specrepair_faultloc Specrepair_mutation Specrepair_solver
