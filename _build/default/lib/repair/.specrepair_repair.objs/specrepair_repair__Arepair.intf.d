lib/repair/arepair.mli: Common Specrepair_alloy Specrepair_aunit
