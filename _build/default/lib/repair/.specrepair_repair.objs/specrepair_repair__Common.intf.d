lib/repair/common.mli: Specrepair_alloy Specrepair_solver
