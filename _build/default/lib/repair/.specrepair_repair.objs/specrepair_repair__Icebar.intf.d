lib/repair/icebar.mli: Common Specrepair_alloy Specrepair_aunit Specrepair_solver
