lib/repair/atr.mli: Common Specrepair_alloy Specrepair_solver
