(** Shared vocabulary of the repair engines: budgets, results, and the
    property oracle (command conformance) they verify against.

    Every query takes an optional incremental {!Specrepair_solver.Oracle.t}.
    With one, verdicts are answered by assumption-based solving in a shared
    solver and memoized structurally; without one, each query is a fresh
    analyzer solve.  Both paths return the same answers. *)

module Alloy = Specrepair_alloy
module Solver = Specrepair_solver

type budget = {
  max_depth : int;  (** greedy / composition depth *)
  max_candidates : int;  (** candidates evaluated in one invocation *)
  max_iterations : int;  (** outer refinement rounds (ICEBAR) *)
  max_conflicts : int;  (** SAT conflict budget per analyzer call *)
  locations : int;  (** suspicious locations explored *)
  use_pool : bool;
      (** may the search synthesize replacement expressions / added juncts?
          ARepair's original space lacked them *)
}

val default_budget : budget

type result = {
  tool : string;
  repaired : bool;  (** the tool's own oracle accepted the final spec *)
  final_spec : Alloy.Ast.spec;  (** repaired spec, or best-effort candidate *)
  candidates_tried : int;
  iterations : int;
}

val result : tool:string -> repaired:bool -> Alloy.Ast.spec -> candidates:int -> iterations:int -> result

val command_verdict :
  ?oracle:Solver.Oracle.t ->
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  Alloy.Ast.command ->
  Solver.Oracle.verdict
(** Outcome tag of the command, without an instance. *)

val oracle_passes :
  ?oracle:Solver.Oracle.t -> ?max_conflicts:int -> Alloy.Typecheck.env -> bool
(** The property oracle: every [check] command has no counterexample and
    every [run] command is satisfiable.  [Unknown] counts as failure. *)

val command_behaves :
  ?oracle:Solver.Oracle.t ->
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  Alloy.Ast.command ->
  bool

val behaving_commands :
  ?oracle:Solver.Oracle.t -> ?max_conflicts:int -> Alloy.Typecheck.env -> int
(** Number of commands that behave; the hill-climbing signal of iterative
    repairers. *)

val failing_checks :
  ?oracle:Solver.Oracle.t ->
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  (Alloy.Ast.command * string * Alloy.Instance.t) list
(** Check commands that currently fail, with the assertion name and one
    counterexample each. *)

val witnesses_for :
  ?oracle:Solver.Oracle.t ->
  ?max_conflicts:int ->
  ?limit:int ->
  Alloy.Typecheck.env ->
  string ->
  Specrepair_solver.Bounds.scope ->
  Alloy.Instance.t list
(** Instances satisfying the facts and the named assertion — the "valid
    behaviours" a repair must preserve. *)

val counterexamples_for :
  ?oracle:Solver.Oracle.t ->
  ?max_conflicts:int ->
  ?limit:int ->
  Alloy.Typecheck.env ->
  string ->
  Specrepair_solver.Bounds.scope ->
  Alloy.Instance.t list

val env_of_spec : Alloy.Ast.spec -> Alloy.Typecheck.env option
(** [check_result] as an option, for candidate filtering. *)
