(** Shared vocabulary of the repair engines: budgets, results, and the
    property oracle (command conformance) they verify against. *)

module Alloy = Specrepair_alloy

type budget = {
  max_depth : int;  (** greedy / composition depth *)
  max_candidates : int;  (** candidates evaluated in one invocation *)
  max_iterations : int;  (** outer refinement rounds (ICEBAR) *)
  max_conflicts : int;  (** SAT conflict budget per analyzer call *)
  locations : int;  (** suspicious locations explored *)
  use_pool : bool;
      (** may the search synthesize replacement expressions / added juncts?
          ARepair's original space lacked them *)
}

val default_budget : budget

type result = {
  tool : string;
  repaired : bool;  (** the tool's own oracle accepted the final spec *)
  final_spec : Alloy.Ast.spec;  (** repaired spec, or best-effort candidate *)
  candidates_tried : int;
  iterations : int;
}

val result : tool:string -> repaired:bool -> Alloy.Ast.spec -> candidates:int -> iterations:int -> result

val oracle_passes : ?max_conflicts:int -> Alloy.Typecheck.env -> bool
(** The property oracle: every [check] command has no counterexample and
    every [run] command is satisfiable.  [Unknown] counts as failure. *)

val command_behaves :
  ?max_conflicts:int -> Alloy.Typecheck.env -> Alloy.Ast.command -> bool

val behaving_commands : ?max_conflicts:int -> Alloy.Typecheck.env -> int
(** Number of commands that behave; the hill-climbing signal of iterative
    repairers. *)

val failing_checks :
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  (Alloy.Ast.command * string * Alloy.Instance.t) list
(** Check commands that currently fail, with the assertion name and one
    counterexample each. *)

val witnesses_for :
  ?max_conflicts:int ->
  ?limit:int ->
  Alloy.Typecheck.env ->
  string ->
  Specrepair_solver.Bounds.scope ->
  Alloy.Instance.t list
(** Instances satisfying the facts and the named assertion — the "valid
    behaviours" a repair must preserve. *)

val counterexamples_for :
  ?max_conflicts:int ->
  ?limit:int ->
  Alloy.Typecheck.env ->
  string ->
  Specrepair_solver.Bounds.scope ->
  Alloy.Instance.t list

val env_of_spec : Alloy.Ast.spec -> Alloy.Typecheck.env option
(** [check_result] as an option, for candidate filtering. *)
