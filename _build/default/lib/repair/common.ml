module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast

type budget = {
  max_depth : int;
  max_candidates : int;
  max_iterations : int;
  max_conflicts : int;
  locations : int;
  use_pool : bool;
}

let default_budget =
  {
    max_depth = 2;
    max_candidates = 800;
    max_iterations = 4;
    max_conflicts = 20_000;
    locations = 6;
    use_pool = true;
  }

type result = {
  tool : string;
  repaired : bool;
  final_spec : Alloy.Ast.spec;
  candidates_tried : int;
  iterations : int;
}

let result ~tool ~repaired final_spec ~candidates ~iterations =
  { tool; repaired; final_spec; candidates_tried = candidates; iterations }

let command_behaves ?max_conflicts (env : Alloy.Typecheck.env)
    (c : Ast.command) =
  match (c.cmd_kind, Solver.Analyzer.run_command ?max_conflicts env c) with
  | Ast.Check _, Solver.Analyzer.Unsat -> true
  | Ast.Check _, _ -> false
  | (Ast.Run_pred _ | Ast.Run_fmla _), Solver.Analyzer.Sat _ -> true
  | (Ast.Run_pred _ | Ast.Run_fmla _), _ -> false

let oracle_passes ?max_conflicts (env : Alloy.Typecheck.env) =
  List.for_all (command_behaves ?max_conflicts env) env.spec.commands

let behaving_commands ?max_conflicts (env : Alloy.Typecheck.env) =
  List.length
    (List.filter (command_behaves ?max_conflicts env) env.spec.commands)

let failing_checks ?max_conflicts (env : Alloy.Typecheck.env) =
  List.filter_map
    (fun (c : Ast.command) ->
      match c.cmd_kind with
      | Ast.Check name -> (
          match Solver.Analyzer.run_command ?max_conflicts env c with
          | Solver.Analyzer.Sat cex -> Some (c, name, cex)
          | Solver.Analyzer.Unsat | Solver.Analyzer.Unknown -> None)
      | Ast.Run_pred _ | Ast.Run_fmla _ -> None)
    env.spec.commands

let witnesses_for ?max_conflicts ?(limit = 4) (env : Alloy.Typecheck.env) name
    scope =
  ignore max_conflicts;
  match Ast.find_assert env.spec name with
  | None -> []
  | Some a -> Solver.Analyzer.enumerate ~limit env scope a.assert_body

let counterexamples_for ?max_conflicts ?(limit = 4) (env : Alloy.Typecheck.env)
    name scope =
  ignore max_conflicts;
  match Ast.find_assert env.spec name with
  | None -> []
  | Some a ->
      Solver.Analyzer.enumerate ~limit env scope (Ast.Not a.assert_body)

let env_of_spec spec =
  match Alloy.Typecheck.check_result spec with
  | Ok env -> Some env
  | Error _ -> None
