module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast

type budget = {
  max_depth : int;
  max_candidates : int;
  max_iterations : int;
  max_conflicts : int;
  locations : int;
  use_pool : bool;
}

let default_budget =
  {
    max_depth = 2;
    max_candidates = 800;
    max_iterations = 4;
    max_conflicts = 20_000;
    locations = 6;
    use_pool = true;
  }

type result = {
  tool : string;
  repaired : bool;
  final_spec : Alloy.Ast.spec;
  candidates_tried : int;
  iterations : int;
}

let result ~tool ~repaired final_spec ~candidates ~iterations =
  { tool; repaired; final_spec; candidates_tried = candidates; iterations }

(* Every query below takes an optional incremental oracle.  With one, hot
   verdict queries share a solver, a translation of the unchanged spec, and
   a learned-clause database across the whole repair session (and identical
   candidates are deduplicated by the structural cache); without one, each
   query is a fresh analyzer solve, as before.  Both paths return the same
   answers — see Solver.Oracle. *)

let command_verdict ?oracle ?max_conflicts (env : Alloy.Typecheck.env)
    (c : Ast.command) =
  match oracle with
  | Some o -> Solver.Oracle.command_verdict ?max_conflicts o env c
  | None -> (
      match Solver.Analyzer.run_command ?max_conflicts env c with
      | Solver.Analyzer.Sat _ -> `Sat
      | Solver.Analyzer.Unsat -> `Unsat
      | Solver.Analyzer.Unknown -> `Unknown)

let command_behaves ?oracle ?max_conflicts (env : Alloy.Typecheck.env)
    (c : Ast.command) =
  match (c.cmd_kind, command_verdict ?oracle ?max_conflicts env c) with
  | Ast.Check _, `Unsat -> true
  | Ast.Check _, _ -> false
  | (Ast.Run_pred _ | Ast.Run_fmla _), `Sat -> true
  | (Ast.Run_pred _ | Ast.Run_fmla _), _ -> false

let oracle_passes ?oracle ?max_conflicts (env : Alloy.Typecheck.env) =
  List.for_all (command_behaves ?oracle ?max_conflicts env) env.spec.commands

let behaving_commands ?oracle ?max_conflicts (env : Alloy.Typecheck.env) =
  List.length
    (List.filter (command_behaves ?oracle ?max_conflicts env) env.spec.commands)

let failing_checks ?oracle ?max_conflicts (env : Alloy.Typecheck.env) =
  List.filter_map
    (fun (c : Ast.command) ->
      match c.cmd_kind with
      | Ast.Check name -> (
          let outcome =
            match oracle with
            | Some o -> (
                (* verdict first (incremental); the counterexample instance
                   is fetched — and cached — only for failing checks *)
                match Solver.Oracle.command_verdict ?max_conflicts o env c with
                | `Unsat -> Solver.Analyzer.Unsat
                | `Unknown -> Solver.Analyzer.Unknown
                | `Sat -> Solver.Oracle.run_command ?max_conflicts o env c)
            | None -> Solver.Analyzer.run_command ?max_conflicts env c
          in
          match outcome with
          | Solver.Analyzer.Sat cex -> Some (c, name, cex)
          | Solver.Analyzer.Unsat | Solver.Analyzer.Unknown -> None)
      | Ast.Run_pred _ | Ast.Run_fmla _ -> None)
    env.spec.commands

let enumerate ?oracle ?max_conflicts ~limit (env : Alloy.Typecheck.env) scope f
    =
  match oracle with
  | Some o -> Solver.Oracle.enumerate ~limit ?max_conflicts o env scope f
  | None -> Solver.Analyzer.enumerate ~limit ?max_conflicts env scope f

let witnesses_for ?oracle ?max_conflicts ?(limit = 4)
    (env : Alloy.Typecheck.env) name scope =
  match Ast.find_assert env.spec name with
  | None -> []
  | Some a -> enumerate ?oracle ?max_conflicts ~limit env scope a.assert_body

let counterexamples_for ?oracle ?max_conflicts ?(limit = 4)
    (env : Alloy.Typecheck.env) name scope =
  match Ast.find_assert env.spec name with
  | None -> []
  | Some a ->
      enumerate ?oracle ?max_conflicts ~limit env scope (Ast.Not a.assert_body)

let env_of_spec spec =
  match Alloy.Typecheck.check_result spec with
  | Ok env -> Some env
  | Error _ -> None
