module Alloy = Specrepair_alloy
module Aunit = Specrepair_aunit.Aunit

let repair ?oracle ?(budget = Common.default_budget)
    (env0 : Alloy.Typecheck.env) initial_tests =
  let max_conflicts = budget.max_conflicts in
  (* one incremental session across all refinement rounds: the candidate an
     inner ARepair run produces in round [i] is often re-examined in round
     [i+1], and the verdict cache answers it without a solve *)
  let oracle =
    match oracle with
    | Some o -> o
    | None -> Specrepair_solver.Oracle.create env0
  in
  let tried = ref 0 in
  let rec loop tests iter best =
    if iter >= budget.max_iterations then
      Common.result ~tool:"ICEBAR" ~repaired:false best ~candidates:!tried
        ~iterations:iter
    else begin
      let inner =
        Arepair.repair ~budget:{ budget with max_candidates = budget.max_candidates / budget.max_iterations } env0 tests
      in
      tried := !tried + inner.candidates_tried;
      match Common.env_of_spec inner.final_spec with
      | None ->
          Common.result ~tool:"ICEBAR" ~repaired:false best ~candidates:!tried
            ~iterations:iter
      | Some env' ->
          if Common.oracle_passes ~oracle ~max_conflicts env' then
            (* the candidate satisfies the property oracle *)
            Common.result ~tool:"ICEBAR" ~repaired:true inner.final_spec
              ~candidates:!tried ~iterations:(iter + 1)
          else
            let cexs = Common.failing_checks ~oracle ~max_conflicts env' in
            let new_tests =
              List.mapi
                (fun i (_, name, cex) ->
                  Aunit.of_counterexample
                    ~name:(Printf.sprintf "icebar_cex_%s_%d_%d" name iter i)
                    cex)
                cexs
            in
            if new_tests = [] then
              (* no usable counterexamples (e.g. a run command fails):
                 refinement cannot make progress *)
              Common.result ~tool:"ICEBAR" ~repaired:false inner.final_spec
                ~candidates:!tried ~iterations:(iter + 1)
            else loop (tests @ new_tests) (iter + 1) inner.final_spec
    end
  in
  (* seed the suite with counterexamples of the faulty spec itself *)
  let seed =
    List.mapi
      (fun i (_, name, cex) ->
        Aunit.of_counterexample ~name:(Printf.sprintf "icebar_seed_%s_%d" name i) cex)
      (Common.failing_checks ~oracle ~max_conflicts:budget.max_conflicts env0)
  in
  loop (initial_tests @ seed) 0 env0.spec
