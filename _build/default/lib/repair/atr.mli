(** ATR-style template-based repair (Zheng et al., ISSTA'22).

    Analyzes the difference between counterexamples and satisfying
    instances of the violated assertions, instantiates repair templates
    (strengthen with a conjunct, weaken with a disjunct, replace an atomic
    constraint or subexpression) at the most discriminating locations, and
    prunes the candidate space with both instance sets before verifying the
    survivors with the analyzer: a candidate must invalidate every
    counterexample while preserving every satisfying instance — the
    PMaxSAT-flavoured consistency filter of the original tool. *)

module Alloy = Specrepair_alloy

val repair :
  ?oracle:Specrepair_solver.Oracle.t ->
  ?budget:Common.budget ->
  Alloy.Typecheck.env ->
  Common.result
(** [?oracle] shares an incremental solving session (see
    {!Specrepair_solver.Oracle}) with the caller; without one, the
    invocation creates its own. *)
