(** ICEBAR-style iterative counterexample-based repair (Gutiérrez Brida et
    al., ASE'22).

    Wraps {!Arepair} in a refinement loop with the specification's own
    check commands as the property oracle: when an ARepair candidate passes
    its tests but a check still fails, the counterexample is converted into
    a new (negative) test and ARepair is re-run on the enriched suite. *)

module Alloy = Specrepair_alloy

val repair :
  ?budget:Common.budget ->
  Alloy.Typecheck.env ->
  Specrepair_aunit.Aunit.test list ->
  Common.result
