(** ICEBAR-style iterative counterexample-based repair (Gutiérrez Brida et
    al., ASE'22).

    Wraps {!Arepair} in a refinement loop with the specification's own
    check commands as the property oracle: when an ARepair candidate passes
    its tests but a check still fails, the counterexample is converted into
    a new (negative) test and ARepair is re-run on the enriched suite. *)

module Alloy = Specrepair_alloy

val repair :
  ?oracle:Specrepair_solver.Oracle.t ->
  ?budget:Common.budget ->
  Alloy.Typecheck.env ->
  Specrepair_aunit.Aunit.test list ->
  Common.result
(** [?oracle] shares an incremental solving session (see
    {!Specrepair_solver.Oracle}) with the caller; without one, the
    invocation creates its own.  The inner {!Arepair} runs are pure test
    evaluation and need no oracle; the refinement loop's property checks
    and counterexample queries go through it. *)
