(* Abstract syntax of Mini-Alloy, the kernel of the Alloy specification
   language used by the benchmarks: signatures with fields, facts,
   predicates, assertions, and run/check commands over relational
   expressions and first-order formulas.

   The type definitions are deliberately public (no .mli): every layer above
   — pretty printer, type checker, evaluator, compiler, mutation engine —
   pattern-matches on them. *)

(* Multiplicity keywords, used on signatures, field ranges, and as formula
   quantifiers over expressions ("some e"). *)
type mult = Mone | Mlone | Msome | Mset

type unop =
  | Transpose (* ~e  : converse of a binary relation *)
  | Closure (* ^e  : transitive closure *)
  | Rclosure (* *e  : reflexive-transitive closure *)

type binop =
  | Join (* e1 . e2 *)
  | Product (* e1 -> e2 *)
  | Union (* e1 + e2 *)
  | Diff (* e1 - e2 *)
  | Inter (* e1 & e2 *)
  | Override (* e1 ++ e2 *)
  | Domrestr (* e1 <: e2 *)
  | Ranrestr (* e1 :> e2 *)

type quant = Qall | Qsome | Qno | Qlone | Qone

(* Multiplicity tests on expressions in formula position. *)
type fmult = Fno | Fsome | Flone | Fone

type cmpop = Cin | Cnotin | Ceq | Cneq

type intcmp = Ilt | Ile | Ieq | Ineq | Ige | Igt

type expr =
  | Rel of string (* signature, field, bound variable, or predicate param *)
  | Univ
  | Iden
  | None_
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ite of fmla * expr * expr (* f implies e1 else e2, expression form *)
  | Compr of (string * expr) list * fmla
      (* { x: A, y: B | f } — set comprehension; arity = number of decls *)

and fmla =
  | True
  | False
  | Cmp of cmpop * expr * expr
  | Multf of fmult * expr (* no e / some e / lone e / one e *)
  | Card of intcmp * expr * int (* #e op k, k a literal *)
  | Not of fmla
  | And of fmla * fmla
  | Or of fmla * fmla
  | Implies of fmla * fmla
  | Iff of fmla * fmla
  | Quant of quant * (string * expr) list * fmla
  | Call of string * expr list (* predicate invocation *)
  | Let of string * expr * fmla (* let x = e | f ; x may have any arity *)

type field = {
  fld_name : string;
  fld_cols : expr list; (* column domains after the owning sig; length = arity-1 *)
  fld_mult : mult; (* multiplicity of the final column *)
}

type sig_decl = {
  sig_name : string;
  sig_parent : string option; (* extends *)
  sig_abstract : bool;
  sig_mult : mult; (* one/lone/some sig; Mset = unconstrained *)
  sig_fields : field list;
}

(* A relational function: semantically the derived relation
   {(p1, .., pn, r1, .., rm) | body(p1..pn) contains (r1..rm)}; function
   application is then ordinary join, as in Alloy. *)
type fun_decl = {
  fun_name : string;
  fun_params : (string * expr) list;
  fun_result : expr; (* declared result bound (checked for arity) *)
  fun_body : expr;
}

type pred_decl = {
  pred_name : string;
  pred_params : (string * expr) list; (* parameter name, bounding expr *)
  pred_body : fmla;
}

type fact_decl = { fact_name : string option; fact_body : fmla }

type assert_decl = { assert_name : string; assert_body : fmla }

type cmd_kind = Run_pred of string | Run_fmla of fmla | Check of string

type command = {
  cmd_kind : cmd_kind;
  cmd_scope : int; (* default bound for every top-level signature *)
  cmd_scopes : (string * int) list; (* "but" overrides *)
}

type spec = {
  module_name : string option;
  sigs : sig_decl list;
  facts : fact_decl list;
  preds : pred_decl list;
  funs : fun_decl list;
  asserts : assert_decl list;
  commands : command list;
}

let empty_spec =
  {
    module_name = None;
    sigs = [];
    facts = [];
    preds = [];
    funs = [];
    asserts = [];
    commands = [];
  }

(* Structural equality is the derived one; expose named versions for
   readability at call sites. *)
let equal_expr (a : expr) (b : expr) = a = b
let equal_fmla (a : fmla) (b : fmla) = a = b
let equal_spec (a : spec) (b : spec) = a = b

let find_sig spec name = List.find_opt (fun s -> s.sig_name = name) spec.sigs

let find_pred spec name =
  List.find_opt (fun p -> p.pred_name = name) spec.preds

let find_fun spec name = List.find_opt (fun f -> f.fun_name = name) spec.funs

let find_assert spec name =
  List.find_opt (fun a -> a.assert_name = name) spec.asserts

let find_field spec name =
  List.find_map
    (fun s ->
      List.find_map
        (fun f -> if f.fld_name = name then Some (s, f) else None)
        s.sig_fields)
    spec.sigs

(* {2 Size measures} *)

let rec expr_size = function
  | Rel _ | Univ | Iden | None_ -> 1
  | Unop (_, e) -> 1 + expr_size e
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Ite (f, a, b) -> 1 + fmla_size f + expr_size a + expr_size b
  | Compr (decls, f) ->
      1 + List.fold_left (fun n (_, e) -> n + expr_size e) 0 decls + fmla_size f

and fmla_size = function
  | True | False -> 1
  | Cmp (_, a, b) -> 1 + expr_size a + expr_size b
  | Multf (_, e) | Card (_, e, _) -> 1 + expr_size e
  | Not f -> 1 + fmla_size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      1 + fmla_size a + fmla_size b
  | Quant (_, decls, f) ->
      1 + List.fold_left (fun n (_, e) -> n + expr_size e) 0 decls + fmla_size f
  | Call (_, args) -> 1 + List.fold_left (fun n e -> n + expr_size e) 0 args
  | Let (_, e, f) -> 1 + expr_size e + fmla_size f

let spec_size spec =
  let field_size f = List.fold_left (fun n e -> n + expr_size e) 1 f.fld_cols in
  let sig_size s = 1 + List.fold_left (fun n f -> n + field_size f) 0 s.sig_fields in
  List.fold_left (fun n s -> n + sig_size s) 0 spec.sigs
  + List.fold_left (fun n f -> n + fmla_size f.fact_body) 0 spec.facts
  + List.fold_left (fun n p -> n + fmla_size p.pred_body) 0 spec.preds
  + List.fold_left (fun n f -> n + expr_size f.fun_body) 0 spec.funs
  + List.fold_left (fun n a -> n + fmla_size a.assert_body) 0 spec.asserts
