lib/alloy/implicit.mli: Ast Typecheck
