lib/alloy/instance.ml: Array Format List Printf Set Stdlib String
