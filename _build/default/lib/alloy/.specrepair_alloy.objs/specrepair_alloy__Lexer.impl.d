lib/alloy/lexer.ml: Array List Printf String
