lib/alloy/pretty.mli: Ast Format
