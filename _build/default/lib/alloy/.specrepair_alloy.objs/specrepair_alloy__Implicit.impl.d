lib/alloy/implicit.ml: Ast Fun Hashtbl List Option Printf Typecheck
