lib/alloy/typecheck.ml: Ast Format Hashtbl List Option
