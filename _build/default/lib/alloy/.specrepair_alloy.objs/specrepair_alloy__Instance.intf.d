lib/alloy/instance.mli: Format Set
