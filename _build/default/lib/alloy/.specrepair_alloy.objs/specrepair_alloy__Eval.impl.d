lib/alloy/eval.ml: Array Ast Format Implicit Instance List Typecheck
