lib/alloy/eval.mli: Ast Instance Typecheck
