lib/alloy/typecheck.mli: Ast Hashtbl
