lib/alloy/lexer.mli:
