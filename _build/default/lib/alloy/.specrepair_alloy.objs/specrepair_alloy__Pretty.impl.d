lib/alloy/pretty.ml: Ast Buffer Format List
