lib/alloy/ast.ml: List
