open Ast

let sig_ref name = Rel name

(* all _m0: S, _m1: C1, ... | mult (_m(k-1) . ( ... (_m0 . f))) *)
let field_mult_constraint owner f =
  let arity = List.length f.fld_cols in
  let fm =
    match f.fld_mult with
    | Mone -> Fone
    | Mlone -> Flone
    | Msome -> Fsome
    | Mset -> Fsome (* unreachable; Mset yields no constraint *)
  in
  let var i = Printf.sprintf "_m%d" i in
  let decls =
    (var 0, sig_ref owner)
    :: List.mapi (fun i col -> (var (i + 1), col)) (List.filteri (fun i _ -> i < arity - 1) f.fld_cols)
  in
  let joined =
    List.fold_left
      (fun acc i -> Binop (Join, Rel (var i), acc))
      (Rel f.fld_name)
      (List.init arity Fun.id)
  in
  Quant (Qall, decls, Multf (fm, joined))

let field_typing owner f =
  let product =
    List.fold_left
      (fun acc col -> Binop (Product, acc, col))
      (sig_ref owner) f.fld_cols
  in
  Cmp (Cin, Rel f.fld_name, product)

let constraints (env : Typecheck.env) =
  let spec = env.spec in
  let acc = ref [] in
  let add f = acc := f :: !acc in
  List.iter
    (fun s ->
      (* containment in the parent *)
      (match s.sig_parent with
      | Some p -> add (Cmp (Cin, sig_ref s.sig_name, sig_ref p))
      | None -> ());
      (* signature multiplicity *)
      (match s.sig_mult with
      | Mone -> add (Multf (Fone, sig_ref s.sig_name))
      | Mlone -> add (Multf (Flone, sig_ref s.sig_name))
      | Msome -> add (Multf (Fsome, sig_ref s.sig_name))
      | Mset -> ());
      (* sibling disjointness and abstract exhaustiveness *)
      let children =
        Option.value ~default:[] (Hashtbl.find_opt env.children s.sig_name)
      in
      let rec pairwise = function
        | [] -> ()
        | c :: rest ->
            List.iter
              (fun c' ->
                add (Multf (Fno, Binop (Inter, sig_ref c, sig_ref c'))))
              rest;
            pairwise rest
      in
      pairwise children;
      (match (s.sig_abstract, children) with
      | true, first :: rest ->
          let union =
            List.fold_left
              (fun acc c -> Binop (Union, acc, sig_ref c))
              (sig_ref first) rest
          in
          add (Cmp (Cin, sig_ref s.sig_name, union))
      | _ -> ());
      (* fields *)
      List.iter
        (fun f ->
          add (field_typing s.sig_name f);
          match f.fld_mult with
          | Mset -> ()
          | _ -> add (field_mult_constraint s.sig_name f))
        s.sig_fields)
    spec.sigs;
  List.rev !acc
