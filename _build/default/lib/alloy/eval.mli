(** Direct evaluation of expressions and formulas over a ground instance.

    This is the semantic reference for the language: the bounded model
    finder is property-tested against it.  It is also the workhorse of the
    repair engines (AUnit test execution, candidate pruning against
    collected instances and counterexamples). *)

exception Eval_error of string

type bindings = (string * Instance.Tuple_set.t) list
(** Values of quantified variables and predicate parameters in scope.
    Innermost bindings first; names shadow the instance relations. *)

val expr :
  Typecheck.env -> Instance.t -> bindings -> Ast.expr -> Instance.Tuple_set.t
(** Value of an expression.  Raises {!Eval_error} on unknown names or
    arity violations that the type checker would reject. *)

val fmla : Typecheck.env -> Instance.t -> bindings -> Ast.fmla -> bool
(** Truth of a formula. *)

val facts_hold : Typecheck.env -> Instance.t -> bool
(** Do all explicit facts and all implicit constraints (signature
    hierarchy, multiplicities, field typing) hold in the instance? *)

val pred_sat : Typecheck.env -> Instance.t -> Ast.pred_decl -> bool
(** Truth of a predicate whose parameters are existentially quantified over
    their bounds (the semantics of [run p]). *)
