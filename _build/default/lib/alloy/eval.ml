open Ast
module TS = Instance.Tuple_set

exception Eval_error of string

type bindings = (string * TS.t) list

let err fmt = Format.kasprintf (fun msg -> raise (Eval_error msg)) fmt

let head (t : Instance.Tuple.t) = t.(0)
let last (t : Instance.Tuple.t) = t.(Array.length t - 1)

let join_tuples (t1 : Instance.Tuple.t) (t2 : Instance.Tuple.t) =
  let n1 = Array.length t1 and n2 = Array.length t2 in
  let r = Array.make (n1 + n2 - 2) "" in
  Array.blit t1 0 r 0 (n1 - 1);
  Array.blit t2 1 r (n1 - 1) (n2 - 1);
  r

let join a b =
  TS.fold
    (fun t1 acc ->
      TS.fold
        (fun t2 acc ->
          if last t1 = head t2 && Array.length t1 + Array.length t2 > 2 then
            TS.add (join_tuples t1 t2) acc
          else acc)
        b acc)
    a TS.empty

let product a b =
  TS.fold
    (fun t1 acc ->
      TS.fold (fun t2 acc -> TS.add (Array.append t1 t2) acc) b acc)
    a TS.empty

let transpose a = TS.map (fun t -> [| t.(1); t.(0) |]) a

(* Transitive closure of a binary relation, by iterated squaring against the
   accumulated result. *)
let closure a =
  let rec fixpoint acc =
    let next = TS.union acc (join acc a) in
    if TS.equal next acc then acc else fixpoint next
  in
  fixpoint a

let override a b =
  let overridden_heads =
    TS.fold (fun t acc -> TS.add [| head t |] acc) b TS.empty
  in
  let kept = TS.filter (fun t -> not (TS.mem [| head t |] overridden_heads)) a in
  TS.union kept b

let rec expr env inst bindings e =
  match e with
  | Rel name -> (
      match List.assoc_opt name bindings with
      | Some v -> v
      | None -> (
          match List.assoc_opt name inst.Instance.fields with
          | Some v -> v
          | None -> (
              match List.assoc_opt name inst.Instance.sigs with
              | Some atoms -> Instance.tuples_of_atoms atoms
              | None -> (
                  match Ast.find_fun env.Typecheck.spec name with
                  | Some f -> derived_relation env inst f
                  | None ->
                      (* atom references (Node$0) denote singletons *)
                      if List.mem name (Instance.universe inst) then
                        TS.singleton [| name |]
                      else err "unknown relation %s" name))))
  | Univ -> Instance.tuples_of_atoms (Instance.universe inst)
  | Iden ->
      List.fold_left
        (fun acc a -> TS.add [| a; a |] acc)
        TS.empty (Instance.universe inst)
  | None_ -> TS.empty
  | Unop (Transpose, e) -> transpose (expr env inst bindings e)
  | Unop (Closure, e) -> closure (expr env inst bindings e)
  | Unop (Rclosure, e) ->
      let c = closure (expr env inst bindings e) in
      List.fold_left
        (fun acc a -> TS.add [| a; a |] acc)
        c (Instance.universe inst)
  | Binop (Join, a, b) -> join (expr env inst bindings a) (expr env inst bindings b)
  | Binop (Product, a, b) ->
      product (expr env inst bindings a) (expr env inst bindings b)
  | Binop (Union, a, b) ->
      TS.union (expr env inst bindings a) (expr env inst bindings b)
  | Binop (Diff, a, b) ->
      TS.diff (expr env inst bindings a) (expr env inst bindings b)
  | Binop (Inter, a, b) ->
      TS.inter (expr env inst bindings a) (expr env inst bindings b)
  | Binop (Override, a, b) ->
      override (expr env inst bindings a) (expr env inst bindings b)
  | Binop (Domrestr, s, e) ->
      let dom = expr env inst bindings s in
      TS.filter (fun t -> TS.mem [| head t |] dom) (expr env inst bindings e)
  | Binop (Ranrestr, e, s) ->
      let ran = expr env inst bindings s in
      TS.filter (fun t -> TS.mem [| last t |] ran) (expr env inst bindings e)
  | Ite (c, a, b) ->
      if fmla env inst bindings c then expr env inst bindings a
      else expr env inst bindings b
  | Compr (decls, body) ->
      (* enumerate assignments of the declared variables; keep the tuples
         whose assignment satisfies the body *)
      let rec expand bindings tuple_prefix = function
        | [] ->
            if fmla env inst bindings body then
              TS.singleton (Array.of_list (List.rev tuple_prefix))
            else TS.empty
        | (name, bound) :: rest ->
            TS.fold
              (fun t acc ->
                let b = (name, TS.singleton t) :: bindings in
                TS.union acc (expand b (t.(0) :: tuple_prefix) rest))
              (expr env inst bindings bound)
              TS.empty
      in
      expand bindings [] decls

(* The relation a function denotes: parameter tuples prepended to the
   tuples of the body evaluated under them. *)
and derived_relation env inst (f : Ast.fun_decl) =
  let rec expand bindings prefix = function
    | [] ->
        TS.fold
          (fun t acc ->
            TS.add (Array.append (Array.of_list (List.rev prefix)) t) acc)
          (expr env inst bindings f.fun_body)
          TS.empty
    | (name, bound) :: rest ->
        TS.fold
          (fun t acc ->
            let b = (name, TS.singleton t) :: bindings in
            TS.union acc (expand b (t.(0) :: prefix) rest))
          (expr env inst bindings bound)
          TS.empty
  in
  expand [] [] f.fun_params

and fmla env inst bindings f =
  match f with
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> (
      let va = expr env inst bindings a and vb = expr env inst bindings b in
      match op with
      | Cin -> TS.subset va vb
      | Cnotin -> not (TS.subset va vb)
      | Ceq -> TS.equal va vb
      | Cneq -> not (TS.equal va vb))
  | Multf (m, e) -> (
      let v = expr env inst bindings e in
      match m with
      | Fno -> TS.is_empty v
      | Fsome -> not (TS.is_empty v)
      | Flone -> TS.cardinal v <= 1
      | Fone -> TS.cardinal v = 1)
  | Card (op, e, k) -> (
      let n = TS.cardinal (expr env inst bindings e) in
      match op with
      | Ilt -> n < k
      | Ile -> n <= k
      | Ieq -> n = k
      | Ineq -> n <> k
      | Ige -> n >= k
      | Igt -> n > k)
  | Not f -> not (fmla env inst bindings f)
  | And (a, b) -> fmla env inst bindings a && fmla env inst bindings b
  | Or (a, b) -> fmla env inst bindings a || fmla env inst bindings b
  | Implies (a, b) -> (not (fmla env inst bindings a)) || fmla env inst bindings b
  | Iff (a, b) -> fmla env inst bindings a = fmla env inst bindings b
  | Quant (q, decls, body) -> quantified env inst bindings q decls body
  | Let (name, value, body) ->
      let v = expr env inst bindings value in
      fmla env inst ((name, v) :: bindings) body
  | Call (name, args) -> (
      match Ast.find_pred env.Typecheck.spec name with
      | None -> err "call to unknown predicate %s" name
      | Some p ->
          let values = List.map (expr env inst bindings) args in
          let params = List.map2 (fun (n, _) v -> (n, v)) p.pred_params values in
          fmla env inst params p.pred_body)

and quantified env inst bindings q decls body =
  (* Expand declarations left to right; later bounds may reference earlier
     variables.  Count satisfying assignments lazily for all/some/no, fully
     for lone/one. *)
  let rec assignments bindings = function
    | [] -> [ bindings ]
    | (name, bound) :: rest ->
        let atoms = expr env inst bindings bound in
        TS.fold
          (fun t acc ->
            let b = (name, TS.singleton t) :: bindings in
            assignments b rest @ acc)
          atoms []
  in
  match q with
  | Qall ->
      List.for_all (fun b -> fmla env inst b body) (assignments bindings decls)
  | Qsome ->
      List.exists (fun b -> fmla env inst b body) (assignments bindings decls)
  | Qno ->
      not (List.exists (fun b -> fmla env inst b body) (assignments bindings decls))
  | Qlone ->
      let n =
        List.length
          (List.filter (fun b -> fmla env inst b body) (assignments bindings decls))
      in
      n <= 1
  | Qone ->
      let n =
        List.length
          (List.filter (fun b -> fmla env inst b body) (assignments bindings decls))
      in
      n = 1

let facts_hold env inst =
  List.for_all (fun f -> fmla env inst [] f) (Implicit.constraints env)
  && List.for_all
       (fun fact -> fmla env inst [] fact.fact_body)
       env.Typecheck.spec.facts

let pred_sat env inst (p : Ast.pred_decl) =
  match p.pred_params with
  | [] -> fmla env inst [] p.pred_body
  | params -> fmla env inst [] (Quant (Qsome, params, p.pred_body))
