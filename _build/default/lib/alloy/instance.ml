module Tuple = struct
  type t = string array

  let compare = Stdlib.compare

  let pp ppf t =
    Format.fprintf ppf "(%s)" (String.concat ", " (Array.to_list t))
end

module Tuple_set = Set.Make (Tuple)

type t = {
  sigs : (string * string list) list;
  fields : (string * Tuple_set.t) list;
}

let sig_atoms inst name =
  match List.assoc_opt name inst.sigs with
  | Some atoms -> atoms
  | None -> raise Not_found

let field_tuples inst name =
  match List.assoc_opt name inst.fields with
  | Some tuples -> tuples
  | None -> raise Not_found

let universe inst =
  List.sort_uniq String.compare (List.concat_map snd inst.sigs)

let tuples_of_atoms atoms =
  Tuple_set.of_list (List.map (fun a -> [| a |]) atoms)

let normalize inst =
  ( List.sort compare
      (List.map (fun (n, ats) -> (n, List.sort_uniq String.compare ats)) inst.sigs),
    List.sort compare inst.fields )

let equal a b =
  let sa, fa = normalize a and sb, fb = normalize b in
  sa = sb && List.length fa = List.length fb
  && List.for_all2
       (fun (n1, t1) (n2, t2) -> n1 = n2 && Tuple_set.equal t1 t2)
       fa fb

let pp ppf inst =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, atoms) ->
      Format.fprintf ppf "%s = {%s}@," name (String.concat ", " atoms))
    inst.sigs;
  List.iter
    (fun (name, tuples) ->
      Format.fprintf ppf "%s = {%s}@," name
        (String.concat ", "
           (List.map
              (fun t -> Format.asprintf "%a" Tuple.pp t)
              (Tuple_set.elements tuples))))
    inst.fields;
  Format.fprintf ppf "@]"

let atom_name sig_name i = Printf.sprintf "%s$%d" sig_name i
