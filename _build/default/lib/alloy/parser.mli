(** Recursive-descent parser for Mini-Alloy.

    The accepted grammar is the Alloy kernel (see DESIGN.md): signature
    declarations with fields, [fact]/[pred]/[assert] paragraphs and
    [run]/[check] commands.  Operator precedence follows Alloy: negation
    binds tightest, then [&&], then [=>]/[implies] (right-associative, with
    optional [else]), then [<=>], then [||]; quantifier bodies extend as far
    right as possible. *)

exception Parse_error of string

val parse : string -> Ast.spec
(** Parses a complete specification.  Raises {!Parse_error} or
    {!Lexer.Lex_error} with a line-numbered message on malformed input. *)

val parse_fmla : string -> Ast.fmla
(** Parses a single formula (used by tests and by the LLM response
    extractor). *)

val parse_expr : string -> Ast.expr
(** Parses a single relational expression. *)
