(** Ground instances (models) of a specification: a finite universe of atoms
    and a valuation of every signature and field relation.

    Instances are produced by the bounded model finder and consumed by the
    evaluator; AUnit-style tests also describe instances directly. *)

module Tuple : sig
  type t = string array

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Tuple_set : Set.S with type elt = Tuple.t

type t = {
  sigs : (string * string list) list;  (** every signature -> its atoms *)
  fields : (string * Tuple_set.t) list;  (** every field -> its tuples *)
}

val universe : t -> string list
(** All atoms (the union of top-level signature atom sets), sorted. *)

val sig_atoms : t -> string -> string list
(** Atoms of a signature; raises [Not_found] for unknown names. *)

val field_tuples : t -> string -> Tuple_set.t
(** Valuation of a field; raises [Not_found] for unknown names. *)

val tuples_of_atoms : string list -> Tuple_set.t
(** Unary tuple set over the given atoms. *)

val equal : t -> t -> bool
(** Valuation equality (signature and field contents, order-insensitive). *)

val pp : Format.formatter -> t -> unit

val atom_name : string -> int -> string
(** [atom_name "Room" 2] is ["Room$2"], the conventional atom spelling. *)
