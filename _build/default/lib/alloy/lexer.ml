type token =
  | Tident of string
  | Tint of int
  | Tmodule
  | Tsig
  | Tabstract
  | Textends
  | Tone
  | Tlone
  | Tsome
  | Tset
  | Tall
  | Tno
  | Tfact
  | Tpred
  | Tfun
  | Tlet
  | Tassert
  | Tcheck
  | Trun
  | Tfor
  | Tbut
  | Tin
  | Tnot
  | Tand
  | Tor
  | Timplies
  | Tiff
  | Telse
  | Tuniv
  | Tiden
  | Tnone
  | Tlbrace
  | Trbrace
  | Tlbrack
  | Trbrack
  | Tlparen
  | Trparen
  | Tcolon
  | Tcomma
  | Tdot
  | Tbar
  | Tplus
  | Tminus
  | Tamp
  | Tplusplus
  | Tarrow
  | Tdomres
  | Tranres
  | Ttilde
  | Tcaret
  | Tstar
  | Thash
  | Teq
  | Tneq
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tbang
  | Tampamp
  | Tbarbar
  | Tfatarrow
  | Tiffarrow
  | Teof

exception Lex_error of string

let keywords =
  [
    ("module", Tmodule);
    ("sig", Tsig);
    ("abstract", Tabstract);
    ("extends", Textends);
    ("one", Tone);
    ("lone", Tlone);
    ("some", Tsome);
    ("set", Tset);
    ("all", Tall);
    ("no", Tno);
    ("fact", Tfact);
    ("pred", Tpred);
    ("fun", Tfun);
    ("let", Tlet);
    ("assert", Tassert);
    ("check", Tcheck);
    ("run", Trun);
    ("for", Tfor);
    ("but", Tbut);
    ("in", Tin);
    ("not", Tnot);
    ("and", Tand);
    ("or", Tor);
    ("implies", Timplies);
    ("iff", Tiff);
    ("else", Telse);
    ("univ", Tuniv);
    ("iden", Tiden);
    ("none", Tnone);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* '$' admits atom names such as Node$0, which the evaluator resolves to
   singleton sets (as in the Alloy evaluator REPL). *)
let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '$'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  let emit tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = '/' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '-' && peek 1 = '-' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '/' && peek 1 = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then
        raise (Lex_error (Printf.sprintf "line %d: unterminated comment" !line))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match List.assoc_opt word keywords with
      | Some kw -> emit kw
      | None -> emit (Tident word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit (Tint (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let tok2 =
        match two with
        | "++" -> Some Tplusplus
        | "->" -> Some Tarrow
        | "<:" -> Some Tdomres
        | ":>" -> Some Tranres
        | "!=" -> Some Tneq
        | "<=" -> if peek 2 = '>' then None else Some Tle
        | ">=" -> Some Tge
        | "&&" -> Some Tampamp
        | "||" -> Some Tbarbar
        | "=>" -> Some Tfatarrow
        | _ -> None
      in
      match tok2 with
      | Some t ->
          emit t;
          i := !i + 2
      | None ->
          if two = "<=" && peek 2 = '>' then begin
            emit Tiffarrow;
            i := !i + 3
          end
          else begin
            (match c with
            | '{' -> emit Tlbrace
            | '}' -> emit Trbrace
            | '[' -> emit Tlbrack
            | ']' -> emit Trbrack
            | '(' -> emit Tlparen
            | ')' -> emit Trparen
            | ':' -> emit Tcolon
            | ',' -> emit Tcomma
            | '.' -> emit Tdot
            | '|' -> emit Tbar
            | '+' -> emit Tplus
            | '-' -> emit Tminus
            | '&' -> emit Tamp
            | '~' -> emit Ttilde
            | '^' -> emit Tcaret
            | '*' -> emit Tstar
            | '#' -> emit Thash
            | '=' -> emit Teq
            | '<' -> emit Tlt
            | '>' -> emit Tgt
            | '!' -> emit Tbang
            | _ ->
                raise
                  (Lex_error
                     (Printf.sprintf "line %d: unexpected character %C" !line c)));
            incr i
          end
    end
  done;
  emit Teof;
  Array.of_list (List.rev !tokens)

let token_to_string = function
  | Tident s -> s
  | Tint k -> string_of_int k
  | Tmodule -> "module"
  | Tsig -> "sig"
  | Tabstract -> "abstract"
  | Textends -> "extends"
  | Tone -> "one"
  | Tlone -> "lone"
  | Tsome -> "some"
  | Tset -> "set"
  | Tall -> "all"
  | Tno -> "no"
  | Tfact -> "fact"
  | Tpred -> "pred"
  | Tfun -> "fun"
  | Tlet -> "let"
  | Tassert -> "assert"
  | Tcheck -> "check"
  | Trun -> "run"
  | Tfor -> "for"
  | Tbut -> "but"
  | Tin -> "in"
  | Tnot -> "not"
  | Tand -> "and"
  | Tor -> "or"
  | Timplies -> "implies"
  | Tiff -> "iff"
  | Telse -> "else"
  | Tuniv -> "univ"
  | Tiden -> "iden"
  | Tnone -> "none"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tlbrack -> "["
  | Trbrack -> "]"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tcolon -> ":"
  | Tcomma -> ","
  | Tdot -> "."
  | Tbar -> "|"
  | Tplus -> "+"
  | Tminus -> "-"
  | Tamp -> "&"
  | Tplusplus -> "++"
  | Tarrow -> "->"
  | Tdomres -> "<:"
  | Tranres -> ":>"
  | Ttilde -> "~"
  | Tcaret -> "^"
  | Tstar -> "*"
  | Thash -> "#"
  | Teq -> "="
  | Tneq -> "!="
  | Tlt -> "<"
  | Tle -> "<="
  | Tgt -> ">"
  | Tge -> ">="
  | Tbang -> "!"
  | Tampamp -> "&&"
  | Tbarbar -> "||"
  | Tfatarrow -> "=>"
  | Tiffarrow -> "<=>"
  | Teof -> "<eof>"
