(** Implicit constraints of a specification: everything the Alloy semantics
    imposes beyond the explicit facts.  Shared between the evaluator (to
    check candidate instances) and the bounded model finder (conjoined to
    every translation).

    Generated constraints cover: [extends] containment, disjointness of
    sibling subsignatures, exhaustiveness of abstract signatures, signature
    multiplicities ([one sig] etc.), field typing, and field-range
    multiplicities. *)

val constraints : Typecheck.env -> Ast.fmla list
(** Internal quantified variables are named ["_m0"], ["_m1"], ... which
    cannot clash with parsed programs in practice and print/parse cleanly. *)
