open Lexer

exception Parse_error of string

type state = { tokens : (token * int) array; mutable pos : int }

let current st = fst st.tokens.(st.pos)
let current_line st = snd st.tokens.(st.pos)
let peek_at st k =
  let i = st.pos + k in
  if i < Array.length st.tokens then fst st.tokens.(i) else Teof

let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "line %d: %s (found %s)" (current_line st) msg
          (token_to_string (current st))))

let expect st tok msg =
  if current st = tok then advance st else fail st ("expected " ^ msg)

let expect_ident st msg =
  match current st with
  | Tident s ->
      advance st;
      s
  | _ -> fail st ("expected " ^ msg)

let accept st tok =
  if current st = tok then begin
    advance st;
    true
  end
  else false

(* Is the upcoming token sequence a quantifier declaration, i.e.
   ident (, ident)* : ...?  Distinguishes "some x: A | f" from "some e". *)
let rec looks_like_decls st k =
  match peek_at st k with
  | Tident _ -> (
      match peek_at st (k + 1) with
      | Tcolon -> true
      | Tcomma -> looks_like_decls st (k + 2)
      | _ -> false)
  | _ -> false

let quant_of_token = function
  | Tall -> Some Ast.Qall
  | Tsome -> Some Ast.Qsome
  | Tno -> Some Ast.Qno
  | Tlone -> Some Ast.Qlone
  | Tone -> Some Ast.Qone
  | _ -> None

let fmult_of_token = function
  | Tno -> Some Ast.Fno
  | Tsome -> Some Ast.Fsome
  | Tlone -> Some Ast.Flone
  | Tone -> Some Ast.Fone
  | _ -> None

(* {2 Expressions}

   Precedence, tightest first: unary [~ ^ "*"], join [. and box],
   restriction [<: :>], product [->], intersection [&], override [++],
   union/difference [+ -]. *)

let rec parse_expr_prec st = parse_union st

and parse_union st =
  let rec loop acc =
    if accept st Tplus then loop (Ast.Binop (Union, acc, parse_override st))
    else if accept st Tminus then loop (Ast.Binop (Diff, acc, parse_override st))
    else acc
  in
  loop (parse_override st)

and parse_override st =
  let rec loop acc =
    if accept st Tplusplus then loop (Ast.Binop (Override, acc, parse_inter st))
    else acc
  in
  loop (parse_inter st)

and parse_inter st =
  let rec loop acc =
    if accept st Tamp then loop (Ast.Binop (Inter, acc, parse_product st))
    else acc
  in
  loop (parse_product st)

and parse_product st =
  let rec loop acc =
    (* field declarations also use ->, but those are parsed separately *)
    if accept st Tarrow then loop (Ast.Binop (Product, acc, parse_restrict st))
    else acc
  in
  loop (parse_restrict st)

and parse_restrict st =
  let rec loop acc =
    if accept st Tdomres then loop (Ast.Binop (Domrestr, acc, parse_join st))
    else if accept st Tranres then loop (Ast.Binop (Ranrestr, acc, parse_join st))
    else acc
  in
  loop (parse_join st)

and parse_join st =
  let rec loop acc =
    if accept st Tdot then loop (Ast.Binop (Join, acc, parse_unary st))
    else if current st = Tlbrack then begin
      (* box join: e[a, b] = b.(a.e) *)
      advance st;
      let args = parse_expr_list st in
      expect st Trbrack "]";
      let joined =
        List.fold_left (fun acc arg -> Ast.Binop (Join, arg, acc)) acc args
      in
      loop joined
    end
    else acc
  in
  loop (parse_unary st)

and parse_unary st =
  match current st with
  | Ttilde ->
      advance st;
      Ast.Unop (Transpose, parse_unary st)
  | Tcaret ->
      advance st;
      Ast.Unop (Closure, parse_unary st)
  | Tstar ->
      advance st;
      Ast.Unop (Rclosure, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match current st with
  | Tlbrace ->
      (* set comprehension: { x: A, y: B | f } *)
      advance st;
      let rec parse_decls () =
        let name = expect_ident st "comprehension variable" in
        expect st Tcolon ":";
        let bound = parse_expr_prec st in
        if accept st Tcomma then (name, bound) :: parse_decls ()
        else [ (name, bound) ]
      in
      let decls = parse_decls () in
      expect st Tbar "|";
      let body = parse_fmla_prec st in
      expect st Trbrace "}";
      Ast.Compr (decls, body)
  | Tident name ->
      advance st;
      Ast.Rel name
  | Tuniv ->
      advance st;
      Ast.Univ
  | Tiden ->
      advance st;
      Ast.Iden
  | Tnone ->
      advance st;
      Ast.None_
  | Tlparen ->
      advance st;
      let e = parse_expr_prec st in
      expect st Trparen ")";
      e
  | _ -> fail st "expected an expression"

and parse_expr_list st =
  let e = parse_expr_prec st in
  if accept st Tcomma then e :: parse_expr_list st else [ e ]

(* {2 Formulas}

   Alloy precedence, loosest first: quantified formulas, then [||], [<=>],
   [=>] (right-assoc, with [else]), [&&], [!]. *)

and parse_fmla_prec st = parse_or st

and parse_or st =
  let lhs = parse_iff st in
  let rec loop acc =
    if accept st Tbarbar || accept st Tor then loop (Ast.Or (acc, parse_iff st))
    else acc
  in
  loop lhs

and parse_iff st =
  let lhs = parse_implies st in
  let rec loop acc =
    if accept st Tiffarrow || accept st Tiff then
      loop (Ast.Iff (acc, parse_implies st))
    else acc
  in
  loop lhs

and parse_implies st =
  let lhs = parse_and st in
  if accept st Tfatarrow || accept st Timplies then begin
    let thn = parse_implies st in
    if accept st Telse then
      let els = parse_implies st in
      Ast.Or (Ast.And (lhs, thn), Ast.And (Ast.Not lhs, els))
    else Ast.Implies (lhs, thn)
  end
  else lhs

and parse_and st =
  let lhs = parse_neg st in
  let rec loop acc =
    if accept st Tampamp || accept st Tand then loop (Ast.And (acc, parse_neg st))
    else acc
  in
  loop lhs

and parse_neg st =
  if accept st Tbang || accept st Tnot then Ast.Not (parse_neg st)
  else parse_atom st

and parse_quantified st quant =
  (* decls := names ':' expr (',' decls)?   names := ident (',' ident)*
     Commas before the colon separate names of one group; a comma after a
     bound starts a fresh group. *)
  let rec parse_decls () =
    let rec parse_names acc =
      let name = expect_ident st "variable name" in
      let acc = name :: acc in
      if accept st Tcomma then parse_names acc else acc
    in
    let names = parse_names [] in
    expect st Tcolon ":";
    let bound = parse_expr_prec st in
    let decls = List.rev_map (fun n -> (n, bound)) names in
    if accept st Tcomma then decls @ parse_decls () else decls
  in
  let decls = parse_decls () in
  let body =
    if accept st Tbar then parse_fmla_prec st
    else if current st = Tlbrace then parse_block st
    else fail st "expected | or { after quantifier declarations"
  in
  Ast.Quant (quant, decls, body)

and parse_atom st =
  match current st with
  | Tlet ->
      advance st;
      let name = expect_ident st "let-bound name" in
      expect st Teq "=";
      let value = parse_expr_prec st in
      let body =
        if accept st Tbar then parse_fmla_prec st
        else if current st = Tlbrace then parse_block st
        else fail st "expected | or { after let binding"
      in
      Ast.Let (name, value, body)
  | Tlbrace when looks_like_decls st 1 ->
      (* a comprehension expression opening a comparison *)
      parse_comparison st
  | Tlbrace -> parse_block st
  | Tall | Tsome | Tno | Tlone | Tone -> (
      let tok = current st in
      if looks_like_decls st 1 then begin
        advance st;
        match quant_of_token tok with
        | Some q -> parse_quantified st q
        | None -> assert false
      end
      else
        match fmult_of_token tok with
        | Some m ->
            advance st;
            Ast.Multf (m, parse_expr_prec st)
        | None -> fail st "'all' requires variable declarations")
  | Thash ->
      advance st;
      let e = parse_expr_prec st in
      let op =
        match current st with
        | Teq -> Ast.Ieq
        | Tneq -> Ast.Ineq
        | Tlt -> Ast.Ilt
        | Tle -> Ast.Ile
        | Tgt -> Ast.Igt
        | Tge -> Ast.Ige
        | _ -> fail st "expected a comparison operator after #expr"
      in
      advance st;
      (match current st with
      | Tint k ->
          advance st;
          Ast.Card (op, e, k)
      | _ -> fail st "expected an integer literal in cardinality comparison")
  | Tlparen ->
      (* Could be a parenthesised formula or a parenthesised expression that
         begins a comparison.  Try the formula reading first; back off when
         it fails, or when the closing paren is followed by a token that can
         only continue an expression. *)
      let saved = st.pos in
      let as_formula =
        try
          advance st;
          let f = parse_fmla_prec st in
          expect st Trparen ")";
          Some f
        with Parse_error _ -> None
      in
      let continues_expr () =
        match current st with
        | Teq | Tneq | Tin | Tdot | Tlbrack | Tarrow | Tplus | Tminus | Tamp
        | Tplusplus | Tdomres | Tranres ->
            true
        | Tnot | Tbang -> peek_at st 1 = Tin
        | _ -> false
      in
      (match as_formula with
      | Some f when not (continues_expr ()) -> f
      | _ ->
          st.pos <- saved;
          parse_comparison st)
  | _ -> parse_comparison st

and parse_block st =
  expect st Tlbrace "{";
  let rec loop acc =
    if accept st Trbrace then acc
    else
      let f = parse_fmla_prec st in
      let acc = match acc with Ast.True -> f | _ -> Ast.And (acc, f) in
      loop acc
  in
  loop Ast.True

(* expr (in | not in | = | !=) expr, or a predicate call *)
and parse_comparison st =
  let lhs = parse_expr_prec st in
  match current st with
  | Tin ->
      advance st;
      Ast.Cmp (Cin, lhs, parse_expr_prec st)
  | Tnot | Tbang when peek_at st 1 = Tin ->
      advance st;
      advance st;
      Ast.Cmp (Cnotin, lhs, parse_expr_prec st)
  | Teq ->
      advance st;
      Ast.Cmp (Ceq, lhs, parse_expr_prec st)
  | Tneq ->
      advance st;
      Ast.Cmp (Cneq, lhs, parse_expr_prec st)
  | _ -> (
      (* No comparison: the expression must denote a predicate call. *)
      match expr_to_call lhs with
      | Some f -> f
      | None -> fail st "expected a comparison operator")

(* Reinterpret a parsed expression as a predicate call: [p] becomes
   [Call(p, [])] and [p[a, b]] — parsed as b.(a.p) — becomes
   [Call(p, [a; b])]. *)
and expr_to_call e =
  let rec split = function
    | Ast.Rel name -> Some (name, [])
    | Ast.Binop (Join, arg, rest) -> (
        match split rest with
        | Some (name, args) -> Some (name, arg :: args)
        | None -> None)
    | _ -> None
  in
  match split e with
  | Some (name, args) -> Some (Ast.Call (name, List.rev args))
  | None -> None

(* {2 Paragraphs} *)

let parse_mult_opt st =
  match current st with
  | Tone ->
      advance st;
      Some Ast.Mone
  | Tlone ->
      advance st;
      Some Ast.Mlone
  | Tsome ->
      advance st;
      Some Ast.Msome
  | Tset ->
      advance st;
      Some Ast.Mset
  | _ -> None

(* field declaration: name : [mult] col (-> [mult] col)*.  Only the
   multiplicity of the final column is retained; an unannotated binary field
   ("f: A") defaults to [one] as in Alloy, higher-arity fields default to
   [set]. *)
let parse_field st =
  let name = expect_ident st "field name" in
  expect st Tcolon ":";
  let rec parse_cols acc =
    let m = parse_mult_opt st in
    (* columns parse at restriction level so arrows remain column breaks;
       looser column expressions require parentheses *)
    let col = parse_restrict st in
    if accept st Tarrow then parse_cols ((col, m) :: acc)
    else (col, m) :: acc
  in
  let cols_rev = parse_cols [] in
  let cols = List.rev_map fst cols_rev in
  let mult =
    match cols_rev with
    | (_, Some m) :: _ -> m
    | (_, None) :: _ -> if List.length cols = 1 then Ast.Mone else Ast.Mset
    | [] -> assert false
  in
  { Ast.fld_name = name; fld_cols = cols; fld_mult = mult }

let parse_sig st ~is_abstract ~mult =
  expect st Tsig "sig";
  let name = expect_ident st "signature name" in
  let parent =
    if accept st Textends then Some (expect_ident st "parent signature name")
    else None
  in
  expect st Tlbrace "{";
  let fields = ref [] in
  if not (accept st Trbrace) then begin
    let rec loop () =
      fields := parse_field st :: !fields;
      if accept st Tcomma then loop () else expect st Trbrace "}"
    in
    loop ()
  end;
  {
    Ast.sig_name = name;
    sig_parent = parent;
    sig_abstract = is_abstract;
    sig_mult = mult;
    sig_fields = List.rev !fields;
  }

let parse_params st close =
  let rec loop () =
    let name = expect_ident st "parameter name" in
    expect st Tcolon ":";
    let bound = parse_expr_prec st in
    if accept st Tcomma then (name, bound) :: loop () else [ (name, bound) ]
  in
  let params = if current st = close then [] else loop () in
  expect st close (if close = Trbrack then "]" else ")");
  params

let parse_scopes st =
  if accept st Tfor then begin
    let scope =
      match current st with
      | Tint k ->
          advance st;
          k
      | _ -> fail st "expected a scope"
    in
    let overrides = ref [] in
    if accept st Tbut then begin
      let rec loop () =
        (match current st with
        | Tint k ->
            advance st;
            let name = expect_ident st "signature name" in
            overrides := (name, k) :: !overrides
        | _ -> fail st "expected INT SigName in scope override");
        if accept st Tcomma then loop ()
      in
      loop ()
    end;
    (scope, List.rev !overrides)
  end
  else (3, [])

let parse_spec st =
  let module_name =
    if accept st Tmodule then Some (expect_ident st "module name") else None
  in
  let sigs = ref [] in
  let facts = ref [] in
  let preds = ref [] in
  let funs = ref [] in
  let asserts = ref [] in
  let commands = ref [] in
  let rec loop () =
    match current st with
    | Teof -> ()
    | Tabstract ->
        advance st;
        let mult =
          match parse_mult_opt st with Some m -> m | None -> Ast.Mset
        in
        sigs := parse_sig st ~is_abstract:true ~mult :: !sigs;
        loop ()
    | Tone | Tlone | Tsome when peek_at st 1 = Tsig ->
        let mult =
          match parse_mult_opt st with Some m -> m | None -> Ast.Mset
        in
        sigs := parse_sig st ~is_abstract:false ~mult :: !sigs;
        loop ()
    | Tsig ->
        sigs := parse_sig st ~is_abstract:false ~mult:Ast.Mset :: !sigs;
        loop ()
    | Tfact ->
        advance st;
        let name =
          match current st with
          | Tident s ->
              advance st;
              Some s
          | _ -> None
        in
        let body = parse_block st in
        facts := { Ast.fact_name = name; fact_body = body } :: !facts;
        loop ()
    | Tpred ->
        advance st;
        let name = expect_ident st "predicate name" in
        let params =
          if accept st Tlbrack then parse_params st Trbrack
          else if accept st Tlparen then parse_params st Trparen
          else []
        in
        let body = parse_block st in
        preds :=
          { Ast.pred_name = name; pred_params = params; pred_body = body }
          :: !preds;
        loop ()
    | Tfun ->
        (* fun name [params] : result-bound { body-expr } *)
        advance st;
        let name = expect_ident st "function name" in
        let params =
          if accept st Tlbrack then parse_params st Trbrack
          else if accept st Tlparen then parse_params st Trparen
          else []
        in
        expect st Tcolon ":";
        (* an optional leading multiplicity keyword on the result is noise *)
        ignore (parse_mult_opt st);
        let result = parse_expr_prec st in
        expect st Tlbrace "{";
        let body = parse_expr_prec st in
        expect st Trbrace "}";
        funs :=
          {
            Ast.fun_name = name;
            fun_params = params;
            fun_result = result;
            fun_body = body;
          }
          :: !funs;
        loop ()
    | Tassert ->
        advance st;
        let name = expect_ident st "assertion name" in
        let body = parse_block st in
        asserts := { Ast.assert_name = name; assert_body = body } :: !asserts;
        loop ()
    | Trun ->
        advance st;
        let kind =
          match current st with
          | Tident s ->
              advance st;
              Ast.Run_pred s
          | Tlbrace -> Ast.Run_fmla (parse_block st)
          | _ -> fail st "expected predicate name or block after run"
        in
        let scope, scopes = parse_scopes st in
        commands :=
          { Ast.cmd_kind = kind; cmd_scope = scope; cmd_scopes = scopes }
          :: !commands;
        loop ()
    | Tcheck ->
        advance st;
        let name = expect_ident st "assertion name" in
        let scope, scopes = parse_scopes st in
        commands :=
          { Ast.cmd_kind = Check name; cmd_scope = scope; cmd_scopes = scopes }
          :: !commands;
        loop ()
    | _ -> fail st "expected a paragraph (sig, fact, pred, assert, run, check)"
  in
  loop ();
  {
    Ast.module_name;
    sigs = List.rev !sigs;
    facts = List.rev !facts;
    preds = List.rev !preds;
    funs = List.rev !funs;
    asserts = List.rev !asserts;
    commands = List.rev !commands;
  }

let with_state src f =
  let st = { tokens = Lexer.tokenize src; pos = 0 } in
  let result = f st in
  if current st <> Teof then fail st "trailing input";
  result

let parse src = with_state src parse_spec
let parse_fmla src = with_state src parse_fmla_prec
let parse_expr src = with_state src parse_expr_prec
