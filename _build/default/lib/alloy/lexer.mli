(** Tokenizer for Mini-Alloy source text. *)

type token =
  | Tident of string
  | Tint of int
  (* keywords *)
  | Tmodule
  | Tsig
  | Tabstract
  | Textends
  | Tone
  | Tlone
  | Tsome
  | Tset
  | Tall
  | Tno
  | Tfact
  | Tpred
  | Tfun
  | Tlet
  | Tassert
  | Tcheck
  | Trun
  | Tfor
  | Tbut
  | Tin
  | Tnot
  | Tand
  | Tor
  | Timplies
  | Tiff
  | Telse
  | Tuniv
  | Tiden
  | Tnone
  (* punctuation and operators *)
  | Tlbrace
  | Trbrace
  | Tlbrack
  | Trbrack
  | Tlparen
  | Trparen
  | Tcolon
  | Tcomma
  | Tdot
  | Tbar
  | Tplus
  | Tminus
  | Tamp
  | Tplusplus
  | Tarrow
  | Tdomres
  | Tranres
  | Ttilde
  | Tcaret
  | Tstar
  | Thash
  | Teq
  | Tneq
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tbang
  | Tampamp
  | Tbarbar
  | Tfatarrow (* => *)
  | Tiffarrow (* <=> *)
  | Teof

exception Lex_error of string
(** Raised on an unrecognised character; the message includes the line. *)

val tokenize : string -> (token * int) array
(** [tokenize src] is the token stream with 1-based line numbers, terminated
    by [Teof]. Comments ([//], [--], [/* */]) and whitespace are skipped. *)

val token_to_string : token -> string
(** Surface syntax of a token (keywords and operators as written;
    identifiers and integers verbatim). *)
