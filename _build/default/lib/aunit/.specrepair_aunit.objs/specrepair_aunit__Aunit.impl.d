lib/aunit/aunit.ml: List Printf Specrepair_alloy Specrepair_solver
