lib/aunit/aunit.mli: Specrepair_alloy Specrepair_solver
