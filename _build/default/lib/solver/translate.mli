(** Compilation of Mini-Alloy expressions and formulas into boolean
    formulas over the bounds' SAT variables.

    Quantifiers are grounded over the (symbolic) contents of their bounding
    expression; predicate calls are inlined with parameters bound to the
    argument matrices. *)

open Specrepair_sat
module Alloy = Specrepair_alloy

exception Translate_error of string

type var_env = (string * Matrix.t) list
(** Quantified variables and predicate parameters in scope. *)

val expr : Bounds.t -> var_env -> Alloy.Ast.expr -> Matrix.t
val fmla : Bounds.t -> var_env -> Alloy.Ast.fmla -> Formula.t

val spec_fmla : Bounds.t -> Formula.t
(** Conjunction of all implicit constraints, explicit facts, and
    child-signature scope overrides. *)

val implicit_fmla : Bounds.t -> Formula.t
(** Only the implicit constraints and child-signature scope caps — the part
    of {!spec_fmla} that depends on the signature declarations and scope but
    not on the facts.  {!Oracle} asserts this once per solving context and
    guards each fact separately. *)

val pred_goal : Bounds.t -> Alloy.Ast.pred_decl -> Formula.t
(** Predicate body with parameters existentially quantified over their
    bounds (the goal of [run p]). *)
