open Specrepair_sat
module Alloy = Specrepair_alloy
module Ast = Alloy.Ast

exception Translate_error of string

type var_env = (string * Matrix.t) list

let err fmt = Format.kasprintf (fun m -> raise (Translate_error m)) fmt

let rec expr bounds (vars : var_env) (e : Ast.expr) =
  match e with
  | Ast.Rel name -> (
      match List.assoc_opt name vars with
      | Some m -> m
      | None -> (
          try Bounds.relation bounds name
          with Not_found -> (
            match Ast.find_fun bounds.Bounds.env.spec name with
            | Some f -> derived_relation bounds f
            | None -> err "unknown relation %s" name)))
  | Ast.Univ -> bounds.Bounds.univ_matrix
  | Ast.Iden -> bounds.Bounds.iden_matrix
  | Ast.None_ -> Matrix.empty 1
  | Ast.Unop (Transpose, e) -> Matrix.transpose (expr bounds vars e)
  | Ast.Unop (Closure, e) -> Matrix.closure (expr bounds vars e)
  | Ast.Unop (Rclosure, e) ->
      Matrix.union (Matrix.closure (expr bounds vars e)) bounds.Bounds.iden_matrix
  | Ast.Binop (Join, a, b) -> Matrix.join (expr bounds vars a) (expr bounds vars b)
  | Ast.Binop (Product, a, b) ->
      Matrix.product (expr bounds vars a) (expr bounds vars b)
  | Ast.Binop (Union, a, b) ->
      Matrix.union (expr bounds vars a) (expr bounds vars b)
  | Ast.Binop (Diff, a, b) -> Matrix.diff (expr bounds vars a) (expr bounds vars b)
  | Ast.Binop (Inter, a, b) ->
      Matrix.inter (expr bounds vars a) (expr bounds vars b)
  | Ast.Binop (Override, a, b) ->
      Matrix.override (expr bounds vars a) (expr bounds vars b)
  | Ast.Binop (Domrestr, s, e) ->
      Matrix.dom_restrict (expr bounds vars s) (expr bounds vars e)
  | Ast.Binop (Ranrestr, e, s) ->
      Matrix.ran_restrict (expr bounds vars e) (expr bounds vars s)
  | Ast.Ite (c, a, b) ->
      Matrix.ite (fmla bounds vars c) (expr bounds vars a) (expr bounds vars b)
  | Ast.Compr (decls, body) ->
      (* ground the declared variables over their bounds; each assignment
         contributes its tuple guarded by membership and the body *)
      let rec expand guard vars tuple_prefix = function
        | [] ->
            let t = Array.of_list (List.rev tuple_prefix) in
            [ (t, Formula.and2 guard (fmla bounds vars body)) ]
        | (name, bound) :: rest ->
            let m = expr bounds vars bound in
            List.concat_map
              (fun ((tuple : Alloy.Instance.Tuple.t), cell_guard) ->
                expand
                  (Formula.and2 guard cell_guard)
                  ((name, Matrix.singleton tuple) :: vars)
                  (tuple.(0) :: tuple_prefix)
                  rest)
              (Matrix.support m)
      in
      Matrix.of_cells (List.length decls) (expand Formula.tru vars [] decls)

(* The matrix a function denotes: ground the parameters over their bounds,
   prefix the parameter atoms to the body matrix tuples. *)
and derived_relation bounds (f : Ast.fun_decl) =
  let rec expand guard vars prefix = function
    | [] ->
        let body = expr bounds vars f.fun_body in
        List.map
          (fun (t, cell) ->
            ( Array.append (Array.of_list (List.rev prefix)) t,
              Formula.and2 guard cell ))
          (Matrix.support body)
    | (name, bound) :: rest ->
        let m = expr bounds vars bound in
        List.concat_map
          (fun ((tuple : Alloy.Instance.Tuple.t), cell_guard) ->
            expand
              (Formula.and2 guard cell_guard)
              ((name, Matrix.singleton tuple) :: vars)
              (tuple.(0) :: prefix)
              rest)
          (Matrix.support m)
  in
  let cells = expand Formula.tru [] [] f.fun_params in
  let arity =
    match cells with
    | (t, _) :: _ -> Array.length t
    | [] -> 1 + List.length f.fun_params
  in
  Matrix.of_cells arity cells

and fmla bounds vars (f : Ast.fmla) =
  match f with
  | Ast.True -> Formula.tru
  | Ast.False -> Formula.fls
  | Ast.Cmp (op, a, b) -> (
      let ma = expr bounds vars a and mb = expr bounds vars b in
      match op with
      | Cin -> Matrix.subset ma mb
      | Cnotin -> Formula.not_ (Matrix.subset ma mb)
      | Ceq -> Matrix.equal ma mb
      | Cneq -> Formula.not_ (Matrix.equal ma mb))
  | Ast.Multf (m, e) -> (
      let me = expr bounds vars e in
      match m with
      | Fno -> Matrix.no me
      | Fsome -> Matrix.some me
      | Flone -> Matrix.lone me
      | Fone -> Matrix.one me)
  | Ast.Card (op, e, k) ->
      let me = expr bounds vars e in
      let op =
        match op with
        | Ast.Ilt -> `Lt
        | Ast.Ile -> `Le
        | Ast.Ieq -> `Eq
        | Ast.Ineq -> `Ne
        | Ast.Ige -> `Ge
        | Ast.Igt -> `Gt
      in
      Matrix.card_compare op me k
  | Ast.Not f -> Formula.not_ (fmla bounds vars f)
  | Ast.And (a, b) -> Formula.and2 (fmla bounds vars a) (fmla bounds vars b)
  | Ast.Or (a, b) -> Formula.or2 (fmla bounds vars a) (fmla bounds vars b)
  | Ast.Implies (a, b) -> Formula.imp (fmla bounds vars a) (fmla bounds vars b)
  | Ast.Iff (a, b) -> Formula.iff (fmla bounds vars a) (fmla bounds vars b)
  | Ast.Quant (q, decls, body) -> quantified bounds vars q decls body
  | Ast.Let (name, value, body) ->
      let m = expr bounds vars value in
      fmla bounds ((name, m) :: vars) body
  | Ast.Call (name, args) -> (
      match Ast.find_pred bounds.Bounds.env.spec name with
      | None -> err "call to unknown predicate %s" name
      | Some p ->
          let values = List.map (expr bounds vars) args in
          let params =
            List.map2 (fun (n, _) v -> (n, v)) p.pred_params values
          in
          fmla bounds params p.pred_body)

(* Ground a quantifier: enumerate assignments of the declared variables to
   tuples in the upper bound of their bounding expressions, guarded by the
   membership formulas of those tuples. *)
and quantified bounds vars q decls body =
  let rec assignments guard vars = function
    | [] -> [ (guard, vars) ]
    | (name, bound) :: rest ->
        let m = expr bounds vars bound in
        List.concat_map
          (fun (tuple, cell_guard) ->
            assignments
              (Formula.and2 guard cell_guard)
              ((name, Matrix.singleton tuple) :: vars)
              rest)
          (Matrix.support m)
  in
  let instantiations = assignments Formula.tru vars decls in
  match q with
  | Ast.Qall ->
      Formula.and_
        (List.map
           (fun (guard, vars) -> Formula.imp guard (fmla bounds vars body))
           instantiations)
  | Ast.Qsome ->
      Formula.or_
        (List.map
           (fun (guard, vars) -> Formula.and2 guard (fmla bounds vars body))
           instantiations)
  | Ast.Qno ->
      Formula.not_
        (Formula.or_
           (List.map
              (fun (guard, vars) -> Formula.and2 guard (fmla bounds vars body))
              instantiations))
  | Ast.Qlone ->
      Card.at_most 1
        (List.map
           (fun (guard, vars) -> Formula.and2 guard (fmla bounds vars body))
           instantiations)
  | Ast.Qone ->
      Card.exactly 1
        (List.map
           (fun (guard, vars) -> Formula.and2 guard (fmla bounds vars body))
           instantiations)

(* Implicit constraints plus child-signature scope caps: the part of a
   spec's translation that depends only on the signature declarations and
   the scope — the immutable base an incremental oracle asserts once. *)
let implicit_fmla bounds =
  let env = bounds.Bounds.env in
  let implicit = Alloy.Implicit.constraints env in
  (* scope overrides naming non-top signatures become cardinality caps *)
  let scope_caps =
    List.filter_map
      (fun (name, k) ->
        if List.mem name env.top_sigs then None
        else Some (Ast.Card (Ast.Ile, Ast.Rel name, k)))
      bounds.Bounds.scope.overrides
  in
  Formula.and_ (List.map (fmla bounds []) (implicit @ scope_caps))

let spec_fmla bounds =
  let env = bounds.Bounds.env in
  let implicit = Alloy.Implicit.constraints env in
  let facts = List.map (fun f -> f.Ast.fact_body) env.spec.facts in
  let scope_caps =
    List.filter_map
      (fun (name, k) ->
        if List.mem name env.top_sigs then None
        else Some (Ast.Card (Ast.Ile, Ast.Rel name, k)))
      bounds.Bounds.scope.overrides
  in
  (* translated in this exact order (implicit, facts, caps): definition
     variables are allocated in traversal order and the first model found
     depends on it; [Oracle]'s fresh-path fallback must match a plain
     {!Analyzer} solve bit for bit *)
  Formula.and_ (List.map (fmla bounds []) (implicit @ facts @ scope_caps))

let pred_goal bounds (p : Ast.pred_decl) =
  match p.pred_params with
  | [] -> fmla bounds [] p.pred_body
  | params -> fmla bounds [] (Ast.Quant (Ast.Qsome, params, p.pred_body))
