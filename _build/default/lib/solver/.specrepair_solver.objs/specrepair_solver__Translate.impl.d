lib/solver/translate.ml: Array Bounds Card Format Formula List Matrix Specrepair_alloy Specrepair_sat
