lib/solver/matrix.ml: Array Card Formula Hashtbl List Map Option Specrepair_alloy Specrepair_sat
