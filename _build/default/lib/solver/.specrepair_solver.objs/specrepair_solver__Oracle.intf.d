lib/solver/oracle.mli: Analyzer Bounds Format Specrepair_alloy
