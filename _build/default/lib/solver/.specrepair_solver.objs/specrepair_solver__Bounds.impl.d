lib/solver/bounds.ml: Array Formula Hashtbl List Lit Matrix Option Solver Specrepair_alloy Specrepair_sat String
