lib/solver/oracle.ml: Analyzer Bounds Digest Format Formula Hashtbl List Lit Printf Solver Specrepair_alloy Specrepair_sat String Translate Tseitin
