lib/solver/analyzer.mli: Bounds Specrepair_alloy
