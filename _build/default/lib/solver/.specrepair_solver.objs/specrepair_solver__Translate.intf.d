lib/solver/translate.mli: Bounds Formula Matrix Specrepair_alloy Specrepair_sat
