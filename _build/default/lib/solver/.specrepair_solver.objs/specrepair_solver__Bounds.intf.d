lib/solver/bounds.mli: Hashtbl Matrix Solver Specrepair_alloy Specrepair_sat
