lib/solver/matrix.mli: Formula Map Specrepair_alloy Specrepair_sat
