lib/solver/analyzer.ml: Bounds Hashtbl List Lit Printf Solver Specrepair_alloy Specrepair_sat Translate Tseitin
