open Specrepair_sat
module Tuple = Specrepair_alloy.Instance.Tuple
module Tuple_map = Map.Make (Tuple)

type t = { arity : int; cells : Formula.t Tuple_map.t }

let empty arity = { arity; cells = Tuple_map.empty }

let add_cell cells tuple f =
  if Formula.is_false f then cells
  else
    Tuple_map.update tuple
      (function None -> Some f | Some g -> Some (Formula.or2 g f))
      cells

let constant arity tuples =
  {
    arity;
    cells =
      List.fold_left
        (fun m t -> Tuple_map.add t Formula.tru m)
        Tuple_map.empty tuples;
  }

let singleton tuple =
  { arity = Array.length tuple; cells = Tuple_map.singleton tuple Formula.tru }

let of_cells arity cells =
  {
    arity;
    cells = List.fold_left (fun m (t, f) -> add_cell m t f) Tuple_map.empty cells;
  }

let cell m tuple =
  match Tuple_map.find_opt tuple m.cells with
  | Some f -> f
  | None -> Formula.fls

let support m = Tuple_map.bindings m.cells

let merge_with op a b =
  Tuple_map.merge
    (fun _ fa fb ->
      let fa = Option.value ~default:Formula.fls fa in
      let fb = Option.value ~default:Formula.fls fb in
      let f = op fa fb in
      if Formula.is_false f then None else Some f)
    a b

let union a b =
  if a.arity <> b.arity then invalid_arg "Matrix.union: arity mismatch";
  { arity = a.arity; cells = merge_with Formula.or2 a.cells b.cells }

let inter a b =
  if a.arity <> b.arity then invalid_arg "Matrix.inter: arity mismatch";
  { arity = a.arity; cells = merge_with Formula.and2 a.cells b.cells }

let diff a b =
  if a.arity <> b.arity then invalid_arg "Matrix.diff: arity mismatch";
  {
    arity = a.arity;
    cells =
      merge_with (fun fa fb -> Formula.and2 fa (Formula.not_ fb)) a.cells b.cells;
  }

let head (t : Tuple.t) = t.(0)
let last (t : Tuple.t) = t.(Array.length t - 1)

let join_tuples (t1 : Tuple.t) (t2 : Tuple.t) =
  let n1 = Array.length t1 and n2 = Array.length t2 in
  let r = Array.make (n1 + n2 - 2) "" in
  Array.blit t1 0 r 0 (n1 - 1);
  Array.blit t2 1 r (n1 - 1) (n2 - 1);
  r

let join a b =
  let arity = a.arity + b.arity - 2 in
  if arity < 1 then invalid_arg "Matrix.join: resulting arity < 1";
  (* index b's cells by head atom to avoid the quadratic scan *)
  let by_head = Hashtbl.create 16 in
  Tuple_map.iter
    (fun t f ->
      let h = head t in
      Hashtbl.replace by_head h ((t, f) :: Option.value ~default:[] (Hashtbl.find_opt by_head h)))
    b.cells;
  let cells =
    Tuple_map.fold
      (fun t1 f1 acc ->
        match Hashtbl.find_opt by_head (last t1) with
        | None -> acc
        | Some matches ->
            List.fold_left
              (fun acc (t2, f2) ->
                add_cell acc (join_tuples t1 t2) (Formula.and2 f1 f2))
              acc matches)
      a.cells Tuple_map.empty
  in
  { arity; cells }

let product a b =
  let cells =
    Tuple_map.fold
      (fun t1 f1 acc ->
        Tuple_map.fold
          (fun t2 f2 acc ->
            add_cell acc (Array.append t1 t2) (Formula.and2 f1 f2))
          b.cells acc)
      a.cells Tuple_map.empty
  in
  { arity = a.arity + b.arity; cells }

let transpose a =
  if a.arity <> 2 then invalid_arg "Matrix.transpose: arity must be 2";
  {
    arity = 2;
    cells =
      Tuple_map.fold
        (fun t f acc -> add_cell acc [| t.(1); t.(0) |] f)
        a.cells Tuple_map.empty;
  }

let closure a =
  if a.arity <> 2 then invalid_arg "Matrix.closure: arity must be 2";
  (* Path doubling: after k rounds the matrix covers paths of length up to
     2^k.  Simple paths never exceed the number of distinct atoms, so
     iterate until that bound — support stability alone is NOT a correct
     stopping criterion, because cell formulas keep strengthening after the
     support saturates. *)
  let atoms = Hashtbl.create 16 in
  Tuple_map.iter
    (fun t _ -> Array.iter (fun a -> Hashtbl.replace atoms a ()) t)
    a.cells;
  let n_atoms = max 1 (Hashtbl.length atoms) in
  let rec go acc len =
    if len >= n_atoms then acc else go (union acc (join acc acc)) (2 * len)
  in
  go a 1

let override a b =
  if a.arity <> b.arity then invalid_arg "Matrix.override: arity mismatch";
  if a.arity < 2 then invalid_arg "Matrix.override: arity must be >= 2";
  (* group b's cells by head: a tuple of a survives if no b tuple shares its
     head atom *)
  let by_head = Hashtbl.create 16 in
  Tuple_map.iter
    (fun t f ->
      let h = head t in
      Hashtbl.replace by_head h
        (f :: Option.value ~default:[] (Hashtbl.find_opt by_head h)))
    b.cells;
  let kept =
    Tuple_map.fold
      (fun t f acc ->
        let overridden =
          match Hashtbl.find_opt by_head (head t) with
          | None -> Formula.fls
          | Some fs -> Formula.or_ fs
        in
        add_cell acc t (Formula.and2 f (Formula.not_ overridden)))
      a.cells Tuple_map.empty
  in
  { arity = a.arity; cells = merge_with Formula.or2 kept b.cells }

let dom_restrict s e =
  if s.arity <> 1 then invalid_arg "Matrix.dom_restrict: set must be unary";
  {
    arity = e.arity;
    cells =
      Tuple_map.fold
        (fun t f acc ->
          let guard = cell s [| head t |] in
          add_cell acc t (Formula.and2 f guard))
        e.cells Tuple_map.empty;
  }

let ran_restrict e s =
  if s.arity <> 1 then invalid_arg "Matrix.ran_restrict: set must be unary";
  {
    arity = e.arity;
    cells =
      Tuple_map.fold
        (fun t f acc ->
          let guard = cell s [| last t |] in
          add_cell acc t (Formula.and2 f guard))
        e.cells Tuple_map.empty;
  }

let ite c a b =
  if a.arity <> b.arity then invalid_arg "Matrix.ite: arity mismatch";
  {
    arity = a.arity;
    cells = merge_with (fun fa fb -> Formula.ite c fa fb) a.cells b.cells;
  }

let formulas m = List.map snd (Tuple_map.bindings m.cells)

let some m = Formula.or_ (formulas m)
let no m = Formula.not_ (some m)
let lone m = Card.at_most 1 (formulas m)
let one m = Card.exactly 1 (formulas m)

let subset a b =
  if a.arity <> b.arity then invalid_arg "Matrix.subset: arity mismatch";
  Formula.and_
    (Tuple_map.fold
       (fun t f acc -> Formula.imp f (cell b t) :: acc)
       a.cells [])

let equal a b = Formula.and2 (subset a b) (subset b a)

let card_compare op m k = Card.compare_const op (formulas m) k
