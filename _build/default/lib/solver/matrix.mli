(** Boolean matrices: relations whose tuple membership is a boolean formula
    over SAT variables (the Kodkod translation scheme).

    A matrix maps tuples to {!Specrepair_sat.Formula.t}; tuples absent from
    the map are definitely not in the relation.  All relational operators of
    Mini-Alloy are implemented pointwise on these matrices; comparison and
    multiplicity operators produce formulas. *)

open Specrepair_sat
module Tuple = Specrepair_alloy.Instance.Tuple

module Tuple_map : Map.S with type key = Tuple.t

type t = { arity : int; cells : Formula.t Tuple_map.t }

val empty : int -> t
val constant : int -> Tuple.t list -> t
(** Matrix with [tru] at each listed tuple. *)

val singleton : Tuple.t -> t
val of_cells : int -> (Tuple.t * Formula.t) list -> t
(** Duplicated tuples are combined with disjunction; false cells dropped. *)

val cell : t -> Tuple.t -> Formula.t
val support : t -> (Tuple.t * Formula.t) list
(** Non-false cells in tuple order. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val join : t -> t -> t
val product : t -> t -> t
val transpose : t -> t
val closure : t -> t
(** Transitive closure by path doubling; requires arity 2. *)

val override : t -> t -> t
val dom_restrict : t -> t -> t
(** [dom_restrict s e]: tuples of [e] whose head is in the set [s]. *)

val ran_restrict : t -> t -> t

val ite : Formula.t -> t -> t -> t
(** Pointwise conditional. *)

val some : t -> Formula.t
val no : t -> Formula.t
val lone : t -> Formula.t
val one : t -> Formula.t
val subset : t -> t -> Formula.t
val equal : t -> t -> Formula.t
val card_compare :
  [ `Lt | `Le | `Eq | `Ne | `Ge | `Gt ] -> t -> int -> Formula.t
