(* Benchmark harness.

   Running this executable regenerates every experimental artifact of the
   paper on a stratified benchmark sample — Table I (REP counts), Figure 2
   (TM/SM means), Figure 3 (Pearson matrix), Table II / Figure 4 (hybrid
   unions) — and then times each regeneration stage and the substrate
   operations with Bechamel (one Test.make per table/figure).

   Environment:
     BENCH_SAMPLE   variants per domain for the embedded study (default 2;
                    the full-scale run is `specrepair evaluate`). *)

open Bechamel
open Toolkit
module S = Specrepair

let sample_size =
  match Sys.getenv_opt "BENCH_SAMPLE" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
  | None -> 2

let () =
  Printf.printf
    "== specrepair bench: study on %d variant(s) per domain ==\n%!"
    sample_size

let variants = S.Benchmarks.Generate.sample ~per_domain:sample_size ()

let results = S.Eval.Study.run variants

(* {2 Artifact regeneration (the paper's tables and figures)} *)

let () =
  print_endline (S.Eval.Tables.table1 results);
  print_endline (S.Eval.Tables.fig2 results);
  print_endline (S.Eval.Tables.fig3 results);
  print_endline (S.Eval.Tables.table2 results);
  print_endline (S.Eval.Tables.summary results)

(* {2 Ablation study (design choices of the multi-round pipeline)} *)

let () =
  let tasks = List.map S.Benchmarks.Generate.to_task variants in
  let count f = List.length (List.filter f tasks) in
  let full =
    count (fun t ->
        (S.Llm.Multi_round.repair t S.Llm.Multi_round.No_feedback).repaired)
  in
  let no_hc =
    count (fun t ->
        (S.Llm.Multi_round.repair ~hill_climb:false t
           S.Llm.Multi_round.No_feedback)
          .repaired)
  in
  let no_mc =
    count (fun t ->
        (S.Llm.Multi_round.repair ~mental_check:false t
           S.Llm.Multi_round.No_feedback)
          .repaired)
  in
  let portfolio =
    count (fun t -> (fst (S.Eval.Portfolio.repair t)).repaired)
  in
  let weaker_model =
    count (fun t ->
        (S.Llm.Multi_round.repair ~profile:S.Llm.Model.gpt35 t
           S.Llm.Multi_round.No_feedback)
          .repaired)
  in
  let n = List.length tasks in
  Printf.printf
    "ABLATION (Multi-Round_None on %d sampled variants)\n\n\
    \  full pipeline:        %d/%d\n\
    \  without hill-climb:   %d/%d\n\
    \  without mental check: %d/%d\n\
    \  portfolio (ATR->MR):  %d/%d\n\
    \  gpt-3.5 profile:      %d/%d\n\n%!"
    n full n no_hc n no_mc n portfolio n weaker_model n

(* {2 Timed benchmarks} *)

(* inputs for the substrate benches *)
let graph_env =
  lazy
    (S.Alloy.Typecheck.check
       (S.Alloy.Parser.parse
          {|
sig Node { edges: set Node }
fact Acyclic { no n: Node | n in n.^edges }
assert NoLoop { all n: Node | n not in n.^edges }
check NoLoop for 3
run { some edges } for 3
|}))

let faulty_env =
  lazy
    (S.Alloy.Typecheck.check
       (S.Alloy.Parser.parse
          {|
sig Node { edges: set Node }
fact Acyclic { some n: Node | n in n.^edges }
assert NoLoop { all n: Node | n not in n.^edges }
check NoLoop for 3
run { some edges } for 3
|}))

let first_variant = List.hd variants

let bench_tests =
  Test.make_grouped ~name:"specrepair" ~fmt:"%s/%s"
    [
      (* one per paper artifact *)
      Test.make ~name:"table1-rep-counts"
        (Staged.stage (fun () -> S.Eval.Tables.table1 results));
      Test.make ~name:"fig2-similarity-means"
        (Staged.stage (fun () -> S.Eval.Tables.fig2 results));
      Test.make ~name:"fig3-pearson-matrix"
        (Staged.stage (fun () -> S.Eval.Tables.fig3 results));
      Test.make ~name:"table2-hybrid-unions"
        (Staged.stage (fun () -> S.Eval.Tables.table2 results));
      (* substrate: the operations the study spends its time in *)
      Test.make ~name:"analyzer-check"
        (Staged.stage (fun () ->
             S.Analyzer.check_assert (Lazy.force graph_env)
               S.Analyzer.default_scope "NoLoop"));
      Test.make ~name:"repair-beafix"
        (Staged.stage (fun () -> S.Repair.Beafix.repair (Lazy.force faulty_env)));
      Test.make ~name:"repair-atr"
        (Staged.stage (fun () -> S.Repair.Atr.repair (Lazy.force faulty_env)));
      Test.make ~name:"repair-multi-round"
        (Staged.stage (fun () ->
             S.Llm.Multi_round.repair
               (S.Benchmarks.Generate.to_task first_variant)
               S.Llm.Multi_round.No_feedback));
      Test.make ~name:"metric-rep"
        (Staged.stage (fun () ->
             S.Metrics.Rep.rep ~ground_truth:first_variant.ground_truth
               ~candidate:first_variant.injected.faulty ()));
      Test.make ~name:"metric-token-match"
        (Staged.stage (fun () ->
             S.Metrics.Bleu.token_match
               ~reference:
                 (S.Alloy.Pretty.spec_to_string first_variant.ground_truth)
               ~candidate:
                 (S.Alloy.Pretty.spec_to_string
                    first_variant.injected.faulty)));
      Test.make ~name:"metric-syntax-match"
        (Staged.stage (fun () ->
             S.Metrics.Tree_kernel.syntax_match first_variant.ground_truth
               first_variant.injected.faulty));
      Test.make ~name:"benchmark-inject"
        (Staged.stage (fun () ->
             S.Benchmarks.Fault.inject ~seed:99
               (List.hd S.Benchmarks.Domains.all)
               ~index:0));
      (* ablations of the multi-round design choices (see DESIGN.md) *)
      Test.make ~name:"ablation-mr-no-hill-climb"
        (Staged.stage (fun () ->
             S.Llm.Multi_round.repair ~hill_climb:false
               (S.Benchmarks.Generate.to_task first_variant)
               S.Llm.Multi_round.No_feedback));
      Test.make ~name:"ablation-mr-no-mental-check"
        (Staged.stage (fun () ->
             S.Llm.Multi_round.repair ~mental_check:false
               (S.Benchmarks.Generate.to_task first_variant)
               S.Llm.Multi_round.No_feedback));
      Test.make ~name:"portfolio-hybrid-tool"
        (Staged.stage (fun () ->
             S.Eval.Portfolio.repair
               (S.Benchmarks.Generate.to_task first_variant)));
    ]

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances bench_tests in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "== timings (monotonic clock, per run) ==";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) analyzed [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
          let value, unit_ =
            if est > 1e9 then (est /. 1e9, "s")
            else if est > 1e6 then (est /. 1e6, "ms")
            else if est > 1e3 then (est /. 1e3, "us")
            else (est, "ns")
          in
          Printf.printf "  %-36s %10.2f %s/run\n" name value unit_
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort compare rows);
  print_endline "\nbench: done"
