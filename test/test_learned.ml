(* Tests for the telemetry-learned portfolio statistics: mining, the
   digest-protected persistence format, the expected-value-per-ms ranking,
   and [Portfolio.repair_learned]'s cold-start / deadline contracts. *)

open Specrepair_alloy
module Llm = Specrepair_llm
module Eval = Specrepair_eval
module Learned = Eval.Learned
module Technique = Eval.Technique
module Portfolio = Eval.Portfolio
module Session = Specrepair_repair.Session
module Location = Specrepair_mutation.Location

(* {2 Fixtures} *)

(* A telemetry fixture shaped exactly like the study's JSONL rows
   ({!Session.telemetry_json} with the study extras): flat string fields
   plus a numeric [elapsed_ms].  Scores under Laplace smoothing:

     quant / ATR                     (4/4, 10ms mean)  (5/6)/10  = 0.0833
     quant / BeAFix               (4/0,  5ms mean)  (1/6)/5   = 0.0333
     quant / Multi-Round_Auto  (4/4, 100ms mean) (5/6)/100 = 0.0083

   so the pinned ranking is ATR, BeAFix, Multi-Round_Auto. *)
let fixture_lines =
  let row variant tech repaired ms =
    Printf.sprintf
      "{\"variant_id\":\"%s\",\"technique\":\"%s\",\"repaired\":\"%b\",\"defect_class\":\"quant\",\"elapsed_ms\":%.3f,\"timed_out\":\"false\"}"
      variant tech repaired ms
  in
  List.concat_map
    (fun v ->
      [
        row v "ATR" true 10.0;
        row v "BeAFix" false 5.0;
        row v "Multi-Round_Auto" true 100.0;
      ])
    [ "graphs_0"; "graphs_1"; "fsm_0"; "fsm_1" ]
  @ [ "{\"event\":\"scheduler_summary\",\"chunks\":3}" (* must be ignored *) ]

let fixture_stats =
  lazy
    (let t = Learned.empty () in
     List.iter (Learned.add_telemetry_line t) fixture_lines;
     t)

let faulty_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let task =
  lazy
    (Llm.Task.make ~spec_id:"learned_test" ~domain:"graphs"
       ~faulty:(Parser.parse faulty_src)
       ~fault_sites:[ Location.Fact_site 0 ]
       ~fault_paths:[ (Location.Fact_site 0, []) ]
       ~fault_classes:[ "quant-swap" ]
       ~fix_description:"the quantifier in fact#0 is wrong"
       ~check_names:[ "NoLoop" ] ())

let result_testable =
  Alcotest.testable
    (fun fmt (r : Specrepair_repair.Common.result) ->
      Format.fprintf fmt "{tool=%s; repaired=%b; candidates=%d; iters=%d}"
        r.tool r.repaired r.candidates_tried r.iterations)
    ( = )

(* {2 Mining and ranking} *)

let test_mining_counts () =
  let t = Lazy.force fixture_stats in
  match Learned.cell t ~defect_class:"quant" ~technique:"ATR" with
  | None -> Alcotest.fail "ATR cell missing"
  | Some c ->
      Alcotest.(check int) "attempts" 4 c.Learned.attempts;
      Alcotest.(check int) "successes" 4 c.Learned.successes;
      Alcotest.(check (float 0.001)) "total_ms" 40.0 c.Learned.total_ms

let test_non_study_lines_ignored () =
  let t = Learned.empty () in
  Learned.add_telemetry_line t "{\"event\":\"serve_request\",\"method\":\"repair\"}";
  Learned.add_telemetry_line t "not json at all";
  Alcotest.(check bool) "still empty" true (Learned.is_empty t)

let test_rank_pinned () =
  let t = Lazy.force fixture_stats in
  let ranked =
    Learned.rank t ~defect_class:"quant"
      [
        Technique.BeAFix;
        Technique.Multi (Llm.Multi_round.Auto, Llm.Model.gpt4);
        Technique.ATR;
        Technique.ARepair (* never observed: must be filtered out *);
      ]
  in
  Alcotest.(check (list string)) "expected-value-per-ms order"
    [ "ATR"; "BeAFix"; "Multi-Round_Auto" ]
    (List.map (fun (t, _) -> Technique.name t) ranked);
  Alcotest.(check (list string)) "unseen class is the cold-start signal" []
    (List.map fst
       (List.map
          (fun (t, s) -> (Technique.name t, s))
          (Learned.rank t ~defect_class:"negation" [ Technique.ATR ])))

(* {2 Persistence} *)

let with_temp f =
  let path = Filename.temp_file "specrepair_stats" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ()) (fun () -> f path)

let test_save_load_roundtrip () =
  let t = Lazy.force fixture_stats in
  with_temp (fun path ->
      Learned.save t path;
      let t' = Learned.load path in
      Alcotest.(check bool) "cells survive the round-trip" true
        (Learned.cells t = Learned.cells t'))

let raises_corrupt f =
  match f () with
  | (_ : Learned.t) -> false
  | exception Learned.Corrupt_stats _ -> true

let test_load_rejects_tampering () =
  let t = Lazy.force fixture_stats in
  with_temp (fun path ->
      Learned.save t path;
      let ic = open_in path in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let rewrite s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      rewrite (body ^ "quant|ICEBAR|3|3|1.0\n");
      Alcotest.(check bool) "appended row rejected" true
        (raises_corrupt (fun () -> Learned.load path));
      rewrite (String.map (function '4' -> '7' | c -> c) body);
      Alcotest.(check bool) "flipped digits rejected" true
        (raises_corrupt (fun () -> Learned.load path));
      rewrite (String.sub body 0 (String.length body - 4));
      Alcotest.(check bool) "truncation rejected" true
        (raises_corrupt (fun () -> Learned.load path));
      rewrite "not a stats file\n";
      Alcotest.(check bool) "bad header rejected" true
        (raises_corrupt (fun () -> Learned.load path)));
  Alcotest.(check bool) "missing file rejected" true
    (raises_corrupt (fun () -> Learned.load "/nonexistent/stats.txt"))

(* {2 Portfolio integration} *)

(* No statistics at all, and statistics that have never seen the task's
   class, must both fall back bit-identically to the static pipeline. *)
let test_cold_start_bit_identity () =
  let task = Lazy.force task in
  let static, static_stage = Portfolio.repair task in
  let check_fallback label outcome =
    Alcotest.check result_testable (label ^ ": result identical") static
      outcome.Portfolio.result;
    Alcotest.(check string) (label ^ ": stage identical")
      (Portfolio.stage_to_string static_stage)
      (Portfolio.stage_to_string outcome.Portfolio.stage);
    Alcotest.(check bool) (label ^ ": flagged cold") false
      outcome.Portfolio.chosen_plan.Portfolio.learned;
    Alcotest.(check (list string)) (label ^ ": no racers ran") []
      outcome.Portfolio.attempted
  in
  check_fallback "no stats" (Portfolio.repair_learned task);
  check_fallback "empty stats"
    (Portfolio.repair_learned ~stats:(Learned.empty ()) task);
  let foreign = Learned.empty () in
  Learned.observe foreign ~defect_class:"negation" ~technique:"ATR"
    ~repaired:true ~time_ms:5.0;
  check_fallback "unseen class" (Portfolio.repair_learned ~stats:foreign task)

let test_learned_plan_and_order () =
  let task = Lazy.force task in
  let stats = Lazy.force fixture_stats in
  let plan = Portfolio.plan ~stats task in
  Alcotest.(check string) "class from the task's fault metadata" "quant"
    plan.Portfolio.defect_class;
  Alcotest.(check bool) "warm statistics yield a learned plan" true
    plan.Portfolio.learned;
  Alcotest.(check (list string)) "plan ordering is the pinned ranking"
    [ "ATR"; "BeAFix"; "Multi-Round_Auto" ]
    (List.map (fun (t, _) -> Technique.name t) plan.Portfolio.ordering);
  let o = Portfolio.repair_learned ~stats task in
  Alcotest.(check bool) "learned run repairs the seeded fault" true
    o.Portfolio.result.repaired;
  Alcotest.(check bool) "attempted is a prefix of the plan" true
    (List.length o.Portfolio.attempted <= 3);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " came from the plan") true
        (List.exists
           (fun (t, _) -> Technique.name t = name)
           plan.Portfolio.ordering))
    o.Portfolio.attempted

(* An expired session must abort the race before any technique runs: the
   learned ordering never exceeds the session's deadline budget. *)
let test_learned_respects_deadline () =
  let task = Lazy.force task in
  let stats = Lazy.force fixture_stats in
  let session = Session.for_spec ~deadline_ms:0. task.Llm.Task.faulty in
  ignore (Session.expired session);
  let o = Portfolio.repair_learned ~session ~stats task in
  Alcotest.(check bool) "plan was learned" true
    o.Portfolio.chosen_plan.Portfolio.learned;
  Alcotest.(check (list string)) "no racer started past the deadline" []
    o.Portfolio.attempted;
  Alcotest.(check bool) "not repaired" false o.Portfolio.result.repaired;
  Alcotest.(check bool) "timed_out reported" true
    o.Portfolio.result.timed_out

let () =
  Alcotest.run "learned"
    [
      ( "mining",
        [
          Alcotest.test_case "telemetry counts" `Quick test_mining_counts;
          Alcotest.test_case "non-study lines ignored" `Quick
            test_non_study_lines_ignored;
          Alcotest.test_case "pinned ranking" `Quick test_rank_pinned;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "tampering rejected" `Quick
            test_load_rejects_tampering;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "cold start bit-identity" `Quick
            test_cold_start_bit_identity;
          Alcotest.test_case "learned plan and order" `Quick
            test_learned_plan_and_order;
          Alcotest.test_case "deadline respected" `Quick
            test_learned_respects_deadline;
        ] );
    ]
