(* Tests for AST locations, the typed expression pool, and mutation
   operators. *)

open Specrepair_alloy
module Mutation = Specrepair_mutation
module Location = Mutation.Location
module Pool = Mutation.Pool
module Mutate = Mutation.Mutate

let spec_src =
  {|
sig Node {
  edges: set Node,
  tag: set Mark
}
sig Mark {}
fact Connected {
  all n: Node | some n.edges && n not in n.edges
}
pred reachable[a: Node, b: Node] {
  b in a.^edges
}
assert NoSelf {
  no n: Node | n in n.edges
}
check NoSelf for 3
|}

let env = lazy (Typecheck.check (Parser.parse spec_src))
let spec () = (Lazy.force env).spec

(* {2 Locations} *)

let test_sites () =
  let sites = Location.sites (spec ()) in
  Alcotest.(check int) "three sites" 3 (List.length sites);
  Alcotest.(check bool) "fact site first" true
    (List.hd sites = Location.Fact_site 0)

let test_body_roundtrip () =
  let s = spec () in
  List.iter
    (fun site ->
      let body = Location.body s site in
      let s' = Location.with_body s site body in
      Alcotest.(check bool) "with_body of same body is identity" true (s = s'))
    (Location.sites s)

let test_get_replace_identity () =
  let s = spec () in
  List.iter
    (fun site ->
      let body = Location.body s site in
      List.iter
        (fun (path, node) ->
          let body' = Location.replace body path node in
          Alcotest.(check bool)
            (Printf.sprintf "replace with self at %s is identity"
               (Location.path_to_string path))
            true (body = body'))
        (Location.subnodes body))
    (Location.sites s)

let test_subnodes_count () =
  let body = Location.body (spec ()) (Location.Fact_site 0) in
  (* all n: Node | some n.edges && n not in n.edges *)
  let nodes = Location.subnodes body in
  Alcotest.(check bool) "at least 8 nodes" true (List.length nodes >= 8);
  Alcotest.(check bool) "root is a formula" true
    (match List.assoc [] nodes with Location.F _ -> true | _ -> false)

let test_vars_at () =
  let s = spec () in
  (* inside the quantifier body, n is in scope *)
  let body = Location.body s (Location.Fact_site 0) in
  let in_body_path =
    (* Quant has children [decl bound; body]; path [1] = body *)
    [ 1 ]
  in
  (match Location.get body in_body_path with
  | Location.F _ -> ()
  | _ -> Alcotest.fail "expected a formula at the quantifier body");
  let vars =
    Location.vars_at (Lazy.force env) s (Location.Fact_site 0) in_body_path
  in
  Alcotest.(check bool) "n in scope" true (List.mem_assoc "n" vars);
  (* in the bound expression (path [0]) it is not *)
  let vars0 = Location.vars_at (Lazy.force env) s (Location.Fact_site 0) [ 0 ] in
  Alcotest.(check bool) "n not in scope in its own bound" false
    (List.mem_assoc "n" vars0);
  (* predicate parameters are in scope in the predicate body *)
  let vars_pred =
    Location.vars_at (Lazy.force env) s (Location.Pred_site "reachable") []
  in
  Alcotest.(check bool) "params in scope" true
    (List.mem_assoc "a" vars_pred && List.mem_assoc "b" vars_pred)

(* {2 Pool} *)

let test_pool_arity () =
  let e = Lazy.force env in
  List.iter
    (fun arity ->
      let exprs = Pool.exprs e ~vars:[] ~arity ~depth:2 () in
      Alcotest.(check bool)
        (Printf.sprintf "pool of arity %d non-empty" arity)
        true (exprs <> []);
      List.iter
        (fun expr ->
          Alcotest.(check int)
            (Printf.sprintf "arity of %s" (Pretty.expr_to_string expr))
            arity
            (Typecheck.expr_arity e [] expr))
        exprs)
    [ 1; 2 ]

let test_pool_dedup () =
  let e = Lazy.force env in
  let exprs = Pool.exprs e ~vars:[] ~arity:1 ~depth:2 () in
  Alcotest.(check int) "no duplicates"
    (List.length exprs)
    (List.length (List.sort_uniq compare exprs))

let test_pool_vars () =
  let e = Lazy.force env in
  let exprs = Pool.exprs e ~vars:[ ("x", 1) ] ~arity:1 ~depth:2 ~limit:500 () in
  Alcotest.(check bool) "variable appears in pool" true
    (List.mem (Ast.Rel "x") exprs)

let test_atomic_fmlas () =
  let e = Lazy.force env in
  let atoms = Pool.atomic_fmlas e ~vars:[] () in
  Alcotest.(check bool) "non-empty" true (atoms <> []);
  List.iter
    (fun f ->
      match f with
      | Ast.Cmp _ | Ast.Multf _ -> ()
      | _ -> Alcotest.fail "atomic pool should contain only cmp/mult formulas")
    atoms

(* {2 Mutations} *)

let test_mutations_well_typed () =
  let e = Lazy.force env in
  let all = Mutate.all_mutations e (spec ()) ~with_pool:true () in
  Alcotest.(check bool) "large mutation space" true (List.length all > 100);
  let bad =
    List.filter
      (fun m ->
        match Mutate.apply (spec ()) m with
        | s -> not (Mutate.well_typed e s)
        | exception _ -> true)
      all
  in
  (* pool replacements are arity-correct by construction, so every mutant
     must type-check *)
  Alcotest.(check int) "all mutants type-check" 0 (List.length bad)

let test_mutations_change_spec () =
  let e = Lazy.force env in
  let all = Mutate.all_mutations e (spec ()) ~with_pool:false () in
  List.iter
    (fun m ->
      match Mutate.apply (spec ()) m with
      | s ->
          Alcotest.(check bool)
            (Format.asprintf "%a is not a no-op" Mutate.pp m)
            false
            (Ast.equal_spec s (spec ()))
      | exception _ -> Alcotest.fail "mutation application failed")
    all

let test_quant_swap_present () =
  let e = Lazy.force env in
  let all = Mutate.all_mutations e (spec ()) ~with_pool:false () in
  let ops = List.sort_uniq compare (List.map (fun (m : Mutate.t) -> m.op) all) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " generated") true
        (List.mem expected ops))
    [ "quant-swap"; "cmpop-swap"; "fmult-swap"; "junct-drop"; "negation-add" ]

(* {2 Determinism}

   The fuzzer replays failures from a seed alone, which only works if the
   candidate streams under the seed are bit-reproducible: the unseeded
   pool/mutation enumeration must be stable across calls, and the seeded
   sampling on top of it must depend on nothing but the seed. *)

let test_pool_deterministic () =
  let e = Lazy.force env in
  let stream () =
    Pool.exprs e ~vars:[ ("n", 1) ] ~arity:1 ~depth:2 ()
    |> List.map Pretty.expr_to_string
  in
  Alcotest.(check (list string)) "pool stream stable" (stream ()) (stream ());
  let muts () =
    Mutate.all_mutations e (spec ()) ()
    |> List.map (Format.asprintf "%a" Mutate.pp)
  in
  Alcotest.(check (list string)) "mutation stream stable" (muts ()) (muts ())

let test_seeded_stream_deterministic () =
  let e = Lazy.force env in
  let candidates seed =
    let rng = Specrepair_fuzz.Rng.of_context ~seed [ "mutants" ] in
    Specrepair_fuzz.Rng.sample rng 8 (Mutate.all_mutations e (spec ()) ())
    |> List.map (fun m -> Pretty.spec_to_string (Mutate.apply (spec ()) m))
  in
  Alcotest.(check (list string))
    "same seed, byte-identical candidates" (candidates 3) (candidates 3);
  Alcotest.(check bool) "different seeds sample differently" true
    (List.exists (fun s -> candidates s <> candidates 3) [ 4; 5; 6; 7 ])

let () =
  Alcotest.run "mutation"
    [
      ( "location",
        [
          Alcotest.test_case "sites" `Quick test_sites;
          Alcotest.test_case "with_body identity" `Quick test_body_roundtrip;
          Alcotest.test_case "replace-with-self identity" `Quick
            test_get_replace_identity;
          Alcotest.test_case "subnodes" `Quick test_subnodes_count;
          Alcotest.test_case "vars_at" `Quick test_vars_at;
        ] );
      ( "pool",
        [
          Alcotest.test_case "arity" `Quick test_pool_arity;
          Alcotest.test_case "dedup" `Quick test_pool_dedup;
          Alcotest.test_case "variables" `Quick test_pool_vars;
          Alcotest.test_case "atomic formulas" `Quick test_atomic_fmlas;
          Alcotest.test_case "deterministic streams" `Quick
            test_pool_deterministic;
          Alcotest.test_case "seeded sampling deterministic" `Quick
            test_seeded_stream_deterministic;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "well-typed" `Quick test_mutations_well_typed;
          Alcotest.test_case "no no-ops" `Quick test_mutations_change_spec;
          Alcotest.test_case "operator coverage" `Quick test_quant_swap_present;
        ] );
    ]
