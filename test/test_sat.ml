(* Tests for the SAT substrate: solver vs. brute force on random CNFs,
   classic hard instances, Tseitin faithfulness, cardinality encodings. *)

open Specrepair_sat

let lit v sign = if sign then Lit.pos v else Lit.neg v

(* Brute-force satisfiability of [clauses] over [n] variables. *)
let brute_force n clauses =
  let rec try_assignment mask =
    if mask >= 1 lsl n then false
    else
      let value l =
        let v = Lit.var l in
        let b = mask land (1 lsl v) <> 0 in
        if Lit.sign l then b else not b
      in
      if List.for_all (fun c -> List.exists value c) clauses then true
      else try_assignment (mask + 1)
  in
  try_assignment 0

let solve_clauses n clauses =
  let s = Solver.create () in
  ignore (Solver.new_vars s n);
  List.iter (Solver.add_clause s) clauses;
  Solver.solve s

let check_sat msg expected actual =
  let to_str = function
    | Solver.Sat -> "sat"
    | Solver.Unsat -> "unsat"
    | Solver.Unknown -> "unknown"
  in
  Alcotest.(check string) msg (to_str expected) (to_str actual)

(* {2 Unit tests} *)

let test_empty () = check_sat "empty problem" Sat (solve_clauses 0 [])

let test_unit_conflict () =
  check_sat "x & !x" Unsat (solve_clauses 1 [ [ lit 0 true ]; [ lit 0 false ] ])

let test_simple_sat () =
  let r =
    solve_clauses 3
      [
        [ lit 0 true; lit 1 true ];
        [ lit 0 false; lit 2 true ];
        [ lit 1 false; lit 2 false ];
      ]
  in
  check_sat "3-var sat" Sat r

let test_model_valid () =
  let s = Solver.create () in
  ignore (Solver.new_vars s 4);
  let clauses =
    [
      [ lit 0 true; lit 1 true ];
      [ lit 1 false; lit 2 true ];
      [ lit 2 false; lit 3 false ];
      [ lit 0 false; lit 3 true ];
    ]
  in
  List.iter (Solver.add_clause s) clauses;
  (match Solver.solve s with
  | Sat -> ()
  | _ -> Alcotest.fail "expected sat");
  let value l = if Lit.sign l then Solver.value s (Lit.var l) else not (Solver.value s (Lit.var l)) in
  List.iter
    (fun c ->
      Alcotest.(check bool) "clause satisfied by model" true (List.exists value c))
    clauses

(* Pigeonhole principle: n+1 pigeons in n holes is unsatisfiable; shared
   generator adapted to this file's (nvars, clauses) shape. *)
let pigeonhole n =
  let cnf = Hard_cnf.pigeonhole n in
  (cnf.Dimacs.num_vars, cnf.Dimacs.clauses)

let test_pigeonhole () =
  let nvars, clauses = pigeonhole 5 in
  check_sat "php(6,5)" Unsat (solve_clauses nvars clauses)

let test_assumptions () =
  let s = Solver.create () in
  ignore (Solver.new_vars s 2);
  Solver.add_clause s [ lit 0 false; lit 1 true ];
  check_sat "assume x0 -> sat" Sat (Solver.solve ~assumptions:[ lit 0 true ] s);
  Alcotest.(check bool) "x1 forced" true (Solver.value s 1);
  Solver.add_clause s [ lit 1 false ];
  check_sat "assume x0 now unsat" Unsat (Solver.solve ~assumptions:[ lit 0 true ] s);
  check_sat "without assumption still sat" Sat (Solver.solve s);
  Alcotest.(check bool) "x0 must be false" false (Solver.value s 0)

let test_incremental_blocking () =
  (* enumerate all 4 models of an unconstrained 2-var problem *)
  let s = Solver.create () in
  ignore (Solver.new_vars s 2);
  Solver.add_clause s [ lit 0 true; lit 0 false ];
  let count = ref 0 in
  let rec loop () =
    match Solver.solve s with
    | Sat ->
        incr count;
        let blocking =
          List.init 2 (fun v -> lit v (not (Solver.value s v)))
        in
        Solver.add_clause s blocking;
        if !count < 10 then loop ()
    | Unsat -> ()
    | Unknown -> Alcotest.fail "unexpected unknown"
  in
  loop ();
  Alcotest.(check int) "model count" 4 !count

let test_budget () =
  let nvars, clauses = pigeonhole 8 in
  let s = Solver.create () in
  ignore (Solver.new_vars s nvars);
  List.iter (Solver.add_clause s) clauses;
  match Solver.solve ~max_conflicts:10 s with
  | Unknown | Unsat -> ()
  | Sat -> Alcotest.fail "php(9,8) cannot be sat"

(* {2 Incremental solving under assumptions}

   The oracle's pattern: a hard subproblem guarded by an activation
   literal, toggled on and off by assumptions against one long-lived
   solver. *)

let guarded_pigeonhole s n =
  let nvars, clauses = pigeonhole n in
  ignore (Solver.new_vars s nvars);
  let act = Lit.pos (Solver.new_var s) in
  List.iter (fun c -> Solver.add_clause s (Lit.negate act :: c)) clauses;
  act

let test_assumption_flips () =
  let s = Solver.create () in
  let act = guarded_pigeonhole s 3 in
  for i = 1 to 3 do
    check_sat
      (Printf.sprintf "round %d: php enabled" i)
      Unsat
      (Solver.solve ~assumptions:[ act ] s);
    Alcotest.(check bool) "ok survives assumption-unsat" true (Solver.ok s);
    check_sat
      (Printf.sprintf "round %d: php disabled" i)
      Sat
      (Solver.solve ~assumptions:[ Lit.negate act ] s);
    check_sat (Printf.sprintf "round %d: unconstrained" i) Sat (Solver.solve s)
  done

let test_unsat_assumptions_core () =
  let s = Solver.create () in
  ignore (Solver.new_vars s 3);
  Solver.add_clause s [ lit 0 false; lit 1 false ];
  check_sat "conflicting pair" Unsat
    (Solver.solve ~assumptions:[ lit 0 true; lit 1 true; lit 2 true ] s);
  let core = Solver.unsat_assumptions s in
  Alcotest.(check bool) "core nonempty" true (core <> []);
  Alcotest.(check bool)
    "irrelevant assumption not in core" true
    (List.for_all (fun l -> Lit.var l <> 2) core);
  (* an assumption already false at level 0 is itself the core *)
  let s2 = Solver.create () in
  ignore (Solver.new_vars s2 1);
  Solver.add_clause s2 [ lit 0 false ];
  check_sat "assumption contradicts unit" Unsat
    (Solver.solve ~assumptions:[ lit 0 true ] s2);
  (match Solver.unsat_assumptions s2 with
  | [ l ] -> Alcotest.(check int) "core is the assumption" 0 (Lit.var l)
  | core ->
      Alcotest.fail
        (Printf.sprintf "expected a singleton core, got %d literals"
           (List.length core)));
  Alcotest.(check bool) "solver still usable" true (Solver.ok s2);
  check_sat "sat without the assumption" Sat (Solver.solve s2)

let test_learned_clauses_persist () =
  let s = Solver.create () in
  let act = guarded_pigeonhole s 4 in
  let c0 = Solver.n_conflicts s in
  check_sat "first run" Unsat (Solver.solve ~assumptions:[ act ] s);
  let first = Solver.n_conflicts s - c0 in
  Alcotest.(check bool) "first run had to search" true (first > 0);
  Alcotest.(check bool) "learnt clauses retained" true (Solver.n_learnts s > 0);
  let c1 = Solver.n_conflicts s in
  check_sat "second run" Unsat (Solver.solve ~assumptions:[ act ] s);
  let second = Solver.n_conflicts s - c1 in
  Alcotest.(check bool)
    (Printf.sprintf "second run cheaper (%d vs %d conflicts)" second first)
    true (second < first)

let test_per_call_budget () =
  (* regression: the budget bounds each call's conflicts, not the lifetime
     total — after an expensive call, a small budget must still suffice for
     an easy query on the same solver *)
  let s = Solver.create () in
  let act = guarded_pigeonhole s 4 in
  check_sat "expensive call" Unsat (Solver.solve ~assumptions:[ act ] s);
  Alcotest.(check bool) "conflicts accumulated" true (Solver.n_conflicts s > 5);
  check_sat "easy query within a small budget" Sat
    (Solver.solve ~max_conflicts:5 ~assumptions:[ Lit.negate act ] s)

(* {2 Formula / Tseitin} *)

let test_formula_simplify () =
  let open Formula in
  Alcotest.(check bool) "and [] = true" true (is_true (and_ []));
  Alcotest.(check bool) "or [] = false" true (is_false (or_ []));
  Alcotest.(check bool) "and [false] = false" true (is_false (and_ [ fls ]));
  Alcotest.(check bool) "not not x = x" true (not_ (not_ (var 3)) = var 3);
  Alcotest.(check bool) "imp false x = true" true (is_true (imp fls (var 0)));
  Alcotest.(check bool) "ite true a b = a" true (ite tru (var 1) (var 2) = var 1)

let random_formula rand n_vars depth =
  let rec go depth =
    if depth = 0 || QCheck2.Gen.generate1 ~rand QCheck2.Gen.(int_bound 4) = 0 then
      Formula.var (QCheck2.Gen.generate1 ~rand QCheck2.Gen.(int_bound (n_vars - 1)))
    else
      match QCheck2.Gen.generate1 ~rand QCheck2.Gen.(int_bound 4) with
      | 0 -> Formula.not_ (go (depth - 1))
      | 1 -> Formula.and_ [ go (depth - 1); go (depth - 1) ]
      | 2 -> Formula.or_ [ go (depth - 1); go (depth - 1) ]
      | 3 -> Formula.iff (go (depth - 1)) (go (depth - 1))
      | _ -> Formula.ite (go (depth - 1)) (go (depth - 1)) (go (depth - 1))
  in
  go depth

(* Tseitin clauses are equisatisfiable with the asserted formula: for every
   total assignment of the primary variables that satisfies the formula, the
   solver must find a model agreeing on primaries; conversely when the solver
   says unsat, no assignment satisfies the formula. *)
let test_tseitin_equisat () =
  let rand = Random.State.make [| 17 |] in
  for _ = 1 to 120 do
    let n = 4 in
    let f = random_formula rand n 4 in
    let s = Solver.create () in
    ignore (Solver.new_vars s n);
    let ts = Tseitin.create s in
    Tseitin.assert_formula ts f;
    let brute =
      let rec try_mask m =
        if m >= 1 lsl n then false
        else if Formula.eval (fun v -> m land (1 lsl v) <> 0) f then true
        else try_mask (m + 1)
      in
      try_mask 0
    in
    match (Solver.solve s, brute) with
    | Sat, true ->
        (* the model restricted to primaries must satisfy f *)
        Alcotest.(check bool)
          "model satisfies formula" true
          (Formula.eval (fun v -> Solver.value s v) f)
    | Unsat, false -> ()
    | Sat, false -> Alcotest.fail "solver sat but formula unsatisfiable"
    | Unsat, true -> Alcotest.fail "solver unsat but formula satisfiable"
    | Unknown, _ -> Alcotest.fail "unexpected unknown"
  done

(* {2 Cardinality} *)

let test_card_semantics () =
  let n = 5 in
  let fs = List.init n Formula.var in
  for k = 0 to n + 1 do
    let al = Card.at_least k fs in
    let am = Card.at_most k fs in
    let ex = Card.exactly k fs in
    for m = 0 to (1 lsl n) - 1 do
      let env v = m land (1 lsl v) <> 0 in
      let pop =
        List.length (List.filter (fun v -> env v) (List.init n Fun.id))
      in
      Alcotest.(check bool)
        (Printf.sprintf "at_least %d, pop %d" k pop)
        (pop >= k) (Formula.eval env al);
      Alcotest.(check bool)
        (Printf.sprintf "at_most %d, pop %d" k pop)
        (pop <= k) (Formula.eval env am);
      Alcotest.(check bool)
        (Printf.sprintf "exactly %d, pop %d" k pop)
        (pop = k) (Formula.eval env ex)
    done
  done

let test_compare_const () =
  let fs = List.init 4 Formula.var in
  let env_of m v = m land (1 lsl v) <> 0 in
  let pop m = List.length (List.filter (env_of m) (List.init 4 Fun.id)) in
  List.iter
    (fun (op, f_op) ->
      for k = 0 to 5 do
        let f = Card.compare_const op fs k in
        for m = 0 to 15 do
          Alcotest.(check bool)
            "compare_const agrees with arithmetic" (f_op (pop m) k)
            (Formula.eval (env_of m) f)
        done
      done)
    [ (`Lt, ( < )); (`Le, ( <= )); (`Eq, ( = )); (`Ne, ( <> )); (`Ge, ( >= )); (`Gt, ( > )) ]

(* {2 Random CNF property} *)

let gen_cnf =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* n_clauses = int_range 1 30 in
    let gen_lit = map2 (fun v s -> (v mod n, s)) (int_bound (n - 1)) bool in
    let gen_clause = list_size (int_range 1 4) gen_lit in
    let* clauses = list_repeat n_clauses gen_clause in
    return (n, clauses))

let prop_matches_brute_force =
  QCheck2.Test.make ~count:300 ~name:"solver agrees with brute force" gen_cnf
    (fun (n, raw) ->
      let clauses = List.map (List.map (fun (v, s) -> lit v s)) raw in
      let expected = brute_force n clauses in
      match solve_clauses n clauses with
      | Sat -> expected
      | Unsat -> not expected
      | Unknown -> false)

let prop_dimacs_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"dimacs print/parse roundtrip" gen_cnf
    (fun (n, raw) ->
      let clauses = List.map (List.map (fun (v, s) -> lit v s)) raw in
      let cnf = { Dimacs.num_vars = n; clauses } in
      let text = Format.asprintf "%a" Dimacs.print cnf in
      let cnf' = Dimacs.parse text in
      cnf'.Dimacs.clauses = cnf.Dimacs.clauses)

(* Malformed input must raise the named [Dimacs.Parse_error], never
   silently misread. *)
let test_dimacs_rejects () =
  let rejects label text =
    match Dimacs.parse text with
    | _ -> Alcotest.failf "%s: accepted %S" label text
    | exception Dimacs.Parse_error _ -> ()
  in
  rejects "missing p-line" "1 -2 0\n";
  rejects "bad header arity" "p cnf 2\n1 0\n";
  rejects "non-numeric header" "p cnf two 1\n1 0\n";
  rejects "negative var count" "p cnf -2 1\n1 0\n";
  rejects "duplicate header" "p cnf 2 1\np cnf 2 1\n1 0\n";
  rejects "bad token" "p cnf 2 1\n1 x 0\n";
  rejects "literal beyond header" "p cnf 2 1\n3 0\n";
  rejects "unterminated clause" "p cnf 2 1\n1 -2\n";
  rejects "clause before header" "1 0\np cnf 2 1\n";
  (* and the happy path still parses *)
  let cnf = Dimacs.parse "c comment\np cnf 3 2\n1 -2 0\n3 0\n" in
  Alcotest.(check int) "num_vars" 3 cnf.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.Dimacs.clauses)

(* {2 Containers} *)

let test_vec_basics () =
  let v = Vec.create ~dummy:(-1) in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-42);
  Alcotest.(check int) "set" (-42) (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "last after pop" 98 (Vec.last v);
  Vec.shrink v 10;
  Alcotest.(check int) "shrink" 10 (Vec.length v);
  Alcotest.(check (list int)) "to_list" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Vec.to_list v);
  Vec.swap_remove v 0;
  Alcotest.(check int) "swap_remove moves last" 9 (Vec.get v 0);
  Alcotest.(check int) "swap_remove shrinks" 9 (Vec.length v);
  Vec.clear v;
  Alcotest.(check bool) "clear" true (Vec.is_empty v)

let test_vec_fold_exists () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  let w = Vec.copy v in
  Vec.set w 0 99;
  Alcotest.(check int) "copy is independent" 1 (Vec.get v 0)

let test_order_heap () =
  let activities = [| 5.; 1.; 9.; 3.; 7. |] in
  let h = Order_heap.create ~activity:(fun v -> activities.(v)) in
  List.iter (Order_heap.insert h) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "size" 5 (Order_heap.size h);
  Alcotest.(check bool) "in_heap" true (Order_heap.in_heap h 3);
  let order = List.init 5 (fun _ -> Order_heap.remove_max h) in
  Alcotest.(check (list int)) "max-activity order" [ 2; 4; 0; 3; 1 ] order;
  Alcotest.(check bool) "empty after drain" true (Order_heap.is_empty h);
  (* increase restores order *)
  Order_heap.rebuild h [ 0; 1; 2 ];
  activities.(1) <- 100.;
  Order_heap.increase h 1;
  Alcotest.(check int) "bumped var first" 1 (Order_heap.remove_max h)

let prop_heap_sorted =
  QCheck2.Test.make ~count:200 ~name:"order heap drains in activity order"
    QCheck2.Gen.(list_size (int_range 1 30) (float_bound_exclusive 100.))
    (fun acts ->
      let arr = Array.of_list acts in
      let h = Order_heap.create ~activity:(fun v -> arr.(v)) in
      Array.iteri (fun i _ -> Order_heap.insert h i) arr;
      let drained = List.init (Array.length arr) (fun _ -> Order_heap.remove_max h) in
      let values = List.map (fun i -> arr.(i)) drained in
      values = List.sort (fun a b -> compare b a) values)

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "unit conflict" `Quick test_unit_conflict;
          Alcotest.test_case "simple sat" `Quick test_simple_sat;
          Alcotest.test_case "model validity" `Quick test_model_valid;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental blocking" `Quick test_incremental_blocking;
          Alcotest.test_case "conflict budget" `Quick test_budget;
          Alcotest.test_case "assumption flips" `Quick test_assumption_flips;
          Alcotest.test_case "unsat assumption core" `Quick
            test_unsat_assumptions_core;
          Alcotest.test_case "learned clauses persist" `Quick
            test_learned_clauses_persist;
          Alcotest.test_case "per-call conflict budget" `Quick
            test_per_call_budget;
        ] );
      ( "formula",
        [
          Alcotest.test_case "smart constructors" `Quick test_formula_simplify;
          Alcotest.test_case "tseitin equisatisfiable" `Quick test_tseitin_equisat;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "counter semantics" `Quick test_card_semantics;
          Alcotest.test_case "compare_const" `Quick test_compare_const;
        ] );
      ( "containers",
        [
          Alcotest.test_case "vec basics" `Quick test_vec_basics;
          Alcotest.test_case "vec fold/exists/copy" `Quick test_vec_fold_exists;
          Alcotest.test_case "order heap" `Quick test_order_heap;
          QCheck_alcotest.to_alcotest prop_heap_sorted;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_dimacs_roundtrip;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "rejects malformed input" `Quick
            test_dimacs_rejects;
        ] );
    ]
