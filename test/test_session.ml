(* Tests for the session layer: cooperative deadlines across every
   technique family, telemetry counters, budget/seed plumbing, and the
   Technique name round-trip. *)

open Specrepair_alloy
module Repair = Specrepair_repair
module Session = Repair.Session
module Telemetry = Specrepair_engine.Telemetry
module Aunit = Specrepair_aunit.Aunit
module Solver = Specrepair_solver
module Llm = Specrepair_llm
module Eval = Specrepair_eval
module B = Specrepair_benchmarks

let faulty_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let ground_truth_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  no n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let env_of src = Typecheck.check (Parser.parse src)
let faulty_env = lazy (env_of faulty_src)

let task =
  lazy
    (Llm.Task.make ~spec_id:"sessiontest_0" ~domain:"graphs"
       ~faulty:(Parser.parse faulty_src)
       ~check_names:[ "NoLoop" ] ())

let check_timed_out label (r : Repair.Common.result) (env : Typecheck.env) =
  Alcotest.(check bool) (label ^ " reports timed_out") true r.timed_out;
  Alcotest.(check bool) (label ^ " does not claim success") false r.repaired;
  (* best-effort result is well-formed: the final spec type-checks *)
  Alcotest.(check bool) (label ^ " final spec type-checks") true
    (Result.is_ok (Typecheck.check_result r.final_spec));
  ignore env

(* A deadline of 0 ms is already expired at the first cooperative check:
   every technique family must abort and return a well-formed best-effort
   result flagged timed_out. *)

let test_deadline_traditional () =
  let env = Lazy.force faulty_env in
  let expired () = Session.create ~deadline_ms:0.0 env in
  let tests =
    Aunit.generate ~per_kind:2 (env_of ground_truth_src)
      ~scope:Solver.Analyzer.default_scope
  in
  check_timed_out "arepair"
    (Repair.Arepair.repair ~session:(expired ()) env tests)
    env;
  check_timed_out "icebar"
    (Repair.Icebar.repair ~session:(expired ()) env tests)
    env;
  check_timed_out "beafix" (Repair.Beafix.repair ~session:(expired ()) env) env;
  check_timed_out "atr" (Repair.Atr.repair ~session:(expired ()) env) env

let test_deadline_single_round () =
  let session = Session.for_spec ~deadline_ms:0.0 (Lazy.force task).faulty in
  let r = Llm.Single_round.repair ~session (Lazy.force task) Llm.Prompt.SLoc in
  Alcotest.(check bool) "single-round reports timed_out" true r.timed_out;
  Alcotest.(check bool) "no model round was spent" true (r.candidates_tried = 0);
  Alcotest.(check bool) "final spec type-checks" true
    (Result.is_ok (Typecheck.check_result r.final_spec))

let test_deadline_multi_round () =
  let session = Session.for_spec ~deadline_ms:0.0 (Lazy.force task).faulty in
  let r =
    Llm.Multi_round.repair ~session (Lazy.force task) Llm.Multi_round.Generic
  in
  Alcotest.(check bool) "multi-round reports timed_out" true r.timed_out;
  Alcotest.(check bool) "aborted before any round" true (r.iterations = 0);
  Alcotest.(check bool) "final spec type-checks" true
    (Result.is_ok (Typecheck.check_result r.final_spec))

let test_deadline_portfolio () =
  let session = Session.for_spec ~deadline_ms:0.0 (Lazy.force task).faulty in
  let r, stage = Eval.Portfolio.repair ~session (Lazy.force task) in
  Alcotest.(check bool) "portfolio reports timed_out" true r.timed_out;
  Alcotest.(check string) "portfolio stage" "unrepaired"
    (Eval.Portfolio.stage_to_string stage)

(* Without a deadline (or with a generous one) sessions must not perturb
   results: the study rows are identical either way, seed for seed. *)

let test_generous_deadline_identical_rows () =
  let variants = B.Generate.sample ~per_domain:1 () in
  let variants = List.filteri (fun i _ -> i < 3) variants in
  let techniques =
    [
      Eval.Technique.ATR;
      Eval.Technique.BeAFix;
      Eval.Technique.Multi (Llm.Multi_round.No_feedback, Llm.Model.gpt4);
    ]
  in
  let a = Eval.Study.run ~techniques variants in
  let b = Eval.Study.run ~deadline_ms:1e9 ~techniques variants in
  List.iter2
    (fun (x : Eval.Study.spec_result) (y : Eval.Study.spec_result) ->
      Alcotest.(check string) "variant" x.variant_id y.variant_id;
      Alcotest.(check string) "technique" x.technique y.technique;
      Alcotest.(check int) ("rep for " ^ x.variant_id) x.rep y.rep;
      Alcotest.(check (float 1e-9)) "tm" x.tm y.tm;
      Alcotest.(check (float 1e-9)) "sm" x.sm y.sm;
      Alcotest.(check bool) "tool_claimed" x.tool_claimed y.tool_claimed)
    a b

(* {2 Telemetry} *)

let test_telemetry_counters () =
  let env = Lazy.force faulty_env in
  let session = Session.create env in
  let r = Repair.Beafix.repair ~session env in
  Alcotest.(check bool) "repair succeeded" true r.repaired;
  let t = Session.telemetry session in
  Alcotest.(check bool) "candidates evaluated >= 1" true
    (t.Telemetry.candidates_evaluated >= 1);
  Alcotest.(check bool) "candidates generated >= evaluated" true
    (t.Telemetry.candidates_generated >= t.Telemetry.candidates_evaluated);
  Alcotest.(check bool) "solver was queried" true
    (Telemetry.solver_queries t >= 1);
  Alcotest.(check bool) "phase timers recorded" true
    (List.mem_assoc "mutation" (Telemetry.phases t))

let test_telemetry_json_parses () =
  let env = Lazy.force faulty_env in
  let session = Session.create env in
  ignore (Repair.Atr.repair ~session env);
  let json = Session.telemetry_json ~extra:[ ("tool", "ATR") ] session in
  (* one line, object-shaped, with the headline counters present *)
  Alcotest.(check bool) "single line" false (String.contains json '\n');
  Alcotest.(check bool) "object" true
    (String.length json >= 2
    && json.[0] = '{'
    && json.[String.length json - 1] = '}');
  List.iter
    (fun needle ->
      let nl = String.length needle and tl = String.length json in
      let rec go i =
        i + nl <= tl && (String.sub json i nl = needle || go (i + 1))
      in
      Alcotest.(check bool) ("mentions " ^ needle) true (go 0))
    [
      "\"tool\"";
      "\"elapsed_ms\"";
      "\"timed_out\"";
      "\"solver_queries\"";
      "\"candidates_evaluated\"";
      "\"oracle\"";
    ]

(* With ~certify:true every UNSAT verdict the repair relies on must come
   with a DRUP certificate the independent checker accepts; the outcomes
   land both in the oracle stats and in the session telemetry. *)
let test_certified_repair () =
  let env = Lazy.force faulty_env in
  let session = Session.create ~certify:true env in
  let r = Repair.Beafix.repair ~session env in
  Alcotest.(check bool) "repair succeeded" true r.repaired;
  let t = Session.telemetry session in
  Alcotest.(check bool) "some UNSAT verdicts were certified" true
    (t.Telemetry.certified_unsat >= 1);
  Alcotest.(check int) "no certificate failures" 0
    t.Telemetry.certificate_failures;
  let os = Session.oracle_stats session in
  Alcotest.(check int) "oracle stats agree with telemetry"
    t.Telemetry.certified_unsat os.Solver.Oracle.certified;
  Alcotest.(check int) "oracle stats report no failures" 0
    os.Solver.Oracle.certificate_failures;
  (* certification is an observer: the verdicts themselves are unchanged *)
  let plain = Repair.Beafix.repair ~session:(Session.create env) env in
  Alcotest.(check bool) "same outcome without certification" r.repaired
    plain.repaired

let test_session_budget_and_seed () =
  let env = Lazy.force faulty_env in
  let budget = { Session.default_budget with max_candidates = 7 } in
  let s = Session.create ~budget ~seed:17 env in
  Alcotest.(check int) "budget carried" 7 (Session.budget s).max_candidates;
  Alcotest.(check int) "seed carried" 17 (Session.seed s);
  let derived =
    Session.with_budget s (fun b -> { b with Session.max_candidates = 3 })
  in
  Alcotest.(check int) "derived budget" 3
    (Session.budget derived).max_candidates;
  Alcotest.(check int) "derived seed shared" 17 (Session.seed derived);
  Alcotest.(check bool) "telemetry shared" true
    (Session.telemetry derived == Session.telemetry s);
  Alcotest.(check bool) "no deadline, never expires" false (Session.expired s)

(* {2 Technique roster} *)

let test_technique_roundtrip () =
  Alcotest.(check int) "twelve techniques" 12 (List.length Eval.Technique.all);
  List.iter
    (fun t ->
      match Eval.Technique.of_name (Eval.Technique.name t) with
      | Some t' ->
          Alcotest.(check string)
            ("round-trip " ^ Eval.Technique.name t)
            (Eval.Technique.name t) (Eval.Technique.name t')
      | None ->
          Alcotest.failf "of_name failed for %s" (Eval.Technique.name t))
    Eval.Technique.all;
  Alcotest.(check bool) "unknown name rejected" true
    (Eval.Technique.of_name "NoSuchTool" = None)

let () =
  Alcotest.run "session"
    [
      ( "deadline",
        [
          Alcotest.test_case "traditional tools" `Quick
            test_deadline_traditional;
          Alcotest.test_case "single-round" `Quick test_deadline_single_round;
          Alcotest.test_case "multi-round" `Quick test_deadline_multi_round;
          Alcotest.test_case "portfolio" `Quick test_deadline_portfolio;
          Alcotest.test_case "generous deadline is a no-op" `Slow
            test_generous_deadline_identical_rows;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counters" `Quick test_telemetry_counters;
          Alcotest.test_case "certified repair" `Quick test_certified_repair;
          Alcotest.test_case "json" `Quick test_telemetry_json_parses;
          Alcotest.test_case "budget and seed" `Quick
            test_session_budget_and_seed;
        ] );
      ( "techniques",
        [ Alcotest.test_case "name round-trip" `Quick test_technique_roundtrip ] );
    ]
