(* Tests for the Mini-Alloy language layer: lexer, parser, pretty printer
   round-trips, type checker, and the ground-instance evaluator. *)

open Specrepair_alloy

let graph_src =
  {|
module graph

sig Node {
  edges: set Node
}

fact NoSelfLoops {
  all n: Node | n not in n.edges
}

pred connected {
  all a: Node, b: Node | a != b => b in a.^edges
}

assert Acyclic {
  no n: Node | n in n.^edges
}

run connected for 3
check Acyclic for 3
|}

let classroom_src =
  {|
abstract sig Person {}
sig Teacher extends Person {}
sig Student extends Person {
  teacher: lone Teacher
}
one sig School {
  enrolled: set Student
}

fact AllEnrolled {
  all s: Student | s in School.enrolled
}

assert TeachersTeach {
  no t: Teacher | t in Student.teacher && t not in Teacher
}

check TeachersTeach for 3
|}

let parse_ok src =
  match Parser.parse src with
  | spec -> spec
  | exception Diagnostic.Error d ->
      Alcotest.fail ("parse error: " ^ Diagnostic.render d)

(* {2 Lexer} *)

let test_lexer_basic () =
  let tokens = Lexer.tokenize "sig A { f: set B } // comment\n check X for 3" in
  let kinds = Array.to_list (Array.map fst tokens) in
  Alcotest.(check bool)
    "token stream" true
    (kinds
    = [
        Token.Tsig;
        Tident "A";
        Tlbrace;
        Tident "f";
        Tcolon;
        Tset;
        Tident "B";
        Trbrace;
        Tcheck;
        Tident "X";
        Tfor;
        Tint 3;
        Teof;
      ])

let test_lexer_operators () =
  let tokens = Lexer.tokenize "++ -> <: :> != <= >= && || => <=> ^ ~ * #" in
  let kinds = Array.to_list (Array.map fst tokens) in
  Alcotest.(check bool)
    "operators" true
    (kinds
    = [
        Token.Tplusplus;
        Tarrow;
        Tdomres;
        Tranres;
        Tneq;
        Tle;
        Tge;
        Tampamp;
        Tbarbar;
        Tfatarrow;
        Tiffarrow;
        Tcaret;
        Ttilde;
        Tstar;
        Thash;
        Teof;
      ])

let test_lexer_positions () =
  (* spans are 1-based [file:line:col]; end_col is one past the last char *)
  let tokens = Lexer.tokenize ~file:"t.als" "sig A\n  { }" in
  let span_of i = snd tokens.(i) in
  let s0 = span_of 0 in
  Alcotest.(check string) "file" "t.als" s0.Loc.file;
  Alcotest.(check (pair int int)) "sig starts at 1:1" (1, 1)
    (s0.Loc.start_line, s0.Loc.start_col);
  Alcotest.(check int) "sig ends past col 3" 4 s0.Loc.end_col;
  let brace = span_of 2 in
  Alcotest.(check (pair int int)) "brace at 2:3" (2, 3)
    (brace.Loc.start_line, brace.Loc.start_col)

let test_lexer_comments () =
  let tokens = Lexer.tokenize "a /* block\ncomment */ b -- line\nc" in
  Alcotest.(check int) "three idents + eof" 4 (Array.length tokens)

(* {2 Parser} *)

let test_parse_graph () =
  let spec = parse_ok graph_src in
  Alcotest.(check (option string)) "module name" (Some "graph") spec.module_name;
  Alcotest.(check int) "one sig" 1 (List.length spec.sigs);
  Alcotest.(check int) "one fact" 1 (List.length spec.facts);
  Alcotest.(check int) "one pred" 1 (List.length spec.preds);
  Alcotest.(check int) "one assert" 1 (List.length spec.asserts);
  Alcotest.(check int) "two commands" 2 (List.length spec.commands)

let test_parse_classroom () =
  let spec = parse_ok classroom_src in
  Alcotest.(check int) "four sigs" 4 (List.length spec.sigs);
  let school = Option.get (Ast.find_sig spec "School") in
  Alcotest.(check bool) "School is one" true (school.sig_mult = Ast.Mone);
  let student = Option.get (Ast.find_sig spec "Student") in
  Alcotest.(check (option string))
    "Student extends Person" (Some "Person") student.sig_parent;
  match student.sig_fields with
  | [ f ] ->
      Alcotest.(check string) "field name" "teacher" f.fld_name;
      Alcotest.(check bool) "field mult lone" true (f.fld_mult = Ast.Mlone)
  | _ -> Alcotest.fail "expected one field on Student"

let test_parse_precedence () =
  (* join binds tighter than product, product tighter than &, etc. *)
  let e = Parser.parse_expr "a.b -> c & d + e" in
  let expected =
    Ast.Binop
      ( Union,
        Binop
          ( Inter,
            Binop (Product, Binop (Join, Rel "a", Rel "b"), Rel "c"),
            Rel "d" ),
        Rel "e" )
  in
  Alcotest.(check bool) "expression precedence" true (Ast.equal_expr e expected);
  (* ! > && > => > <=> > || *)
  let f = Parser.parse_fmla "some a || some b && some c" in
  let expected =
    Ast.Or (Multf (Fsome, Rel "a"), And (Multf (Fsome, Rel "b"), Multf (Fsome, Rel "c")))
  in
  Alcotest.(check bool) "formula precedence" true (Ast.equal_fmla f expected)

let test_parse_quantifiers () =
  let f = Parser.parse_fmla "all x, y: A, z: B | x != y || z in A" in
  match f with
  | Ast.Quant (Qall, [ ("x", Rel "A"); ("y", Rel "A"); ("z", Rel "B") ], _) -> ()
  | _ -> Alcotest.fail "unexpected quantifier structure"

let test_parse_box_join () =
  let f = Parser.parse_fmla "k in lastKey[r]" in
  let expected =
    Ast.Cmp (Cin, Rel "k", Binop (Join, Rel "r", Rel "lastKey"))
  in
  Alcotest.(check bool) "box join" true (Ast.equal_fmla f expected)

let test_parse_pred_call () =
  let f = Parser.parse_fmla "checkIn[g, r]" in
  let expected = Ast.Call ("checkIn", [ Rel "g"; Rel "r" ]) in
  Alcotest.(check bool) "pred call" true (Ast.equal_fmla f expected)

let test_parse_implies_else () =
  let f = Parser.parse_fmla "some a => some b else some c" in
  let sa = Ast.Multf (Ast.Fsome, Rel "a") in
  let sb = Ast.Multf (Ast.Fsome, Rel "b") in
  let sc = Ast.Multf (Ast.Fsome, Rel "c") in
  Alcotest.(check bool)
    "else desugars" true
    (Ast.equal_fmla f (Or (And (sa, sb), And (Not sa, sc))))

let test_parse_comprehension () =
  let e = Parser.parse_expr "{ x: A | x in B }" in
  (match e with
  | Ast.Compr ([ ("x", Rel "A") ], Cmp (Cin, Rel "x", Rel "B")) -> ()
  | _ -> Alcotest.fail "unexpected comprehension structure");
  let e2 = Parser.parse_expr "{ x: A, y: B | x != y }" in
  (match e2 with
  | Ast.Compr ([ ("x", Rel "A"); ("y", Rel "B") ], _) -> ()
  | _ -> Alcotest.fail "binary comprehension structure");
  (* comprehension opening a comparison in formula position *)
  let f = Parser.parse_fmla "{ x: A | some x.f } = B" in
  match f with
  | Ast.Cmp (Ceq, Compr _, Rel "B") -> ()
  | _ -> Alcotest.fail "comprehension comparison"

let test_eval_comprehension () =
  let env =
    Typecheck.check
      (Parser.parse
         {|
sig Node {
  edges: set Node
}
fact F { some { n: Node | some n.edges } }
|})
  in
  let inst =
    {
      Instance.sigs = [ ("Node", [ "Node$0"; "Node$1"; "Node$2" ]) ];
      fields =
        [
          ( "edges",
            Instance.Tuple_set.of_list [ [| "Node$0"; "Node$1" |] ] );
        ];
    }
  in
  let v = Eval.expr env inst [] (Parser.parse_expr "{ n: Node | some n.edges }") in
  Alcotest.(check int) "one node has edges" 1 (Instance.Tuple_set.cardinal v);
  Alcotest.(check bool) "it is Node$0" true
    (Instance.Tuple_set.mem [| "Node$0" |] v);
  let pairs =
    Eval.expr env inst []
      (Parser.parse_expr "{ a: Node, b: Node | b in a.edges }")
  in
  Alcotest.(check int) "edge pairs" 1 (Instance.Tuple_set.cardinal pairs);
  Alcotest.(check bool) "the pair" true
    (Instance.Tuple_set.mem [| "Node$0"; "Node$1" |] pairs)

let test_fun_and_let () =
  let src =
    {|
sig Person {
  parent: lone Person
}

fun ancestors[p: Person]: set Person {
  p.^parent
}

fact NoSelfAncestor {
  all p: Person | p not in ancestors[p]
}

fact LetUse {
  all p: Person | let a = p.^parent | p not in a
}
|}
  in
  let spec = parse_ok src in
  Alcotest.(check int) "one function" 1 (List.length spec.funs);
  let f = List.hd spec.funs in
  Alcotest.(check string) "fun name" "ancestors" f.fun_name;
  (* type-checks, with the function registered at arity 2 (1 param + set) *)
  let env = Typecheck.check spec in
  Alcotest.(check int) "fun arity" 2 (Hashtbl.find env.arity "ancestors");
  (* evaluation: function application is join *)
  let inst =
    {
      Instance.sigs = [ ("Person", [ "Person$0"; "Person$1"; "Person$2" ]) ];
      fields =
        [
          ( "parent",
            Instance.Tuple_set.of_list
              [ [| "Person$0"; "Person$1" |]; [| "Person$1"; "Person$2" |] ] );
        ];
    }
  in
  let anc =
    Eval.expr env inst [] (Parser.parse_expr "ancestors[Person$0]")
  in
  Alcotest.(check int) "two ancestors" 2 (Instance.Tuple_set.cardinal anc);
  Alcotest.(check bool) "facts hold" true (Eval.facts_hold env inst);
  (* round trip *)
  let spec2 = parse_ok (Pretty.spec_to_string spec) in
  Alcotest.(check bool) "fun round trip" true (Ast.equal_spec spec spec2)

let test_fun_rejects_recursion () =
  let src =
    {|
sig A {
  r: set A
}
fun f[x: A]: set A {
  f[x]
}
|}
  in
  match Typecheck.check_result (parse_ok src) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recursive function must be rejected"

let test_parse_errors () =
  let fails src =
    match Parser.parse src with
    | _ -> Alcotest.fail ("expected parse error for: " ^ src)
    | exception Diagnostic.Error d ->
        (* every rejection carries a real position *)
        Alcotest.(check bool)
          ("diagnostic has a position for: " ^ src)
          false
          (Loc.is_none d.Diagnostic.span)
  in
  fails "sig {}";
  fails "sig A { f }";
  fails "fact { all | x }";
  fails "pred p { some }";
  fails "check";
  fails "sig A {} garbage"

let test_lexer_atom_names () =
  let tokens = Lexer.tokenize "Node$0 x' _under" in
  let kinds = Array.to_list (Array.map fst tokens) in
  Alcotest.(check bool) "atoms, primes, underscores lex as idents" true
    (kinds = [ Token.Tident "Node$0"; Tident "x'"; Tident "_under"; Teof ])

let test_lexer_errors () =
  (match Lexer.tokenize "sig A % B" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Diagnostic.Error d ->
      Alcotest.(check int) "error on line 1" 1 d.Diagnostic.span.Loc.start_line;
      Alcotest.(check int) "error at column 7" 7 d.Diagnostic.span.Loc.start_col);
  match Lexer.tokenize "a\n/* never closed" with
  | _ -> Alcotest.fail "expected unterminated-comment error"
  | exception Diagnostic.Error d ->
      Alcotest.(check int) "points at the comment opener" 2
        d.Diagnostic.span.Loc.start_line

let test_parse_scope_overrides () =
  let spec = parse_ok "sig A {} sig B {} run { some A } for 3 but 5 A, 2 B" in
  match spec.commands with
  | [ c ] ->
      Alcotest.(check int) "default scope" 3 c.cmd_scope;
      Alcotest.(check bool) "overrides" true
        (c.cmd_scopes = [ ("A", 5); ("B", 2) ])
  | _ -> Alcotest.fail "expected one command"

let test_parse_default_scope () =
  let spec = parse_ok "sig A {} run { some A }" in
  Alcotest.(check int) "scope defaults to 3" 3 (List.hd spec.commands).cmd_scope

let test_parse_fact_anonymous () =
  let spec = parse_ok "sig A {} fact { some A } fact Named { no A }" in
  (match spec.facts with
  | [ f1; f2 ] ->
      Alcotest.(check (option string)) "anonymous" None f1.fact_name;
      Alcotest.(check (option string)) "named" (Some "Named") f2.fact_name
  | _ -> Alcotest.fail "expected two facts")

let test_typecheck_scope_errors () =
  let rejects src =
    match Typecheck.check_result (parse_ok src) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected a type error for: " ^ src)
  in
  rejects "sig A {} run { some A } for 0";
  (* scope must be >= 1 *)
  rejects "sig A {} run { some A } for 3 but 2 Unknown";
  (* unknown sig in override *)
  rejects "sig A {} pred p[x: A -> A] { some x }"
  (* higher-arity parameter *)

(* {2 Pretty round trips} *)

let roundtrip_spec src () =
  let spec = parse_ok src in
  let printed = Pretty.spec_to_string spec in
  let spec' = parse_ok printed in
  if not (Ast.equal_spec spec spec') then
    Alcotest.failf "round trip changed the spec:@.%s@.reprinted:@.%s" printed
      (Pretty.spec_to_string spec')

(* Random well-formed formula generator over a fixed vocabulary, used for
   the print/parse round-trip property. *)
let gen_fmla =
  let open QCheck2.Gen in
  let unary = oneofl [ Ast.Rel "A"; Rel "B"; Univ; None_ ] in
  let binary = oneofl [ Ast.Rel "f"; Rel "g"; Iden ] in
  let rec expr1 n =
    if n = 0 then unary
    else
      frequency
        [
          (2, unary);
          ( 2,
            map2
              (fun op (a, b) -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Union; Diff; Inter ])
              (pair (expr1 (n - 1)) (expr1 (n - 1))) );
          (1, map2 (fun a b -> Ast.Binop (Join, a, b)) (expr1 (n - 1)) (expr2 (n - 1)));
          ( 1,
            map2
              (fun s e -> Ast.Binop (Domrestr, s, e))
              (expr1 (n - 1)) (expr1 (n - 1)) );
        ]
  and expr2 n =
    if n = 0 then binary
    else
      frequency
        [
          (3, binary);
          ( 2,
            map2
              (fun op (a, b) -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Union; Diff; Inter; Override ])
              (pair (expr2 (n - 1)) (expr2 (n - 1))) );
          (1, map (fun e -> Ast.Unop (Transpose, e)) (expr2 (n - 1)));
          (1, map (fun e -> Ast.Unop (Closure, e)) (expr2 (n - 1)));
          ( 1,
            map2 (fun a b -> Ast.Binop (Product, a, b)) (expr1 (n - 1))
              (expr1 (n - 1)) );
        ]
  in
  let cmp =
    let* op = oneofl [ Ast.Cin; Cnotin; Ceq; Cneq ] in
    let* arity2 = bool in
    if arity2 then map2 (fun a b -> Ast.Cmp (op, a, b)) (expr2 2) (expr2 2)
    else map2 (fun a b -> Ast.Cmp (op, a, b)) (expr1 2) (expr1 2)
  in
  let multf =
    map2
      (fun m e -> Ast.Multf (m, e))
      (oneofl [ Ast.Fno; Fsome; Flone; Fone ])
      (oneof [ expr1 2; expr2 2 ])
  in
  let card =
    map3
      (fun op e k -> Ast.Card (op, e, k))
      (oneofl [ Ast.Ilt; Ile; Ieq; Ineq; Ige; Igt ])
      (expr1 2) (int_bound 4)
  in
  let rec fmla n =
    if n = 0 then oneof [ cmp; multf; card ]
    else
      frequency
        [
          (3, oneof [ cmp; multf; card ]);
          (1, map (fun f -> Ast.Not f) (fmla (n - 1)));
          ( 2,
            map3
              (fun c a b -> c a b)
              (oneofl
                 [
                   (fun a b -> Ast.And (a, b));
                   (fun a b -> Ast.Or (a, b));
                   (fun a b -> Ast.Implies (a, b));
                   (fun a b -> Ast.Iff (a, b));
                 ])
              (fmla (n - 1)) (fmla (n - 1)) );
          ( 1,
            map3
              (fun q x body -> Ast.Quant (q, [ (x, Ast.Rel "A") ], body))
              (oneofl [ Ast.Qall; Qsome; Qno; Qlone; Qone ])
              (oneofl [ "x"; "y" ])
              (fmla (n - 1)) );
          ( 1,
            map3
              (fun x value body -> Ast.Let (x, value, body))
              (oneofl [ "u"; "v" ])
              (expr2 1)
              (fmla (n - 1)) );
          ( 1,
            map3
              (fun x inner body -> Ast.Multf (Fsome, Ast.Compr ([ (x, Ast.Rel "A") ], Ast.And (inner, body))))
              (oneofl [ "p"; "q" ])
              (fmla 0) (fmla 0) );
        ]
  in
  fmla 3

(* The round-trip contract is a fixpoint on parser-produced formulas:
   generator output may contain [Cmp (Ceq, Univ, Univ)], which the
   frontend folds to [True] (that fold is what makes [True] printable),
   so the property compares the first parse against the second. *)
let prop_fmla_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"pretty/parse formula round trip"
    ~print:(fun f -> Pretty.fmla_to_string f)
    gen_fmla
    (fun f ->
      let printed = Pretty.fmla_to_string f in
      match Parser.parse_fmla printed with
      | f1 -> (
          match Parser.parse_fmla (Pretty.fmla_to_string f1) with
          | f2 -> Ast.equal_fmla f1 f2
          | exception _ -> false)
      | exception _ -> false)

(* {2 Type checker} *)

let test_typecheck_ok () =
  List.iter
    (fun src ->
      match Typecheck.check_result (parse_ok src) with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("unexpected type error: " ^ msg))
    [ graph_src; classroom_src ]

let test_typecheck_errors () =
  let rejects src =
    match Typecheck.check_result (parse_ok src) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected a type error for: " ^ src)
  in
  rejects "sig A {} fact { some B }";
  (* unknown name *)
  rejects "sig A { f: set A } fact { f = A }";
  (* arity mismatch *)
  rejects "sig A { f: set A } sig B { f: set B }";
  (* duplicate field *)
  rejects "sig A extends B {} sig B extends A {}";
  (* cyclic extends *)
  rejects "sig A {} fact { ~A in A }";
  (* transpose of unary *)
  rejects "sig A {} check Missing for 3";
  (* unknown assert *)
  rejects "sig A {} pred p[x: A] { some x } fact { p[A, A] }"
  (* wrong arg count *)

let test_typecheck_env () =
  let env = Typecheck.check (parse_ok classroom_src) in
  Alcotest.(check (list string))
    "top sigs" [ "Person"; "School" ] env.top_sigs;
  Alcotest.(check string) "root of Teacher" "Person"
    (Typecheck.root_of env "Teacher");
  Alcotest.(check int) "teacher field arity" 2
    (Hashtbl.find env.arity "teacher");
  Alcotest.(check bool)
    "descendants of Person" true
    (List.sort compare (Typecheck.descendants env "Person")
    = [ "Person"; "Student"; "Teacher" ])

(* {2 Evaluator} *)

module TS = Instance.Tuple_set

let graph_instance edges =
  {
    Instance.sigs = [ ("Node", [ "Node$0"; "Node$1"; "Node$2" ]) ];
    fields =
      [
        ( "edges",
          TS.of_list (List.map (fun (a, b) -> [| "Node$" ^ a; "Node$" ^ b |]) edges)
        );
      ];
  }

let graph_env = lazy (Typecheck.check (parse_ok graph_src))

let eval_fmla inst src =
  Eval.fmla (Lazy.force graph_env) inst [] (Parser.parse_fmla src)

let test_eval_basic () =
  let inst = graph_instance [ ("0", "1"); ("1", "2") ] in
  Alcotest.(check bool) "some edges" true (eval_fmla inst "some edges");
  Alcotest.(check bool) "#edges = 2" true (eval_fmla inst "#edges = 2");
  Alcotest.(check bool)
    "transitive reach" true
    (eval_fmla inst "Node$2 in Node$0.^edges");
  Alcotest.(check bool)
    "no back edge" false
    (eval_fmla inst "Node$0 in Node$2.^edges")

let test_eval_closure () =
  let inst = graph_instance [ ("0", "1"); ("1", "2") ] in
  let env = Lazy.force graph_env in
  let closure = Eval.expr env inst [] (Parser.parse_expr "^edges") in
  Alcotest.(check int) "closure size" 3 (TS.cardinal closure);
  Alcotest.(check bool)
    "0 reaches 2" true
    (TS.mem [| "Node$0"; "Node$2" |] closure);
  let rclosure = Eval.expr env inst [] (Parser.parse_expr "*edges") in
  Alcotest.(check int) "reflexive closure size" 6 (TS.cardinal rclosure)

let test_eval_quantifiers () =
  let inst = graph_instance [ ("0", "1"); ("1", "2"); ("0", "2") ] in
  let env = Lazy.force graph_env in
  let holds src = Eval.fmla env inst [] (Parser.parse_fmla src) in
  Alcotest.(check bool) "all nodes distinct from successors" true
    (holds "all n: Node | n not in n.edges");
  Alcotest.(check bool) "some node with two successors" true
    (holds "some n: Node | #n.edges = 2");
  Alcotest.(check bool) "exactly one node with no successors" true
    (holds "one n: Node | no n.edges");
  Alcotest.(check bool) "lone fails when two nodes have successors" false
    (holds "lone n: Node | some n.edges")

let test_eval_relational_ops () =
  let inst = graph_instance [ ("0", "1"); ("1", "2") ] in
  let env = Lazy.force graph_env in
  let value src = Eval.expr env inst [] (Parser.parse_expr src) in
  Alcotest.(check int) "transpose cardinality" 2 (TS.cardinal (value "~edges"));
  Alcotest.(check bool)
    "transpose contents" true
    (TS.mem [| "Node$1"; "Node$0" |] (value "~edges"));
  Alcotest.(check int) "override keeps size" 2
    (TS.cardinal (value "edges ++ Node$0 -> Node$2"));
  Alcotest.(check bool)
    "override replaces Node$0 mapping" true
    (TS.mem [| "Node$0"; "Node$2" |] (value "edges ++ Node$0 -> Node$2"));
  Alcotest.(check int) "domain restriction" 1
    (TS.cardinal (value "Node$0 <: edges"));
  Alcotest.(check int) "range restriction" 1
    (TS.cardinal (value "edges :> Node$2"));
  Alcotest.(check int) "iden over universe" 3 (TS.cardinal (value "iden"))

let test_eval_dependent_bounds () =
  (* a quantifier whose bound mentions an earlier variable *)
  let inst = graph_instance [ ("0", "1"); ("1", "2") ] in
  Alcotest.(check bool) "successors of successors" true
    (eval_fmla inst "all n: Node | all m: n.edges | m not in m.edges || some m.edges")

let test_eval_cardinality_ops () =
  let inst = graph_instance [ ("0", "1"); ("1", "2"); ("0", "2") ] in
  List.iter
    (fun (src, expected) ->
      Alcotest.(check bool) src expected (eval_fmla inst src))
    [
      ("#edges = 3", true);
      ("#edges != 3", false);
      ("#edges >= 3", true);
      ("#edges > 3", false);
      ("#edges <= 3", true);
      ("#edges < 3", false);
      ("#Node = 3", true);
      ("#(Node.edges) = 2", true);
    ]

let test_eval_instance_equal () =
  let a = graph_instance [ ("0", "1") ] in
  let b = graph_instance [ ("0", "1") ] in
  let c = graph_instance [ ("1", "0") ] in
  Alcotest.(check bool) "equal instances" true (Instance.equal a b);
  Alcotest.(check bool) "different valuations differ" false (Instance.equal a c);
  Alcotest.(check int) "universe size" 3 (List.length (Instance.universe a))

let test_eval_restrictions_and_override () =
  let inst = graph_instance [ ("0", "1"); ("1", "2"); ("2", "0") ] in
  let env = Lazy.force graph_env in
  let value src = Eval.expr env inst [] (Parser.parse_expr src) in
  (* domain restriction to two atoms *)
  Alcotest.(check int) "dom restrict" 2
    (TS.cardinal (value "(Node$0 + Node$1) <: edges"));
  (* override replaces exactly the tuples whose head is overridden *)
  let ov = value "edges ++ (Node$0 -> Node$0)" in
  Alcotest.(check bool) "override installs new tuple" true
    (TS.mem [| "Node$0"; "Node$0" |] ov);
  Alcotest.(check bool) "override removes old head tuples" false
    (TS.mem [| "Node$0"; "Node$1" |] ov);
  Alcotest.(check bool) "override keeps other heads" true
    (TS.mem [| "Node$1"; "Node$2" |] ov)

let test_eval_facts_hold () =
  let env = Lazy.force graph_env in
  Alcotest.(check bool)
    "no self loops holds" true
    (Eval.facts_hold env (graph_instance [ ("0", "1") ]));
  Alcotest.(check bool)
    "self loop violates fact" false
    (Eval.facts_hold env (graph_instance [ ("0", "0") ]))

let test_pretty_edge_cases () =
  (* nested negation, quantifier inside conjunction, deep parentheses *)
  List.iter
    (fun src ->
      let f = Parser.parse_fmla src in
      let printed = Pretty.fmla_to_string f in
      match Parser.parse_fmla printed with
      | f' ->
          if not (Ast.equal_fmla f f') then
            Alcotest.failf "round trip changed %S -> %S" src printed
      | exception e ->
          Alcotest.failf "reparse of %S failed: %s" printed (Printexc.to_string e))
    [
      "!!some A";
      "(all x: A | some x.f) && no B";
      "some A || no B && one C.f";
      "let u = A.f | u in B || some u";
      "some { x: A | x in B } && no C";
      "#(A + B) >= 2 => A in B";
      "a.b.c in (d + e).f";
      "A - B - C = none";
      "~(f + ~g) in h";
    ]

let test_eval_pred_call () =
  let src =
    {|
sig Person {
  likes: set Person
}
pred mutual[a: Person, b: Person] {
  b in a.likes && a in b.likes
}
fact { some a: Person, b: Person | mutual[a, b] }
|}
  in
  let env = Typecheck.check (parse_ok src) in
  let inst ok =
    {
      Instance.sigs = [ ("Person", [ "Person$0"; "Person$1" ]) ];
      fields =
        [
          ( "likes",
            if ok then
              TS.of_list
                [ [| "Person$0"; "Person$1" |]; [| "Person$1"; "Person$0" |] ]
            else TS.of_list [ [| "Person$0"; "Person$1" |] ] );
        ];
    }
  in
  Alcotest.(check bool) "mutual likes" true (Eval.facts_hold env (inst true));
  Alcotest.(check bool) "one-way likes" false (Eval.facts_hold env (inst false))

let () =
  Alcotest.run "alloy"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "atom names" `Quick test_lexer_atom_names;
          Alcotest.test_case "lex errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "graph spec" `Quick test_parse_graph;
          Alcotest.test_case "classroom spec" `Quick test_parse_classroom;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifiers;
          Alcotest.test_case "box join" `Quick test_parse_box_join;
          Alcotest.test_case "pred call" `Quick test_parse_pred_call;
          Alcotest.test_case "implies-else" `Quick test_parse_implies_else;
          Alcotest.test_case "comprehension" `Quick test_parse_comprehension;
          Alcotest.test_case "fun and let" `Quick test_fun_and_let;
          Alcotest.test_case "recursive fun rejected" `Quick
            test_fun_rejects_recursion;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "scope overrides" `Quick test_parse_scope_overrides;
          Alcotest.test_case "default scope" `Quick test_parse_default_scope;
          Alcotest.test_case "anonymous facts" `Quick test_parse_fact_anonymous;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "graph round trip" `Quick (roundtrip_spec graph_src);
          Alcotest.test_case "classroom round trip" `Quick
            (roundtrip_spec classroom_src);
          QCheck_alcotest.to_alcotest prop_fmla_roundtrip;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts valid specs" `Quick test_typecheck_ok;
          Alcotest.test_case "rejects invalid specs" `Quick test_typecheck_errors;
          Alcotest.test_case "environment contents" `Quick test_typecheck_env;
          Alcotest.test_case "scope errors" `Quick test_typecheck_scope_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "basics" `Quick test_eval_basic;
          Alcotest.test_case "closure" `Quick test_eval_closure;
          Alcotest.test_case "quantifiers" `Quick test_eval_quantifiers;
          Alcotest.test_case "relational ops" `Quick test_eval_relational_ops;
          Alcotest.test_case "facts_hold" `Quick test_eval_facts_hold;
          Alcotest.test_case "pred call" `Quick test_eval_pred_call;
          Alcotest.test_case "comprehension" `Quick test_eval_comprehension;
          Alcotest.test_case "pretty edge cases" `Quick test_pretty_edge_cases;
          Alcotest.test_case "dependent bounds" `Quick test_eval_dependent_bounds;
          Alcotest.test_case "cardinality ops" `Quick test_eval_cardinality_ops;
          Alcotest.test_case "instance equality" `Quick test_eval_instance_equal;
          Alcotest.test_case "restrictions and override" `Quick
            test_eval_restrictions_and_override;
        ] );
    ]
