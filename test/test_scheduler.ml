(* Tests for the fault-tolerant work-stealing scheduler and the parallel
   study runner built on it: result completeness and ordering, worker-death
   recovery (SIGKILL mid-run), heartbeat kills, bounded retries, and the
   byte-identity of parallel study CSVs with the sequential run. *)

module B = Specrepair_benchmarks
module Eval = Specrepair_eval
module Scheduler = Eval.Scheduler
module Sched_stats = Specrepair_engine.Telemetry.Scheduler

let square ~emit:_ i = string_of_int (i * i)

(* a one-shot self-SIGKILL: the first worker to reach [item] creates the
   marker and dies; the retry sees the marker and completes normally *)
let kill_once ~mark ~item f ~emit i =
  if i = item && not (Sys.file_exists mark) then begin
    (try close_out (open_out mark) with Sys_error _ -> ());
    Unix.kill (Unix.getpid ()) Sys.sigkill
  end;
  f ~emit i

let with_marker k =
  let mark = Filename.temp_file "specrepair_sched_test_" ".mark" in
  Sys.remove mark;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists mark then Sys.remove mark)
    (fun () -> k mark)

let test_map_in_order () =
  let results, stats = Scheduler.map ~jobs:4 ~f:square 25 in
  Alcotest.(check int) "all results" 25 (Array.length results);
  Array.iteri
    (fun i r -> Alcotest.(check string) "in order" (string_of_int (i * i)) r)
    results;
  Alcotest.(check int) "no retries" 0 stats.Sched_stats.retries;
  Alcotest.(check int) "no workers lost" 0 stats.Sched_stats.workers_lost;
  Alcotest.(check int) "every row merged" 25 stats.Sched_stats.rows_completed

let test_jobs_exceed_rows () =
  (* more workers than work items degrades gracefully *)
  let results, stats = Scheduler.map ~jobs:16 ~f:square 3 in
  Alcotest.(check int) "all results" 3 (Array.length results);
  Array.iteri
    (fun i r -> Alcotest.(check string) "in order" (string_of_int (i * i)) r)
    results;
  Alcotest.(check bool) "spawned at most one worker per row" true
    (stats.Sched_stats.workers_spawned >= 1
    && stats.Sched_stats.workers_spawned <= 3)

let test_emit_forwarded () =
  let lines = ref [] in
  let results, _ =
    Scheduler.map ~jobs:2
      ~emit:(fun l -> lines := l :: !lines)
      ~f:(fun ~emit i ->
        emit (Printf.sprintf "side-%d" i);
        string_of_int i)
      10
  in
  Alcotest.(check int) "all results" 10 (Array.length results);
  let expected = List.init 10 (fun i -> Printf.sprintf "side-%d" i) in
  Alcotest.(check (list string))
    "every sideband line arrives exactly once" expected
    (List.sort compare !lines)

let test_sigkill_recovery () =
  with_marker (fun mark ->
      let results, stats =
        Scheduler.map ~jobs:3 ~f:(kill_once ~mark ~item:7 square) 20
      in
      Alcotest.(check int) "complete despite the kill" 20 (Array.length results);
      Array.iteri
        (fun i r ->
          Alcotest.(check string) "correct row" (string_of_int (i * i)) r)
        results;
      Alcotest.(check bool) "chunk was retried" true
        (stats.Sched_stats.retries > 0);
      Alcotest.(check bool) "a worker was lost" true
        (stats.Sched_stats.workers_lost >= 1);
      Alcotest.(check bool) "a replacement was forked" true
        (stats.Sched_stats.workers_spawned > 3))

let test_heartbeat_kills_hung_worker () =
  with_marker (fun mark ->
      let hang_once ~emit:_ i =
        if i = 2 && not (Sys.file_exists mark) then begin
          (try close_out (open_out mark) with Sys_error _ -> ());
          Unix.sleep 600
        end;
        string_of_int i
      in
      let results, stats =
        Scheduler.map ~jobs:2 ~heartbeat_timeout_ms:500. ~f:hang_once 6
      in
      Alcotest.(check int) "complete despite the hang" 6 (Array.length results);
      Alcotest.(check bool) "hung worker was killed" true
        (stats.Sched_stats.heartbeat_kills >= 1);
      Alcotest.(check bool) "its chunk was retried" true
        (stats.Sched_stats.retries > 0))

let test_retry_exhaustion_names_rows () =
  (* item 3 kills its worker on every attempt: the chunk must exhaust its
     retry budget and surface the offending rows *)
  let always_kill ~emit:_ i =
    if i = 3 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    string_of_int i
  in
  match Scheduler.map ~jobs:4 ~max_retries:1 ~f:always_kill 4 with
  | _ -> Alcotest.fail "expected Chunk_failed"
  | exception Scheduler.Chunk_failed { indices; attempts; reason } ->
      Alcotest.(check bool) "names the offending row" true
        (List.mem 3 indices);
      Alcotest.(check int) "attempts = initial + retry" 2 attempts;
      Alcotest.(check bool) "reason mentions the worker" true (reason <> "")

(* {2 The study runner on top of the scheduler} *)

let sample_variants = lazy (B.Generate.sample ~per_domain:1 ())

let test_study_parallel_bit_identical () =
  (* the acceptance bar: --sample 1 --jobs 4 CSV byte-identical to --jobs 1
     across all twelve techniques, modulo the wall-clock time_ms column *)
  let variants = Lazy.force sample_variants in
  let seq = Eval.Study.run variants in
  let par = Eval.Study.run_parallel ~jobs:4 variants in
  Alcotest.(check string) "csv byte-identical (timings zeroed)"
    (Eval.Study.to_csv ~timings:false seq)
    (Eval.Study.to_csv ~timings:false par)

let test_study_parallel_survives_sigkill () =
  let variants = Lazy.force sample_variants in
  let techniques = [ Eval.Technique.ATR; Eval.Technique.BeAFix ] in
  let seq = Eval.Study.run ~techniques variants in
  let telemetry_lines = ref [] in
  let stats = ref None in
  let par =
    with_marker (fun mark ->
        Unix.putenv "SPECREPAIR_SCHED_KILL_ITEM" "5";
        Unix.putenv "SPECREPAIR_SCHED_KILL_MARK" mark;
        Fun.protect
          ~finally:(fun () ->
            Unix.putenv "SPECREPAIR_SCHED_KILL_ITEM" "";
            Unix.putenv "SPECREPAIR_SCHED_KILL_MARK" "")
          (fun () ->
            Eval.Study.run_parallel ~jobs:4 ~techniques
              ~telemetry:(fun l -> telemetry_lines := l :: !telemetry_lines)
              ~on_stats:(fun s -> stats := Some s)
              variants))
  in
  Alcotest.(check string) "rows byte-identical despite the SIGKILL"
    (Eval.Study.to_csv ~timings:false seq)
    (Eval.Study.to_csv ~timings:false par);
  (match !stats with
  | None -> Alcotest.fail "on_stats never called"
  | Some s ->
      Alcotest.(check bool) "retries > 0 in telemetry" true
        (s.Sched_stats.retries > 0);
      Alcotest.(check bool) "a worker was lost" true
        (s.Sched_stats.workers_lost >= 1));
  (* one telemetry line per row plus the final scheduler summary *)
  let n_rows = List.length seq in
  Alcotest.(check int) "one telemetry line per row + summary" (n_rows + 1)
    (List.length !telemetry_lines);
  let summary = List.hd !telemetry_lines in
  Alcotest.(check bool) "summary is the scheduler line" true
    (String.length summary >= 14 && String.sub summary 0 14 = "{\"scheduler\":{")

(* {2 Strict CSV parsing} *)

let csv_header = "variant_id,domain,benchmark,technique,rep,tm,sm,tool_claimed,time_ms"

let test_of_csv_roundtrip_tolerates_noise () =
  let text =
    csv_header ^ "\n\n" ^ "v1,classroom,A4F,ATR,1,0.500000,0.250000,true,1.500\n"
    ^ csv_header ^ "\n" (* repeated header (concatenated caches) is fine *)
    ^ "v2,student,ARepair,BeAFix,0,0.000000,1.000000,false,0.125\n"
  in
  match Eval.Study.of_csv text with
  | [ a; b ] ->
      Alcotest.(check string) "first row" "v1" a.Eval.Study.variant_id;
      Alcotest.(check bool) "benchmark parsed" true
        (b.Eval.Study.benchmark = B.Domains.ARepair_bench)
  | rows -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length rows))

let expect_failure what text =
  match Eval.Study.of_csv text with
  | _ -> Alcotest.fail (what ^ ": expected Failure")
  | exception Failure msg ->
      Alcotest.(check bool) (what ^ ": error names of_csv") true
        (String.length msg >= 12 && String.sub msg 0 12 = "Study.of_csv")

let test_of_csv_rejects_malformed () =
  (* a worker killed mid-write must not silently shed rows *)
  expect_failure "truncated row"
    (csv_header ^ "\nv1,classroom,A4F,ATR,1,0.5");
  expect_failure "unknown benchmark"
    (csv_header ^ "\nv1,classroom,BOGUS,ATR,1,0.5,0.5,true,1.0");
  expect_failure "unparsable field"
    (csv_header ^ "\nv1,classroom,A4F,ATR,one,0.5,0.5,true,1.0")

let () =
  Alcotest.run "scheduler"
    [
      ( "map",
        [
          Alcotest.test_case "results in order" `Quick test_map_in_order;
          Alcotest.test_case "jobs > rows" `Quick test_jobs_exceed_rows;
          Alcotest.test_case "sideband lines forwarded" `Quick
            test_emit_forwarded;
        ] );
      ( "faults",
        [
          Alcotest.test_case "sigkill recovery" `Quick test_sigkill_recovery;
          Alcotest.test_case "heartbeat kill" `Quick
            test_heartbeat_kills_hung_worker;
          Alcotest.test_case "retry exhaustion names rows" `Quick
            test_retry_exhaustion_names_rows;
        ] );
      ( "study",
        [
          Alcotest.test_case "jobs 4 bit-identical" `Slow
            test_study_parallel_bit_identical;
          Alcotest.test_case "survives sigkill" `Slow
            test_study_parallel_survives_sigkill;
        ] );
      ( "csv",
        [
          Alcotest.test_case "round trip with noise" `Quick
            test_of_csv_roundtrip_tolerates_noise;
          Alcotest.test_case "malformed rows fail loudly" `Quick
            test_of_csv_rejects_malformed;
        ] );
    ]
