(* Tests for the racing portfolio: verdict determinism, byte-identity of
   the single-worker case, loser reaping, chaos-kill fallback, and
   certificate checking of portfolio UNSAT verdicts. *)

open Specrepair_sat

let lit v sign = if sign then Lit.pos v else Lit.neg v

let model_satisfies (cnf : Dimacs.cnf) model =
  let value l =
    let b = Lit.var l < Array.length model && model.(Lit.var l) in
    if Lit.sign l then b else not b
  in
  List.for_all (fun c -> List.exists value c) cnf.clauses

let brute_force (cnf : Dimacs.cnf) =
  let n = cnf.num_vars in
  let rec go mask =
    if mask >= 1 lsl n then false
    else
      let m = Array.init n (fun v -> mask land (1 lsl v) <> 0) in
      model_satisfies cnf m || go (mask + 1)
  in
  go 0

let result_str = function
  | Solver.Sat -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

let no_children () =
  (* every worker must be reaped: a lingering zombie would be returned (or
     ECHILD proves there are no children at all) *)
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | 0, _ -> true (* children exist (other tests'?) but none are zombies *)
  | pid, _ -> pid = 0
  | exception Unix.Unix_error (ECHILD, _, _) -> true

let sat_cnf =
  {
    Dimacs.num_vars = 6;
    clauses =
      [
        [ lit 0 true; lit 1 true ];
        [ lit 1 false; lit 2 true ];
        [ lit 3 true; lit 4 false ];
        [ lit 2 false; lit 5 true ];
        [ lit 0 false; lit 5 true ];
      ];
  }

let test_sat_verdict () =
  let out = Portfolio.solve ~jobs:4 sat_cnf in
  Alcotest.(check string) "sat" "sat" (result_str out.Portfolio.result);
  Alcotest.(check bool)
    "model satisfies the cnf" true
    (model_satisfies sat_cnf (Option.get out.Portfolio.model));
  Alcotest.(check bool) "no zombies" true (no_children ())

let test_unsat_verdict () =
  let cnf = Hard_cnf.pigeonhole 5 in
  let out = Portfolio.solve ~jobs:4 cnf in
  Alcotest.(check string) "unsat" "unsat" (result_str out.Portfolio.result);
  Alcotest.(check bool) "no zombies" true (no_children ())

let test_verdict_deterministic () =
  (* the winner may differ run to run; the verdict must not *)
  let cnf = Hard_cnf.random_3sat ~seed:7 ~num_vars:30 ~num_clauses:120 in
  let first = Portfolio.solve ~jobs:4 cnf in
  for _ = 1 to 3 do
    let out = Portfolio.solve ~jobs:4 cnf in
    Alcotest.(check string)
      "same verdict across runs"
      (result_str first.Portfolio.result)
      (result_str out.Portfolio.result)
  done;
  Alcotest.(check bool) "no zombies" true (no_children ())

let test_single_worker_byte_identical () =
  (* jobs:1 runs the vanilla configuration: verdict and model must equal
     plain solving exactly *)
  let cnf = Hard_cnf.random_3sat ~seed:3 ~num_vars:25 ~num_clauses:80 in
  let s = Solver.create () in
  Dimacs.load_into s cnf;
  let plain = Solver.solve s in
  let out = Portfolio.solve ~jobs:1 cnf in
  Alcotest.(check string)
    "verdict" (result_str plain)
    (result_str out.Portfolio.result);
  (match (plain, out.Portfolio.model) with
  | Solver.Sat, Some m ->
      Alcotest.(check (array bool)) "model bits" (Solver.model s) m
  | Solver.Sat, None -> Alcotest.fail "portfolio dropped the model"
  | _ -> ());
  Alcotest.(check int) "worker 0 won" 0 out.Portfolio.winner;
  Alcotest.(check bool) "no zombies" true (no_children ())

let test_chaos_kill_leader () =
  (* SIGKILL worker 0 before it does anything: a survivor must still
     deliver the verdict *)
  Unix.putenv "SPECREPAIR_PORTFOLIO_CHAOS_KILL" "0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SPECREPAIR_PORTFOLIO_CHAOS_KILL" "")
    (fun () ->
      let cnf = Hard_cnf.pigeonhole 4 in
      let out = Portfolio.solve ~jobs:3 cnf in
      Alcotest.(check string) "unsat" "unsat" (result_str out.Portfolio.result);
      Alcotest.(check bool)
        "winner is a survivor" true
        (out.Portfolio.winner <> 0);
      (* [rejected] may be 0 here: a survivor can win before the death
         poll observes the kill; the all-dead test below pins the count *)
      Alcotest.(check bool) "no zombies" true (no_children ()))

let test_chaos_kill_all () =
  (* kill the only worker: the in-process fallback must answer *)
  Unix.putenv "SPECREPAIR_PORTFOLIO_CHAOS_KILL" "0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SPECREPAIR_PORTFOLIO_CHAOS_KILL" "")
    (fun () ->
      let out = Portfolio.solve ~jobs:1 sat_cnf in
      Alcotest.(check string) "sat" "sat" (result_str out.Portfolio.result);
      Alcotest.(check int) "fallback winner" (-1) out.Portfolio.winner;
      Alcotest.(check bool)
        "model satisfies the cnf" true
        (model_satisfies sat_cnf (Option.get out.Portfolio.model));
      Alcotest.(check bool) "no zombies" true (no_children ()))

let test_certified_unsat () =
  let cnf = Hard_cnf.pigeonhole 4 in
  let r = Proof.recorder () in
  let sink = Proof.recorder_sink r in
  List.iter (fun c -> sink (Proof.Input (Array.of_list c))) cnf.Dimacs.clauses;
  let out = Portfolio.solve ~jobs:4 ~certify:true ~proof:sink cnf in
  Alcotest.(check string) "unsat" "unsat" (result_str out.Portfolio.result);
  (match Drat.check ~premises:(Proof.inputs r) (List.to_seq (Proof.steps r)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "winner proof rejected on replay: %s" e);
  Alcotest.(check bool) "no zombies" true (no_children ())

let test_certified_with_simplify () =
  let cnf = Hard_cnf.with_redundancy ~seed:5 ~copies:2 (Hard_cnf.pigeonhole 4) in
  let out = Portfolio.solve ~jobs:4 ~simplify:true ~certify:true cnf in
  Alcotest.(check string) "unsat" "unsat" (result_str out.Portfolio.result);
  Alcotest.(check bool) "no zombies" true (no_children ())

let gen_cnf =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* n_clauses = int_range 1 25 in
    let gen_lit = map2 (fun v s -> lit (v mod n) s) (int_bound (n - 1)) bool in
    let gen_clause = list_size (int_range 1 4) gen_lit in
    let* clauses = list_repeat n_clauses gen_clause in
    return { Dimacs.num_vars = n; clauses })

let prop_matches_brute_force =
  QCheck2.Test.make ~count:25
    ~name:"portfolio verdicts agree with brute force" gen_cnf (fun cnf ->
      let out = Portfolio.solve ~jobs:2 ~certify:true cnf in
      let expected = brute_force cnf in
      (match out.Portfolio.result with
      | Solver.Sat ->
          expected && model_satisfies cnf (Option.get out.Portfolio.model)
      | Solver.Unsat -> not expected
      | Solver.Unknown -> false)
      && no_children ())

let () =
  Alcotest.run "portfolio"
    [
      ( "racing",
        [
          Alcotest.test_case "sat verdict with model check" `Quick
            test_sat_verdict;
          Alcotest.test_case "unsat verdict" `Quick test_unsat_verdict;
          Alcotest.test_case "verdict deterministic across runs" `Quick
            test_verdict_deterministic;
          Alcotest.test_case "single worker byte-identical" `Quick
            test_single_worker_byte_identical;
        ] );
      ( "faults",
        [
          Alcotest.test_case "chaos-killed leader, survivor wins" `Quick
            test_chaos_kill_leader;
          Alcotest.test_case "all workers dead, in-process fallback" `Quick
            test_chaos_kill_all;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "certified unsat replays through the checker"
            `Quick test_certified_unsat;
          Alcotest.test_case "certified unsat with simplifying workers" `Quick
            test_certified_with_simplify;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_matches_brute_force ]);
    ]
