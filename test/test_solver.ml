(* Tests for the bounded model finder: command outcomes on known specs,
   validity of extracted instances against the reference evaluator, and a
   solver/evaluator agreement property over random formulas. *)

open Specrepair_alloy
module Solver = Specrepair_solver
module TS = Instance.Tuple_set

let parse_env src = Typecheck.check (Parser.parse src)

let scope n = { Solver.Bounds.default = n; overrides = [] }

let graph_env =
  lazy
    (parse_env
       {|
sig Node {
  edges: set Node
}
fact NoSelfLoops {
  all n: Node | n not in n.edges
}
pred hasEdge {
  some edges
}
assert Acyclic {
  no n: Node | n in n.^edges
}
run hasEdge for 3
check Acyclic for 3
|})

let test_run_sat () =
  let env = Lazy.force graph_env in
  match Solver.Analyzer.run_pred env (scope 3) "hasEdge" with
  | Sat inst ->
      Alcotest.(check bool) "instance satisfies facts" true
        (Eval.facts_hold env inst);
      Alcotest.(check bool) "instance has an edge" true
        (not (TS.is_empty (Instance.field_tuples inst "edges")))
  | Unsat | Unknown -> Alcotest.fail "expected an instance"

let test_check_counterexample () =
  (* the fact forbids self loops but cycles of length > 1 remain *)
  let env = Lazy.force graph_env in
  match Solver.Analyzer.check_assert env (scope 3) "Acyclic" with
  | Sat cex ->
      Alcotest.(check bool) "cex satisfies facts" true (Eval.facts_hold env cex);
      let assert_body =
        (Option.get (Ast.find_assert env.spec "Acyclic")).assert_body
      in
      Alcotest.(check bool) "cex violates the assertion" false
        (Eval.fmla env cex [] assert_body)
  | Unsat | Unknown -> Alcotest.fail "expected a counterexample"

let test_check_valid () =
  let env =
    parse_env
      {|
sig Node {
  edges: set Node
}
fact Acyclicity {
  no n: Node | n in n.^edges
}
assert NoSelfLoop {
  all n: Node | n not in n.edges
}
check NoSelfLoop for 3
|}
  in
  match Solver.Analyzer.check_assert env (scope 3) "NoSelfLoop" with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "assertion should hold within scope"
  | Unknown -> Alcotest.fail "unexpected unknown"

let test_one_sig_and_hierarchy () =
  let env =
    parse_env
      {|
abstract sig Person {}
sig Teacher extends Person {}
sig Student extends Person {}
one sig School {
  head: one Teacher
}
run { some Student } for 3
|}
  in
  match Solver.Analyzer.solve_fmla env (scope 3) (Parser.parse_fmla "some Student") with
  | Sat inst ->
      Alcotest.(check bool) "facts hold" true (Eval.facts_hold env inst);
      Alcotest.(check int) "exactly one school" 1
        (List.length (Instance.sig_atoms inst "School"));
      let teachers = Instance.sig_atoms inst "Teacher" in
      let students = Instance.sig_atoms inst "Student" in
      let persons = Instance.sig_atoms inst "Person" in
      Alcotest.(check bool) "some student" true (students <> []);
      Alcotest.(check bool) "head is one teacher" true
        (TS.cardinal (Instance.field_tuples inst "head") = 1);
      Alcotest.(check bool) "teachers and students partition persons" true
        (List.sort compare (teachers @ students) = List.sort compare persons)
  | Unsat | Unknown -> Alcotest.fail "expected an instance"

let test_scope_respected () =
  let env = Lazy.force graph_env in
  match
    Solver.Analyzer.solve_fmla env (scope 2) (Parser.parse_fmla "#Node = 3")
  with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "3 nodes cannot fit in scope 2"
  | Unknown -> Alcotest.fail "unexpected unknown"

let test_scope_override () =
  let env =
    parse_env
      {|
sig A {}
sig B {}
run { #A = 4 && #B = 1 } for 2 but 4 A
|}
  in
  let cmd = List.hd env.spec.commands in
  (match Solver.Analyzer.run_command env cmd with
  | Sat _ -> ()
  | _ -> Alcotest.fail "override should allow 4 As");
  match
    Solver.Analyzer.solve_fmla env
      { Solver.Bounds.default = 2; overrides = [] }
      (Parser.parse_fmla "#A = 4")
  with
  | Unsat -> ()
  | _ -> Alcotest.fail "without override 4 As must not fit"

let test_ternary_field () =
  let env =
    parse_env
      {|
sig Room {}
sig Guest {}
one sig Desk {
  occupant: Room -> lone Guest
}
run { some Desk.occupant } for 2
|}
  in
  match
    Solver.Analyzer.solve_fmla env (scope 2)
      (Parser.parse_fmla "some Desk.occupant")
  with
  | Sat inst ->
      Alcotest.(check bool) "facts hold (incl. lone mult)" true
        (Eval.facts_hold env inst);
      Alcotest.(check bool) "occupant non-empty" true
        (not (TS.is_empty (Instance.field_tuples inst "occupant")))
  | Unsat | Unknown -> Alcotest.fail "expected an instance"

let test_enumerate () =
  let env =
    parse_env {|
sig A {}
run { some A } for 2
|}
  in
  let instances =
    Solver.Analyzer.enumerate ~limit:100 env (scope 2)
      (Parser.parse_fmla "some A")
  in
  (* with symmetry breaking the pool is used in order: {A$0}, {A$0, A$1} *)
  Alcotest.(check int) "two distinct instances" 2 (List.length instances);
  let distinct =
    List.for_all
      (fun i ->
        List.length (List.filter (fun j -> Instance.equal i j) instances) = 1)
      instances
  in
  Alcotest.(check bool) "all distinct" true distinct

let test_comprehension_translation () =
  let env =
    parse_env
      {|
sig Node {
  edges: set Node
}
run { some edges } for 3
|}
  in
  (* the set of nodes with no outgoing edge, via a comprehension *)
  let f =
    Parser.parse_fmla "some { n: Node | no n.edges } && some edges"
  in
  match Solver.Analyzer.solve_fmla env (scope 3) f with
  | Sat inst ->
      Alcotest.(check bool) "instance satisfies the formula per evaluator"
        true
        (Eval.fmla env inst [] f)
  | Unsat | Unknown -> Alcotest.fail "expected an instance"

let test_fun_translation () =
  let env =
    parse_env
      {|
sig Person {
  parent: lone Person
}
fun ancestors[p: Person]: set Person {
  p.^parent
}
fact NoSelfAncestor {
  all p: Person | p not in ancestors[p]
}
assert Irreflexive {
  no p: Person | p in ancestors[p]
}
check Irreflexive for 3
run { some parent } for 3
|}
  in
  (match Solver.Analyzer.check_assert env (scope 3) "Irreflexive" with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "assertion should follow from the fact"
  | Unknown -> Alcotest.fail "unexpected unknown");
  match
    Solver.Analyzer.solve_fmla env (scope 3) (Parser.parse_fmla "some parent")
  with
  | Sat inst ->
      Alcotest.(check bool) "facts hold on extracted instance" true
        (Eval.facts_hold env inst)
  | Unsat | Unknown -> Alcotest.fail "expected an instance"

let test_let_translation () =
  let env =
    parse_env
      {|
sig Node {
  edges: set Node
}
fact F {
  all n: Node | let succ = n.edges | n not in succ
}
run { some edges } for 3
|}
  in
  match
    Solver.Analyzer.solve_fmla env (scope 3) (Parser.parse_fmla "some edges")
  with
  | Sat inst ->
      Alcotest.(check bool) "let-constrained facts hold" true
        (Eval.facts_hold env inst);
      Alcotest.(check bool) "no self loops" true
        (Instance.Tuple_set.for_all
           (fun t -> t.(0) <> t.(1))
           (Instance.field_tuples inst "edges"))
  | Unsat | Unknown -> Alcotest.fail "expected an instance"

let test_unknown_budget () =
  let env = Lazy.force graph_env in
  match
    Solver.Analyzer.solve_fmla ~max_conflicts:0 env (scope 4)
      (Parser.parse_fmla "some n: Node | Node in n.^edges && #edges = 4")
  with
  | Unknown | Unsat | Sat _ -> ()
(* any outcome is fine; this only exercises the budget path *)

let test_symmetry_breaking () =
  (* atom pools are consumed in index order: an instance with A$1 but not
     A$0 must never be produced *)
  let env = parse_env "sig A {} run { some A } for 3" in
  let instances =
    Solver.Analyzer.enumerate ~limit:50 env (scope 3) (Parser.parse_fmla "some A")
  in
  Alcotest.(check int) "three sizes" 3 (List.length instances);
  List.iter
    (fun inst ->
      let atoms = Instance.sig_atoms inst "A" in
      let expected = List.init (List.length atoms) (Instance.atom_name "A") in
      Alcotest.(check (list string)) "prefix of the pool" expected
        (List.sort compare atoms))
    instances

let test_contradictory_facts () =
  let env =
    parse_env "sig A {} fact F { some A } fact G { no A } run { no none } for 3"
  in
  match Solver.Analyzer.solve_fmla env (scope 3) Ast.True with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "contradictory facts must be unsat"
  | Unknown -> Alcotest.fail "unexpected unknown"

let test_one_sig_exactness () =
  let env = parse_env "one sig S {} sig A {} run { some A } for 3" in
  let instances =
    Solver.Analyzer.enumerate ~limit:50 env (scope 3) Ast.True
  in
  Alcotest.(check bool) "instances exist" true (instances <> []);
  List.iter
    (fun inst ->
      Alcotest.(check int) "S always a singleton" 1
        (List.length (Instance.sig_atoms inst "S")))
    instances

(* {2 Agreement property}

   For a fixed two-signature vocabulary, enumerate every instance of the
   facts within scope 2 (exhaustively), then compare: the model finder says
   Sat for a random formula iff some enumerated instance satisfies it per
   the reference evaluator. *)

let vocab_env =
  lazy
    (parse_env
       {|
sig Node {
  edges: set Node,
  tag: set Mark
}
sig Mark {}
fact SmallEdges { #edges <= 2 }
|})

let all_instances =
  lazy
    (let env = Lazy.force vocab_env in
     let instances =
       Solver.Analyzer.enumerate ~limit:100000 env (scope 2) Ast.True
     in
     (* the enumeration must be exhaustive for the property to be sound *)
     assert (List.length instances < 100000);
     instances)

let gen_vocab_fmla =
  let open QCheck2.Gen in
  let unary = oneofl [ Ast.Rel "Node"; Rel "Mark"; Univ; None_ ] in
  let binary = oneofl [ Ast.Rel "edges"; Rel "tag"; Iden ] in
  let rec e1 n =
    if n = 0 then unary
    else
      frequency
        [
          (2, unary);
          ( 2,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Union; Diff; Inter ])
              (e1 (n - 1)) (e1 (n - 1)) );
          (2, map2 (fun a b -> Ast.Binop (Join, a, b)) (e1 (n - 1)) (e2 (n - 1)));
          (1, map2 (fun s e -> Ast.Binop (Domrestr, s, e)) (e1 (n - 1)) (e1 (n - 1)));
        ]
  and e2 n =
    if n = 0 then binary
    else
      frequency
        [
          (3, binary);
          ( 2,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Union; Diff; Inter ])
              (e2 (n - 1)) (e2 (n - 1)) );
          (1, map (fun e -> Ast.Unop (Closure, e)) (fun_of_e2 (n - 1)));
          (1, map2 (fun a b -> Ast.Binop (Product, a, b)) (e1 (n - 1)) (e1 (n - 1)));
        ]
  and fun_of_e2 n = map (fun e -> e) (e2_edges n)
  and e2_edges n =
    (* closure only over homogeneous Node->Node expressions *)
    if n = 0 then oneofl [ Ast.Rel "edges"; Iden ]
    else
      frequency
        [
          (3, oneofl [ Ast.Rel "edges"; Iden ]);
          ( 1,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Union; Inter; Diff ])
              (e2_edges (n - 1)) (e2_edges (n - 1)) );
        ]
  in
  let cmp =
    let* op = oneofl [ Ast.Cin; Ceq ] in
    let* two = bool in
    if two then map2 (fun a b -> Ast.Cmp (op, a, b)) (e2 1) (e2 1)
    else map2 (fun a b -> Ast.Cmp (op, a, b)) (e1 1) (e1 1)
  in
  let multf =
    map2
      (fun m e -> Ast.Multf (m, e))
      (oneofl [ Ast.Fno; Fsome; Flone; Fone ])
      (oneof [ e1 1; e2 1 ])
  in
  let card =
    map3
      (fun op e k -> Ast.Card (op, e, k))
      (oneofl [ Ast.Ile; Ieq; Ige ])
      (oneof [ e1 1; e2 1 ])
      (int_bound 3)
  in
  let rec f n =
    if n = 0 then oneof [ cmp; multf; card ]
    else
      frequency
        [
          (3, oneof [ cmp; multf; card ]);
          (1, map (fun g -> Ast.Not g) (f (n - 1)));
          (2, map2 (fun a b -> Ast.And (a, b)) (f (n - 1)) (f (n - 1)));
          (2, map2 (fun a b -> Ast.Or (a, b)) (f (n - 1)) (f (n - 1)));
          ( 1,
            map3
              (fun q x body -> Ast.Quant (q, [ (x, Ast.Rel "Node") ], body))
              (oneofl [ Ast.Qall; Qsome; Qno; Qone ])
              (oneofl [ "x"; "y" ])
              (f (n - 1)) );
        ]
  in
  f 2

(* Matrix operations on constant matrices must coincide with the
   evaluator's tuple-set operations. *)
let prop_matrix_ops_agree =
  let open QCheck2 in
  let atoms = [| "a"; "b"; "c" |] in
  let gen_pairs =
    Gen.(
      list_size (int_bound 6)
        (map2 (fun i j -> [| atoms.(i mod 3); atoms.(j mod 3) |]) (int_bound 2) (int_bound 2)))
  in
  Test.make ~count:200 ~name:"matrix ops agree with tuple-set ops"
    Gen.(pair gen_pairs gen_pairs)
    (fun (ts1, ts2) ->
      let module M = Specrepair_solver.Matrix in
      let module F = Specrepair_sat.Formula in
      let set1 = TS.of_list ts1 and set2 = TS.of_list ts2 in
      let m1 = M.constant 2 (TS.elements set1) in
      let m2 = M.constant 2 (TS.elements set2) in
      let to_set m =
        List.fold_left
          (fun acc (t, f) -> if F.is_true f then TS.add t acc else acc)
          TS.empty (M.support m)
      in
      let check_op name mop sop =
        let got = to_set (mop m1 m2) in
        let want = sop set1 set2 in
        if TS.equal got want then true
        else QCheck2.Test.fail_reportf "%s disagrees" name
      in
      check_op "union" M.union TS.union
      && check_op "inter" M.inter TS.inter
      && check_op "diff" M.diff TS.diff
      &&
      (* unary: transpose and closure against the evaluator's versions *)
      let trans_got = to_set (M.transpose m1) in
      let trans_want = TS.map (fun t -> [| t.(1); t.(0) |]) set1 in
      TS.equal trans_got trans_want
      &&
      let inst =
        { Instance.sigs = [ ("A", Array.to_list atoms) ]; fields = [ ("r", set1) ] }
      in
      let env =
        Typecheck.check (Parser.parse "sig A { r: set A }")
      in
      let closure_want = Eval.expr env inst [] (Parser.parse_expr "^r") in
      TS.equal (to_set (M.closure m1)) closure_want)

(* {2 Oracle equivalence}

   The incremental oracle must be invisible: over the benchmark domains'
   injected faulty variants (the exact candidate population of the study),
   every verdict equals a fresh [Analyzer.run_command], asking again hits
   the cache with the same answer, and instance queries return the
   analyzer's instances verbatim. *)

let outcome_tag = function
  | Solver.Analyzer.Sat _ -> `Sat
  | Solver.Analyzer.Unsat -> `Unsat
  | Solver.Analyzer.Unknown -> `Unknown

let test_oracle_matches_fresh () =
  let domains =
    List.filteri (fun i _ -> i < 4) Specrepair_benchmarks.Domains.all
  in
  List.iter
    (fun d ->
      let base = Specrepair_benchmarks.Domains.env d in
      let oracle = Solver.Oracle.create base in
      let candidates =
        base
        :: List.filter_map
             (fun index ->
               match Specrepair_benchmarks.Fault.inject ~seed:3 d ~index with
               | inj -> (
                   match Typecheck.check_result inj.faulty with
                   | Ok env -> Some env
                   | Error _ -> None)
               | exception Failure _ -> None)
             (List.init 6 Fun.id)
      in
      List.iter
        (fun (env : Typecheck.env) ->
          Alcotest.(check bool)
            (d.name ^ ": variant compatible with its domain oracle")
            true
            (Solver.Oracle.compatible oracle env);
          List.iter
            (fun c ->
              let fresh = outcome_tag (Solver.Analyzer.run_command env c) in
              let incremental = Solver.Oracle.command_verdict oracle env c in
              let label verdict =
                match verdict with
                | `Sat -> "sat"
                | `Unsat -> "unsat"
                | `Unknown -> "unknown"
              in
              Alcotest.(check string)
                (d.name ^ ": incremental verdict = fresh analyzer")
                (label fresh) (label incremental);
              let cached = Solver.Oracle.command_verdict oracle env c in
              Alcotest.(check string)
                (d.name ^ ": cached = uncached")
                (label incremental) (label cached))
            env.spec.commands)
        candidates)
    domains

let test_oracle_instances_verbatim () =
  let d = List.hd Specrepair_benchmarks.Domains.all in
  let env = Specrepair_benchmarks.Domains.env d in
  let oracle = Solver.Oracle.create env in
  List.iter
    (fun (c : Ast.command) ->
      let fresh = Solver.Analyzer.run_command env c in
      let via_oracle = Solver.Oracle.run_command oracle env c in
      let again = Solver.Oracle.run_command oracle env c in
      let same a b =
        match (a, b) with
        | Solver.Analyzer.Sat i, Solver.Analyzer.Sat j -> Instance.equal i j
        | Solver.Analyzer.Unsat, Solver.Analyzer.Unsat -> true
        | Solver.Analyzer.Unknown, Solver.Analyzer.Unknown -> true
        | _ -> false
      in
      Alcotest.(check bool) "oracle instance = analyzer instance" true
        (same fresh via_oracle);
      Alcotest.(check bool) "memoized replay identical" true
        (same via_oracle again))
    env.spec.commands;
  let scope_ = scope 3 in
  let f = Ast.True in
  let fresh = Solver.Analyzer.enumerate ~limit:5 env scope_ f in
  let memo = Solver.Oracle.enumerate ~limit:5 oracle env scope_ f in
  Alcotest.(check bool) "enumeration identical, in order" true
    (List.length fresh = List.length memo
    && List.for_all2 Instance.equal fresh memo);
  let stats = Solver.Oracle.stats oracle in
  Alcotest.(check bool) "instance cache saw hits" true (stats.instance_hits > 0)

let prop_solver_agrees_with_eval =
  QCheck2.Test.make ~count:150 ~name:"model finder agrees with evaluator"
    ~print:Pretty.fmla_to_string gen_vocab_fmla
    (fun f ->
      let env = Lazy.force vocab_env in
      let instances = Lazy.force all_instances in
      let eval_sat =
        List.exists (fun inst -> Eval.fmla env inst [] f) instances
      in
      match Solver.Analyzer.solve_fmla env (scope 2) f with
      | Sat inst -> eval_sat && Eval.fmla env inst [] f && Eval.facts_hold env inst
      | Unsat -> not eval_sat
      | Unknown -> false)

let () =
  Alcotest.run "solver"
    [
      ( "analyzer",
        [
          Alcotest.test_case "run finds instance" `Quick test_run_sat;
          Alcotest.test_case "check finds counterexample" `Quick
            test_check_counterexample;
          Alcotest.test_case "check valid assertion" `Quick test_check_valid;
          Alcotest.test_case "one sig + hierarchy" `Quick
            test_one_sig_and_hierarchy;
          Alcotest.test_case "scope respected" `Quick test_scope_respected;
          Alcotest.test_case "scope override" `Quick test_scope_override;
          Alcotest.test_case "ternary field" `Quick test_ternary_field;
          Alcotest.test_case "enumeration" `Quick test_enumerate;
          Alcotest.test_case "comprehension" `Quick test_comprehension_translation;
          Alcotest.test_case "fun translation" `Quick test_fun_translation;
          Alcotest.test_case "let translation" `Quick test_let_translation;
          Alcotest.test_case "symmetry breaking" `Quick test_symmetry_breaking;
          Alcotest.test_case "contradictory facts" `Quick test_contradictory_facts;
          Alcotest.test_case "one sig exactness" `Quick test_one_sig_exactness;
          Alcotest.test_case "budget path" `Quick test_unknown_budget;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "verdicts match fresh analyzer" `Quick
            test_oracle_matches_fresh;
          Alcotest.test_case "instances served verbatim" `Quick
            test_oracle_instances_verbatim;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matrix_ops_agree;
          QCheck_alcotest.to_alcotest prop_solver_agrees_with_eval;
        ] );
    ]
