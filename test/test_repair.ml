(* Integration tests for the four traditional repair engines on specs with
   known injected faults. *)

open Specrepair_alloy
module Repair = Specrepair_repair
module Aunit = Specrepair_aunit.Aunit
module Solver = Specrepair_solver

let ground_truth_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  no n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

(* quantifier fault: "no n" became "all n" -- facts demand cycles *)
let faulty_quant_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

(* operator fault in the assertion: "not in" became "in" *)
let faulty_weak_fact_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  no n: Node | n in n.edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let env_of src = Typecheck.check (Parser.parse src)

let gt_env = lazy (env_of ground_truth_src)

let gt_tests =
  lazy
    (Aunit.generate ~per_kind:4 (Lazy.force gt_env)
       ~scope:Solver.Analyzer.default_scope)

let oracle env =
  Repair.Common.oracle_passes ~max_conflicts:20000
    (Repair.Session.create env) env

let test_faulty_fails_oracle () =
  Alcotest.(check bool) "ground truth passes oracle" true
    (oracle (Lazy.force gt_env));
  Alcotest.(check bool) "quant fault fails oracle" false
    (oracle (env_of faulty_quant_src));
  Alcotest.(check bool) "weak fact fails oracle" false
    (oracle (env_of faulty_weak_fact_src))

let repaired_env (r : Repair.Common.result) =
  match Repair.Common.env_of_spec r.final_spec with
  | Some env -> env
  | None -> Alcotest.fail "repair produced an ill-typed spec"

let test_arepair () =
  let tests = Lazy.force gt_tests in
  Alcotest.(check bool) "suite is non-trivial" true (List.length tests >= 4);
  let faulty = env_of faulty_quant_src in
  Alcotest.(check bool) "faulty spec fails some test" false
    (Aunit.all_pass faulty tests);
  let r = Repair.Arepair.repair faulty tests in
  Alcotest.(check bool) "arepair makes the suite pass" true r.repaired;
  Alcotest.(check bool) "final suite green" true
    (Aunit.all_pass (repaired_env r) tests)

let test_icebar () =
  let tests = Lazy.force gt_tests in
  let faulty = env_of faulty_quant_src in
  let r = Repair.Icebar.repair faulty tests in
  Alcotest.(check bool) "icebar repairs" true r.repaired;
  Alcotest.(check bool) "oracle passes after repair" true
    (oracle (repaired_env r))

let test_beafix () =
  let faulty = env_of faulty_quant_src in
  let r = Repair.Beafix.repair faulty in
  Alcotest.(check bool) "beafix repairs quant fault" true r.repaired;
  Alcotest.(check bool) "oracle passes after repair" true
    (oracle (repaired_env r))

let test_atr () =
  let faulty = env_of faulty_weak_fact_src in
  let r = Repair.Atr.repair faulty in
  Alcotest.(check bool) "atr repairs weak fact" true r.repaired;
  Alcotest.(check bool) "oracle passes after repair" true
    (oracle (repaired_env r))

let test_already_correct () =
  let env = Lazy.force gt_env in
  let r = Repair.Beafix.repair env in
  Alcotest.(check bool) "correct spec accepted unchanged" true
    (r.repaired && Ast.equal_spec r.final_spec env.spec);
  let r = Repair.Atr.repair env in
  Alcotest.(check bool) "atr accepts correct spec" true r.repaired

(* {2 Edge cases} *)

let test_zero_budget () =
  let faulty = env_of faulty_quant_src in
  let budget = { Repair.Common.default_budget with max_candidates = 0 } in
  let session () = Repair.Session.create ~budget faulty in
  let r = Repair.Beafix.repair ~session:(session ()) faulty in
  Alcotest.(check bool) "no candidates, no repair" false r.repaired;
  Alcotest.(check bool) "returns the input unchanged" true
    (Ast.equal_spec r.final_spec faulty.spec);
  let r = Repair.Atr.repair ~session:(session ()) faulty in
  Alcotest.(check bool) "atr with zero budget" false r.repaired

let test_arepair_empty_suite () =
  let faulty = env_of faulty_quant_src in
  let r = Repair.Arepair.repair faulty [] in
  (* an empty suite is vacuously green: ARepair declares success without
     touching the spec (the overfitting failure mode in its purest form) *)
  Alcotest.(check bool) "vacuous success" true r.repaired;
  Alcotest.(check bool) "spec untouched" true
    (Ast.equal_spec r.final_spec faulty.spec)

let test_icebar_without_checks () =
  (* no check commands: the property oracle degenerates; ICEBAR must not
     loop forever and must report honestly *)
  let env =
    env_of
      {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
run { some edges } for 3
|}
  in
  let tests = Lazy.force gt_tests in
  let r = Repair.Icebar.repair env tests in
  Alcotest.(check bool) "terminates" true (r.iterations <= 8);
  ignore r.repaired

let test_final_spec_always_typechecks () =
  let tests = Lazy.force gt_tests in
  List.iter
    (fun src ->
      let faulty = env_of src in
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (r.Repair.Common.tool ^ " final spec type-checks")
            true
            (Result.is_ok (Typecheck.check_result r.Repair.Common.final_spec)))
        [
          Repair.Arepair.repair faulty tests;
          Repair.Icebar.repair faulty tests;
          Repair.Beafix.repair faulty;
          Repair.Atr.repair faulty;
        ])
    [ faulty_quant_src; faulty_weak_fact_src ]

let test_stats_populated () =
  let faulty = env_of faulty_quant_src in
  let r = Repair.Beafix.repair faulty in
  Alcotest.(check bool) "candidates counted" true (r.candidates_tried >= 1);
  Alcotest.(check string) "tool name" "BeAFix" r.tool

let () =
  Alcotest.run "repair"
    [
      ( "engines",
        [
          Alcotest.test_case "faulty specs fail oracle" `Quick
            test_faulty_fails_oracle;
          Alcotest.test_case "arepair" `Quick test_arepair;
          Alcotest.test_case "icebar" `Quick test_icebar;
          Alcotest.test_case "beafix" `Quick test_beafix;
          Alcotest.test_case "atr" `Quick test_atr;
          Alcotest.test_case "already-correct accepted" `Quick
            test_already_correct;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "zero budget" `Quick test_zero_budget;
          Alcotest.test_case "empty suite" `Quick test_arepair_empty_suite;
          Alcotest.test_case "no checks" `Quick test_icebar_without_checks;
          Alcotest.test_case "final spec type-checks" `Quick
            test_final_spec_always_typechecks;
          Alcotest.test_case "stats" `Quick test_stats_populated;
        ] );
    ]
