(* Tests for the study's metrics: REP, Token Match (BLEU), Syntax Match
   (subtree kernel), and Pearson correlation. *)

open Specrepair_alloy
module Metrics = Specrepair_metrics

let gt_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  no n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let equivalent_src =
  (* same semantics, different syntax: all/not instead of no *)
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  all n: Node | n not in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let broken_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let overconstrained_src =
  (* makes the check pass vacuously but kills the run command *)
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  no edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let parse = Parser.parse

(* {2 REP} *)

let test_rep_identical () =
  Alcotest.(check bool) "spec equals itself" true
    (Metrics.Rep.rep ~ground_truth:(parse gt_src) ~candidate:(parse gt_src) ())

let test_rep_equivalent () =
  Alcotest.(check bool) "semantically equivalent repair accepted" true
    (Metrics.Rep.rep ~ground_truth:(parse gt_src)
       ~candidate:(parse equivalent_src) ())

let test_rep_broken () =
  Alcotest.(check bool) "faulty spec rejected" false
    (Metrics.Rep.rep ~ground_truth:(parse gt_src) ~candidate:(parse broken_src) ())

let test_rep_overconstrained () =
  Alcotest.(check bool) "overconstrained repair rejected via run command" false
    (Metrics.Rep.rep ~ground_truth:(parse gt_src)
       ~candidate:(parse overconstrained_src) ())

let test_equivalence_extension () =
  let scope = { Specrepair_solver.Bounds.default = 3; overrides = [] } in
  Alcotest.(check (option bool))
    "equivalent facts" (Some true)
    (Metrics.Rep.equivalent_constraints ~scope ~ground_truth:(parse gt_src)
       ~candidate:(parse equivalent_src) ());
  Alcotest.(check (option bool))
    "inequivalent facts" (Some false)
    (Metrics.Rep.equivalent_constraints ~scope ~ground_truth:(parse gt_src)
       ~candidate:(parse broken_src) ())

(* {2 BLEU / Token Match} *)

let test_bleu_identity () =
  let text = Pretty.spec_to_string (parse gt_src) in
  let v = Metrics.Bleu.token_match ~reference:text ~candidate:text in
  Alcotest.(check (float 1e-9)) "identical text scores 1" 1.0 v

let test_bleu_monotone () =
  let reference = Pretty.spec_to_string (parse gt_src) in
  let close = Pretty.spec_to_string (parse broken_src) in
  let far = "pred nothing { some none }" in
  let v_close = Metrics.Bleu.token_match ~reference ~candidate:close in
  let v_far = Metrics.Bleu.token_match ~reference ~candidate:far in
  Alcotest.(check bool) "close > far" true (v_close > v_far);
  Alcotest.(check bool) "close below 1" true (v_close < 1.0);
  Alcotest.(check bool) "bounded" true (v_far >= 0. && v_close <= 1.)

let test_bleu_ngram_precision () =
  let p, m, t =
    Metrics.Bleu.ngram_precision ~n:2
      ~reference:[ "a"; "b"; "c"; "d" ]
      ~candidate:[ "a"; "b"; "c"; "x" ]
  in
  Alcotest.(check int) "bigram matches" 2 m;
  Alcotest.(check int) "bigram total" 3 t;
  Alcotest.(check (float 1e-9)) "precision" (2. /. 3.) p

let test_bleu_clipping () =
  (* candidate repeats a reference unigram; clipped by reference count *)
  let p, m, t =
    Metrics.Bleu.ngram_precision ~n:1 ~reference:[ "a"; "b" ]
      ~candidate:[ "a"; "a"; "a" ]
  in
  Alcotest.(check int) "clipped matches" 1 m;
  Alcotest.(check int) "total" 3 t;
  Alcotest.(check (float 1e-9)) "precision" (1. /. 3.) p

(* {2 Tree kernel / Syntax Match} *)

let test_sm_identity () =
  let spec = parse gt_src in
  Alcotest.(check (float 1e-9)) "identical trees score 1" 1.0
    (Metrics.Tree_kernel.syntax_match spec spec)

let test_sm_orders () =
  let gt = parse gt_src in
  let near = parse broken_src in
  let far = parse "sig Completely {} pred different { some Completely }" in
  let s_near = Metrics.Tree_kernel.syntax_match gt near in
  let s_far = Metrics.Tree_kernel.syntax_match gt far in
  Alcotest.(check bool) "near > far" true (s_near > s_far);
  Alcotest.(check bool) "near < 1" true (s_near < 1.0);
  Alcotest.(check bool) "in range" true (s_far >= 0. && s_near <= 1.)

let test_sm_ignores_formatting () =
  let a = parse gt_src in
  let b = parse ("  " ^ String.concat "\n\n" (String.split_on_char '\n' gt_src)) in
  Alcotest.(check (float 1e-9)) "whitespace irrelevant" 1.0
    (Metrics.Tree_kernel.syntax_match a b)

(* {2 Pearson} *)

let test_pearson_perfect () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  let r, p = Metrics.Pearson.correlate xs ys in
  Alcotest.(check (float 1e-9)) "r = 1" 1.0 r;
  Alcotest.(check bool) "significant" true (p < 0.01)

let test_pearson_anticorrelated () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = Array.map (fun x -> -.x) xs in
  Alcotest.(check (float 1e-9)) "r = -1" (-1.0) (Metrics.Pearson.r xs ys)

let test_pearson_uncorrelated () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = [| 1.; -1.; 1.; -1. |] in
  let r, p = Metrics.Pearson.correlate xs ys in
  Alcotest.(check bool) "weak r" true (Float.abs r < 0.6);
  Alcotest.(check bool) "not significant" true (p > 0.05)

let test_pearson_degenerate () =
  Alcotest.(check (float 1e-9)) "constant vector" 0.0
    (Metrics.Pearson.r [| 1.; 1.; 1. |] [| 1.; 2.; 3. |])

let test_pearson_pvalue_known () =
  (* r = 0.9, n = 10 -> p ~ 0.000386 (two-tailed) *)
  let p = Metrics.Pearson.p_value ~r:0.9 ~n:10 in
  Alcotest.(check bool) "p in expected range" true (p > 3e-4 && p < 5e-4)

(* {2 Properties} *)

let gen_tokens =
  QCheck2.Gen.(list_size (int_range 1 30) (oneofl [ "sig"; "A"; "{"; "}"; "fact"; "some"; "no"; "edges"; "in" ]))

let prop_bleu_bounds =
  QCheck2.Test.make ~count:300 ~name:"BLEU bounded and exact on identity"
    QCheck2.Gen.(pair gen_tokens gen_tokens)
    (fun (a, b) ->
      let v = Metrics.Bleu.sentence_bleu ~reference:a ~candidate:b () in
      let self = Metrics.Bleu.sentence_bleu ~reference:a ~candidate:a () in
      v >= 0. && v <= 1.0000001 && abs_float (self -. 1.0) < 1e-9)

let prop_kernel_bounds =
  (* similarity over random small formula trees stays in [0,1] and is 1 on
     identical trees *)
  let gen_f =
    QCheck2.Gen.(
      let atom = oneofl [ "some A"; "no B"; "A in B"; "one C.f" ] in
      let* a = atom in
      let* b = atom in
      let* c = atom in
      oneofl
        [
          Printf.sprintf "%s && %s" a b;
          Printf.sprintf "%s || (%s && %s)" a b c;
          Printf.sprintf "all x: A | %s => %s" b c;
          a;
        ])
  in
  QCheck2.Test.make ~count:200 ~name:"tree kernel bounded, 1 on identity"
    QCheck2.Gen.(pair gen_f gen_f)
    (fun (sa, sb) ->
      let ta = Metrics.Tree_kernel.of_fmla (Parser.parse_fmla sa) in
      let tb = Metrics.Tree_kernel.of_fmla (Parser.parse_fmla sb) in
      let v = Metrics.Tree_kernel.similarity ta tb in
      let self = Metrics.Tree_kernel.similarity ta ta in
      v >= -1e-9 && v <= 1.0000001 && abs_float (self -. 1.0) < 1e-9)

let prop_pearson_bounds =
  QCheck2.Test.make ~count:300 ~name:"pearson in [-1, 1]"
    QCheck2.Gen.(
      pair
        (array_size (int_range 2 20) (float_bound_exclusive 10.))
        (array_size (int_range 2 20) (float_bound_exclusive 10.)))
    (fun (xs, ys) ->
      let n = min (Array.length xs) (Array.length ys) in
      let xs = Array.sub xs 0 n and ys = Array.sub ys 0 n in
      let r = Metrics.Pearson.r xs ys in
      r >= -1.0000001 && r <= 1.0000001)

(* {2 Properties over fuzz-generated specifications}

   The hand-rolled QCheck generators above cover token lists and tiny
   formula strings; these drive the metrics with whole well-typed
   specifications from the fuzzing subsystem's generators. *)

module Fuzz = Specrepair_fuzz

let gen_spec seed =
  let env =
    Fuzz.Gen.spec ~with_commands:true
      (Fuzz.Rng.of_context ~seed [ "metrics" ])
  in
  env.Typecheck.spec

let test_rep_reflexive_generated () =
  for seed = 0 to 14 do
    let spec = gen_spec seed in
    Alcotest.(check int)
      (Printf.sprintf "REP(x,x) = 1 (seed %d)" seed)
      1
      (Metrics.Rep.rep_score ~ground_truth:spec ~candidate:spec ())
  done

let test_bleu_bounds_generated () =
  for seed = 0 to 14 do
    let a = Pretty.spec_to_string (gen_spec seed) in
    let b = Pretty.spec_to_string (gen_spec (seed + 100)) in
    let v = Metrics.Bleu.token_match ~reference:a ~candidate:b in
    Alcotest.(check bool)
      (Printf.sprintf "BLEU in [0,1] (seed %d)" seed)
      true
      (v >= 0. && v <= 1.0000001);
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "BLEU identity (seed %d)" seed)
      1.0
      (Metrics.Bleu.token_match ~reference:a ~candidate:a)
  done

let test_kernel_nonneg_generated () =
  for seed = 0 to 14 do
    let a = gen_spec seed and b = gen_spec (seed + 100) in
    let v = Metrics.Tree_kernel.syntax_match a b in
    Alcotest.(check bool)
      (Printf.sprintf "kernel non-negative and bounded (seed %d)" seed)
      true
      (v >= 0. && v <= 1.0000001);
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "kernel identity (seed %d)" seed)
      1.0
      (Metrics.Tree_kernel.syntax_match a a)
  done

let test_pearson_identical_generated () =
  for seed = 0 to 14 do
    let rng = Fuzz.Rng.of_context ~seed [ "pearson" ] in
    let n = 2 + Fuzz.Rng.int rng 20 in
    (* index offset keeps the vector non-constant, so r is defined *)
    let xs =
      Array.init n (fun i ->
          float_of_int (i + Fuzz.Rng.int rng 100) /. 7.)
    in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "r(x,x) = 1 (seed %d)" seed)
      1.0
      (Metrics.Pearson.r xs xs)
  done

let () =
  Alcotest.run "metrics"
    [
      ( "rep",
        [
          Alcotest.test_case "identical" `Quick test_rep_identical;
          Alcotest.test_case "equivalent" `Quick test_rep_equivalent;
          Alcotest.test_case "broken" `Quick test_rep_broken;
          Alcotest.test_case "overconstrained" `Quick test_rep_overconstrained;
          Alcotest.test_case "equivalence extension" `Quick
            test_equivalence_extension;
        ] );
      ( "bleu",
        [
          Alcotest.test_case "identity" `Quick test_bleu_identity;
          Alcotest.test_case "monotone" `Quick test_bleu_monotone;
          Alcotest.test_case "ngram precision" `Quick test_bleu_ngram_precision;
          Alcotest.test_case "clipping" `Quick test_bleu_clipping;
        ] );
      ( "tree kernel",
        [
          Alcotest.test_case "identity" `Quick test_sm_identity;
          Alcotest.test_case "ordering" `Quick test_sm_orders;
          Alcotest.test_case "formatting" `Quick test_sm_ignores_formatting;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bleu_bounds;
          QCheck_alcotest.to_alcotest prop_kernel_bounds;
          QCheck_alcotest.to_alcotest prop_pearson_bounds;
        ] );
      ( "generated specs",
        [
          Alcotest.test_case "REP reflexive" `Quick test_rep_reflexive_generated;
          Alcotest.test_case "BLEU bounded" `Quick test_bleu_bounds_generated;
          Alcotest.test_case "tree kernel non-negative" `Quick
            test_kernel_nonneg_generated;
          Alcotest.test_case "pearson identity" `Quick
            test_pearson_identical_generated;
        ] );
      ( "pearson",
        [
          Alcotest.test_case "perfect" `Quick test_pearson_perfect;
          Alcotest.test_case "anticorrelated" `Quick test_pearson_anticorrelated;
          Alcotest.test_case "uncorrelated" `Quick test_pearson_uncorrelated;
          Alcotest.test_case "degenerate" `Quick test_pearson_degenerate;
          Alcotest.test_case "p-value" `Quick test_pearson_pvalue_known;
        ] );
    ]
