(* Tests for the simulated LLM stack: deterministic RNG, prompt rendering,
   response extraction, proposal sampling, and the two pipelines. *)

open Specrepair_alloy
module Llm = Specrepair_llm
module Rng = Llm.Rng
module Location = Specrepair_mutation.Location

let faulty_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let task =
  lazy
    (Llm.Task.make ~spec_id:"llmtest_0" ~domain:"graphs"
       ~faulty:(Parser.parse faulty_src)
       ~fault_sites:[ Location.Fact_site 0 ]
       ~fault_paths:[ (Location.Fact_site 0, []) ]
       ~fault_classes:[ "quant-swap" ]
       ~fix_description:"the quantifier in fact#0 is wrong"
       ~check_names:[ "NoLoop" ] ())

(* {2 RNG} *)

let test_rng_deterministic () =
  let a = Rng.of_context ~seed:42 [ "x"; "y" ] in
  let b = Rng.of_context ~seed:42 [ "x"; "y" ] in
  let xs = List.init 10 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "same context, same stream" true (xs = ys)

let test_rng_context_sensitivity () =
  let a = Rng.of_context ~seed:42 [ "x" ] in
  let b = Rng.of_context ~seed:42 [ "y" ] in
  Alcotest.(check bool) "different context, different stream" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_float_range () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range"
  done

let test_choose_weighted () =
  let rng = Rng.create 3L in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 3000 do
    match Rng.choose_weighted rng [ ("a", 1.); ("b", 9.) ] with
    | Some x ->
        Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
    | None -> Alcotest.fail "unexpected None"
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  let b = Option.value ~default:0 (Hashtbl.find_opt counts "b") in
  Alcotest.(check bool) "ratio roughly 1:9" true (b > 6 * a);
  Alcotest.(check (option string)) "empty list" None
    (Rng.choose_weighted rng []);
  Alcotest.(check (option string)) "all-zero weights" None
    (Rng.choose_weighted rng [ ("a", 0.) ])

let test_shuffle_permutes () =
  let rng = Rng.create 11L in
  let xs = List.init 20 Fun.id in
  let ys = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same elements" xs (List.sort compare ys);
  Alcotest.(check bool) "different order (overwhelmingly likely)" true (xs <> ys)

(* {2 Prompt and extraction} *)

let test_prompt_renders_hints () =
  let p = Llm.Prompt.single (Lazy.force task) Llm.Prompt.SLoc_fix in
  let text = Llm.Prompt.render p in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions location" true (contains "fact#0");
  Alcotest.(check bool) "mentions fix" true (contains "quantifier");
  Alcotest.(check bool) "includes the spec" true (contains "sig Node")

let test_extract_fenced () =
  let response =
    "Sure! Here is the fix:\n```alloy\nsig A {}\nfact F { some A }\n```\nDone."
  in
  match Llm.Extract.spec_of_response response with
  | Some spec -> Alcotest.(check int) "one sig" 1 (List.length spec.sigs)
  | None -> Alcotest.fail "extraction failed"

let test_extract_bare () =
  let response = "sig A {}\nfact F { some A }" in
  Alcotest.(check bool) "keyword fallback works" true
    (Llm.Extract.spec_of_response response <> None)

let test_extract_garbage () =
  Alcotest.(check bool) "prose only" true
    (Llm.Extract.spec_of_response "I cannot help with that." = None);
  Alcotest.(check bool) "truncated spec" true
    (Llm.Extract.spec_of_response "```alloy\nsig A {\n```" = None)

let test_code_blocks () =
  let blocks = Llm.Extract.code_blocks "a\n```\nX\n```\nmid\n```\nY\nZ\n```\n" in
  Alcotest.(check (list string)) "two blocks" [ "X"; "Y\nZ" ] blocks

(* {2 Model} *)

let test_propose_well_typed () =
  let rng = Rng.of_context ~seed:1 [ "propose" ] in
  for _ = 1 to 20 do
    match
      Llm.Model.propose Llm.Model.gpt4 ~rng ~hints:[] Llm.Model.no_guidance
        (Lazy.force task)
    with
    | Some spec ->
        Alcotest.(check bool) "proposal type-checks" true
          (Result.is_ok (Typecheck.check_result spec));
        Alcotest.(check bool) "proposal differs from faulty" false
          (Ast.equal_spec spec (Lazy.force task).faulty)
    | None -> ()
  done

let test_propose_respects_blocklist () =
  let rng = Rng.of_context ~seed:2 [ "blocklist" ] in
  (* collect some proposals, then block them and ensure they don't recur *)
  let seen = ref [] in
  for _ = 1 to 10 do
    match
      Llm.Model.propose Llm.Model.gpt4 ~rng ~hints:[] Llm.Model.no_guidance
        (Lazy.force task)
    with
    | Some s -> if not (List.exists (Ast.equal_spec s) !seen) then seen := s :: !seen
    | None -> ()
  done;
  let guidance = { Llm.Model.no_guidance with blocked = !seen } in
  for _ = 1 to 20 do
    match
      Llm.Model.propose Llm.Model.gpt4 ~rng ~hints:[] guidance (Lazy.force task)
    with
    | Some s ->
        Alcotest.(check bool) "not in blocklist" false
          (List.exists (Ast.equal_spec s) !seen)
    | None -> ()
  done

let test_loc_hint_focuses () =
  (* with the Loc hint, the overwhelming majority of proposals should touch
     the hinted site *)
  let rng = Rng.of_context ~seed:3 [ "loc-hint" ] in
  let faulty = (Lazy.force task).faulty in
  let fact_body = Location.body faulty (Location.Fact_site 0) in
  let hits = ref 0 and total = ref 0 in
  for _ = 1 to 40 do
    match
      Llm.Model.propose Llm.Model.gpt4 ~rng ~hints:[ Llm.Prompt.Loc ]
        Llm.Model.no_guidance (Lazy.force task)
    with
    | Some s ->
        incr total;
        if not (Ast.equal_fmla (Location.body s (Location.Fact_site 0)) fact_body)
        then incr hits
    | None -> ()
  done;
  Alcotest.(check bool) "most proposals edit the hinted site" true
    (!total > 0 && float_of_int !hits /. float_of_int !total > 0.6)

(* {2 Pipelines} *)

let session_for ~seed () =
  Specrepair_repair.Session.for_spec ~seed (Lazy.force task).Llm.Task.faulty

let test_single_round_deterministic () =
  let r1 =
    Llm.Single_round.repair ~session:(session_for ~seed:5 ())
      (Lazy.force task) Llm.Prompt.SLoc
  in
  let r2 =
    Llm.Single_round.repair ~session:(session_for ~seed:5 ())
      (Lazy.force task) Llm.Prompt.SLoc
  in
  Alcotest.(check bool) "same seed, same outcome" true
    (Ast.equal_spec r1.final_spec r2.final_spec);
  let r3 =
    Llm.Single_round.repair ~session:(session_for ~seed:6 ())
      (Lazy.force task) Llm.Prompt.SLoc
  in
  ignore r3 (* may or may not differ; just ensure it runs *)

let test_multi_round_repairs_simple_fault () =
  let r =
    Llm.Multi_round.repair ~session:(session_for ~seed:42 ())
      (Lazy.force task) Llm.Multi_round.Generic
  in
  Alcotest.(check bool) "multi-round fixes the quant fault" true r.repaired;
  match Specrepair_repair.Common.env_of_spec r.final_spec with
  | Some env ->
      Alcotest.(check bool) "oracle passes" true
        (Specrepair_repair.Common.oracle_passes
           (Specrepair_repair.Session.create env) env)
  | None -> Alcotest.fail "final spec ill-typed"

let test_trace_called () =
  let calls = ref 0 in
  let _ =
    Llm.Multi_round.repair ~session:(session_for ~seed:9 ())
      ~trace:(fun ~round:_ ~prompt:_ ~response:_ -> incr calls)
      (Lazy.force task) Llm.Multi_round.No_feedback
  in
  Alcotest.(check bool) "trace observed at least one round" true (!calls >= 1)

let test_malformed_channel_exists () =
  (* over many seeds, the malformed-output channel must fire sometimes and
     extraction must consequently fail *)
  let failures = ref 0 in
  for seed = 0 to 60 do
    let rng = Rng.of_context ~seed [ "malformed-scan" ] in
    let prompt = Llm.Prompt.single (Lazy.force task) Llm.Prompt.SNone in
    let response = Llm.Model.respond Llm.Model.gpt4 ~rng Llm.Model.no_guidance prompt in
    if Llm.Extract.spec_of_response response = None then incr failures
  done;
  Alcotest.(check bool) "some responses are unusable" true (!failures >= 1);
  Alcotest.(check bool) "most responses are usable" true (!failures <= 30)

let test_profiles () =
  Alcotest.(check string) "gpt4 name" "gpt-4" Llm.Model.gpt4.name;
  Alcotest.(check string) "gpt35 name" "gpt-3.5" Llm.Model.gpt35.name;
  Alcotest.(check bool) "gpt35 flatter" true
    (Llm.Model.gpt35.temperature > Llm.Model.gpt4.temperature);
  Alcotest.(check bool) "gpt35 weaker self-check" true
    (Llm.Model.gpt35.self_check_samples < Llm.Model.gpt4.self_check_samples);
  Alcotest.(check bool) "gpt35 more malformed output" true
    (Llm.Model.gpt35.malformed_rate > Llm.Model.gpt4.malformed_rate)

let test_tool_names () =
  Alcotest.(check string) "single name" "Single-Round_Loc+Fix"
    (Llm.Single_round.tool_name Llm.Prompt.SLoc_fix);
  Alcotest.(check string) "multi name" "Multi-Round_None"
    (Llm.Multi_round.tool_name Llm.Multi_round.No_feedback)

let () =
  Alcotest.run "llm"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "context-sensitive" `Quick test_rng_context_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "weighted choice" `Quick test_choose_weighted;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
        ] );
      ( "prompt+extract",
        [
          Alcotest.test_case "hints rendered" `Quick test_prompt_renders_hints;
          Alcotest.test_case "fenced extraction" `Quick test_extract_fenced;
          Alcotest.test_case "keyword fallback" `Quick test_extract_bare;
          Alcotest.test_case "garbage rejected" `Quick test_extract_garbage;
          Alcotest.test_case "code blocks" `Quick test_code_blocks;
        ] );
      ( "model",
        [
          Alcotest.test_case "proposals well-typed" `Quick test_propose_well_typed;
          Alcotest.test_case "blocklist respected" `Quick
            test_propose_respects_blocklist;
          Alcotest.test_case "loc hint focuses" `Quick test_loc_hint_focuses;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "single-round deterministic" `Quick
            test_single_round_deterministic;
          Alcotest.test_case "multi-round repairs" `Quick
            test_multi_round_repairs_simple_fault;
          Alcotest.test_case "tool names" `Quick test_tool_names;
          Alcotest.test_case "model profiles" `Quick test_profiles;
          Alcotest.test_case "trace callback" `Quick test_trace_called;
          Alcotest.test_case "malformed channel" `Quick test_malformed_channel_exists;
        ] );
    ]
