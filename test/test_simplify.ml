(* Tests for the proof-preserving simplifier: transformation correctness,
   verdict equivalence against brute force, model reconstruction, and the
   DRUP checkability of every emitted step. *)

open Specrepair_sat

let lit v sign = if sign then Lit.pos v else Lit.neg v

let brute_force n clauses =
  let rec try_assignment mask =
    if mask >= 1 lsl n then false
    else
      let value l =
        let v = Lit.var l in
        let b = mask land (1 lsl v) <> 0 in
        if Lit.sign l then b else not b
      in
      if List.for_all (fun c -> List.exists value c) clauses then true
      else try_assignment (mask + 1)
  in
  try_assignment 0

let model_satisfies model clauses =
  let value l =
    let b = Lit.var l < Array.length model && model.(Lit.var l) in
    if Lit.sign l then b else not b
  in
  List.for_all (fun c -> List.exists value c) clauses

(* Record premises + steps and run [Simplify.solve]; return both. *)
let solve_recorded ?config (cnf : Dimacs.cnf) =
  let r = Proof.recorder () in
  let sink = Proof.recorder_sink r in
  List.iter (fun c -> sink (Proof.Input (Array.of_list c))) cnf.clauses;
  let res = Simplify.solve ?config ~proof:sink cnf in
  (res, r)

let check_proof msg (res : Simplify.solve_result) r =
  let premises = Proof.inputs r in
  let steps = List.to_seq (Proof.steps r) in
  let verdict =
    match res.result with
    | Solver.Unsat -> Drat.check ~premises steps
    | _ -> Drat.check ~require_conflict:false ~premises steps
  in
  match verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: checker rejected the proof: %s" msg e

(* {2 Transformation unit tests} *)

let test_subsumption () =
  let clauses =
    [
      [ lit 0 true; lit 1 true ];
      [ lit 0 true; lit 1 true; lit 2 true ];  (* superset *)
      [ lit 0 true; lit 1 true ];  (* duplicate *)
      [ lit 2 true; lit 3 false ];
    ]
  in
  let out = Simplify.simplify { Dimacs.num_vars = 4; clauses } in
  Alcotest.(check bool) "not unsat" false out.unsat;
  Alcotest.(check bool)
    "subsumption fired" true (out.stats.Simplify.subsumed >= 2);
  Alcotest.(check bool)
    "clause count shrank" true
    (List.length out.cnf.Dimacs.clauses < List.length clauses)

let test_self_subsumption () =
  (* (a | b) and (~a | b | c): resolving on a strengthens the second
     clause to (b | c) *)
  let clauses =
    [ [ lit 0 true; lit 1 true ]; [ lit 0 false; lit 1 true; lit 2 true ] ]
  in
  let out = Simplify.simplify { Dimacs.num_vars = 3; clauses } in
  Alcotest.(check bool)
    "strengthened" true (out.stats.Simplify.strengthened >= 1);
  Alcotest.(check bool)
    "no clause still mentions ~a with b" true
    (List.for_all
       (fun c -> not (List.mem (lit 0 false) c && List.mem (lit 1 true) c))
       out.cnf.Dimacs.clauses)

let test_unsat_during_simplification () =
  let cnf =
    { Dimacs.num_vars = 2; clauses = [ [ lit 0 true ]; [ lit 0 false ] ] }
  in
  let res, r = solve_recorded cnf in
  (match res.result with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat");
  check_proof "unit conflict" res r

let test_bve_reconstruction () =
  (* a chain x0 -> x1 -> x2 -> x3: interior variables eliminate away and
     must be restored to values satisfying the original implications *)
  let clauses =
    [
      [ lit 0 true ];
      [ lit 0 false; lit 1 true ];
      [ lit 1 false; lit 2 true ];
      [ lit 2 false; lit 3 true ];
    ]
  in
  let cnf = { Dimacs.num_vars = 4; clauses } in
  let res, r = solve_recorded cnf in
  (match res.result with
  | Solver.Sat -> ()
  | _ -> Alcotest.fail "expected sat");
  let model = Option.get res.model in
  Alcotest.(check bool)
    "reconstructed model satisfies the original clauses" true
    (model_satisfies model clauses);
  check_proof "bve chain" res r

let test_frozen_variables_survive () =
  let clauses =
    [ [ lit 0 true; lit 1 true ]; [ lit 0 false; lit 2 true ] ] in
  let out =
    Simplify.simplify ~frozen:[ 0; 1; 2 ] { Dimacs.num_vars = 3; clauses }
  in
  Alcotest.(check int) "nothing eliminated" 0 out.stats.Simplify.eliminated

let test_redundant_pigeonhole_shrinks () =
  let base = Hard_cnf.pigeonhole 4 in
  let padded = Hard_cnf.with_redundancy ~seed:11 ~copies:3 base in
  let out = Simplify.simplify padded in
  Alcotest.(check bool) "not refuted outright" true (not out.unsat || true);
  Alcotest.(check bool)
    (Printf.sprintf "clauses %d -> %d"
       (List.length padded.Dimacs.clauses)
       (List.length out.cnf.Dimacs.clauses))
    true
    (out.unsat
    || List.length out.cnf.Dimacs.clauses
       < List.length padded.Dimacs.clauses / 2)

let test_certified_unsat_pigeonhole () =
  let cnf = Hard_cnf.pigeonhole 4 in
  let res, r = solve_recorded cnf in
  (match res.result with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "php(5,4) must be unsat");
  check_proof "pigeonhole certified through simplification" res r

let test_inprocessing_rounds () =
  (* tiny chunks force Unknown rounds, unit harvesting and re-simplification;
     the stitched proof must still check *)
  let cnf = Hard_cnf.pigeonhole 5 in
  let config = { Simplify.default with first_chunk = 5; inprocess_rounds = 4 } in
  let res, r = solve_recorded ~config cnf in
  (match res.result with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "php(6,5) must be unsat");
  check_proof "multi-round inprocessing" res r

let test_budget_respected () =
  let cnf = Hard_cnf.pigeonhole 8 in
  let res =
    Simplify.solve ~max_conflicts:20
      { cnf with Dimacs.clauses = cnf.Dimacs.clauses }
  in
  match res.result with
  | Solver.Unknown | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "php(9,8) cannot be sat"

(* {2 Random CNF properties} *)

let gen_cnf =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* n_clauses = int_range 1 30 in
    let gen_lit = map2 (fun v s -> (v mod n, s)) (int_bound (n - 1)) bool in
    let gen_clause = list_size (int_range 1 4) gen_lit in
    let* clauses = list_repeat n_clauses gen_clause in
    return (n, clauses))

let prop_simplified_agrees_with_brute_force =
  QCheck2.Test.make ~count:300
    ~name:"simplified solving agrees with brute force; proofs check" gen_cnf
    (fun (n, raw) ->
      let clauses = List.map (List.map (fun (v, s) -> lit v s)) raw in
      let cnf = { Dimacs.num_vars = n; clauses } in
      let expected = brute_force n clauses in
      let res, r = solve_recorded cnf in
      let verdict_ok =
        match res.result with
        | Solver.Sat -> expected
        | Solver.Unsat -> not expected
        | Solver.Unknown -> false
      in
      let model_ok =
        match (res.result, res.model) with
        | Solver.Sat, Some m -> model_satisfies m clauses
        | Solver.Sat, None -> false
        | _ -> true
      in
      let proof_ok =
        let premises = Proof.inputs r in
        let steps = List.to_seq (Proof.steps r) in
        match res.result with
        | Solver.Unsat -> Drat.check ~premises steps = Ok ()
        | _ -> Drat.check ~require_conflict:false ~premises steps = Ok ()
      in
      verdict_ok && model_ok && proof_ok)

let prop_simplify_preserves_satisfiability =
  QCheck2.Test.make ~count:300
    ~name:"simplify output equisatisfiable; reconstruction lifts models"
    gen_cnf (fun (n, raw) ->
      let clauses = List.map (List.map (fun (v, s) -> lit v s)) raw in
      let cnf = { Dimacs.num_vars = n; clauses } in
      let expected = brute_force n clauses in
      let out = Simplify.simplify cnf in
      if out.unsat then not expected
      else begin
        let s = Solver.create () in
        Dimacs.load_into s out.cnf;
        match Solver.solve s with
        | Solver.Sat ->
            expected
            && model_satisfies (out.reconstruct (Solver.model s)) clauses
        | Solver.Unsat -> not expected
        | Solver.Unknown -> false
      end)

let () =
  Alcotest.run "simplify"
    [
      ( "transformations",
        [
          Alcotest.test_case "subsumption" `Quick test_subsumption;
          Alcotest.test_case "self-subsumption" `Quick test_self_subsumption;
          Alcotest.test_case "unsat during simplification" `Quick
            test_unsat_during_simplification;
          Alcotest.test_case "bve model reconstruction" `Quick
            test_bve_reconstruction;
          Alcotest.test_case "frozen variables survive" `Quick
            test_frozen_variables_survive;
          Alcotest.test_case "redundant pigeonhole shrinks" `Quick
            test_redundant_pigeonhole_shrinks;
        ] );
      ( "proofs",
        [
          Alcotest.test_case "certified unsat pigeonhole" `Quick
            test_certified_unsat_pigeonhole;
          Alcotest.test_case "multi-round inprocessing" `Quick
            test_inprocessing_rounds;
          Alcotest.test_case "conflict budget" `Quick test_budget_respected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_simplified_agrees_with_brute_force;
          QCheck_alcotest.to_alcotest prop_simplify_preserves_satisfiability;
        ] );
    ]
