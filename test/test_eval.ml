(* Tests for the study runner and the table/figure renderers. *)

module B = Specrepair_benchmarks
module Eval = Specrepair_eval
module Llm = Specrepair_llm

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

(* a small study: 2 variants per domain, 4 techniques *)
let mini_techniques =
  [
    Eval.Technique.ATR;
    Eval.Technique.BeAFix;
    Eval.Technique.Single (Llm.Prompt.SLoc, Llm.Model.gpt4);
    Eval.Technique.Multi (Llm.Multi_round.No_feedback, Llm.Model.gpt4);
  ]

let mini_results =
  lazy
    (let variants = B.Generate.sample ~per_domain:2 () in
     Eval.Study.run ~techniques:mini_techniques variants)

let test_run_shape () =
  let rs = Lazy.force mini_results in
  let n_variants = List.length (B.Generate.sample ~per_domain:2 ()) in
  Alcotest.(check int) "one row per (variant, technique)"
    (n_variants * List.length mini_techniques)
    (List.length rs);
  List.iter
    (fun (r : Eval.Study.spec_result) ->
      Alcotest.(check bool) "rep is 0/1" true (r.rep = 0 || r.rep = 1);
      Alcotest.(check bool) "tm in range" true (r.tm >= 0. && r.tm <= 1.0001);
      Alcotest.(check bool) "sm in range" true (r.sm >= 0. && r.sm <= 1.0001))
    rs

let test_repaired_high_similarity () =
  (* successful repairs should look close to the ground truth *)
  let rs = Lazy.force mini_results in
  let repaired = List.filter (fun (r : Eval.Study.spec_result) -> r.rep = 1) rs in
  let mean f xs =
    List.fold_left (fun a x -> a +. f x) 0. xs /. float_of_int (max 1 (List.length xs))
  in
  Alcotest.(check bool) "some repairs happened" true (repaired <> []);
  Alcotest.(check bool) "repaired TM high on average" true
    (mean (fun (r : Eval.Study.spec_result) -> r.tm) repaired > 0.8)

let test_determinism () =
  let variants = B.Generate.sample ~per_domain:1 () in
  let t = [ Eval.Technique.Multi (Llm.Multi_round.No_feedback, Llm.Model.gpt4) ] in
  let a = Eval.Study.run ~techniques:t variants in
  let b = Eval.Study.run ~techniques:t variants in
  List.iter2
    (fun (x : Eval.Study.spec_result) (y : Eval.Study.spec_result) ->
      Alcotest.(check int) ("rep deterministic for " ^ x.variant_id) x.rep y.rep;
      Alcotest.(check (float 1e-9)) "tm deterministic" x.tm y.tm)
    a b

let test_simplify_bit_identity () =
  (* The --simplify/--portfolio solving options only reroute the oracle's
     verdict-only fresh solves; study rows must come out bit-identical. *)
  let variants = B.Generate.sample ~per_domain:1 () in
  let t = [ Eval.Technique.BeAFix; Eval.Technique.ATR ] in
  let plain = Eval.Study.run ~techniques:t variants in
  let simplified = Eval.Study.run ~techniques:t ~simplify:true variants in
  List.iter2
    (fun (x : Eval.Study.spec_result) (y : Eval.Study.spec_result) ->
      Alcotest.(check string)
        ("variant id stable for " ^ x.variant_id)
        x.variant_id y.variant_id;
      Alcotest.(check string) "technique stable" x.technique y.technique;
      Alcotest.(check int) "rep identical under --simplify" x.rep y.rep;
      Alcotest.(check (float 1e-12)) "tm identical" x.tm y.tm;
      Alcotest.(check (float 1e-12)) "sm identical" x.sm y.sm)
    plain simplified

let test_csv_roundtrip () =
  let rs = Lazy.force mini_results in
  let rs' = Eval.Study.of_csv (Eval.Study.to_csv rs) in
  Alcotest.(check int) "row count preserved" (List.length rs) (List.length rs');
  List.iter2
    (fun (a : Eval.Study.spec_result) (b : Eval.Study.spec_result) ->
      Alcotest.(check string) "variant" a.variant_id b.variant_id;
      Alcotest.(check string) "technique" a.technique b.technique;
      Alcotest.(check int) "rep" a.rep b.rep;
      Alcotest.(check bool) "benchmark" true (a.benchmark = b.benchmark))
    rs rs'

let test_table1_renders () =
  let text = Eval.Tables.table1 (Lazy.force mini_results) in
  Alcotest.(check bool) "has A4F section" true (contains text "A4F benchmark");
  Alcotest.(check bool) "has ARepair section" true
    (contains text "ARepair benchmark");
  Alcotest.(check bool) "has classroom row" true (contains text "classroom");
  Alcotest.(check bool) "has total row" true (contains text "Total")

let test_fig2_renders () =
  let text = Eval.Tables.fig2 (Lazy.force mini_results) in
  Alcotest.(check bool) "has TM column" true (contains text "TM");
  Alcotest.(check bool) "lists techniques" true (contains text "ATR")

let test_fig3_renders () =
  let text = Eval.Tables.fig3 (Lazy.force mini_results) in
  Alcotest.(check bool) "mentions Pearson" true (contains text "Pearson")

let test_fig3_diagonal_is_one () =
  let rs = Lazy.force mini_results in
  let r, p = Eval.Tables.correlation rs ~t1:"ATR" ~t2:"ATR" in
  Alcotest.(check (float 1e-9)) "self correlation" 1.0 r;
  Alcotest.(check bool) "significant" true (p < 0.001)

let test_hybrid_algebra () =
  let rs = Lazy.force mini_results in
  let a = Eval.Tables.rep_count rs ~technique:"ATR" in
  let b = Eval.Tables.rep_count rs ~technique:"Multi-Round_None" in
  let a', overlap, union = Eval.Tables.hybrid rs ~traditional:"ATR" ~llm:"Multi-Round_None" in
  Alcotest.(check int) "traditional count consistent" a a';
  Alcotest.(check int) "inclusion-exclusion" union (a + b - overlap);
  Alcotest.(check bool) "union >= max" true (union >= max a b);
  Alcotest.(check bool) "overlap <= min" true (overlap <= min a b)

let test_rep_counts_by_benchmark_sum () =
  let rs = Lazy.force mini_results in
  List.iter
    (fun t ->
      let name = Eval.Technique.name t in
      let total = Eval.Tables.rep_count rs ~technique:name in
      let a4f =
        Eval.Tables.rep_count_in rs ~technique:name ~benchmark:B.Domains.A4F
      in
      let arep =
        Eval.Tables.rep_count_in rs ~technique:name
          ~benchmark:B.Domains.ARepair_bench
      in
      Alcotest.(check int) (name ^ " benchmark split sums") total (a4f + arep))
    mini_techniques

let test_technique_roster () =
  Alcotest.(check int) "12 techniques" 12 (List.length Eval.Technique.all);
  Alcotest.(check int) "4 traditional" 4 (List.length Eval.Technique.traditional);
  Alcotest.(check int) "8 LLM-based" 8 (List.length Eval.Technique.llm_based);
  List.iter
    (fun t ->
      match Eval.Technique.of_name (Eval.Technique.name t) with
      | Some t' -> Alcotest.(check bool) "name round trip" true (t = t')
      | None -> Alcotest.fail "of_name failed")
    Eval.Technique.all

let test_parallel_matches_sequential () =
  let variants = B.Generate.sample ~per_domain:1 () in
  let techniques = [ Eval.Technique.BeAFix ] in
  let seq = Eval.Study.run ~techniques variants in
  let par = Eval.Study.run_parallel ~techniques ~jobs:2 variants in
  let key (r : Eval.Study.spec_result) = (r.variant_id, r.technique, r.rep) in
  Alcotest.(check bool) "same outcomes" true
    (List.sort compare (List.map key seq) = List.sort compare (List.map key par))

(* {2 Portfolio (the future-work hybrid tool)} *)

let simple_faulty_task =
  lazy
    (let faulty =
       Specrepair_alloy.Parser.parse
         {|
sig Node { edges: set Node }
fact Acyclic { some n: Node | n in n.^edges }
assert NoLoop { all n: Node | n not in n.^edges }
check NoLoop for 3
run { some edges } for 3
|}
     in
     Llm.Task.make ~spec_id:"portfolio_test" ~domain:"graphs" ~faulty
       ~check_names:[ "NoLoop" ] ())

let test_portfolio_repairs () =
  let result, stage = Eval.Portfolio.repair (Lazy.force simple_faulty_task) in
  Alcotest.(check bool) "portfolio repairs the quant fault" true
    result.repaired;
  Alcotest.(check string) "traditional stage sufficed" "traditional"
    (Eval.Portfolio.stage_to_string stage);
  Alcotest.(check string) "tool name" "Portfolio" result.tool

let test_portfolio_stage_strings () =
  Alcotest.(check string) "llm" "llm"
    (Eval.Portfolio.stage_to_string Eval.Portfolio.Llm_finished);
  Alcotest.(check string) "unrepaired" "unrepaired"
    (Eval.Portfolio.stage_to_string Eval.Portfolio.Unrepaired)

(* The default session and an explicit [Session.for_spec] must agree for
   every panel profile — both entry points share one default-session
   construction (the regression this pins had [repair] building its
   session from a pre-checked env, diverging from [repair_learned]). *)
let test_portfolio_default_session_agrees () =
  let task = Lazy.force simple_faulty_task in
  List.iter
    (fun (p : Llm.Model.profile) ->
      let d_result, d_stage = Eval.Portfolio.repair ~profile:p task in
      let session =
        Specrepair_repair.Session.for_spec task.Llm.Task.faulty
      in
      let e_result, e_stage =
        Eval.Portfolio.repair ~session ~profile:p task
      in
      Alcotest.(check bool)
        (p.Llm.Model.name ^ ": default and explicit sessions agree")
        true
        (d_result = e_result
        && Eval.Portfolio.stage_to_string d_stage
           = Eval.Portfolio.stage_to_string e_stage))
    Llm.Model.panel

(* Learning disabled: [repair_learned] without statistics is bit-identical
   to the static pipeline, and the default study roster still prints the
   paper's bare column labels (no "@<profile>" suffix), so PR-9 CSVs and
   tables are unchanged. *)
let test_learned_off_bit_identity () =
  let task = Lazy.force simple_faulty_task in
  let static, stage = Eval.Portfolio.repair task in
  let o = Eval.Portfolio.repair_learned task in
  Alcotest.(check bool) "result bit-identical" true
    (static = o.Eval.Portfolio.result);
  Alcotest.(check string) "stage identical"
    (Eval.Portfolio.stage_to_string stage)
    (Eval.Portfolio.stage_to_string o.Eval.Portfolio.stage);
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Eval.Technique.name t ^ " keeps its paper label")
        false
        (String.contains (Eval.Technique.name t) '@'))
    Eval.Technique.all

let test_multi_round_ablations_run () =
  let task = Lazy.force simple_faulty_task in
  let full = Llm.Multi_round.repair task Llm.Multi_round.No_feedback in
  let no_hc =
    Llm.Multi_round.repair ~hill_climb:false task Llm.Multi_round.No_feedback
  in
  let no_mc =
    Llm.Multi_round.repair ~mental_check:false task Llm.Multi_round.No_feedback
  in
  (* the full pipeline must be at least as capable as either ablation on a
     simple single-fault spec *)
  Alcotest.(check bool) "full pipeline repairs" true full.repaired;
  ignore no_hc;
  ignore no_mc

let () =
  Alcotest.run "eval"
    [
      ( "study",
        [
          Alcotest.test_case "shape" `Slow test_run_shape;
          Alcotest.test_case "similarity of repairs" `Slow
            test_repaired_high_similarity;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "bit-identical under simplify" `Slow
            test_simplify_bit_identity;
          Alcotest.test_case "csv round trip" `Slow test_csv_roundtrip;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table1" `Slow test_table1_renders;
          Alcotest.test_case "fig2" `Slow test_fig2_renders;
          Alcotest.test_case "fig3" `Slow test_fig3_renders;
          Alcotest.test_case "self correlation" `Slow test_fig3_diagonal_is_one;
          Alcotest.test_case "hybrid algebra" `Slow test_hybrid_algebra;
          Alcotest.test_case "benchmark split" `Slow test_rep_counts_by_benchmark_sum;
          Alcotest.test_case "technique roster" `Quick test_technique_roster;
        ] );
      ( "parallel",
        [ Alcotest.test_case "matches sequential" `Slow test_parallel_matches_sequential ] );
      ( "portfolio",
        [
          Alcotest.test_case "repairs" `Quick test_portfolio_repairs;
          Alcotest.test_case "stage strings" `Quick test_portfolio_stage_strings;
          Alcotest.test_case "default session agrees" `Quick
            test_portfolio_default_session_agrees;
          Alcotest.test_case "learned off bit-identity" `Quick
            test_learned_off_bit_identity;
          Alcotest.test_case "ablations run" `Quick test_multi_round_ablations_run;
        ] );
    ]
