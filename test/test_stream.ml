(* The crash-recovery battery for streaming studies: the on-demand corpus
   must be bit-identical to the materialized one, a SIGKILLed checkpointed
   run resumed with [--resume] must merge to the same CSV as an
   uninterrupted run, and an untrustworthy checkpoint (truncated manifest,
   tampered shard, foreign fingerprint) must be rejected loudly — never
   silently re-run or silently skipped. *)

module Alloy = Specrepair_alloy
module B = Specrepair_benchmarks
module Eval = Specrepair_eval
module Stream = Eval.Corpus_stream
module Manifest = Eval.Manifest
module Sched_stats = Specrepair_engine.Telemetry.Scheduler

let seed = 42

(* (global offset, domain) in stream order, reconstructed from the public
   corpus contract: A4F domains then ARepair domains, each in
   [Domains.all] order, each contributing [count] rows *)
let offsets =
  lazy
    (let by bench =
       List.filter (fun (d : B.Domains.t) -> d.benchmark = bench) B.Domains.all
     in
     let ds = by B.Domains.A4F @ by B.Domains.ARepair_bench in
     List.rev
       (fst
          (List.fold_left
             (fun (acc, off) (d : B.Domains.t) ->
               ((off, d) :: acc, off + d.count))
             ([], 0) ds)))

let offset_of (d : B.Domains.t) =
  fst (List.find (fun (_, d') -> d' == d) (Lazy.force offsets))

let key (v : B.Generate.variant) =
  (* id + faulty source pins the whole derivation: same mutation stream,
     same sites, same spec *)
  (v.id, Digest.string (Alloy.Pretty.spec_to_string v.injected.B.Fault.faulty))

(* {2 Corpus identity} *)

let test_natural_total () =
  Alcotest.(check int)
    "natural total = Table I corpus"
    (B.Domains.total_count B.Domains.A4F
    + B.Domains.total_count B.Domains.ARepair_bench)
    (Stream.natural_total ())

let test_stream_matches_materialized () =
  (* cheap cross-section: one mid-corpus A4F domain plus the first ARepair
     domains, i.e. global indices that straddle the benchmark boundary *)
  let chosen =
    List.filter
      (fun (d : B.Domains.t) ->
        d.count <= 61 || d.benchmark = B.Domains.ARepair_bench)
      B.Domains.all
  in
  Alcotest.(check bool) "cross-section is non-trivial" true
    (List.length chosen >= 3);
  List.iter
    (fun (d : B.Domains.t) ->
      let materialized = List.map key (B.Generate.variants ~seed d) in
      let streamed = ref [] in
      let off = offset_of d in
      Stream.iter ~seed ~lo:off ~hi:(off + d.count) (fun _ v ->
          streamed := key v :: !streamed);
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "domain %s bit-identical" d.name)
        materialized
        (List.rev !streamed))
    chosen

let test_epoch_wrap () =
  let total = Stream.natural_total () in
  let d = List.hd B.Domains.all in
  let i = offset_of d in
  let v0 = Stream.variant ~seed i in
  let v1 = Stream.variant ~seed (i + total) in
  let v2 = Stream.variant ~seed (i + (2 * total)) in
  Alcotest.(check string) "epoch 0 is the materialized variant"
    (B.Generate.variant_at ~seed d 0).id v0.id;
  Alcotest.(check string) "epoch 1 stays in the same domain" d.name
    v1.domain.name;
  Alcotest.(check bool) "epochs are distinct variants" true
    (v0.id <> v1.id && v1.id <> v2.id);
  (* deterministic: the same global index always derives the same row *)
  Alcotest.(check (pair string string))
    "epoch 1 is deterministic" (key v1)
    (key (Stream.variant ~seed (i + total)))

let test_custom_source () =
  let produced = ref [] in
  let src =
    Stream.Custom
      {
        name = "counting";
        produce =
          (fun ~seed i ->
            produced := (seed, i) :: !produced;
            B.Generate.variant_at ~seed (List.hd B.Domains.all) i);
      }
  in
  Alcotest.(check string) "name flows into fingerprints" "counting"
    (Stream.source_name src);
  let v = Stream.variant ~source:src ~seed:7 3 in
  Alcotest.(check (list (pair int int)))
    "produce called with the caller's seed and index" [ (7, 3) ] !produced;
  Alcotest.(check string) "the produced variant comes back" v.id
    (B.Generate.variant_at ~seed:7 (List.hd B.Domains.all) 3).id

(* {2 Crash + resume} *)

let with_tmpdir k =
  let dir = Filename.temp_file "specrepair_stream_" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then (
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p)
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> k dir)

let techniques = [ Eval.Technique.ATR; Eval.Technique.BeAFix ]
let total = 6

let run_stream ?(resume = false) ~dir () =
  Eval.Study.run_stream ~seed ~techniques ~jobs:2 ~progress:ignore ~resume
    ~dir ~total ()

let merged_csv dir =
  let tmp = Filename.temp_file "specrepair_merged_" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      let n = Eval.Study.write_stream_csv ~timings:false ~dir oc in
      close_out oc;
      let ic = open_in_bin tmp in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (n, text))

(* run the study in a forked child with the crash hook armed: the child's
   scheduler SIGKILLs its own process after [after] checkpointed chunks,
   exactly the mid-study `kill -9` an overnight run has to survive *)
let crash_study ~after ~dir =
  match Unix.fork () with
  | 0 ->
      (try
         Unix.putenv "SPECREPAIR_SCHED_CRASH_AFTER_CHUNKS" (string_of_int after);
         ignore (run_stream ~dir ())
       with _ -> ());
      (* reaching here means the chaos hook never fired *)
      Unix._exit 10
  | pid -> snd (Unix.waitpid [] pid)

let test_crash_then_resume_is_byte_identical () =
  with_tmpdir (fun crashed ->
      with_tmpdir (fun clean ->
          (match crash_study ~after:1 ~dir:crashed with
          | Unix.WSIGNALED sg when sg = Sys.sigkill -> ()
          | status ->
              Alcotest.failf "expected a self-SIGKILL, child got %s"
                (match status with
                | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s));
          (* the wreckage is a real checkpoint: some rows recorded, not all *)
          let m = Manifest.load ~dir:crashed in
          let items = total * List.length techniques in
          Alcotest.(check int) "manifest total = work items" items
            m.Manifest.total;
          Alcotest.(check bool) "crash left a partial checkpoint" true
            (Manifest.rows_done m >= 1 && not (Manifest.is_complete m));
          (* resume computes only the pending rows, to completion *)
          let stats = run_stream ~resume:true ~dir:crashed () in
          Alcotest.(check bool) "resume did not redo finished rows" true
            (stats.Sched_stats.rows_completed < items);
          (* the uninterrupted reference run additionally loses a worker to
             the scheduler chaos hook from test_scheduler.ml *)
          let mark = Filename.temp_file "specrepair_stream_kill_" ".mark" in
          Sys.remove mark;
          Unix.putenv "SPECREPAIR_SCHED_KILL_ITEM" "3";
          Unix.putenv "SPECREPAIR_SCHED_KILL_MARK" mark;
          Fun.protect
            ~finally:(fun () ->
              Unix.putenv "SPECREPAIR_SCHED_KILL_ITEM" "";
              Unix.putenv "SPECREPAIR_SCHED_KILL_MARK" "";
              if Sys.file_exists mark then Sys.remove mark)
            (fun () -> ignore (run_stream ~dir:clean ()));
          let n_crashed, csv_crashed = merged_csv crashed in
          let n_clean, csv_clean = merged_csv clean in
          Alcotest.(check int) "all rows merged" items n_crashed;
          Alcotest.(check int) "reference has all rows too" items n_clean;
          Alcotest.(check string)
            "crash+resume CSV byte-identical to the uninterrupted run"
            csv_clean csv_crashed;
          (* and both equal the plain in-memory sequential study *)
          let variants = List.init total (Stream.variant ~seed) in
          Alcotest.(check string)
            "streamed CSV byte-identical to the sequential study"
            (Eval.Study.to_csv ~timings:false
               (Eval.Study.run ~seed ~techniques variants))
            csv_crashed))

let test_resume_rejects_foreign_fingerprint () =
  with_tmpdir (fun dir ->
      ignore (run_stream ~dir ());
      let corrupt f =
        match f () with
        | _ -> Alcotest.fail "expected Manifest.Corrupt"
        | exception Manifest.Corrupt msg ->
            Alcotest.(check bool) "error names the fingerprint" true
              (String.length msg > 0)
      in
      (* same directory, different run parameters: must refuse to mix *)
      corrupt (fun () ->
          Eval.Study.run_stream ~seed:(seed + 1) ~techniques ~jobs:2
            ~progress:ignore ~resume:true ~dir ~total ());
      corrupt (fun () ->
          Eval.Study.run_stream ~seed ~techniques:[ Eval.Technique.ATR ]
            ~jobs:2 ~progress:ignore ~resume:true ~dir ~total ()))

let test_fresh_run_refuses_existing_checkpoint () =
  with_tmpdir (fun dir ->
      ignore (run_stream ~dir ());
      match run_stream ~dir () with
      | _ -> Alcotest.fail "expected Failure on a dirty run directory"
      | exception Failure msg ->
          Alcotest.(check bool) "message points at --resume" true
            (String.length msg > 0))

(* {2 Manifest trust} *)

let test_manifest_roundtrip_and_pending () =
  let m = Manifest.create ~fingerprint:"fp|x" ~total:10 in
  let m = Manifest.add m ~lo:7 ~hi:10 in
  let m = Manifest.add m ~lo:0 ~hi:3 in
  Alcotest.(check int) "rows done" 6 (Manifest.rows_done m);
  Alcotest.(check bool) "not complete" false (Manifest.is_complete m);
  Alcotest.(check (list (pair int int)))
    "pending = complement" [ (3, 7) ] (Manifest.pending m);
  with_tmpdir (fun dir ->
      Manifest.save ~dir m;
      let m' = Manifest.load ~dir in
      Alcotest.(check string) "fingerprint survives" m.Manifest.fingerprint
        m'.Manifest.fingerprint;
      Alcotest.(check (list (pair int int)))
        "ranges survive, sorted, uncoalesced"
        [ (0, 3); (7, 10) ]
        m'.Manifest.completed);
  (match Manifest.add m ~lo:2 ~hi:4 with
  | _ -> Alcotest.fail "overlap must be Invalid_argument"
  | exception Invalid_argument _ -> ());
  let m = Manifest.add m ~lo:3 ~hi:7 in
  Alcotest.(check bool) "complete once the gap closes" true
    (Manifest.is_complete m);
  Alcotest.(check (list (pair int int))) "nothing pending" [] (Manifest.pending m)

let expect_corrupt what text =
  with_tmpdir (fun dir ->
      (match text with
      | Some t ->
          let oc = open_out (Manifest.path ~dir) in
          output_string oc t;
          close_out oc
      | None -> () (* missing file *));
      match Manifest.load ~dir with
      | _ -> Alcotest.fail (what ^ ": expected Manifest.Corrupt")
      | exception Manifest.Corrupt msg ->
          Alcotest.(check bool)
            (what ^ ": error names the manifest") true
            (String.length msg > 0))

let test_corrupt_manifests_rejected () =
  let valid =
    Manifest.to_json
      (Manifest.add (Manifest.create ~fingerprint:"fp" ~total:8) ~lo:0 ~hi:4)
  in
  expect_corrupt "missing manifest" None;
  expect_corrupt "empty file" (Some "");
  expect_corrupt "garbage" (Some "totally not json\n");
  expect_corrupt "truncated mid-write"
    (Some (String.sub valid 0 (String.length valid / 2)));
  expect_corrupt "trailing bytes" (Some (valid ^ "x"));
  expect_corrupt "unknown version"
    (Some
       "{\"specrepair_manifest\":99,\"fingerprint\":\"fp\",\"total\":8,\"completed\":[]}");
  expect_corrupt "range out of bounds"
    (Some
       "{\"specrepair_manifest\":1,\"fingerprint\":\"fp\",\"total\":8,\"completed\":[[4,9]]}");
  expect_corrupt "unsorted ranges"
    (Some
       "{\"specrepair_manifest\":1,\"fingerprint\":\"fp\",\"total\":8,\"completed\":[[4,6],[0,2]]}");
  expect_corrupt "overlapping ranges"
    (Some
       "{\"specrepair_manifest\":1,\"fingerprint\":\"fp\",\"total\":8,\"completed\":[[0,4],[3,6]]}");
  expect_corrupt "inverted range"
    (Some
       "{\"specrepair_manifest\":1,\"fingerprint\":\"fp\",\"total\":8,\"completed\":[[4,4]]}")

let test_tampered_shard_detected () =
  with_tmpdir (fun dir ->
      ignore (run_stream ~dir ());
      let shard =
        match
          List.find_opt
            (fun f -> String.length f >= 6 && String.sub f 0 6 = "shard_")
            (Array.to_list (Sys.readdir dir))
        with
        | Some f -> Filename.concat dir f
        | None -> Alcotest.fail "complete run left no shards"
      in
      let expect_corrupt what =
        match merged_csv dir with
        | _ -> Alcotest.fail (what ^ ": expected Manifest.Corrupt")
        | exception Manifest.Corrupt msg ->
            Alcotest.(check bool) (what ^ ": names the shard") true
              (String.length msg > 0)
      in
      (* truncate the shard the manifest vouches for *)
      let ic = open_in_bin shard in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin shard in
      output_string oc (String.sub text 0 (String.length text / 2));
      close_out oc;
      expect_corrupt "truncated shard";
      (* remove it outright *)
      Sys.remove shard;
      expect_corrupt "missing shard")

(* {2 The static runner names its casualties} *)

let test_static_failure_names_worker () =
  (* a domain whose source cannot parse: the worker evaluating it dies,
     and the parent must say which worker, pid and slice — not a bare
     "worker failed" *)
  let base = List.hd (B.Generate.sample ~seed ~per_domain:1 ()) in
  let broken =
    {
      base.B.Generate.domain with
      name = "broken_stream_test";
      source = "sig ( this is not alloy";
    }
  in
  let poisoned = { base with B.Generate.domain = broken } in
  match
    Eval.Study.run_parallel_static ~seed ~jobs:2
      ~techniques:[ Eval.Technique.ATR ]
      [ poisoned; base ]
  with
  | _ -> Alcotest.fail "expected the poisoned slice to fail"
  | exception Failure msg ->
      let has needle =
        let nl = String.length needle and ml = String.length msg in
        let rec scan i =
          i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "names the runner: %s" msg)
        true
        (has "run_parallel_static");
      Alcotest.(check bool)
        (Printf.sprintf "names worker and slice: %s" msg)
        true
        (has "worker 1/2" && has "slice 0 mod 2" && has "pid ")

let () =
  Alcotest.run "stream"
    [
      ( "corpus",
        [
          Alcotest.test_case "natural total" `Quick test_natural_total;
          Alcotest.test_case "streamed = materialized" `Slow
            test_stream_matches_materialized;
          Alcotest.test_case "epoch wrap" `Quick test_epoch_wrap;
          Alcotest.test_case "custom source" `Quick test_custom_source;
        ] );
      ( "resume",
        [
          Alcotest.test_case "crash + resume byte-identical" `Slow
            test_crash_then_resume_is_byte_identical;
          Alcotest.test_case "foreign fingerprint rejected" `Slow
            test_resume_rejects_foreign_fingerprint;
          Alcotest.test_case "fresh run refuses dirty dir" `Slow
            test_fresh_run_refuses_existing_checkpoint;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "round trip + pending" `Quick
            test_manifest_roundtrip_and_pending;
          Alcotest.test_case "corruption rejected loudly" `Quick
            test_corrupt_manifests_rejected;
          Alcotest.test_case "tampered shard detected" `Slow
            test_tampered_shard_detected;
        ] );
      ( "static",
        [
          Alcotest.test_case "failure names the worker" `Slow
            test_static_failure_names_worker;
        ] );
    ]
