(* Tests for the repair-as-a-service stack: the JSON codec, the wire
   protocol's validation and error replies, the warm-state LRU registry,
   the worker-side handler, the fork-worker pool (including kill -9 of a
   busy worker), and the daemon end to end over a Unix socket — malformed
   requests, oversized lines, client disconnects mid-request, concurrent
   clients, chaos worker crashes, and SIGTERM shutdown. *)

module Serve = Specrepair_serve
module Json = Serve.Json
module Protocol = Serve.Protocol
module Registry = Serve.Registry
module Handler = Serve.Handler
module Pool = Serve.Pool
module Daemon = Serve.Daemon
module Client = Serve.Client

let contains sub s =
  let k = String.length sub and n = String.length s in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let check_contains what sub s =
  if not (contains sub s) then
    Alcotest.failf "%s: expected %S within %S" what sub s

(* {2 JSON codec} *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.List [ Json.Num 1.; Json.Num 2.5; Json.Num (-300.) ]);
        ("b", Json.Str "x\n\t\"y\"\\z");
        ("c", Json.Bool true);
        ("d", Json.Null);
        ("e", Json.Obj [ ("nested", Json.Str "") ]);
      ]
  in
  let s = Json.to_string v in
  if String.contains s '\n' then Alcotest.fail "to_string emitted a newline";
  match Json.parse s with
  | Error (pos, msg) -> Alcotest.failf "re-parse failed at %d: %s" pos msg
  | Ok v' ->
      Alcotest.(check (option string))
        "string survives" (Some "x\n\t\"y\"\\z")
        (Json.mem_str "b" v');
      Alcotest.(check (option int)) "int survives" (Some (-300))
        (Option.bind (Json.member "a" v') (fun l ->
             match Json.to_list l with
             | Some [ _; _; n ] -> Json.to_int n
             | _ -> None));
      Alcotest.(check (option bool)) "bool survives" (Some true)
        (Json.mem_bool "c" v')

let test_json_errors () =
  let fails ?at s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse accepted %S" s
    | Error (pos, _) -> (
        match at with
        | Some p -> Alcotest.(check int) ("position of " ^ s) p pos
        | None -> ())
  in
  fails ~at:0 "garbage";
  fails "{\"a\":1";
  fails "{\"a\" 1}";
  fails "[1,2,";
  fails "\"unterminated";
  (* trailing garbage after a complete value is an error, with the
     position pointing at the garbage *)
  fails ~at:2 "1 2";
  fails "{} {}"

let test_json_unicode () =
  (match Json.parse {|"Aé"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "bmp escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "bmp escape parse failed");
  match Json.parse {|"😀"|} with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair parse failed"

let test_json_raw () =
  let s =
    Json.to_string
      (Json.Obj [ ("d", Json.Raw {|{"x":1}|}); ("k", Json.Num 2.) ])
  in
  Alcotest.(check string) "raw embedded verbatim" {|{"d":{"x":1},"k":2}|} s

(* {2 Protocol} *)

let test_protocol_valid () =
  (match
     Protocol.parse_request
       {|{"id":"r1","method":"repair","params":{"source":"sig A {}"}}|}
   with
  | Ok { Protocol.id; call = Protocol.Repair p } ->
      Alcotest.(check string) "id" "r1" id;
      Alcotest.(check string) "default tool" "beafix" p.Protocol.tool;
      Alcotest.(check int) "default seed" 42 p.Protocol.seed;
      Alcotest.(check string) "source" "sig A {}" p.Protocol.source
  | Ok _ -> Alcotest.fail "parsed as the wrong method"
  | Error e -> Alcotest.failf "valid repair rejected: %s" e);
  match Protocol.parse_request {|{"method":"status"}|} with
  | Ok { Protocol.id = ""; call = Protocol.Status } -> ()
  | _ -> Alcotest.fail "bare status request rejected"

let test_protocol_errors () =
  let err line =
    match Protocol.parse_request line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error reply ->
        if Protocol.reply_is_ok reply then
          Alcotest.failf "error reply claims ok: %s" reply;
        reply
  in
  check_contains "not json" {|"code":"parse_error"|} (err "][");
  let r = err {|{"id":"k7","method":"frobnicate","params":{}}|} in
  check_contains "unknown method" {|"code":"unknown_method"|} r;
  check_contains "id echoed" {|"id":"k7"|} r;
  check_contains "missing source" {|"code":"invalid_request"|}
    (err {|{"method":"repair","params":{}}|});
  check_contains "bad tool" {|"code":"invalid_request"|}
    (err {|{"method":"repair","params":{"source":"x","tool":"magic"}}|});
  check_contains "missing dimacs" {|"code":"invalid_request"|}
    (err {|{"method":"sat","params":{}}|});
  check_contains "non-object request" {|"code":"invalid_request"|}
    (err {|[1,2,3]|})

let test_protocol_cache_keys () =
  let req line =
    match Protocol.parse_request line with
    | Ok r -> r.Protocol.call
    | Error e -> Alcotest.failf "request rejected: %s" e
  in
  let key c =
    match Protocol.cache_key c with
    | Some k -> k
    | None -> Alcotest.fail "expected a cache key"
  in
  let repair = req {|{"method":"repair","params":{"source":"sig A {}"}}|} in
  let evaluate = req {|{"method":"evaluate","params":{"source":"sig A {}"}}|} in
  Alcotest.(check string)
    "repair and evaluate share warm state for one source" (key repair)
    (key evaluate);
  let simplified =
    req {|{"method":"repair","params":{"source":"sig A {}","simplify":true}}|}
  in
  if key repair = key simplified then
    Alcotest.fail "solving options must split the warm state";
  (* seed is session state, not oracle state: same key *)
  let reseeded =
    req {|{"method":"repair","params":{"source":"sig A {}","seed":7}}|}
  in
  Alcotest.(check string) "seed does not split warm state" (key repair)
    (key reseeded);
  Alcotest.(check (option string))
    "status is uncacheable" None
    (Protocol.cache_key Protocol.Status)

let test_protocol_replies () =
  let ok = Protocol.ok_reply ~id:"a" (Json.Obj [ ("n", Json.Num 1.) ]) in
  Alcotest.(check bool) "ok reply is ok" true (Protocol.reply_is_ok ok);
  check_contains "ok id" {|"id":"a"|} ok;
  let err =
    Protocol.error_reply ~id:"b" ~code:Protocol.Overloaded "queue full"
  in
  Alcotest.(check bool) "error reply is not ok" false
    (Protocol.reply_is_ok err);
  check_contains "error code" {|"code":"overloaded"|} err

(* {2 Registry} *)

let test_registry_lru () =
  let t = Registry.create ~max:2 in
  let builds = ref [] in
  let get k =
    Registry.find_or_add t k (fun () ->
        builds := k :: !builds;
        k)
  in
  let _, w = get "a" in
  Alcotest.(check bool) "first lookup misses" false w;
  let _, w = get "a" in
  Alcotest.(check bool) "second lookup hits" true w;
  ignore (get "b");
  ignore (get "a");
  (* LRU order is now a, b: adding c evicts b *)
  ignore (get "c");
  Alcotest.(check int) "bounded" 2 (Registry.size t);
  let _, w = get "a" in
  Alcotest.(check bool) "promoted entry survived" true w;
  let _, w = get "b" in
  Alcotest.(check bool) "evicted entry rebuilds" false w;
  let s = Registry.stats t in
  Alcotest.(check int) "misses" 4 s.Registry.misses;
  Alcotest.(check int) "hits" 3 s.Registry.hits;
  (* b's re-add evicted c: 2 evictions in total *)
  Alcotest.(check int) "evictions" 2 s.Registry.evictions;
  Alcotest.(check int) "builds = misses" 4 (List.length !builds)

(* {2 Handler} *)

let unsat_cnf = "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n"
let spec_src = "sig A {}\nrun { some A } for 2\n"

let sat_request ?(id = "") () =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str id);
         ("method", Json.Str "sat");
         ("params", Json.Obj [ ("dimacs", Json.Str unsat_cnf) ]);
       ])

let evaluate_request ?(id = "") ?chaos ?deadline_ms src =
  let params =
    [ ("source", Json.Str src); ("file", Json.Str "<test>") ]
    @ (match chaos with Some c -> [ ("chaos", Json.Str c) ] | None -> [])
    @
    match deadline_ms with
    | Some d -> [ ("deadline_ms", Json.Num d) ]
    | None -> []
  in
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str id);
         ("method", Json.Str "evaluate");
         ("params", Json.Obj params);
       ])

let test_handler_errors_and_warmth () =
  let h = Handler.create ~max_sessions:4 in
  let reply, warmth = Handler.handle h "not json" in
  check_contains "malformed line" {|"code":"parse_error"|} reply;
  Alcotest.(check bool) "errors are uncached" true
    (warmth = Handler.Uncached);
  let reply, _ =
    Handler.handle h
      {|{"id":"s","method":"repair","params":{"source":"sig A { broken"}}|}
  in
  check_contains "frontend failure" {|"code":"spec_error"|} reply;
  check_contains "positioned diagnostics attached" {|"diagnostics":[|} reply;
  let reply, w1 = Handler.handle h (sat_request ()) in
  check_contains "unsat verdict" {|"verdict":"unsat"|} reply;
  Alcotest.(check bool) "first solve is cold" true (w1 = Handler.Cold);
  let reply2, w2 = Handler.handle h (sat_request ()) in
  Alcotest.(check bool) "memoized verdict" true (w2 = Handler.Warm);
  check_contains "same verdict" {|"verdict":"unsat"|} reply2;
  let reply, w = Handler.handle h (evaluate_request spec_src) in
  check_contains "evaluate answers verdicts" {|"verdicts":[|} reply;
  Alcotest.(check bool) "fresh spec is cold" true (w = Handler.Cold);
  let _, w = Handler.handle h (evaluate_request spec_src) in
  Alcotest.(check bool) "warm spec hits" true (w = Handler.Warm);
  let s = Handler.registry_stats h in
  Alcotest.(check int) "registry hits" 2 s.Registry.hits

(* {2 Pool} *)

let rec pool_events ?(deadline = 10.) pool =
  let readable, _, _ = Unix.select (Pool.fds pool) [] [] 0.2 in
  (* drain strictly before reap: reap respawns dead slots, and the fresh
     pipes recycle fd numbers, which would invalidate [readable] *)
  let drained = Pool.drain pool readable in
  match drained @ Pool.reap pool with
  | [] when deadline > 0. -> pool_events ~deadline:(deadline -. 0.2) pool
  | evs -> evs

let toy_handle line =
  if line = "sleep" then Unix.sleepf 30.;
  ("echo:" ^ line, Handler.Uncached)

let test_pool_roundtrip () =
  let pool = Pool.create ~jobs:2 ~handle:toy_handle in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pool.dispatch pool ~slot:0 ~token:1 "hello";
      Pool.dispatch pool ~slot:1 ~token:2 "world";
      Alcotest.(check bool) "slot 0 busy" false (Pool.idle pool 0);
      let rec collect acc =
        if List.length acc >= 2 then acc
        else collect (pool_events pool @ acc)
      in
      let replies =
        collect []
        |> List.filter_map (function
             | Pool.Reply { token; line; _ } -> Some (token, line)
             | _ -> None)
        |> List.sort compare
      in
      Alcotest.(check (list (pair int string)))
        "both replies, tagged by token"
        [ (1, "echo:hello"); (2, "echo:world") ]
        replies;
      Alcotest.(check bool) "slot 0 idle again" true (Pool.idle pool 0);
      (match Pool.dispatch pool ~slot:0 ~token:3 "again" with
      | () -> ()
      | exception Invalid_argument _ -> Alcotest.fail "idle slot refused");
      ignore (pool_events pool);
      Alcotest.(check int) "no respawns in a clean run" 0 (Pool.respawns pool))

let test_pool_kill9 () =
  let pool = Pool.create ~jobs:2 ~handle:toy_handle in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pool.dispatch pool ~slot:0 ~token:7 "sleep";
      let victim = List.nth (Pool.pids pool) 0 in
      Unix.sleepf 0.1;
      Unix.kill victim Sys.sigkill;
      let died =
        pool_events pool
        |> List.exists (function
             | Pool.Died { token = 7; slot = 0 } -> true
             | _ -> false)
      in
      Alcotest.(check bool) "death surfaced for the in-flight token" true died;
      Alcotest.(check int) "slot respawned" 1 (Pool.respawns pool);
      Alcotest.(check bool) "slot idle after respawn" true (Pool.idle pool 0);
      let fresh = List.nth (Pool.pids pool) 0 in
      if fresh = victim then Alcotest.fail "slot still shows the dead pid";
      (* the respawned worker serves the next request *)
      Pool.dispatch pool ~slot:0 ~token:8 "back";
      let replied =
        pool_events pool
        |> List.exists (function
             | Pool.Reply { token = 8; line = "echo:back"; _ } -> true
             | _ -> false)
      in
      Alcotest.(check bool) "respawned worker answers" true replied)

let test_pool_hard_deadline () =
  let pool = Pool.create ~jobs:1 ~handle:toy_handle in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pool.dispatch pool ~slot:0 ~token:9 ~kill_after_s:0.3 "sleep";
      let rec wait n =
        match Pool.kill_overdue pool with
        | [] when n > 0 ->
            Unix.sleepf 0.1;
            wait (n - 1)
        | evs -> evs
      in
      let timed_out =
        wait 30
        |> List.exists (function
             | Pool.Timed_out { token = 9; _ } -> true
             | _ -> false)
      in
      Alcotest.(check bool) "overdue worker killed" true timed_out;
      Alcotest.(check bool) "slot usable again" true (Pool.idle pool 0))

(* {2 Daemon end to end} *)

let socket_counter = ref 0

(* Unix socket paths cap out around 104 bytes: build them under /tmp, not
   the (arbitrarily deep) dune sandbox. *)
let fresh_socket () =
  incr socket_counter;
  Printf.sprintf "/tmp/specrepair_test_%d_%d.sock" (Unix.getpid ())
    !socket_counter

let start_daemon ?(config = fun c -> c) () =
  let sock = fresh_socket () in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
      Unix.putenv "SPECREPAIR_SERVE_CHAOS" "1";
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Unix.dup2 devnull Unix.stdout;
      Unix.close devnull;
      (match
         Daemon.run
           (config
              { Daemon.default_config with socket = Some sock; workers = 2 })
       with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 2)
  | pid ->
      let rec await n =
        if Sys.file_exists sock then ()
        else if n = 0 then Alcotest.fail "daemon socket never appeared"
        else begin
          Unix.sleepf 0.05;
          await (n - 1)
        end
      in
      await 200;
      (sock, pid)

let stop_daemon pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error (ECHILD, _, _) -> ()

let with_daemon ?config k =
  let sock, pid = start_daemon ?config () in
  Fun.protect ~finally:(fun () -> stop_daemon pid) (fun () -> k sock pid)

let ask sock line =
  match Client.oneshot (Client.Unix_sock sock) line with
  | Ok r -> r
  | Error m -> Alcotest.failf "round-trip failed: %s" m

let status_counter sock name =
  let reply = ask sock {|{"id":"st","method":"status","params":{}}|} in
  match Json.parse reply with
  | Ok j -> (
      match Option.bind (Json.member "result" j) (Json.mem_int name) with
      | Some v -> v
      | None -> Alcotest.failf "status lacks %s: %s" name reply)
  | Error _ -> Alcotest.failf "status reply is not JSON: %s" reply

let test_daemon_protocol_errors () =
  with_daemon (fun sock _ ->
      let r = ask sock "this is not json" in
      check_contains "malformed request" {|"code":"parse_error"|} r;
      let r = ask sock {|{"id":"u1","method":"teleport","params":{}}|} in
      check_contains "unknown method" {|"code":"unknown_method"|} r;
      check_contains "id echoed on errors" {|"id":"u1"|} r;
      (* errors must not poison the connection state: real work still runs *)
      let r = ask sock (sat_request ~id:"ok1" ()) in
      check_contains "daemon still serves" {|"verdict":"unsat"|} r)

let test_daemon_oversized () =
  with_daemon
    ~config:(fun c -> { c with Daemon.max_request_bytes = 256 })
    (fun sock _ ->
      let big = evaluate_request (spec_src ^ String.make 400 ' ') in
      let r = ask sock big in
      check_contains "oversized refused" {|"code":"oversized"|} r;
      let r = ask sock {|{"id":"s","method":"status","params":{}}|} in
      check_contains "daemon survives oversized lines" {|"ok":true|} r)

let test_daemon_warm_requests () =
  with_daemon (fun sock _ ->
      let r1 = ask sock (evaluate_request ~id:"c" spec_src) in
      check_contains "cold first" {|"warm":false|} r1;
      let r2 = ask sock (evaluate_request ~id:"w" spec_src) in
      check_contains "warm second" {|"warm":true|} r2;
      Alcotest.(check int) "one miss" 1 (status_counter sock "cache_misses");
      Alcotest.(check int) "one hit" 1 (status_counter sock "cache_hits"))

let test_daemon_disconnect_mid_request () =
  with_daemon (fun sock _ ->
      (match Client.connect (Client.Unix_sock sock) with
      | Error m -> Alcotest.failf "connect failed: %s" m
      | Ok c ->
          (* half a request, no newline, then vanish *)
          Client.send_partial c {|{"id":"gone","method":"stat|};
          Client.close c);
      (* the daemon must drop the dead client and keep serving *)
      let r = ask sock (sat_request ~id:"alive" ()) in
      check_contains "daemon survives the disconnect" {|"verdict":"unsat"|} r)

let test_daemon_concurrent_clients () =
  with_daemon (fun sock _ ->
      let reqs =
        List.init 6 (fun i ->
            if i mod 2 = 0 then sat_request ~id:(Printf.sprintf "c%d" i) ()
            else evaluate_request ~id:(Printf.sprintf "c%d" i) spec_src)
      in
      match Client.burst (Client.Unix_sock sock) reqs with
      | Error m -> Alcotest.failf "burst failed: %s" m
      | Ok replies ->
          Alcotest.(check int) "every client answered" 6 (List.length replies);
          List.iteri
            (fun i r ->
              check_contains "replies matched to their connection"
                (Printf.sprintf {|"id":"c%d"|} i)
                r;
              Alcotest.(check bool) "reply ok" true (Protocol.reply_is_ok r))
            replies)

let test_daemon_worker_crash () =
  with_daemon (fun sock _ ->
      let r = ask sock (evaluate_request ~id:"boom" ~chaos:"kill" spec_src) in
      check_contains "crash becomes one error reply"
        {|"code":"worker_crashed"|} r;
      check_contains "crash reply keeps the id" {|"id":"boom"|} r;
      (* exactly one request was lost; the daemon answers the next one *)
      let r = ask sock (evaluate_request ~id:"next" spec_src) in
      Alcotest.(check bool) "daemon keeps serving" true
        (Protocol.reply_is_ok r);
      Alcotest.(check int) "one respawn" 1
        (status_counter sock "worker_respawns"))

let test_daemon_hard_deadline () =
  with_daemon (fun sock _ ->
      (* cooperative deadline 50 ms, worker wedged for 30 s: the daemon's
         3 x deadline + 2 s backstop must kill it and answer *)
      let r =
        ask sock
          (evaluate_request ~id:"dl" ~chaos:"sleep:30000" ~deadline_ms:50.
             spec_src)
      in
      check_contains "backstop answered" {|"code":"deadline_exceeded"|} r;
      Alcotest.(check int) "wedged worker was replaced" 1
        (status_counter sock "worker_respawns"))

let test_daemon_sigterm_shutdown () =
  let sock, pid = start_daemon () in
  let r = ask sock (sat_request ~id:"pre" ()) in
  Alcotest.(check bool) "served before shutdown" true (Protocol.reply_is_ok r);
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
  | _ -> Alcotest.fail "daemon did not exit cleanly");
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors carry positions" `Quick test_json_errors;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
          Alcotest.test_case "raw embedding" `Quick test_json_raw;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "valid requests" `Quick test_protocol_valid;
          Alcotest.test_case "error replies" `Quick test_protocol_errors;
          Alcotest.test_case "cache keys" `Quick test_protocol_cache_keys;
          Alcotest.test_case "reply shapes" `Quick test_protocol_replies;
        ] );
      ( "registry",
        [ Alcotest.test_case "lru bound and stats" `Quick test_registry_lru ] );
      ( "handler",
        [
          Alcotest.test_case "errors and warmth" `Quick
            test_handler_errors_and_warmth;
        ] );
      ( "pool",
        [
          Alcotest.test_case "roundtrip" `Quick test_pool_roundtrip;
          Alcotest.test_case "kill -9 of a busy worker" `Quick test_pool_kill9;
          Alcotest.test_case "hard deadline" `Quick test_pool_hard_deadline;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "protocol errors" `Quick
            test_daemon_protocol_errors;
          Alcotest.test_case "oversized requests" `Quick test_daemon_oversized;
          Alcotest.test_case "warm repeat requests" `Quick
            test_daemon_warm_requests;
          Alcotest.test_case "disconnect mid-request" `Quick
            test_daemon_disconnect_mid_request;
          Alcotest.test_case "concurrent clients" `Quick
            test_daemon_concurrent_clients;
          Alcotest.test_case "worker crash costs one request" `Quick
            test_daemon_worker_crash;
          Alcotest.test_case "hard deadline backstop" `Quick
            test_daemon_hard_deadline;
          Alcotest.test_case "sigterm shutdown" `Quick
            test_daemon_sigterm_shutdown;
        ] );
    ]
