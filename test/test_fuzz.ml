(* Tests for the differential fuzzing harness itself: seeded determinism
   of the generators, the DPLL reference against hand-checkable inputs,
   zero-discrepancy smoke campaigns for all seven targets, the chaos
   injection path (caught, shrunk, persisted), and regression-corpus
   replay. *)

open Specrepair_sat
module Fuzz = Specrepair_fuzz
module Rng = Fuzz.Rng
module Gen = Fuzz.Gen
module Harness = Fuzz.Harness
module Alloy = Specrepair_alloy

(* A fresh directory path per call; the harness creates it lazily, only
   when a discrepancy is persisted. *)
let tmp_dir =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)

(* {2 Rng} *)

let test_rng_deterministic () =
  let stream seed path =
    let rng = Rng.of_context ~seed path in
    List.init 50 (fun _ -> Rng.next_int64 rng)
  in
  Alcotest.(check bool)
    "same seed, same path" true
    (stream 42 [ "sat"; "iter"; "3" ] = stream 42 [ "sat"; "iter"; "3" ]);
  Alcotest.(check bool)
    "different seed" false
    (stream 42 [ "sat"; "iter"; "3" ] = stream 43 [ "sat"; "iter"; "3" ]);
  Alcotest.(check bool)
    "different path" false
    (stream 42 [ "sat"; "iter"; "3" ] = stream 42 [ "sat"; "iter"; "4" ])

let test_rng_ranges () =
  let rng = Rng.of_context ~seed:1 [ "ranges" ] in
  for _ = 1 to 1000 do
    let v = Rng.range rng 3 7 in
    Alcotest.(check bool) "range inclusive" true (v >= 3 && v <= 7);
    let w = Rng.int rng 5 in
    Alcotest.(check bool) "int bound" true (w >= 0 && w < 5)
  done

(* {2 Generators} *)

let test_gen_deterministic () =
  let cnf_of seed =
    Format.asprintf "%a" Dimacs.print (Gen.cnf (Rng.of_context ~seed [ "g" ]))
  in
  Alcotest.(check string) "same seed, same cnf" (cnf_of 9) (cnf_of 9);
  Alcotest.(check bool) "different seeds differ" true
    (List.exists
       (fun s -> cnf_of s <> cnf_of 9)
       [ 10; 11; 12; 13; 14 ]);
  let spec_of seed =
    let env = Gen.spec ~with_commands:true (Rng.of_context ~seed [ "g" ]) in
    Alloy.Pretty.spec_to_string env.Alloy.Typecheck.spec
  in
  Alcotest.(check string) "same seed, same spec" (spec_of 9) (spec_of 9);
  Alcotest.(check bool) "different seeds give different specs" true
    (List.exists (fun s -> spec_of s <> spec_of 9) [ 10; 11; 12; 13; 14 ])

let test_gen_specs_well_typed () =
  for seed = 0 to 30 do
    let env = Gen.spec ~with_commands:true (Rng.of_context ~seed [ "wt" ]) in
    match Alloy.Typecheck.check_result env.Alloy.Typecheck.spec with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "seed %d generated an ill-typed spec: %s" seed msg
  done

(* {2 The DPLL reference} *)

let lit = Lit.of_dimacs

let test_ref_sat_basics () =
  let cnf = { Dimacs.num_vars = 2; clauses = [ [ lit 1; lit 2 ]; [ lit (-1) ] ] } in
  (match Fuzz.Ref_sat.solve cnf with
  | Fuzz.Ref_sat.Sat m ->
      Alcotest.(check bool) "x1 false" false m.(0);
      Alcotest.(check bool) "x2 true" true m.(1)
  | Fuzz.Ref_sat.Unsat -> Alcotest.fail "expected sat");
  let unsat =
    { Dimacs.num_vars = 1; clauses = [ [ lit 1 ]; [ lit (-1) ] ] }
  in
  (match Fuzz.Ref_sat.solve unsat with
  | Fuzz.Ref_sat.Unsat -> ()
  | Fuzz.Ref_sat.Sat _ -> Alcotest.fail "expected unsat");
  match Fuzz.Ref_sat.solve ~assumptions:[ lit (-2) ] cnf with
  | Fuzz.Ref_sat.Unsat -> ()
  | Fuzz.Ref_sat.Sat _ -> Alcotest.fail "assumptions must bind"

let test_ref_sat_vs_solver () =
  for seed = 0 to 199 do
    let rng = Rng.of_context ~seed [ "refsat" ] in
    let cnf = Gen.cnf rng in
    let assumptions =
      if Rng.bool rng then Gen.assumptions rng ~num_vars:cnf.Dimacs.num_vars
      else []
    in
    let s = Solver.create () in
    ignore (Solver.new_vars s cnf.Dimacs.num_vars);
    List.iter (Solver.add_clause s) cnf.Dimacs.clauses;
    match (Solver.solve ~assumptions s, Fuzz.Ref_sat.solve ~assumptions cnf) with
    | Solver.Sat, Fuzz.Ref_sat.Sat _ | Solver.Unsat, Fuzz.Ref_sat.Unsat -> ()
    | r, _ ->
        Alcotest.failf "seed %d: solver %s disagrees with reference" seed
          (match r with
          | Solver.Sat -> "sat"
          | Solver.Unsat -> "unsat"
          | Solver.Unknown -> "unknown")
  done

(* {2 Campaign smoke: all six targets, zero discrepancies} *)

let smoke target iters () =
  let dir = tmp_dir "fuzz-smoke" in
  let r = Harness.run ~corpus_dir:dir target ~seed:11 ~iters () in
  Alcotest.(check int) "zero discrepancies" 0 r.Harness.discrepancies;
  Alcotest.(check int) "all iterations accounted for" iters
    (r.Harness.checks + r.Harness.skipped)

let test_report_deterministic () =
  let dir = tmp_dir "fuzz-det" in
  let run () =
    Harness.report_json
      (Harness.run ~corpus_dir:dir Harness.Sat_target ~seed:5 ~iters:60 ())
  in
  Alcotest.(check string) "byte-identical reports" (run ()) (run ())

(* {2 Chaos injection: caught, shrunk, persisted, replayable} *)

let test_chaos_injection () =
  let dir = tmp_dir "fuzz-chaos" in
  Unix.putenv "SPECREPAIR_FUZZ_CHAOS" "drop-clause";
  let r =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "SPECREPAIR_FUZZ_CHAOS" "")
      (fun () -> Harness.run ~corpus_dir:dir Harness.Sat_target ~seed:42 ~iters:50 ())
  in
  Alcotest.(check bool) "injected fault detected" true
    (r.Harness.discrepancies > 0);
  Alcotest.(check int) "one corpus entry per discrepancy"
    r.Harness.discrepancies
    (List.length r.Harness.corpus);
  List.iter
    (fun path ->
      Alcotest.(check bool) "corpus entry exists" true (Sys.file_exists path);
      let cnf, _ = Fuzz.Corpus.load_cnf path in
      (* the shrinker must have reduced the failure to a handful of
         clauses: dropping any one of them makes the checkers agree *)
      Alcotest.(check bool) "entry is minimized" true
        (List.length cnf.Dimacs.clauses <= 3))
    r.Harness.corpus;
  (* with the fault healed, every persisted entry replays clean *)
  List.iter
    (fun (path, res) ->
      match res with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "replay of %s failed: %s" path msg)
    (Harness.replay_dir dir)

(* The proof target under chaos: the checker sees every premise but the
   last, so certificates stop checking — a rejection counted as a
   discrepancy, never a crash — and the persisted entries replay clean
   once the fault is healed. *)
let test_chaos_proof_rejection () =
  let dir = tmp_dir "fuzz-chaos-proof" in
  Unix.putenv "SPECREPAIR_FUZZ_CHAOS" "drop-clause";
  let r =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "SPECREPAIR_FUZZ_CHAOS" "")
      (fun () ->
        Harness.run ~corpus_dir:dir Harness.Proof_target ~seed:42 ~iters:50 ())
  in
  Alcotest.(check bool) "tampered certificates rejected" true
    (r.Harness.discrepancies > 0);
  Alcotest.(check int) "every iteration still completed" 50
    (r.Harness.checks + r.Harness.skipped);
  List.iter
    (fun (path, res) ->
      match res with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "replay of %s failed: %s" path msg)
    (Harness.replay_dir dir)

(* The simplify target under chaos: an unjustified strengthening inside
   the inprocessing driver must be caught — by the DRUP checker or by the
   verdict/model comparison — shrunk, and persisted; the entries replay
   clean once the fault is healed. *)
let test_chaos_simplify_rejection () =
  let dir = tmp_dir "fuzz-chaos-simplify" in
  Unix.putenv "SPECREPAIR_FUZZ_CHAOS" "corrupt-simplify";
  let r =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "SPECREPAIR_FUZZ_CHAOS" "")
      (fun () ->
        Harness.run ~corpus_dir:dir Harness.Simplify_target ~seed:42 ~iters:60
          ())
  in
  Alcotest.(check bool) "unjustified simplification caught" true
    (r.Harness.discrepancies > 0);
  Alcotest.(check int) "every iteration still completed" 60
    (r.Harness.checks + r.Harness.skipped);
  List.iter
    (fun (path, res) ->
      match res with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "replay of %s failed: %s" path msg)
    (Harness.replay_dir dir)

(* The parse target under chaos: one token of each printed spec is
   replaced with garbage, and the frontend must reject every corrupted
   source with a diagnostic placed exactly at the corruption.  Unlike the
   other hooks, correct behaviour here is rejection, so the campaign must
   finish with zero discrepancies. *)
let test_chaos_parse_rejection () =
  let dir = tmp_dir "fuzz-chaos-parse" in
  Unix.putenv "SPECREPAIR_FUZZ_CHAOS" "corrupt-token";
  let r =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "SPECREPAIR_FUZZ_CHAOS" "")
      (fun () ->
        Harness.run ~corpus_dir:dir Harness.Parse_target ~seed:42 ~iters:60 ())
  in
  Alcotest.(check int) "every corrupted source rejected with a position" 0
    r.Harness.discrepancies;
  Alcotest.(check int) "every iteration completed" 60
    (r.Harness.checks + r.Harness.skipped)

(* {2 Regression corpus replay} *)

(* `dune runtest` runs from the test directory, `dune exec` from the
   project root; the committed corpus is reachable from both. *)
let corpus_dir =
  if Sys.file_exists "../artifacts/fuzz" then "../artifacts/fuzz"
  else "artifacts/fuzz"

let test_corpus_replay () =
  let entries = Harness.replay_dir corpus_dir in
  Alcotest.(check bool) "corpus is not empty" true (entries <> []);
  List.iter
    (fun (path, res) ->
      match res with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "regression %s failed: %s" path msg)
    entries

let () =
  Alcotest.run "fuzz"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
        ] );
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "well-typed specs" `Quick test_gen_specs_well_typed;
        ] );
      ( "reference sat",
        [
          Alcotest.test_case "basics" `Quick test_ref_sat_basics;
          Alcotest.test_case "agrees with solver" `Quick test_ref_sat_vs_solver;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "sat" `Quick (smoke Harness.Sat_target 150);
          Alcotest.test_case "solver" `Quick (smoke Harness.Solver_target 40);
          Alcotest.test_case "oracle" `Quick (smoke Harness.Oracle_target 25);
          Alcotest.test_case "eval" `Quick (smoke Harness.Eval_target 40);
          Alcotest.test_case "proof" `Quick (smoke Harness.Proof_target 100);
          Alcotest.test_case "simplify" `Quick
            (smoke Harness.Simplify_target 60);
          Alcotest.test_case "parse" `Quick (smoke Harness.Parse_target 150);
          Alcotest.test_case "deterministic report" `Quick
            test_report_deterministic;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "injection caught" `Quick test_chaos_injection;
          Alcotest.test_case "proof rejection" `Quick
            test_chaos_proof_rejection;
          Alcotest.test_case "simplify rejection" `Quick
            test_chaos_simplify_rejection;
          Alcotest.test_case "parse rejection" `Quick
            test_chaos_parse_rejection;
        ] );
      ( "corpus",
        [ Alcotest.test_case "regression replay" `Quick test_corpus_replay ] );
    ]
