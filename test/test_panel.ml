(* Tests for the model panel: per-profile determinism, cross-profile
   divergence, temperature sharpening, the malformed-output channel, and
   the guidance blocklist contract. *)

open Specrepair_alloy
module Llm = Specrepair_llm
module Rng = Llm.Rng
module Model = Llm.Model
module Location = Specrepair_mutation.Location

let faulty_src =
  {|
sig Node {
  edges: set Node
}
fact Acyclic {
  some n: Node | n in n.^edges
}
assert NoLoop {
  all n: Node | n not in n.^edges
}
check NoLoop for 3
run { some edges } for 3
|}

let task =
  lazy
    (Llm.Task.make ~spec_id:"panel_test" ~domain:"graphs"
       ~faulty:(Parser.parse faulty_src)
       ~fault_sites:[ Location.Fact_site 0 ]
       ~fault_paths:[ (Location.Fact_site 0, []) ]
       ~fault_classes:[ "quant-swap" ]
       ~fix_description:"the quantifier in fact#0 is wrong"
       ~check_names:[ "NoLoop" ] ())

(* [n] proposals drawn left-to-right from one stream, rendered to sources
   so list comparison is a byte-for-byte comparison of the proposals. *)
let stream ?(context = "panel") profile ~seed n =
  let t = Lazy.force task in
  let rng = Rng.of_context ~seed [ context; profile.Model.name ] in
  let rec go i acc =
    if i = n then List.rev acc
    else
      let rendered =
        match Model.propose profile ~rng ~hints:[] Model.no_guidance t with
        | Some s -> Pretty.spec_to_string s
        | None -> "<none>"
      in
      go (i + 1) (rendered :: acc)
  in
  go 0 []

(* Same profile, same seed: the proposal stream is byte-identical. *)
let test_stream_deterministic () =
  List.iter
    (fun p ->
      Alcotest.(check (list string))
        (p.Model.name ^ " stream reproducible") (stream p ~seed:11 40)
        (stream p ~seed:11 40))
    Model.panel

(* Distinct profiles, same seed and context: the streams diverge — the
   competence maps, priors and temperatures are behaviourally distinct,
   not just differently named. *)
let test_profiles_diverge () =
  let streams =
    List.map (fun p -> (p.Model.name, stream ~context:"div" p ~seed:7 30)) Model.panel
  in
  List.iteri
    (fun i (ni, si) ->
      List.iteri
        (fun j (nj, sj) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s diverge" ni nj)
              false (si = sj))
        streams)
    streams

(* Temperature -> 0 sharpens sampling towards the argmax of the weighted
   pattern space; a hot profile spreads over many distinct proposals. *)
let test_temperature_sharpens () =
  let base =
    {
      Model.gpt4 with
      Model.name = "temp-probe";
      compound_rate = 0.;
      malformed_rate = 0.;
      self_check_samples = 1;
    }
  in
  let distinct temperature =
    let t = Lazy.force task in
    let profile = { base with Model.temperature } in
    let tbl = Hashtbl.create 64 in
    for seed = 1 to 80 do
      let rng = Rng.of_context ~seed [ "temp"; string_of_float temperature ] in
      match Model.propose profile ~rng ~hints:[] Model.no_guidance t with
      | Some s ->
          let key = Pretty.spec_to_string s in
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | None -> ()
    done;
    let modal = Hashtbl.fold (fun _ n acc -> max n acc) tbl 0 in
    (Hashtbl.length tbl, modal)
  in
  let cold_distinct, cold_modal = distinct 0.001 in
  let hot_distinct, hot_modal = distinct 10.0 in
  (* observed at these pinned seeds: cold 6 distinct / modal 35-of-80,
     hot 73 distinct / modal 3-of-80 — assert with a 4x margin *)
  if not (cold_distinct * 4 < hot_distinct) then
    Alcotest.failf "cold sampling not sharper: %d distinct vs %d hot"
      cold_distinct hot_distinct;
  if not (cold_modal > 4 * hot_modal) then
    Alcotest.failf "cold mode not dominant: modal %d vs %d hot" cold_modal
      hot_modal

(* malformed_rate = 0: every answer that proposes a spec re-parses.  The
   model may still give up in prose (no spec to parse), but it must never
   emit a truncated specification. *)
let test_zero_malformed_reparses () =
  let t = Lazy.force task in
  let prompt = Llm.Prompt.single t Llm.Prompt.SLoc_fix in
  List.iter
    (fun p ->
      let profile = { p with Model.malformed_rate = 0. } in
      let parsed = ref 0 in
      for seed = 1 to 50 do
        let rng = Rng.of_context ~seed [ "reparse"; p.Model.name ] in
        let response = Model.respond profile ~rng Model.no_guidance prompt in
        match Llm.Extract.spec_of_response response with
        | Some _ -> incr parsed
        | None ->
            (* the only legitimate spec-free answer is an explicit give-up *)
            let gave_up =
              let needle = "could not determine" in
              let nl = String.length needle and rl = String.length response in
              let rec find i =
                i + nl <= rl
                && (String.sub response i nl = needle || find (i + 1))
              in
              find 0
            in
            if not gave_up then
              Alcotest.failf "%s: unparseable response at seed %d:\n%s"
                p.Model.name seed response
      done;
      if !parsed < 25 then
        Alcotest.failf "%s: only %d/50 responses carried a spec" p.Model.name
          !parsed)
    Model.panel

(* ... and a profile with the channel wide open must actually truncate. *)
let test_malformed_channel_exists () =
  let t = Lazy.force task in
  let prompt = Llm.Prompt.single t Llm.Prompt.SLoc_fix in
  let profile = { Model.gpt4 with Model.malformed_rate = 0.9 } in
  let failures = ref 0 in
  for seed = 1 to 30 do
    let rng = Rng.of_context ~seed [ "malformed" ] in
    let response = Model.respond profile ~rng Model.no_guidance prompt in
    if Llm.Extract.spec_of_response response = None then incr failures
  done;
  Alcotest.(check bool) "some responses are malformed" true (!failures > 0)

(* Guidance blocklist: across 1000 sampled proposals per profile, with the
   blocklist rolling over the most recent accepted proposals, no proposal
   ever equals the faulty spec or a blocked spec, and every proposal
   type-checks. *)
let test_blocklist_never_violated () =
  let t = Lazy.force task in
  List.iter
    (fun p ->
      let rng = Rng.of_context ~seed:3 [ "blocked"; p.Model.name ] in
      let blocked = ref [ t.Llm.Task.faulty ] in
      let accepted = ref 0 in
      for i = 1 to 1000 do
        let guidance = { Model.no_guidance with Model.blocked = !blocked } in
        match Model.propose p ~rng ~hints:[] guidance t with
        | None -> ()
        | Some prop ->
            incr accepted;
            if Ast.equal_spec prop t.Llm.Task.faulty then
              Alcotest.failf "%s: proposal %d equals the faulty spec"
                p.Model.name i;
            if List.exists (Ast.equal_spec prop) !blocked then
              Alcotest.failf "%s: proposal %d violates the blocklist"
                p.Model.name i;
            (match Typecheck.check_result prop with
            | Ok _ -> ()
            | Error _ ->
                Alcotest.failf "%s: proposal %d does not type-check"
                  p.Model.name i);
            blocked :=
              prop :: List.filteri (fun j _ -> j < 5) !blocked
      done;
      if !accepted = 0 then
        Alcotest.failf "%s: no proposal accepted in 1000 draws" p.Model.name)
    Model.panel

let () =
  Alcotest.run "panel"
    [
      ( "determinism",
        [
          Alcotest.test_case "stream reproducible" `Quick
            test_stream_deterministic;
          Alcotest.test_case "profiles diverge" `Quick test_profiles_diverge;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "temperature sharpens" `Quick
            test_temperature_sharpens;
          Alcotest.test_case "zero malformed re-parses" `Quick
            test_zero_malformed_reparses;
          Alcotest.test_case "malformed channel exists" `Quick
            test_malformed_channel_exists;
        ] );
      ( "guidance",
        [
          Alcotest.test_case "blocklist never violated" `Quick
            test_blocklist_never_violated;
        ] );
    ]
