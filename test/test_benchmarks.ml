(* Tests for the benchmark: ground-truth health, fault-injection invariants
   (observable, revertible, deterministic), and benchmark sizes. *)

open Specrepair_alloy
module B = Specrepair_benchmarks
module Repair = Specrepair_repair

let test_domain_inventory () =
  Alcotest.(check int) "6 A4F domains" 6 (List.length B.Domains.a4f);
  Alcotest.(check int) "12 ARepair problems" 12 (List.length B.Domains.arepair);
  Alcotest.(check int) "A4F size from Table I" 1936
    (B.Domains.total_count B.Domains.A4F);
  Alcotest.(check int) "ARepair size from Table I" 38
    (B.Domains.total_count B.Domains.ARepair_bench)

let test_table1_row_counts () =
  let expected =
    [
      ("classroom", 999); ("cv", 138); ("graphs", 283); ("lts", 249);
      ("production", 61); ("trash", 206); ("addr", 1); ("arr", 2);
      ("balancedBST", 3); ("bempl", 1); ("cd", 2); ("ctree", 1); ("dll", 4);
      ("farmer", 1); ("fsm", 2); ("grade", 1); ("other", 1); ("student", 19);
    ]
  in
  List.iter
    (fun (name, count) ->
      match B.Domains.find name with
      | Some d -> Alcotest.(check int) name count d.count
      | None -> Alcotest.failf "missing domain %s" name)
    expected

let test_ground_truths_healthy () =
  List.iter
    (fun (d : B.Domains.t) ->
      let env = B.Domains.env d in
      Alcotest.(check bool) (d.name ^ " passes its own commands") true
        (Repair.Common.oracle_passes ~max_conflicts:50_000
           (Repair.Session.create env) env);
      Alcotest.(check bool) (d.name ^ " has a check command") true
        (List.exists
           (fun (c : Ast.command) ->
             match c.cmd_kind with Ast.Check _ -> true | _ -> false)
           env.spec.commands);
      Alcotest.(check bool) (d.name ^ " has a run command") true
        (List.exists
           (fun (c : Ast.command) ->
             match c.cmd_kind with
             | Ast.Run_pred _ | Ast.Run_fmla _ -> true
             | Ast.Check _ -> false)
           env.spec.commands))
    B.Domains.all

let test_mixes_normalized () =
  List.iter
    (fun (d : B.Domains.t) ->
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. d.fault_mix in
      Alcotest.(check bool)
        (d.name ^ " mix sums to ~1")
        true
        (Float.abs (total -. 1.0) < 0.01);
      List.iter
        (fun (c, _) ->
          Alcotest.(check bool)
            (d.name ^ " uses known class " ^ c)
            true (List.mem c B.Fault.classes))
        d.fault_mix)
    B.Domains.all

let sample_variants =
  lazy
    (List.concat_map
       (fun (d : B.Domains.t) ->
         List.init (min 3 d.count) (fun i -> (d, B.Fault.inject ~seed:42 d ~index:i)))
       B.Domains.all)

let test_injection_invariants () =
  List.iter
    (fun ((d : B.Domains.t), (inj : B.Fault.injected)) ->
      let gt = B.Domains.spec d in
      Alcotest.(check bool) (d.name ^ ": faulty differs") false
        (Ast.equal_spec inj.faulty gt);
      Alcotest.(check bool) (d.name ^ ": faulty type-checks") true
        (Result.is_ok (Typecheck.check_result inj.faulty));
      Alcotest.(check bool) (d.name ^ ": observable (REP=0)") false
        (Specrepair_metrics.Rep.rep ~ground_truth:gt ~candidate:inj.faulty ());
      Alcotest.(check bool) (d.name ^ ": has fault metadata") true
        (inj.sites <> [] && inj.revert_classes <> [] && inj.description <> "");
      Alcotest.(check bool)
        (d.name ^ ": declarations untouched")
        true
        ((Typecheck.check inj.faulty).spec.sigs = gt.sigs))
    (Lazy.force sample_variants)

let test_injection_deterministic () =
  let d = Option.get (B.Domains.find "graphs") in
  let a = B.Fault.inject ~seed:42 d ~index:5 in
  let b = B.Fault.inject ~seed:42 d ~index:5 in
  Alcotest.(check bool) "same seed, same fault" true
    (Ast.equal_spec a.faulty b.faulty);
  let c = B.Fault.inject ~seed:43 d ~index:5 in
  ignore c (* different seed simply must not crash *)

let test_variants_distinct_mostly () =
  (* small specs admit few distinct faults, so duplicates occur (as they do
     among real Alloy4Fun submissions); require only a reasonable spread *)
  let d = Option.get (B.Domains.find "graphs") in
  let vs = List.init 12 (fun i -> (B.Fault.inject ~seed:42 d ~index:i).faulty) in
  let distinct = List.length (List.sort_uniq compare vs) in
  Alcotest.(check bool) "graphs variants are diverse" true (distinct >= 4);
  let d = Option.get (B.Domains.find "classroom") in
  let vs = List.init 12 (fun i -> (B.Fault.inject ~seed:42 d ~index:i).faulty) in
  let distinct = List.length (List.sort_uniq compare vs) in
  Alcotest.(check bool) "classroom variants are diverse" true (distinct >= 7)

let test_generate_and_task () =
  let d = Option.get (B.Domains.find "production") in
  let vs = B.Generate.variants d in
  Alcotest.(check int) "count respected" d.count (List.length vs);
  let ids = List.map (fun (v : B.Generate.variant) -> v.id) vs in
  Alcotest.(check int) "unique ids" d.count (List.length (List.sort_uniq compare ids));
  let task = B.Generate.to_task (List.hd vs) in
  Alcotest.(check string) "task domain" "production" task.domain;
  Alcotest.(check bool) "task has checks" true (task.check_names <> []);
  Alcotest.(check bool) "task has fault paths" true (task.fault_paths <> [])

let test_rep_reflexive_on_ground_truths () =
  (* REP of a ground truth against itself must be 1 (commands behave and
     agree); spot-check three domains across both benchmarks *)
  List.iter
    (fun name ->
      let d = Option.get (B.Domains.find name) in
      let gt = B.Domains.spec d in
      Alcotest.(check bool) (name ^ " REP(gt, gt)") true
        (Specrepair_metrics.Rep.rep ~ground_truth:gt ~candidate:gt ()))
    [ "trash"; "lts"; "student" ]

let test_sample_stratified () =
  let s = B.Generate.sample ~per_domain:2 () in
  Alcotest.(check int) "2 per domain (capped by count)"
    (List.fold_left (fun acc (d : B.Domains.t) -> acc + min 2 d.count) 0 B.Domains.all)
    (List.length s)

let () =
  Alcotest.run "benchmarks"
    [
      ( "domains",
        [
          Alcotest.test_case "inventory" `Quick test_domain_inventory;
          Alcotest.test_case "Table I row counts" `Quick test_table1_row_counts;
          Alcotest.test_case "ground truths healthy" `Quick
            test_ground_truths_healthy;
          Alcotest.test_case "fault mixes" `Quick test_mixes_normalized;
        ] );
      ( "injection",
        [
          Alcotest.test_case "invariants" `Slow test_injection_invariants;
          Alcotest.test_case "deterministic" `Quick test_injection_deterministic;
          Alcotest.test_case "diversity" `Quick test_variants_distinct_mostly;
        ] );
      ( "generation",
        [
          Alcotest.test_case "variants and tasks" `Slow test_generate_and_task;
          Alcotest.test_case "stratified sample" `Quick test_sample_stratified;
          Alcotest.test_case "REP reflexive on ground truths" `Slow
            test_rep_reflexive_on_ground_truths;
        ] );
    ]
