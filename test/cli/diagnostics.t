Golden diagnostic tests for the Alloy frontend.  The grammar is a
hand-written recursive-descent parser (menhir is not available in the
build image), so instead of a conflict-free-grammar check these pins
assert the exact caret rendering for each diagnostic class: a change
that shifts a span, loses a note, or garbles the caret line shows up
as a cram diff.

A token the lexer does not know is reported at its exact column:

  $ printf 'sig A {}\nfact { A ?? A }\n' > tok.als
  $ ../../bin/specrepair.exe parse tok.als
  tok.als:2:10: error: unexpected character '?'
    2 | fact { A ?? A }
      |          ^
  [1]

An unbalanced brace is caught at end of input, pointing past the last
line so the missing delimiter is unambiguous:

  $ printf 'sig A {\n  f: set A\n' > brace.als
  $ ../../bin/specrepair.exe parse brace.als
  brace.als:3:1: error: expected } (found <eof>)
    3 | 
      | ^
  [1]

A join that eliminates every column is a type error; the span covers
the whole offending fact and the note names the enclosing declaration:

  $ printf 'sig A { f: set A }\nfact wrong { some A.A }\n' > join.als
  $ ../../bin/specrepair.exe parse join.als
  join.als:2:1: error: join of arities 1 and 1 is empty-arity
    2 | fact wrong { some A.A }
      | ^^^^^^^^^^^^^^^^^^^^^^^
    note: in fact wrong
  [1]

The same diagnostics are available as machine-readable JSON for
tooling (one object per diagnostic, spans included):

  $ ../../bin/specrepair.exe parse --json-diagnostics join.als
  [{"severity":"error","file":"join.als","line":2,"col":1,"end_line":2,"end_col":24,"message":"join of arities 1 and 1 is empty-arity","notes":["in fact wrong"]}]
  [1]

Every Alloy source shipped in the repository — the spec corpus and the
fuzz regression artifacts — must parse and typecheck through the
frontend:

  $ for f in ../../specs/*.als ../../artifacts/fuzz/*.als; do
  >   ../../bin/specrepair.exe parse "$f" || echo "FAIL: $f"
  > done
  ../../specs/filesystem.als:8:1: warning: open util/ordering is ignored: module imports are not modeled
    8 | open util/ordering
      | ^^^^^^^^^^^^^^^^^^
  ../../specs/filesystem.als:43:31: warning: exactly is treated as an upper bound for Dir
    43 | check RootIsTop for exactly 3 Dir, 4 Object
       |                               ^^^
