The fuzz subcommand cross-checks the production stack against the
reference oracles and prints a deterministic JSON summary: the same
seed yields byte-identical output.

  $ ../../bin/specrepair.exe fuzz --target sat --iters 40 --seed 42 --corpus-dir corpus > run1.json
  $ ../../bin/specrepair.exe fuzz --target sat --iters 40 --seed 42 --corpus-dir corpus > run2.json
  $ cmp run1.json run2.json && cat run1.json
  {"fuzz":{"seed":42,"corpus_dir":"corpus","targets":[{"target":"sat","seed":42,"iters":40,"checks":40,"skipped":0,"discrepancies":0,"corpus":[]}],"total_discrepancies":0}}

A different seed explores different inputs but stays clean:

  $ ../../bin/specrepair.exe fuzz --target eval --iters 20 --seed 7 --corpus-dir corpus
  {"fuzz":{"seed":7,"corpus_dir":"corpus","targets":[{"target":"eval","seed":7,"iters":20,"checks":20,"skipped":0,"discrepancies":0,"corpus":[]}],"total_discrepancies":0}}

Nonsensical iteration counts and unknown targets are rejected at the
flag parser, before any campaign starts:

  $ ../../bin/specrepair.exe fuzz --iters 0
  specrepair: option '--iters': expected a positive integer
  Usage: specrepair fuzz [OPTION]…
  Try 'specrepair fuzz --help' or 'specrepair --help' for more information.
  [124]

  $ ../../bin/specrepair.exe fuzz --target dpll
  specrepair: option '--target': invalid value 'dpll', expected one of 'sat',
              'solver', 'oracle', 'eval', 'proof', 'simplify', 'parse',
              'stream' or 'panel'
  Usage: specrepair fuzz [OPTION]…
  Try 'specrepair fuzz --help' or 'specrepair --help' for more information.
  [124]

An injected fault in the reference checker (the drop-clause chaos
hook) is caught, shrunk, persisted to the corpus, and fails the run:

  $ SPECREPAIR_FUZZ_CHAOS=drop-clause ../../bin/specrepair.exe fuzz --target sat --iters 50 --seed 42 --corpus-dir chaos > chaos.json
  [1]
  $ grep -o '"total_discrepancies":2' chaos.json
  "total_discrepancies":2
  $ cat chaos/sat-s42-i0006.cnf
  c specrepair fuzz regression sat-s42-i0006 (seed 42)
  c assumptions: 2 1 2
  p cnf 2 1
  0

The proof target solves random CNFs with DRUP logging on and requires
the independent checker to accept every certificate:

  $ ../../bin/specrepair.exe fuzz --target proof --iters 50 --seed 42 --corpus-dir pcorpus
  {"fuzz":{"seed":42,"corpus_dir":"pcorpus","targets":[{"target":"proof","seed":42,"iters":50,"checks":50,"skipped":0,"discrepancies":0,"corpus":[]}],"total_discrepancies":0}}

Under the same chaos hook the checker is fed every premise but the
last, so certificates stop checking: each rejection is a discrepancy
and the run fails:

  $ SPECREPAIR_FUZZ_CHAOS=drop-clause ../../bin/specrepair.exe fuzz --target proof --iters 50 --seed 42 --corpus-dir proofchaos > proofchaos.json
  [1]
  $ grep -o '"checks":50,"skipped":0,"discrepancies":36' proofchaos.json
  "checks":50,"skipped":0,"discrepancies":36
