The repair daemon and its client.  Unix-domain socket paths are limited
to ~104 bytes, so the socket lives under /tmp, not the cram sandbox:

  $ workdir=$(mktemp -d /tmp/serve_cram.XXXXXX)
  $ sock="$workdir/d.sock"
  $ SPECREPAIR_SERVE_CHAOS=1 ../../bin/specrepair.exe serve --socket "$sock" --workers 2 > "$workdir/daemon.log" 2>&1 &
  $ daemon=$!
  $ for i in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done

Missing listener configuration is a usage error, not a hang:

  $ ../../bin/specrepair.exe serve 2>&1 | head -1
  specrepair: serve needs --socket PATH or --tcp PORT

A repair request round-trips as one JSON reply line:

  $ ../../bin/specrepair.exe client repair --socket "$sock" --file ../../specs/graph_faulty.als --tool beafix | grep -o '"repaired":true'
  "repaired":true

Repeated evaluate requests hit the warm per-worker session — the first
is cold, every repeat is warm:

  $ ../../bin/specrepair.exe client evaluate --socket "$sock" --file ../../specs/graph.als --repeat 3 | grep -c '"warm":true'
  2

SAT requests answer DIMACS verdicts:

  $ printf 'p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n' > unsat.cnf
  $ ../../bin/specrepair.exe client sat --socket "$sock" --file unsat.cnf | grep -o '"verdict":"unsat"'
  "verdict":"unsat"

Protocol errors are structured replies with a nonzero client exit, and
the correlation id survives even malformed requests:

  $ ../../bin/specrepair.exe client --socket "$sock" --raw 'not json' > reply.json; echo "client exit $?"
  client exit 1
  $ grep -o '"code":"parse_error"' reply.json
  "code":"parse_error"
  $ ../../bin/specrepair.exe client --socket "$sock" --raw '{"id":"x9","method":"warp","params":{}}' | grep -o '"id":"x9","ok":false,"error":{"code":"unknown_method"'
  "id":"x9","ok":false,"error":{"code":"unknown_method"

A spec that fails the frontend earns positioned diagnostics in the
reply, not a dead connection:

  $ echo 'sig {}' > bad.als
  $ ../../bin/specrepair.exe client repair --socket "$sock" --file bad.als > reply.json; echo "client exit $?"
  client exit 1
  $ grep -o '"code":"spec_error"' reply.json
  "code":"spec_error"
  $ grep -o '"diagnostics":\[' reply.json
  "diagnostics":[

A chaos-killed worker costs exactly the request it was serving; the
daemon respawns the slot and keeps answering:

  $ ../../bin/specrepair.exe client evaluate --socket "$sock" --file ../../specs/graph.als --chaos kill > reply.json; echo "client exit $?"
  client exit 1
  $ grep -o '"code":"worker_crashed"' reply.json
  "code":"worker_crashed"
  $ ../../bin/specrepair.exe client evaluate --socket "$sock" --file ../../specs/graph.als | grep -o '"ok":true'
  "ok":true
  $ ../../bin/specrepair.exe client status --socket "$sock" | grep -o '"worker_respawns":1'
  "worker_respawns":1

SIGTERM shuts the daemon down cleanly and unlinks the socket:

  $ kill -TERM "$daemon" && wait "$daemon"
  $ [ -S "$sock" ] && echo still-there || echo gone
  gone
  $ grep -c 'serve: shutdown' "$workdir/daemon.log"
  1
  $ rm -rf "$workdir"
