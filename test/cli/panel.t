The model panel on the CLI: per-profile repair, roster-restricted
evaluation, the hybrid coverage table, and the learned portfolio.

Repair answers with a specific panel profile:

  $ ../../bin/specrepair.exe repair ../../specs/graph_faulty.als --tool multi --profile gemini-pro | head -2
  tool: Multi-Round_Generic
  repaired: true

Unknown profiles are rejected at the flag parser, before any work runs:

  $ ../../bin/specrepair.exe repair ../../specs/graph_faulty.als --profile gpt-5
  specrepair: option '--profile': invalid value 'gpt-5', expected one of
              'gpt-4', 'gpt-3.5', 'gemini-pro' or 'llama-3'
  Usage: specrepair repair [OPTION]… FILE
  Try 'specrepair repair --help' or 'specrepair --help' for more information.
  [124]

  $ ../../bin/specrepair.exe evaluate --profile mistral
  specrepair: option '--profile': invalid value 'mistral', expected one of
              'gpt-4', 'gpt-3.5', 'gemini-pro' or 'llama-3'
  Usage: specrepair evaluate [OPTION]…
  Try 'specrepair evaluate --help' or 'specrepair --help' for more information.
  [124]

Evaluate restricted to one profile runs its eight LLM techniques (plus
the traditional four) and the panel table shows exactly that roster:

  $ ../../bin/specrepair.exe evaluate --sample 1 --profile gemini-pro --show table3 2>/dev/null | grep 'gemini-pro'
  gemini-pro          8       15     83.3%

The hybrid coverage table extends the paper's Table II with the panel
union: at two variants per domain the union strictly exceeds every
single profile's coverage:

  $ ../../bin/specrepair.exe hybrid-table --sample 2 2>/dev/null
  TABLE III: model-panel coverage (union analysis across profiles)
  
  Profile         techs  repairs  coverage
  gpt-4               1       23     76.7%
  gpt-3.5             1        6     20.0%
  gemini-pro          1       18     60.0%
  llama-3             1       10     33.3%
  Panel union         4       25     83.3%
  
  Panel union strictly exceeds every single profile: true



hybrid-table mines its rows into a digest-protected statistics file the
learned portfolio can load; a task with no fault metadata has an unknown
defect class, so the portfolio falls back to the static pipeline and
says so:

  $ ../../bin/specrepair.exe hybrid-table --sample 1 --stats-out stats.txt > /dev/null 2>&1
  $ head -1 stats.txt | cut -d' ' -f1-2
  specrepair-stats v1
  $ ../../bin/specrepair.exe repair ../../specs/graph_faulty.als --tool portfolio --learned --stats stats.txt 2>plan.txt | head -2
  tool: Portfolio
  repaired: true
  $ cat plan.txt
  plan: class unknown, cold start (static pipeline)

A tampered statistics file is rejected loudly instead of silently
steering the portfolio:

  $ sed 's/[0-9]/5/g' stats.txt > tampered.txt
  $ ../../bin/specrepair.exe repair ../../specs/graph_faulty.als --tool portfolio --learned --stats tampered.txt 2>&1 | grep -o 'statistics rejected: bad stats header'
  statistics rejected: bad stats header
  $ ../../bin/specrepair.exe repair ../../specs/graph_faulty.als --tool portfolio --learned --stats tampered.txt 2>/dev/null
  [1]

The serve protocol carries the profile too — and validates it:

  $ workdir=$(mktemp -d /tmp/panel_cram.XXXXXX)
  $ sock="$workdir/d.sock"
  $ ../../bin/specrepair.exe serve --socket "$sock" --workers 2 > "$workdir/daemon.log" 2>&1 &
  $ daemon=$!
  $ for i in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done

  $ ../../bin/specrepair.exe client repair --socket "$sock" --file ../../specs/graph_faulty.als --tool multi-round --profile gemini-pro | grep -o '"repaired":true'
  "repaired":true
  $ ../../bin/specrepair.exe client repair --socket "$sock" --file ../../specs/graph_faulty.als --tool multi-round --profile bogus > reply.json; echo "client exit $?"
  client exit 1
  $ grep -o 'params.profile must be one of: gpt-4, gpt-3.5, gemini-pro, llama-3' reply.json
  params.profile must be one of: gpt-4, gpt-3.5, gemini-pro, llama-3

  $ kill "$daemon" 2>/dev/null
  $ rm -rf "$workdir"
