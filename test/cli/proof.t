The sat subcommand solves DIMACS CNF files; with --proof it streams a
DRUP certificate of the run, and check-proof verifies a certificate
against its CNF with the independent checker (no solver code involved).

  $ cat > php.cnf <<EOF
  > p cnf 6 9
  > 1 2 0
  > 3 4 0
  > 5 6 0
  > -1 -3 0
  > -1 -5 0
  > -3 -5 0
  > -2 -4 0
  > -2 -6 0
  > -4 -6 0
  > EOF

  $ ../../bin/specrepair.exe sat --proof php.drup php.cnf
  s UNSATISFIABLE
  $ ../../bin/specrepair.exe check-proof php.cnf php.drup
  proof accepted

Satisfiable inputs print a model line (there is nothing to certify):

  $ cat > simple.cnf <<EOF
  > p cnf 2 2
  > 1 2 0
  > -1 0
  > EOF
  $ ../../bin/specrepair.exe sat simple.cnf
  s SATISFIABLE
  v -1 2 0

The binary DRAT encoding round-trips the same way:

  $ ../../bin/specrepair.exe sat --format binary --proof php.drat php.cnf
  s UNSATISFIABLE
  $ ../../bin/specrepair.exe check-proof --format binary php.cnf php.drat
  proof accepted

A bad certificate is rejected with exit code 1 and the offending step
named, never a crash.  A truncated (here: empty) proof does not reach a
conflict:

  $ : > empty.drup
  $ ../../bin/specrepair.exe check-proof php.cnf empty.drup
  proof rejected: proof does not derive a conflict
  [1]

A tampered proof claims a clause the CNF does not entail by reverse
unit propagation:

  $ printf '9 0\n0\n' > tampered.drup
  $ ../../bin/specrepair.exe check-proof php.cnf tampered.drup
  proof rejected: step 1: clause is not RUP: 9 0
  [1]

Malformed proof files fail parsing, with the same exit code:

  $ printf '1 2\n' > garbage.drup
  $ ../../bin/specrepair.exe check-proof php.cnf garbage.drup
  proof rejected: Proof.read_steps: step not 0-terminated: "1 2"
  [1]

With --simplify the solve runs through the proof-preserving
inprocessing driver; the certificate it streams (simplification steps
included) still checks against the original CNF, and the simplifier's
counters go to stderr, never stdout:

  $ ../../bin/specrepair.exe sat --simplify --proof simp.drup php.cnf 2>/dev/null
  s UNSATISFIABLE
  $ ../../bin/specrepair.exe check-proof php.cnf simp.drup
  proof accepted

--portfolio 1 stays in-process: its stdout is byte-identical to a plain
solve.  Larger values race forked configurations (a worker summary goes
to stderr):

  $ ../../bin/specrepair.exe sat --portfolio 1 simple.cnf
  s SATISFIABLE
  v -1 2 0
  $ ../../bin/specrepair.exe sat --portfolio 2 php.cnf 2>/dev/null
  s UNSATISFIABLE

The flags are validated at the parser, before any solving starts:

  $ ../../bin/specrepair.exe sat --portfolio 0 php.cnf
  specrepair: option '--portfolio': expected a positive integer
  Usage: specrepair sat [OPTION]… CNF
  Try 'specrepair sat --help' or 'specrepair --help' for more information.
  [124]
