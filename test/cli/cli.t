The CLI parses and reprints specifications:

  $ ../../bin/specrepair.exe parse --pretty ../../specs/graph.als | head -4
  sig Node {
    edges: set Node
  }
  


It runs every command of a specification:

  $ ../../bin/specrepair.exe analyze ../../specs/graph_faulty.als | grep -E 'UNSAT|SAT' | head -2
  check NoLoop: SAT
  run {...}: SAT
  $ ../../bin/specrepair.exe analyze ../../specs/rbac.als | grep -c 'UNSAT'
  2

It lists the benchmark inventory:

  $ ../../bin/specrepair.exe domains | tail -1
  Total: A4F 1936 + ARepair 38 = 1974

It repairs a faulty specification:

  $ ../../bin/specrepair.exe repair ../../specs/graph_faulty.als --tool beafix | head -2
  tool: BeAFix
  repaired: true

Malformed input produces a diagnostic and a non-zero exit:

  $ echo "sig {}" > bad.als
  $ ../../bin/specrepair.exe parse bad.als
  bad.als:1:5: error: expected signature name (found {)
    1 | sig {}
      |     ^
  [1]

Nonsensical worker counts and sample sizes are rejected at the flag
parser, before any work is forked:

  $ ../../bin/specrepair.exe evaluate --jobs 0 --sample 1
  specrepair: option '--jobs': expected a positive integer
  Usage: specrepair evaluate [OPTION]…
  Try 'specrepair evaluate --help' or 'specrepair --help' for more information.
  [124]

  $ ../../bin/specrepair.exe evaluate --sample 0
  specrepair: option '--sample': expected a positive integer
  Usage: specrepair evaluate [OPTION]…
  Try 'specrepair evaluate --help' or 'specrepair --help' for more information.
  [124]
