Streaming studies: checkpointed runs, crash recovery with --resume, and
the flag conflicts the parser must reject before any work starts.

A tiny checkpointed study runs to completion and merges its shards:

  $ ../../bin/specrepair.exe study --dir run1 --total 3 --technique ATR --seed 7 --quiet
  study: 3 rows -> run1/results.csv
  $ ls run1
  manifest.json
  results.csv
  shard_0_1.res
  shard_1_2.res
  shard_2_3.res
  $ head -1 run1/results.csv
  variant_id,domain,benchmark,technique,rep,tm,sm,tool_claimed,time_ms
  $ grep -c ',ATR,' run1/results.csv
  3

The crash hook kills the run after one checkpointed chunk (exactly a
mid-study `kill -9`); --resume finishes from the manifest and the merged
CSV matches an uninterrupted run modulo the wall-clock column:

  $ SPECREPAIR_SCHED_CRASH_AFTER_CHUNKS=1 ../../bin/specrepair.exe study --dir run2 --total 3 --jobs 2 --technique ATR --seed 7 --quiet
  Killed
  [137]
  $ test -f run2/manifest.json && test ! -f run2/results.csv
  $ ../../bin/specrepair.exe study --dir run2 --total 3 --jobs 2 --technique ATR --seed 7 --quiet --resume
  study: 3 rows -> run2/results.csv
  $ cut -d, -f1-8 run1/results.csv > run1.cols && cut -d, -f1-8 run2/results.csv > run2.cols
  $ diff run1.cols run2.cols

Resuming a directory that holds no checkpoint is an error, not a silent
fresh start:

  $ ../../bin/specrepair.exe study --dir run3 --total 3 --resume --quiet
  study: checkpoint rejected: cannot read manifest: run3/manifest.json: No such file or directory
  [1]

So is a manifest that does not parse exactly:

  $ mkdir -p run4 && echo garbage > run4/manifest.json
  $ ../../bin/specrepair.exe study --dir run4 --total 3 --resume --quiet
  study: checkpoint rejected: run4/manifest.json: expected "{\"specrepair_manifest\":" (at byte 0)
  [1]

And rerunning a completed directory without --resume refuses to clobber
the checkpoint:

  $ ../../bin/specrepair.exe study --dir run1 --total 3 --technique ATR --seed 7 --quiet 2>&1 | grep -c 'already holds a checkpoint with 3 completed rows'
  1

`evaluate` exposes the same streaming machinery behind --run-dir, and
conflicting corpus selections are usage errors caught at the parser:

  $ ../../bin/specrepair.exe evaluate --resume
  specrepair: --resume requires --run-dir (the checkpoint to resume)
  Usage: specrepair evaluate [OPTION]…
  Try 'specrepair evaluate --help' or 'specrepair --help' for more information.
  [124]
  $ ../../bin/specrepair.exe evaluate --sample 1 --run-dir run5 --resume
  specrepair: --sample cannot be combined with --resume: the resumed corpus is fixed by the run directory's manifest
  Usage: specrepair evaluate [OPTION]…
  Try 'specrepair evaluate --help' or 'specrepair --help' for more information.
  [124]
  $ ../../bin/specrepair.exe evaluate --sample 1 --run-dir run5
  specrepair: --sample cannot be combined with --run-dir: streamed runs index the full corpus
  Usage: specrepair evaluate [OPTION]…
  Try 'specrepair evaluate --help' or 'specrepair --help' for more information.
  [124]

Unknown techniques are rejected with the full menu:

  $ ../../bin/specrepair.exe study --dir run6 --technique NoSuchTool 2>&1 | head -1
  specrepair: option '--technique': unknown technique "NoSuchTool" (expected
