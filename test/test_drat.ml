(* Certified UNSAT: proof logging round-trips, the independent DRUP checker
   accepting real solver proofs and rejecting tampered ones, targeted tests
   for the solver's cold paths (Luby restarts, learnt-DB reduction, phase
   saving), and certified replay of the committed fuzz corpus. *)

open Specrepair_sat

let lit v sign = if sign then Lit.pos v else Lit.neg v

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let result_str = function
  | Solver.Sat -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

(* Solve [clauses] with proof logging on; return the verdict, the recorder,
   and the solver (for stats and models). *)
let solve_logged ?assumptions n clauses =
  let s = Solver.create () in
  let r = Proof.recorder () in
  Solver.set_proof s (Some (Proof.recorder_sink r));
  ignore (Solver.new_vars s n);
  List.iter (Solver.add_clause s) clauses;
  let res = Solver.solve ?assumptions s in
  (res, r, s)

(* Proof-check a logged run: an Unsat verdict must be refuted by the checker
   under the same assumptions; a Sat verdict's derivations must still all be
   RUP. *)
let certify ?(assumptions = []) result r =
  let premises = Proof.inputs r in
  let steps = List.to_seq (Proof.steps r) in
  match result with
  | Solver.Unsat -> Drat.check ~assumptions ~premises steps
  | Solver.Sat | Solver.Unknown ->
      Drat.check ~require_conflict:false ~premises steps

let check_certified ?assumptions msg result r =
  match certify ?assumptions result r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: checker rejected the proof: %s" msg e

(* Pigeonhole principle: n+1 pigeons in n holes, unsatisfiable; shared
   generator adapted to this file's (nvars, clauses) shape. *)
let pigeonhole n =
  let cnf = Hard_cnf.pigeonhole n in
  (cnf.Dimacs.num_vars, cnf.Dimacs.clauses)

(* {2 Proof format round-trips} *)

let random_steps rand n =
  List.init n (fun _ ->
      let len = Random.State.int rand 5 in
      let c =
        Array.init len (fun _ ->
            lit (Random.State.int rand 20) (Random.State.bool rand))
      in
      if Random.State.bool rand then Proof.Add c else Proof.Delete c)

let test_format_roundtrip () =
  let rand = Random.State.make [| 2026 |] in
  List.iter
    (fun format ->
      for _ = 1 to 50 do
        let steps = random_steps rand (Random.State.int rand 20) in
        let path = Filename.temp_file "proof" ".drat" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            List.iter (Proof.write_step format oc) steps;
            close_out oc;
            let ic = open_in_bin path in
            let back = List.of_seq (Proof.read_steps format ic) in
            close_in ic;
            Alcotest.(check int)
              "step count survives" (List.length steps) (List.length back);
            List.iter2
              (fun a b ->
                if not (Proof.step_equal a b) then
                  Alcotest.failf "step mangled: %a vs %a" Proof.pp_step a
                    Proof.pp_step b)
              steps back)
      done)
    [ Proof.Text; Proof.Binary ]

let test_parse_errors () =
  let rejects format bytes =
    let path = Filename.temp_file "proof" ".drat" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc bytes;
        close_out oc;
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            match List.of_seq (Proof.read_steps format ic) with
            | _ -> Alcotest.failf "accepted malformed proof %S" bytes
            | exception Proof.Parse_error _ -> ()))
  in
  rejects Proof.Text "1 2 3\n";
  (* missing terminator *)
  rejects Proof.Text "1 x 0\n";
  (* bad literal *)
  rejects Proof.Binary "a\x02";
  (* truncated varint stream *)
  rejects Proof.Binary "q\x02\x00" (* bad tag *)

(* {2 Checker verdicts} *)

let test_accepts_pigeonhole () =
  let nvars, clauses = pigeonhole 4 in
  let res, r, _ = solve_logged nvars clauses in
  Alcotest.(check string) "php(5,4) unsat" "unsat" (result_str res);
  Alcotest.(check bool) "proof has steps" true (Proof.n_steps r > 0);
  check_certified "php(5,4)" res r

let test_rejects_tampered () =
  let nvars, clauses = pigeonhole 4 in
  let res, r, _ = solve_logged nvars clauses in
  Alcotest.(check string) "php(5,4) unsat" "unsat" (result_str res);
  (* drop the last non-empty addition: the derivation now has a gap, and the
     checker must notice — either a later step fails RUP or the final
     conflict is gone *)
  let steps = Proof.steps r in
  let last_add =
    let rec find i best =
      match List.nth_opt steps i with
      | None -> best
      | Some (Proof.Add c) when Array.length c > 0 -> find (i + 1) (Some i)
      | Some _ -> find (i + 1) best
    in
    match find 0 None with
    | Some i -> i
    | None -> Alcotest.fail "proof has no non-empty additions"
  in
  let tampered = List.filteri (fun i _ -> i <> last_add) steps in
  match
    Drat.check ~premises:(Proof.inputs r) (List.to_seq tampered)
  with
  | Ok () -> Alcotest.fail "checker accepted a tampered proof"
  | Error _ -> ()

let test_rejects_non_rup () =
  let premises = [ [| lit 0 true; lit 1 true |] ] in
  let bogus = List.to_seq [ Proof.Add [| lit 2 true |] ] in
  (match Drat.check ~require_conflict:false ~premises bogus with
  | Ok () -> Alcotest.fail "accepted a non-RUP addition"
  | Error e ->
      Alcotest.(check bool)
        "error names the offense" true (contains ~sub:"not RUP" e));
  let unknown_delete = List.to_seq [ Proof.Delete [| lit 0 true |] ] in
  match Drat.check ~require_conflict:false ~premises unknown_delete with
  | Ok () -> Alcotest.fail "accepted a delete of an unknown clause"
  | Error e ->
      Alcotest.(check bool)
        "error names the offense" true (contains ~sub:"unknown clause" e)

let test_no_conflict_rejected () =
  (* a satisfiable CNF's (empty) proof must not certify UNSAT *)
  let premises = [ [| lit 0 true |] ] in
  match Drat.check ~premises Seq.empty with
  | Ok () -> Alcotest.fail "certified UNSAT for a satisfiable CNF"
  | Error e ->
      Alcotest.(check bool)
        "error names the missing conflict" true (contains ~sub:"conflict" e)

let test_assumption_core_certified () =
  (* the oracle pattern: a guarded hard subproblem toggled by assumptions;
     the emitted ¬core clause must let the checker refute the assumptions *)
  let s = Solver.create () in
  let r = Proof.recorder () in
  Solver.set_proof s (Some (Proof.recorder_sink r));
  let nvars, clauses = pigeonhole 3 in
  ignore (Solver.new_vars s nvars);
  let act = Lit.pos (Solver.new_var s) in
  List.iter (fun c -> Solver.add_clause s (Lit.negate act :: c)) clauses;
  (match Solver.solve ~assumptions:[ act ] s with
  | Unsat -> ()
  | r -> Alcotest.failf "expected unsat, got %s" (result_str r));
  (* incremental checker, the way the oracle drives it *)
  let t = Drat.create () in
  List.iter (Drat.add_premise t) (Proof.inputs r);
  List.iter
    (fun step ->
      match Drat.apply t step with
      | Ok () -> ()
      | Error e -> Alcotest.failf "step rejected: %s" e)
    (Proof.steps r);
  Alcotest.(check bool) "refutes the assumption" true (Drat.refutes t [ act ]);
  Alcotest.(check bool)
    "does not refute without it" false
    (Drat.refutes t [ Lit.negate act ]);
  (* the solver is still usable, and steps learnt by later solves keep
     extending the same incremental checker *)
  let n_before = List.length (Proof.steps r) in
  (match Solver.solve ~assumptions:[ Lit.negate act ] s with
  | Sat -> ()
  | r -> Alcotest.failf "expected sat, got %s" (result_str r));
  List.iteri
    (fun i step ->
      if i >= n_before then
        match Drat.apply t step with
        | Ok () -> ()
        | Error e -> Alcotest.failf "post-sat step rejected: %s" e)
    (Proof.steps r)

(* {2 Random CNFs, both verdicts} *)

let random_cnf rand =
  let n = 1 + Random.State.int rand 8 in
  let n_clauses = Random.State.int rand 36 in
  let clause () =
    List.init
      (1 + Random.State.int rand 4)
      (fun _ -> lit (Random.State.int rand n) (Random.State.bool rand))
  in
  (n, List.init n_clauses (fun _ -> clause ()))

let test_random_certified () =
  let rand = Random.State.make [| 77 |] in
  let unsat = ref 0 in
  for _ = 1 to 300 do
    let n, clauses = random_cnf rand in
    let res, r, _ = solve_logged n clauses in
    if res = Solver.Unsat then incr unsat;
    check_certified "random cnf" res r
  done;
  Alcotest.(check bool)
    (Printf.sprintf "sample exercises unsat (%d found)" !unsat)
    true (!unsat > 10)

(* {2 Solver cold paths} *)

let test_restarts_certified () =
  let nvars, clauses = pigeonhole 5 in
  let res, r, s = solve_logged nvars clauses in
  Alcotest.(check string) "php(6,5) unsat" "unsat" (result_str res);
  Alcotest.(check bool)
    (Printf.sprintf "restarts taken (%d)" (Solver.n_restarts s))
    true
    (Solver.n_restarts s > 0);
  check_certified "across restarts" res r;
  (* the verdict is stable on re-solve, and the longer proof still checks *)
  let res2 = Solver.solve s in
  Alcotest.(check string) "stable verdict" "unsat" (result_str res2);
  check_certified "after re-solve" res2 r

let test_reduce_db_certified () =
  (* php(8,7) needs a few thousand conflicts: learnt clauses pile up past
     the reduction threshold, deletions are emitted, and the proof must
     still check — deletions may not break later derivations *)
  let s = Solver.create () in
  let r = Proof.recorder () in
  Solver.set_proof s (Some (Proof.recorder_sink r));
  let nvars, clauses = pigeonhole 7 in
  ignore (Solver.new_vars s nvars);
  List.iter (Solver.add_clause s) clauses;
  let res = Solver.solve s in
  Alcotest.(check string) "php(8,7) unsat" "unsat" (result_str res);
  Alcotest.(check bool)
    (Printf.sprintf "learnt DB reduced (%d times)" (Solver.n_reductions s))
    true
    (Solver.n_reductions s > 0);
  let deletions =
    List.length
      (List.filter
         (function Proof.Delete _ -> true | Proof.Add _ -> false)
         (Proof.steps r))
  in
  Alcotest.(check bool)
    (Printf.sprintf "deletions emitted (%d)" deletions)
    true (deletions > 0);
  check_certified "with deletions" res r

let test_phase_saving () =
  (* phases are saved on backtrack and reused by pick_branch: a model found
     under assumptions persists into later unconstrained solves *)
  let s = Solver.create () in
  ignore (Solver.new_vars s 6);
  Solver.add_clause s [ lit 0 true; lit 1 true ];
  (match Solver.solve s with
  | Sat -> ()
  | r -> Alcotest.failf "expected sat, got %s" (result_str r));
  (* default phase is false: unconstrained vars come out false *)
  Alcotest.(check bool) "default phase false" false (Solver.value s 5);
  (match Solver.solve ~assumptions:[ lit 5 true; lit 3 true ] s with
  | Sat -> ()
  | r -> Alcotest.failf "expected sat, got %s" (result_str r));
  Alcotest.(check bool) "assumed true" true (Solver.value s 5);
  (* without the assumptions, the saved phase keeps the flipped values *)
  (match Solver.solve s with
  | Sat -> ()
  | r -> Alcotest.failf "expected sat, got %s" (result_str r));
  Alcotest.(check bool) "phase saved across solves" true (Solver.value s 5);
  Alcotest.(check bool) "phase saved across solves" true (Solver.value s 3)

(* {2 Certified corpus replay} *)

let corpus_dir =
  if Sys.file_exists "../artifacts/fuzz" then "../artifacts/fuzz"
  else "artifacts/fuzz"

let test_corpus_certified () =
  let entries =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cnf")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus has CNF entries" true (entries <> []);
  List.iter
    (fun file ->
      let path = Filename.concat corpus_dir file in
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let cnf = Dimacs.parse text in
      let s = Solver.create () in
      let recorder = Proof.recorder () in
      Solver.set_proof s (Some (Proof.recorder_sink recorder));
      Dimacs.load_into s cnf;
      let res = Solver.solve s in
      (* stream the proof through a temp file in both formats: the on-disk
         path the CLI uses must agree with the in-memory recorder *)
      List.iter
        (fun format ->
          let proof_path = Filename.temp_file "corpus" ".drat" in
          Fun.protect
            ~finally:(fun () -> Sys.remove proof_path)
            (fun () ->
              let oc = open_out_bin proof_path in
              List.iter (Proof.write_step format oc) (Proof.steps recorder);
              close_out oc;
              let require_conflict = res = Solver.Unsat in
              match
                Drat.check_file ~require_conflict ~cnf ~format proof_path
              with
              | Ok () -> ()
              | Error e -> Alcotest.failf "%s: %s" file e))
        [ Proof.Text; Proof.Binary ];
      check_certified file res recorder)
    entries

let () =
  Alcotest.run "drat"
    [
      ( "formats",
        [
          Alcotest.test_case "round-trip" `Quick test_format_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts pigeonhole" `Quick test_accepts_pigeonhole;
          Alcotest.test_case "rejects tampered" `Quick test_rejects_tampered;
          Alcotest.test_case "rejects non-RUP" `Quick test_rejects_non_rup;
          Alcotest.test_case "no conflict, no certificate" `Quick
            test_no_conflict_rejected;
          Alcotest.test_case "assumption cores" `Quick
            test_assumption_core_certified;
          Alcotest.test_case "random CNFs" `Quick test_random_certified;
        ] );
      ( "cold paths",
        [
          Alcotest.test_case "restarts" `Quick test_restarts_certified;
          Alcotest.test_case "reduce_db" `Slow test_reduce_db_certified;
          Alcotest.test_case "phase saving" `Quick test_phase_saving;
        ] );
      ( "corpus",
        [ Alcotest.test_case "certified replay" `Quick test_corpus_certified ]
      );
    ]
