type cnf = { num_vars : int; clauses : Lit.t list list }

exception Parse_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let header_seen = ref false in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> error "Dimacs.parse: bad token %S" tok
    | Some 0 ->
        clauses := List.rev !current :: !clauses;
        current := []
    | Some i ->
        let l = Lit.of_dimacs i in
        if Lit.var l >= !num_vars then
          error "Dimacs.parse: literal %d exceeds the %d-variable header" i
            !num_vars;
        current := l :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        if !header_seen then error "Dimacs.parse: duplicate p-line";
        header_seen := true;
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; nc ] -> (
            match (int_of_string_opt nv, int_of_string_opt nc) with
            | Some n, Some _ when n >= 0 -> num_vars := n
            | _ -> error "Dimacs.parse: bad header %S" line)
        | _ -> error "Dimacs.parse: bad header %S" line
      end
      else begin
        if not !header_seen then
          error "Dimacs.parse: clause before the p-line";
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter handle_token
      end)
    lines;
  if not !header_seen then error "Dimacs.parse: missing p-line";
  if !current <> [] then error "Dimacs.parse: clause not 0-terminated";
  { num_vars = !num_vars; clauses = List.rev !clauses }

let print ppf { num_vars; clauses } =
  Format.fprintf ppf "p cnf %d %d@." num_vars (List.length clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) c;
      Format.fprintf ppf "0@.")
    clauses

let load_into solver { num_vars; clauses } =
  let missing = num_vars - Solver.n_vars solver in
  if missing > 0 then ignore (Solver.new_vars solver missing);
  List.iter (Solver.add_clause solver) clauses
