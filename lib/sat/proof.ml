type step = Add of Lit.t array | Delete of Lit.t array
type event = Input of Lit.t array | Step of step
type sink = event -> unit
type format = Text | Binary

exception Parse_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

(* {2 In-memory recording} *)

type recorder = {
  mutable rev_inputs : Lit.t array list;
  mutable rev_steps : step list;
  mutable count : int;
}

let recorder () = { rev_inputs = []; rev_steps = []; count = 0 }

let recorder_sink r = function
  | Input c -> r.rev_inputs <- c :: r.rev_inputs
  | Step s ->
      r.rev_steps <- s :: r.rev_steps;
      r.count <- r.count + 1

let inputs r = List.rev r.rev_inputs
let steps r = List.rev r.rev_steps
let n_steps r = r.count

(* {2 Text format (DRUP)} *)

let write_text oc lits ~deleted =
  if deleted then output_string oc "d ";
  Array.iter (fun l -> Printf.fprintf oc "%d " (Lit.to_dimacs l)) lits;
  output_string oc "0\n"

(* {2 Binary format (DRAT)}

   Each step is a tag byte ('a' or 'd') followed by the literals as
   variable-length 7-bit codes of the standard mapping
   [u = 2*|l| + (1 if l < 0)], terminated by a 0 byte. *)

let write_varint oc u =
  let u = ref u in
  while !u >= 0x80 do
    output_byte oc (0x80 lor (!u land 0x7f));
    u := !u lsr 7
  done;
  output_byte oc !u

let write_binary oc lits ~deleted =
  output_char oc (if deleted then 'd' else 'a');
  Array.iter
    (fun l ->
      let d = Lit.to_dimacs l in
      write_varint oc (if d > 0 then 2 * d else (-2 * d) + 1))
    lits;
  output_byte oc 0

let write_step format oc step =
  let lits, deleted =
    match step with Add c -> (c, false) | Delete c -> (c, true)
  in
  match format with
  | Text -> write_text oc lits ~deleted
  | Binary -> write_binary oc lits ~deleted

let file_sink format oc = function
  | Input _ -> ()
  | Step s -> write_step format oc s

(* {2 Reading back} *)

let read_text_step ic =
  (* skip blank lines; one step per non-blank line *)
  let rec next_line () =
    match input_line ic with
    | line -> if String.trim line = "" then next_line () else Some line
    | exception End_of_file -> None
  in
  match next_line () with
  | None -> None
  | Some line ->
      let toks =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (( <> ) "")
      in
      let deleted, toks =
        match toks with "d" :: rest -> (true, rest) | _ -> (false, toks)
      in
      let rec lits acc = function
        | [] -> error "Proof.read_steps: step not 0-terminated: %S" line
        | [ "0" ] -> List.rev acc
        | "0" :: _ -> error "Proof.read_steps: literals after 0: %S" line
        | tok :: rest -> (
            match int_of_string_opt tok with
            | Some d when d <> 0 -> lits (Lit.of_dimacs d :: acc) rest
            | _ -> error "Proof.read_steps: bad literal %S" tok)
      in
      let c = Array.of_list (lits [] toks) in
      Some (if deleted then Delete c else Add c)

let read_varint ic =
  let rec go shift acc =
    if shift > 56 then error "Proof.read_steps: varint overflow";
    match input_byte ic with
    | exception End_of_file -> error "Proof.read_steps: truncated varint"
    | b ->
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_binary_step ic =
  match input_char ic with
  | exception End_of_file -> None
  | tag ->
      let deleted =
        match tag with
        | 'a' -> false
        | 'd' -> true
        | c -> error "Proof.read_steps: bad step tag %C" c
      in
      let rec lits acc =
        match read_varint ic with
        | 0 -> List.rev acc
        | u ->
            let d = if u land 1 = 0 then u / 2 else -(u / 2) in
            if d = 0 then error "Proof.read_steps: zero literal code";
            lits (Lit.of_dimacs d :: acc)
      in
      let c = Array.of_list (lits []) in
      Some (if deleted then Delete c else Add c)

let read_steps format ic =
  let read =
    match format with Text -> read_text_step | Binary -> read_binary_step
  in
  let rec seq () =
    match read ic with None -> Seq.Nil | Some s -> Seq.Cons (s, seq)
  in
  seq

(* {2 Plumbing} *)

let pp_step ppf step =
  let lits, tag =
    match step with Add c -> (c, "") | Delete c -> (c, "d ")
  in
  Format.fprintf ppf "%s" tag;
  Array.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) lits;
  Format.fprintf ppf "0"

let step_equal a b =
  match (a, b) with
  | Add x, Add y | Delete x, Delete y -> x = y
  | Add _, Delete _ | Delete _, Add _ -> false
