(* CDCL solver.  Literals are stored as raw ints (see {!Lit}); variable
   assignment codes are -1 = unassigned, 0 = false, 1 = true. *)

type clause = {
  mutable lits : int array; (* watched literals at positions 0 and 1 *)
  mutable activity : float;
  learnt : bool;
}

let dummy_clause = { lits = [||]; activity = 0.; learnt = false }

type t = {
  mutable nvars : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array; (* indexed by literal encoding *)
  mutable assigns : int array; (* per var *)
  mutable level : int array; (* per var *)
  mutable reason : clause array; (* per var; dummy_clause = none *)
  mutable activity : float array; (* per var *)
  mutable polarity : bool array; (* saved phase, per var *)
  mutable seen : bool array; (* scratch for analyze, per var *)
  trail : int Vec.t; (* assigned literals in order *)
  trail_lim : int Vec.t; (* decision-level boundaries in [trail] *)
  mutable qhead : int;
  order : Order_heap.t;
  mutable var_inc : float;
  mutable clause_inc : float;
  mutable ok : bool;
  mutable root_level : int;
  mutable conflict_assumps : int list;
      (* assumptions involved in the last assumption-level Unsat *)
  mutable proof : Proof.sink option;
  mutable restart_base : int; (* conflicts per Luby restart unit *)
  mutable on_restart : (unit -> unit) option;
  (* statistics *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable reductions : int;
}

type result = Sat | Unsat | Unknown

let var_decay = 1. /. 0.95
let clause_decay = 1. /. 0.999

let create () =
  let rec s =
    lazy
      {
        nvars = 0;
        clauses = Vec.create ~dummy:dummy_clause;
        learnts = Vec.create ~dummy:dummy_clause;
        watches = [||];
        assigns = [||];
        level = [||];
        reason = [||];
        activity = [||];
        polarity = [||];
        seen = [||];
        trail = Vec.create ~dummy:0;
        trail_lim = Vec.create ~dummy:0;
        qhead = 0;
        order = Order_heap.create ~activity:(fun v -> (Lazy.force s).activity.(v));
        var_inc = 1.;
        clause_inc = 1.;
        ok = true;
        root_level = 0;
        conflict_assumps = [];
        proof = None;
        restart_base = 100;
        on_restart = None;
        conflicts = 0;
        decisions = 0;
        propagations = 0;
        restarts = 0;
        reductions = 0;
      }
  in
  Lazy.force s

let n_vars s = s.nvars
let ok s = s.ok
let n_conflicts s = s.conflicts
let n_decisions s = s.decisions
let n_propagations s = s.propagations
let n_clauses s = Vec.length s.clauses
let n_learnts s = Vec.length s.learnts
let n_restarts s = s.restarts
let n_reductions s = s.reductions

(* {2 Diversification knobs (portfolio solving)} *)

let set_restart_base s n =
  if n < 1 then invalid_arg "Solver.set_restart_base";
  s.restart_base <- n

let set_on_restart s f = s.on_restart <- f

let randomize s ~seed =
  (* xorshift over the saved phases and a small activity jitter: enough to
     send an otherwise-identical solver down a different part of the search
     tree, without touching clause state or the proof stream invariants *)
  let state = ref (if seed = 0 then 0x9E3779B9 else seed land max_int) in
  let next () =
    let x = !state in
    let x = x lxor ((x lsl 13) land max_int) in
    let x = x lxor (x lsr 7) in
    let x = x lxor ((x lsl 17) land max_int) in
    state := x;
    x
  in
  for v = 0 to s.nvars - 1 do
    s.polarity.(v) <- next () land 1 = 1;
    s.activity.(v) <- float_of_int (next () land 0xffff) *. 1e-6
  done;
  Order_heap.rebuild s.order (List.init s.nvars Fun.id)

(* {2 Proof logging}

   With no sink installed every emission point is a single [None] test; the
   solver's data structures and control flow are otherwise identical.  The
   solver mutates clause literal arrays in place (watch reordering), so
   every emission copies. *)

let set_proof s sink = s.proof <- sink

let emit_input s lits =
  match s.proof with
  | None -> ()
  | Some sink -> sink (Proof.Input (Array.of_list lits))

let emit_derived s (lits : int array) =
  match s.proof with
  | None -> ()
  | Some sink -> sink (Proof.Step (Proof.Add (Array.map Lit.of_int lits)))

let emit_deleted s (lits : int array) =
  match s.proof with
  | None -> ()
  | Some sink -> sink (Proof.Step (Proof.Delete (Array.map Lit.of_int lits)))

let grow_arrays s n =
  let cap = Array.length s.assigns in
  if n > cap then begin
    let cap' = max n (max 16 (2 * cap)) in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    s.assigns <- extend s.assigns (-1);
    s.level <- extend s.level 0;
    s.reason <- extend s.reason dummy_clause;
    s.activity <- extend s.activity 0.;
    s.polarity <- extend s.polarity false;
    s.seen <- extend s.seen false;
    let w = Array.init (2 * cap') (fun i ->
        if i < Array.length s.watches then s.watches.(i)
        else Vec.create ~dummy:dummy_clause)
    in
    s.watches <- w
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_arrays s s.nvars;
  Order_heap.insert s.order v;
  v

let new_vars s n =
  if n < 0 then invalid_arg "Solver.new_vars";
  let first = s.nvars in
  s.nvars <- first + n;
  grow_arrays s s.nvars;
  for v = first to s.nvars - 1 do
    Order_heap.insert s.order v
  done;
  first

(* Literal valuation: 1 true, 0 false, -1 unassigned. *)
let value_lit s l =
  let a = s.assigns.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = Vec.length s.trail_lim

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Order_heap.increase s.order v

let clause_bump s (c : clause) =
  c.activity <- c.activity +. s.clause_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.clause_inc <- s.clause_inc *. 1e-20
  end

let enqueue s l reason =
  let v = l lsr 1 in
  s.assigns.(v) <- 1 lxor (l land 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let attach s (c : clause) =
  Vec.push s.watches.(c.lits.(0) lxor 1) c;
  Vec.push s.watches.(c.lits.(1) lxor 1) c

let detach s (c : clause) =
  let remove ws =
    let rec find i = if Vec.get ws i == c then i else find (i + 1) in
    Vec.swap_remove ws (find 0)
  in
  remove s.watches.(c.lits.(0) lxor 1);
  remove s.watches.(c.lits.(1) lxor 1)

(* Undo all assignments above [lvl]. *)
let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    while Vec.length s.trail > bound do
      let l = Vec.pop s.trail in
      let v = l lsr 1 in
      s.polarity.(v) <- s.assigns.(v) = 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- dummy_clause;
      Order_heap.insert s.order v
    done;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.length s.trail
  end

(* Unit propagation; returns the conflicting clause if any. *)
let propagate s =
  let conflict = ref dummy_clause in
  while !conflict == dummy_clause && s.qhead < Vec.length s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let ws = s.watches.(p) in
    let false_lit = p lxor 1 in
    let i = ref 0 and j = ref 0 in
    let n = Vec.length ws in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if c.lits.(0) = false_lit then begin
        c.lits.(0) <- c.lits.(1);
        c.lits.(1) <- false_lit
      end;
      if value_lit s c.lits.(0) = 1 then begin
        (* satisfied: keep the watch *)
        Vec.set ws !j c;
        incr j
      end
      else begin
        (* look for a replacement watch *)
        let len = Array.length c.lits in
        let k = ref 2 in
        while !k < len && value_lit s c.lits.(!k) = 0 do
          incr k
        done;
        if !k < len then begin
          c.lits.(1) <- c.lits.(!k);
          c.lits.(!k) <- false_lit;
          Vec.push s.watches.(c.lits.(1) lxor 1) c
        end
        else begin
          (* unit or conflicting *)
          Vec.set ws !j c;
          incr j;
          if value_lit s c.lits.(0) = 0 then begin
            conflict := c;
            s.qhead <- Vec.length s.trail;
            while !i < n do
              Vec.set ws !j (Vec.get ws !i);
              incr i;
              incr j
            done
          end
          else enqueue s c.lits.(0) c
        end
      end
    done;
    Vec.shrink ws !j
  done;
  if !conflict == dummy_clause then None else Some !conflict

(* First-UIP conflict analysis.  Returns the learnt clause (asserting literal
   first) and the backtrack level. *)
let analyze s confl =
  let learnt = Vec.create ~dummy:0 in
  Vec.push learnt 0;
  (* placeholder for the asserting literal *)
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (Vec.length s.trail - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    let c = !confl in
    if c.learnt then clause_bump s c;
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr counter
        else begin
          Vec.push learnt q;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* walk the trail back to the next marked literal *)
    let rec next () =
      let l = Vec.get s.trail !index in
      decr index;
      if s.seen.(l lsr 1) then l else next ()
    in
    let l = next () in
    p := l;
    confl := s.reason.(l lsr 1);
    s.seen.(l lsr 1) <- false;
    decr counter;
    if !counter = 0 then continue := false
  done;
  Vec.set learnt 0 (!p lxor 1);
  Vec.iter (fun l -> s.seen.(l lsr 1) <- false) learnt;
  (learnt, !btlevel)

(* MiniSat-style analyzeFinal: given seeds already marked in [s.seen]
   (variables of a conflicting clause, or of a falsified assumption), walk
   the trail backwards resolving reasons and collect the assumption
   decisions involved.  Only meaningful while the trail still holds the
   assumption levels; assumptions are exactly the reason-less (decision)
   literals at levels 1..root_level. *)
let collect_assumption_core s ~extra =
  if decision_level s = 0 then extra
    (* no assumption levels: nothing was marked (only level-0 vars exist) *)
  else begin
    let core = ref extra in
    let bottom = Vec.get s.trail_lim 0 in
    for i = Vec.length s.trail - 1 downto bottom do
      let q = Vec.get s.trail i in
      let v = q lsr 1 in
      if s.seen.(v) then begin
        if s.reason.(v) == dummy_clause then core := q :: !core
        else
          Array.iter
            (fun r ->
              let w = r lsr 1 in
              if s.level.(w) > 0 then s.seen.(w) <- true)
            s.reason.(v).lits;
        s.seen.(v) <- false
      end
    done;
    !core
  end

(* Core when a whole clause is falsified under the assumptions. *)
let analyze_final_clause s (c : clause) =
  Array.iter
    (fun l ->
      let v = l lsr 1 in
      if s.level.(v) > 0 then s.seen.(v) <- true)
    c.lits;
  collect_assumption_core s ~extra:[]

(* Core when assumption literal [l] is already false on the trail. *)
let analyze_final_lit s l =
  let v = l lsr 1 in
  if s.level.(v) > 0 then s.seen.(v) <- true;
  collect_assumption_core s ~extra:[ l ]

(* Install a learnt clause and enqueue its asserting literal. *)
let record s learnt =
  let lits = Array.make (Vec.length learnt) 0 in
  Vec.iter
    (let i = ref 0 in
     fun l ->
       lits.(!i) <- l;
       incr i)
    learnt;
  emit_derived s lits;
  if Array.length lits = 1 then enqueue s lits.(0) dummy_clause
  else begin
    (* watch the asserting literal and a literal of the backtrack level *)
    let maxi = ref 1 in
    for k = 2 to Array.length lits - 1 do
      if s.level.(lits.(k) lsr 1) > s.level.(lits.(!maxi) lsr 1) then maxi := k
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!maxi);
    lits.(!maxi) <- tmp;
    let c = { lits; activity = 0.; learnt = true } in
    clause_bump s c;
    Vec.push s.learnts c;
    attach s c;
    enqueue s lits.(0) c
  end

let locked s (c : clause) =
  Array.length c.lits > 0
  && s.reason.(c.lits.(0) lsr 1) == c
  && value_lit s c.lits.(0) = 1

(* Drop roughly half of the learnt clauses, by activity. *)
let reduce_db s =
  s.reductions <- s.reductions + 1;
  let n = Vec.length s.learnts in
  let arr = Array.init n (Vec.get s.learnts) in
  Array.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) arr;
  Vec.clear s.learnts;
  Array.iteri
    (fun i c ->
      if (i >= n / 2 && Array.length c.lits > 0) || locked s c || Array.length c.lits <= 2
      then Vec.push s.learnts c
      else begin
        emit_deleted s c.lits;
        detach s c
      end)
    arr

let add_clause s lits =
  if s.ok then begin
    emit_input s lits;
    cancel_until s 0;
    let lits = List.map Lit.to_int lits in
    let lits = List.sort_uniq Int.compare lits in
    let tautology =
      List.exists (fun l -> List.memq (l lxor 1) lits) lits
      || List.exists (fun l -> value_lit s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> value_lit s l <> 0) lits in
      match lits with
      | [] ->
          emit_derived s [||];
          s.ok <- false
      | [ l ] ->
          enqueue s l dummy_clause;
          if propagate s <> None then begin
            emit_derived s [||];
            s.ok <- false
          end
      | _ ->
          let c = { lits = Array.of_list lits; activity = 0.; learnt = false } in
          Vec.push s.clauses c;
          attach s c
    end
  end

let pick_branch s =
  let rec loop () =
    if Order_heap.is_empty s.order then None
    else
      let v = Order_heap.remove_max s.order in
      if s.assigns.(v) < 0 then Some v else loop ()
  in
  loop ()

(* Luby restart sequence. *)
let rec luby y x =
  (* find the finite subsequence containing x, and its position *)
  let rec size_seq sz seq = if sz < x + 1 then size_seq ((2 * sz) + 1) (seq + 1) else (sz, seq) in
  let sz, seq = size_seq 1 0 in
  if sz - 1 = x then y ** float_of_int seq
  else luby y (x - ((sz - 1) / 2))

exception Found of result

let search s ~max_learnts ~restart_budget ~conflict_limit =
  let conflicts_here = ref 0 in
  try
    while true do
      match propagate s with
      | Some confl ->
          s.conflicts <- s.conflicts + 1;
          incr conflicts_here;
          (match conflict_limit with
          | Some b when s.conflicts >= b && decision_level s > s.root_level ->
              cancel_until s s.root_level;
              raise (Found Unknown)
          | _ -> ());
          if decision_level s <= s.root_level then begin
            (* conflict within the assumption levels: this call is Unsat,
               but the clause set itself may still be satisfiable *)
            if s.root_level > 0 then begin
              s.conflict_assumps <- analyze_final_clause s confl;
              emit_derived s
                (Array.of_list
                   (List.map (fun l -> l lxor 1) s.conflict_assumps))
            end
            else begin
              (* a conflict at level 0 is permanent: without this, a
                 re-solve would find the queue already drained and miss
                 the conflict entirely *)
              emit_derived s [||];
              s.ok <- false
            end;
            raise (Found Unsat)
          end;
          let learnt, btlevel = analyze s confl in
          cancel_until s (max btlevel s.root_level);
          record s learnt;
          s.var_inc <- s.var_inc *. var_decay;
          s.clause_inc <- s.clause_inc *. clause_decay
      | None ->
          if float_of_int (Vec.length s.learnts) >= !max_learnts then begin
            reduce_db s;
            (* grow the limit per reduction, not per restart: Luby restarts
               are frequent enough that a per-restart growth outruns the
               learnt count and the database is never reduced at all *)
            max_learnts := !max_learnts *. 1.1
          end;
          if !conflicts_here >= restart_budget && decision_level s > s.root_level
          then begin
            s.restarts <- s.restarts + 1;
            cancel_until s s.root_level;
            raise (Found Unknown) (* caller treats Unknown as "restart" *)
          end;
          (match pick_branch s with
          | None -> raise (Found Sat)
          | Some v ->
              s.decisions <- s.decisions + 1;
              Vec.push s.trail_lim (Vec.length s.trail);
              enqueue s (Lit.to_int (Lit.make v s.polarity.(v))) dummy_clause)
    done;
    assert false
  with Found r -> r

let solve ?(assumptions = []) ?max_conflicts s =
  s.conflict_assumps <- [];
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    if propagate s <> None then begin
      emit_derived s [||];
      s.ok <- false;
      Unsat
    end
    else begin
      (* the budget is local to this call: learnt clauses (and the conflict
         counter) persist across calls, so an incremental client must not
         have earlier calls eat later calls' budgets *)
      let conflict_limit = Option.map (fun b -> s.conflicts + b) max_conflicts in
      (* enqueue assumptions, one pseudo-decision level each *)
      let assumption_core core =
        s.conflict_assumps <- core;
        emit_derived s (Array.of_list (List.map (fun l -> l lxor 1) core));
        false
      in
      let rec assume = function
        | [] -> true
        | a :: rest -> (
            let l = Lit.to_int a in
            match value_lit s l with
            | 1 -> assume rest
            | 0 -> assumption_core (analyze_final_lit s l)
            | _ -> (
                Vec.push s.trail_lim (Vec.length s.trail);
                enqueue s l dummy_clause;
                match propagate s with
                | None -> assume rest
                | Some confl ->
                    assumption_core (analyze_final_clause s confl)))
      in
      if not (assume assumptions) then begin
        cancel_until s 0;
        Unsat
      end
      else begin
        s.root_level <- decision_level s;
        let max_learnts = ref (max 1000. (float_of_int (n_clauses s) /. 3.)) in
        let result = ref Unknown in
        let restart = ref 0 in
        (try
           while !result = Unknown do
             (match conflict_limit with
             | Some b when s.conflicts >= b -> raise Exit
             | _ -> ());
             let restart_budget =
               int_of_float (float_of_int s.restart_base *. luby 2. !restart)
             in
             incr restart;
             (match s.on_restart with Some f -> f () | None -> ());
             result := search s ~max_learnts ~restart_budget ~conflict_limit
           done
         with Exit -> result := Unknown);
        let r = !result in
        if r <> Sat then cancel_until s 0;
        s.root_level <- 0;
        r
      end
    end
  end

let unsat_assumptions s = List.map Lit.of_int s.conflict_assumps

let root_units s =
  (* literals fixed by level-0 propagation; the trail prefix below the
     first decision (the whole trail when no decision is open) *)
  let bound =
    if Vec.length s.trail_lim = 0 then Vec.length s.trail
    else Vec.get s.trail_lim 0
  in
  List.init bound (fun i -> Lit.of_int (Vec.get s.trail i))

let value s v = if v < s.nvars then s.assigns.(v) = 1 else false
let lit_value s l = value_lit s (Lit.to_int l) = 1
let model s = Array.init s.nvars (fun v -> s.assigns.(v) = 1)
