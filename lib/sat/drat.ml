(* The checker keeps its own clause store, assignment array, watch lists and
   trail — nothing is shared with [Solver], so the two implementations can
   only agree by actually agreeing.  There are no decision levels: the trail
   is a root prefix of unit-implied literals, temporarily extended with
   assumed literals during a RUP check and popped back afterwards. *)

type clause = {
  mutable lits : int array;  (* raw literal codes; watch order mutates *)
  key : string;  (* canonical (sorted, deduped) form, for deletion *)
  premise : bool;
  mutable dead : bool;  (* lazily purged from watch lists *)
  mutable watched : bool;
}

let dummy_clause =
  { lits = [||]; key = ""; premise = false; dead = true; watched = false }

type t = {
  mutable nvars : int;
  mutable assigns : int array;  (* per var: -1 unassigned, 1 true, 0 false *)
  mutable watches : clause Vec.t array;  (* indexed by falsified literal *)
  trail : int Vec.t;
  mutable qhead : int;
  mutable conflict : bool;  (* a root conflict is permanent *)
  db : (string, clause list ref) Hashtbl.t;
  mutable premises : int;
  mutable live : int;  (* added (non-premise) clauses not yet deleted *)
}

let create () =
  {
    nvars = 0;
    assigns = [||];
    watches = [||];
    trail = Vec.create ~dummy:0;
    qhead = 0;
    conflict = false;
    db = Hashtbl.create 64;
    premises = 0;
    live = 0;
  }

let n_premises t = t.premises
let n_proof_clauses t = t.live

let ensure_var t v =
  if v >= t.nvars then begin
    let n = max (v + 1) (max 16 (2 * t.nvars)) in
    let assigns = Array.make n (-1) in
    Array.blit t.assigns 0 assigns 0 t.nvars;
    let watches =
      Array.init (2 * n) (fun i ->
          if i < 2 * t.nvars then t.watches.(i)
          else Vec.create ~dummy:dummy_clause)
    in
    t.assigns <- assigns;
    t.watches <- watches;
    t.nvars <- n
  end

let value t l =
  let a = t.assigns.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

(* [enqueue t l] makes [l] true; [false] means [l] was already false. *)
let enqueue t l =
  match value t l with
  | 1 -> true
  | 0 -> false
  | _ ->
      t.assigns.(l lsr 1) <- 1 lxor (l land 1);
      Vec.push t.trail l;
      true

let propagate t =
  let ok = ref true in
  while !ok && t.qhead < Vec.length t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    (* clauses watching [¬p], which just became false *)
    let ws = t.watches.(p) in
    let n = Vec.length ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.dead then begin
        let false_lit = p lxor 1 in
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        if value t c.lits.(0) = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          let len = Array.length c.lits in
          let k = ref 2 in
          while !k < len && value t c.lits.(!k) = 0 do
            incr k
          done;
          if !k < len then begin
            (* found a non-false replacement watch *)
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- false_lit;
            Vec.push t.watches.(c.lits.(1) lxor 1) c
          end
          else begin
            (* unit under the current assignment, or conflicting *)
            Vec.set ws !j c;
            incr j;
            if not (enqueue t c.lits.(0)) then begin
              ok := false;
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            end
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !ok

let undo_to t save =
  while Vec.length t.trail > save do
    let l = Vec.pop t.trail in
    t.assigns.(l lsr 1) <- -1
  done;
  t.qhead <- save

(* Sorted, deduplicated literal codes: the identity of a clause. *)
let norm lits =
  let a = Array.map Lit.to_int lits in
  Array.sort compare a;
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let j = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!j - 1) then begin
        a.(!j) <- a.(i);
        incr j
      end
    done;
    Array.sub a 0 !j
  end

let key_of a =
  let b = Buffer.create (4 * Array.length a) in
  Array.iter
    (fun l ->
      Buffer.add_string b (string_of_int l);
      Buffer.add_char b ' ')
    a;
  Buffer.contents b

(* Installs a clause the store must honour from now on.  Root-satisfied
   clauses can never propagate (root assignments are permanent) and are only
   registered for deletion lookups; root-unit clauses extend the root trail;
   everything else gets two non-false watches. *)
let ingest t lits ~key ~premise =
  let c = { lits; key; premise; dead = false; watched = false } in
  (match Hashtbl.find_opt t.db key with
  | Some r -> r := c :: !r
  | None -> Hashtbl.add t.db key (ref [ c ]));
  if premise then t.premises <- t.premises + 1 else t.live <- t.live + 1;
  if not t.conflict then begin
    let sat = ref false and nonfalse = ref 0 in
    Array.iter
      (fun l ->
        match value t l with
        | 1 -> sat := true
        | -1 -> incr nonfalse
        | _ -> ())
      lits;
    if !sat then ()
    else if !nonfalse = 0 then t.conflict <- true
    else if !nonfalse = 1 then begin
      let u = ref lits.(0) in
      Array.iter (fun l -> if value t l = -1 then u := l) lits;
      ignore (enqueue t !u);
      if not (propagate t) then t.conflict <- true
    end
    else begin
      let pos = ref 0 in
      Array.iteri
        (fun k l ->
          if !pos < 2 && value t l <> 0 then begin
            lits.(k) <- lits.(!pos);
            lits.(!pos) <- l;
            incr pos
          end)
        lits;
      c.watched <- true;
      Vec.push t.watches.(lits.(0) lxor 1) c;
      Vec.push t.watches.(lits.(1) lxor 1) c
    end
  end

let add_premise t lits =
  let a = norm lits in
  Array.iter (fun l -> ensure_var t (l lsr 1)) a;
  ingest t a ~key:(key_of a) ~premise:true

(* Reverse unit propagation: is [lits] implied by the current store?  Assume
   every literal false, propagate, demand a conflict.  A clause with a
   root-true literal is subsumed by a derived unit, hence implied. *)
let rup t lits =
  t.conflict
  ||
  if Array.exists (fun l -> value t l = 1) lits then true
  else begin
    let save = Vec.length t.trail in
    let confl = ref false in
    Array.iter
      (fun l -> if (not !confl) && not (enqueue t (l lxor 1)) then confl := true)
      lits;
    let implied = !confl || not (propagate t) in
    undo_to t save;
    implied
  end

let refutes t assumptions =
  t.conflict
  ||
  let save = Vec.length t.trail in
  let confl = ref false in
  List.iter
    (fun l ->
      if (not !confl) && not (enqueue t (Lit.to_int l)) then confl := true)
    assumptions;
  let refuted = !confl || not (propagate t) in
  undo_to t save;
  refuted

let apply t step =
  match step with
  | Proof.Add lits ->
      let a = norm lits in
      Array.iter (fun l -> ensure_var t (l lsr 1)) a;
      if rup t a then begin
        ingest t a ~key:(key_of a) ~premise:false;
        Ok ()
      end
      else
        Error
          (Format.asprintf "clause is not RUP: %a" Proof.pp_step (Proof.Add lits))
  | Proof.Delete lits -> (
      let key = key_of (norm lits) in
      match Hashtbl.find_opt t.db key with
      | None | Some { contents = [] } ->
          Error
            (Format.asprintf "delete of unknown clause: %a" Proof.pp_step
               (Proof.Delete lits))
      | Some r ->
          let c = List.hd !r in
          r := List.tl !r;
          if c.watched then c.dead <- true;
          if c.premise then t.premises <- t.premises - 1
          else t.live <- t.live - 1;
          Ok ())

let check ?(assumptions = []) ?(require_conflict = true) ~premises steps =
  let t = create () in
  List.iter (add_premise t) premises;
  let rec go i steps =
    match steps () with
    | Seq.Nil ->
        if (not require_conflict) || refutes t assumptions then Ok ()
        else Error "proof does not derive a conflict"
    | Seq.Cons (s, rest) -> (
        match apply t s with
        | Ok () -> go (i + 1) rest
        | Error e -> Error (Printf.sprintf "step %d: %s" i e))
  in
  go 1 steps

let check_file ?assumptions ?require_conflict ~cnf ~format path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let premises = List.map Array.of_list cnf.Dimacs.clauses in
          try
            check ?assumptions ?require_conflict ~premises
              (Proof.read_steps format ic)
          with Proof.Parse_error e -> Error e)
