(* A racing portfolio over forked solver workers.

   The parent forks [jobs] diversified solver configurations over the same
   CNF (inherited copy-on-write, nothing is serialized) and takes the first
   decisive verdict.  Worker 0 always runs the vanilla configuration — the
   exact solve the caller would have run alone, so [~jobs:1] is
   byte-identical to plain solving — and the rest scramble saved phases,
   restart schedules, and simplification on/off.

   Wire protocol (one line per message on the worker's message pipe):

     HB             still alive (sent at start and at every solver restart)
     DONE           result file published; exiting 0
     ERR <message>  deterministic failure; exiting nonzero

   A worker publishes its verdict by writing `res_<i>.tmp` in the run's
   scratch directory and renaming it to `res_<i>.res` (atomic, never torn):
   the first line is SAT/UNSAT/UNKNOWN, and a SAT verdict carries the model
   as a 0/1 string on the second line — reconstructed over the original
   variables when the worker simplified.  Proof steps stream separately to
   `proof_<i>` in text DRUP as the worker runs.

   Trust story: a SAT verdict is accepted only after the parent evaluates
   the model against its own copy of the CNF; under [~certify:true] an
   UNSAT verdict is accepted only if the independent {!Drat} checker admits
   the worker's proof file.  A worker whose answer fails validation is
   discarded (the race continues on the survivors) rather than trusted.
   Losers are SIGKILLed and every child is reaped before [solve] returns;
   a silent worker is presumed hung after [heartbeat_timeout] and killed.
   If every worker dies without an accepted verdict the parent falls back
   to solving in-process ([winner = -1]). *)

type outcome = {
  result : Solver.result;
  model : bool array option;  (* over the original variables, on Sat *)
  winner : int;  (* worker index; -1 = in-process fallback *)
  workers : int;  (* workers forked *)
  rejected : int;  (* verdicts discarded by validation/proof checking *)
}

type plan = {
  seed : int;  (* 0 = leave the solver untouched *)
  restart_base : int;
  simp : bool;
}

(* Worker 0 is the caller's own configuration.  The rest split between
   simplified and plain solving whatever the caller chose, with distinct
   phase seeds and restart cadences — diversity in where the search starts
   and how often it abandons a subtree, not in what it concludes. *)
let worker_plan ~simplify idx =
  if idx = 0 then { seed = 0; restart_base = 100; simp = simplify }
  else
    let bases = [| 64; 256; 150; 32; 512; 100; 200; 80 |] in
    {
      seed = (idx * 0x9E3779B9) land max_int;
      restart_base = bases.((idx - 1) mod Array.length bases);
      simp = (if idx land 1 = 1 then not simplify else simplify);
    }

let write_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length b in
  let rec go off = if off < len then go (off + Unix.write fd b off (len - off)) in
  go 0

let one_line s = String.map (fun c -> if c = '\n' then ' ' else c) s

(* Test-only fault injection: with SPECREPAIR_PORTFOLIO_CHAOS_KILL=<i>,
   worker <i> SIGKILLs itself before doing any work — a deterministic
   stand-in for losing a racer mid-run.  Unset in normal operation. *)
let chaos_kill idx =
  match Sys.getenv_opt "SPECREPAIR_PORTFOLIO_CHAOS_KILL" with
  | Some v when int_of_string_opt v = Some idx ->
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | _ -> ()

let model_line model =
  String.init (Array.length model) (fun i -> if model.(i) then '1' else '0')

let model_satisfies (cnf : Dimacs.cnf) model =
  let value l =
    let v = Lit.var l in
    let b = v < Array.length model && model.(v) in
    if Lit.sign l then b else not b
  in
  List.for_all (fun c -> List.exists value c) cnf.clauses

(* {2 Worker side} *)

let child_main ~idx ~plan ~dir ~msg_w ?max_conflicts (cnf : Dimacs.cnf) =
  let send line = write_line msg_w line in
  chaos_kill idx;
  send "HB";
  let proof_path = Filename.concat dir (Printf.sprintf "proof_%d" idx) in
  let proof_oc = open_out proof_path in
  let sink = Proof.file_sink Proof.Text proof_oc in
  let hb () = send "HB" in
  let result, model =
    if plan.simp then begin
      let r = Simplify.solve ~proof:sink ?max_conflicts ~on_restart:hb cnf in
      (r.Simplify.result, r.Simplify.model)
    end
    else begin
      let s = Solver.create () in
      Solver.set_proof s (Some sink);
      Dimacs.load_into s cnf;
      if plan.seed <> 0 then begin
        Solver.randomize s ~seed:plan.seed;
        Solver.set_restart_base s plan.restart_base
      end;
      Solver.set_on_restart s (Some hb);
      let r = Solver.solve ?max_conflicts s in
      (r, if r = Solver.Sat then Some (Solver.model s) else None)
    end
  in
  close_out proof_oc;
  let tmp = Filename.concat dir (Printf.sprintf "res_%d.tmp" idx) in
  let oc = open_out tmp in
  (match result with
  | Solver.Sat ->
      output_string oc "SAT\n";
      output_string oc (model_line (Option.get model) ^ "\n")
  | Solver.Unsat -> output_string oc "UNSAT\n"
  | Solver.Unknown -> output_string oc "UNKNOWN\n");
  close_out oc;
  Sys.rename tmp (Filename.concat dir (Printf.sprintf "res_%d.res" idx));
  send "DONE"

(* {2 Parent side} *)

type worker = {
  idx : int;
  pid : int;
  msg_r : Unix.file_descr;
  rbuf : Buffer.t;
  mutable last_beat : float;
  mutable eof : bool;
}

let now () = Unix.gettimeofday ()

let reap_blocking pid =
  try ignore (Unix.waitpid [] pid)
  with Unix.Unix_error (ECHILD, _, _) -> ()

let read_result dir idx =
  let path = Filename.concat dir (Printf.sprintf "res_%d.res" idx) in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let line () = try Some (input_line ic) with End_of_file -> None in
      let r =
        match line () with
        | Some "SAT" -> (
            match line () with
            | Some bits ->
                let m = Array.init (String.length bits) (fun i -> bits.[i] = '1') in
                Some (Solver.Sat, Some m)
            | None -> None)
        | Some "UNSAT" -> Some (Solver.Unsat, None)
        | Some "UNKNOWN" -> Some (Solver.Unknown, None)
        | _ -> None
      in
      close_in ic;
      r

(* Replay a winner's proof file into the caller's sink, as steps only —
   the caller owns the premises, same convention as {!Simplify.solve}. *)
let replay_proof dir idx sink =
  let path = Filename.concat dir (Printf.sprintf "proof_%d" idx) in
  match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          try
            Seq.iter
              (fun st -> sink (Proof.Step st))
              (Proof.read_steps Proof.Text ic)
          with Proof.Parse_error _ -> ())

let solve_inprocess ?proof ?max_conflicts ~simplify (cnf : Dimacs.cnf) =
  let steps_only =
    Option.map (fun sink e -> match e with Proof.Input _ -> () | e -> sink e) proof
  in
  if simplify then begin
    let r = Simplify.solve ?proof:steps_only ?max_conflicts cnf in
    (r.Simplify.result, r.Simplify.model)
  end
  else begin
    let s = Solver.create () in
    Solver.set_proof s steps_only;
    Dimacs.load_into s cnf;
    let r = Solver.solve ?max_conflicts s in
    (r, if r = Solver.Sat then Some (Solver.model s) else None)
  end

let solve ?(jobs = 4) ?(simplify = false) ?(certify = false)
    ?(heartbeat_timeout = 10.) ?proof ?max_conflicts (cnf : Dimacs.cnf) =
  let jobs = max 1 jobs in
  let dir = Filename.temp_dir "specrepair_portfolio_" "" in
  let workers : (int, worker) Hashtbl.t = Hashtbl.create jobs in
  let live () = Hashtbl.fold (fun _ w acc -> w :: acc) workers [] in
  let rejected = ref 0 in
  let accepted = ref None in
  let spawn idx =
    let plan = worker_plan ~simplify idx in
    let msg_r, msg_w = Unix.pipe ~cloexec:false () in
    match Unix.fork () with
    | 0 ->
        Unix.close msg_r;
        Hashtbl.iter
          (fun _ w -> try Unix.close w.msg_r with Unix.Unix_error _ -> ())
          workers;
        (match child_main ~idx ~plan ~dir ~msg_w ?max_conflicts cnf with
        | () -> Unix._exit 0
        | exception e ->
            (try write_line msg_w ("ERR " ^ one_line (Printexc.to_string e))
             with Unix.Unix_error _ -> ());
            Unix._exit 2)
    | pid ->
        Unix.close msg_w;
        Hashtbl.replace workers pid
          { idx; pid; msg_r; rbuf = Buffer.create 64; last_beat = now (); eof = false }
  in
  let retire w =
    Hashtbl.remove workers w.pid;
    try Unix.close w.msg_r with Unix.Unix_error _ -> ()
  in
  (* A DONE arrived: read, validate, and either accept the verdict or
     discard the worker and keep racing. *)
  let consider w =
    let ok =
      match read_result dir w.idx with
      | Some (Solver.Sat, Some m)
        when Array.length m >= cnf.num_vars && model_satisfies cnf m ->
          Some (Solver.Sat, Some m)
      | Some (Solver.Unsat, _) ->
          if not certify then Some (Solver.Unsat, None)
          else begin
            let path = Filename.concat dir (Printf.sprintf "proof_%d" w.idx) in
            match Drat.check_file ~cnf ~format:Proof.Text path with
            | Ok () -> Some (Solver.Unsat, None)
            | Error _ -> None
          end
      | _ -> None  (* Unknown, torn file, or a model that does not check *)
    in
    match ok with
    | Some (result, model) ->
        (match proof with
        | Some sink when result = Solver.Unsat -> replay_proof dir w.idx sink
        | _ -> ());
        accepted := Some (result, model, w.idx);
        (* the winner has published and is exiting; reap it here — cleanup
           only sees workers still in the pool *)
        reap_blocking w.pid;
        retire w
    | None ->
        incr rejected;
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap_blocking w.pid;
        retire w
  in
  let handle_line w line =
    match String.split_on_char ' ' line with
    | "HB" :: _ -> w.last_beat <- now ()
    | "DONE" :: _ ->
        w.last_beat <- now ();
        consider w
    | "ERR" :: _ ->
        incr rejected;
        reap_blocking w.pid;
        retire w
    | _ -> ()
  in
  let rec drain_lines w =
    if !accepted = None then begin
      let s = Buffer.contents w.rbuf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
          Buffer.clear w.rbuf;
          Buffer.add_substring w.rbuf s (i + 1) (String.length s - i - 1);
          handle_line w (String.sub s 0 i);
          if Hashtbl.mem workers w.pid then drain_lines w
    end
  in
  let scratch = Bytes.create 65536 in
  let read_messages w =
    match Unix.read w.msg_r scratch 0 (Bytes.length scratch) with
    | 0 -> w.eof <- true
    | k ->
        Buffer.add_subbytes w.rbuf scratch 0 k;
        drain_lines w
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  let cleanup () =
    List.iter
      (fun w ->
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap_blocking w.pid;
        try Unix.close w.msg_r with Unix.Unix_error _ -> ())
      (live ());
    Hashtbl.reset workers;
    try
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      Unix.rmdir dir
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_sigpipe () =
    match old_sigpipe with
    | Some h -> ( try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
    | None -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      restore_sigpipe ();
      cleanup ())
    (fun () ->
      for i = 0 to jobs - 1 do
        spawn i
      done;
      while !accepted = None && Hashtbl.length workers > 0 do
        (* 1. messages: heartbeats, completions, errors *)
        let readable = List.filter (fun w -> not w.eof) (live ()) in
        let fds = List.map (fun w -> w.msg_r) readable in
        let ready, _, _ =
          if fds = [] then ([], [], [])
          else
            try Unix.select fds [] [] 0.05
            with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun w ->
            if !accepted = None && List.mem w.msg_r ready then read_messages w)
          readable;
        (* 2. death poll: a worker may die (or be chaos-killed) without a
           DONE; if it managed to publish a result before dying, still
           consider it — the rename made the file trustworthy *)
        if !accepted = None then
          List.iter
            (fun w ->
              match Unix.waitpid [ Unix.WNOHANG ] w.pid with
              | 0, _ -> ()
              | _, _ ->
                  Hashtbl.remove workers w.pid;
                  (try Unix.close w.msg_r with Unix.Unix_error _ -> ());
                  if Sys.file_exists (Filename.concat dir (Printf.sprintf "res_%d.res" w.idx))
                  then begin
                    (* reuse the validation path; the pid is already reaped *)
                    Hashtbl.replace workers w.pid w;
                    consider w;
                    if Hashtbl.mem workers w.pid then retire w
                  end
                  else incr rejected
              | exception Unix.Unix_error (ECHILD, _, _) -> retire w)
            (live ());
        (* 3. heartbeat: silent workers are presumed hung *)
        if !accepted = None then
          List.iter
            (fun w ->
              if now () -. w.last_beat > heartbeat_timeout then begin
                incr rejected;
                (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
                reap_blocking w.pid;
                retire w
              end)
            (live ())
      done;
      match !accepted with
      | Some (result, model, winner) ->
          { result; model; winner; workers = jobs; rejected = !rejected }
      | None ->
          (* every racer died or was rejected: answer in-process *)
          let result, model = solve_inprocess ?proof ?max_conflicts ~simplify cnf in
          { result; model; winner = -1; workers = jobs; rejected = !rejected })
