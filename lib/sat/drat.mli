(** An independent DRUP proof checker.

    Verifies that every clause a proof adds is entailed by what precedes it
    — original CNF, earlier additions, minus deletions — by {e reverse unit
    propagation} (RUP): assume every literal of the clause false; if unit
    propagation then derives a conflict, the clause is implied.  First-UIP
    learnt clauses, the solver's final assumption-conflict clauses, and the
    empty clause are all RUP at their emission point, so a correct
    proof-logged run always checks; a proof with a gap (a dropped or
    corrupted step) is rejected with a step-indexed error.

    The checker is deliberately {e not} the solver: it has its own minimal
    two-watched-literal propagation over its own clause store and shares
    nothing with [Solver]'s trail, so a bug in the solver's propagation or
    learning cannot vouch for itself.

    The checker is incremental ({!create}/{!add_premise}/{!apply}): the
    oracle's certify mode mirrors a long-lived solver's stream step by
    step, paying each RUP check once, and asks {!refutes} at every UNSAT
    verdict.  {!check} and {!check_file} are one-shot conveniences on top.

    Trust story: premises are the CNF as given; every accepted [Add] is
    implied by the premises alone (assumption literals are {e never} used
    during step checking); {!refutes} then certifies "CNF ∧ assumptions is
    unsatisfiable" by pure unit propagation.  Deletions are unchecked
    performance hints, as in DRUP: root-level consequences of a deleted
    clause are retained, which cannot unsoundly accept (everything retained
    is still implied by the premises). *)

type t

val create : unit -> t

val add_premise : t -> Lit.t array -> unit
(** Registers an original clause.  Premises may arrive at any point in the
    stream (the incremental solver interleaves clause additions with
    solving); registering is never an error. *)

val apply : t -> Proof.step -> (unit, string) result
(** Processes one proof step: RUP-checks and installs an [Add], removes a
    [Delete].  Errors name the offense ("clause is not RUP", "delete of
    unknown clause").  After an error the state is unchanged and further
    steps may still be applied. *)

val refutes : t -> Lit.t list -> bool
(** [refutes t assumptions]: does the current clause store propagate to a
    conflict once the assumption literals are asserted?  With [[]] this
    asks whether the empty clause has effectively been derived — the
    certificate of an unconditional UNSAT. *)

val n_premises : t -> int
val n_proof_clauses : t -> int
(** Live [Add]ed clauses (deletions subtracted). *)

(** {2 One-shot checking} *)

val check :
  ?assumptions:Lit.t list ->
  ?require_conflict:bool ->
  premises:Lit.t array list ->
  Proof.step Seq.t ->
  (unit, string) result
(** Applies every step in order over the premises.  With [require_conflict]
    (the default) the final store must refute the assumptions (default
    [[]]); [~require_conflict:false] only validates the derivations, which
    is the meaningful check for a satisfiable run's proof log.  Errors are
    prefixed with the 1-based step index. *)

val check_file :
  ?assumptions:Lit.t list ->
  ?require_conflict:bool ->
  cnf:Dimacs.cnf ->
  format:Proof.format ->
  string ->
  (unit, string) result
(** Streams a proof file against a DIMACS CNF without materializing the
    step list; file-system and parse errors are reported as [Error]. *)
