(** A racing portfolio of forked solver workers.

    Forks [jobs] diversified solver configurations over the same CNF — the
    formula is inherited through [fork], nothing is serialized — and
    returns the first verdict that survives validation.  Worker 0 always
    runs the caller's own configuration untouched, so [~jobs:1] produces a
    byte-identical verdict and model to plain solving; the other workers
    scramble saved phases, restart cadence, and simplification on/off.

    Verdicts are never trusted on a worker's word: a SAT model is
    re-evaluated against the parent's copy of the CNF, and with
    [~certify:true] an UNSAT verdict is accepted only when the independent
    {!Drat} checker admits the worker's streamed proof file.  Rejected
    workers drop out of the race; if every worker dies or is rejected the
    parent solves in-process ([winner = -1]).  Losers are SIGKILLed and all
    children are reaped before [solve] returns; a worker silent past
    [heartbeat_timeout] seconds (heartbeats flow at every solver restart)
    is presumed hung and killed. *)

type outcome = {
  result : Solver.result;
  model : bool array option;
      (** on [Sat]: a model over the original variables (simplifying
          workers reconstruct before publishing) *)
  winner : int;  (** index of the accepted worker; [-1] = in-process fallback *)
  workers : int;  (** workers forked *)
  rejected : int;
      (** verdicts discarded: failed model check, refused certificate,
          worker death or heartbeat kill *)
}

val solve :
  ?jobs:int ->
  ?simplify:bool ->
  ?certify:bool ->
  ?heartbeat_timeout:float ->
  ?proof:Proof.sink ->
  ?max_conflicts:int ->
  Dimacs.cnf ->
  outcome
(** Race [jobs] workers (default 4, clamped to at least 1) on [cnf].
    [simplify] sets worker 0's configuration (and seeds the diversification
    of the rest); [max_conflicts] bounds each worker's conflicts (a race in
    which every worker exhausts the budget falls through to a budgeted
    in-process solve and answers [Unknown]).  The sink, when given,
    receives the winner's proof as [Step] events only — the caller owns the
    premises, as with {!Simplify.solve} — and only for [Unsat] verdicts. *)
