(** DRUP proof logging: the event stream a proof-logged solver emits.

    A proof is the sequence of clauses the solver {e derived} (every learnt
    clause, every final conflict clause) interleaved with the clauses it
    {e deleted} (learnt-database reductions), in emission order.  Together
    with the original CNF — streamed separately as {!Input} events, never
    part of a proof file — the sequence is a checkable certificate: each
    added clause must follow from what precedes it by reverse unit
    propagation (see {!Drat}).

    The solver talks to a {!sink}; when no sink is installed the hot path
    pays one [None] test per learnt clause and nothing else.  Three sinks
    are provided: an in-memory {!recorder}, and streaming file writers in
    the two standard on-disk formats ({!file_sink}) for proofs too large to
    hold in memory.

    Formats:
    - {e text} — classic DRUP: one step per line, DIMACS literals
      terminated by [0], deletions prefixed with [d].
    - {e binary} — the DRAT binary encoding: ['a']/['d'] tag bytes followed
      by 7-bit variable-length literal codes, zero-terminated. *)

type step =
  | Add of Lit.t array  (** a clause the solver derived *)
  | Delete of Lit.t array  (** a learnt clause dropped from the database *)

type event =
  | Input of Lit.t array
      (** an original clause, exactly as handed to [Solver.add_clause];
          premise material for the checker, not part of the proof proper *)
  | Step of step

type sink = event -> unit

type format = Text | Binary

(** {2 In-memory recording} *)

type recorder

val recorder : unit -> recorder
val recorder_sink : recorder -> sink

val inputs : recorder -> Lit.t array list
(** Original clauses seen so far, in order. *)

val steps : recorder -> step list
(** Proof steps seen so far, in order. *)

val n_steps : recorder -> int

(** {2 File-backed streaming} *)

val file_sink : format -> out_channel -> sink
(** Writes each {!Step} to the channel as it arrives; {!Input} events are
    ignored (the CNF travels separately).  The caller owns the channel. *)

val write_step : format -> out_channel -> step -> unit

val read_steps : format -> in_channel -> step Seq.t
(** Lazily parses a proof file back into steps; the sequence is
    single-shot and reads as it is forced.  Raises {!Parse_error} on
    malformed input when forced. *)

exception Parse_error of string

(** {2 Plumbing} *)

val pp_step : Format.formatter -> step -> unit
val step_equal : step -> step -> bool
