(** A CDCL SAT solver in the MiniSat lineage.

    Features: two-watched-literal propagation, first-UIP conflict analysis
    with clause learning, VSIDS variable activities with phase saving, Luby
    restarts, and activity-driven deletion of learnt clauses.  The solver is
    incremental: clauses may be added between [solve] calls and solving under
    assumptions is supported, which is how the model finder enumerates
    instances (blocking clauses) and the repair engines run equivalence
    queries. *)

type t

type result = Sat | Unsat | Unknown
(** [Unknown] is only returned when a conflict budget was given and
    exhausted. *)

val create : unit -> t

val new_var : t -> int
(** Allocates a fresh variable and returns its index. *)

val new_vars : t -> int -> int
(** [new_vars s n] allocates [n] fresh variables, returning the first index;
    the block is contiguous. *)

val n_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Adds a clause.  Tautologies are dropped; duplicate and already-falsified
    (at level 0) literals are removed.  Adding an empty (or falsified unit)
    clause makes the solver permanently unsatisfiable. *)

val ok : t -> bool
(** [false] once the clause set is known unsatisfiable at level 0. *)

val solve : ?assumptions:Lit.t list -> ?max_conflicts:int -> t -> result
(** Determines satisfiability of the current clause set, optionally under
    [assumptions] (extra unit constraints local to this call) and within an
    optional conflict budget.

    Incremental contract: assumptions are enqueued as pseudo-decisions below
    the root level, so an [Unsat] answer caused by the assumptions does not
    poison the solver — [ok] stays [true], clauses learnt during the call
    persist, and the solver can be reused for further [solve] calls.  The
    conflict budget is local to each call (it bounds the conflicts of this
    call, not the lifetime total). *)

val unsat_assumptions : t -> Lit.t list
(** After [solve ~assumptions] returned [Unsat]: a subset of the assumptions
    sufficient for unsatisfiability together with the clause set (MiniSat's
    final-conflict analysis).  Empty when the clause set is unsatisfiable
    regardless of the assumptions.  Reset by the next [solve] call. *)

val value : t -> int -> bool
(** Model value of a variable; meaningful only after [solve] returned
    [Sat].  Unconstrained variables read as [false]. *)

val lit_value : t -> Lit.t -> bool
(** Model value of a literal after [Sat]. *)

val model : t -> bool array
(** Snapshot of the full model after [Sat]. *)

val root_units : t -> Lit.t list
(** Literals fixed at decision level 0 (permanently implied by the clause
    set), in trail order.  Useful between budgeted [solve] calls: an
    inprocessing loop harvests these as unit clauses before
    re-simplifying. *)

(** {2 Diversification}

    Knobs that change the order the search space is explored without
    changing the answer — the portfolio racer gives each worker a
    different configuration. *)

val set_restart_base : t -> int -> unit
(** Conflicts per Luby restart unit (default 100). *)

val randomize : t -> seed:int -> unit
(** Scrambles the saved phases and applies a small activity jitter,
    deterministically in [seed].  Call after loading clauses and before
    the first [solve]. *)

val set_on_restart : t -> (unit -> unit) option -> unit
(** Callback invoked at every restart boundary of a [solve] call; portfolio
    workers use it to emit protocol heartbeats from inside a long solve.
    Must not touch the solver. *)

(** {2 Proof logging} *)

val set_proof : t -> Proof.sink option -> unit
(** Installs (or, with [None], removes) a proof sink.  While installed, the
    solver reports every original clause as a {!Proof.Input} event and every
    derivation as a {!Proof.Step}: learnt clauses and final
    assumption-conflict clauses as [Add]s (the negated {!unsat_assumptions}
    core, so assumption-[Unsat] answers are checkable too), learnt-database
    evictions as [Delete]s, and the empty clause whenever the solver
    concludes root-level unsatisfiability.  The stream is a DRUP proof
    checkable by {!Drat}.  Install the sink before adding clauses: premises
    added earlier are never replayed.  With no sink the solver pays one
    [None] test per emission point and nothing else. *)

(** {2 Statistics} *)

val n_conflicts : t -> int
val n_decisions : t -> int
val n_propagations : t -> int
val n_clauses : t -> int
val n_learnts : t -> int

val n_restarts : t -> int
(** Restarts actually taken (Luby budget exhaustions), across all [solve]
    calls. *)

val n_reductions : t -> int
(** Times the learnt-clause database was reduced ([reduce_db] runs). *)
