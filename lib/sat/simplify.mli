(** Proof-preserving CNF simplification and inprocessing.

    Implements the classic preprocessor triad — occurrence-list subsumption
    with self-subsuming resolution, clause vivification, and bounded
    variable elimination — with every transformation logged through a
    {!Proof.sink} as DRUP [Add]/[Delete] steps that {!Drat} accepts:
    strengthened clauses and resolvents are added {e before} their parents
    are deleted, so each [Add] is RUP against the checker's live database.
    Variable elimination stacks the deleted parent clauses; {!type-outcome}'s
    [reconstruct] replays the stack in reverse to extend a model of the
    simplified formula to the original variables. *)

type config = {
  sweeps : int;  (** fixpoint sweeps per simplification call *)
  bve_max_occ : int;
      (** eliminate only variables with at most this many occurrences of
          each polarity *)
  bve_growth : int;  (** tolerated resolvent surplus over deleted clauses *)
  vivify_budget : int;  (** propagation steps spent vivifying, per sweep *)
  inprocess_rounds : int;
      (** solve/simplify interleavings in {!val-solve}; the last round runs
          with the remaining conflict budget *)
  first_chunk : int;  (** conflict budget of the first inprocessing chunk *)
}

val default : config

type stats = {
  mutable subsumed : int;
  mutable strengthened : int;  (** self-subsuming resolutions *)
  mutable vivified : int;  (** literals removed by vivification *)
  mutable eliminated : int;  (** variables eliminated *)
  mutable sweeps_run : int;
}

val stats_zero : unit -> stats

val stats_add : stats -> stats -> unit
(** [stats_add acc s] adds [s] into [acc] (telemetry accumulators). *)

type outcome = {
  cnf : Dimacs.cnf;  (** the simplified clause set, over the same variables *)
  unsat : bool;  (** simplification alone refuted the formula *)
  reconstruct : bool array -> bool array;
      (** extends a model of [cnf] to a model of the input formula,
          restoring eliminated variables *)
  stats : stats;
}

val simplify :
  ?proof:Proof.sink ->
  ?frozen:int list ->
  ?config:config ->
  Dimacs.cnf ->
  outcome
(** One preprocessing run.  [frozen] variables are never eliminated (use
    for assumption/activation variables that must survive).  The sink, when
    given, receives only [Step] events — the caller owns the premises. *)

(** {2 Inprocessing solve driver} *)

type solve_result = {
  result : Solver.result;
  model : bool array option;
      (** on [Sat]: a model over the original variables (reconstructed) *)
  sstats : stats;  (** simplification totals across all rounds *)
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  reductions : int;
}

val solve :
  ?proof:Proof.sink ->
  ?config:config ->
  ?max_conflicts:int ->
  ?on_restart:(unit -> unit) ->
  Dimacs.cnf ->
  solve_result
(** Simplify, solve in conflict-budgeted chunks, and between chunks harvest
    root-implied units and re-simplify (periodic inprocessing).  The proof
    stream stays a single checkable DRUP derivation: inner solvers are
    loaded with their [Input] events suppressed (the clauses are already in
    the stream as premises or [Add]s), and harvested units are re-emitted
    as [Add]s, which are RUP by root propagation.  [on_restart] is invoked
    at solver restarts and between rounds (portfolio heartbeats). *)
