(** Deterministic generators for hard benchmark CNFs, shared by the bench
    harness, the tests and the fuzz corpus. *)

val pigeonhole : int -> Dimacs.cnf
(** [pigeonhole n] encodes "n+1 pigeons in n holes" — unsatisfiable, with
    resolution proofs exponential in [n].  Variable [p*n + h] means pigeon
    [p] sits in hole [h]. *)

val random_3sat : seed:int -> num_vars:int -> num_clauses:int -> Dimacs.cnf
(** Uniform random 3-SAT; at a clause/variable ratio near 4.26 the
    instances sit at the satisfiability phase transition, where both SAT
    and UNSAT answers are expensive.  Deterministic in [seed]. *)

val with_redundancy : seed:int -> copies:int -> Dimacs.cnf -> Dimacs.cnf
(** [with_redundancy ~seed ~copies cnf] interleaves each clause with
    [copies] redundant companions — verbatim duplicates and strict
    supersets — preserving (un)satisfiability.  Models the clause-level
    redundancy of Tseitin-translated specifications; subsumption strips
    the companions, a plain solver drags them through every propagation. *)
