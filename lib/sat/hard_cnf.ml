(* Hard-instance CNF generators shared by the benchmark harness, the test
   suite and the fuzz corpus.  Everything here is deterministic: the random
   families use a local xorshift state seeded by the caller, never the
   global [Random], so the same seed yields the same instance on every
   run and OCaml version. *)

(* xorshift64*; good enough to scatter clauses, cheap, dependency-free *)
type rng = { mutable state : int64 }

let rng_create seed =
  { state = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) }

let rng_next r =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 2)

let rng_int r bound = if bound <= 1 then 0 else rng_next r mod bound
let rng_bool r = rng_next r land 1 = 1

let pigeonhole n =
  if n < 1 then invalid_arg "Hard_cnf.pigeonhole";
  (* variable [p*n + h] means pigeon [p] sits in hole [h] *)
  let var ~pigeon ~hole = (pigeon * n) + hole in
  let num_vars = (n + 1) * n in
  let pigeon_clauses =
    List.init (n + 1) (fun p ->
        List.init n (fun h -> Lit.pos (var ~pigeon:p ~hole:h)))
  in
  let hole_clauses = ref [] in
  for h = n - 1 downto 0 do
    for p = n downto 0 do
      for q = n downto p + 1 do
        hole_clauses :=
          [ Lit.neg (var ~pigeon:p ~hole:h); Lit.neg (var ~pigeon:q ~hole:h) ]
          :: !hole_clauses
      done
    done
  done;
  { Dimacs.num_vars; clauses = pigeon_clauses @ !hole_clauses }

let random_3sat ~seed ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Hard_cnf.random_3sat";
  let r = rng_create seed in
  let clause () =
    let rec distinct acc k =
      if k = 0 then acc
      else
        let v = rng_int r num_vars in
        if List.mem v acc then distinct acc k
        else distinct (v :: acc) (k - 1)
    in
    List.map (fun v -> Lit.make v (rng_bool r)) (distinct [] 3)
  in
  { Dimacs.num_vars; clauses = List.init num_clauses (fun _ -> clause ()) }

let with_redundancy ~seed ~copies cnf =
  if copies < 0 then invalid_arg "Hard_cnf.with_redundancy";
  let r = rng_create seed in
  let redundant c =
    List.init copies (fun _ ->
        if rng_bool r then c (* a verbatim duplicate *)
        else begin
          (* a strict superset: pad with literals over fresh-ish variables,
             avoiding complements of literals already in the clause (the
             simplifier drops tautologies outright, which would make the
             padding free instead of costly) *)
          let extra = 1 + rng_int r 3 in
          let pad =
            List.init extra (fun _ ->
                Lit.make (rng_int r cnf.Dimacs.num_vars) (rng_bool r))
          in
          let clashes l = List.mem (Lit.negate l) c || List.mem l c in
          c @ List.filter (fun l -> not (clashes l)) pad
        end)
  in
  {
    cnf with
    Dimacs.clauses =
      List.concat_map (fun c -> c :: redundant c) cnf.Dimacs.clauses;
  }
