(* Proof-preserving CNF simplification: occurrence-list subsumption and
   self-subsuming resolution, clause vivification, and bounded variable
   elimination, plus a solve driver that interleaves simplification with
   budgeted CDCL runs (inprocessing).

   Every transformation is logged through the caller's [Proof.sink] as
   ordinary DRUP [Add]/[Delete] steps, in an order that keeps each [Add]
   RUP-derivable from the checker's live clause database:

   - a strengthened clause (self-subsumption, vivification, removal of
     root-false literals) is [Add]ed *before* its parent is [Delete]d, so
     the parent can participate in the strengthened clause's unit
     propagation;
   - variable elimination first [Add]s every non-tautological resolvent
     (each is RUP: assuming its negation makes both parents unit on the
     eliminated variable) and only then [Delete]s the parent occurrences;
   - subsumed clauses and satisfied clauses are plain [Delete]s, always
     legal in DRUP;
   - root-level units are kept in the database (never deleted), so the
     checker's root propagation mirrors the simplifier's.

   Eliminated variables are restored by [reconstruct]: the parent clauses
   of each elimination are stacked, and a model of the simplified formula
   is extended in reverse elimination order — the stacked parents of the
   latest elimination are satisfiable by choosing the eliminated variable's
   value whenever the current model satisfies all resolvents, which it
   does inductively. *)

type config = {
  sweeps : int;  (* fixpoint sweeps per simplification call *)
  bve_max_occ : int;  (* only eliminate variables this frequent or rarer *)
  bve_growth : int;  (* tolerated resolvent surplus over deleted clauses *)
  vivify_budget : int;  (* propagation steps spent vivifying, per sweep *)
  inprocess_rounds : int;  (* solve/simplify interleavings in [solve] *)
  first_chunk : int;  (* conflict budget of the first inprocessing chunk *)
}

let default =
  {
    sweeps = 3;
    bve_max_occ = 16;
    bve_growth = 0;
    vivify_budget = 50_000;
    inprocess_rounds = 3;
    first_chunk = 2_000;
  }

type stats = {
  mutable subsumed : int;
  mutable strengthened : int;
  mutable vivified : int;  (* literals removed by vivification *)
  mutable eliminated : int;
  mutable sweeps_run : int;
}

let stats_zero () =
  { subsumed = 0; strengthened = 0; vivified = 0; eliminated = 0; sweeps_run = 0 }

let stats_add a b =
  a.subsumed <- a.subsumed + b.subsumed;
  a.strengthened <- a.strengthened + b.strengthened;
  a.vivified <- a.vivified + b.vivified;
  a.eliminated <- a.eliminated + b.eliminated;
  a.sweeps_run <- a.sweeps_run + b.sweeps_run

type outcome = {
  cnf : Dimacs.cnf;
  unsat : bool;  (* simplification alone refuted the formula *)
  reconstruct : bool array -> bool array;
  stats : stats;
}

exception Unsat_found

(* Fault injection for the fuzz harness: drop a literal from one clause
   with no justifying proof step — the checker must reject the bogus
   [Add].  Triggered only under SPECREPAIR_FUZZ_CHAOS=corrupt-simplify. *)
let chaos_corrupt () =
  Sys.getenv_opt "SPECREPAIR_FUZZ_CHAOS" = Some "corrupt-simplify"

type state = {
  cfg : config;
  st : stats;
  sink : Proof.sink option;
  num_vars : int;
  mutable slots : int array option array;  (* sorted, deduped literal codes *)
  mutable n_slots : int;
  assign : int array;  (* root assignment per var: -1 / 0 / 1 *)
  frozen : bool array;
  mutable recon : (int * int array list) list;  (* LIFO elimination stack *)
  mutable mutations : int;  (* bumped by every change, for fixpoints *)
}

let value st l =
  let a = st.assign.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let emit st step =
  match st.sink with None -> () | Some f -> f (Proof.Step step)

let emit_add st lits = emit st (Proof.Add (Array.map Lit.of_int lits))
let emit_del st lits = emit st (Proof.Delete (Array.map Lit.of_int lits))

let push_slot st c =
  if st.n_slots = Array.length st.slots then begin
    let slots = Array.make (max 16 (2 * st.n_slots)) None in
    Array.blit st.slots 0 slots 0 st.n_slots;
    st.slots <- slots
  end;
  st.slots.(st.n_slots) <- Some c;
  st.n_slots <- st.n_slots + 1;
  st.n_slots - 1

(* Delete clause [i], with a proof step. *)
let kill st i =
  match st.slots.(i) with
  | None -> ()
  | Some c ->
      emit_del st c;
      st.slots.(i) <- None;
      st.mutations <- st.mutations + 1

let refute st =
  emit_add st [||];
  raise Unsat_found

let assign_root st l =
  match value st l with
  | 1 -> ()
  | 0 -> refute st
  | _ ->
      st.assign.(l lsr 1) <- 1 lxor (l land 1);
      st.mutations <- st.mutations + 1

(* Replace clause [i] by the strictly stronger [c'] (Add before Delete, so
   the parent is available to the checker's RUP propagation). *)
let strengthen st i c' =
  match st.slots.(i) with
  | None -> ()
  | Some c ->
      if Array.length c' = 0 then refute st;
      emit_add st c';
      emit_del st c;
      st.slots.(i) <- Some c';
      st.mutations <- st.mutations + 1;
      if Array.length c' = 1 then assign_root st c'.(0)

(* Root propagation to fixpoint: unit clauses assign their literal,
   satisfied non-unit clauses are deleted, false literals are stripped.
   Root units themselves are kept — deleting them would blind the
   checker's propagation. *)
let propagate_roots st =
  let changed = ref true in
  while !changed do
    changed := false;
    let before = st.mutations in
    for i = 0 to st.n_slots - 1 do
      match st.slots.(i) with
      | None -> ()
      | Some c ->
          if Array.length c = 1 then begin
            match value st c.(0) with
            | 1 -> ()
            | 0 -> refute st
            | _ -> assign_root st c.(0)
          end
          else if Array.exists (fun l -> value st l = 1) c then kill st i
          else if Array.exists (fun l -> value st l = 0) c then
            strengthen st i (Array.of_seq
              (Seq.filter (fun l -> value st l <> 0) (Array.to_seq c)))
    done;
    if st.mutations > before then changed := true
  done

(* Occurrence lists over the live slots; entries can go stale as passes
   mutate the database, so consumers re-validate against the slot. *)
let build_occ st =
  let occ = Array.make (2 * max 1 st.num_vars) [] in
  for i = st.n_slots - 1 downto 0 do
    match st.slots.(i) with
    | None -> ()
    | Some c -> Array.iter (fun l -> occ.(l) <- i :: occ.(l)) c
  done;
  occ

(* Does [c] subsume [d], or strengthen it by one self-subsuming literal?
   [`Strengthen m] means every literal of [c] occurs in [d] except one
   that occurs negated as [m]; resolving [c] and [d] on [m] yields
   [d] minus [m]. *)
let subsume_match c d =
  let mem l = Array.exists (fun x -> x = l) d in
  let flipped = ref (-1) in
  let ok =
    Array.for_all
      (fun l ->
        if mem l then true
        else if !flipped < 0 && mem (l lxor 1) then begin
          flipped := l lxor 1;
          true
        end
        else false)
      c
  in
  if not ok then `No else if !flipped < 0 then `Subsumes else `Strengthen !flipped

let subsume_pass st =
  let occ = build_occ st in
  for i = 0 to st.n_slots - 1 do
    match st.slots.(i) with
    | None -> ()
    | Some c ->
        (* enumerate candidates through the rarest literal of [c]; a
           superset contains it, and a self-subsumption target contains
           it or its negation *)
        let l0 =
          Array.fold_left
            (fun best l ->
              if List.length occ.(l) < List.length occ.(best) then l else best)
            c.(0) c
        in
        List.iter
          (fun j ->
            if j <> i then
              match (st.slots.(i), st.slots.(j)) with
              | Some c, Some d when Array.length d >= Array.length c -> (
                  match subsume_match c d with
                  | `Subsumes ->
                      kill st j;
                      st.st.subsumed <- st.st.subsumed + 1
                  | `Strengthen m ->
                      strengthen st j
                        (Array.of_seq
                           (Seq.filter (fun l -> l <> m) (Array.to_seq d)));
                      st.st.strengthened <- st.st.strengthened + 1
                  | `No -> ())
              | _ -> ())
          (occ.(l0) @ occ.(l0 lxor 1))
  done

(* {2 Vivification}

   A lightweight unit-propagation engine over the live database (counting
   visits through the occurrence lists; no watches — clause sizes here are
   small and the work is budgeted).  For each clause, assume the negation
   of its literals one by one: a conflict or an implied literal proves a
   strictly shorter clause, which is RUP against a database that still
   holds the original. *)

let vivify_pass st =
  let occ = build_occ st in
  let trail = ref [] in
  let budget = ref st.cfg.vivify_budget in
  let undo save =
    let rec go = function
      | t when t == save -> ()
      | l :: rest ->
          st.assign.(l lsr 1) <- -1;
          go rest
      | [] -> ()
    in
    go !trail;
    trail := save
  in
  (* [propagate ~skip p] makes [p] true and propagates to fixpoint over
     every live clause but [skip], raising [Conflict] on refutation *)
  let exception Conflict in
  let enqueue l =
    match value st l with
    | 1 -> ()
    | 0 -> raise Conflict
    | _ ->
        st.assign.(l lsr 1) <- 1 lxor (l land 1);
        trail := l :: !trail
  in
  let propagate ~skip p0 =
    let queue = Queue.create () in
    Queue.push p0 queue;
    enqueue p0;
    while not (Queue.is_empty queue) do
      let p = Queue.pop queue in
      List.iter
        (fun j ->
          if j <> skip then
            match st.slots.(j) with
            | None -> ()
            | Some c ->
                decr budget;
                if not (Array.exists (fun l -> value st l = 1) c) then begin
                  let unit_lit = ref (-1) and nonfalse = ref 0 in
                  Array.iter
                    (fun l ->
                      if value st l < 0 then begin
                        incr nonfalse;
                        unit_lit := l
                      end)
                    c;
                  if !nonfalse = 0 then raise Conflict
                  else if !nonfalse = 1 && value st !unit_lit < 0 then begin
                    enqueue !unit_lit;
                    Queue.push !unit_lit queue
                  end
                end)
        occ.(p lxor 1)
    done
  in
  for i = 0 to st.n_slots - 1 do
    match st.slots.(i) with
    | Some c when Array.length c >= 2 && !budget > 0 ->
        let save = !trail in
        let shortened =
          (* walk the literals; [kept] is reversed *)
          let rec go kept = function
            | [] ->
                if List.length kept < Array.length c then
                  Some (List.rev kept)
                else None
            | l :: rest -> (
                match value st l with
                | 1 -> Some (List.rev (l :: kept))  (* implied: drop [rest] *)
                | 0 -> go kept rest  (* already false: redundant literal *)
                | _ -> (
                    match propagate ~skip:i (l lxor 1) with
                    | () -> go (l :: kept) rest
                    | exception Conflict -> Some (List.rev (l :: kept))))
          in
          go [] (Array.to_list c)
        in
        undo save;
        (match shortened with
        | Some c' when List.length c' < Array.length c ->
            st.st.vivified <- st.st.vivified + (Array.length c - List.length c');
            strengthen st i (Array.of_list c')
        | _ -> ())
    | _ -> ()
  done

(* {2 Bounded variable elimination} *)

let resolve_on v a b =
  (* resolvent of [a] (contains pos v) and [b] (contains neg v);
     [None] if tautological *)
  let keep c bad = List.filter (fun l -> l <> bad) (Array.to_list c) in
  let merged =
    List.sort_uniq Int.compare (keep a (2 * v) @ keep b ((2 * v) + 1))
  in
  if List.exists (fun l -> List.mem (l lxor 1) merged) merged then None
  else Some (Array.of_list merged)

let bve_pass st =
  let occ = build_occ st in
  for v = 0 to st.num_vars - 1 do
    if (not st.frozen.(v)) && st.assign.(v) < 0 then begin
      let live lit =
        List.filter
          (fun j ->
            match st.slots.(j) with
            | Some c -> Array.exists (fun l -> l = lit) c
            | None -> false)
          occ.(lit)
      in
      let pos = live (2 * v) and neg = live ((2 * v) + 1) in
      let np = List.length pos and nn = List.length neg in
      if
        (np > 0 || nn > 0)
        && np <= st.cfg.bve_max_occ
        && nn <= st.cfg.bve_max_occ
      then begin
        let clause j = Option.get st.slots.(j) in
        let resolvents =
          List.concat_map
            (fun i ->
              List.filter_map (fun j -> resolve_on v (clause i) (clause j)) neg)
            pos
        in
        if List.length resolvents <= np + nn + st.cfg.bve_growth then begin
          let parents = List.map clause (pos @ neg) in
          List.iter
            (fun r ->
              if Array.length r = 0 then refute st;
              emit_add st r)
            resolvents;
          List.iter (fun j -> kill st j) (pos @ neg);
          List.iter
            (fun r ->
              let j = push_slot st r in
              Array.iter (fun l -> occ.(l) <- j :: occ.(l)) r;
              if Array.length r = 1 then assign_root st r.(0))
            resolvents;
          st.recon <- (v, parents) :: st.recon;
          st.st.eliminated <- st.st.eliminated + 1
        end
      end
    end
  done

(* {2 The simplification entry point} *)

let reconstruct_fun ~num_vars stack =
  fun model ->
    let m =
      Array.init num_vars (fun v ->
          v < Array.length model && model.(v))
    in
    let lit_sat l =
      let v = l lsr 1 in
      if l land 1 = 0 then m.(v) else not m.(v)
    in
    List.iter
      (fun (v, parents) ->
        let all_sat () =
          List.for_all (fun c -> Array.exists lit_sat c) parents
        in
        m.(v) <- false;
        if not (all_sat ()) then m.(v) <- true)
      stack;
    m

let simplify ?proof ?(frozen = []) ?(config = default) (cnf : Dimacs.cnf) =
  let st =
    {
      cfg = config;
      st = stats_zero ();
      sink = proof;
      num_vars = cnf.num_vars;
      slots = Array.make (max 16 (List.length cnf.clauses)) None;
      n_slots = 0;
      assign = Array.make (max 1 cnf.num_vars) (-1);
      frozen = Array.make (max 1 cnf.num_vars) false;
      recon = [];
      mutations = 0;
    }
  in
  List.iter (fun v -> if v >= 0 && v < cnf.num_vars then st.frozen.(v) <- true) frozen;
  let outcome unsat =
    let clauses = ref [] in
    for i = st.n_slots - 1 downto 0 do
      match st.slots.(i) with
      | None -> ()
      | Some c -> clauses := Array.to_list (Array.map Lit.of_int c) :: !clauses
    done;
    {
      cnf = { Dimacs.num_vars = cnf.num_vars; clauses = !clauses };
      unsat;
      reconstruct = reconstruct_fun ~num_vars:cnf.num_vars st.recon;
      stats = st.st;
    }
  in
  try
    (* normalize: sorted, deduped literal codes; drop tautologies *)
    List.iter
      (fun c ->
        let codes = List.sort_uniq Int.compare (List.map Lit.to_int c) in
        if codes = [] then refute st
        else if List.exists (fun l -> List.mem (l lxor 1) codes) codes then
          emit_del st (Array.of_list codes)
        else ignore (push_slot st (Array.of_list codes)))
      cnf.clauses;
    propagate_roots st;
    if chaos_corrupt () then begin
      (* drop a literal from the widest clause, with no proof step to
         justify it: the checker must refuse the unjustified Add *)
      let widest = ref (-1) in
      for i = 0 to st.n_slots - 1 do
        match st.slots.(i) with
        | Some c
          when Array.length c >= 2
               && (!widest < 0
                  || Array.length c
                     > Array.length (Option.get st.slots.(!widest))) ->
            widest := i
        | _ -> ()
      done;
      if !widest >= 0 then
        let c = Option.get st.slots.(!widest) in
        strengthen st !widest (Array.sub c 1 (Array.length c - 1))
    end;
    let continue = ref true in
    while !continue && st.st.sweeps_run < st.cfg.sweeps do
      st.st.sweeps_run <- st.st.sweeps_run + 1;
      let before = st.mutations in
      subsume_pass st;
      propagate_roots st;
      vivify_pass st;
      propagate_roots st;
      bve_pass st;
      propagate_roots st;
      continue := st.mutations > before
    done;
    outcome false
  with Unsat_found -> outcome true

(* {2 Inprocessing solve driver} *)

type solve_result = {
  result : Solver.result;
  model : bool array option;  (* reconstructed over the original variables *)
  sstats : stats;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  reductions : int;
}

let solve ?proof ?(config = default) ?max_conflicts ?on_restart
    (cnf : Dimacs.cnf) =
  (* inner solvers must not replay clauses as Input events: the premises
     (and every simplified replacement) are already in the proof stream *)
  let steps_only =
    Option.map
      (fun sink -> function Proof.Input _ -> () | e -> sink e)
      proof
  in
  let totals = stats_zero () in
  let conflicts = ref 0
  and decisions = ref 0
  and propagations = ref 0
  and restarts = ref 0
  and reductions = ref 0 in
  let finish result model =
    {
      result;
      model;
      sstats = totals;
      conflicts = !conflicts;
      decisions = !decisions;
      propagations = !propagations;
      restarts = !restarts;
      reductions = !reductions;
    }
  in
  let rec round idx current recons budget_left =
    let out = simplify ?proof ~config current in
    stats_add totals out.stats;
    let recons = out.reconstruct :: recons in
    if out.unsat then finish Solver.Unsat None
    else begin
      let s = Solver.create () in
      Solver.set_proof s steps_only;
      (match on_restart with Some f -> Solver.set_on_restart s (Some f) | None -> ());
      Dimacs.load_into s out.cnf;
      let last = idx >= config.inprocess_rounds - 1 in
      let chunk =
        let grow = config.first_chunk * (1 lsl (2 * idx)) in
        match (budget_left, last) with
        | Some b, _ -> Some (if last then b else min b grow)
        | None, true -> None
        | None, false -> Some grow
      in
      let res = Solver.solve ?max_conflicts:chunk s in
      conflicts := !conflicts + Solver.n_conflicts s;
      decisions := !decisions + Solver.n_decisions s;
      propagations := !propagations + Solver.n_propagations s;
      restarts := !restarts + Solver.n_restarts s;
      reductions := !reductions + Solver.n_reductions s;
      (match on_restart with Some f -> f () | None -> ());
      match res with
      | Solver.Sat ->
          let model =
            List.fold_left (fun m r -> r m) (Solver.model s) recons
          in
          finish Solver.Sat (Some model)
      | Solver.Unsat -> finish Solver.Unsat None
      | Solver.Unknown ->
          let budget_left =
            Option.map (fun b -> b - Solver.n_conflicts s) budget_left
          in
          let exhausted =
            match budget_left with Some b -> b <= 0 | None -> false
          in
          if last || exhausted then finish Solver.Unknown None
          else begin
            (* harvest root-implied units for the next simplification
               round; each is RUP by the checker's own root propagation *)
            let units = Solver.root_units s in
            let keep = function
              | Some sink -> List.iter (fun u -> sink (Proof.Step (Proof.Add [| u |]))) units
              | None -> ()
            in
            keep steps_only;
            let current =
              List.map (fun u -> [ u ]) units @ out.cnf.Dimacs.clauses
            in
            round (idx + 1)
              { out.cnf with Dimacs.clauses = current }
              recons budget_left
          end
    end
  in
  round 0 cnf [] max_conflicts
