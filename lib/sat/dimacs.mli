(** DIMACS CNF reading and writing, for interoperability and testing. *)

type cnf = { num_vars : int; clauses : Lit.t list list }

exception Parse_error of string

val parse : string -> cnf
(** Parses DIMACS CNF text.  Raises {!Parse_error} with a diagnostic on
    malformed input: a missing, duplicate or unreadable [p cnf] header, a
    non-integer token, an unterminated clause, a clause before the header,
    or a literal naming a variable beyond the header's count. *)

val print : Format.formatter -> cnf -> unit

val load_into : Solver.t -> cnf -> unit
(** Allocates the variables of [cnf] in the solver (those not already
    present) and adds every clause. *)
