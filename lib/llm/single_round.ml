module Alloy = Specrepair_alloy
module Ast = Alloy.Ast
module Common = Specrepair_repair.Common
module Session = Specrepair_repair.Session
module Telemetry = Specrepair_engine.Telemetry

let tool_name setting =
  "Single-Round_" ^ Prompt.single_setting_to_string setting

(* The Pass hint names the assertions the fix must satisfy, so the model
   anchors on them: it mentally tests candidates against those checks (at a
   small scope it can reason about) and returns the first that satisfies
   them.  The anchoring is double-edged — a candidate can make the named
   checks pass by over-constraining, silently breaking other commands. *)
let pass_anchored_proposal ~session profile rng (task : Task.t) hints =
  let named_checks_pass candidate =
    match Common.env_of_spec candidate with
    | None -> false
    | Some env' ->
        List.for_all
          (fun (c : Ast.command) ->
            match c.cmd_kind with
            | Ast.Check name when List.mem name task.Task.check_names -> (
                let reduced = { c with Ast.cmd_scope = min 2 c.Ast.cmd_scope } in
                match
                  Common.command_behaves ~max_conflicts:5_000 session env'
                    reduced
                with
                | v -> v
                | exception _ -> false)
            | _ -> true)
          env'.Alloy.Typecheck.spec.commands
  in
  let rec go n first =
    if n = 0 || Session.expired session then first
    else
      match Model.propose profile ~rng ~hints Model.no_guidance task with
      | None -> go (n - 1) first
      | Some candidate ->
          let first = match first with None -> Some candidate | s -> s in
          if named_checks_pass candidate then Some candidate
          else go (n - 1) first
  in
  let tries =
    (* the anchor is leaned on harder when it is the only hint *)
    if List.mem Prompt.Loc hints then 2 else 3
  in
  go (min tries profile.Model.self_check_samples) None

let repair ?session ?(profile = Model.gpt4) (task : Task.t) setting =
  let session =
    match session with Some s -> s | None -> Session.for_spec task.faulty
  in
  let telemetry = Session.telemetry session in
  if Session.expired session then
    Common.result ~tool:(tool_name setting) ~repaired:false ~timed_out:true
      task.faulty ~candidates:0 ~iterations:0
  else begin
    Telemetry.llm_round telemetry;
    let rng =
      Rng.of_context ~seed:(Session.seed session)
        [ task.spec_id; "single-round"; Prompt.single_setting_to_string setting ]
    in
    let prompt = Prompt.single task setting in
    let hints = Prompt.hints_of_setting setting in
    let response =
      Session.time session "llm" (fun () ->
          if List.mem Prompt.Pass hints then
            Model.render_response profile ~rng
              (pass_anchored_proposal ~session profile rng task hints)
          else Model.respond profile ~rng Model.no_guidance prompt)
    in
    Telemetry.candidate_evaluated telemetry;
    match Extract.spec_of_response response with
    | Some spec ->
        Common.result ~tool:(tool_name setting) ~repaired:true spec
          ~candidates:1 ~iterations:1
    | None ->
        Common.result ~tool:(tool_name setting) ~repaired:false
          ~timed_out:(Session.timed_out session) task.faulty ~candidates:1
          ~iterations:1
  end
