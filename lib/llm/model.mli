(** The simulated large language model.

    A deterministic, seeded generative model over repair edits standing in
    for GPT-4 (no network access in this reproduction; see DESIGN.md).  It
    reproduces the behavioural properties the study depends on:

    - proposals are drawn from a pattern library (the well-typed mutation
      space) under a softmax whose weights combine per-operator priors,
      per-domain competence, and prompt-hint boosts;
    - Loc / Fix / Pass hints sharpen the distribution around the hinted
      location, operator class, or assertion-related constraints;
    - multi-round guidance (site boosts, blocklists, extra exploration)
      steers later rounds;
    - responses are prose-wrapped text that must be re-parsed, with a small
      malformed-output channel.

    All sampling comes from the caller's {!Rng.t}, so the whole study is
    reproducible. *)

module Alloy = Specrepair_alloy
module Mutation = Specrepair_mutation

type profile = {
  name : string;
  temperature : float;  (** higher = flatter sampling *)
  malformed_rate : float;  (** probability of an unparseable response *)
  compound_rate : float;  (** probability of proposing a two-edit fix *)
  self_check_samples : int;
      (** internal proposals the model can mentally verify per answer; 1
          disables best-of-k self-checking (weak reasoning) *)
  domain_competence : (string * float) list;  (** default 1.0 *)
  pattern_prior : (string * float) list;  (** by mutation-operator name *)
}

val gpt4 : profile
(** The profile used throughout the study. *)

val gpt35 : profile
(** A weaker profile (flatter sampling, more malformed output), matching
    the GPT-3.5 baselines the prior studies compared against. *)

val gemini : profile
(** Panel member with competence concentrated on ARepair's data-structure
    domains, low malformed rate, and a taste for compound/structural edits
    — complements {!llama3}. *)

val llama3 : profile
(** Panel member with competence concentrated on relational/graph domains,
    hot sampling and frequent truncation — complements {!gemini}. *)

val panel : profile list
(** The model panel, in presentation order: [gpt4; gpt35; gemini; llama3].
    Every profile selectable via [--profile] or the serve protocol is
    here. *)

val panel_names : string list

val profile_of_name : string -> profile option
(** Lookup by {!profile.name} in {!panel}. *)

type guidance = {
  site_boost : (Mutation.Location.site * float) list;
  op_boost : (string * float) list;
  blocked : Alloy.Ast.spec list;  (** refuted earlier proposals *)
  exploration : float;  (** added temperature from repeated failure *)
}

val no_guidance : guidance

val propose :
  profile ->
  rng:Rng.t ->
  hints:Prompt.hint list ->
  guidance ->
  Task.t ->
  Alloy.Ast.spec option
(** One sampled candidate repair (a well-typed spec different from the
    faulty one and from every blocked spec), or [None] when the model fails
    to produce one. *)

val respond : profile -> rng:Rng.t -> guidance -> Prompt.t -> string
(** Full response text for a prompt: chatter + fenced candidate spec, or a
    deliberately malformed response on the malformed channel. *)

val render_response :
  profile -> rng:Rng.t -> Alloy.Ast.spec option -> string
(** Response text for an already-chosen proposal ([None] = the model gives
    up); used by the multi-round pipeline, which selects among several
    internal proposals before answering. *)

val rels_of_fmla : string list -> Alloy.Ast.fmla -> string list
(** Relation names mentioned in a formula (with duplicates), used by
    vocabulary-based feedback steering. *)
