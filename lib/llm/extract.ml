module Alloy = Specrepair_alloy

let code_blocks text =
  let lines = String.split_on_char '\n' text in
  let rec scan acc current inside = function
    | [] -> List.rev acc
    | line :: rest ->
        let trimmed = String.trim line in
        let is_fence =
          String.length trimmed >= 3 && String.sub trimmed 0 3 = "```"
        in
        if is_fence then
          if inside then scan (String.concat "\n" (List.rev current) :: acc) [] false rest
          else scan acc [] true rest
        else if inside then scan acc (line :: current) inside rest
        else scan acc current inside rest
  in
  scan [] [] false lines

let paragraph_keywords =
  [ "module"; "sig"; "abstract"; "one sig"; "fact"; "pred"; "assert" ]

let starts_with_keyword line =
  let trimmed = String.trim line in
  List.exists
    (fun kw ->
      String.length trimmed >= String.length kw
      && String.sub trimmed 0 (String.length kw) = kw)
    paragraph_keywords

(* Fallback: take everything from the first line that looks like a
   paragraph opener to the end of the text. *)
let keyword_slice text =
  let lines = String.split_on_char '\n' text in
  let rec drop = function
    | [] -> None
    | line :: rest when starts_with_keyword line ->
        Some (String.concat "\n" (line :: rest))
    | _ :: rest -> drop rest
  in
  drop lines

let try_parse src =
  match Alloy.Parser.parse src with
  | spec -> (
      (* an extracted spec must also type-check to count *)
      match Alloy.Typecheck.check_result spec with
      | Ok _ -> Some spec
      | Error _ -> None)
  | exception Alloy.Diagnostic.Error _ -> None

let spec_of_response text =
  let candidates = code_blocks text in
  let rec first_ok = function
    | [] -> (
        match keyword_slice text with
        | Some src -> try_parse src
        | None -> None)
    | block :: rest -> (
        match try_parse block with Some s -> Some s | None -> first_ok rest)
  in
  first_ok candidates
