module Alloy = Specrepair_alloy
module Ast = Alloy.Ast
module Mutation = Specrepair_mutation
module Location = Mutation.Location

type profile = {
  name : string;
  temperature : float;
  malformed_rate : float;
  compound_rate : float;
  self_check_samples : int;
      (* internal proposals the model can reason through per answer *)
  domain_competence : (string * float) list;
  pattern_prior : (string * float) list;
}

(* Priors reflect how natural each edit family reads to a language model
   trained on code: local operator fixes dominate, whole-expression
   rewrites and added constraints are rarer but possible — that is what
   lets the LLM reach repairs outside the template tools' space. *)
let default_priors =
  [
    ("quant-swap", 3.0);
    ("fmult-swap", 3.0);
    ("cmpop-swap", 3.0);
    ("binop-swap", 3.0);
    ("closure-swap", 2.5);
    ("closure-drop", 2.0);
    ("closure-add", 2.0);
    ("transpose-drop", 1.5);
    ("transpose-add", 1.0);
    ("negation-drop", 2.0);
    ("negation-add", 1.5);
    ("junct-drop", 2.0);
    ("connective-swap", 2.0);
    ("implies-flip", 1.5);
    ("implies-drop-lhs", 1.5);
    ("cmp-operand-swap", 1.0);
    ("card-bump", 2.0);
    ("intcmp-swap", 2.0);
    ("operand-drop", 1.5);
    ("operand-swap", 1.0);
    ("expr-replace", 0.35);
    ("junct-add-and", 0.5);
    ("junct-add-or", 0.4);
  ]

let gpt4 =
  {
    name = "gpt-4";
    temperature = 1.0;
    malformed_rate = 0.04;
    compound_rate = 0.15;
    self_check_samples = 8;
    domain_competence = [];
    pattern_prior = default_priors;
  }

(* A weaker profile in the spirit of the GPT-3.5 baselines of the prior
   studies [33, 34]: flatter sampling, more malformed output, less capacity
   for multi-edit fixes. *)
let gpt35 =
  {
    name = "gpt-3.5";
    temperature = 1.6;
    malformed_rate = 0.10;
    compound_rate = 0.05;
    self_check_samples = 1;
    domain_competence = [];
    pattern_prior = default_priors;
  }

(* Shift a handful of operator priors without touching the rest: the panel
   profiles differ in *which* edit families come naturally, not just in how
   sharply they sample. *)
let reprior overrides priors =
  List.map
    (fun (op, w) ->
      match List.assoc_opt op overrides with
      | Some w' -> (op, w')
      | None -> (op, w))
    priors

(* Panel member in the spirit of the Gemini runs of the multi-LLM
   comparison (arXiv:2404.11050): disciplined output, a taste for
   structural rewrites, and competence concentrated on the data-structure
   half of the corpus (ARepair's trees/lists) at the cost of the Alloy4Fun
   teaching models. *)
let gemini =
  {
    name = "gemini-pro";
    temperature = 1.25;
    malformed_rate = 0.06;
    compound_rate = 0.20;
    self_check_samples = 4;
    domain_competence =
      [
        ("balancedBST", 1.6);
        ("ctree", 1.5);
        ("dll", 1.5);
        ("arr", 1.4);
        ("student", 1.3);
        ("classroom", 0.7);
        ("cv", 0.7);
        ("graphs", 0.8);
        ("trash", 0.8);
      ];
    pattern_prior =
      reprior
        [
          ("expr-replace", 0.9);
          ("junct-add-and", 1.2);
          ("junct-add-or", 0.8);
          ("closure-swap", 3.0);
          ("quant-swap", 2.0);
        ]
        default_priors;
  }

(* Open-weights panel member in the spirit of the Llama baselines: hot
   sampling, frequent truncation, shallow self-checking, but unusually
   comfortable with relational/graph vocabulary — the complement of
   [gemini]'s competence map, so the panel's union covers defects neither
   member reaches alone. *)
let llama3 =
  {
    name = "llama-3";
    temperature = 1.9;
    malformed_rate = 0.14;
    compound_rate = 0.08;
    self_check_samples = 2;
    domain_competence =
      [
        ("graphs", 1.6);
        ("lts", 1.5);
        ("fsm", 1.5);
        ("production", 1.3);
        ("farmer", 1.3);
        ("balancedBST", 0.7);
        ("ctree", 0.7);
        ("addr", 0.8);
        ("grade", 0.8);
      ];
    pattern_prior =
      reprior
        [
          ("closure-swap", 3.5);
          ("closure-drop", 3.0);
          ("closure-add", 3.0);
          ("transpose-drop", 2.5);
          ("negation-drop", 2.5);
          ("expr-replace", 0.15);
          ("binop-swap", 3.5);
        ]
        default_priors;
  }

let panel = [ gpt4; gpt35; gemini; llama3 ]
let panel_names = List.map (fun p -> p.name) panel
let profile_of_name n = List.find_opt (fun p -> p.name = n) panel

type guidance = {
  site_boost : (Location.site * float) list;
  op_boost : (string * float) list;
  blocked : Alloy.Ast.spec list;
  exploration : float;
}

let no_guidance =
  { site_boost = []; op_boost = []; blocked = []; exploration = 0. }

let lookup assoc key default =
  Option.value ~default (List.assoc_opt key assoc)

(* Relation names mentioned in a formula, for the Pass hint: constraints
   sharing vocabulary with the checked assertion look relevant. *)
let rec rels_of_expr acc = function
  | Ast.Rel n -> n :: acc
  | Ast.Univ | Ast.Iden | Ast.None_ -> acc
  | Ast.Unop (_, e) -> rels_of_expr acc e
  | Ast.Binop (_, a, b) -> rels_of_expr (rels_of_expr acc a) b
  | Ast.Ite (c, a, b) -> rels_of_expr (rels_of_expr (rels_of_fmla acc c) a) b
  | Ast.Compr (decls, body) ->
      rels_of_fmla
        (List.fold_left (fun acc (_, e) -> rels_of_expr acc e) acc decls)
        body

and rels_of_fmla acc = function
  | Ast.True | Ast.False -> acc
  | Ast.Cmp (_, a, b) -> rels_of_expr (rels_of_expr acc a) b
  | Ast.Multf (_, e) | Ast.Card (_, e, _) -> rels_of_expr acc e
  | Ast.Not f -> rels_of_fmla acc f
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Implies (a, b) | Ast.Iff (a, b) ->
      rels_of_fmla (rels_of_fmla acc a) b
  | Ast.Quant (_, decls, body) ->
      rels_of_fmla
        (List.fold_left (fun acc (_, e) -> rels_of_expr acc e) acc decls)
        body
  | Ast.Call (_, args) -> List.fold_left rels_of_expr acc args
  | Ast.Let (_, value, body) -> rels_of_fmla (rels_of_expr acc value) body

let assertion_vocabulary (task : Task.t) =
  List.concat_map
    (fun name ->
      match Ast.find_assert task.faulty name with
      | Some a -> rels_of_fmla [] a.assert_body
      | None -> [])
    task.check_names
  |> List.sort_uniq String.compare

let site_vocabulary spec site =
  match Location.body spec site with
  | body -> List.sort_uniq String.compare (rels_of_fmla [] body)
  | exception Not_found -> []

let weight profile ~hints ~guidance ~assertion_vocab ~competence spec
    (m : Mutation.Mutate.t) =
  let prior = lookup profile.pattern_prior m.op 1.0 in
  let w = ref (prior *. competence) in
  let size_penalty =
    1. /. sqrt (float_of_int (Location.node_size m.replacement))
  in
  w := !w *. size_penalty;
  (* guidance *)
  (match List.assoc_opt m.site guidance.site_boost with
  | Some b -> w := !w *. b
  | None -> ());
  (match List.assoc_opt m.op guidance.op_boost with
  | Some b -> w := !w *. b
  | None -> ());
  (* Pass hint: constraints sharing vocabulary with checked assertions get
     the model's attention, and strengthening edits look attractive — the
     surest way to make a named check pass is to constrain harder, which is
     exactly how Pass-anchored repairs overfit. *)
  if List.mem Prompt.Pass hints && assertion_vocab <> [] then begin
    let site_vocab = site_vocabulary spec m.site in
    let shares = List.exists (fun r -> List.mem r assertion_vocab) site_vocab in
    (* without a location hint, the assertion anchor is all the model has *)
    let boost = if List.mem Prompt.Loc hints then 4.0 else 8.0 in
    w := !w *. (if shares then boost else 0.4);
    if m.op = "junct-add-and" || m.op = "negation-add" then w := !w *. 5.0
  end;
  !w

let propose profile ~rng ~hints guidance (task : Task.t) =
  match Alloy.Typecheck.check_result task.faulty with
  | Error _ -> None
  | Ok env ->
      let spec = task.faulty in
      let space = Mutation.Mutate.all_mutations env spec ~with_pool:true () in
      if space = [] then None
      else begin
        let assertion_vocab = assertion_vocabulary task in
        let competence = lookup profile.domain_competence task.domain 1.0 in
        let base_weights =
          List.map
            (fun (m : Mutation.Mutate.t) ->
              let w =
                weight profile ~hints ~guidance ~assertion_vocab ~competence
                  spec m
              in
              (* Loc hint: strong focus on the named sites *)
              let w =
                if List.mem Prompt.Loc hints && task.fault_sites <> [] then
                  if List.mem m.site task.fault_sites then
                    (* the hint is line-level: the exact node gets an extra
                       focus factor *)
                    if List.mem (m.site, m.path) task.fault_paths then
                      w *. 24.0
                    else w *. 8.0
                  else w *. 0.15
                else w
              in
              (* Fix hint: the described edit family *)
              let w =
                if List.mem Prompt.Fix hints && task.fault_classes <> [] then
                  if List.mem m.op task.fault_classes then w *. 1.25
                  else w *. 0.55
                else w
              in
              (m, w))
            space
        in
        (* hints sharpen the model's focus, not just its weights *)
        let hint_sharpening = if hints = [] then 1.0 else 0.4 in
        let temp =
          ((profile.temperature *. hint_sharpening) +. guidance.exploration)
        in
        let tempered =
          List.map (fun (m, w) -> (m, w ** (1. /. max 0.1 temp))) base_weights
        in
        let sample_one () = Rng.choose_weighted rng tempered in
        let apply_ok spec' =
          spec' <> spec
          && (not (List.exists (Ast.equal_spec spec') guidance.blocked))
          && Alloy.Typecheck.check_result spec' |> Result.is_ok
        in
        let attempt () =
          match sample_one () with
          | None -> None
          | Some m1 -> (
              let compound = Rng.float rng < profile.compound_rate in
              let spec1 =
                match Mutation.Mutate.apply spec m1 with
                | s -> Some s
                | exception _ -> None
              in
              match spec1 with
              | None -> None
              | Some spec1 ->
                  if not compound then if apply_ok spec1 then Some spec1 else None
                  else
                    (* second edit at a different location *)
                    let spec2 =
                      match sample_one () with
                      | Some m2
                        when (m2.site, m2.path) <> (m1.Mutation.Mutate.site, m1.path)
                        -> (
                          match Mutation.Mutate.apply spec1 m2 with
                          | s -> Some s
                          | exception _ -> None)
                      | _ -> None
                    in
                    let candidate = Option.value ~default:spec1 spec2 in
                    if apply_ok candidate then Some candidate
                    else if apply_ok spec1 then Some spec1
                    else None)
        in
        let rec retry n = if n = 0 then None else
            match attempt () with Some s -> Some s | None -> retry (n - 1)
        in
        retry 12
      end

let chatter_openings =
  [
    "Looking at this specification, the constraint appears to be incorrect.";
    "The issue lies in one of the declared constraints. Here is the corrected specification:";
    "I analyzed the model and found the fault.";
    "After examining the constraints, here is my repaired version.";
  ]

let render_response profile ~rng proposal =
  let opening =
    List.nth chatter_openings (Rng.int rng (List.length chatter_openings))
  in
  match proposal with
  | None ->
      opening
      ^ "\n\nUnfortunately I could not determine a concrete fix for this \
         specification. Could you provide more information about the \
         intended behaviour?"
  | Some spec ->
      let body = Alloy.Pretty.spec_to_string spec in
      let body =
        if Rng.float rng < profile.malformed_rate then
          (* malformed channel: the response is cut off mid-specification *)
          String.sub body 0 (String.length body * 3 / 5)
        else body
      in
      Printf.sprintf "%s\n\n```alloy\n%s\n```\n\nThis should satisfy the intended properties."
        opening body

let respond profile ~rng guidance (p : Prompt.t) =
  let proposal = propose profile ~rng ~hints:p.hints guidance p.task in
  render_response profile ~rng proposal
