(** The Multi-Round LLM repair pipeline (Alhanahnah et al. [34]): a
    dual-agent loop in which the Repair Agent proposes a fix, the analyzer
    evaluates it, and — depending on the feedback setting — the next round
    is steered by nothing but a binary verdict (No-feedback), a templated
    summary of the analyzer report (Generic), or a Prompt Agent that turns
    the report and the proposed spec into targeted advice (Auto). *)

module Alloy = Specrepair_alloy
module Common = Specrepair_repair.Common
module Session = Specrepair_repair.Session

type feedback = No_feedback | Generic | Auto

val feedback_to_string : feedback -> string
val all_feedbacks : feedback list

val tool_name : feedback -> string
(** "Multi-Round_None" etc., as in the paper's tables. *)

val repair :
  ?session:Session.t ->
  ?profile:Model.profile ->
  ?rounds:int ->
  ?hill_climb:bool ->
  ?mental_check:bool ->
  ?trace:(round:int -> prompt:Prompt.t -> response:string -> unit) ->
  Task.t ->
  feedback ->
  Common.result
(** [repaired] is the analyzer's confirmation that every command of the
    proposed spec behaves (checks pass, runs are satisfiable).  Default 6
    rounds.  [hill_climb] (default true) lets the dialogue carry the best
    proposal so far as the next round's base; [mental_check] (default true)
    enables the Repair Agent's internal scope-2 self-verification.  Both
    exist for the ablation benchmarks.  [trace] observes every round's
    rendered prompt (including the analyzer feedback text) and the model's
    raw response.  Without [?session] a default one is built from the
    faulty spec ({!Session.for_spec}); the session provides the RNG seed,
    the analyzer conflict budget, the shared incremental oracle, and a
    deadline that aborts the dialogue between rounds. *)
