module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast
module Common = Specrepair_repair.Common
module Session = Specrepair_repair.Session
module Telemetry = Specrepair_engine.Telemetry
module Faultloc = Specrepair_faultloc.Faultloc
module Location = Specrepair_mutation.Location

type feedback = No_feedback | Generic | Auto

let feedback_to_string = function
  | No_feedback -> "None"
  | Generic -> "Generic"
  | Auto -> "Auto"

let all_feedbacks = [ No_feedback; Generic; Auto ]

let tool_name fb = "Multi-Round_" ^ feedback_to_string fb

(* Templated analyzer report: which checks have counterexamples, which runs
   are unsatisfiable. *)
let generic_report ~session (env : Alloy.Typecheck.env) failing =
  let lines =
    List.map
      (fun (_, name, cex) ->
        Format.asprintf
          "check %s fails; counterexample:@.%a" name Alloy.Instance.pp cex)
      failing
  in
  let runs =
    List.filter_map
      (fun (c : Ast.command) ->
        match c.cmd_kind with
        | Ast.Run_pred p -> (
            match Common.command_verdict session env c with
            | `Unsat -> Some (Printf.sprintf "run %s is unsatisfiable" p)
            | `Sat | `Unknown -> None)
        | _ -> None)
      env.spec.commands
  in
  String.concat "\n" (lines @ runs)

(* Vocabulary-based steering for the Generic setting: constraints that share
   relations with a failing assertion get boosted. *)
let generic_guidance (task : Task.t) failing guidance =
  let failing_rels =
    List.concat_map
      (fun (_, name, _) ->
        match Ast.find_assert task.faulty name with
        | Some a -> Model.rels_of_fmla [] a.assert_body
        | None -> [])
      failing
    |> List.sort_uniq String.compare
  in
  let boosts =
    List.filter_map
      (fun site ->
        match Location.body task.faulty site with
        | body ->
            let site_rels =
              List.sort_uniq String.compare (Model.rels_of_fmla [] body)
            in
            if List.exists (fun r -> List.mem r failing_rels) site_rels then
              Some (site, 3.0)
            else None
        | exception Not_found -> None)
      (Location.sites task.faulty)
  in
  { guidance with Model.site_boost = boosts }

(* The Prompt Agent of the Auto setting: runs FLACK-style reasoning over
   the analyzer's counterexamples and witnesses, then tells the Repair
   Agent where to look — a sharp boost, but it can lock onto the wrong
   place when localization is ambiguous. *)
let auto_guidance ~session (env : Alloy.Typecheck.env) (task : Task.t) failing
    rng guidance =
  let ranked =
    match failing with
    | (c, name, _) :: _ -> (
        match Ast.find_assert env.spec name with
        | Some _ ->
            let scope = Solver.Bounds.scope_of_command c in
            let cexs =
              Common.counterexamples_for ~limit:3 session env name scope
            in
            let wits = Common.witnesses_for ~limit:3 session env name scope in
            Faultloc.rank_by_instances env
              ~goal_of:(Faultloc.goal_of_assert name)
              ~counterexamples:cexs ~witnesses:wits ()
        | None -> [])
    | [] -> []
  in
  let top = List.filteri (fun i _ -> i < 3) ranked in
  match top with
  | [] -> generic_guidance task failing guidance
  | _ ->
      (* the agent's advice is sharp but fallible: with some probability it
         locks onto an arbitrary constraint instead of a ranked one, and
         the strong boost then actively misleads the Repair Agent *)
      let chosen =
        if Rng.float rng < 0.45 then begin
          let sites = Location.sites task.faulty in
          match sites with
          | [] -> None
          | _ -> Some (List.nth sites (Rng.int rng (List.length sites)))
        end
        else
          Rng.choose_weighted rng
            (List.map (fun (l : Faultloc.location) -> (l.site, 0.5 +. l.score)) top)
      in
      let boosts =
        match chosen with Some site -> [ (site, 8.0) ] | None -> []
      in
      { guidance with Model.site_boost = boosts }

(* The Repair Agent's "mental check": before answering, the model reasons
   about its candidate against the commands visible in the prompt — a
   bounded self-verification at a reduced scope (small concrete scenarios a
   capable model can think through).  Only the analyzer's full-scope run,
   outside the model, is authoritative. *)
let mental_scope = 2

let mentally_consistent ~session (env' : Alloy.Typecheck.env) =
  List.for_all
    (fun (c : Ast.command) ->
      let reduced = { c with Ast.cmd_scope = min mental_scope c.Ast.cmd_scope } in
      match Common.command_behaves ~max_conflicts:5_000 session env' reduced with
      | v -> v
      | exception _ -> false)
    env'.spec.commands

(* Best-of-k internal sampling with the mental check; falls back to the
   first proposal when none self-verifies.  [mental_check:false] (ablation)
   returns the first proposal unfiltered. *)
let internal_proposal ~session ~mental_check profile rng guidance
    (task : Task.t) =
  let k = if mental_check then profile.Model.self_check_samples else 1 in
  let rec go n first =
    if n = 0 then first
    else
      match Model.propose profile ~rng ~hints:[] guidance task with
      | None -> go (n - 1) first
      | Some candidate -> (
          if not mental_check then Some candidate
          else
            let first = match first with None -> Some candidate | s -> s in
            match Common.env_of_spec candidate with
            | Some env' when mentally_consistent ~session env' -> Some candidate
            | _ -> go (n - 1) first)
  in
  go k None

let repair ?session ?(profile = Model.gpt4) ?(rounds = 6) ?(hill_climb = true)
    ?(mental_check = true)
    ?(trace = fun ~round:_ ~prompt:_ ~response:_ -> ()) (task : Task.t) fb =
  (* one incremental session for the dialogue: candidate specs recur across
     rounds (the model revisits its own proposals), and the mental check's
     reduced-scope commands get their own shared context per scope.
     LLM-written candidates may redeclare signatures; the oracle detects
     that and falls back to fresh solves for those, transparently. *)
  let session =
    match session with Some s -> s | None -> Session.for_spec task.faulty
  in
  let telemetry = Session.telemetry session in
  let max_conflicts = (Session.budget session).Session.max_conflicts in
  let rng =
    Rng.of_context ~seed:(Session.seed session)
      [ task.spec_id; "multi-round"; feedback_to_string fb ]
  in
  let total_commands = List.length task.faulty.Ast.commands in
  (* The dialogue hill-climbs: each round's proposal edits the best spec so
     far (the conversation carries the current working version), so
     compound faults can be repaired one edit at a time. *)
  let rec loop round guidance base base_behaved feedback_text =
    if round > rounds then
      Common.result ~tool:(tool_name fb) ~repaired:false
        ~timed_out:(Session.timed_out session) base ~candidates:rounds
        ~iterations:rounds
    else if Session.expired session then
      (* cooperative deadline: abort between rounds with the best base *)
      Common.result ~tool:(tool_name fb) ~repaired:false ~timed_out:true base
        ~candidates:(round - 1) ~iterations:(round - 1)
    else begin
      Telemetry.llm_round telemetry;
      let task_r = { task with Task.faulty = base } in
      let prompt =
        { Prompt.task = task_r; hints = []; round; feedback = feedback_text }
      in
      let proposal =
        Session.time session "llm" (fun () ->
            internal_proposal ~session ~mental_check profile rng guidance
              task_r)
      in
      let response = Model.render_response profile ~rng proposal in
      trace ~round ~prompt ~response;
      match Extract.spec_of_response response with
      | None ->
          (* unparseable round: the driver reports it and retries *)
          loop (round + 1)
            { guidance with Model.exploration = guidance.Model.exploration +. 0.1 }
            base base_behaved
            (Some "Your previous answer did not contain a complete, parseable specification.")
      | Some candidate -> (
          Telemetry.candidate_evaluated telemetry;
          match Common.env_of_spec candidate with
          | None ->
              loop (round + 1) guidance base base_behaved
                (Some "Your previous specification did not type-check.")
          | Some env' ->
              let behaved =
                Common.behaving_commands ~max_conflicts session env'
              in
              if behaved = total_commands && total_commands > 0 then
                Common.result ~tool:(tool_name fb) ~repaired:true candidate
                  ~candidates:round ~iterations:round
              else begin
                let failing =
                  Common.failing_checks ~max_conflicts session env'
                in
                let blocked = candidate :: guidance.Model.blocked in
                let base, base_behaved =
                  if hill_climb && behaved > base_behaved then
                    (candidate, behaved)
                  else (base, base_behaved)
                in
                let guidance', text =
                  match fb with
                  | No_feedback ->
                      ( {
                          guidance with
                          Model.blocked;
                          exploration = guidance.Model.exploration +. 0.05;
                        },
                        Some "The specification is still not correct." )
                  | Generic ->
                      ( {
                          (generic_guidance task failing guidance) with
                          Model.blocked;
                        },
                        Some (generic_report ~session env' failing) )
                  | Auto ->
                      ( {
                          (auto_guidance ~session env' task failing rng
                             guidance)
                          with
                          Model.blocked;
                        },
                        Some
                          "The Prompt Agent localized the fault; focus on the \
                           indicated constraint." )
                in
                loop (round + 1) guidance' base base_behaved text
              end)
    end
  in
  let initial_behaved =
    match Common.env_of_spec task.faulty with
    | Some env -> Common.behaving_commands ~max_conflicts session env
    | None -> 0
  in
  loop 1 Model.no_guidance task.faulty initial_behaved None
