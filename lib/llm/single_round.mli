(** The Single-Round LLM repair pipeline (Hasan et al. [33]): one zero-shot
    prompt per task, five hint settings, no iteration and no verification —
    whatever the model returns (after extraction) is the proposed repair. *)

module Alloy = Specrepair_alloy
module Common = Specrepair_repair.Common
module Session = Specrepair_repair.Session

val tool_name : Prompt.single_setting -> string
(** "Single-Round_Loc+Fix" etc., as in the paper's tables. *)

val repair :
  ?session:Session.t ->
  ?profile:Model.profile ->
  Task.t ->
  Prompt.single_setting ->
  Common.result
(** [repaired] reports only that a well-typed spec was extracted from the
    response; actual repair success is judged by the REP metric against the
    ground truth, as in the study.  Without [?session] a default one is
    built from the faulty spec ({!Session.for_spec}); the session provides
    the RNG seed, backs the Pass-hint settings' mental check with its
    incremental oracle, and its deadline short-circuits the call. *)
