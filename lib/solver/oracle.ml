open Specrepair_sat
module Alloy = Specrepair_alloy
module Ast = Alloy.Ast

type verdict = Analyzer.verdict

type stats = {
  verdict_hits : int;
  verdict_misses : int;
  instance_hits : int;
  instance_misses : int;
  fallback_queries : int;
  formulas_translated : int;
  formulas_reused : int;
  contexts : int;
  certified : int;
  certificate_failures : int;
}

type counters = {
  mutable c_verdict_hits : int;
  mutable c_verdict_misses : int;
  mutable c_instance_hits : int;
  mutable c_instance_misses : int;
  mutable c_fallback_queries : int;
  mutable c_formulas_translated : int;
  mutable c_formulas_reused : int;
  mutable c_certified : int;
  mutable c_cert_failures : int;
}

type sat_stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  reductions : int;
  subsumed : int;
  strengthened : int;
  vivified : int;
  eliminated : int;
}

(* Counters of solving work done outside the long-lived contexts: the
   simplified fresh solves report through {!Analyzer}'s [?stats] callback
   and accumulate here (context solvers keep their own lifetime counters
   and are read directly in {!sat_stats}). *)
type fresh_counters = {
  mutable f_conflicts : int;
  mutable f_decisions : int;
  mutable f_propagations : int;
  mutable f_restarts : int;
  mutable f_reductions : int;
  f_sstats : Simplify.stats;
}

(* The certification state of one long-lived context: an independent DRUP
   checker mirroring the solver's clause stream step by step.  A failed
   step is latched — once the stream has a gap, no later UNSAT from this
   context can be trusted. *)
type cert = { checker : Drat.t; mutable cert_error : string option }

(* One shared solver per command scope: base bounds, Tseitin state, and the
   activation-literal memo for every formula ever guarded in it. *)
type context = {
  solver : Solver.t;
  bounds : Bounds.t;
  ts : Tseitin.t;
  acts : (string, Lit.t) Hashtbl.t;
  cert : cert option;
}

type t = {
  base : Alloy.Typecheck.env;
  certify : bool;
  simplify : bool;
  portfolio : int;
  on_certify : (bool -> unit) option;
  contexts : (string, context) Hashtbl.t;
  verdicts : (string, verdict) Hashtbl.t;
  outcomes : (string, Analyzer.outcome) Hashtbl.t;
  instances : (string, Alloy.Instance.t list) Hashtbl.t;
  counters : counters;
  fresh : fresh_counters;
}

let create ?(certify = false) ?(simplify = false) ?(portfolio = 1) ?on_certify
    base =
  {
    base;
    certify;
    simplify;
    portfolio;
    on_certify;
    fresh =
      {
        f_conflicts = 0;
        f_decisions = 0;
        f_propagations = 0;
        f_restarts = 0;
        f_reductions = 0;
        f_sstats = Simplify.stats_zero ();
      };
    contexts = Hashtbl.create 4;
    verdicts = Hashtbl.create 512;
    outcomes = Hashtbl.create 64;
    instances = Hashtbl.create 64;
    counters =
      {
        c_verdict_hits = 0;
        c_verdict_misses = 0;
        c_instance_hits = 0;
        c_instance_misses = 0;
        c_fallback_queries = 0;
        c_formulas_translated = 0;
        c_formulas_reused = 0;
        c_certified = 0;
        c_cert_failures = 0;
      };
  }

let note_certified t ok =
  if ok then t.counters.c_certified <- t.counters.c_certified + 1
  else t.counters.c_cert_failures <- t.counters.c_cert_failures + 1;
  match t.on_certify with Some f -> f ok | None -> ()

let base t = t.base

let compatible t (env : Alloy.Typecheck.env) =
  env.spec.sigs = t.base.Alloy.Typecheck.spec.sigs

(* {2 Digest keys}

   All caches are structural: keys are MD5 digests of the deterministic
   pretty-printer's output, so physically distinct but syntactically equal
   candidates (the norm for generate-and-validate repair) deduplicate. *)

let scope_key (scope : Bounds.scope) =
  let overrides =
    List.sort compare scope.overrides
    |> List.map (fun (n, k) -> Printf.sprintf "%s=%d" n k)
  in
  Printf.sprintf "%d|%s" scope.default (String.concat "," overrides)

let spec_digest (spec : Ast.spec) =
  Digest.to_hex (Digest.string (Alloy.Pretty.spec_to_string spec))

(* Translation of a formula additionally depends on the candidate's
   predicate and function declarations (calls are inlined, function
   applications are grounded), so activation memo keys carry a digest of
   those declaration sections. *)
let decls_digest (spec : Ast.spec) =
  Digest.to_hex
    (Digest.string
       (Alloy.Pretty.spec_to_string
          { Ast.empty_spec with preds = spec.preds; funs = spec.funs }))

let fmla_key spec f =
  Digest.to_hex (Digest.string (Alloy.Pretty.fmla_to_string f))
  ^ "#" ^ decls_digest spec

let command_key (c : Ast.command) =
  let kind =
    match c.cmd_kind with
    | Ast.Run_pred n -> "run-pred:" ^ n
    | Ast.Check n -> "check:" ^ n
    | Ast.Run_fmla f -> "run-fmla:" ^ Alloy.Pretty.fmla_to_string f
  in
  Printf.sprintf "%s@%s" kind (scope_key (Bounds.scope_of_command c))

let budget_key = function None -> "-" | Some b -> string_of_int b

let verdict_cache_key ?max_conflicts env c =
  Printf.sprintf "%s|%s|%s"
    (spec_digest env.Alloy.Typecheck.spec)
    (command_key c) (budget_key max_conflicts)

(* {2 Contexts and activation literals} *)

let context_for t scope =
  let key = scope_key scope in
  match Hashtbl.find_opt t.contexts key with
  | Some ctx -> ctx
  | None ->
      let solver = Solver.create () in
      let cert =
        if not t.certify then None
        else begin
          (* mirror the solver's stream into an incremental checker; the
             sink must be installed before [Bounds.create], which asserts
             clauses at construction time *)
          let cert = { checker = Drat.create (); cert_error = None } in
          Solver.set_proof solver
            (Some
               (function
               | Proof.Input c -> Drat.add_premise cert.checker c
               | Proof.Step step -> (
                   match Drat.apply cert.checker step with
                   | Ok () -> ()
                   | Error e ->
                       if cert.cert_error = None then cert.cert_error <- Some e)));
          Some cert
        end
      in
      let bounds = Bounds.create solver t.base scope in
      let ts = Tseitin.create solver in
      (* the immutable base: implicit constraints and scope caps, asserted
         unguarded exactly once per context *)
      Tseitin.assert_formula ts (Translate.implicit_fmla bounds);
      let ctx = { solver; bounds; ts; acts = Hashtbl.create 256; cert } in
      Hashtbl.add t.contexts key ctx;
      ctx

(* The activation literal of [f] in [ctx]: a fresh literal [act] with
   clauses enforcing [act => f], memoized structurally.  Solving under the
   assumption [act] then enables exactly this formula; leaving [act]
   unassumed leaves the guarded clauses inert (the solver may satisfy them
   vacuously by setting [act] false). *)
let activation t ctx (env : Alloy.Typecheck.env) key (f : Ast.fmla) =
  match Hashtbl.find_opt ctx.acts key with
  | Some act ->
      t.counters.c_formulas_reused <- t.counters.c_formulas_reused + 1;
      act
  | None ->
      t.counters.c_formulas_translated <- t.counters.c_formulas_translated + 1;
      let bounds = Bounds.with_env ctx.bounds env in
      let fm = Translate.fmla bounds [] f in
      let act = Lit.pos (Solver.new_var ctx.solver) in
      if Formula.is_true fm then ()
      else if Formula.is_false fm then
        Solver.add_clause ctx.solver [ Lit.negate act ]
      else begin
        let lf = Tseitin.lit_of ctx.ts fm in
        Solver.add_clause ctx.solver [ Lit.negate act; lf ]
      end;
      Hashtbl.add ctx.acts key act;
      act

(* Goal formula of a command, in the candidate env.  [None] delegates to the
   plain analyzer (which raises the canonical error for unknown names). *)
let goal_of (env : Alloy.Typecheck.env) (c : Ast.command) =
  match c.cmd_kind with
  | Ast.Run_fmla f -> Some f
  | Ast.Run_pred name -> (
      match Ast.find_pred env.spec name with
      | Some p -> (
          match p.pred_params with
          | [] -> Some p.pred_body
          | params -> Some (Ast.Quant (Ast.Qsome, params, p.pred_body)))
      | None -> None)
  | Ast.Check name -> (
      match Ast.find_assert env.spec name with
      | Some a -> Some (Ast.Not a.assert_body)
      | None -> None)

let outcome_tag = Analyzer.outcome_verdict

(* Fresh (non-incremental) solve, proof-checked when certifying: covers the
   sig-incompatible fallback and instance-producing queries, so an UNSAT
   answer is certified no matter which path served it.

   [simplify]/[portfolio] are only switched on for verdict-only queries:
   instance-producing solves stay on the plain analyzer path so the models
   a session observes are bit-identical whatever the session's solving
   options (verdicts are solver-path-independent; first models are not). *)
let record_fresh t (r : Simplify.solve_result) =
  let f = t.fresh in
  f.f_conflicts <- f.f_conflicts + r.Simplify.conflicts;
  f.f_decisions <- f.f_decisions + r.Simplify.decisions;
  f.f_propagations <- f.f_propagations + r.Simplify.propagations;
  f.f_restarts <- f.f_restarts + r.Simplify.restarts;
  f.f_reductions <- f.f_reductions + r.Simplify.reductions;
  Simplify.stats_add f.f_sstats r.Simplify.sstats

let analyzer_run ?simplify ?portfolio ?max_conflicts t env c =
  let stats = record_fresh t in
  if not t.certify then
    Analyzer.run_command ?simplify ?portfolio ~stats ?max_conflicts env c
  else begin
    let r = Proof.recorder () in
    let o =
      Analyzer.run_command ~proof:(Proof.recorder_sink r) ?simplify ?portfolio
        ~certify:true ~stats ?max_conflicts env c
    in
    (match o with
    | Analyzer.Unsat ->
        note_certified t
          (match
             Drat.check ~premises:(Proof.inputs r)
               (List.to_seq (Proof.steps r))
           with
          | Ok () -> true
          | Error _ -> false)
    | Analyzer.Sat _ | Analyzer.Unknown -> ());
    o
  end

(* {2 Verdict queries (incremental)} *)

let solve_incremental ?max_conflicts t (env : Alloy.Typecheck.env) c goal =
  let scope = Bounds.scope_of_command c in
  let ctx = context_for t scope in
  let dd = decls_digest env.spec in
  let fact_acts =
    List.map
      (fun (fact : Ast.fact_decl) ->
        let key =
          "fact:"
          ^ Digest.to_hex
              (Digest.string (Alloy.Pretty.fmla_to_string fact.fact_body))
          ^ "#" ^ dd
        in
        activation t ctx env key fact.fact_body)
      env.spec.facts
  in
  let goal_act = activation t ctx env ("goal:" ^ fmla_key env.spec goal) goal in
  let assumptions = fact_acts @ [ goal_act ] in
  match Solver.solve ~assumptions ?max_conflicts ctx.solver with
  | Solver.Sat -> `Sat
  | Solver.Unsat ->
      (match ctx.cert with
      | None -> ()
      | Some cert ->
          (* every proof step was already RUP-checked as it streamed in;
             what remains is that the clause store actually refutes this
             query's assumptions *)
          note_certified t
            (cert.cert_error = None && Drat.refutes cert.checker assumptions));
      `Unsat
  | Solver.Unknown -> `Unknown

let command_verdict ?max_conflicts t (env : Alloy.Typecheck.env)
    (c : Ast.command) =
  let key = verdict_cache_key ?max_conflicts env c in
  match Hashtbl.find_opt t.verdicts key with
  | Some v ->
      t.counters.c_verdict_hits <- t.counters.c_verdict_hits + 1;
      v
  | None ->
      let fresh () =
        t.counters.c_fallback_queries <- t.counters.c_fallback_queries + 1;
        outcome_tag
          (analyzer_run ~simplify:t.simplify ~portfolio:t.portfolio
             ?max_conflicts t env c)
      in
      let v =
        if not (compatible t env) then fresh ()
        else
          match goal_of env c with
          | Some goal ->
              t.counters.c_verdict_misses <- t.counters.c_verdict_misses + 1;
              solve_incremental ?max_conflicts t env c goal
          | None ->
              (* unknown predicate/assertion: the analyzer raises the
                 canonical Invalid_argument for us *)
              fresh ()
      in
      Hashtbl.add t.verdicts key v;
      v

(* {2 Instance queries (fresh, memoized)} *)

let run_command ?max_conflicts t (env : Alloy.Typecheck.env) (c : Ast.command)
    =
  let key = "outcome|" ^ verdict_cache_key ?max_conflicts env c in
  match Hashtbl.find_opt t.outcomes key with
  | Some o ->
      t.counters.c_instance_hits <- t.counters.c_instance_hits + 1;
      o
  | None ->
      t.counters.c_instance_misses <- t.counters.c_instance_misses + 1;
      let o = analyzer_run ?max_conflicts t env c in
      Hashtbl.add t.outcomes key o;
      (* a fresh outcome also answers future verdict-only queries *)
      let vkey = verdict_cache_key ?max_conflicts env c in
      if not (Hashtbl.mem t.verdicts vkey) then
        Hashtbl.add t.verdicts vkey (outcome_tag o);
      o

let enumerate ?(limit = 10) ?max_conflicts t (env : Alloy.Typecheck.env) scope
    f =
  let key =
    Printf.sprintf "enum|%s|%s|%s|%d|%s"
      (spec_digest env.Alloy.Typecheck.spec)
      (fmla_key env.Alloy.Typecheck.spec f)
      (scope_key scope) limit (budget_key max_conflicts)
  in
  match Hashtbl.find_opt t.instances key with
  | Some insts ->
      t.counters.c_instance_hits <- t.counters.c_instance_hits + 1;
      insts
  | None ->
      t.counters.c_instance_misses <- t.counters.c_instance_misses + 1;
      let insts = Analyzer.enumerate ~limit ?max_conflicts env scope f in
      Hashtbl.add t.instances key insts;
      insts

(* {2 Statistics} *)

let sat_stats t =
  let f = t.fresh in
  let base =
    {
      conflicts = f.f_conflicts;
      decisions = f.f_decisions;
      propagations = f.f_propagations;
      restarts = f.f_restarts;
      reductions = f.f_reductions;
      subsumed = f.f_sstats.Simplify.subsumed;
      strengthened = f.f_sstats.Simplify.strengthened;
      vivified = f.f_sstats.Simplify.vivified;
      eliminated = f.f_sstats.Simplify.eliminated;
    }
  in
  Hashtbl.fold
    (fun _ ctx acc ->
      {
        acc with
        conflicts = acc.conflicts + Solver.n_conflicts ctx.solver;
        decisions = acc.decisions + Solver.n_decisions ctx.solver;
        propagations = acc.propagations + Solver.n_propagations ctx.solver;
        restarts = acc.restarts + Solver.n_restarts ctx.solver;
        reductions = acc.reductions + Solver.n_reductions ctx.solver;
      })
    t.contexts base

let stats t =
  let c = t.counters in
  {
    verdict_hits = c.c_verdict_hits;
    verdict_misses = c.c_verdict_misses;
    instance_hits = c.c_instance_hits;
    instance_misses = c.c_instance_misses;
    fallback_queries = c.c_fallback_queries;
    formulas_translated = c.c_formulas_translated;
    formulas_reused = c.c_formulas_reused;
    contexts = Hashtbl.length t.contexts;
    certified = c.c_certified;
    certificate_failures = c.c_cert_failures;
  }

let reset_stats t =
  let c = t.counters in
  c.c_verdict_hits <- 0;
  c.c_verdict_misses <- 0;
  c.c_instance_hits <- 0;
  c.c_instance_misses <- 0;
  c.c_fallback_queries <- 0;
  c.c_formulas_translated <- 0;
  c.c_formulas_reused <- 0;
  c.c_certified <- 0;
  c.c_cert_failures <- 0

let pp_stats fmt t =
  let s = stats t in
  Format.fprintf fmt
    "verdicts: %d hit / %d solved; instances: %d hit / %d solved; \
     translations: %d fresh / %d reused; fallbacks: %d; contexts: %d; \
     certified: %d ok / %d failed"
    s.verdict_hits s.verdict_misses s.instance_hits s.instance_misses
    s.formulas_translated s.formulas_reused s.fallback_queries s.contexts
    s.certified s.certificate_failures
