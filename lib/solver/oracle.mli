(** The incremental repair oracle.

    A repair session evaluates hundreds of candidate specifications that
    differ from a shared base in exactly one or two constraint bodies.  A
    plain {!Analyzer} query builds a fresh solver, retranslates the entire
    spec, and discards all learned clauses on every call.  An [Oracle.t]
    instead keeps one solving context per command scope, in which

    - the immutable part of the translation (signature bounds, symmetry
      breaking, implicit constraints, child-sig scope caps) is asserted
      exactly once;
    - every candidate fact body and every goal formula is guarded by an
      activation literal ([act] implies [fmla], via Tseitin) and memoized by
      its pretty-printed digest, so unchanged formulas are translated once
      per session; and
    - each verdict query is a {!Specrepair_sat.Solver.solve} under the
      assumptions naming the candidate's facts and the goal, sharing one
      learned-clause database across the whole session.

    On top of the incremental contexts sit structural caches keyed by the
    digest of the pretty-printed candidate (x command x scope x conflict
    budget): a verdict cache for sat/unsat answers and an instance cache for
    witness/counterexample queries.  Instance-producing queries always run
    on a fresh, {!Analyzer}-identical solve (then memoized), so the models
    an oracle-backed session observes are bit-identical to the
    non-incremental pipeline — verdicts are solver-path-independent, first
    models are not.

    Candidates whose signature declarations differ from the base (possible
    for LLM-written candidates, never for mutation-based ones) are detected
    and served by fresh solves transparently. *)

module Alloy = Specrepair_alloy

type t

type verdict = Analyzer.verdict

type stats = {
  verdict_hits : int;  (** verdict served from the structural cache *)
  verdict_misses : int;  (** incremental assumption solves performed *)
  instance_hits : int;  (** instance lists served from the cache *)
  instance_misses : int;  (** fresh enumeration solves performed *)
  fallback_queries : int;  (** sig-incompatible candidates, fresh-solved *)
  formulas_translated : int;  (** guarded translations performed *)
  formulas_reused : int;  (** activation literals served from memo *)
  contexts : int;  (** solving contexts (one per distinct scope) *)
  certified : int;  (** UNSAT verdicts accepted by the proof checker *)
  certificate_failures : int;
      (** UNSAT verdicts the checker could {e not} certify *)
}

val create :
  ?certify:bool ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?on_certify:(bool -> unit) ->
  Alloy.Typecheck.env ->
  t
(** A session keyed on the base spec's signature declarations.  Cheap: real
    work happens lazily, per scope, at the first query.

    With [~certify:true] every UNSAT verdict — the answer the repair study's
    "ok" and counterexample-free results rest on — is cross-checked by an
    independent DRUP proof checker ({!Specrepair_sat.Drat}): incremental
    contexts stream each learnt clause into a per-context checker as it is
    derived, and fresh fallback solves are checked from their recorded
    proofs.  Outcomes land in the [certified] / [certificate_failures]
    counters and, when given, [on_certify] is called with each result
    (the {!Specrepair_engine} session uses this to count certificates in
    its telemetry).  Certification roughly doubles solving cost; leave it
    off on hot paths and on for auditing runs.

    [~simplify:true] and [~portfolio:n] route {e verdict-only fresh
    solves} (the sig-incompatible fallback path) through the
    proof-preserving simplifier and the racing portfolio respectively.
    Instance-producing queries deliberately stay on the plain analyzer
    path, so the instances a session observes are bit-identical whatever
    the solving options — verdicts are solver-path-independent, first
    models are not. *)

val base : t -> Alloy.Typecheck.env

val compatible : t -> Alloy.Typecheck.env -> bool
(** Does the candidate declare exactly the base's signatures and fields (so
    the shared variable allocation is sound for it)? *)

val command_verdict :
  ?max_conflicts:int -> t -> Alloy.Typecheck.env -> Alloy.Ast.command -> verdict
(** The outcome tag of {!Analyzer.run_command} on the candidate, without an
    instance: incremental, assumption-based, and cached.  This is the hot
    call of every candidate-evaluation inner loop.  Raises the same
    [Invalid_argument] as the analyzer on commands naming unknown
    predicates or assertions. *)

val run_command :
  ?max_conflicts:int ->
  t ->
  Alloy.Typecheck.env ->
  Alloy.Ast.command ->
  Analyzer.outcome
(** Like {!Analyzer.run_command} (instance included) but memoized on the
    candidate digest.  The solve is fresh, so the instance is the one the
    plain analyzer would return. *)

val enumerate :
  ?limit:int ->
  ?max_conflicts:int ->
  t ->
  Alloy.Typecheck.env ->
  Bounds.scope ->
  Alloy.Ast.fmla ->
  Alloy.Instance.t list
(** Memoized {!Analyzer.enumerate}: same instances, in the same order. *)

val stats : t -> stats
(** Snapshot of the session counters. *)

type sat_stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  reductions : int;
  subsumed : int;  (** clauses removed by subsumption *)
  strengthened : int;  (** self-subsuming resolutions *)
  vivified : int;  (** literals removed by vivification *)
  eliminated : int;  (** variables eliminated by BVE *)
}

val sat_stats : t -> sat_stats
(** Aggregate SAT-solver work under this oracle: the lifetime counters of
    every incremental context's solver plus the counters reported by
    simplified fresh solves.  The simplification counters are nonzero only
    when the oracle was created with [~simplify:true]. *)

val reset_stats : t -> unit

val pp_stats : Format.formatter -> t -> unit
