open Specrepair_sat
module Alloy = Specrepair_alloy
module Ast = Alloy.Ast
module Tuple = Alloy.Instance.Tuple

type scope = { default : int; overrides : (string * int) list }

let scope_of_command (c : Ast.command) =
  { default = c.cmd_scope; overrides = c.cmd_scopes }

type t = {
  env : Alloy.Typecheck.env;
  solver : Solver.t;
  scope : scope;
  pools : (string * string list) list;
  universe : string list;
  rel_vars : (string, (Tuple.t * int) list) Hashtbl.t;
  matrices : (string, Matrix.t) Hashtbl.t;
  univ_matrix : Matrix.t;
  iden_matrix : Matrix.t;
}

(* Syntactic over-approximation of the atoms an expression can contain:
   the pools of the roots of all signatures it mentions, or the whole
   universe when none can be identified. *)
let rec sig_names_of_expr (env : Alloy.Typecheck.env) = function
  | Ast.Rel n -> if Ast.find_sig env.spec n <> None then [ n ] else []
  | Ast.Univ | Ast.Iden | Ast.None_ -> []
  | Ast.Unop (_, e) -> sig_names_of_expr env e
  | Ast.Binop (_, a, b) -> sig_names_of_expr env a @ sig_names_of_expr env b
  | Ast.Ite (_, a, b) -> sig_names_of_expr env a @ sig_names_of_expr env b
  | Ast.Compr (decls, _) -> List.concat_map (fun (_, e) -> sig_names_of_expr env e) decls

let pool_of_expr env pools universe e =
  match sig_names_of_expr env e with
  | [] -> universe
  | names ->
      let roots =
        List.sort_uniq String.compare
          (List.map (Alloy.Typecheck.root_of env) names)
      in
      List.concat_map
        (fun r -> Option.value ~default:[] (List.assoc_opt r pools))
        roots

let rec cartesian = function
  | [] -> [ [] ]
  | pool :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun a -> List.map (fun t -> a :: t) tails) pool

let create solver (env : Alloy.Typecheck.env) scope =
  let spec = env.spec in
  let pools =
    List.map
      (fun top ->
        let n =
          match List.assoc_opt top scope.overrides with
          | Some k -> k
          | None -> scope.default
        in
        (top, List.init n (Alloy.Instance.atom_name top)))
      env.top_sigs
  in
  let universe = List.concat_map snd pools in
  let rel_vars = Hashtbl.create 32 in
  let matrices = Hashtbl.create 32 in
  let alloc name tuples =
    let cells =
      List.map
        (fun tuple ->
          let v = Solver.new_var solver in
          (tuple, v))
        tuples
    in
    Hashtbl.replace rel_vars name cells;
    let arity = match tuples with t :: _ -> Array.length t | [] -> 1 in
    Hashtbl.replace matrices name
      (Matrix.of_cells arity
         (List.map (fun (t, v) -> (t, Formula.var v)) cells))
  in
  (* signatures: membership variables over the root pool *)
  List.iter
    (fun (s : Ast.sig_decl) ->
      let root = Alloy.Typecheck.root_of env s.sig_name in
      let pool = Option.value ~default:[] (List.assoc_opt root pools) in
      alloc s.sig_name (List.map (fun a -> [| a |]) pool))
    spec.sigs;
  (* symmetry breaking: top-level pools are used in index order *)
  List.iter
    (fun top ->
      match Hashtbl.find_opt rel_vars top with
      | Some cells ->
          let vars = List.map snd cells in
          let rec chain = function
            | v1 :: v2 :: rest ->
                Solver.add_clause solver [ Lit.pos v1; Lit.neg v2 ];
                chain (v2 :: rest)
            | _ -> ()
          in
          chain vars
      | None -> ())
    env.top_sigs;
  (* fields: tuple variables over owner pool x column pools *)
  List.iter
    (fun (s : Ast.sig_decl) ->
      let owner_pool =
        pool_of_expr env pools universe (Ast.Rel s.sig_name)
      in
      List.iter
        (fun (f : Ast.field) ->
          let col_pools =
            List.map (pool_of_expr env pools universe) f.fld_cols
          in
          let tuples =
            List.map Array.of_list (cartesian (owner_pool :: col_pools))
          in
          alloc f.fld_name tuples)
        s.sig_fields)
    spec.sigs;
  let top_matrices =
    List.filter_map (fun top -> Hashtbl.find_opt matrices top) env.top_sigs
  in
  let univ_matrix =
    List.fold_left Matrix.union (Matrix.empty 1) top_matrices
  in
  let iden_matrix =
    Matrix.of_cells 2
      (List.map
         (fun a -> ([| a; a |], Matrix.cell univ_matrix [| a |]))
         universe)
  in
  {
    env;
    solver;
    scope;
    pools;
    universe;
    rel_vars;
    matrices;
    univ_matrix;
    iden_matrix;
  }

let relation t name =
  match Hashtbl.find_opt t.matrices name with
  | Some m -> m
  | None -> raise Not_found

let extract t value =
  let spec = t.env.spec in
  let sigs =
    List.map
      (fun (s : Ast.sig_decl) ->
        let cells = Hashtbl.find t.rel_vars s.sig_name in
        ( s.sig_name,
          List.filter_map
            (fun ((tuple : Tuple.t), v) ->
              if value v then Some tuple.(0) else None)
            cells ))
      spec.sigs
  in
  let fields =
    List.concat_map
      (fun (s : Ast.sig_decl) ->
        List.map
          (fun (f : Ast.field) ->
            let cells = Hashtbl.find t.rel_vars f.fld_name in
            ( f.fld_name,
              Alloy.Instance.Tuple_set.of_list
                (List.filter_map
                   (fun (tuple, v) -> if value v then Some tuple else None)
                   cells) ))
          s.sig_fields)
      spec.sigs
  in
  { Alloy.Instance.sigs; fields }

(* The translation consults [env] only for declarations that the oracle
   gate guarantees unchanged (sigs) or that the caller keys its reuse on
   (preds, funs): swapping the env lets one variable allocation serve every
   candidate spec that shares the base's signature structure. *)
let with_env t env = { t with env }
