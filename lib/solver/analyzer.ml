open Specrepair_sat
module Alloy = Specrepair_alloy
module Ast = Alloy.Ast

type outcome = Sat of Alloy.Instance.t | Unsat | Unknown
type verdict = [ `Sat | `Unsat | `Unknown ]

let outcome_to_string = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown -> "unknown"

let outcome_verdict : outcome -> verdict = function
  | Sat _ -> `Sat
  | Unsat -> `Unsat
  | Unknown -> `Unknown

let default_scope = { Bounds.default = 3; overrides = [] }

(* The proof sink must be installed before [Bounds.create]: bounds assert
   symmetry-breaking and multiplicity clauses at construction time, and a
   checker that never saw them cannot validate anything derived from them. *)
let setup ?proof env scope =
  let solver = Solver.create () in
  (match proof with None -> () | Some _ -> Solver.set_proof solver proof);
  let bounds = Bounds.create solver env scope in
  let ts = Tseitin.create solver in
  (solver, bounds, ts)

let solve_goal ?proof ?(simplify = false) ?(portfolio = 1) ?(certify = false)
    ?stats ?max_conflicts env scope goal_of_bounds =
  if (not simplify) && portfolio <= 1 then begin
    let solver, bounds, ts = setup ?proof env scope in
    Tseitin.assert_formula ts (Translate.spec_fmla bounds);
    Tseitin.assert_formula ts (goal_of_bounds bounds);
    match Solver.solve ?max_conflicts solver with
    | Solver.Sat -> Sat (Bounds.extract bounds (Solver.value solver))
    | Solver.Unsat -> Unsat
    | Solver.Unknown -> Unknown
  end
  else begin
    (* Simplified or raced solving cannot run inside the loading solver:
       the CNF is captured off the proof stream's [Input] events (the
       loading solver never solves, so it emits nothing else) and handed
       to {!Simplify.solve} / {!Portfolio.solve}, which stream their
       derivation steps into the caller's sink over the same premises. *)
    let captured = ref [] in
    let tee e =
      (match e with Proof.Input c -> captured := c :: !captured | _ -> ());
      match proof with Some sink -> sink e | None -> ()
    in
    let solver, bounds, ts = setup ~proof:tee env scope in
    Tseitin.assert_formula ts (Translate.spec_fmla bounds);
    Tseitin.assert_formula ts (goal_of_bounds bounds);
    let cnf =
      {
        Dimacs.num_vars = Solver.n_vars solver;
        clauses = List.rev_map Array.to_list !captured;
      }
    in
    let outcome result model =
      match (result, model) with
      | Solver.Sat, Some m ->
          Sat
            (Bounds.extract bounds (fun v -> v < Array.length m && m.(v)))
      | Solver.Sat, None | Solver.Unknown, _ -> Unknown
      | Solver.Unsat, _ -> Unsat
    in
    if portfolio > 1 then begin
      let out =
        Portfolio.solve ~jobs:portfolio ~simplify ~certify ?proof
          ?max_conflicts cnf
      in
      outcome out.Portfolio.result out.Portfolio.model
    end
    else begin
      let r = Simplify.solve ?proof ?max_conflicts cnf in
      (match stats with Some f -> f r | None -> ());
      outcome r.Simplify.result r.Simplify.model
    end
  end

let solve_fmla ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
    scope f =
  solve_goal ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
    scope (fun bounds -> Translate.fmla bounds [] f)

let run_pred ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
    scope name =
  match Ast.find_pred env.Alloy.Typecheck.spec name with
  | None -> invalid_arg (Printf.sprintf "Analyzer.run_pred: unknown predicate %s" name)
  | Some p ->
      solve_goal ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
        scope (fun bounds -> Translate.pred_goal bounds p)

let check_assert ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
    scope name =
  match Ast.find_assert env.Alloy.Typecheck.spec name with
  | None ->
      invalid_arg (Printf.sprintf "Analyzer.check_assert: unknown assertion %s" name)
  | Some a ->
      solve_fmla ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
        scope (Ast.Not a.assert_body)

let run_command ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
    (c : Ast.command) =
  let scope = Bounds.scope_of_command c in
  match c.cmd_kind with
  | Ast.Run_pred name ->
      run_pred ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
        scope name
  | Ast.Run_fmla f ->
      solve_fmla ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts env
        scope f
  | Ast.Check name ->
      check_assert ?proof ?simplify ?portfolio ?certify ?stats ?max_conflicts
        env scope name

let enumerate ?(limit = 10) ?max_conflicts env scope f =
  let solver, bounds, ts = setup env scope in
  Tseitin.assert_formula ts (Translate.spec_fmla bounds);
  Tseitin.assert_formula ts (Translate.fmla bounds [] f);
  let all_primary_vars =
    Hashtbl.fold
      (fun _ cells acc -> List.map snd cells @ acc)
      bounds.Bounds.rel_vars []
  in
  let rec loop acc n =
    if n >= limit then List.rev acc
    else
      match Solver.solve ?max_conflicts solver with
      | Solver.Sat ->
          let inst = Bounds.extract bounds (Solver.value solver) in
          let blocking =
            List.map
              (fun v -> Lit.make v (not (Solver.value solver v)))
              all_primary_vars
          in
          Solver.add_clause solver blocking;
          loop (inst :: acc) (n + 1)
      | Solver.Unsat | Solver.Unknown -> List.rev acc
  in
  loop [] 0
