(** The analyzer: bounded model finding for Mini-Alloy, playing the role of
    the Alloy Analyzer in the study.

    [run] searches for an instance satisfying the facts plus a goal formula;
    [check] searches for a counterexample of an assertion.  All searches are
    bounded by the command scope and, optionally, a SAT conflict budget. *)

module Alloy = Specrepair_alloy

type outcome =
  | Sat of Alloy.Instance.t  (** witness instance / counterexample *)
  | Unsat
  | Unknown  (** conflict budget exhausted *)

type verdict = [ `Sat | `Unsat | `Unknown ]
(** An outcome without its instance — what verdict-only callers (the
    oracle's cache, the fuzzer's cross-checks) compare on. *)

val outcome_to_string : outcome -> string
val outcome_verdict : outcome -> verdict

val solve_fmla :
  ?proof:Specrepair_sat.Proof.sink ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?certify:bool ->
  ?stats:(Specrepair_sat.Simplify.solve_result -> unit) ->
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  Bounds.scope ->
  Alloy.Ast.fmla ->
  outcome
(** Satisfiability of [facts /\ implicit /\ f] within the scope.  With
    [?proof], the underlying solver logs its run — original clauses and
    derivations — to the sink, making UNSAT outcomes independently
    checkable (see {!Specrepair_sat.Drat}).

    [~simplify:true] routes the solve through
    {!Specrepair_sat.Simplify.solve} (proof-preserving pre- and
    inprocessing; models are reconstructed over the original variables
    before instance extraction, so [Sat] witnesses remain valid).
    [~portfolio:n] with [n > 1] races [n] diversified workers through
    {!Specrepair_sat.Portfolio.solve}; [~certify:true] there makes the
    parent accept an UNSAT verdict only with a checker-admitted proof.
    Both keep the proof stream over the same premises the sink already
    saw, so certification works unchanged.  [?stats], when given, receives
    the full {!Specrepair_sat.Simplify.solve_result} (solver and
    simplification counters) of a simplified non-portfolio solve — the
    oracle aggregates these into session telemetry. *)

val run_pred :
  ?proof:Specrepair_sat.Proof.sink ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?certify:bool ->
  ?stats:(Specrepair_sat.Simplify.solve_result -> unit) ->
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  Bounds.scope ->
  string ->
  outcome
(** [run p]: parameters are existentially quantified. *)

val check_assert :
  ?proof:Specrepair_sat.Proof.sink ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?certify:bool ->
  ?stats:(Specrepair_sat.Simplify.solve_result -> unit) ->
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  Bounds.scope ->
  string ->
  outcome
(** [check a]: [Sat inst] means [inst] is a counterexample. *)

val run_command :
  ?proof:Specrepair_sat.Proof.sink ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?certify:bool ->
  ?stats:(Specrepair_sat.Simplify.solve_result -> unit) ->
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  Alloy.Ast.command ->
  outcome

val enumerate :
  ?limit:int ->
  ?max_conflicts:int ->
  Alloy.Typecheck.env ->
  Bounds.scope ->
  Alloy.Ast.fmla ->
  Alloy.Instance.t list
(** Up to [limit] (default 10) distinct instances of [facts /\ f], found by
    adding blocking clauses over the primary variables. *)

val default_scope : Bounds.scope
(** Scope 3 with no overrides. *)
