(** Universe construction and relation bounds.

    Every top-level signature gets a fixed pool of named atoms of the
    commanded scope; membership of each atom in each signature (top-level or
    sub-signature) is a fresh SAT variable, as is membership of each
    well-typed tuple in each field.  Symmetry is broken by forcing each
    top-level pool to be used in index order. *)

open Specrepair_sat
module Alloy = Specrepair_alloy

type scope = { default : int; overrides : (string * int) list }

val scope_of_command : Alloy.Ast.command -> scope

type t = {
  env : Alloy.Typecheck.env;
  solver : Solver.t;
  scope : scope;
  pools : (string * string list) list;  (** top-level sig -> atom pool *)
  universe : string list;
  rel_vars : (string, (Alloy.Instance.Tuple.t * int) list) Hashtbl.t;
      (** per relation: tuple and its SAT variable *)
  matrices : (string, Matrix.t) Hashtbl.t;  (** per relation *)
  univ_matrix : Matrix.t;
  iden_matrix : Matrix.t;
}

val create : Solver.t -> Alloy.Typecheck.env -> scope -> t
(** Allocates variables in the solver and emits the symmetry-breaking
    clauses.  Child-signature scope overrides are emitted as constraints by
    {!Translate.assert_spec}, not here. *)

val relation : t -> string -> Matrix.t
(** Matrix of a signature or field; raises [Not_found] for unknown names. *)

val extract : t -> (int -> bool) -> Alloy.Instance.t
(** Reads an instance off a SAT model (given as the variable valuation). *)

val with_env : t -> Alloy.Typecheck.env -> t
(** The same bounds (solver variables, pools, matrices) viewed through a
    different type-checked spec.  Sound only when the new spec declares the
    same signatures and fields as the one the bounds were created from;
    {!Oracle} enforces this. *)
