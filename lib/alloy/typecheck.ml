open Ast

exception Type_error of string

(* The declaration a type error was found in, so messages (and the
   positioned diagnostics built by {!Frontend}) can name the enclosing
   paragraph.  Facts and commands are identified by position since they
   can be anonymous. *)
type decl =
  | Dsig of string
  | Dfact of int * string option
  | Dpred of string
  | Dfun of string
  | Dassert of string
  | Dcommand of int

let decl_to_string = function
  | Dsig n -> "sig " ^ n
  | Dfact (_, Some n) -> "fact " ^ n
  | Dfact (i, None) -> Printf.sprintf "fact #%d" (i + 1)
  | Dpred n -> "pred " ^ n
  | Dfun n -> "fun " ^ n
  | Dassert n -> "assert " ^ n
  | Dcommand i -> Printf.sprintf "command #%d" (i + 1)

(* Internal: a [Type_error] tagged with its enclosing declaration. *)
exception Error_in of decl * string

let in_decl d f = try f () with Type_error msg -> raise (Error_in (d, msg))

type env = {
  spec : Ast.spec;
  sig_order : string list;
  top_sigs : string list;
  arity : (string, int) Hashtbl.t;
  owner : (string, string) Hashtbl.t;
  children : (string, string list) Hashtbl.t;
}

let err fmt = Format.kasprintf (fun msg -> raise (Type_error msg)) fmt

let root_of env name =
  let rec up n =
    match find_sig env.spec n with
    | Some { sig_parent = Some p; _ } -> up p
    | _ -> n
  in
  up name

let descendants env name =
  let rec go n =
    n :: List.concat_map go (Option.value ~default:[] (Hashtbl.find_opt env.children n))
  in
  go name

(* Arity of an expression; [vars] maps bound variables and predicate
   parameters to their arities. *)
let rec expr_arity env vars = function
  | Rel n -> (
      match List.assoc_opt n vars with
      | Some a -> a
      | None -> (
          match Hashtbl.find_opt env.arity n with
          | Some a -> a
          | None -> err "unknown name %s" n))
  | Univ -> 1
  | Iden -> 2
  | None_ -> 1
  | Unop (op, e) -> (
      let a = expr_arity env vars e in
      match op with
      | Transpose | Closure | Rclosure ->
          if a <> 2 then
            err "%s applied to a relation of arity %d (needs 2)"
              (match op with Transpose -> "~" | Closure -> "^" | Rclosure -> "*")
              a
          else 2)
  | Binop (op, l, r) -> (
      let al = expr_arity env vars l and ar = expr_arity env vars r in
      match op with
      | Join ->
          let a = al + ar - 2 in
          if a < 1 then err "join of arities %d and %d is empty-arity" al ar
          else a
      | Product -> al + ar
      | Union | Diff | Inter ->
          if al <> ar then
            err "arity mismatch in set operation: %d vs %d" al ar
          else al
      | Override ->
          if al <> ar then err "arity mismatch in ++: %d vs %d" al ar
          else if al < 2 then err "++ needs arity >= 2"
          else al
      | Domrestr ->
          if al <> 1 then err "<: needs a set on the left" else ar
      | Ranrestr ->
          if ar <> 1 then err ":> needs a set on the right" else al)
  | Ite (c, t, e) ->
      check_fmla env vars c;
      let at = expr_arity env vars t and ae = expr_arity env vars e in
      if at <> ae then err "arity mismatch in conditional expression" else at
  | Compr (decls, body) ->
      let vars =
        List.fold_left
          (fun vars (name, bound) ->
            let a = expr_arity env vars bound in
            if a <> 1 then
              err "comprehension variable %s must range over a set (arity 1)"
                name;
            (name, 1) :: vars)
          vars decls
      in
      check_fmla env vars body;
      List.length decls

and check_fmla env vars = function
  | True | False -> ()
  | Cmp (_, l, r) ->
      let al = expr_arity env vars l and ar = expr_arity env vars r in
      if al <> ar then err "arity mismatch in comparison: %d vs %d" al ar
  | Multf (_, e) -> ignore (expr_arity env vars e)
  | Card (_, e, k) ->
      ignore (expr_arity env vars e);
      if k < 0 then err "negative cardinality bound %d" k
  | Not f -> check_fmla env vars f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      check_fmla env vars a;
      check_fmla env vars b
  | Quant (_, decls, body) ->
      let vars =
        List.fold_left
          (fun vars (name, bound) ->
            let a = expr_arity env vars bound in
            if a <> 1 then
              err "quantified variable %s must range over a set (arity 1)" name;
            (name, 1) :: vars)
          vars decls
      in
      check_fmla env vars body
  | Let (name, value, body) ->
      let a = expr_arity env vars value in
      check_fmla env ((name, a) :: vars) body
  | Call (name, args) -> (
      match find_pred env.spec name with
      | None -> err "call to unknown predicate %s" name
      | Some p ->
          let expected = List.length p.pred_params in
          let got = List.length args in
          if expected <> got then
            err "predicate %s expects %d arguments, got %d" name expected got;
          List.iter
            (fun arg ->
              if expr_arity env vars arg <> 1 then
                err "arguments of %s must be scalars (arity 1)" name)
            args)

let build_tables spec =
  let arity = Hashtbl.create 32 in
  let owner = Hashtbl.create 32 in
  let children = Hashtbl.create 32 in
  List.iter
    (fun s ->
      in_decl (Dsig s.sig_name) @@ fun () ->
      if Hashtbl.mem arity s.sig_name then
        err "duplicate signature name %s" s.sig_name;
      Hashtbl.add arity s.sig_name 1)
    spec.sigs;
  List.iter
    (fun s ->
      in_decl (Dsig s.sig_name) @@ fun () ->
      (match s.sig_parent with
      | Some p ->
          if not (Hashtbl.mem arity p) then
            err "signature %s extends unknown signature %s" s.sig_name p;
          let existing = Option.value ~default:[] (Hashtbl.find_opt children p) in
          Hashtbl.replace children p (existing @ [ s.sig_name ])
      | None -> ());
      List.iter
        (fun f ->
          if Hashtbl.mem arity f.fld_name then
            err "field name %s clashes with an existing name (fields must be globally unique)"
              f.fld_name;
          Hashtbl.add arity f.fld_name (1 + List.length f.fld_cols);
          Hashtbl.add owner f.fld_name s.sig_name)
        s.sig_fields)
    spec.sigs;
  (arity, owner, children)

(* Topological order of the extends hierarchy, detecting cycles. *)
let order_sigs spec =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit trail s =
    if List.mem s.sig_name trail then
      err "cyclic extends involving %s" s.sig_name;
    if not (Hashtbl.mem visited s.sig_name) then begin
      (match s.sig_parent with
      | Some p -> (
          match find_sig spec p with
          | Some parent -> visit (s.sig_name :: trail) parent
          | None -> err "signature %s extends unknown signature %s" s.sig_name p)
      | None -> ());
      Hashtbl.add visited s.sig_name ();
      order := s.sig_name :: !order
    end
  in
  List.iter (fun s -> in_decl (Dsig s.sig_name) (fun () -> visit [] s)) spec.sigs;
  List.rev !order

let check_raw spec =
  let arity, owner, children = build_tables spec in
  let sig_order = order_sigs spec in
  let top_sigs =
    List.filter_map
      (fun s -> if s.sig_parent = None then Some s.sig_name else None)
      spec.sigs
  in
  let env = { spec; sig_order; top_sigs; arity; owner; children } in
  (* field column domains are arity-1 expressions over signatures *)
  List.iter
    (fun s ->
      in_decl (Dsig s.sig_name) @@ fun () ->
      List.iter
        (fun f ->
          List.iter
            (fun col ->
              if expr_arity env [] col <> 1 then
                err "field %s: column domains must have arity 1" f.fld_name)
            f.fld_cols)
        s.sig_fields)
    spec.sigs;
  (* functions: processed in declaration order so earlier functions are
     usable by later ones; self- and forward references are rejected as
     unknown names, which also rules out recursion *)
  List.iter
    (fun (f : fun_decl) ->
      in_decl (Dfun f.fun_name) @@ fun () ->
      if Hashtbl.mem env.arity f.fun_name then
        err "duplicate name %s (function)" f.fun_name;
      let vars =
        List.map
          (fun (name, bound) ->
            if expr_arity env [] bound <> 1 then
              err "parameter %s of function %s must range over a set" name
                f.fun_name;
            (name, 1))
          f.fun_params
      in
      let body_arity = expr_arity env vars f.fun_body in
      let result_arity = expr_arity env vars f.fun_result in
      if body_arity <> result_arity then
        err "function %s: body arity %d does not match declared result arity %d"
          f.fun_name body_arity result_arity;
      Hashtbl.add env.arity f.fun_name (List.length f.fun_params + body_arity))
    spec.funs;
  (* paragraph bodies *)
  List.iteri
    (fun i f ->
      in_decl (Dfact (i, f.fact_name)) @@ fun () ->
      check_fmla env [] f.fact_body)
    spec.facts;
  List.iter
    (fun p ->
      in_decl (Dpred p.pred_name) @@ fun () ->
      let vars =
        List.map
          (fun (name, bound) ->
            if expr_arity env [] bound <> 1 then
              err "parameter %s of %s must range over a set (arity 1)" name
                p.pred_name;
            (name, 1))
          p.pred_params
      in
      check_fmla env vars p.pred_body)
    spec.preds;
  List.iter
    (fun a ->
      in_decl (Dassert a.assert_name) (fun () ->
          check_fmla env [] a.assert_body))
    spec.asserts;
  (* commands *)
  List.iteri
    (fun i c ->
      in_decl (Dcommand i) @@ fun () ->
      (match c.cmd_kind with
      | Run_pred name ->
          if find_pred spec name = None then
            err "run of unknown predicate %s" name
      | Check name ->
          if find_assert spec name = None then
            err "check of unknown assertion %s" name
      | Run_fmla f -> check_fmla env [] f);
      if c.cmd_scope < 1 then err "command scope must be at least 1";
      List.iter
        (fun (name, k) ->
          if not (Hashtbl.mem arity name) then
            err "scope override for unknown signature %s" name;
          if k < 0 then err "negative scope for %s" name)
        c.cmd_scopes)
    spec.commands;
  env

(* Public entry: errors name their enclosing declaration. *)
let check spec =
  try check_raw spec
  with Error_in (d, msg) ->
    raise (Type_error (Printf.sprintf "in %s: %s" (decl_to_string d) msg))

let check_result spec =
  match check spec with
  | env -> Ok env
  | exception Type_error msg -> Error msg

(* Structured variant for positioned diagnostics: the failing
   declaration is returned separately so callers can map it to a source
   span. *)
let check_named spec =
  match check_raw spec with
  | env -> Ok env
  | exception Error_in (d, msg) -> Error (Some d, msg)
  | exception Type_error msg -> Error (None, msg)
