(* Source positions and spans for the Alloy 4.2 frontend.

   Every token, surface-AST node and diagnostic carries a [span]: a file
   name plus 1-based start/end line and column.  Spans are half-open on
   the right in the column direction ([end_col] is the column one past
   the last character), matching [Lexing.position] conventions. *)

type span = {
  file : string;
  start_line : int;
  start_col : int;  (** 1-based column of the first character *)
  end_line : int;
  end_col : int;  (** 1-based column one past the last character *)
}

let none = { file = "<none>"; start_line = 0; start_col = 0; end_line = 0; end_col = 0 }

let is_none s = s.start_line = 0

let make ~file ~start_line ~start_col ~end_line ~end_col =
  { file; start_line; start_col; end_line; end_col }

(* [Lexing.position] columns are 0-based offsets from [pos_bol]. *)
let of_positions (a : Lexing.position) (b : Lexing.position) =
  {
    file = a.pos_fname;
    start_line = a.pos_lnum;
    start_col = a.pos_cnum - a.pos_bol + 1;
    end_line = b.pos_lnum;
    end_col = b.pos_cnum - b.pos_bol + 1;
  }

let of_lexbuf (lexbuf : Lexing.lexbuf) =
  of_positions (Lexing.lexeme_start_p lexbuf) (Lexing.lexeme_end_p lexbuf)

(* The smallest span covering both arguments (undefined across files;
   keeps the first file). *)
let merge a b =
  if is_none a then b
  else if is_none b then a
  else
    let start_line, start_col =
      if
        a.start_line < b.start_line
        || (a.start_line = b.start_line && a.start_col <= b.start_col)
      then (a.start_line, a.start_col)
      else (b.start_line, b.start_col)
    in
    let end_line, end_col =
      if a.end_line > b.end_line || (a.end_line = b.end_line && a.end_col >= b.end_col)
      then (a.end_line, a.end_col)
      else (b.end_line, b.end_col)
    in
    { file = a.file; start_line; start_col; end_line; end_col }

let to_string s =
  if is_none s then s.file
  else if s.start_line = s.end_line then
    if s.end_col - s.start_col <= 1 then
      Printf.sprintf "%s:%d:%d" s.file s.start_line s.start_col
    else
      Printf.sprintf "%s:%d:%d-%d" s.file s.start_line s.start_col (s.end_col - 1)
  else Printf.sprintf "%s:%d:%d-%d:%d" s.file s.start_line s.start_col s.end_line (s.end_col - 1)

type 'a located = { it : 'a; loc : span }

let locate it loc = { it; loc }
