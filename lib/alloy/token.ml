(* Tokens of Alloy 4.2 concrete syntax, produced by the ocamllex lexer
   ({!Lexer}) and consumed by the located parser ({!Parser}). *)

type t =
  | Tident of string
  | Tint of int
  | Tmodule
  | Topen
  | Tas
  | Tsig
  | Tabstract
  | Textends
  | Tone
  | Tlone
  | Tsome
  | Tset
  | Tall
  | Tno
  | Tdisj
  | Texactly
  | Tfact
  | Tpred
  | Tfun
  | Tlet
  | Tassert
  | Tcheck
  | Trun
  | Tfor
  | Tbut
  | Tin
  | Tnot
  | Tand
  | Tor
  | Timplies
  | Tiff
  | Telse
  | Tuniv
  | Tiden
  | Tnone
  | Tlbrace
  | Trbrace
  | Tlbrack
  | Trbrack
  | Tlparen
  | Trparen
  | Tcolon
  | Tcomma
  | Tdot
  | Tbar
  | Tslash
  | Tplus
  | Tminus
  | Tamp
  | Tplusplus
  | Tarrow
  | Tdomres
  | Tranres
  | Ttilde
  | Tcaret
  | Tstar
  | Thash
  | Teq
  | Tneq
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tbang
  | Tampamp
  | Tbarbar
  | Tfatarrow
  | Tiffarrow
  | Teof

let to_string = function
  | Tident s -> s
  | Tint k -> string_of_int k
  | Tmodule -> "module"
  | Topen -> "open"
  | Tas -> "as"
  | Tsig -> "sig"
  | Tabstract -> "abstract"
  | Textends -> "extends"
  | Tone -> "one"
  | Tlone -> "lone"
  | Tsome -> "some"
  | Tset -> "set"
  | Tall -> "all"
  | Tno -> "no"
  | Tdisj -> "disj"
  | Texactly -> "exactly"
  | Tfact -> "fact"
  | Tpred -> "pred"
  | Tfun -> "fun"
  | Tlet -> "let"
  | Tassert -> "assert"
  | Tcheck -> "check"
  | Trun -> "run"
  | Tfor -> "for"
  | Tbut -> "but"
  | Tin -> "in"
  | Tnot -> "not"
  | Tand -> "and"
  | Tor -> "or"
  | Timplies -> "implies"
  | Tiff -> "iff"
  | Telse -> "else"
  | Tuniv -> "univ"
  | Tiden -> "iden"
  | Tnone -> "none"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tlbrack -> "["
  | Trbrack -> "]"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tcolon -> ":"
  | Tcomma -> ","
  | Tdot -> "."
  | Tbar -> "|"
  | Tslash -> "/"
  | Tplus -> "+"
  | Tminus -> "-"
  | Tamp -> "&"
  | Tplusplus -> "++"
  | Tarrow -> "->"
  | Tdomres -> "<:"
  | Tranres -> ":>"
  | Ttilde -> "~"
  | Tcaret -> "^"
  | Tstar -> "*"
  | Thash -> "#"
  | Teq -> "="
  | Tneq -> "!="
  | Tlt -> "<"
  | Tle -> "<="
  | Tgt -> ">"
  | Tge -> ">="
  | Tbang -> "!"
  | Tampamp -> "&&"
  | Tbarbar -> "||"
  | Tfatarrow -> "=>"
  | Tiffarrow -> "<=>"
  | Teof -> "<eof>"
