(* Located surface AST for Alloy 4.2 concrete syntax.

   This is what the parser produces: every node carries a {!Loc.span},
   and surface-only constructs (boxed joins, [disj] declarations, sig
   facts, [open] headers, implies-[else], reversed cardinalities,
   statement blocks) are kept explicit.  {!Elab} lowers this tree to the
   kernel {!Ast.t}, erasing positions and desugaring exactly as the
   historical token-array parser did, so downstream phases see
   bit-identical kernel terms. *)

type ident = string Loc.located

type expr = expr_node Loc.located

and fmla = fmla_node Loc.located

and expr_node =
  | Ename of string
  | Euniv
  | Eiden
  | Enone
  | Eunop of Ast.unop * expr
  | Ebinop of Ast.binop * expr * expr
  | Ebox of expr * expr list  (* e[a, b] — boxed join, a.e then b.(a.e) *)
  | Ecompr of decl list * fmla

and fmla_node =
  | Fcmp of Ast.cmpop * expr * expr
  | Fmult of Ast.fmult * expr
  | Fcard of Ast.intcmp * expr * int  (* #e op k *)
  | Fcard_rev of Ast.intcmp * int * expr  (* k op #e *)
  | Fnot of fmla
  | Fand of fmla * fmla
  | For_ of fmla * fmla
  | Fimplies of fmla * fmla
  | Fimplies_else of fmla * fmla * fmla
  | Fiff of fmla * fmla
  | Fquant of Ast.quant * decl list * fmla
  | Flet of ident * expr * fmla
  | Fblock of fmla list  (* { f1 f2 ... } — conjunction of statements *)
  | Fexpr of expr
      (* a bare expression in formula position; must elaborate to a
         predicate call ([p] or [p[a, b]]) *)

(* One declaration group [disj? x, y: bound], as used by quantifiers,
   comprehensions and pred/fun parameter lists. *)
and decl = { d_disj : bool; d_names : ident list; d_bound : expr }

(* {2 Paragraphs} *)

type field = {
  f_disj : bool;
  f_names : ident list;
  f_cols : (Ast.mult option * expr) list;
      (* columns right of the colon; arrows separate columns, each may
         carry a multiplicity keyword (only the last one is meaningful
         to the kernel) *)
  f_span : Loc.span;
}

type sig_parent =
  | Pextends of ident
  | Pin of ident  (* subset signature — rejected during elaboration *)

type sig_decl = {
  s_names : ident list;  (* [sig A, B { ... }] declares several *)
  s_parent : sig_parent option;
  s_abstract : bool;
  s_mult : Ast.mult;
  s_fields : field list;
  s_fact : fmla option;  (* appended constraint block *)
  s_span : Loc.span;
}

type fact_decl = { fa_name : ident option; fa_body : fmla; fa_span : Loc.span }

type pred_decl = {
  p_name : ident;
  p_params : decl list;
  p_body : fmla;
  p_span : Loc.span;
}

type fun_decl = {
  fn_name : ident;
  fn_params : decl list;
  fn_result : Ast.mult option * expr;
  fn_body : expr;
  fn_span : Loc.span;
}

type assert_decl = { a_name : ident; a_body : fmla; a_span : Loc.span }

type cmd_kind = Crun_pred of ident | Crun_fmla of fmla | Ccheck of ident

type command = {
  c_label : ident option;  (* [name: run ...] — dropped with a warning *)
  c_kind : cmd_kind;
  c_scope : int;  (* default bound; 3 when no [for] clause *)
  c_scopes : (bool * ident * int) list;  (* but overrides: exactly?, sig, bound *)
  c_span : Loc.span;
}

type open_decl = {
  o_path : string;
  o_args : string list;
  o_alias : string option;
  o_span : Loc.span;
}

type paragraph =
  | Psig of sig_decl
  | Pfact of fact_decl
  | Ppred of pred_decl
  | Pfun of fun_decl
  | Passert of assert_decl
  | Pcommand of command

type spec = {
  sp_module : ident option;
  sp_opens : open_decl list;
  sp_paragraphs : paragraph list;
}
