(* Positioned diagnostics for the frontend: lexing, parsing, elaboration
   and type checking all report through this one type, replacing the old
   stringly [Parse_error of string].

   A diagnostic renders as a compiler-style message with a caret line:

     specs/graph.als:6:21: error: unknown name 'edgez'
       6 |   no n: Node | n in n.^edgez
         |                        ^^^^^
       note: in fact Acyclic *)

type severity = Error | Warning

type t = {
  severity : severity;
  span : Loc.span;
  message : string;
  notes : string list;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let error ?(notes = []) span fmt =
  Format.kasprintf (fun message -> { severity = Error; span; message; notes }) fmt

let warning ?(notes = []) span fmt =
  Format.kasprintf (fun message -> { severity = Warning; span; message; notes }) fmt

exception Error of t
(** Raised by {!Lexer}, {!Parser} and {!Elab} on malformed input. *)

let fail ?notes span fmt =
  Format.kasprintf
    (fun message -> raise (Error (error ?notes span "%s" message)))
    fmt

(* {2 Rendering} *)

let nth_line source n =
  let rec go i line start =
    if line = n then
      let stop =
        match String.index_from_opt source start '\n' with
        | Some j -> j
        | None -> String.length source
      in
      Some (String.sub source start (stop - start))
    else
      match String.index_from_opt source i '\n' with
      | Some j -> go (j + 1) (line + 1) (j + 1)
      | None -> None
  in
  if n < 1 then None else go 0 1 0

(* The caret line under the source excerpt: spans within one line are
   underlined exactly; multi-line spans are underlined to the end of
   their first line.  Tabs in the excerpt are widened to one column. *)
let caret_line text span =
  let width = String.length text in
  let start = max 0 (span.Loc.start_col - 1) in
  let stop =
    if span.Loc.end_line = span.Loc.start_line then max (start + 1) (span.Loc.end_col - 1)
    else width
  in
  let stop = max (start + 1) (min (max stop (start + 1)) (max width (start + 1))) in
  String.make start ' ' ^ String.make (stop - start) '^'

let render ?source d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s:%d:%d: %s: %s" d.span.Loc.file d.span.Loc.start_line
       d.span.Loc.start_col
       (severity_to_string d.severity)
       d.message);
  (match Option.bind source (fun src -> nth_line src d.span.Loc.start_line) with
  | Some text when not (Loc.is_none d.span) ->
      let gutter = string_of_int d.span.Loc.start_line in
      Buffer.add_string buf (Printf.sprintf "\n  %s | %s" gutter text);
      Buffer.add_string buf
        (Printf.sprintf "\n  %s | %s"
           (String.make (String.length gutter) ' ')
           (caret_line text d.span))
  | _ -> ());
  List.iter (fun n -> Buffer.add_string buf ("\n  note: " ^ n)) d.notes;
  Buffer.contents buf

(* {2 JSON} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d,\"message\":\"%s\",\"notes\":[%s]}"
    (severity_to_string d.severity)
    (json_escape d.span.Loc.file)
    d.span.Loc.start_line d.span.Loc.start_col d.span.Loc.end_line
    d.span.Loc.end_col (json_escape d.message)
    (String.concat "," (List.map (fun n -> "\"" ^ json_escape n ^ "\"") d.notes))
