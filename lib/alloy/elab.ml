(* Elaboration: lowers the located {!Surface} AST to the kernel
   {!Ast.t}.

   The lowering replicates the normalizations the historical token-array
   parser performed inline, so kernel terms are bit-identical for the
   language subset it accepted:

   - statement blocks fold left into [And], seeded with [True] (an empty
     block is [True]);
   - [c => t else e] desugars to [(c && t) || (!c && e)];
   - boxed join [e[a, b]] folds to [b.(a.e)];
   - a bare expression in formula position is reinterpreted as a
     predicate call ([p] or [p[a, b]]), or rejected;
   - an unannotated final field column defaults to [one] for binary
     fields and [set] for higher arity.

   Surface-only constructs lower as:

   - [univ = univ] / [univ != univ] fold to [True] / [False], making
     parse ∘ print ∘ parse a fixpoint (the printer spells the boolean
     constants that way);
   - [k op #e] flips into [#e op' k];
   - [disj x, y: A] adds pairwise disequalities to the quantifier body
     (antecedent under [all], conjunct otherwise);
   - [disj f, g: ...] field groups add a per-atom disjointness fact;
   - a signature fact [sig A {...} { F }] becomes the fact
     [A$fact: all this: A | F];
   - [open] headers, command labels, [exactly] scopes and [disj]
     parameters of functions elaborate to warnings;
   - subset signatures ([sig A in B]) are rejected with a positioned
     error. *)

module S = Surface
open Ast

type result = {
  spec : Ast.spec;
  warnings : Diagnostic.t list;
  spans : (Typecheck.decl * Loc.span) list;
      (* source span of every kernel declaration, for positioned
         typecheck diagnostics (see {!Frontend}) *)
}

let flip_intcmp = function
  | Ilt -> Igt
  | Ile -> Ige
  | Igt -> Ilt
  | Ige -> Ile
  | Ieq -> Ieq
  | Ineq -> Ineq

(* Reinterpret an expression as a predicate call: [p] becomes
   [Call(p, [])] and [p[a, b]] — elaborated to b.(a.p) — becomes
   [Call(p, [a; b])]. *)
let expr_to_call e =
  let rec split = function
    | Rel name -> Some (name, [])
    | Binop (Join, arg, rest) -> (
        match split rest with
        | Some (name, args) -> Some (name, arg :: args)
        | None -> None)
    | _ -> None
  in
  match split e with
  | Some (name, args) -> Some (Call (name, List.rev args))
  | None -> None

let rec expr (e : S.expr) =
  match e.Loc.it with
  | S.Ename n -> Rel n
  | S.Euniv -> Univ
  | S.Eiden -> Iden
  | S.Enone -> None_
  | S.Eunop (op, a) -> Unop (op, expr a)
  | S.Ebinop (op, a, b) -> Binop (op, expr a, expr b)
  | S.Ebox (f, args) ->
      List.fold_left (fun acc arg -> Binop (Join, expr arg, acc)) (expr f) args
  | S.Ecompr (groups, body) ->
      let body' = with_disj ~under_all:false groups (fmla body) in
      Compr (decl_pairs groups, body')

and decl_pairs groups =
  List.concat_map
    (fun g ->
      let bound = expr g.S.d_bound in
      List.map (fun n -> (n.Loc.it, bound)) g.S.d_names)
    groups

(* Pairwise disequalities of every [disj] group, folded left. *)
and disj_constraint groups =
  let pairs g =
    let rec go = function
      | [] -> []
      | x :: rest ->
          List.map (fun y -> Cmp (Cneq, Rel x.Loc.it, Rel y.Loc.it)) rest
          @ go rest
    in
    if g.S.d_disj then go g.S.d_names else []
  in
  match List.concat_map pairs groups with
  | [] -> None
  | f :: rest -> Some (List.fold_left (fun acc g -> And (acc, g)) f rest)

and with_disj ~under_all groups body =
  match disj_constraint groups with
  | None -> body
  | Some d -> if under_all then Implies (d, body) else And (d, body)

and fmla (f : S.fmla) =
  match f.Loc.it with
  | S.Fcmp (op, a, b) -> (
      match (op, expr a, expr b) with
      | Ceq, Univ, Univ -> True
      | Cneq, Univ, Univ -> False
      | op, a, b -> Cmp (op, a, b))
  | S.Fmult (m, e) -> Multf (m, expr e)
  | S.Fcard (op, e, k) -> Card (op, expr e, k)
  | S.Fcard_rev (op, k, e) -> Card (flip_intcmp op, expr e, k)
  | S.Fnot g -> Not (fmla g)
  | S.Fand (a, b) -> (
      (* a left [True] conjunct cannot survive printing (the block
         printer drops it from the And-spine), so fold it away here:
         without this, [univ = univ && f] breaks the parse ∘ print
         fixpoint.  [True] only arises from a literal [univ = univ],
         so real sources are unaffected. *)
      match (fmla a, fmla b) with
      | True, g -> g
      | f, g -> And (f, g))
  | S.For_ (a, b) -> Or (fmla a, fmla b)
  | S.Fimplies (a, b) -> Implies (fmla a, fmla b)
  | S.Fimplies_else (c, t, e) ->
      let c' = fmla c in
      Or (And (c', fmla t), And (Not c', fmla e))
  | S.Fiff (a, b) -> Iff (fmla a, fmla b)
  | S.Fquant (q, groups, body) ->
      let body' = with_disj ~under_all:(q = Qall) groups (fmla body) in
      Quant (q, decl_pairs groups, body')
  | S.Flet (n, v, body) -> Let (n.Loc.it, expr v, fmla body)
  | S.Fblock lines ->
      List.fold_left
        (fun acc line ->
          let g = fmla line in
          match acc with True -> g | _ -> And (acc, g))
        True lines
  | S.Fexpr e -> (
      match expr_to_call (expr e) with
      | Some call -> call
      | None ->
          Diagnostic.fail e.Loc.loc
            "this expression is not a formula (expected a comparison or a predicate call)")

(* {2 Paragraphs} *)

let field_mult cols =
  match List.rev cols with
  | (Some m, _) :: _ -> m
  | (None, _) :: _ -> if List.length cols = 1 then Mone else Mset
  | [] -> assert false

(* The statement-block fold, for generated fact bodies. *)
let conj = function
  | [] -> True
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let this_join name = Binop (Join, Rel "this", Rel name)

(* Per-atom disjointness of a [disj f, g: ...] field group:
   [all this: S | no this.f & this.g], pairwise. *)
let disj_fields_fact sig_name names =
  let rec pairs = function
    | [] -> []
    | x :: rest ->
        List.map
          (fun y -> Multf (Fno, Binop (Inter, this_join x, this_join y)))
          rest
        @ pairs rest
  in
  {
    fact_name = Some (sig_name ^ "$disj");
    fact_body = Quant (Qall, [ ("this", Rel sig_name) ], conj (pairs names));
  }

let spec (s : S.spec) =
  let warnings = ref [] in
  let warn d = warnings := d :: !warnings in
  let spans = ref [] in
  let span_of d sp = spans := (d, sp) :: !spans in
  List.iter
    (fun (o : S.open_decl) ->
      warn
        (Diagnostic.warning o.S.o_span
           "open %s is ignored: module imports are not modeled" o.S.o_path))
    s.S.sp_opens;
  let sigs = ref [] in
  let facts = ref [] in
  let preds = ref [] in
  let funs = ref [] in
  let asserts = ref [] in
  let commands = ref [] in
  let fact_idx = ref 0 in
  let cmd_idx = ref 0 in
  let push_fact span f =
    span_of (Typecheck.Dfact (!fact_idx, f.fact_name)) span;
    incr fact_idx;
    facts := f :: !facts
  in
  let elab_sig (sd : S.sig_decl) =
    (match sd.S.s_parent with
    | Some (S.Pin n) ->
        Diagnostic.fail n.Loc.loc
          "subset signatures (sig ... in ...) are not supported"
    | _ -> ());
    if List.length sd.S.s_names > 1 && sd.S.s_fields <> [] then
      Diagnostic.fail sd.S.s_span
        "a signature declaration with several names cannot declare fields";
    let parent =
      match sd.S.s_parent with
      | Some (S.Pextends p) -> Some p.Loc.it
      | _ -> None
    in
    let fields =
      List.concat_map
        (fun (f : S.field) ->
          let cols = List.map (fun (_, e) -> expr e) f.S.f_cols in
          let mult = field_mult f.S.f_cols in
          List.map
            (fun n -> { fld_name = n.Loc.it; fld_cols = cols; fld_mult = mult })
            f.S.f_names)
        sd.S.s_fields
    in
    List.iter
      (fun name ->
        let name = name.Loc.it in
        span_of (Typecheck.Dsig name) sd.S.s_span;
        sigs :=
          {
            sig_name = name;
            sig_parent = parent;
            sig_abstract = sd.S.s_abstract;
            sig_mult = sd.S.s_mult;
            sig_fields = fields;
          }
          :: !sigs;
        List.iter
          (fun (f : S.field) ->
            if f.S.f_disj && List.length f.S.f_names > 1 then
              push_fact f.S.f_span
                (disj_fields_fact name (List.map (fun n -> n.Loc.it) f.S.f_names)))
          sd.S.s_fields;
        match sd.S.s_fact with
        | Some body ->
            push_fact sd.S.s_span
              {
                fact_name = Some (name ^ "$fact");
                fact_body = Quant (Qall, [ ("this", Rel name) ], fmla body);
              }
        | None -> ())
      sd.S.s_names
  in
  let elab_params span what params =
    if List.exists (fun g -> g.S.d_disj) params then
      warn
        (Diagnostic.warning span "disj is ignored on %s parameters" what);
    decl_pairs params
  in
  List.iter
    (fun para ->
      match para with
      | S.Psig sd -> elab_sig sd
      | S.Pfact fa ->
          push_fact fa.S.fa_span
            {
              fact_name = Option.map (fun n -> n.Loc.it) fa.S.fa_name;
              fact_body = fmla fa.S.fa_body;
            }
      | S.Ppred p ->
          let name = p.S.p_name.Loc.it in
          span_of (Typecheck.Dpred name) p.S.p_span;
          (* disj parameters constrain the body, as in Alloy *)
          let body = with_disj ~under_all:false p.S.p_params (fmla p.S.p_body) in
          preds :=
            {
              pred_name = name;
              pred_params = decl_pairs p.S.p_params;
              pred_body = body;
            }
            :: !preds
      | S.Pfun f ->
          let name = f.S.fn_name.Loc.it in
          span_of (Typecheck.Dfun name) f.S.fn_span;
          funs :=
            {
              fun_name = name;
              fun_params = elab_params f.S.fn_span "function" f.S.fn_params;
              fun_result = expr (snd f.S.fn_result);
              fun_body = expr f.S.fn_body;
            }
            :: !funs
      | S.Passert a ->
          let name = a.S.a_name.Loc.it in
          span_of (Typecheck.Dassert name) a.S.a_span;
          asserts := { assert_name = name; assert_body = fmla a.S.a_body } :: !asserts
      | S.Pcommand c ->
          (match c.S.c_label with
          | Some l ->
              warn
                (Diagnostic.warning l.Loc.loc "command label %s is ignored"
                   l.Loc.it)
          | None -> ());
          let scopes =
            List.map
              (fun (exactly, name, k) ->
                if exactly then
                  warn
                    (Diagnostic.warning name.Loc.loc
                       "exactly is treated as an upper bound for %s" name.Loc.it);
                (name.Loc.it, k))
              c.S.c_scopes
          in
          let kind =
            match c.S.c_kind with
            | S.Crun_pred n -> Run_pred n.Loc.it
            | S.Crun_fmla f -> Run_fmla (fmla f)
            | S.Ccheck n -> Check n.Loc.it
          in
          span_of (Typecheck.Dcommand !cmd_idx) c.S.c_span;
          incr cmd_idx;
          commands :=
            { cmd_kind = kind; cmd_scope = c.S.c_scope; cmd_scopes = scopes }
            :: !commands)
    s.S.sp_paragraphs;
  {
    spec =
      {
        module_name = Option.map (fun n -> n.Loc.it) s.S.sp_module;
        sigs = List.rev !sigs;
        facts = List.rev !facts;
        preds = List.rev !preds;
        funs = List.rev !funs;
        asserts = List.rev !asserts;
        commands = List.rev !commands;
      };
    warnings = List.rev !warnings;
    spans = List.rev !spans;
  }
