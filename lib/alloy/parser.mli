(** Recursive-descent parser for Alloy 4.2 concrete syntax.

    Built on the position-carrying {!Lexer}; produces the located
    {!Surface} AST, or (via {!Elab}) the kernel {!Ast.t} directly.
    Operator precedence follows Alloy: negation binds tightest, then
    [&&], then [=>]/[implies] (right-associative, with optional [else]),
    then [<=>], then [||]; quantifier bodies extend as far right as
    possible.

    All entry points raise {!Diagnostic.Error} with a positioned message
    on malformed input; [file] (default ["<string>"]) names the source
    in spans. *)

val parse_surface : ?file:string -> string -> Surface.spec
(** Parses a complete specification to the located surface AST. *)

val parse_surface_fmla : ?file:string -> string -> Surface.fmla
val parse_surface_expr : ?file:string -> string -> Surface.expr

val parse : ?file:string -> string -> Ast.spec
(** [Elab.spec] composed over {!parse_surface}, discarding warnings.
    Use {!Frontend.check} when warnings or declaration spans matter. *)

val parse_fmla : ?file:string -> string -> Ast.fmla
(** Parses a single formula (used by tests and by the LLM response
    extractor). *)

val parse_expr : ?file:string -> string -> Ast.expr
(** Parses a single relational expression. *)
