(** Name resolution and arity checking for Mini-Alloy specifications.

    Produces an environment consumed by the evaluator and the bounded model
    finder: signature hierarchy (parents before children), relation arities,
    and field ownership.

    Restrictions enforced beyond well-formedness: field names are globally
    unique (name-based resolution, no overloading), quantified variables and
    predicate parameters range over arity-1 expressions, and [extends]
    hierarchies are acyclic. *)

exception Type_error of string

(** The declaration a type error was found in; facts and commands are
    identified by position since they can be anonymous. *)
type decl =
  | Dsig of string
  | Dfact of int * string option
  | Dpred of string
  | Dfun of string
  | Dassert of string
  | Dcommand of int

val decl_to_string : decl -> string
(** ["pred p"], ["fact #2"], ... — as used in error messages. *)

type env = {
  spec : Ast.spec;
  sig_order : string list;  (** all signature names, parents first *)
  top_sigs : string list;  (** signatures without a parent *)
  arity : (string, int) Hashtbl.t;  (** sigs (1) and fields (1 + #cols) *)
  owner : (string, string) Hashtbl.t;  (** field name -> declaring sig *)
  children : (string, string list) Hashtbl.t;  (** sig -> direct subsigs *)
}

val check : Ast.spec -> env
(** Full check of a specification; raises {!Type_error} with a message
    naming the offending construct and its enclosing declaration. *)

val check_result : Ast.spec -> (env, string) result

val check_named : Ast.spec -> (env, decl option * string) result
(** Like {!check_result}, but the enclosing declaration is returned
    separately, for callers that map it to a source span (see
    {!Frontend}). *)

val expr_arity : env -> (string * int) list -> Ast.expr -> int
(** [expr_arity env vars e] is the arity of [e] where [vars] gives arities
    of bound variables in scope; raises {!Type_error} on ill-formed
    expressions. *)

val root_of : env -> string -> string
(** [root_of env s] is the top-level ancestor of signature [s]. *)

val descendants : env -> string -> string list
(** A signature together with all its transitive subsignatures. *)
