open Ast

let mult_to_string = function
  | Mone -> "one"
  | Mlone -> "lone"
  | Msome -> "some"
  | Mset -> "set"

let fmult_to_string = function
  | Fno -> "no"
  | Fsome -> "some"
  | Flone -> "lone"
  | Fone -> "one"

let quant_to_string = function
  | Qall -> "all"
  | Qsome -> "some"
  | Qno -> "no"
  | Qlone -> "lone"
  | Qone -> "one"

let unop_to_string = function
  | Transpose -> "~"
  | Closure -> "^"
  | Rclosure -> "*"

(* Binding strength of expression operators; see the parser for the
   grammar.  Higher binds tighter. *)
let binop_level = function
  | Union | Diff -> 1
  | Override -> 2
  | Inter -> 3
  | Product -> 4
  | Domrestr | Ranrestr -> 5
  | Join -> 6

let binop_to_string = function
  | Join -> "."
  | Product -> "->"
  | Union -> "+"
  | Diff -> "-"
  | Inter -> "&"
  | Override -> "++"
  | Domrestr -> "<:"
  | Ranrestr -> ":>"

let cmpop_to_string = function
  | Cin -> "in"
  | Cnotin -> "not in"
  | Ceq -> "="
  | Cneq -> "!="

let intcmp_to_string = function
  | Ilt -> "<"
  | Ile -> "<="
  | Ieq -> "="
  | Ineq -> "!="
  | Ige -> ">="
  | Igt -> ">"

let buffer_with f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* {2 Expressions} *)

let rec pp_expr_level lvl ppf e =
  match e with
  | Rel n -> Format.pp_print_string ppf n
  | Univ -> Format.pp_print_string ppf "univ"
  | Iden -> Format.pp_print_string ppf "iden"
  | None_ -> Format.pp_print_string ppf "none"
  | Unop (op, inner) ->
      if lvl > 7 then
        Format.fprintf ppf "(%s%a)" (unop_to_string op) (pp_expr_level 7) inner
      else Format.fprintf ppf "%s%a" (unop_to_string op) (pp_expr_level 7) inner
  | Binop (op, a, b) ->
      let l = binop_level op in
      let body ppf () =
        if op = Join then
          Format.fprintf ppf "%a.%a" (pp_expr_level l) a (pp_expr_level (l + 1)) b
        else
          Format.fprintf ppf "%a %s %a" (pp_expr_level l) a (binop_to_string op)
            (pp_expr_level (l + 1)) b
      in
      if l < lvl then Format.fprintf ppf "(%a)" body ()
      else body ppf ()
  | Ite (c, a, b) ->
      Format.fprintf ppf "(%a => %a else %a)" pp_fmla_level_0 c
        (pp_expr_level 0) a (pp_expr_level 0) b
  | Compr (decls, body) ->
      Format.fprintf ppf "{ %a | %a }" pp_decls decls pp_fmla_level_0 body

and pp_expr ppf e = pp_expr_level 0 ppf e

(* {2 Formulas}

   Levels, loosest first: 0 quantified, 1 ||, 2 <=>, 3 =>, 4 &&, 5 !,
   6 atoms. *)

and pp_fmla_level lvl ppf f =
  let paren_if cond body =
    if cond then Format.fprintf ppf "(%t)" body else body ppf
  in
  match f with
  | True -> Format.pp_print_string ppf "univ = univ"
  | False -> Format.pp_print_string ppf "univ != univ"
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" (pp_expr_level 0) a (cmpop_to_string op)
        (pp_expr_level 0) b
  | Multf (m, e) ->
      Format.fprintf ppf "%s %a" (fmult_to_string m) (pp_expr_level 0) e
  | Card (op, e, k) ->
      Format.fprintf ppf "#%a %s %d" (pp_expr_level 6) e (intcmp_to_string op) k
  | Not inner ->
      paren_if (lvl > 5) (fun ppf ->
          Format.fprintf ppf "!%a" (pp_fmla_level 5) inner)
  | And (a, b) ->
      paren_if (lvl > 4) (fun ppf ->
          Format.fprintf ppf "%a && %a" (pp_fmla_level 4) a (pp_fmla_level 5) b)
  | Implies (a, b) ->
      paren_if (lvl > 3) (fun ppf ->
          Format.fprintf ppf "%a => %a" (pp_fmla_level 4) a (pp_fmla_level 3) b)
  | Iff (a, b) ->
      paren_if (lvl > 2) (fun ppf ->
          Format.fprintf ppf "%a <=> %a" (pp_fmla_level 2) a (pp_fmla_level 3) b)
  | Or (a, b) ->
      paren_if (lvl > 1) (fun ppf ->
          Format.fprintf ppf "%a || %a" (pp_fmla_level 1) a (pp_fmla_level 2) b)
  | Quant (q, decls, body) ->
      paren_if (lvl > 0) (fun ppf ->
          Format.fprintf ppf "%s %a | %a" (quant_to_string q) pp_decls decls
            (pp_fmla_level 0) body)
  | Let (name, value, body) ->
      paren_if (lvl > 0) (fun ppf ->
          Format.fprintf ppf "let %s = %a | %a" name (pp_expr_level 0) value
            (pp_fmla_level 0) body)
  | Call (name, []) -> Format.pp_print_string ppf name
  | Call (name, args) ->
      Format.fprintf ppf "%s[%a]" name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_expr_level 0))
        args

and pp_fmla_level_0 ppf f = pp_fmla_level 0 ppf f

and pp_decls ppf decls =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (name, bound) ->
      Format.fprintf ppf "%s: %a" name (pp_expr_level 0) bound)
    ppf decls

and pp_fmla ppf f = pp_fmla_level 0 ppf f

(* Flatten the left spine of conjunctions: a fact body parsed from a block
   of statements refolds to the same AST. *)
let rec block_lines = function
  | And (a, b) -> block_lines a @ [ b ]
  | True -> []
  | f -> [ f ]

let pp_block ppf body =
  match block_lines body with
  | [] -> Format.fprintf ppf "{ }"
  | lines ->
      Format.fprintf ppf "{@\n";
      List.iter (fun f -> Format.fprintf ppf "  %a@\n" pp_fmla f) lines;
      Format.fprintf ppf "}"

(* {2 Paragraphs} *)

let pp_field ppf { fld_name; fld_cols; fld_mult } =
  (* columns print at restriction level (parenthesised below it), matching
     the parser, which treats arrows as column breaks *)
  let pp_col = pp_expr_level 5 in
  let rec pp_cols ppf = function
    | [] -> ()
    | [ last ] -> (
        match (fld_cols, fld_mult) with
        | [ _ ], Mone -> pp_col ppf last (* default for binary fields *)
        | _ :: _ :: _, Mset -> pp_col ppf last (* default for higher arity *)
        | _ ->
            Format.fprintf ppf "%s %a" (mult_to_string fld_mult) pp_col last)
    | col :: rest ->
        Format.fprintf ppf "%a -> " pp_col col;
        pp_cols ppf rest
  in
  Format.fprintf ppf "%s: %a" fld_name pp_cols fld_cols

let pp_sig ppf s =
  if s.sig_abstract then Format.pp_print_string ppf "abstract ";
  (match s.sig_mult with
  | Mset -> ()
  | m -> Format.fprintf ppf "%s " (mult_to_string m));
  Format.fprintf ppf "sig %s" s.sig_name;
  (match s.sig_parent with
  | Some p -> Format.fprintf ppf " extends %s" p
  | None -> ());
  match s.sig_fields with
  | [] -> Format.fprintf ppf " {}@\n"
  | fields ->
      Format.fprintf ppf " {@\n";
      let rec loop = function
        | [] -> ()
        | [ f ] -> Format.fprintf ppf "  %a@\n" pp_field f
        | f :: rest ->
            Format.fprintf ppf "  %a,@\n" pp_field f;
            loop rest
      in
      loop fields;
      Format.fprintf ppf "}@\n"

let pp_scopes ppf (scope, overrides) =
  Format.fprintf ppf " for %d" scope;
  match overrides with
  | [] -> ()
  | _ ->
      Format.fprintf ppf " but %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (name, k) -> Format.fprintf ppf "%d %s" k name))
        overrides

let pp_command ppf c =
  (match c.cmd_kind with
  | Run_pred name -> Format.fprintf ppf "run %s" name
  | Run_fmla f -> Format.fprintf ppf "run %a" pp_block f
  | Check name -> Format.fprintf ppf "check %s" name);
  pp_scopes ppf (c.cmd_scope, c.cmd_scopes);
  Format.fprintf ppf "@\n"

let pp_spec ppf spec =
  (match spec.module_name with
  | Some n -> Format.fprintf ppf "module %s@\n@\n" n
  | None -> ());
  List.iter (pp_sig ppf) spec.sigs;
  List.iter
    (fun f ->
      match f.fact_name with
      | Some n -> Format.fprintf ppf "@\nfact %s %a@\n" n pp_block f.fact_body
      | None -> Format.fprintf ppf "@\nfact %a@\n" pp_block f.fact_body)
    spec.facts;
  List.iter
    (fun (f : Ast.fun_decl) ->
      Format.fprintf ppf "@\nfun %s[%a]: %a {@\n  %a@\n}@\n" f.fun_name
        pp_decls f.fun_params pp_expr f.fun_result pp_expr f.fun_body)
    spec.funs;
  List.iter
    (fun p ->
      match p.pred_params with
      | [] ->
          Format.fprintf ppf "@\npred %s %a@\n" p.pred_name pp_block p.pred_body
      | params ->
          Format.fprintf ppf "@\npred %s[%a] %a@\n" p.pred_name pp_decls params
            pp_block p.pred_body)
    spec.preds;
  List.iter
    (fun a ->
      Format.fprintf ppf "@\nassert %s %a@\n" a.assert_name pp_block
        a.assert_body)
    spec.asserts;
  (match spec.commands with [] -> () | _ -> Format.fprintf ppf "@\n");
  List.iter (pp_command ppf) spec.commands

let expr_to_string e = buffer_with (fun ppf -> pp_expr ppf e)
let fmla_to_string f = buffer_with (fun ppf -> pp_fmla ppf f)
let spec_to_string s = buffer_with (fun ppf -> pp_spec ppf s)

(* Concrete Alloy 4.2 source for a kernel spec.  The contract with the
   frontend is the round-trip fixpoint: [Parser.parse (source s)] equals
   [s] for any parser-produced [s].  [True]/[False] print as
   [univ = univ] / [univ != univ], which elaboration folds back to the
   boolean constants. *)
let source = spec_to_string
