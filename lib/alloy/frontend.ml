(* The frontend pipeline, end to end: lex → parse → elaborate →
   typecheck, every failure a positioned {!Diagnostic.t}.

   Typecheck errors carry no spans of their own (the kernel AST is
   position-free); they are mapped back to source through the
   declaration-span table built during elaboration, so a bad join deep
   inside a predicate still points at that predicate's source range. *)

type ok = {
  surface : Surface.spec;
  spec : Ast.spec;
  env : Typecheck.env;
  warnings : Diagnostic.t list;
  spans : (Typecheck.decl * Loc.span) list;
}

(* Fallback span for errors with no better anchor: the first character
   of the file. *)
let file_span file =
  Loc.make ~file ~start_line:1 ~start_col:1 ~end_line:1 ~end_col:1

let decl_span ~file spans = function
  | Some d -> (
      match List.assoc_opt d spans with
      | Some span -> span
      | None -> file_span file)
  | None -> file_span file

let check ?(file = "<string>") src =
  match
    let surface = Parser.parse_surface ~file src in
    let { Elab.spec; warnings; spans } = Elab.spec surface in
    match Typecheck.check_named spec with
    | Ok env -> Ok { surface; spec; env; warnings; spans }
    | Error (decl, msg) ->
        let notes =
          match decl with
          | Some d -> [ "in " ^ Typecheck.decl_to_string d ]
          | None -> []
        in
        Error (Diagnostic.error ~notes (decl_span ~file spans decl) "%s" msg)
  with
  | result -> result
  | exception Diagnostic.Error d -> Error d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file path = check ~file:path (read_file path)
