(* ocamllex lexer for Alloy 4.2 concrete syntax.

   Position tracking rides on [Lexing]: every newline calls
   [Lexing.new_line], so token spans (file, line, column) come straight
   from the lexbuf and feed {!Loc.of_lexbuf}.  Malformed input raises
   {!Diagnostic.Error} with the exact offending span — there is no
   stringly error path left. *)

{
let keywords = Hashtbl.create 64

let () =
  List.iter
    (fun (w, t) -> Hashtbl.replace keywords w t)
    [
      ("module", Token.Tmodule);
      ("open", Token.Topen);
      ("as", Token.Tas);
      ("sig", Token.Tsig);
      ("abstract", Token.Tabstract);
      ("extends", Token.Textends);
      ("one", Token.Tone);
      ("lone", Token.Tlone);
      ("some", Token.Tsome);
      ("set", Token.Tset);
      ("all", Token.Tall);
      ("no", Token.Tno);
      ("disj", Token.Tdisj);
      ("exactly", Token.Texactly);
      ("fact", Token.Tfact);
      ("pred", Token.Tpred);
      ("fun", Token.Tfun);
      ("let", Token.Tlet);
      ("assert", Token.Tassert);
      ("check", Token.Tcheck);
      ("run", Token.Trun);
      ("for", Token.Tfor);
      ("but", Token.Tbut);
      ("in", Token.Tin);
      ("not", Token.Tnot);
      ("and", Token.Tand);
      ("or", Token.Tor);
      ("implies", Token.Timplies);
      ("iff", Token.Tiff);
      ("else", Token.Telse);
      ("univ", Token.Tuniv);
      ("iden", Token.Tiden);
      ("none", Token.Tnone);
    ]

let fail lexbuf fmt = Diagnostic.fail (Loc.of_lexbuf lexbuf) fmt
}

(* '$' admits atom names such as Node$0, which the evaluator resolves to
   singleton sets (as in the Alloy evaluator REPL); '\'' admits primed
   names common in dynamic-model idioms. *)
let ident_start = ['a'-'z' 'A'-'Z' '_']
let ident_char = ['a'-'z' 'A'-'Z' '0'-'9' '_' '\'' '$']
let digit = ['0'-'9']

rule read = parse
  | [' ' '\t' '\r']+      { read lexbuf }
  | '\n'                  { Lexing.new_line lexbuf; read lexbuf }
  | "//" [^ '\n']*        { read lexbuf }
  | "--" [^ '\n']*        { read lexbuf }
  | "/*"                  { block_comment (Loc.of_lexbuf lexbuf) lexbuf; read lexbuf }
  | ident_start ident_char* as word
      { match Hashtbl.find_opt keywords word with
        | Some kw -> kw
        | None -> Token.Tident word }
  | digit+ as num
      { match int_of_string_opt num with
        | Some k -> Token.Tint k
        | None -> fail lexbuf "integer literal %s is out of range" num }
  | "<=>"                 { Token.Tiffarrow }
  | "++"                  { Token.Tplusplus }
  | "->"                  { Token.Tarrow }
  | "<:"                  { Token.Tdomres }
  | ":>"                  { Token.Tranres }
  | "!="                  { Token.Tneq }
  (* Alloy 4.2 writes less-or-equal [=<]; the historical Mini-Alloy
     spelling [<=] is accepted as a synonym. *)
  | "=<"                  { Token.Tle }
  | "<="                  { Token.Tle }
  | ">="                  { Token.Tge }
  | "&&"                  { Token.Tampamp }
  | "||"                  { Token.Tbarbar }
  | "=>"                  { Token.Tfatarrow }
  | '{'                   { Token.Tlbrace }
  | '}'                   { Token.Trbrace }
  | '['                   { Token.Tlbrack }
  | ']'                   { Token.Trbrack }
  | '('                   { Token.Tlparen }
  | ')'                   { Token.Trparen }
  | ':'                   { Token.Tcolon }
  | ','                   { Token.Tcomma }
  | '.'                   { Token.Tdot }
  | '|'                   { Token.Tbar }
  | '/'                   { Token.Tslash }
  | '+'                   { Token.Tplus }
  | '-'                   { Token.Tminus }
  | '&'                   { Token.Tamp }
  | '~'                   { Token.Ttilde }
  | '^'                   { Token.Tcaret }
  | '*'                   { Token.Tstar }
  | '#'                   { Token.Thash }
  | '='                   { Token.Teq }
  | '<'                   { Token.Tlt }
  | '>'                   { Token.Tgt }
  | '!'                   { Token.Tbang }
  | eof                   { Token.Teof }
  | _ as c                { fail lexbuf "unexpected character %C" c }

and block_comment start = parse
  | "*/"                  { () }
  | '\n'                  { Lexing.new_line lexbuf; block_comment start lexbuf }
  | eof                   { raise (Diagnostic.Error
                              (Diagnostic.error start "unterminated block comment")) }
  | _                     { block_comment start lexbuf }

{
(* {2 Driver} *)

let lexbuf_of ?(file = "<string>") src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  lexbuf

(* The whole token stream of [src], spans included, ending with a
   [Teof] whose span sits at the end of input. *)
let tokenize ?file src =
  let lexbuf = lexbuf_of ?file src in
  let rec go acc =
    let tok = read lexbuf in
    let span = Loc.of_lexbuf lexbuf in
    if tok = Token.Teof then List.rev ((tok, span) :: acc)
    else go ((tok, span) :: acc)
  in
  Array.of_list (go [])
}
