(** Pretty printer for Mini-Alloy.

    Output is stable and re-parseable: [Parser.parse (spec_to_string s)]
    yields a spec structurally equal to [s] (modulo the [implies-else]
    sugar, which the parser desugars).  The printed token stream is also the
    input to the Token-Match metric, so formatting is deterministic. *)

val mult_to_string : Ast.mult -> string
val fmult_to_string : Ast.fmult -> string
val quant_to_string : Ast.quant -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_fmla : Format.formatter -> Ast.fmla -> unit
val pp_spec : Format.formatter -> Ast.spec -> unit

val expr_to_string : Ast.expr -> string
val fmla_to_string : Ast.fmla -> string
val spec_to_string : Ast.spec -> string

val source : Ast.spec -> string
(** Concrete Alloy 4.2 source.  Round-trip contract:
    [Parser.parse (source s)] is structurally equal to [s] for any
    parser-produced [s] (parse ∘ print ∘ parse is a fixpoint). *)
