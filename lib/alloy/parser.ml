(* Recursive-descent parser for Alloy 4.2 concrete syntax, over the
   position-carrying token stream of {!Lexer}.  Produces the located
   {!Surface} AST; {!Elab} lowers that to the kernel {!Ast.t}.

   The grammar is not LALR(1) — [some x: A | f] vs the multiplicity
   formula [some e], and parenthesised formulas vs parenthesised
   expressions opening a comparison, both need unbounded lookahead or
   backtracking — which is why this stays hand-written recursive
   descent rather than a generated parser (menhir is additionally not
   part of the build environment; see DESIGN.md).

   Precedence, tightest first, for expressions: unary [~ ^ *], join
   [. and box []], restriction [<: :>], product [->], intersection [&],
   override [++], union/difference [+ -].  For formulas, loosest first:
   quantifiers/let, [||], [<=>], [=>] (right-assoc, with [else]), [&&],
   [! not].

   All errors are positioned: malformed input raises {!Diagnostic.Error}
   carrying the span of the offending token. *)

open Token

type state = { tokens : (Token.t * Loc.span) array; mutable pos : int }

let current st = fst st.tokens.(st.pos)
let current_span st = snd st.tokens.(st.pos)
let prev_span st = snd st.tokens.(max 0 (st.pos - 1))

let peek_at st k =
  let i = st.pos + k in
  if i < Array.length st.tokens then fst st.tokens.(i) else Teof

let advance st = st.pos <- st.pos + 1

let fail st msg =
  Diagnostic.fail (current_span st) "%s (found %s)" msg
    (Token.to_string (current st))

let expect st tok msg =
  if current st = tok then advance st else fail st ("expected " ^ msg)

let expect_ident st msg =
  match current st with
  | Tident s ->
      let span = current_span st in
      advance st;
      Loc.locate s span
  | _ -> fail st ("expected " ^ msg)

let accept st tok =
  if current st = tok then begin
    advance st;
    true
  end
  else false

let mk it loc = Loc.locate it loc
let loc_of (n : _ Loc.located) = n.Loc.loc

(* Is the upcoming token sequence a quantifier declaration, i.e.
   ident (, ident)* : ...?  Distinguishes "some x: A | f" from "some e". *)
let rec looks_like_decls st k =
  match peek_at st k with
  | Tident _ -> (
      match peek_at st (k + 1) with
      | Tcolon -> true
      | Tcomma -> looks_like_decls st (k + 2)
      | _ -> false)
  | _ -> false

(* A quantifier keyword opens declarations when followed by [disj] or by
   a name list ending in a colon. *)
let opens_decls st =
  (peek_at st 1 = Tdisj && looks_like_decls st 2) || looks_like_decls st 1

let quant_of_token = function
  | Tall -> Some Ast.Qall
  | Tsome -> Some Ast.Qsome
  | Tno -> Some Ast.Qno
  | Tlone -> Some Ast.Qlone
  | Tone -> Some Ast.Qone
  | _ -> None

let fmult_of_token = function
  | Tno -> Some Ast.Fno
  | Tsome -> Some Ast.Fsome
  | Tlone -> Some Ast.Flone
  | Tone -> Some Ast.Fone
  | _ -> None

let intcmp_of_token = function
  | Teq -> Some Ast.Ieq
  | Tneq -> Some Ast.Ineq
  | Tlt -> Some Ast.Ilt
  | Tle -> Some Ast.Ile
  | Tgt -> Some Ast.Igt
  | Tge -> Some Ast.Ige
  | _ -> None

(* A possibly qualified name, [a/b/c], as used by module headers and
   open declarations. *)
let parse_qname st what =
  let first = expect_ident st what in
  let rec loop acc span =
    if current st = Tslash then begin
      advance st;
      let next = expect_ident st what in
      loop (acc ^ "/" ^ next.Loc.it) (Loc.merge span (loc_of next))
    end
    else mk acc span
  in
  loop first.Loc.it (loc_of first)

(* {2 Expressions} *)

let rec parse_expr_prec st = parse_union st

and binop_chain st next table =
  let rec loop acc =
    match List.assoc_opt (current st) table with
    | Some op ->
        advance st;
        let rhs = next st in
        loop (mk (Surface.Ebinop (op, acc, rhs)) (Loc.merge (loc_of acc) (loc_of rhs)))
    | None -> acc
  in
  loop (next st)

and parse_union st =
  binop_chain st parse_override [ (Tplus, Ast.Union); (Tminus, Ast.Diff) ]

and parse_override st = binop_chain st parse_inter [ (Tplusplus, Ast.Override) ]
and parse_inter st = binop_chain st parse_product [ (Tamp, Ast.Inter) ]

and parse_product st =
  (* field declarations also use ->, but those are parsed separately *)
  binop_chain st parse_restrict [ (Tarrow, Ast.Product) ]

and parse_restrict st =
  binop_chain st parse_join
    [ (Tdomres, Ast.Domrestr); (Tranres, Ast.Ranrestr) ]

and parse_join st =
  let rec loop acc =
    if accept st Tdot then
      let rhs = parse_unary st in
      loop (mk (Surface.Ebinop (Ast.Join, acc, rhs)) (Loc.merge (loc_of acc) (loc_of rhs)))
    else if current st = Tlbrack then begin
      (* box join: e[a, b] = b.(a.e) *)
      advance st;
      let args = parse_expr_list st in
      expect st Trbrack "]";
      loop (mk (Surface.Ebox (acc, args)) (Loc.merge (loc_of acc) (prev_span st)))
    end
    else acc
  in
  loop (parse_unary st)

and parse_unary st =
  let unop op =
    let span = current_span st in
    advance st;
    let inner = parse_unary st in
    mk (Surface.Eunop (op, inner)) (Loc.merge span (loc_of inner))
  in
  match current st with
  | Ttilde -> unop Ast.Transpose
  | Tcaret -> unop Ast.Closure
  | Tstar -> unop Ast.Rclosure
  | _ -> parse_primary st

and parse_primary st =
  let span = current_span st in
  match current st with
  | Tlbrace ->
      (* set comprehension: { x: A, y: B | f } *)
      advance st;
      let decls = parse_decl_groups st in
      expect st Tbar "|";
      let body = parse_fmla_prec st in
      expect st Trbrace "}";
      mk (Surface.Ecompr (decls, body)) (Loc.merge span (prev_span st))
  | Tident name ->
      advance st;
      mk (Surface.Ename name) span
  | Tuniv ->
      advance st;
      mk Surface.Euniv span
  | Tiden ->
      advance st;
      mk Surface.Eiden span
  | Tnone ->
      advance st;
      mk Surface.Enone span
  | Tlparen ->
      advance st;
      let e = parse_expr_prec st in
      expect st Trparen ")";
      mk e.Loc.it (Loc.merge span (prev_span st))
  | _ -> fail st "expected an expression"

and parse_expr_list st =
  let e = parse_expr_prec st in
  if accept st Tcomma then e :: parse_expr_list st else [ e ]

(* decls := disj? names ':' expr (',' decls)?   names := ident (',' ident)*
   Commas before the colon separate names of one group; a comma after a
   bound starts a fresh group. *)
and parse_decl_groups st =
  let rec group () =
    let disj = accept st Tdisj in
    let rec names acc =
      let n = expect_ident st "variable name" in
      let acc = n :: acc in
      if accept st Tcomma then names acc else acc
    in
    let names = List.rev (names []) in
    expect st Tcolon ":";
    let bound = parse_expr_prec st in
    let g = { Surface.d_disj = disj; d_names = names; d_bound = bound } in
    if accept st Tcomma then g :: group () else [ g ]
  in
  group ()

(* {2 Formulas} *)

and parse_fmla_prec st = parse_or st

and fmla_chain st next toks build =
  let rec loop acc =
    if List.mem (current st) toks then begin
      advance st;
      let rhs = next st in
      loop (mk (build acc rhs) (Loc.merge (loc_of acc) (loc_of rhs)))
    end
    else acc
  in
  loop (next st)

and parse_or st =
  fmla_chain st parse_iff [ Tbarbar; Tor ] (fun a b -> Surface.For_ (a, b))

and parse_iff st =
  fmla_chain st parse_implies [ Tiffarrow; Tiff ] (fun a b -> Surface.Fiff (a, b))

and parse_implies st =
  let lhs = parse_and st in
  if accept st Tfatarrow || accept st Timplies then begin
    let thn = parse_implies st in
    if accept st Telse then
      let els = parse_implies st in
      mk (Surface.Fimplies_else (lhs, thn, els)) (Loc.merge (loc_of lhs) (loc_of els))
    else mk (Surface.Fimplies (lhs, thn)) (Loc.merge (loc_of lhs) (loc_of thn))
  end
  else lhs

and parse_and st =
  fmla_chain st parse_neg [ Tampamp; Tand ] (fun a b -> Surface.Fand (a, b))

and parse_neg st =
  if current st = Tbang || current st = Tnot then begin
    let span = current_span st in
    advance st;
    let inner = parse_neg st in
    mk (Surface.Fnot inner) (Loc.merge span (loc_of inner))
  end
  else parse_atom st

and parse_quantified st quant start =
  let decls = parse_decl_groups st in
  let body =
    if accept st Tbar then parse_fmla_prec st
    else if current st = Tlbrace then parse_block st
    else fail st "expected | or { after quantifier declarations"
  in
  mk (Surface.Fquant (quant, decls, body)) (Loc.merge start (loc_of body))

and parse_atom st =
  let span = current_span st in
  match current st with
  | Tlet ->
      (* let x = e (, y = e')* (| f | { f }) — chained bindings nest *)
      advance st;
      let rec bindings () =
        let name = expect_ident st "let-bound name" in
        expect st Teq "=";
        let value = parse_expr_prec st in
        if accept st Tcomma then (name, value) :: bindings ()
        else [ (name, value) ]
      in
      let binds = bindings () in
      let body =
        if accept st Tbar then parse_fmla_prec st
        else if current st = Tlbrace then parse_block st
        else fail st "expected | or { after let binding"
      in
      List.fold_right
        (fun (name, value) body ->
          mk (Surface.Flet (name, value, body)) (Loc.merge span (loc_of body)))
        binds body
  | Tlbrace
    when looks_like_decls st 1 || (peek_at st 1 = Tdisj && looks_like_decls st 2)
    ->
      (* a comprehension expression opening a comparison *)
      parse_comparison st
  | Tlbrace -> parse_block st
  | Tall | Tsome | Tno | Tlone | Tone -> (
      let tok = current st in
      if opens_decls st then begin
        advance st;
        match quant_of_token tok with
        | Some q -> parse_quantified st q span
        | None -> assert false
      end
      else
        match fmult_of_token tok with
        | Some m ->
            advance st;
            let e = parse_expr_prec st in
            mk (Surface.Fmult (m, e)) (Loc.merge span (loc_of e))
        | None -> fail st "'all' requires variable declarations")
  | Thash ->
      (* #e op k *)
      advance st;
      let e = parse_expr_prec st in
      let op =
        match intcmp_of_token (current st) with
        | Some op -> op
        | None -> fail st "expected a comparison operator after #expr"
      in
      advance st;
      (match current st with
      | Tint k ->
          advance st;
          mk (Surface.Fcard (op, e, k)) (Loc.merge span (prev_span st))
      | _ -> fail st "expected an integer literal in cardinality comparison")
  | Tint k ->
      (* k op #e — the reversed spelling of a cardinality bound *)
      advance st;
      let op =
        match intcmp_of_token (current st) with
        | Some op -> op
        | None -> fail st "expected a comparison operator after an integer"
      in
      advance st;
      expect st Thash "# in cardinality comparison";
      let e = parse_expr_prec st in
      mk (Surface.Fcard_rev (op, k, e)) (Loc.merge span (loc_of e))
  | Tlparen ->
      (* Could be a parenthesised formula or a parenthesised expression that
         begins a comparison.  Try the formula reading first; back off when
         it fails, or when the closing paren is followed by a token that can
         only continue an expression. *)
      let saved = st.pos in
      let as_formula =
        try
          advance st;
          let f = parse_fmla_prec st in
          expect st Trparen ")";
          Some f
        with Diagnostic.Error _ -> None
      in
      let continues_expr () =
        match current st with
        | Teq | Tneq | Tin | Tdot | Tlbrack | Tarrow | Tplus | Tminus | Tamp
        | Tplusplus | Tdomres | Tranres ->
            true
        | Tnot | Tbang -> peek_at st 1 = Tin
        | _ -> false
      in
      (match as_formula with
      | Some f when not (continues_expr ()) -> f
      | _ ->
          st.pos <- saved;
          parse_comparison st)
  | _ -> parse_comparison st

and parse_block st =
  let span = current_span st in
  expect st Tlbrace "{";
  let rec loop acc =
    if accept st Trbrace then List.rev acc
    else loop (parse_fmla_prec st :: acc)
  in
  let lines = loop [] in
  mk (Surface.Fblock lines) (Loc.merge span (prev_span st))

(* expr (in | not in | = | !=) expr, or a bare expression (which must
   later elaborate to a predicate call) *)
and parse_comparison st =
  let lhs = parse_expr_prec st in
  let cmp op =
    advance st;
    let rhs = parse_expr_prec st in
    mk (Surface.Fcmp (op, lhs, rhs)) (Loc.merge (loc_of lhs) (loc_of rhs))
  in
  match current st with
  | Tin -> cmp Ast.Cin
  | Tnot | Tbang when peek_at st 1 = Tin ->
      advance st;
      cmp Ast.Cnotin
  | Teq -> cmp Ast.Ceq
  | Tneq -> cmp Ast.Cneq
  | _ -> mk (Surface.Fexpr lhs) (loc_of lhs)

(* {2 Paragraphs} *)

let parse_mult_opt st =
  match current st with
  | Tone ->
      advance st;
      Some Ast.Mone
  | Tlone ->
      advance st;
      Some Ast.Mlone
  | Tsome ->
      advance st;
      Some Ast.Msome
  | Tset ->
      advance st;
      Some Ast.Mset
  | _ -> None

(* field declaration: disj? names : [mult] col (-> [mult] col)* *)
let parse_field st =
  let span = current_span st in
  let disj = accept st Tdisj in
  let rec names acc =
    let n = expect_ident st "field name" in
    let acc = n :: acc in
    if accept st Tcomma then names acc else acc
  in
  let names = List.rev (names []) in
  expect st Tcolon ":";
  let rec cols acc =
    let m = parse_mult_opt st in
    (* columns parse at restriction level so arrows remain column breaks;
       looser column expressions require parentheses *)
    let col = parse_restrict st in
    if accept st Tarrow then cols ((m, col) :: acc) else List.rev ((m, col) :: acc)
  in
  let cols = cols [] in
  {
    Surface.f_disj = disj;
    f_names = names;
    f_cols = cols;
    f_span = Loc.merge span (prev_span st);
  }

let parse_sig st ~start ~is_abstract ~mult =
  expect st Tsig "sig";
  let rec sig_names acc =
    let n = expect_ident st "signature name" in
    let acc = n :: acc in
    if accept st Tcomma then sig_names acc else acc
  in
  let names = List.rev (sig_names []) in
  let parent =
    if accept st Textends then
      Some (Surface.Pextends (expect_ident st "parent signature name"))
    else if accept st Tin then
      Some (Surface.Pin (expect_ident st "superset signature name"))
    else None
  in
  expect st Tlbrace "{";
  let fields = ref [] in
  if not (accept st Trbrace) then begin
    let rec loop () =
      fields := parse_field st :: !fields;
      if accept st Tcomma then loop () else expect st Trbrace "}"
    in
    loop ()
  end;
  (* an appended block is the signature fact *)
  let sfact = if current st = Tlbrace then Some (parse_block st) else None in
  {
    Surface.s_names = names;
    s_parent = parent;
    s_abstract = is_abstract;
    s_mult = mult;
    s_fields = List.rev !fields;
    s_fact = sfact;
    s_span = Loc.merge start (prev_span st);
  }

let parse_params st close =
  let params = if current st = close then [] else parse_decl_groups st in
  expect st close (if close = Trbrack then "]" else ")");
  params

let parse_scopes st =
  (* scopes := for INT (but sig-scopes)? | for sig-scopes
     sig-scopes := exactly? INT SigName (',' exactly? INT SigName)* *)
  let parse_sig_scopes st =
    let overrides = ref [] in
    let rec loop () =
      let exactly = accept st Texactly in
      (match current st with
      | Tint k ->
          advance st;
          let name = expect_ident st "signature name" in
          overrides := (exactly, name, k) :: !overrides
      | _ -> fail st "expected INT SigName in scope override");
      if accept st Tcomma then loop ()
    in
    loop ();
    List.rev !overrides
  in
  let is_sig_scope_start st =
    match current st with
    | Texactly -> true
    | Tint _ -> ( match peek_at st 1 with Tident _ -> true | _ -> false)
    | _ -> false
  in
  if accept st Tfor then
    if is_sig_scope_start st then (3, parse_sig_scopes st)
    else
      match current st with
      | Tint k ->
          advance st;
          let overrides = if accept st Tbut then parse_sig_scopes st else [] in
          (k, overrides)
      | _ -> fail st "expected a scope"
  else (3, [])

let parse_command st ~start ~label =
  let kind =
    match current st with
    | Trun -> (
        advance st;
        match current st with
        | Tident _ -> Surface.Crun_pred (expect_ident st "predicate name")
        | Tlbrace -> Surface.Crun_fmla (parse_block st)
        | _ -> fail st "expected predicate name or block after run")
    | Tcheck ->
        advance st;
        Surface.Ccheck (expect_ident st "assertion name")
    | _ -> fail st "expected run or check"
  in
  let scope, scopes = parse_scopes st in
  {
    Surface.c_label = label;
    c_kind = kind;
    c_scope = scope;
    c_scopes = scopes;
    c_span = Loc.merge start (prev_span st);
  }

let parse_open st =
  let start = current_span st in
  expect st Topen "open";
  let path = parse_qname st "module path" in
  let args =
    if accept st Tlbrack then begin
      let rec loop () =
        let a = parse_qname st "module argument" in
        if accept st Tcomma then a.Loc.it :: loop () else [ a.Loc.it ]
      in
      let args = loop () in
      expect st Trbrack "]";
      args
    end
    else []
  in
  let alias = if accept st Tas then Some (expect_ident st "alias name").Loc.it else None in
  {
    Surface.o_path = path.Loc.it;
    o_args = args;
    o_alias = alias;
    o_span = Loc.merge start (prev_span st);
  }

let parse_spec st =
  let module_name =
    if accept st Tmodule then Some (parse_qname st "module name") else None
  in
  let opens = ref [] in
  while current st = Topen do
    opens := parse_open st :: !opens
  done;
  let paras = ref [] in
  let push p = paras := p :: !paras in
  let rec loop () =
    let start = current_span st in
    match current st with
    | Teof -> ()
    | Tabstract ->
        advance st;
        let mult =
          match parse_mult_opt st with Some m -> m | None -> Ast.Mset
        in
        push (Surface.Psig (parse_sig st ~start ~is_abstract:true ~mult));
        loop ()
    | Tone | Tlone | Tsome when peek_at st 1 = Tsig ->
        let mult =
          match parse_mult_opt st with Some m -> m | None -> Ast.Mset
        in
        push (Surface.Psig (parse_sig st ~start ~is_abstract:false ~mult));
        loop ()
    | Tsig ->
        push (Surface.Psig (parse_sig st ~start ~is_abstract:false ~mult:Ast.Mset));
        loop ()
    | Tfact ->
        advance st;
        let name =
          match current st with
          | Tident _ -> Some (expect_ident st "fact name")
          | _ -> None
        in
        let body = parse_block st in
        push
          (Surface.Pfact
             {
               fa_name = name;
               fa_body = body;
               fa_span = Loc.merge start (prev_span st);
             });
        loop ()
    | Tpred ->
        advance st;
        let name = expect_ident st "predicate name" in
        let params =
          if accept st Tlbrack then parse_params st Trbrack
          else if accept st Tlparen then parse_params st Trparen
          else []
        in
        let body = parse_block st in
        push
          (Surface.Ppred
             {
               p_name = name;
               p_params = params;
               p_body = body;
               p_span = Loc.merge start (prev_span st);
             });
        loop ()
    | Tfun ->
        (* fun name [params] : result-bound { body-expr } *)
        advance st;
        let name = expect_ident st "function name" in
        let params =
          if accept st Tlbrack then parse_params st Trbrack
          else if accept st Tlparen then parse_params st Trparen
          else []
        in
        expect st Tcolon ":";
        let result_mult = parse_mult_opt st in
        let result = parse_expr_prec st in
        expect st Tlbrace "{";
        let body = parse_expr_prec st in
        expect st Trbrace "}";
        push
          (Surface.Pfun
             {
               fn_name = name;
               fn_params = params;
               fn_result = (result_mult, result);
               fn_body = body;
               fn_span = Loc.merge start (prev_span st);
             });
        loop ()
    | Tassert ->
        advance st;
        let name = expect_ident st "assertion name" in
        let body = parse_block st in
        push
          (Surface.Passert
             {
               a_name = name;
               a_body = body;
               a_span = Loc.merge start (prev_span st);
             });
        loop ()
    | Trun | Tcheck ->
        push (Surface.Pcommand (parse_command st ~start ~label:None));
        loop ()
    | Tident _
      when peek_at st 1 = Tcolon
           && (peek_at st 2 = Trun || peek_at st 2 = Tcheck) ->
        (* labeled command: name: run ... *)
        let label = expect_ident st "command label" in
        expect st Tcolon ":";
        push (Surface.Pcommand (parse_command st ~start ~label:(Some label)));
        loop ()
    | _ ->
        fail st "expected a paragraph (sig, fact, pred, fun, assert, run, check)"
  in
  loop ();
  {
    Surface.sp_module = module_name;
    sp_opens = List.rev !opens;
    sp_paragraphs = List.rev !paras;
  }

(* {2 Entry points} *)

let with_tokens ?file src f =
  let st = { tokens = Lexer.tokenize ?file src; pos = 0 } in
  let result = f st in
  if current st <> Teof then fail st "trailing input";
  result

let parse_surface ?file src = with_tokens ?file src parse_spec
let parse_surface_fmla ?file src = with_tokens ?file src parse_fmla_prec
let parse_surface_expr ?file src = with_tokens ?file src parse_expr_prec

(* Kernel-producing conveniences: parse then elaborate, discarding
   warnings.  Use {!Frontend} when warnings or declaration spans
   matter. *)
let parse ?file src = (Elab.spec (parse_surface ?file src)).Elab.spec
let parse_fmla ?file src = Elab.fmla (parse_surface_fmla ?file src)
let parse_expr ?file src = Elab.expr (parse_surface_expr ?file src)
