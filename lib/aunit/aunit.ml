module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast

type target = Facts | Pred of string | Fmla of Alloy.Ast.fmla

type test = {
  test_name : string;
  valuation : Alloy.Instance.t;
  target : target;
  expect : bool;
}

type verdict = { passing : test list; failing : test list }

let eval_target env valuation = function
  | Facts -> Alloy.Eval.facts_hold env valuation
  | Pred name -> (
      match Ast.find_pred env.Alloy.Typecheck.spec name with
      | Some p -> Alloy.Eval.pred_sat env valuation p
      | None -> raise (Alloy.Eval.Eval_error ("unknown predicate " ^ name)))
  | Fmla f -> Alloy.Eval.fmla env valuation [] f

let run_test env t =
  match eval_target env t.valuation t.target with
  | verdict -> verdict = t.expect
  | exception Alloy.Eval.Eval_error _ -> false

let run_suite env tests =
  let passing, failing = List.partition (run_test env) tests in
  { passing; failing }

let all_pass env tests = List.for_all (run_test env) tests

let generate ?session ?(per_kind = 4) (env : Alloy.Typecheck.env) ~scope =
  (* the session oracle memoizes enumeration on the spec digest, so
     regenerating a suite for the same ground truth (every fault of a domain
     shares it) is a cache hit; answers are identical either way *)
  let enumerate ~limit env scope f =
    match session with
    | Some s -> Specrepair_engine.Session.enumerate ~limit s env scope f
    | None -> Solver.Analyzer.enumerate ~limit env scope f
  in
  let name_counter = ref 0 in
  let fresh prefix =
    incr name_counter;
    Printf.sprintf "%s_%d" prefix !name_counter
  in
  let positives =
    enumerate ~limit:per_kind env scope Ast.True
    |> List.map (fun inst ->
           { test_name = fresh "facts_pos"; valuation = inst; target = Facts; expect = true })
  in
  (* negative tests: valuations of the bare structure (implicit constraints
     only) that violate some explicit fact.  We search with the facts
     replaced by their negation, which requires a spec without facts. *)
  let negatives =
    match env.spec.facts with
    | [] -> []
    | facts ->
        let stripped = { env.spec with facts = [] } in
        let env' = Alloy.Typecheck.check stripped in
        let not_facts =
          Ast.Not
            (List.fold_left
               (fun acc f -> Ast.And (acc, f.Ast.fact_body))
               Ast.True facts)
        in
        enumerate ~limit:per_kind env' scope not_facts
        |> List.map (fun inst ->
               {
                 test_name = fresh "facts_neg";
                 valuation = inst;
                 target = Facts;
                 expect = false;
               })
  in
  let pred_tests =
    List.concat_map
      (fun (p : Ast.pred_decl) ->
        let goal =
          match p.pred_params with
          | [] -> p.pred_body
          | params -> Ast.Quant (Ast.Qsome, params, p.pred_body)
        in
        let holds =
          enumerate ~limit:(max 1 (per_kind / 2)) env scope goal
          |> List.map (fun inst ->
                 {
                   test_name = fresh ("pred_" ^ p.pred_name ^ "_pos");
                   valuation = inst;
                   target = Pred p.pred_name;
                   expect = true;
                 })
        in
        let fails =
          enumerate ~limit:(max 1 (per_kind / 2)) env scope (Ast.Not goal)
          |> List.map (fun inst ->
                 {
                   test_name = fresh ("pred_" ^ p.pred_name ^ "_neg");
                   valuation = inst;
                   target = Pred p.pred_name;
                   expect = false;
                 })
        in
        holds @ fails)
      env.spec.preds
  in
  positives @ negatives @ pred_tests

let of_counterexample ~name inst =
  { test_name = name; valuation = inst; target = Facts; expect = false }
