(** AUnit-style unit tests for Mini-Alloy specifications.

    A test pairs a concrete valuation (an {!Specrepair_alloy.Instance.t})
    with an expected verdict for a target — the conjunction of the spec's
    facts, a named predicate, or an arbitrary formula.  Tests survive
    formula-level mutations of the spec because valuations only mention
    signatures and fields, which repairs never touch.

    This is the oracle of the ARepair engine and the currency in which
    ICEBAR converts counterexamples into constraints. *)

module Alloy = Specrepair_alloy

type target =
  | Facts  (** all explicit facts and implicit constraints *)
  | Pred of string  (** a predicate, parameters existentially quantified *)
  | Fmla of Alloy.Ast.fmla

type test = {
  test_name : string;
  valuation : Alloy.Instance.t;
  target : target;
  expect : bool;
}

type verdict = { passing : test list; failing : test list }

val run_test : Alloy.Typecheck.env -> test -> bool
(** [true] when the target's evaluation matches [expect].  A test whose
    evaluation raises (e.g. the candidate spec deleted a predicate) counts
    as failing. *)

val run_suite : Alloy.Typecheck.env -> test list -> verdict

val all_pass : Alloy.Typecheck.env -> test list -> bool

val generate :
  ?session:Specrepair_engine.Session.t ->
  ?per_kind:int ->
  Alloy.Typecheck.env ->
  scope:Specrepair_solver.Bounds.scope ->
  test list
(** Derives a suite from a (presumed correct) specification: instances
    satisfying the facts become positive [Facts] tests, instances of the
    bare signature structure that violate the facts become negative ones,
    and for every predicate, instances where it holds (under the facts)
    become positive [Pred] tests.  [per_kind] bounds each group
    (default 4).  Generation is deterministic (solver enumeration order);
    with [?session] the enumerations run through the session oracle —
    memoized on the spec digest and identical to the unmemoized ones. *)

val of_counterexample : name:string -> Alloy.Instance.t -> test
(** ICEBAR-style conversion: the instance was a counterexample to a checked
    property; the resulting test demands that it no longer be admitted by
    the facts (target [Facts], expect [false]). *)
