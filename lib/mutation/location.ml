module Ast = Specrepair_alloy.Ast
open Ast

type site = Fact_site of int | Pred_site of string | Assert_site of string
type path = int list
type node = F of Ast.fmla | E of Ast.expr

let site_to_string = function
  | Fact_site i -> Printf.sprintf "fact#%d" i
  | Pred_site n -> Printf.sprintf "pred %s" n
  | Assert_site n -> Printf.sprintf "assert %s" n

(* Sites name the same declarations the type checker blames, so fault
   locations can be mapped onto the frontend's source spans. *)
let decl_of_site spec site : Specrepair_alloy.Typecheck.decl =
  match site with
  | Fact_site i -> Dfact (i, (List.nth spec.facts i).fact_name)
  | Pred_site n -> Dpred n
  | Assert_site n -> Dassert n

let span_of_site spans spec site =
  match List.assoc_opt (decl_of_site spec site) spans with
  | Some span when not (Specrepair_alloy.Loc.is_none span) -> Some span
  | _ -> None

let site_with_span spans spec site =
  match span_of_site spans spec site with
  | Some span ->
      Printf.sprintf "%s (%s)" (site_to_string site)
        (Specrepair_alloy.Loc.to_string span)
  | None -> site_to_string site

let path_to_string p = String.concat "." (List.map string_of_int p)

let sites spec =
  List.mapi (fun i _ -> Fact_site i) spec.facts
  @ List.map (fun p -> Pred_site p.pred_name) spec.preds
  @ List.map (fun a -> Assert_site a.assert_name) spec.asserts

let body spec = function
  | Fact_site i -> (List.nth spec.facts i).fact_body
  | Pred_site n -> (
      match find_pred spec n with Some p -> p.pred_body | None -> raise Not_found)
  | Assert_site n -> (
      match find_assert spec n with
      | Some a -> a.assert_body
      | None -> raise Not_found)

let with_body spec site new_body =
  match site with
  | Fact_site i ->
      {
        spec with
        facts =
          List.mapi
            (fun j f -> if i = j then { f with fact_body = new_body } else f)
            spec.facts;
      }
  | Pred_site n ->
      {
        spec with
        preds =
          List.map
            (fun p ->
              if p.pred_name = n then { p with pred_body = new_body } else p)
            spec.preds;
      }
  | Assert_site n ->
      {
        spec with
        asserts =
          List.map
            (fun a ->
              if a.assert_name = n then { a with assert_body = new_body } else a)
            spec.asserts;
      }

let children = function
  | F f -> (
      match f with
      | True | False -> []
      | Cmp (_, a, b) -> [ E a; E b ]
      | Multf (_, e) -> [ E e ]
      | Card (_, e, _) -> [ E e ]
      | Not g -> [ F g ]
      | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> [ F a; F b ]
      | Quant (_, decls, fbody) -> List.map (fun (_, e) -> E e) decls @ [ F fbody ]
      | Call (_, args) -> List.map (fun e -> E e) args
      | Let (_, value, fbody) -> [ E value; F fbody ])
  | E e -> (
      match e with
      | Rel _ | Univ | Iden | None_ -> []
      | Unop (_, inner) -> [ E inner ]
      | Binop (_, a, b) -> [ E a; E b ]
      | Ite (c, a, b) -> [ F c; E a; E b ]
      | Compr (decls, body) ->
          List.map (fun (_, e) -> E e) decls @ [ F body ])

let subnodes root =
  let rec walk path node acc =
    let acc = (List.rev path, node) :: acc in
    List.fold_left
      (fun (i, acc) child -> (i + 1, walk (i :: path) child acc))
      (0, acc) (children node)
    |> snd
  in
  List.rev (walk [] (F root) [])

let get root path =
  let rec go node = function
    | [] -> node
    | i :: rest -> (
        match List.nth_opt (children node) i with
        | Some child -> go child rest
        | None -> raise Not_found)
  in
  go (F root) path

let with_child node i child =
  let f () = match child with F f -> f | E _ -> invalid_arg "Location.replace: expected a formula" in
  let e () = match child with E e -> e | F _ -> invalid_arg "Location.replace: expected an expression" in
  match node with
  | F fm -> (
      F
        (match (fm, i) with
        | Cmp (op, _, b), 0 -> Cmp (op, e (), b)
        | Cmp (op, a, _), 1 -> Cmp (op, a, e ())
        | Multf (m, _), 0 -> Multf (m, e ())
        | Card (op, _, k), 0 -> Card (op, e (), k)
        | Not _, 0 -> Not (f ())
        | And (_, b), 0 -> And (f (), b)
        | And (a, _), 1 -> And (a, f ())
        | Or (_, b), 0 -> Or (f (), b)
        | Or (a, _), 1 -> Or (a, f ())
        | Implies (_, b), 0 -> Implies (f (), b)
        | Implies (a, _), 1 -> Implies (a, f ())
        | Iff (_, b), 0 -> Iff (f (), b)
        | Iff (a, _), 1 -> Iff (a, f ())
        | Quant (q, decls, fbody), _ ->
            let n = List.length decls in
            if i < n then
              Quant
                ( q,
                  List.mapi
                    (fun j (name, bound) ->
                      if j = i then (name, e ()) else (name, bound))
                    decls,
                  fbody )
            else if i = n then Quant (q, decls, f ())
            else raise Not_found
        | Call (name, args), _ ->
            if i < List.length args then
              Call
                (name, List.mapi (fun j a -> if j = i then e () else a) args)
            else raise Not_found
        | Let (name, _, fbody), 0 -> Let (name, e (), fbody)
        | Let (name, value, _), 1 -> Let (name, value, f ())
        | Let _, _ -> raise Not_found
        | (True | False), _ -> raise Not_found
        | (Cmp _ | Multf _ | Card _ | Not _ | And _ | Or _ | Implies _ | Iff _), _
          ->
            raise Not_found))
  | E ex -> (
      E
        (match (ex, i) with
        | Unop (op, _), 0 -> Unop (op, e ())
        | Binop (op, _, b), 0 -> Binop (op, e (), b)
        | Binop (op, a, _), 1 -> Binop (op, a, e ())
        | Ite (_, a, b), 0 -> Ite (f (), a, b)
        | Ite (c, _, b), 1 -> Ite (c, e (), b)
        | Ite (c, a, _), 2 -> Ite (c, a, e ())
        | Compr (decls, body), _ ->
            let n = List.length decls in
            if i < n then
              Compr
                ( List.mapi
                    (fun j (name, bound) ->
                      if j = i then (name, e ()) else (name, bound))
                    decls,
                  body )
            else if i = n then Compr (decls, f ())
            else raise Not_found
        | (Rel _ | Univ | Iden | None_), _ -> raise Not_found
        | (Unop _ | Binop _ | Ite _), _ -> raise Not_found))

let replace root path replacement =
  let rec go node = function
    | [] -> replacement
    | i :: rest ->
        let kids = children node in
        let child =
          match List.nth_opt kids i with
          | Some c -> c
          | None -> raise Not_found
        in
        with_child node i (go child rest)
  in
  match go (F root) path with
  | F f -> f
  | E _ -> invalid_arg "Location.replace: root must be a formula"

let vars_at (env : Specrepair_alloy.Typecheck.env) spec site path =
  let arity_of vars e =
    match Specrepair_alloy.Typecheck.expr_arity env vars e with
    | a -> a
    | exception Specrepair_alloy.Typecheck.Type_error _ -> 1
  in
  let initial =
    match site with
    | Pred_site n -> (
        match find_pred spec n with
        | Some p -> List.map (fun (name, _) -> (name, 1)) p.pred_params
        | None -> raise Not_found)
    | Fact_site _ | Assert_site _ -> []
  in
  let rec go vars node = function
    | [] -> vars
    | i :: rest ->
        let vars =
          match node with
          | E (Compr (decls, _)) ->
              let n = List.length decls in
              if i = n then
                List.map (fun (name, _) -> (name, 1)) decls @ vars
              else
                List.filteri (fun j _ -> j < i) decls
                |> List.map (fun (name, _) -> (name, 1))
                |> fun earlier -> earlier @ vars
          | F (Let (name, value, _)) ->
              if i = 1 then (name, arity_of vars value) :: vars else vars
          | F (Quant (_, decls, _)) ->
              let n = List.length decls in
              if i = n then
                (* descending into the body: all declared vars in scope *)
                List.map (fun (name, _) -> (name, 1)) decls @ vars
              else
                (* descending into bound i: earlier declarations in scope *)
                List.filteri (fun j _ -> j < i) decls
                |> List.map (fun (name, _) -> (name, 1))
                |> fun earlier -> earlier @ vars
          | _ -> vars
        in
        let child =
          match List.nth_opt (children node) i with
          | Some c -> c
          | None -> raise Not_found
        in
        go vars child rest
  in
  go initial (F (body spec site)) path

let node_size = function
  | F f -> Ast.fmla_size f
  | E e -> Ast.expr_size e
