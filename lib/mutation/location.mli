(** Addressing of AST nodes inside a specification.

    A {!site} names a constraint body (fact, predicate, or assertion); a
    {!path} descends from that body through child indices.  Children are
    ordered as follows: binary nodes are [left; right]; quantifiers list
    their declaration bounds first, then the body; expression conditionals
    are [condition; then; else]. *)

module Ast = Specrepair_alloy.Ast

type site = Fact_site of int | Pred_site of string | Assert_site of string
type path = int list
type node = F of Ast.fmla | E of Ast.expr

val site_to_string : site -> string
val path_to_string : path -> string

val decl_of_site : Ast.spec -> site -> Specrepair_alloy.Typecheck.decl
(** The type-checker declaration a site lives in, the key into the
    frontend's span table.  Raises [Not_found] for a dangling fact
    index. *)

val span_of_site :
  (Specrepair_alloy.Typecheck.decl * Specrepair_alloy.Loc.span) list ->
  Ast.spec ->
  site ->
  Specrepair_alloy.Loc.span option
(** Source span of a site, given the span table of the frontend that
    parsed the spec ({!Specrepair_alloy.Frontend.ok}[.spans]).  [None]
    when the spec was built programmatically rather than parsed. *)

val site_with_span :
  (Specrepair_alloy.Typecheck.decl * Specrepair_alloy.Loc.span) list ->
  Ast.spec ->
  site ->
  string
(** [site_to_string], with the source range appended when known:
    ["fact#0 (spec.als:3:1-5:2)"]. *)

val sites : Ast.spec -> site list
(** All constraint bodies, facts first, in declaration order. *)

val body : Ast.spec -> site -> Ast.fmla
(** Raises [Not_found] if the site does not exist. *)

val with_body : Ast.spec -> site -> Ast.fmla -> Ast.spec

val children : node -> node list

val subnodes : Ast.fmla -> (path * node) list
(** Preorder traversal of a body, the root at path []. *)

val get : Ast.fmla -> path -> node
(** Raises [Not_found] on a dangling path. *)

val replace : Ast.fmla -> path -> node -> Ast.fmla
(** Raises [Not_found] on a dangling path and [Invalid_argument] when the
    node kind (formula vs expression) does not match the position. *)

val vars_at :
  Specrepair_alloy.Typecheck.env -> Ast.spec -> site -> path -> (string * int) list
(** Variables in scope at a position: predicate parameters and the
    quantified variables of enclosing binders (each of arity 1).  Bounds of
    a declaration see only the declarations before it. *)

val node_size : node -> int
