(** A minimal JSON codec for the serve wire protocol.

    The repository deliberately carries no third-party JSON dependency:
    telemetry and diagnostics are {e printed} by hand.  The daemon also has
    to {e read} JSON — every request is one newline-delimited JSON object —
    so this module adds the smallest strict reader/printer that covers the
    protocol: objects, arrays, strings (with escapes), numbers, booleans
    and null.  Errors carry the byte offset at which parsing failed, which
    the protocol layer turns into a positioned error reply. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** Preformatted JSON emitted verbatim by {!to_string} — the bridge
          for JSON other modules already render (e.g.
          [Specrepair_alloy.Diagnostic.to_json]).  Never produced by
          {!parse}. *)

val parse : string -> (t, int * string) result
(** Strict parse of exactly one JSON value (surrounding whitespace
    allowed; trailing garbage is an error).  [Error (pos, msg)] gives the
    0-based byte offset of the failure. *)

val to_string : t -> string
(** One line, no newlines: control characters in strings are escaped, so
    the result is safe for a newline-delimited protocol. *)

val escape : string -> string
(** The string-escaping used by {!to_string}, exposed for hand-rendered
    replies. *)

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field {e or} non-object. *)

val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_num : string -> t -> float option
val mem_bool : string -> t -> bool option
