(** Worker-side request execution: one handler per worker process, owning
    that worker's warm-state {!Registry}.

    [handle] turns a raw request line into a complete reply line plus a
    warmth tag for the daemon's cache counters.  It never raises: every
    failure mode — malformed request, spec that fails the frontend,
    unparsable CNF, an engine exception — becomes an [ok:false] reply
    with the matching {!Protocol.error_code}.

    Chaos injection (test-only): when the daemon runs with
    [SPECREPAIR_SERVE_CHAOS=1], a request's [params.chaos] is honoured —
    ["kill"] SIGKILLs the worker process before it replies (the daemon
    must answer [worker_crashed] and respawn), ["sleep:<ms>"] delays the
    reply (deterministic overload/timeout tests).  Without the
    environment variable the parameter is ignored. *)

(** Warmth of one served request, for the daemon's counters. *)
type warmth =
  | Warm  (** served against a registry hit *)
  | Cold  (** served against a freshly built entry *)
  | Uncached  (** no cacheable state involved (errors, status) *)

type t

val create : max_sessions:int -> t

val handle : t -> string -> string * warmth
(** [handle t line] executes one request line and returns the reply line
    (newline-free) and its warmth. *)

val registry_stats : t -> Registry.stats
