(* Request parsing/validation and reply construction for the serve
   protocol.  Everything here is pure string/JSON work — no sockets, no
   solving — so both the daemon (parent) and the pool workers can use it,
   and the unit tests can exercise every malformed-input path without a
   process tree. *)

type repair_params = {
  source : string;
  file : string;
  tool : string;
  profile : string;  (* a Specrepair_llm.Model.panel name *)
  seed : int;
  deadline_ms : float option;
  simplify : bool;
  portfolio : int;
  chaos : string option;
}

type evaluate_params = {
  e_source : string;
  e_file : string;
  e_profile : string;
  e_deadline_ms : float option;
  e_simplify : bool;
  e_portfolio : int;
  e_chaos : string option;
}

type sat_params = { dimacs : string; s_chaos : string option }

type call =
  | Repair of repair_params
  | Evaluate of evaluate_params
  | Sat of sat_params
  | Status

type request = { id : string; call : call }

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_method
  | Oversized
  | Overloaded
  | Worker_crashed
  | Deadline_exceeded
  | Spec_error
  | Cnf_error
  | Shutting_down
  | Internal

let code_to_string = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_method -> "unknown_method"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Worker_crashed -> "worker_crashed"
  | Deadline_exceeded -> "deadline_exceeded"
  | Spec_error -> "spec_error"
  | Cnf_error -> "cnf_error"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let ok_reply ~id result =
  Json.to_string
    (Json.Obj [ ("id", Json.Str id); ("ok", Json.Bool true); ("result", result) ])

let error_reply ?(data = []) ~id ~code message =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             (("code", Json.Str (code_to_string code))
             :: ("message", Json.Str message)
             :: data) );
       ])

(* Replies are always built by the two constructors above, so the success
   flag sits in a fixed position right after the escaped id. *)
let reply_is_ok line =
  let marker = "\"ok\":true" in
  let lm = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + lm > n then false
    else if String.sub line i lm = marker then true
    else find (i + 1)
  in
  find 0

let method_name = function
  | Repair _ -> "repair"
  | Evaluate _ -> "evaluate"
  | Sat _ -> "sat"
  | Status -> "status"

let valid_tools = [ "beafix"; "atr"; "multi-round"; "portfolio" ]

let valid_profiles = Specrepair_llm.Model.panel_names

let default_profile = Specrepair_llm.Model.gpt4.Specrepair_llm.Model.name

(* {2 Request validation} *)

exception Bad of error_code * string

let required_str obj key =
  match Json.member key obj with
  | Some (Json.Str s) -> s
  | Some _ -> raise (Bad (Invalid_request, "params." ^ key ^ " must be a string"))
  | None -> raise (Bad (Invalid_request, "params." ^ key ^ " is required"))

let opt_str obj key ~default =
  match Json.member key obj with
  | None | Some Json.Null -> default
  | Some (Json.Str s) -> s
  | Some _ -> raise (Bad (Invalid_request, "params." ^ key ^ " must be a string"))

let opt_chaos obj =
  match Json.member "chaos" obj with
  | None | Some Json.Null -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> raise (Bad (Invalid_request, "params.chaos must be a string"))

let opt_int obj key ~default =
  match Json.member key obj with
  | None | Some Json.Null -> default
  | Some v -> (
      match Json.to_int v with
      | Some n -> n
      | None -> raise (Bad (Invalid_request, "params." ^ key ^ " must be an integer")))

let opt_bool obj key ~default =
  match Json.member key obj with
  | None | Some Json.Null -> default
  | Some (Json.Bool b) -> b
  | Some _ -> raise (Bad (Invalid_request, "params." ^ key ^ " must be a boolean"))

let opt_pos_ms obj key =
  match Json.member key obj with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.to_num v with
      | Some f when f > 0. -> Some f
      | Some _ -> raise (Bad (Invalid_request, "params." ^ key ^ " must be positive"))
      | None -> raise (Bad (Invalid_request, "params." ^ key ^ " must be a number")))

let opt_profile obj =
  let profile = opt_str obj "profile" ~default:default_profile in
  if not (List.mem profile valid_profiles) then
    raise
      (Bad
         ( Invalid_request,
           Printf.sprintf "params.profile must be one of: %s"
             (String.concat ", " valid_profiles) ));
  profile

let parse_call ~meth ~params =
  match meth with
  | "status" -> Status
  | "repair" ->
      let tool = opt_str params "tool" ~default:"beafix" in
      if not (List.mem tool valid_tools) then
        raise
          (Bad
             ( Invalid_request,
               Printf.sprintf "params.tool must be one of: %s"
                 (String.concat ", " valid_tools) ));
      let portfolio = opt_int params "portfolio" ~default:1 in
      if portfolio < 1 then
        raise (Bad (Invalid_request, "params.portfolio must be >= 1"));
      Repair
        {
          source = required_str params "source";
          file = opt_str params "file" ~default:"<request>";
          tool;
          profile = opt_profile params;
          seed = opt_int params "seed" ~default:42;
          deadline_ms = opt_pos_ms params "deadline_ms";
          simplify = opt_bool params "simplify" ~default:false;
          portfolio;
          chaos = opt_chaos params;
        }
  | "evaluate" ->
      let portfolio = opt_int params "portfolio" ~default:1 in
      if portfolio < 1 then
        raise (Bad (Invalid_request, "params.portfolio must be >= 1"));
      Evaluate
        {
          e_source = required_str params "source";
          e_file = opt_str params "file" ~default:"<request>";
          e_profile = opt_profile params;
          e_deadline_ms = opt_pos_ms params "deadline_ms";
          e_simplify = opt_bool params "simplify" ~default:false;
          e_portfolio = portfolio;
          e_chaos = opt_chaos params;
        }
  | "sat" ->
      Sat { dimacs = required_str params "dimacs"; s_chaos = opt_chaos params }
  | m -> raise (Bad (Unknown_method, Printf.sprintf "unknown method %S" m))

let parse_request line =
  match Json.parse line with
  | Error (pos, msg) ->
      Error
        (error_reply ~id:"" ~code:Parse_error
           ~data:[ ("pos", Json.Num (float_of_int pos)) ]
           (Printf.sprintf "request is not JSON: %s (byte %d)" msg pos))
  | Ok json -> (
      (* best-effort id recovery, so even malformed requests correlate *)
      let id = Option.value (Json.mem_str "id" json) ~default:"" in
      match json with
      | Json.Obj _ -> (
          let meth =
            match Json.member "method" json with
            | Some (Json.Str m) -> Ok m
            | Some _ -> Error "method must be a string"
            | None -> Error "method is required"
          in
          match meth with
          | Error msg -> Error (error_reply ~id ~code:Invalid_request msg)
          | Ok meth -> (
              let params =
                Option.value (Json.member "params" json) ~default:(Json.Obj [])
              in
              match params with
              | Json.Obj _ -> (
                  match parse_call ~meth ~params with
                  | call -> Ok { id; call }
                  | exception Bad (code, msg) -> Error (error_reply ~id ~code msg))
              | _ ->
                  Error
                    (error_reply ~id ~code:Invalid_request
                       "params must be an object")))
      | _ ->
          Error (error_reply ~id ~code:Invalid_request "request must be an object"))

(* {2 Cache keys}

   Repair and evaluate requests over the same source, solving options and
   model profile share one warm oracle (the verdict caches are
   technique-agnostic); sat requests are keyed on the CNF text.  Seed,
   tool and deadline are per-request session state, not oracle state, so
   they stay out of the key.  The profile is in the key so a profile
   change never lands on a stale warm session: panel members answer from
   their own warm state, not each other's. *)

let cache_key = function
  | Repair { source; simplify; portfolio; profile; _ } ->
      Some
        (Digest.to_hex
           (Digest.string
              (Printf.sprintf "spec:%b:%d:%s:%s" simplify portfolio profile
                 source)))
  | Evaluate { e_source; e_simplify; e_portfolio; e_profile; _ } ->
      Some
        (Digest.to_hex
           (Digest.string
              (Printf.sprintf "spec:%b:%d:%s:%s" e_simplify e_portfolio
                 e_profile e_source)))
  | Sat { dimacs; _ } -> Some (Digest.to_hex (Digest.string ("cnf:" ^ dimacs)))
  | Status -> None
