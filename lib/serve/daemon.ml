(* The serve daemon: accept loop, request router, admission control and
   counters.  See daemon.mli for the semantics; the protocol lives in
   protocol.ml, the execution in handler.ml (worker side), the process
   supervision in pool.ml. *)

type config = {
  socket : string option;
  tcp : int option;
  workers : int;
  max_sessions : int;
  max_inflight : int;
  queue_depth : int;
  max_request_bytes : int;
  hard_timeout_ms : float option;
  telemetry : string option;
}

let default_config =
  {
    socket = None;
    tcp = None;
    workers = 2;
    max_sessions = 32;
    max_inflight = 64;
    queue_depth = 64;
    max_request_bytes = 8 * 1024 * 1024;
    hard_timeout_ms = None;
    telemetry = None;
  }

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable close_after_flush : bool;
}

type inflight = { origin : Unix.file_descr option; req_id : string; meth : string; t0 : float }

type pending = {
  p_token : int;
  p_slot : int;
  p_line : string;
  p_kill_after_s : float option;
  p_origin : Unix.file_descr;
}

type counters = {
  mutable requests : int;
  mutable ok : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable queue_high_water : int;
  by_method : (string, int) Hashtbl.t;
}

let run config =
  let counters =
    {
      requests = 0;
      ok = 0;
      errors = 0;
      overloaded = 0;
      cache_hits = 0;
      cache_misses = 0;
      queue_high_water = 0;
      by_method = Hashtbl.create 8;
    }
  in
  let started = Unix.gettimeofday () in
  let telemetry_oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      config.telemetry
  in
  let telemetry fields =
    match telemetry_oc with
    | None -> ()
    | Some oc ->
        output_string oc (Json.to_string (Json.Obj fields));
        output_char oc '\n';
        flush oc
  in

  (* {2 Listeners} *)
  let listeners = ref [] in
  (match config.socket with
  | Some path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with Unix.Unix_error (e, _, _) ->
         failwith
           (Printf.sprintf "serve: cannot bind %s: %s" path (Unix.error_message e)));
      Unix.listen fd 64;
      listeners := fd :: !listeners
  | None -> ());
  (match config.tcp with
  | Some port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with Unix.Unix_error (e, _, _) ->
         failwith
           (Printf.sprintf "serve: cannot bind 127.0.0.1:%d: %s" port
              (Unix.error_message e)));
      Unix.listen fd 64;
      listeners := fd :: !listeners
  | None -> ());
  if !listeners = [] then failwith "serve: no listener configured (--socket or --tcp)";

  (* {2 Worker pool} *)
  let handler = Handler.create ~max_sessions:config.max_sessions in
  let pool = Pool.create ~jobs:config.workers ~handle:(Handler.handle handler) in

  (* {2 State} *)
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let inflight : (int, inflight) Hashtbl.t = Hashtbl.create 16 in
  let pending : pending list ref = ref [] in
  let next_token = ref 0 in
  let stop = ref false in

  let old_term =
    try Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let old_int =
    try Some (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let old_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_signals () =
    let restore signum = function
      | Some h -> ( try Sys.set_signal signum h with Invalid_argument _ -> ())
      | None -> ()
    in
    restore Sys.sigterm old_term;
    restore Sys.sigint old_int;
    restore Sys.sigpipe old_pipe
  in

  (* {2 Client plumbing} *)
  let close_client c =
    Hashtbl.remove clients c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let try_flush c =
    let text = Buffer.contents c.outbuf in
    let len = String.length text in
    if len > 0 then begin
      match Unix.write c.fd (Bytes.of_string text) 0 len with
      | written ->
          Buffer.clear c.outbuf;
          if written < len then
            Buffer.add_substring c.outbuf text written (len - written)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          close_client c
    end;
    if Hashtbl.mem clients c.fd && c.close_after_flush && Buffer.length c.outbuf = 0
    then close_client c
  in
  let send_to_fd fd line =
    match Hashtbl.find_opt clients fd with
    | None -> () (* the client disconnected mid-request; drop the reply *)
    | Some c ->
        Buffer.add_string c.outbuf line;
        Buffer.add_char c.outbuf '\n';
        try_flush c
  in

  (* {2 Routing} *)
  let record_reply ~token ~okay ~warmth =
    match Hashtbl.find_opt inflight token with
    | None -> None
    | Some entry ->
        Hashtbl.remove inflight token;
        if okay then counters.ok <- counters.ok + 1
        else counters.errors <- counters.errors + 1;
        (match warmth with
        | Some Handler.Warm -> counters.cache_hits <- counters.cache_hits + 1
        | Some Handler.Cold -> counters.cache_misses <- counters.cache_misses + 1
        | Some Handler.Uncached | None -> ());
        telemetry
          [
            ("event", Json.Str "reply");
            ("method", Json.Str entry.meth);
            ("id", Json.Str entry.req_id);
            ("ok", Json.Bool okay);
            ( "warm",
              match warmth with
              | Some Handler.Warm -> Json.Bool true
              | Some Handler.Cold -> Json.Bool false
              | _ -> Json.Null );
            ("ms", Json.Num ((Unix.gettimeofday () -. entry.t0) *. 1000.));
          ];
        Some entry
  in
  let dispatch ~slot ~token ~kill_after_s line =
    Pool.dispatch pool ~slot ~token ?kill_after_s line
  in
  (* dispatch the oldest queued entry whose sticky slot is idle, then
     rescan: freeing one slot can unblock several queued keys *)
  let pump_queue () =
    let rec take acc = function
      | [] -> None
      | p :: rest ->
          if Pool.idle pool p.p_slot then begin
            pending := List.rev_append acc rest;
            Some p
          end
          else take (p :: acc) rest
    in
    let rec go () =
      match take [] !pending with
      | None -> ()
      | Some p ->
          dispatch ~slot:p.p_slot ~token:p.p_token ~kill_after_s:p.p_kill_after_s
            p.p_line;
          go ()
    in
    go ()
  in
  let status_reply ~id =
    let by_method =
      Hashtbl.fold (fun k v acc -> (k, Json.Num (float_of_int v)) :: acc)
        counters.by_method []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Protocol.ok_reply ~id
      (Json.Obj
         [
           ("uptime_ms", Json.Num ((Unix.gettimeofday () -. started) *. 1000.));
           ("workers", Json.Num (float_of_int (Pool.jobs pool)));
           ("requests", Json.Num (float_of_int counters.requests));
           ("ok", Json.Num (float_of_int counters.ok));
           ("errors", Json.Num (float_of_int counters.errors));
           ("overloaded", Json.Num (float_of_int counters.overloaded));
           ("cache_hits", Json.Num (float_of_int counters.cache_hits));
           ("cache_misses", Json.Num (float_of_int counters.cache_misses));
           ("worker_respawns", Json.Num (float_of_int (Pool.respawns pool)));
           ("inflight", Json.Num (float_of_int (Hashtbl.length inflight)));
           ("queued", Json.Num (float_of_int (List.length !pending)));
           ("queue_high_water", Json.Num (float_of_int counters.queue_high_water));
           ("by_method", Json.Obj by_method);
         ])
  in
  let handle_request c line =
    counters.requests <- counters.requests + 1;
    match Protocol.parse_request line with
    | Error reply ->
        counters.errors <- counters.errors + 1;
        let meth = "invalid" in
        Hashtbl.replace counters.by_method meth
          (1 + Option.value (Hashtbl.find_opt counters.by_method meth) ~default:0);
        send_to_fd c.fd reply
    | Ok { id; call } -> (
        let meth = Protocol.method_name call in
        Hashtbl.replace counters.by_method meth
          (1 + Option.value (Hashtbl.find_opt counters.by_method meth) ~default:0);
        match call with
        | Protocol.Status ->
            counters.ok <- counters.ok + 1;
            send_to_fd c.fd (status_reply ~id)
        | _ ->
            let key = Option.get (Protocol.cache_key call) in
            let slot = Pool.slot_of_key pool key in
            let deadline_ms =
              match call with
              | Protocol.Repair p -> p.Protocol.deadline_ms
              | Protocol.Evaluate p -> p.Protocol.e_deadline_ms
              | _ -> None
            in
            let kill_after_s =
              match deadline_ms with
              | Some d -> Some (((3. *. d) +. 2000.) /. 1000.)
              | None -> Option.map (fun ms -> ms /. 1000.) config.hard_timeout_ms
            in
            let accepted = Hashtbl.length inflight + List.length !pending in
            if accepted >= config.max_inflight then begin
              counters.overloaded <- counters.overloaded + 1;
              counters.errors <- counters.errors + 1;
              send_to_fd c.fd
                (Protocol.error_reply ~id ~code:Protocol.Overloaded
                   (Printf.sprintf "%d request(s) already in flight" accepted))
            end
            else begin
              let token = !next_token in
              incr next_token;
              Hashtbl.replace inflight token
                { origin = Some c.fd; req_id = id; meth; t0 = Unix.gettimeofday () };
              if Pool.idle pool slot then
                dispatch ~slot ~token ~kill_after_s line
              else if List.length !pending >= config.queue_depth then begin
                Hashtbl.remove inflight token;
                counters.overloaded <- counters.overloaded + 1;
                counters.errors <- counters.errors + 1;
                send_to_fd c.fd
                  (Protocol.error_reply ~id ~code:Protocol.Overloaded
                     (Printf.sprintf "queue full (%d waiting)" (List.length !pending)))
              end
              else begin
                pending :=
                  !pending
                  @ [
                      {
                        p_token = token;
                        p_slot = slot;
                        p_line = line;
                        p_kill_after_s = kill_after_s;
                        p_origin = c.fd;
                      };
                    ];
                counters.queue_high_water <-
                  max counters.queue_high_water (List.length !pending)
              end
            end)
  in
  let process_inbuf c =
    let rec go () =
      let text = Buffer.contents c.inbuf in
      match String.index_opt text '\n' with
      | Some i ->
          Buffer.clear c.inbuf;
          Buffer.add_substring c.inbuf text (i + 1) (String.length text - i - 1);
          let line = String.sub text 0 i in
          if String.length line > config.max_request_bytes then begin
            counters.requests <- counters.requests + 1;
            counters.errors <- counters.errors + 1;
            send_to_fd c.fd
              (Protocol.error_reply ~id:"" ~code:Protocol.Oversized
                 (Printf.sprintf "request line of %d bytes exceeds the %d-byte limit"
                    (String.length line) config.max_request_bytes))
          end
          else if String.trim line <> "" then handle_request c line;
          if Hashtbl.mem clients c.fd then go ()
      | None ->
          if Buffer.length c.inbuf > config.max_request_bytes then begin
            (* an unterminated line already past the limit: answer once,
               then drop the connection — the daemon will not buffer
               unbounded input *)
            counters.requests <- counters.requests + 1;
            counters.errors <- counters.errors + 1;
            Buffer.clear c.inbuf;
            Buffer.add_string c.outbuf
              (Protocol.error_reply ~id:"" ~code:Protocol.Oversized
                 (Printf.sprintf "request exceeds the %d-byte limit"
                    config.max_request_bytes));
            Buffer.add_char c.outbuf '\n';
            c.close_after_flush <- true;
            try_flush c
          end
    in
    go ()
  in
  let read_client c =
    let buf = Bytes.create 65536 in
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) -> close_client c
    | 0 -> close_client c
    | k ->
        Buffer.add_subbytes c.inbuf buf 0 k;
        process_inbuf c
  in
  let handle_pool_events events =
    List.iter
      (fun ev ->
        match ev with
        | Pool.Reply { token; warmth; line } -> (
            match record_reply ~token ~okay:(Protocol.reply_is_ok line)
                    ~warmth:(Some warmth)
            with
            | Some { origin = Some fd; _ } -> send_to_fd fd line
            | Some { origin = None; _ } | None -> ())
        | Pool.Died { token; _ } -> (
            match record_reply ~token ~okay:false ~warmth:None with
            | Some { origin = Some fd; req_id; _ } ->
                send_to_fd fd
                  (Protocol.error_reply ~id:req_id ~code:Protocol.Worker_crashed
                     "the worker serving this request died; it was respawned")
            | Some { origin = None; _ } | None -> ())
        | Pool.Timed_out { token; _ } -> (
            match record_reply ~token ~okay:false ~warmth:None with
            | Some { origin = Some fd; req_id; _ } ->
                send_to_fd fd
                  (Protocol.error_reply ~id:req_id ~code:Protocol.Deadline_exceeded
                     "hard deadline exceeded; the worker was killed")
            | Some { origin = None; _ } | None -> ()))
      events;
    if events <> [] then pump_queue ()
  in

  Printf.printf "serve: listening on %s (workers=%d)\n%!"
    (String.concat ", "
       (List.filter_map Fun.id
          [
            config.socket;
            Option.map (Printf.sprintf "127.0.0.1:%d") config.tcp;
          ]))
    (Pool.jobs pool);

  (* {2 The loop} *)
  (try
     while not !stop do
       let client_list = Hashtbl.fold (fun _ c acc -> c :: acc) clients [] in
       let read_fds =
         !listeners @ List.map (fun c -> c.fd) client_list @ Pool.fds pool
       in
       let write_fds =
         List.filter_map
           (fun c -> if Buffer.length c.outbuf > 0 then Some c.fd else None)
           client_list
       in
       let readable, writable, _ =
         try Unix.select read_fds write_fds [] 0.05
         with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
       in
       (* 1. new connections *)
       List.iter
         (fun lfd ->
           if List.mem lfd readable then
             match Unix.accept lfd with
             | fd, _ ->
                 Unix.set_nonblock fd;
                 Hashtbl.replace clients fd
                   {
                     fd;
                     inbuf = Buffer.create 1024;
                     outbuf = Buffer.create 1024;
                     close_after_flush = false;
                   }
             | exception Unix.Unix_error _ -> ())
         !listeners;
       (* 2. client input *)
       List.iter
         (fun c ->
           if List.mem c.fd readable && Hashtbl.mem clients c.fd then read_client c)
         client_list;
       (* 3. worker messages, deaths, overdue kills *)
       handle_pool_events (Pool.drain pool readable);
       handle_pool_events (Pool.reap pool);
       handle_pool_events (Pool.kill_overdue pool);
       (* 4. flush buffered replies *)
       List.iter
         (fun c ->
           if List.mem c.fd writable && Hashtbl.mem clients c.fd then try_flush c)
         client_list
     done
   with e ->
     restore_signals ();
     Pool.shutdown pool;
     raise e);

  (* {2 Shutdown} *)
  List.iter
    (fun p ->
      (match Hashtbl.find_opt inflight p.p_token with
      | Some { req_id; _ } ->
          Hashtbl.remove inflight p.p_token;
          send_to_fd p.p_origin
            (Protocol.error_reply ~id:req_id ~code:Protocol.Shutting_down
               "the daemon is shutting down")
      | None -> ()))
    !pending;
  pending := [];
  Pool.shutdown pool;
  Hashtbl.iter (fun _ c -> try_flush c) clients;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  Hashtbl.reset clients;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !listeners;
  (match config.socket with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  telemetry
    [
      ("event", Json.Str "shutdown");
      ("requests", Json.Num (float_of_int counters.requests));
      ("ok", Json.Num (float_of_int counters.ok));
      ("errors", Json.Num (float_of_int counters.errors));
      ("overloaded", Json.Num (float_of_int counters.overloaded));
      ("cache_hits", Json.Num (float_of_int counters.cache_hits));
      ("cache_misses", Json.Num (float_of_int counters.cache_misses));
      ("worker_respawns", Json.Num (float_of_int (Pool.respawns pool)));
      ("queue_high_water", Json.Num (float_of_int counters.queue_high_water));
    ];
  Option.iter close_out telemetry_oc;
  restore_signals ();
  Printf.printf "serve: shutdown after %d request(s)\n%!" counters.requests
