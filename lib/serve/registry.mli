(** The warm-state registry of a serve worker: a bounded LRU of cache
    entries keyed by request digest ({!Protocol.cache_key}).

    Each worker process owns one registry.  Entries hold whatever warm
    state the handler wants to amortize — in practice a type-checked
    environment plus its incremental {!Specrepair_solver.Oracle.t}, whose
    digest-keyed verdict/instance caches and activation-literal memos are
    the ~4x of [BENCH_oracle.json].  The LRU bound ([--max-sessions] on
    the daemon) caps memory: the least-recently-used entry is dropped when
    a fresh key would exceed it. *)

type 'a t

type stats = {
  hits : int;  (** lookups served from the registry *)
  misses : int;  (** lookups that built a fresh entry *)
  evictions : int;  (** entries dropped by the LRU bound *)
}

val create : max:int -> 'a t
(** [max < 1] is clamped to 1. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** [find_or_add t key build] returns the entry for [key], building (and
    caching) it on a miss.  The boolean is [true] on a hit — the request
    ran against warm state.  Both outcomes promote the key to
    most-recently-used. *)

val size : 'a t -> int
val stats : 'a t -> stats
