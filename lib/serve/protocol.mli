(** The serve wire protocol: newline-delimited JSON requests and replies.

    {b Request.}  One JSON object per line:
    [{"id": <string>, "method": "repair"|"evaluate"|"sat"|"status",
      "params": {...}}].
    [id] is an opaque client-chosen correlation string, echoed verbatim in
    the reply; it defaults to [""].  Parameters per method:

    - [repair]: [source] (Alloy source, required), [tool] ("beafix",
      "atr", "multi-round" or "portfolio"; default "beafix"), [profile]
      (a model-panel name from {!Specrepair_llm.Model.panel_names};
      default "gpt-4"), [seed] (default 42), [deadline_ms], [simplify],
      [portfolio] (int, default 1), [file] (a display name for
      diagnostics, default "<request>").
    - [evaluate]: [source] (required), [profile], [deadline_ms],
      [simplify], [portfolio], [file] — answers the verdict of every
      command of the spec through the warm oracle.
    - [sat]: [dimacs] (a DIMACS CNF, required).
    - [status]: no parameters; answered by the daemon itself.

    All methods but [status] accept a [chaos] string, honoured by workers
    only when the daemon runs with [SPECREPAIR_SERVE_CHAOS=1] in its
    environment (test-only fault injection: ["kill"] SIGKILLs the worker
    mid-request, ["sleep:<ms>"] delays the reply).

    {b Reply.}  One JSON object per line, echoing [id]:
    [{"id":..., "ok":true, "result":{...}}] or
    [{"id":..., "ok":false, "error":{"code":..., "message":..., ...}}].
    Spec errors carry the frontend's positioned diagnostics
    ({!Specrepair_alloy.Diagnostic.to_json}) under ["error.diagnostics"];
    request-level JSON errors carry the byte offset under ["error.pos"]. *)

type repair_params = {
  source : string;
  file : string;  (** display name used in diagnostics *)
  tool : string;  (** validated: beafix | atr | multi-round | portfolio *)
  profile : string;  (** validated against {!Specrepair_llm.Model.panel_names} *)
  seed : int;
  deadline_ms : float option;
  simplify : bool;
  portfolio : int;
  chaos : string option;
}

type evaluate_params = {
  e_source : string;
  e_file : string;
  e_profile : string;
  e_deadline_ms : float option;
  e_simplify : bool;
  e_portfolio : int;
  e_chaos : string option;
}

type sat_params = { dimacs : string; s_chaos : string option }

type call =
  | Repair of repair_params
  | Evaluate of evaluate_params
  | Sat of sat_params
  | Status

type request = { id : string; call : call }

(** Error vocabulary of the protocol; [code_to_string] gives the wire
    form ([parse_error], [invalid_request], ...). *)
type error_code =
  | Parse_error  (** the request line is not JSON *)
  | Invalid_request  (** JSON, but not a well-formed request *)
  | Unknown_method
  | Oversized  (** request line beyond [--max-request-bytes] *)
  | Overloaded  (** admission control rejected the request *)
  | Worker_crashed  (** the worker died mid-request; request not retried *)
  | Deadline_exceeded  (** the daemon hard-killed an overdue worker *)
  | Spec_error  (** the spec failed the frontend; diagnostics attached *)
  | Cnf_error  (** the DIMACS payload failed to parse *)
  | Shutting_down
  | Internal

val code_to_string : error_code -> string

val parse_request : string -> (request, string) result
(** Validate one request line.  [Error reply] is a complete, sendable
    error-reply line (the client's [id] is echoed when it could be
    recovered from the malformed request). *)

val ok_reply : id:string -> Json.t -> string
val error_reply : ?data:(string * Json.t) list -> id:string -> code:error_code -> string -> string

val method_name : call -> string
(** "repair" | "evaluate" | "sat" | "status". *)

val cache_key : call -> string option
(** The warm-state cache key of the request: a digest of the payload, the
    solving options and the model profile (repair and evaluate requests
    for the same source, options and profile share one warm oracle; sat
    requests are keyed on the CNF).  A profile change misses the cache by
    construction — it must never answer from another profile's warm
    session.  [None] for [status]. *)

val reply_is_ok : string -> bool
(** Does a reply line (in the exact shape built by {!ok_reply} /
    {!error_reply}) report success? *)
