(* Minimal strict JSON reader/printer for the newline-delimited serve
   protocol.  Recursive descent over a byte cursor; failures report the
   byte offset so the protocol layer can answer with a positioned error. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

(* {2 Printing} *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'
  | Raw s -> Buffer.add_string buf s

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* {2 Parsing} *)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && is_ws s.[!pos] do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos ("expected " ^ word)
  in
  (* encode a \uXXXX escape as UTF-8; surrogate pairs are recombined *)
  let utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4)
      with Failure _ -> fail !pos "invalid \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail !pos "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'; incr pos
            | '\\' -> Buffer.add_char buf '\\'; incr pos
            | '/' -> Buffer.add_char buf '/'; incr pos
            | 'b' -> Buffer.add_char buf '\b'; incr pos
            | 'f' -> Buffer.add_char buf '\012'; incr pos
            | 'n' -> Buffer.add_char buf '\n'; incr pos
            | 'r' -> Buffer.add_char buf '\r'; incr pos
            | 't' -> Buffer.add_char buf '\t'; incr pos
            | 'u' ->
                incr pos;
                let cp = hex4 () in
                let cp =
                  if cp >= 0xd800 && cp <= 0xdbff
                     && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xdc00 && lo <= 0xdfff then
                      0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                    else fail !pos "invalid low surrogate"
                  end
                  else cp
                in
                utf8 buf cp
            | c -> fail !pos (Printf.sprintf "invalid escape '\\%c'" c));
            go ()
        | c when Char.code c < 0x20 -> fail !pos "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if peek () = Some '.' then begin
      incr pos;
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr pos
        done
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail start "invalid number"
  in
  let rec parse_value depth =
    if depth > 128 then fail !pos "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ()
            | Some '}' -> incr pos
            | _ -> fail !pos "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; List [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elements ()
            | Some ']' -> incr pos
            | _ -> fail !pos "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail !pos (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail !pos "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) -> Error (pos, msg)

(* {2 Accessors} *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List vs -> Some vs | _ -> None

let opt_bind f o = Option.bind o f
let mem_str k v = member k v |> opt_bind to_str
let mem_int k v = member k v |> opt_bind to_int
let mem_num k v = member k v |> opt_bind to_num
let mem_bool k v = member k v |> opt_bind to_bool
