(* Request execution inside a serve worker.

   The warm state lives here: a bounded LRU mapping request digests to
   type-checked environments with their incremental oracles (spec
   requests) or memoized verdicts (sat requests).  A second request for
   the same source skips the frontend, the translation, and — via the
   oracle's digest-keyed verdict caches — most of the solving. *)

module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Sat = Specrepair_sat
module Engine = Specrepair_engine
module Repair = Specrepair_repair
module Llm = Specrepair_llm
module Eval = Specrepair_eval

type warmth = Warm | Cold | Uncached

type entry =
  | Spec of { env : Alloy.Typecheck.env; oracle : Solver.Oracle.t }
  | Cnf_verdict of string

type t = { registry : entry Registry.t }

let create ~max_sessions = { registry = Registry.create ~max:max_sessions }
let registry_stats t = Registry.stats t.registry

let chaos_enabled () = Sys.getenv_opt "SPECREPAIR_SERVE_CHAOS" = Some "1"

let run_chaos = function
  | Some spec when chaos_enabled () -> (
      match String.split_on_char ':' spec with
      | [ "kill" ] ->
          (* simulate a worker crash mid-request: the RES line is never
             sent, the daemon's waitpid poll must notice and respawn *)
          Unix.kill (Unix.getpid ()) Sys.sigkill
      | [ "sleep"; ms ] -> (
          match float_of_string_opt ms with
          | Some ms when ms > 0. -> Unix.sleepf (ms /. 1000.)
          | _ -> ())
      | _ -> ())
  | _ -> ()

exception Reply of string

let spec_error ~id ~source diagnostics =
  ignore source;
  Protocol.error_reply ~id ~code:Protocol.Spec_error
    ~data:
      [
        ( "diagnostics",
          Json.List (List.map (fun d -> Json.Raw (Alloy.Diagnostic.to_json d)) diagnostics)
        );
      ]
    "specification rejected by the frontend"

(* The warm entry for a spec request: frontend-checked env + incremental
   oracle.  Frontend failures raise a complete reply (they are not cached:
   a bad spec costs a parse on every submission, which is also the honest
   cache_misses accounting). *)
let spec_entry t ~id ~key ~file ~source ~simplify ~portfolio =
  let build () =
    match Alloy.Frontend.check ~file source with
    | Ok ok ->
        Spec
          {
            env = ok.Alloy.Frontend.env;
            oracle = Solver.Oracle.create ~simplify ~portfolio ok.Alloy.Frontend.env;
          }
    | Error d -> raise (Reply (spec_error ~id ~source [ d ]))
  in
  match Registry.find_or_add t.registry key build with
  | Spec { env; oracle }, warm -> (env, oracle, warm)
  | Cnf_verdict _, _ ->
      (* digest namespaces ("spec:"/"cnf:") make this unreachable *)
      raise
        (Reply (Protocol.error_reply ~id ~code:Protocol.Internal "cache kind clash"))

let command_label (c : Alloy.Ast.command) =
  match c.cmd_kind with
  | Alloy.Ast.Run_pred n -> "run " ^ n
  | Alloy.Ast.Run_fmla _ -> "run {...}"
  | Alloy.Ast.Check n -> "check " ^ n

let verdict_str = function
  | `Sat -> "sat"
  | `Unsat -> "unsat"
  | `Unknown -> "unknown"

let handle_repair t ~id (p : Protocol.repair_params) =
  let key = Option.get (Protocol.cache_key (Protocol.Repair p)) in
  let env, oracle, warm =
    spec_entry t ~id ~key ~file:p.file ~source:p.source ~simplify:p.simplify
      ~portfolio:p.portfolio
  in
  let session =
    Repair.Session.create ~oracle ~seed:p.seed ?deadline_ms:p.deadline_ms env
  in
  (* validated by Protocol.parse_request against the panel registry *)
  let profile = Option.get (Llm.Model.profile_of_name p.profile) in
  let result =
    match p.tool with
    | "beafix" -> Repair.Beafix.repair ~session env
    | "atr" -> Repair.Atr.repair ~session env
    | "multi-round" ->
        let task =
          Llm.Task.make ~spec_id:p.file ~domain:"serve"
            ~faulty:env.Alloy.Typecheck.spec ()
        in
        Llm.Multi_round.repair ~session ~profile task Llm.Multi_round.Generic
    | "portfolio" ->
        let task =
          Llm.Task.make ~spec_id:p.file ~domain:"serve"
            ~faulty:env.Alloy.Typecheck.spec ()
        in
        fst (Eval.Portfolio.repair ~session ~profile task)
    | _ -> assert false (* validated by Protocol.parse_request *)
  in
  let reply =
    Protocol.ok_reply ~id
      (Json.Obj
         [
           ("tool", Json.Str result.Repair.Common.tool);
           ("repaired", Json.Bool result.repaired);
           ("candidates_tried", Json.Num (float_of_int result.candidates_tried));
           ("iterations", Json.Num (float_of_int result.iterations));
           ("timed_out", Json.Bool result.timed_out);
           ("warm", Json.Bool warm);
           ("spec", Json.Str (Alloy.Pretty.spec_to_string result.final_spec));
         ])
  in
  (reply, if warm then Warm else Cold)

let handle_evaluate t ~id (p : Protocol.evaluate_params) =
  let key = Option.get (Protocol.cache_key (Protocol.Evaluate p)) in
  let env, oracle, warm =
    spec_entry t ~id ~key ~file:p.e_file ~source:p.e_source
      ~simplify:p.e_simplify ~portfolio:p.e_portfolio
  in
  let session =
    Repair.Session.create ~oracle ?deadline_ms:p.e_deadline_ms env
  in
  let verdicts =
    List.map
      (fun (c : Alloy.Ast.command) ->
        let v = Repair.Session.command_verdict session env c in
        Json.Obj
          [
            ("command", Json.Str (command_label c));
            ("verdict", Json.Str (verdict_str v));
          ])
      env.Alloy.Typecheck.spec.commands
  in
  let passed = Repair.Common.oracle_passes session env in
  let reply =
    Protocol.ok_reply ~id
      (Json.Obj
         [
           ("passed", Json.Bool passed);
           ("commands", Json.Num (float_of_int (List.length verdicts)));
           ("timed_out", Json.Bool (Repair.Session.timed_out session));
           ("warm", Json.Bool warm);
           ("verdicts", Json.List verdicts);
         ])
  in
  (reply, if warm then Warm else Cold)

let handle_sat t ~id (p : Protocol.sat_params) =
  let key = Option.get (Protocol.cache_key (Protocol.Sat p)) in
  match Sat.Dimacs.parse p.dimacs with
  | exception Sat.Dimacs.Parse_error msg ->
      (Protocol.error_reply ~id ~code:Protocol.Cnf_error msg, Uncached)
  | cnf -> (
      let build () =
        let s = Sat.Solver.create () in
        Sat.Dimacs.load_into s cnf;
        let verdict =
          match Sat.Solver.solve s with
          | Sat.Solver.Sat -> "sat"
          | Sat.Solver.Unsat -> "unsat"
          | Sat.Solver.Unknown -> "unknown"
        in
        Cnf_verdict verdict
      in
      match Registry.find_or_add t.registry key build with
      | Cnf_verdict verdict, warm ->
          let reply =
            Protocol.ok_reply ~id
              (Json.Obj
                 [
                   ("verdict", Json.Str verdict);
                   ("vars", Json.Num (float_of_int cnf.Sat.Dimacs.num_vars));
                   ("clauses", Json.Num (float_of_int (List.length cnf.Sat.Dimacs.clauses)));
                   ("warm", Json.Bool warm);
                 ])
          in
          (reply, if warm then Warm else Cold)
      | Spec _, _ ->
          (Protocol.error_reply ~id ~code:Protocol.Internal "cache kind clash", Uncached))

let handle t line =
  match Protocol.parse_request line with
  | Error reply -> (reply, Uncached)
  | Ok { id; call } -> (
      (match call with
      | Protocol.Repair p -> run_chaos p.chaos
      | Protocol.Evaluate p -> run_chaos p.e_chaos
      | Protocol.Sat p -> run_chaos p.s_chaos
      | Protocol.Status -> ());
      match call with
      | Protocol.Status ->
          (* the daemon answers status itself; a worker only sees it in
             unit tests driving the handler directly *)
          let s = Registry.stats t.registry in
          ( Protocol.ok_reply ~id
              (Json.Obj
                 [
                   ("sessions", Json.Num (float_of_int (Registry.size t.registry)));
                   ("cache_hits", Json.Num (float_of_int s.Registry.hits));
                   ("cache_misses", Json.Num (float_of_int s.Registry.misses));
                 ]),
            Uncached )
      | Protocol.Repair p -> (
          try handle_repair t ~id p with
          | Reply r -> (r, Uncached)
          | e ->
              ( Protocol.error_reply ~id ~code:Protocol.Internal (Printexc.to_string e),
                Uncached ))
      | Protocol.Evaluate p -> (
          try handle_evaluate t ~id p with
          | Reply r -> (r, Uncached)
          | e ->
              ( Protocol.error_reply ~id ~code:Protocol.Internal (Printexc.to_string e),
                Uncached ))
      | Protocol.Sat p -> (
          try handle_sat t ~id p with
          | Reply r -> (r, Uncached)
          | e ->
              ( Protocol.error_reply ~id ~code:Protocol.Internal (Printexc.to_string e),
                Uncached )))
