(** The daemon's fork-worker pool: the serving counterpart of the study
    scheduler's worker protocol ({!Specrepair_eval.Scheduler}).

    [jobs] workers are forked at creation, each running a caller-supplied
    handler over a line protocol ('\n'-terminated, one message per line):

    {v
    parent -> worker  (per-worker command pipe)
      REQ <token> <line>      serve this request line
      QUIT                    exit cleanly

    worker -> parent  (per-worker message pipe)
      HB <token>              request received; solving (heartbeat)
      RES <token> <W|C|U> <line>   reply line, tagged warm/cold/uncached
    v}

    Workers are {e sticky}: the daemon routes each request to the worker
    owning its cache key (worker index = hash of key mod jobs), so warm
    state accumulates per worker and repeated requests hit it
    deterministically.  A worker that dies mid-request — crash, [kill -9],
    OOM — surfaces as a {!event.Died} for exactly its in-flight request,
    and the slot is respawned with a fresh (cold) handler: a crash costs
    one request, never the daemon.  Overdue workers (a request past its
    hard deadline) are SIGKILLed by {!kill_overdue} with the same
    one-request blast radius.

    The pool performs no I/O multiplexing of its own: the daemon folds
    {!fds} into its [select] set and calls {!drain} / {!reap} /
    {!kill_overdue} from its loop. *)

type t

type event =
  | Reply of { token : int; warmth : Handler.warmth; line : string }
  | Died of { token : int; slot : int }
      (** the worker serving [token] is gone; it has been respawned *)
  | Timed_out of { token : int; slot : int }
      (** the parent killed the worker for exceeding the request's hard
          deadline; it has been respawned *)

val create : jobs:int -> handle:(string -> string * Handler.warmth) -> t
(** Fork [jobs] (clamped to >= 1) workers.  [handle] runs in the worker
    processes; it must return a newline-free reply line. *)

val jobs : t -> int

val slot_of_key : t -> string -> int
(** The sticky worker index for a cache key. *)

val idle : t -> int -> bool
(** Has slot [i] no in-flight request? *)

val dispatch : t -> slot:int -> token:int -> ?kill_after_s:float -> string -> unit
(** Send a request line to an idle slot.  [kill_after_s] arms the hard
    deadline enforced by {!kill_overdue}.  Raises [Invalid_argument] if
    the slot is busy. *)

val fds : t -> Unix.file_descr list
(** Message-pipe descriptors to fold into the daemon's [select] read set
    (recompute after every {!drain}/{!reap}: respawns change them). *)

val drain : t -> Unix.file_descr list -> event list
(** Consume readable message pipes, returning completed replies (and
    death events discovered via EOF). *)

val reap : t -> event list
(** Poll [waitpid WNOHANG] over all slots: reap dead workers, respawn
    their slots, and return a {!event.Died} per lost in-flight request. *)

val kill_overdue : t -> event list
(** SIGKILL workers whose in-flight request passed its hard deadline;
    respawn and report {!event.Timed_out}. *)

val respawns : t -> int
(** Workers respawned after an unexpected death (the initial forks and
    QUIT-driven exits don't count). *)

val pids : t -> int list
(** Current worker pids, for tests that kill workers externally. *)

val shutdown : t -> unit
(** QUIT idle workers, SIGKILL busy ones, reap everything, close pipes. *)
