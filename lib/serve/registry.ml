(* A small bounded LRU over an association list: the registry holds at
   most [--max-sessions] warm entries per worker, and lookups are rare
   (one per request) next to the solving they amortize, so O(n) list
   surgery is the simplest correct structure. *)

type stats = { hits : int; misses : int; evictions : int }

type 'a t = {
  max : int;
  mutable entries : (string * 'a) list;  (* most-recently-used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~max = { max = Stdlib.max 1 max; entries = []; hits = 0; misses = 0; evictions = 0 }

let promote t key value =
  t.entries <- (key, value) :: List.filter (fun (k, _) -> k <> key) t.entries

let find_or_add t key build =
  match List.assoc_opt key t.entries with
  | Some v ->
      t.hits <- t.hits + 1;
      promote t key v;
      (v, true)
  | None ->
      t.misses <- t.misses + 1;
      let v = build () in
      promote t key v;
      if List.length t.entries > t.max then begin
        let keep = List.filteri (fun i _ -> i < t.max) t.entries in
        t.evictions <- t.evictions + (List.length t.entries - t.max);
        t.entries <- keep
      end;
      (v, false)

let size t = List.length t.entries
let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }
