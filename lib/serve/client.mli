(** Client-side plumbing for the serve protocol: connect, one-line
    round-trips, and a forked concurrent burst.  Used by the
    [specrepair client] subcommand, the SERVE bench stage and the smoke
    scripts. *)

type addr =
  | Unix_sock of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

type conn

val connect : addr -> (conn, string) result
(** One attempt; no retry (callers wait for the socket file / port). *)

val roundtrip : conn -> string -> (string, string) result
(** Send one request line, read one reply line.  [Error] on a closed or
    broken connection. *)

val send_partial : conn -> string -> unit
(** Write raw bytes without a terminating newline — only for tests of the
    daemon's disconnect-mid-request behaviour. *)

val close : conn -> unit

val oneshot : addr -> string -> (string, string) result
(** [connect] + {!roundtrip} + {!close}. *)

val burst : addr -> string list -> (string list, string) result
(** Fire all request lines concurrently, one forked child and one fresh
    connection per line; blocks until every child is done.  [Ok replies]
    has one reply per request, in request order.  [Error] if any child
    failed to connect or read a reply. *)
