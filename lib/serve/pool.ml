(* The serving worker pool.  Same bones as the study scheduler's worker
   protocol (fork, per-worker pipes, line messages, WNOHANG death polls,
   SIGKILL + respawn) but shaped for a daemon: workers are long-lived and
   sticky (warm caches accrue per slot), requests are individually
   dispatched rather than chunked, and a lost worker fails exactly its
   in-flight request — the daemon turns that into one error reply, never
   a retry (repair requests are not idempotent in wall-clock cost). *)

type inflight = {
  token : int;
  started : float;
  kill_at : float option;  (* hard deadline; None = never killed *)
}

type slot = {
  index : int;
  mutable pid : int;
  mutable cmd_w : Unix.file_descr;
  mutable msg_r : Unix.file_descr;
  rbuf : Buffer.t;
  mutable inflight : inflight option;
  mutable last_beat : float;
}

type t = {
  slots : slot array;
  handle : string -> string * Handler.warmth;
  mutable respawns : int;
}

type event =
  | Reply of { token : int; warmth : Handler.warmth; line : string }
  | Died of { token : int; slot : int }
  | Timed_out of { token : int; slot : int }

let now () = Unix.gettimeofday ()

let write_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length b in
  let rec go off = if off < len then go (off + Unix.write fd b off (len - off)) in
  go 0

let one_line s = String.map (fun c -> if c = '\n' then ' ' else c) s

let warmth_char = function
  | Handler.Warm -> 'W'
  | Handler.Cold -> 'C'
  | Handler.Uncached -> 'U'

let warmth_of_char = function
  | "W" -> Some Handler.Warm
  | "C" -> Some Handler.Cold
  | "U" -> Some Handler.Uncached
  | _ -> None

(* {2 Worker side} *)

let worker_main ~handle ~cmd_r ~msg_w =
  (* the daemon's signal discipline must not leak into workers: a SIGTERM
     aimed at the daemon is handled there, workers are killed explicitly *)
  (try Sys.set_signal Sys.sigterm Sys.Signal_default with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_default with Invalid_argument _ -> ());
  let ic = Unix.in_channel_of_descr cmd_r in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | "QUIT" -> ()
    | line -> (
        match String.index_opt line ' ' with
        | Some sp when String.sub line 0 sp = "REQ" -> (
            let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
            match String.index_opt rest ' ' with
            | Some sp2 -> (
                match int_of_string_opt (String.sub rest 0 sp2) with
                | Some token ->
                    let req = String.sub rest (sp2 + 1) (String.length rest - sp2 - 1) in
                    write_line msg_w (Printf.sprintf "HB %d" token);
                    let reply, warmth =
                      try handle req
                      with e ->
                        ( Protocol.error_reply ~id:"" ~code:Protocol.Internal
                            (Printexc.to_string e),
                          Handler.Uncached )
                    in
                    write_line msg_w
                      (Printf.sprintf "RES %d %c %s" token (warmth_char warmth)
                         (one_line reply));
                    loop ()
                | None -> loop ())
            | None -> loop ())
        | _ -> loop ())
  in
  loop ()

(* {2 Parent side} *)

let spawn t (s : slot) =
  let cmd_r, cmd_w = Unix.pipe ~cloexec:false () in
  let msg_r, msg_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close cmd_w;
      Unix.close msg_r;
      (* drop inherited parent ends of the sibling slots' pipes *)
      Array.iter
        (fun (o : slot) ->
          if o.index <> s.index then begin
            (try Unix.close o.cmd_w with Unix.Unix_error _ -> ());
            (try Unix.close o.msg_r with Unix.Unix_error _ -> ())
          end)
        t.slots;
      (match worker_main ~handle:t.handle ~cmd_r ~msg_w with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 2)
  | pid ->
      Unix.close cmd_r;
      Unix.close msg_w;
      (* Non-blocking parent end: a respawn recycles fd numbers, so a
         caller holding a pre-respawn readable set from select could
         otherwise block forever reading the fresh worker's silent pipe.
         drain already treats EAGAIN as "nothing there". *)
      Unix.set_nonblock msg_r;
      s.pid <- pid;
      s.cmd_w <- cmd_w;
      s.msg_r <- msg_r;
      Buffer.clear s.rbuf;
      s.inflight <- None;
      s.last_beat <- now ()

let close_slot_fds (s : slot) =
  (try Unix.close s.cmd_w with Unix.Unix_error _ -> ());
  (try Unix.close s.msg_r with Unix.Unix_error _ -> ())

let create ~jobs ~handle =
  let jobs = max 1 jobs in
  let t =
    {
      slots =
        Array.init jobs (fun index ->
            {
              index;
              pid = -1;
              cmd_w = Unix.stdin;
              msg_r = Unix.stdin;
              rbuf = Buffer.create 256;
              inflight = None;
              last_beat = 0.;
            });
      handle;
      respawns = 0;
    }
  in
  Array.iter (fun s -> spawn t s) t.slots;
  t

let jobs t = Array.length t.slots
let slot_of_key t key = Hashtbl.hash key mod jobs t
let idle t i = t.slots.(i).inflight = None
let respawns t = t.respawns
let pids t = Array.to_list (Array.map (fun s -> s.pid) t.slots)

let dispatch t ~slot ~token ?kill_after_s line =
  let s = t.slots.(slot) in
  if s.inflight <> None then invalid_arg "Pool.dispatch: slot is busy";
  s.inflight <-
    Some
      {
        token;
        started = now ();
        kill_at = Option.map (fun d -> now () +. d) kill_after_s;
      };
  s.last_beat <- now ();
  (* a failed write means the worker is already dead: leave the request
     in flight, the reap poll will surface the Died event and respawn *)
  try write_line s.cmd_w ("REQ " ^ string_of_int token ^ " " ^ one_line line)
  with Unix.Unix_error ((EPIPE | EBADF), _, _) -> ()

let fds t = Array.to_list (Array.map (fun s -> s.msg_r) t.slots)

(* A dead worker's slot: respawn immediately (the daemon's router assumes
   every slot exists) and surface the lost request, if any. *)
let lose t (s : slot) ~timed_out acc =
  let ev =
    match s.inflight with
    | Some { token; _ } ->
        if timed_out then Some (Timed_out { token; slot = s.index })
        else Some (Died { token; slot = s.index })
    | None -> None
  in
  close_slot_fds s;
  t.respawns <- t.respawns + 1;
  spawn t s;
  match ev with Some e -> e :: acc | None -> acc

let reap_blocking pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error (ECHILD, _, _) -> ()

let handle_line (s : slot) line acc =
  match String.split_on_char ' ' line with
  | [ "HB"; _ ] ->
      s.last_beat <- now ();
      acc
  | "RES" :: token :: w :: rest -> (
      match (int_of_string_opt token, warmth_of_char w, s.inflight) with
      | Some token, Some warmth, Some { token = t'; _ } when token = t' ->
          s.inflight <- None;
          s.last_beat <- now ();
          Reply { token; warmth; line = String.concat " " rest } :: acc
      | _ -> acc (* stale or garbled; the reap poll recovers *))
  | _ -> acc

let scratch = Bytes.create 65536

let drain t readable =
  Array.fold_left
    (fun acc (s : slot) ->
      if not (List.mem s.msg_r readable) then acc
      else
        match Unix.read s.msg_r scratch 0 (Bytes.length scratch) with
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> acc
        | 0 ->
            (* EOF: the worker is gone; reap and respawn right here so the
               slot is usable again without waiting for the next poll *)
            reap_blocking s.pid;
            lose t s ~timed_out:false acc
        | k ->
            Buffer.add_subbytes s.rbuf scratch 0 k;
            let rec lines acc =
              let text = Buffer.contents s.rbuf in
              match String.index_opt text '\n' with
              | None -> acc
              | Some i ->
                  Buffer.clear s.rbuf;
                  Buffer.add_substring s.rbuf text (i + 1) (String.length text - i - 1);
                  lines (handle_line s (String.sub text 0 i) acc)
            in
            lines acc)
    [] t.slots

let reap t =
  Array.fold_left
    (fun acc (s : slot) ->
      match Unix.waitpid [ Unix.WNOHANG ] s.pid with
      | 0, _ -> acc
      | _, _ -> lose t s ~timed_out:false acc
      | exception Unix.Unix_error (ECHILD, _, _) -> lose t s ~timed_out:false acc)
    [] t.slots

let kill_overdue t =
  Array.fold_left
    (fun acc (s : slot) ->
      match s.inflight with
      | Some { kill_at = Some at; _ } when now () > at ->
          (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap_blocking s.pid;
          lose t s ~timed_out:true acc
      | _ -> acc)
    [] t.slots

let shutdown t =
  Array.iter
    (fun (s : slot) ->
      (match s.inflight with
      | Some _ ->
          (* busy: it would only see QUIT after finishing; don't wait *)
          (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None -> (
          try write_line s.cmd_w "QUIT"
          with Unix.Unix_error ((EPIPE | EBADF), _, _) -> ()));
      reap_blocking s.pid;
      close_slot_fds s)
    t.slots
