(* Serve-protocol client plumbing.  Everything is blocking and
   line-oriented; concurrency comes from [burst], which forks one child
   per request so the daemon genuinely sees overlapping connections. *)

type addr = Unix_sock of string | Tcp of string * int

type conn = { fd : Unix.file_descr; rbuf : Buffer.t }

let connect addr =
  match
    match addr with
    | Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for " ^ host)
            | h -> h.Unix.h_addr_list.(0))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (ip, port));
        fd
  with
  | fd -> Ok { fd; rbuf = Buffer.create 1024 }
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect failed: %s" (Unix.error_message e))
  | exception Failure msg -> Error msg
  | exception Not_found -> Error "host not found"

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off = if off < len then go (off + Unix.write fd b off (len - off)) in
  go 0

let send_partial c s =
  try write_all c.fd s with Unix.Unix_error _ -> ()

let read_line c =
  let buf = Bytes.create 65536 in
  let rec go () =
    let text = Buffer.contents c.rbuf in
    match String.index_opt text '\n' with
    | Some i ->
        Buffer.clear c.rbuf;
        Buffer.add_substring c.rbuf text (i + 1) (String.length text - i - 1);
        Ok (String.sub text 0 i)
    | None -> (
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> Error "connection closed by the daemon"
        | k ->
            Buffer.add_subbytes c.rbuf buf 0 k;
            go ()
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read failed: %s" (Unix.error_message e)))
  in
  go ()

let roundtrip c line =
  match write_all c.fd (line ^ "\n") with
  | () -> read_line c
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "write failed: %s" (Unix.error_message e))

let oneshot addr line =
  match connect addr with
  | Error _ as e -> e
  | Ok c ->
      let r = roundtrip c line in
      close c;
      r

(* One forked child per request: each opens its own connection, performs
   the round-trip, and streams the reply back to the parent over a pipe,
   so the daemon sees genuinely concurrent clients. *)
let burst addr lines =
  let children =
    List.map
      (fun line ->
        let r, w = Unix.pipe ~cloexec:false () in
        match Unix.fork () with
        | 0 -> (
            Unix.close r;
            let status =
              match oneshot addr line with
              | Ok reply ->
                  (try write_all w (reply ^ "\n") with Unix.Unix_error _ -> ());
                  0
              | Error msg ->
                  (try write_all w ("!" ^ msg ^ "\n") with Unix.Unix_error _ -> ());
                  1
            in
            Unix._exit status)
        | pid ->
            Unix.close w;
            (pid, r))
      lines
  in
  let results =
    List.map
      (fun (pid, r) ->
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 65536 in
        let rec drain () =
          match Unix.read r chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | k ->
              Buffer.add_subbytes buf chunk 0 k;
              drain ()
          | exception Unix.Unix_error (EINTR, _, _) -> drain ()
          | exception Unix.Unix_error _ -> ()
        in
        drain ();
        (try Unix.close r with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid)
         with Unix.Unix_error (ECHILD, _, _) -> ());
        match String.split_on_char '\n' (Buffer.contents buf) with
        | line :: _ when String.length line > 0 && line.[0] = '!' ->
            Error (String.sub line 1 (String.length line - 1))
        | line :: _ when line <> "" -> Ok line
        | _ -> Error "no reply from burst child")
      children
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok r :: rest -> collect (r :: acc) rest
    | Error msg :: _ -> Error msg
  in
  collect [] results
