(** The [specrepair serve] daemon: a long-lived server answering
    concurrent repair / evaluate / sat / status requests over a
    Unix-domain socket (optionally TCP) from warm per-worker state.

    One process, one [select] loop: client sockets, listener sockets and
    the {!Pool}'s worker message pipes are multiplexed together.  The
    parent never solves — it parses and validates requests
    ({!Protocol.parse_request}), applies admission control, routes each
    request to its sticky worker, and forwards reply lines; all solving
    (and all warm state) lives in the forked workers, so a worker crash
    costs exactly the request it was serving.

    {b Admission.}  A request is dispatched if its sticky worker is idle,
    queued while fewer than [queue_depth] requests wait, and refused with
    an immediate [overloaded] reply once [max_inflight] requests are in
    the system (dispatched + queued) or the queue is full.

    {b Deadlines.}  A request's [deadline_ms] is enforced cooperatively by
    the worker's {!Specrepair_engine.Session} (best-effort results, the
    [timed_out] flag).  The daemon additionally arms a hard backstop at
    [3 x deadline + 2 s] — a worker stuck past that is SIGKILLed, the
    client gets a [deadline_exceeded] reply, and the slot respawns cold.
    [hard_timeout_ms] arms the same backstop for deadline-less requests.

    {b Shutdown.}  SIGTERM/SIGINT stop the loop: queued requests are
    answered [shutting_down], workers are released, the socket file is
    unlinked, and [run] returns (exit 0 in the CLI). *)

type config = {
  socket : string option;  (** Unix-domain socket path *)
  tcp : int option;  (** TCP port on 127.0.0.1 *)
  workers : int;  (** pool size (sticky routing over this many slots) *)
  max_sessions : int;  (** warm-entry LRU bound per worker *)
  max_inflight : int;  (** admission bound: dispatched + queued *)
  queue_depth : int;  (** bound on the wait queue alone *)
  max_request_bytes : int;  (** request lines beyond this are [oversized] *)
  hard_timeout_ms : float option;
      (** hard kill for requests {e without} a deadline; [None] = never *)
  telemetry : string option;  (** append per-request JSONL to this path *)
}

val default_config : config
(** workers 2, max_sessions 32, max_inflight 64, queue_depth 64,
    max_request_bytes 8 MiB, no hard timeout, no listeners (callers must
    set [socket] or [tcp]). *)

val run : config -> unit
(** Serve until SIGTERM/SIGINT.  Raises [Failure] if no listener is
    configured or the socket cannot be bound.  Prints one
    ["serve: listening ..."] line on stdout when ready and one
    ["serve: shutdown ..."] line when done. *)
