(** The repair session: one instrumented context threaded through every
    repair technique.

    A [Session.t] bundles everything a run of any engine needs — the
    incremental solving {!Specrepair_solver.Oracle.t}, the search {!budget},
    the deterministic RNG seed, an optional wall-clock {e deadline} on the
    monotonic clock, and a {!Telemetry.t} sink — replacing the
    [?oracle]/[?seed]/[?budget]/[?max_conflicts] optional-argument sprawl of
    the earlier entry points.

    {b Deadline semantics.}  Enforcement is cooperative: engines poll
    {!expired} at every candidate-evaluation boundary and, once the deadline
    has passed, abort the search and return their current best-effort
    result with the [timed_out] flag set (they never hang and never raise).
    The first observation of expiry latches: all later polls — including
    from derived sessions ({!with_budget}) and across portfolio stages —
    answer [true] without reading the clock.  A session without a deadline
    never expires and never reads the clock on the poll path.

    {b Sharing.}  One session may span several engines (the portfolio runs
    ATR and Multi-Round in a single session) and nested invocations (ICEBAR
    derives an inner ARepair session with {!with_budget}); oracle, telemetry
    and the expiry latch are shared, so counters aggregate across stages
    and a deadline cuts the whole pipeline, not just one stage. *)

module Alloy = Specrepair_alloy
module Solver = Specrepair_solver

type budget = {
  max_depth : int;  (** greedy / composition depth *)
  max_candidates : int;  (** candidates evaluated in one invocation *)
  max_iterations : int;  (** outer refinement rounds (ICEBAR) *)
  max_conflicts : int;  (** SAT conflict budget per analyzer call *)
  locations : int;  (** suspicious locations explored *)
  use_pool : bool;
      (** may the search synthesize replacement expressions / added juncts?
          ARepair's original space lacked them *)
}

val default_budget : budget

type t

val create :
  ?oracle:Solver.Oracle.t ->
  ?certify:bool ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?budget:budget ->
  ?seed:int ->
  ?deadline_ms:float ->
  Alloy.Typecheck.env ->
  t
(** A fresh session for [env].  Without [?oracle] a new incremental oracle
    is created from [env] (cheap; real work is lazy).  With [~certify:true]
    (default [false]) that oracle cross-checks every UNSAT verdict against
    an independent DRUP proof checker and reports each outcome into the
    session's telemetry ([certified_unsat] / [certificate_failures]);
    ignored when an explicit [?oracle] is supplied — configure certification
    on the oracle itself in that case.  [~simplify:true] and [~portfolio:n]
    configure the created oracle's verdict-only fresh solves (see
    {!Specrepair_solver.Oracle.create}); like [certify], they are ignored
    when an explicit [?oracle] is supplied.  [?deadline_ms] is relative to
    now on the monotonic clock; omitted means no deadline.  Default budget
    {!default_budget}, default seed 42. *)

val for_spec :
  ?oracle:Solver.Oracle.t ->
  ?certify:bool ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?budget:budget ->
  ?seed:int ->
  ?deadline_ms:float ->
  Alloy.Ast.spec ->
  t
(** Like {!create} but from a bare spec: if it does not type-check (possible
    for LLM-written inputs) the session is anchored on the empty spec, whose
    oracle serves every query by transparent fresh-solve fallback. *)

val with_budget : t -> (budget -> budget) -> t
(** A derived session with a transformed budget; oracle, telemetry, seed,
    deadline and the expiry latch remain shared with the parent. *)

(** {2 Components} *)

val env : t -> Alloy.Typecheck.env
val oracle : t -> Solver.Oracle.t
val budget : t -> budget
val seed : t -> int
val telemetry : t -> Telemetry.t

(** {2 Deadline} *)

val expired : t -> bool
(** Has the deadline passed?  Latches on first observation; counted in
    telemetry as a deadline check.  Always [false] without a deadline. *)

val timed_out : t -> bool
(** Has {!expired} ever answered [true]?  Does not read the clock. *)

val deadline_ms : t -> float option
(** The configured deadline, relative to session creation. *)

val remaining_ms : t -> float option
(** Milliseconds left before the deadline ([None] without one, [Some 0.]
    once expired — the latch is honoured without re-reading the clock).
    The learned portfolio sizes its technique plan against this. *)

(** {2 Clock} *)

val now_ns : unit -> int64
(** The monotonic clock, in nanoseconds. *)

val elapsed_ms : t -> float
(** Monotonic wall-clock milliseconds since session creation. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t phase f] runs [f] and adds its wall-clock duration to the
    telemetry phase timer [phase] (also on exception). *)

(** {2 Instrumented oracle queries}

    Thin wrappers over {!Specrepair_solver.Oracle} that record telemetry.
    [?max_conflicts] is passed through verbatim — deliberately not defaulted
    from the budget, so each call site keeps the exact conflict budget (or
    unlimited solve) it had before sessions existed. *)

val command_verdict :
  ?max_conflicts:int ->
  t ->
  Alloy.Typecheck.env ->
  Alloy.Ast.command ->
  Solver.Oracle.verdict

val run_command :
  ?max_conflicts:int ->
  t ->
  Alloy.Typecheck.env ->
  Alloy.Ast.command ->
  Solver.Analyzer.outcome

val enumerate :
  ?limit:int ->
  ?max_conflicts:int ->
  t ->
  Alloy.Typecheck.env ->
  Solver.Bounds.scope ->
  Alloy.Ast.fmla ->
  Alloy.Instance.t list

(** {2 Reporting} *)

val oracle_stats : t -> Solver.Oracle.stats
(** Oracle counters accumulated {e during this session}: the delta against
    the snapshot taken at session creation (relevant when the oracle is
    shared across sessions, as in the study).  [contexts] is a gauge and is
    reported absolute. *)

val sat_stats : t -> Solver.Oracle.sat_stats
(** SAT-solver work accumulated during this session (same delta semantics
    as {!oracle_stats}): conflicts, decisions, propagations, restarts and
    learnt-database reductions across the oracle's solvers, plus the
    simplifier's subsumed / strengthened / vivified / eliminated counters
    when simplification is enabled. *)

val telemetry_json : ?extra:(string * string) list -> t -> string
(** One-line JSON object: [extra] string fields first (escaped), then
    [elapsed_ms], [timed_out], the {!Telemetry.t} counters, the per-phase
    timers, the session-relative oracle stats, and a ["sat"] object with
    the {!sat_stats} solver counters.  Schema documented in DESIGN.md. *)

val pp_telemetry : Format.formatter -> t -> unit
