module Alloy = Specrepair_alloy
module Solver = Specrepair_solver

type budget = {
  max_depth : int;
  max_candidates : int;
  max_iterations : int;
  max_conflicts : int;
  locations : int;
  use_pool : bool;
}

let default_budget =
  {
    max_depth = 2;
    max_candidates = 800;
    max_iterations = 4;
    max_conflicts = 20_000;
    locations = 6;
    use_pool = true;
  }

type t = {
  env : Alloy.Typecheck.env;
  oracle : Solver.Oracle.t;
  budget : budget;
  seed : int;
  started_ns : int64;
  deadline_ns : int64 option;  (* absolute, on the monotonic clock *)
  deadline_rel_ms : float option;
  telemetry : Telemetry.t;
  oracle_base : Solver.Oracle.stats;  (* snapshot at creation, for deltas *)
  sat_base : Solver.Oracle.sat_stats;
  expiry : bool ref;  (* latched; shared with derived sessions *)
}

let now_ns () = Monotonic_clock.now ()

let create ?oracle ?(certify = false) ?(simplify = false) ?(portfolio = 1)
    ?(budget = default_budget) ?(seed = 42) ?deadline_ms env =
  let telemetry = Telemetry.create () in
  let oracle =
    match oracle with
    | Some o -> o
    | None ->
        Solver.Oracle.create ~certify ~simplify ~portfolio
          ~on_certify:(Telemetry.record_certified telemetry)
          env
  in
  let started_ns = now_ns () in
  {
    env;
    oracle;
    budget;
    seed;
    started_ns;
    deadline_ns =
      Option.map
        (fun ms -> Int64.add started_ns (Int64.of_float (ms *. 1e6)))
        deadline_ms;
    deadline_rel_ms = deadline_ms;
    telemetry;
    oracle_base = Solver.Oracle.stats oracle;
    sat_base = Solver.Oracle.sat_stats oracle;
    expiry = ref false;
  }

let for_spec ?oracle ?certify ?simplify ?portfolio ?budget ?seed ?deadline_ms
    spec =
  let env =
    match Alloy.Typecheck.check_result spec with
    | Ok env -> env
    | Error _ ->
        (* ill-typed input (an LLM task whose faulty spec does not check):
           anchor on the empty spec; every candidate is sig-incompatible and
           the oracle serves it by fresh-solve fallback, transparently *)
        Alloy.Typecheck.check Alloy.Ast.empty_spec
  in
  create ?oracle ?certify ?simplify ?portfolio ?budget ?seed ?deadline_ms env

let with_budget t f = { t with budget = f t.budget }

let env t = t.env
let oracle t = t.oracle
let budget t = t.budget
let seed t = t.seed
let telemetry t = t.telemetry

let expired t =
  match t.deadline_ns with
  | None -> false
  | Some _ when !(t.expiry) -> true
  | Some deadline ->
      Telemetry.deadline_check t.telemetry;
      if Int64.compare (now_ns ()) deadline >= 0 then begin
        t.expiry := true;
        true
      end
      else false

let timed_out t = !(t.expiry)
let deadline_ms t = t.deadline_rel_ms

let elapsed_ms t = Int64.to_float (Int64.sub (now_ns ()) t.started_ns) /. 1e6

(* Clock-reading but latch-preserving: an already-expired session always
   answers [Some 0.].  The learned portfolio budgets its technique plan
   against this. *)
let remaining_ms t =
  match t.deadline_ns with
  | None -> None
  | Some _ when !(t.expiry) -> Some 0.
  | Some deadline ->
      Some
        (Float.max 0.
           (Int64.to_float (Int64.sub deadline (now_ns ())) /. 1e6))

let time t phase f =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.add_phase_ms t.telemetry phase
        (Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6))
    f

let command_verdict ?max_conflicts t env cmd =
  let v = Solver.Oracle.command_verdict ?max_conflicts t.oracle env cmd in
  Telemetry.record_verdict t.telemetry v;
  v

let run_command ?max_conflicts t env cmd =
  Telemetry.record_instance_query t.telemetry;
  Solver.Oracle.run_command ?max_conflicts t.oracle env cmd

let enumerate ?limit ?max_conflicts t env scope f =
  Telemetry.record_enumeration t.telemetry;
  Solver.Oracle.enumerate ?limit ?max_conflicts t.oracle env scope f

let sat_stats t =
  let s = Solver.Oracle.sat_stats t.oracle and b = t.sat_base in
  {
    Solver.Oracle.conflicts = s.conflicts - b.conflicts;
    decisions = s.decisions - b.decisions;
    propagations = s.propagations - b.propagations;
    restarts = s.restarts - b.restarts;
    reductions = s.reductions - b.reductions;
    subsumed = s.subsumed - b.subsumed;
    strengthened = s.strengthened - b.strengthened;
    vivified = s.vivified - b.vivified;
    eliminated = s.eliminated - b.eliminated;
  }

let oracle_stats t =
  let s = Solver.Oracle.stats t.oracle and b = t.oracle_base in
  {
    Solver.Oracle.verdict_hits = s.verdict_hits - b.verdict_hits;
    verdict_misses = s.verdict_misses - b.verdict_misses;
    instance_hits = s.instance_hits - b.instance_hits;
    instance_misses = s.instance_misses - b.instance_misses;
    fallback_queries = s.fallback_queries - b.fallback_queries;
    formulas_translated = s.formulas_translated - b.formulas_translated;
    formulas_reused = s.formulas_reused - b.formulas_reused;
    contexts = s.contexts;
    certified = s.certified - b.certified;
    certificate_failures = s.certificate_failures - b.certificate_failures;
  }

(* {2 JSON serialization} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let telemetry_json ?(extra = []) t =
  let buf = Buffer.create 512 in
  let first = ref true in
  let field name value =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape name) value)
  in
  Buffer.add_char buf '{';
  List.iter
    (fun (k, v) -> field k (Printf.sprintf "\"%s\"" (json_escape v)))
    extra;
  let m = t.telemetry in
  field "elapsed_ms" (Printf.sprintf "%.3f" (elapsed_ms t));
  field "timed_out" (string_of_bool (timed_out t));
  field "solver_queries" (string_of_int (Telemetry.solver_queries m));
  field "sat_verdicts" (string_of_int m.Telemetry.sat_verdicts);
  field "unsat_verdicts" (string_of_int m.Telemetry.unsat_verdicts);
  field "unknown_verdicts" (string_of_int m.Telemetry.unknown_verdicts);
  field "instance_queries" (string_of_int m.Telemetry.instance_queries);
  field "enumerations" (string_of_int m.Telemetry.enumerations);
  field "candidates_generated" (string_of_int m.Telemetry.candidates_generated);
  field "candidates_evaluated" (string_of_int m.Telemetry.candidates_evaluated);
  field "llm_rounds" (string_of_int m.Telemetry.llm_rounds);
  field "pool_peak" (string_of_int m.Telemetry.pool_peak);
  field "deadline_checks" (string_of_int m.Telemetry.deadline_checks);
  field "certified_unsat" (string_of_int m.Telemetry.certified_unsat);
  field "certificate_failures"
    (string_of_int m.Telemetry.certificate_failures);
  let os = oracle_stats t in
  field "oracle"
    (Printf.sprintf
       "{\"verdict_hits\":%d,\"verdict_misses\":%d,\"instance_hits\":%d,\
        \"instance_misses\":%d,\"fallback_queries\":%d,\
        \"formulas_translated\":%d,\"formulas_reused\":%d,\"contexts\":%d,\
        \"certified\":%d,\"certificate_failures\":%d}"
       os.Solver.Oracle.verdict_hits os.verdict_misses os.instance_hits
       os.instance_misses os.fallback_queries os.formulas_translated
       os.formulas_reused os.contexts os.certified os.certificate_failures);
  let ss = sat_stats t in
  field "sat"
    (Printf.sprintf
       "{\"conflicts\":%d,\"decisions\":%d,\"propagations\":%d,\
        \"restarts\":%d,\"reductions\":%d,\"subsumed\":%d,\
        \"strengthened\":%d,\"vivified\":%d,\"eliminated\":%d}"
       ss.Solver.Oracle.conflicts ss.decisions ss.propagations ss.restarts
       ss.reductions ss.subsumed ss.strengthened ss.vivified ss.eliminated);
  let phase_fields =
    List.map
      (fun (phase, ms) ->
        Printf.sprintf "\"%s\":%.3f" (json_escape phase) ms)
      (Telemetry.phases m)
  in
  field "phases" ("{" ^ String.concat "," phase_fields ^ "}");
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp_telemetry ppf t =
  Format.fprintf ppf "@[<v>%a@,elapsed: %.3f ms, timed out: %b@,oracle: %a@]"
    Telemetry.pp t.telemetry (elapsed_ms t) (timed_out t)
    (fun ppf (s : Solver.Oracle.stats) ->
      Format.fprintf ppf
        "%d/%d verdict hits, %d/%d instance hits, %d fallbacks, %d contexts"
        s.verdict_hits
        (s.verdict_hits + s.verdict_misses)
        s.instance_hits
        (s.instance_hits + s.instance_misses)
        s.fallback_queries s.contexts)
    (oracle_stats t)
