type t = {
  mutable sat_verdicts : int;
  mutable unsat_verdicts : int;
  mutable unknown_verdicts : int;
  mutable instance_queries : int;
  mutable enumerations : int;
  mutable candidates_generated : int;
  mutable candidates_evaluated : int;
  mutable llm_rounds : int;
  mutable pool_peak : int;
  mutable deadline_checks : int;
  mutable certified_unsat : int;
  mutable certificate_failures : int;
  phase_ms : (string, float) Hashtbl.t;
}

let create () =
  {
    sat_verdicts = 0;
    unsat_verdicts = 0;
    unknown_verdicts = 0;
    instance_queries = 0;
    enumerations = 0;
    candidates_generated = 0;
    candidates_evaluated = 0;
    llm_rounds = 0;
    pool_peak = 0;
    deadline_checks = 0;
    certified_unsat = 0;
    certificate_failures = 0;
    phase_ms = Hashtbl.create 8;
  }

let record_verdict t = function
  | `Sat -> t.sat_verdicts <- t.sat_verdicts + 1
  | `Unsat -> t.unsat_verdicts <- t.unsat_verdicts + 1
  | `Unknown -> t.unknown_verdicts <- t.unknown_verdicts + 1

let record_instance_query t = t.instance_queries <- t.instance_queries + 1
let record_enumeration t = t.enumerations <- t.enumerations + 1

let candidates_generated t n =
  t.candidates_generated <- t.candidates_generated + n;
  if n > t.pool_peak then t.pool_peak <- n

let candidate_evaluated t = t.candidates_evaluated <- t.candidates_evaluated + 1
let llm_round t = t.llm_rounds <- t.llm_rounds + 1
let deadline_check t = t.deadline_checks <- t.deadline_checks + 1

let record_certified t ok =
  if ok then t.certified_unsat <- t.certified_unsat + 1
  else t.certificate_failures <- t.certificate_failures + 1

let add_phase_ms t phase ms =
  let prev = Option.value ~default:0. (Hashtbl.find_opt t.phase_ms phase) in
  Hashtbl.replace t.phase_ms phase (prev +. ms)

let solver_queries t = t.sat_verdicts + t.unsat_verdicts + t.unknown_verdicts

let phases t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.phase_ms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

module Scheduler = struct
  type t = {
    mutable chunks_dispatched : int;
    mutable chunks_completed : int;
    mutable rows_completed : int;
    mutable retries : int;
    mutable workers_spawned : int;
    mutable workers_lost : int;
    mutable heartbeat_kills : int;
  }

  let create () =
    {
      chunks_dispatched = 0;
      chunks_completed = 0;
      rows_completed = 0;
      retries = 0;
      workers_spawned = 0;
      workers_lost = 0;
      heartbeat_kills = 0;
    }

  let to_json ~jobs t =
    Printf.sprintf
      "{\"jobs\":%d,\"chunks_dispatched\":%d,\"chunks_completed\":%d,\
       \"rows_completed\":%d,\"retries\":%d,\"workers_spawned\":%d,\
       \"workers_lost\":%d,\"heartbeat_kills\":%d}"
      jobs t.chunks_dispatched t.chunks_completed t.rows_completed t.retries
      t.workers_spawned t.workers_lost t.heartbeat_kills

  let pp ppf t =
    Format.fprintf ppf
      "@[<v>chunks: %d dispatched, %d completed (%d rows)@,\
       retries: %d, workers: %d spawned / %d lost (%d heartbeat kills)@]"
      t.chunks_dispatched t.chunks_completed t.rows_completed t.retries
      t.workers_spawned t.workers_lost t.heartbeat_kills
end

let pp ppf t =
  Format.fprintf ppf
    "@[<v>solver queries: %d (sat %d / unsat %d / unknown %d)@,\
     instance queries: %d, enumerations: %d@,\
     candidates: %d generated, %d evaluated (pool peak %d)@,\
     llm rounds: %d, deadline checks: %d@,\
     certificates: %d accepted, %d failed"
    (solver_queries t) t.sat_verdicts t.unsat_verdicts t.unknown_verdicts
    t.instance_queries t.enumerations t.candidates_generated
    t.candidates_evaluated t.pool_peak t.llm_rounds t.deadline_checks
    t.certified_unsat t.certificate_failures;
  List.iter
    (fun (phase, ms) -> Format.fprintf ppf "@,phase %s: %.3f ms" phase ms)
    (phases t);
  Format.fprintf ppf "@]"
