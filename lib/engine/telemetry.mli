(** The telemetry sink of a repair session: monotonic counters and per-phase
    wall-clock timers, all mutated in place on the hot path (one field
    increment per event, no allocation).

    A sink belongs to one {!Session.t} and is shared by every layer the
    session is threaded through — the verdict helpers count solver queries,
    the search engines count candidates and pool sizes, the LLM pipelines
    count dialogue rounds.  Snapshots are serialized by
    {!Session.telemetry_json}. *)

type t = {
  mutable sat_verdicts : int;  (** solver queries answered [`Sat] *)
  mutable unsat_verdicts : int;  (** solver queries answered [`Unsat] *)
  mutable unknown_verdicts : int;
      (** solver queries exhausting their conflict budget *)
  mutable instance_queries : int;  (** witness / counterexample solves *)
  mutable enumerations : int;  (** instance-enumeration sweeps *)
  mutable candidates_generated : int;
      (** candidate specs produced by mutation / templates / proposals *)
  mutable candidates_evaluated : int;
      (** candidates actually scored against tests or the oracle *)
  mutable llm_rounds : int;  (** dialogue rounds of the LLM pipelines *)
  mutable pool_peak : int;  (** largest single mutation / template pool *)
  mutable deadline_checks : int;  (** cooperative deadline polls performed *)
  mutable certified_unsat : int;
      (** UNSAT verdicts whose DRUP certificate the checker accepted *)
  mutable certificate_failures : int;
      (** UNSAT verdicts the proof checker could {e not} certify *)
  phase_ms : (string, float) Hashtbl.t;
      (** accumulated wall-clock milliseconds per named phase *)
}

val create : unit -> t

val record_verdict : t -> [ `Sat | `Unsat | `Unknown ] -> unit
val record_instance_query : t -> unit
val record_enumeration : t -> unit
val candidates_generated : t -> int -> unit
(** Also tracks [pool_peak]. *)

val candidate_evaluated : t -> unit
val llm_round : t -> unit
val deadline_check : t -> unit

val record_certified : t -> bool -> unit
(** Outcome of one proof-checker run over an UNSAT verdict (the oracle's
    [on_certify] callback feeds this when the session runs with
    [~certify:true]). *)

val add_phase_ms : t -> string -> float -> unit

val solver_queries : t -> int
(** Total verdict queries, all outcomes. *)

val phases : t -> (string * float) list
(** Phase timers, sorted by name. *)

val pp : Format.formatter -> t -> unit

(** Counters of one parallel-study scheduler run (the parent process's view
    of the dynamic work queue — see [Specrepair_eval.Scheduler]).  Unlike
    {!t} these belong to the whole study, not to one session; the study
    emits them as a final [{"scheduler":…}] line through its telemetry
    sink. *)
module Scheduler : sig
  type t = {
    mutable chunks_dispatched : int;
        (** chunk assignments sent to workers, requeues included *)
    mutable chunks_completed : int;  (** chunks whose result file was merged *)
    mutable rows_completed : int;  (** work items merged into the result *)
    mutable retries : int;  (** chunk requeues after a worker was lost *)
    mutable workers_spawned : int;  (** forks, respawns included *)
    mutable workers_lost : int;
        (** workers that died or were killed before finishing *)
    mutable heartbeat_kills : int;
        (** workers killed by the parent for a silent heartbeat *)
  }

  val create : unit -> t
  val to_json : jobs:int -> t -> string
  (** One-line JSON object (no trailing newline). *)

  val pp : Format.formatter -> t -> unit
end
