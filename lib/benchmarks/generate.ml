module Alloy = Specrepair_alloy
module Llm = Specrepair_llm
module Ast = Alloy.Ast

type variant = {
  id : string;
  domain : Domains.t;
  ground_truth : Alloy.Ast.spec;
  injected : Fault.injected;
}

let variant_id (d : Domains.t) index = Printf.sprintf "%s_%04d" d.name index

let make_variant ~seed (d : Domains.t) index =
  {
    id = variant_id d index;
    domain = d;
    ground_truth = Domains.spec d;
    injected = Fault.inject ~seed d ~index;
  }

let variant_at ?(seed = 42) (d : Domains.t) index = make_variant ~seed d index

let cache : (int * string, variant list) Hashtbl.t = Hashtbl.create 32

let variants ?(seed = 42) (d : Domains.t) =
  match Hashtbl.find_opt cache (seed, d.name) with
  | Some vs -> vs
  | None ->
      let vs = List.init d.count (make_variant ~seed d) in
      Hashtbl.replace cache (seed, d.name) vs;
      vs

let benchmark ?(seed = 42) bench =
  List.concat_map
    (fun d -> if d.Domains.benchmark = bench then variants ~seed d else [])
    Domains.all

let all ?(seed = 42) () =
  benchmark ~seed Domains.A4F @ benchmark ~seed Domains.ARepair_bench

let sample ?(seed = 42) ~per_domain () =
  List.concat_map
    (fun (d : Domains.t) ->
      List.init
        (min per_domain d.count)
        (fun i -> make_variant ~seed d i))
    Domains.all

let to_task v =
  let check_names =
    List.filter_map
      (fun (c : Ast.command) ->
        match c.cmd_kind with Ast.Check name -> Some name | _ -> None)
      v.ground_truth.commands
  in
  let fault_paths =
    List.map
      (fun (m : Specrepair_mutation.Mutate.t) -> (m.site, m.path))
      v.injected.Fault.mutations
  in
  Llm.Task.make ~spec_id:v.id ~domain:v.domain.name
    ~faulty:v.injected.Fault.faulty ~fault_sites:v.injected.Fault.sites
    ~fault_paths ~fault_classes:v.injected.Fault.revert_classes
    ~fix_description:v.injected.Fault.description ~check_names ()
