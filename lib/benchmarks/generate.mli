(** Materialisation of the two benchmarks: 1,936 Alloy4Fun variants and 38
    ARepair variants, each a faulty specification paired with its ground
    truth and fault metadata.  Deterministic in the study seed. *)

module Alloy = Specrepair_alloy
module Llm = Specrepair_llm

type variant = {
  id : string;  (** e.g. "classroom_0017" *)
  domain : Domains.t;
  ground_truth : Alloy.Ast.spec;
  injected : Fault.injected;
}

val variants : ?seed:int -> Domains.t -> variant list
(** The domain's [count] variants (memoized per [(seed, domain)]). *)

val variant_at : ?seed:int -> Domains.t -> int -> variant
(** The [index]-th variant of a domain, derived on demand and never
    cached: the building block of streaming corpus producers, which must
    stay O(1)-memory no matter how many variants they touch.  For
    [index < count] this is bit-identical to the corresponding element of
    {!variants}; larger indices extend the domain beyond its Table I
    size (same deterministic derivation, fresh fault streams). *)

val benchmark : ?seed:int -> Domains.benchmark -> variant list

val all : ?seed:int -> unit -> variant list
(** Both benchmarks; 1,974 variants at the default seed (42). *)

val sample : ?seed:int -> per_domain:int -> unit -> variant list
(** A stratified subsample (first [per_domain] variants of each domain),
    for quick evaluation runs. *)

val to_task : variant -> Llm.Task.t
(** Package a variant for the LLM pipelines, exposing the hint metadata. *)
