(** ICEBAR-style iterative counterexample-based repair (Gutiérrez Brida et
    al., ASE'22).

    Wraps {!Arepair} in a refinement loop with the specification's own
    check commands as the property oracle: when an ARepair candidate passes
    its tests but a check still fails, the counterexample is converted into
    a new (negative) test and ARepair is re-run on the enriched suite. *)

module Alloy = Specrepair_alloy

val repair :
  ?session:Session.t ->
  Alloy.Typecheck.env ->
  Specrepair_aunit.Aunit.test list ->
  Common.result
(** Without [?session] a fresh default one is created from the input env.
    The inner {!Arepair} rounds share the session (oracle, telemetry,
    deadline latch) but receive a slice of its candidate budget; the
    refinement loop's property checks and counterexample queries run
    through the session oracle. *)
