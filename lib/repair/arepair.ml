module Alloy = Specrepair_alloy
module Aunit = Specrepair_aunit.Aunit
module Mutation = Specrepair_mutation
module Faultloc = Specrepair_faultloc.Faultloc
module Telemetry = Specrepair_engine.Telemetry

let score env tests = List.length (Aunit.run_suite env tests).passing

let repair ?session (env0 : Alloy.Typecheck.env) tests =
  let session =
    match session with Some s -> s | None -> Session.create env0
  in
  let budget = Session.budget session in
  let telemetry = Session.telemetry session in
  let n_tests = List.length tests in
  let tried = ref 0 in
  (* one greedy step: the candidate (from mutations at the most suspicious
     locations) that passes the most tests, if it improves *)
  let step (env : Alloy.Typecheck.env) current_score =
    let locations =
      Session.time session "faultloc" (fun () ->
          Faultloc.rank_by_tests env tests ())
    in
    let top = List.filteri (fun i _ -> i < budget.Session.locations) locations in
    let candidates =
      Session.time session "mutation" (fun () ->
          List.concat_map
            (fun (l : Faultloc.location) ->
              Mutation.Mutate.mutations_at env env.spec l.site l.path
                ~with_pool:budget.Session.use_pool ())
            top)
    in
    Telemetry.candidates_generated telemetry (List.length candidates);
    List.fold_left
      (fun best m ->
        if !tried >= budget.Session.max_candidates || Session.expired session
        then best
        else begin
          incr tried;
          Telemetry.candidate_evaluated telemetry;
          match Common.env_of_spec (Mutation.Mutate.apply env.spec m) with
          | None -> best
          | Some env' ->
              let s = score env' tests in
              let best_score =
                match best with Some (_, bs) -> bs | None -> current_score
              in
              if s > best_score then Some (env', s) else best
        end)
      None candidates
  in
  let finish ~repaired (env : Alloy.Typecheck.env) depth =
    Common.result ~tool:"ARepair" ~repaired
      ~timed_out:(Session.timed_out session)
      env.Alloy.Typecheck.spec ~candidates:!tried ~iterations:depth
  in
  let rec loop env current_score depth =
    if current_score = n_tests then finish ~repaired:true env depth
    else if
      depth >= budget.Session.max_depth
      || !tried >= budget.Session.max_candidates
      || Session.expired session
    then finish ~repaired:false env depth
    else
      match step env current_score with
      | Some (env', s) -> loop env' s (depth + 1)
      | None -> finish ~repaired:false env depth
  in
  loop env0 (score env0 tests) 0
