(** ATR-style template-based repair (Zheng et al., ISSTA'22).

    Analyzes the difference between counterexamples and satisfying
    instances of the violated assertions, instantiates repair templates
    (strengthen with a conjunct, weaken with a disjunct, replace an atomic
    constraint or subexpression) at the most discriminating locations, and
    prunes the candidate space with both instance sets before verifying the
    survivors with the analyzer: a candidate must invalidate every
    counterexample while preserving every satisfying instance — the
    PMaxSAT-flavoured consistency filter of the original tool. *)

module Alloy = Specrepair_alloy

val repair : ?session:Session.t -> Alloy.Typecheck.env -> Common.result
(** Without [?session] a fresh default one is created from the input env.
    The session's oracle serves every verification and instance query; its
    budget bounds both search tiers and its deadline is checked between
    candidates. *)
