module Alloy = Specrepair_alloy
module Aunit = Specrepair_aunit.Aunit

let repair ?session (env0 : Alloy.Typecheck.env) initial_tests =
  (* one incremental session across all refinement rounds: the candidate an
     inner ARepair run produces in round [i] is often re-examined in round
     [i+1], and the verdict cache answers it without a solve *)
  let session =
    match session with Some s -> s | None -> Session.create env0
  in
  let budget = Session.budget session in
  let max_conflicts = budget.Session.max_conflicts in
  let tried = ref 0 in
  let finish ~repaired ?(extra_iter = 0) best iter =
    Common.result ~tool:"ICEBAR" ~repaired
      ~timed_out:(Session.timed_out session) best ~candidates:!tried
      ~iterations:(iter + extra_iter)
  in
  let rec loop tests iter best =
    if iter >= budget.Session.max_iterations || Session.expired session then
      finish ~repaired:false best iter
    else begin
      let inner =
        (* the inner ARepair round shares the session (oracle, telemetry,
           deadline latch) but gets a slice of the candidate budget *)
        Arepair.repair
          ~session:
            (Session.with_budget session (fun b ->
                 {
                   b with
                   Session.max_candidates =
                     b.Session.max_candidates / b.Session.max_iterations;
                 }))
          env0 tests
      in
      tried := !tried + inner.candidates_tried;
      match Common.env_of_spec inner.final_spec with
      | None -> finish ~repaired:false best iter
      | Some env' ->
          if Session.expired session then
            finish ~repaired:false inner.final_spec iter
          else if Common.oracle_passes ~max_conflicts session env' then
            (* the candidate satisfies the property oracle *)
            finish ~repaired:true ~extra_iter:1 inner.final_spec iter
          else
            let cexs = Common.failing_checks ~max_conflicts session env' in
            let new_tests =
              List.mapi
                (fun i (_, name, cex) ->
                  Aunit.of_counterexample
                    ~name:(Printf.sprintf "icebar_cex_%s_%d_%d" name iter i)
                    cex)
                cexs
            in
            if new_tests = [] then
              (* no usable counterexamples (e.g. a run command fails):
                 refinement cannot make progress *)
              finish ~repaired:false ~extra_iter:1 inner.final_spec iter
            else loop (tests @ new_tests) (iter + 1) inner.final_spec
    end
  in
  (* seed the suite with counterexamples of the faulty spec itself *)
  let seed =
    List.mapi
      (fun i (_, name, cex) ->
        Aunit.of_counterexample
          ~name:(Printf.sprintf "icebar_seed_%s_%d" name i)
          cex)
      (Common.failing_checks ~max_conflicts session env0)
  in
  loop (initial_tests @ seed) 0 env0.spec
