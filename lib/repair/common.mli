(** Shared vocabulary of the repair engines: budgets, results, and the
    property oracle (command conformance) they verify against.

    Every query takes the repair {!Session.t}, whose incremental
    {!Specrepair_solver.Oracle.t} answers verdicts by assumption-based
    solving in a shared solver, memoized structurally; the session also
    records every query in its telemetry.  [?max_conflicts] is passed
    through verbatim (not defaulted from the session budget), so each call
    site keeps the exact conflict budget — or unlimited solve — it means. *)

module Alloy = Specrepair_alloy
module Solver = Specrepair_solver

type budget = Session.budget = {
  max_depth : int;  (** greedy / composition depth *)
  max_candidates : int;  (** candidates evaluated in one invocation *)
  max_iterations : int;  (** outer refinement rounds (ICEBAR) *)
  max_conflicts : int;  (** SAT conflict budget per analyzer call *)
  locations : int;  (** suspicious locations explored *)
  use_pool : bool;
      (** may the search synthesize replacement expressions / added juncts?
          ARepair's original space lacked them *)
}
(** Re-export of {!Session.budget}: the budget now lives in the session. *)

val default_budget : budget

type result = {
  tool : string;
  repaired : bool;  (** the tool's own oracle accepted the final spec *)
  final_spec : Alloy.Ast.spec;  (** repaired spec, or best-effort candidate *)
  candidates_tried : int;
  iterations : int;
  timed_out : bool;
      (** the session deadline expired and the search was aborted; the
          result is the best effort at that point *)
}

val result :
  ?timed_out:bool ->
  tool:string ->
  repaired:bool ->
  Alloy.Ast.spec ->
  candidates:int ->
  iterations:int ->
  result

val command_verdict :
  ?max_conflicts:int ->
  Session.t ->
  Alloy.Typecheck.env ->
  Alloy.Ast.command ->
  Solver.Oracle.verdict
(** Outcome tag of the command, without an instance. *)

val oracle_passes :
  ?max_conflicts:int -> Session.t -> Alloy.Typecheck.env -> bool
(** The property oracle: every [check] command has no counterexample and
    every [run] command is satisfiable.  [Unknown] counts as failure. *)

val command_behaves :
  ?max_conflicts:int ->
  Session.t ->
  Alloy.Typecheck.env ->
  Alloy.Ast.command ->
  bool

val behaving_commands :
  ?max_conflicts:int -> Session.t -> Alloy.Typecheck.env -> int
(** Number of commands that behave; the hill-climbing signal of iterative
    repairers. *)

val failing_checks :
  ?max_conflicts:int ->
  Session.t ->
  Alloy.Typecheck.env ->
  (Alloy.Ast.command * string * Alloy.Instance.t) list
(** Check commands that currently fail, with the assertion name and one
    counterexample each. *)

val witnesses_for :
  ?max_conflicts:int ->
  ?limit:int ->
  Session.t ->
  Alloy.Typecheck.env ->
  string ->
  Specrepair_solver.Bounds.scope ->
  Alloy.Instance.t list
(** Instances satisfying the facts and the named assertion — the "valid
    behaviours" a repair must preserve. *)

val counterexamples_for :
  ?max_conflicts:int ->
  ?limit:int ->
  Session.t ->
  Alloy.Typecheck.env ->
  string ->
  Specrepair_solver.Bounds.scope ->
  Alloy.Instance.t list

val env_of_spec : Alloy.Ast.spec -> Alloy.Typecheck.env option
(** [check_result] as an option, for candidate filtering. *)
