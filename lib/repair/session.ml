(* Re-export so the session type is reachable where repairs are:
   [Specrepair_repair.Session] = [Specrepair_engine.Session]. *)
include Specrepair_engine.Session
