module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast
module Mutation = Specrepair_mutation
module Location = Mutation.Location
module Faultloc = Specrepair_faultloc.Faultloc
module Telemetry = Specrepair_engine.Telemetry

(* Template instantiation at a formula node, in two tiers: tier 1 holds the
   cheap semantic operator swaps, tier 2 the synthesized templates
   (strengthen with a conjunct, weaken with a disjunct, replace a
   constraint or subexpression).  The search runs tier 1 at every location
   before any tier 2, so one template-rich location cannot starve the
   rest. *)
let templates_at (env : Alloy.Typecheck.env) site path =
  let spec = env.spec in
  let node = Location.get (Location.body spec site) path in
  let vars = Location.vars_at env spec site path in
  let swaps =
    Mutation.Mutate.mutations_at env spec site path ~with_pool:false ()
    |> List.map (fun (m : Mutation.Mutate.t) -> m.replacement)
  in
  match node with
  | Location.F f ->
      let atoms = Mutation.Pool.atomic_fmlas env ~vars ~limit:60 () in
      let strengthen =
        List.map (fun t -> Location.F (Ast.And (f, t))) atoms
      in
      let weaken = List.map (fun t -> Location.F (Ast.Or (f, t))) atoms in
      let replace = List.map (fun t -> Location.F t) atoms in
      (swaps, strengthen @ weaken @ replace)
  | Location.E e ->
      let arity =
        match Alloy.Typecheck.expr_arity env vars e with
        | a -> Some a
        | exception Alloy.Typecheck.Type_error _ -> None
      in
      let replacements =
        match arity with
        | Some a ->
            Mutation.Pool.exprs env ~vars ~arity:a ~depth:2 ~limit:60 ()
            |> List.filter (fun e' -> e' <> e)
            |> List.map (fun e' -> Location.E e')
        | None -> []
      in
      (swaps, replacements)

(* One inner search round: repair the named failing assertion of [env0].
   A candidate must (a) invalidate every collected counterexample of that
   assertion, (b) preserve every collected satisfying instance (the
   PMaxSAT-flavoured consistency filter), and (c) make the assertion's
   check command pass per the analyzer. *)
let repair_assert ~session ~tried (env0 : Alloy.Typecheck.env)
    (cmd : Ast.command) name =
  let budget = Session.budget session in
  let telemetry = Session.telemetry session in
  let max_conflicts = budget.Session.max_conflicts in
  let scope = Solver.Bounds.scope_of_command cmd in
  let cexs = Common.counterexamples_for ~limit:4 session env0 name scope in
  let wits = Common.witnesses_for ~limit:4 session env0 name scope in
  let consistent (env' : Alloy.Typecheck.env) =
    let body' =
      match Ast.find_assert env'.spec name with
      | Some a -> Some a.assert_body
      | None -> None
    in
    match body' with
    | None -> false
    | Some b ->
        List.for_all
          (fun cex ->
            match
              Alloy.Eval.facts_hold env' cex
              && not (Alloy.Eval.fmla env' cex [] b)
            with
            | admitted -> not admitted
            | exception Alloy.Eval.Eval_error _ -> false)
          cexs
        && List.for_all
             (fun wit ->
               match
                 Alloy.Eval.facts_hold env' wit && Alloy.Eval.fmla env' wit [] b
               with
               | kept -> kept
               | exception Alloy.Eval.Eval_error _ -> false)
             wits
  in
  let locations =
    Session.time session "faultloc" (fun () ->
        let ranked =
          Faultloc.rank_by_instances env0
            ~goal_of:(Faultloc.goal_of_assert name) ~counterexamples:cexs
            ~witnesses:wits ()
        in
        let ranked_locs =
          List.map (fun (l : Faultloc.location) -> (l.site, l.path)) ranked
        in
        let all =
          Faultloc.candidate_locations env0.spec
            ~sites:(Location.sites env0.spec)
        in
        let rest = List.filter (fun l -> not (List.mem l ranked_locs)) all in
        ranked_locs @ rest)
  in
  let top = List.filteri (fun i _ -> i < budget.Session.locations) locations in
  let candidate_stream =
    Session.time session "mutation" (fun () ->
        let tiers =
          List.map
            (fun (site, path) -> ((site, path), templates_at env0 site path))
            top
        in
        List.concat_map
          (fun (loc, (swaps, _)) -> List.map (fun r -> (loc, r)) swaps)
          tiers
        @ List.concat_map
            (fun (loc, (_, templates)) ->
              List.map (fun r -> (loc, r)) templates)
            tiers)
  in
  Telemetry.candidates_generated telemetry (List.length candidate_stream);
  let rec search = function
    | [] -> None
    | ((site, path), repl) :: rest ->
        if !tried >= budget.Session.max_candidates || Session.expired session
        then None
        else begin
          let body = Location.body env0.spec site in
          match Location.replace body path repl with
          | body' -> (
              let spec' = Location.with_body env0.spec site body' in
              if spec' = env0.spec then search rest
              else begin
                incr tried;
                Telemetry.candidate_evaluated telemetry;
                match Common.env_of_spec spec' with
                | None -> search rest
                | Some env' ->
                    if
                      consistent env'
                      && Common.command_behaves ~max_conflicts session env' cmd
                    then Some spec'
                    else search rest
              end)
          | exception _ -> search rest
        end
  in
  search candidate_stream

let repair ?session (env0 : Alloy.Typecheck.env) =
  (* one incremental session for the whole invocation: the base translation,
     learned clauses, and candidate verdicts are shared across every
     template, location, and outer iteration *)
  let session =
    match session with Some s -> s | None -> Session.create env0
  in
  let budget = Session.budget session in
  let telemetry = Session.telemetry session in
  let max_conflicts = budget.Session.max_conflicts in
  let tried = ref 0 in
  (* Outer loop: repair failing assertions one at a time, re-running on the
     improved specification — how ATR handles specs violating several
     properties (and, here, compound faults). *)
  let rec outer (env : Alloy.Typecheck.env) iter =
    if Common.oracle_passes ~max_conflicts session env then
      Common.result ~tool:"ATR" ~repaired:true env.spec ~candidates:!tried
        ~iterations:iter
    else if
      iter >= 3
      || !tried >= budget.Session.max_candidates
      || Session.expired session
    then
      Common.result ~tool:"ATR" ~repaired:false
        ~timed_out:(Session.timed_out session) env.spec ~candidates:!tried
        ~iterations:iter
    else begin
      let failing = Common.failing_checks ~max_conflicts session env in
      (* Over-constraint faults leave every check green but make a run
         command unsatisfiable — no counterexamples to analyze.  ATR falls
         back to its template sweep verified directly against the full
         oracle. *)
      let repair_unsat_runs () =
        (* the sweep is a secondary path: half the candidate budget, the
           same location allowance as the template search *)
        let sweep_budget = budget.Session.max_candidates / 2 in
        let locations =
          Faultloc.candidate_locations env.spec
            ~sites:(Location.sites env.spec)
        in
        let top =
          List.filteri (fun i _ -> i < budget.Session.locations) locations
        in
        let rec sweep = function
          | [] -> None
          | (site, path) :: rest ->
              if !tried >= sweep_budget || Session.expired session then None
              else begin
                let swaps, _ = templates_at env site path in
                let rec try_swaps = function
                  | [] -> sweep rest
                  | repl :: more -> (
                      if !tried >= sweep_budget || Session.expired session then
                        None
                      else
                        match
                          Location.replace (Location.body env.spec site) path
                            repl
                        with
                        | body' -> (
                            let spec' = Location.with_body env.spec site body' in
                            incr tried;
                            Telemetry.candidate_evaluated telemetry;
                            match Common.env_of_spec spec' with
                            | Some env'
                              when Common.oracle_passes ~max_conflicts session
                                     env' ->
                                Some spec'
                            | _ -> try_swaps more)
                        | exception _ -> try_swaps more)
                in
                try_swaps swaps
              end
        in
        sweep top
      in
      let rec try_asserts = function
        | [] -> None
        | (cmd, name, _) :: rest -> (
            match repair_assert ~session ~tried env cmd name with
            | Some spec' -> Some spec'
            | None -> try_asserts rest)
      in
      let repair_attempt =
        (* the sweep fallback applies only when there is no counterexample
           to analyze; assertion violations keep the template machinery *)
        if failing = [] then repair_unsat_runs () else try_asserts failing
      in
      match repair_attempt with
      | Some spec' -> (
          match Common.env_of_spec spec' with
          | Some env' -> outer env' (iter + 1)
          | None ->
              Common.result ~tool:"ATR" ~repaired:false
                ~timed_out:(Session.timed_out session) env.spec
                ~candidates:!tried ~iterations:iter)
      | None ->
          Common.result ~tool:"ATR" ~repaired:false
            ~timed_out:(Session.timed_out session) env.spec ~candidates:!tried
            ~iterations:iter
    end
  in
  outer env0 0
