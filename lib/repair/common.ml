module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast

type budget = Session.budget = {
  max_depth : int;
  max_candidates : int;
  max_iterations : int;
  max_conflicts : int;
  locations : int;
  use_pool : bool;
}

let default_budget = Session.default_budget

type result = {
  tool : string;
  repaired : bool;
  final_spec : Alloy.Ast.spec;
  candidates_tried : int;
  iterations : int;
  timed_out : bool;
}

let result ?(timed_out = false) ~tool ~repaired final_spec ~candidates
    ~iterations =
  {
    tool;
    repaired;
    final_spec;
    candidates_tried = candidates;
    iterations;
    timed_out;
  }

(* Every query below runs through the session's incremental oracle: hot
   verdict queries share a solver, a translation of the unchanged spec, and
   a learned-clause database across the whole repair session (and identical
   candidates are deduplicated by the structural cache).  The session also
   counts each query in its telemetry — see Session and Solver.Oracle. *)

let command_verdict ?max_conflicts session (env : Alloy.Typecheck.env)
    (c : Ast.command) =
  Session.command_verdict ?max_conflicts session env c

let command_behaves ?max_conflicts session (env : Alloy.Typecheck.env)
    (c : Ast.command) =
  match (c.cmd_kind, command_verdict ?max_conflicts session env c) with
  | Ast.Check _, `Unsat -> true
  | Ast.Check _, _ -> false
  | (Ast.Run_pred _ | Ast.Run_fmla _), `Sat -> true
  | (Ast.Run_pred _ | Ast.Run_fmla _), _ -> false

let oracle_passes ?max_conflicts session (env : Alloy.Typecheck.env) =
  List.for_all (command_behaves ?max_conflicts session env) env.spec.commands

let behaving_commands ?max_conflicts session (env : Alloy.Typecheck.env) =
  List.length
    (List.filter (command_behaves ?max_conflicts session env) env.spec.commands)

let failing_checks ?max_conflicts session (env : Alloy.Typecheck.env) =
  List.filter_map
    (fun (c : Ast.command) ->
      match c.cmd_kind with
      | Ast.Check name -> (
          (* verdict first (incremental); the counterexample instance is
             fetched — and cached — only for failing checks *)
          let outcome =
            match Session.command_verdict ?max_conflicts session env c with
            | `Unsat -> Solver.Analyzer.Unsat
            | `Unknown -> Solver.Analyzer.Unknown
            | `Sat -> Session.run_command ?max_conflicts session env c
          in
          match outcome with
          | Solver.Analyzer.Sat cex -> Some (c, name, cex)
          | Solver.Analyzer.Unsat | Solver.Analyzer.Unknown -> None)
      | Ast.Run_pred _ | Ast.Run_fmla _ -> None)
    env.spec.commands

let witnesses_for ?max_conflicts ?(limit = 4) session
    (env : Alloy.Typecheck.env) name scope =
  match Ast.find_assert env.spec name with
  | None -> []
  | Some a ->
      Session.enumerate ?max_conflicts ~limit session env scope a.assert_body

let counterexamples_for ?max_conflicts ?(limit = 4) session
    (env : Alloy.Typecheck.env) name scope =
  match Ast.find_assert env.spec name with
  | None -> []
  | Some a ->
      Session.enumerate ?max_conflicts ~limit session env scope
        (Ast.Not a.assert_body)

let env_of_spec spec =
  match Alloy.Typecheck.check_result spec with
  | Ok env -> Some env
  | Error _ -> None
