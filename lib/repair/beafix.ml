module Alloy = Specrepair_alloy
module Solver = Specrepair_solver
module Ast = Alloy.Ast
module Mutation = Specrepair_mutation
module Faultloc = Specrepair_faultloc.Faultloc
module Telemetry = Specrepair_engine.Telemetry

(* Admission of an instance as a counterexample of assertion [name]:
   the facts hold and the assertion body does not. *)
let admits_cex (env : Alloy.Typecheck.env) name inst =
  match Ast.find_assert env.spec name with
  | None -> false
  | Some a -> (
      match
        Alloy.Eval.facts_hold env inst
        && not (Alloy.Eval.fmla env inst [] a.assert_body)
      with
      | v -> v
      | exception Alloy.Eval.Eval_error _ -> false)

(* Does the candidate behave differently from the original on any collected
   instance?  Candidates indistinguishable on every instance are pruned
   (BeAFix's non-equivalence pruning, sample-based). *)
let distinguishable env0 env' instances =
  List.exists
    (fun inst ->
      let v0 =
        match Alloy.Eval.facts_hold env0 inst with
        | v -> v
        | exception Alloy.Eval.Eval_error _ -> false
      in
      let v1 =
        match Alloy.Eval.facts_hold env' inst with
        | v -> v
        | exception Alloy.Eval.Eval_error _ -> false
      in
      v0 <> v1
      || List.exists
           (fun (a : Ast.assert_decl) ->
             let e0 =
               match Alloy.Eval.fmla env0 inst [] a.assert_body with
               | v -> v
               | exception Alloy.Eval.Eval_error _ -> false
             in
             let e1 =
               match
                 Alloy.Eval.fmla env' inst []
                   (match Ast.find_assert env'.Alloy.Typecheck.spec a.assert_name with
                   | Some a' -> a'.assert_body
                   | None -> a.assert_body)
               with
               | v -> v
               | exception Alloy.Eval.Eval_error _ -> false
             in
             e0 <> e1)
           env0.Alloy.Typecheck.spec.asserts)
    instances

let repair ?session (env0 : Alloy.Typecheck.env) =
  (* one incremental session shared by the whole bounded-exhaustive sweep *)
  let session =
    match session with Some s -> s | None -> Session.create env0
  in
  let budget = Session.budget session in
  let telemetry = Session.telemetry session in
  let max_conflicts = budget.Session.max_conflicts in
  if Common.oracle_passes ~max_conflicts session env0 then
    Common.result ~tool:"BeAFix" ~repaired:true env0.spec ~candidates:0
      ~iterations:0
  else begin
    let failing = Common.failing_checks ~max_conflicts session env0 in
    let scope_of_cmd (c : Ast.command) = Solver.Bounds.scope_of_command c in
    let cexs =
      List.concat_map
        (fun (c, name, _) ->
          List.map
            (fun i -> (name, i))
            (Common.counterexamples_for ~limit:3 session env0 name
               (scope_of_cmd c)))
        failing
    in
    let witnesses =
      List.concat_map
        (fun (c, name, _) ->
          Common.witnesses_for ~limit:3 session env0 name (scope_of_cmd c))
        failing
    in
    let all_instances = List.map snd cexs @ witnesses in
    (* BeAFix performs no fault localization: it sweeps the marked
       suspicious locations — here, every constraint — in textual order,
       relying on pruning and the bounded-exhaustive sweep. *)
    let locations =
      Faultloc.candidate_locations env0.spec
        ~sites:(Mutation.Location.sites env0.spec)
      (* top-level constraint roots only: the sweep descends through each
         subtree itself (see mutations_of_location) *)
      |> List.filter (fun (_, path) -> path = [])
    in
    let top_locations =
      List.filteri (fun i _ -> i < budget.Session.locations) locations
    in
    let tried = ref 0 in
    let verify env' = Common.oracle_passes ~max_conflicts session env' in
    (* candidate stream: depth 1 = single mutations at suspicious locations
       (descending through every node of the suspicious subtree), depth 2 =
       pairs across distinct locations *)
    let mutations_of_location (site, path) =
      let body = Mutation.Location.body env0.spec site in
      let subtree_paths =
        List.filter_map
          (fun (p, _) ->
            (* nodes within the suspicious subtree *)
            let rec is_prefix xs ys =
              match (xs, ys) with
              | [], _ -> true
              | x :: xs, y :: ys -> x = y && is_prefix xs ys
              | _ -> false
            in
            if is_prefix path p then Some p else None)
          (Mutation.Location.subnodes body)
      in
      List.concat_map
        (fun p ->
          Mutation.Mutate.mutations_at env0 env0.spec site p
            ~with_pool:budget.Session.use_pool ())
        subtree_paths
    in
    let is_pool_op (m : Mutation.Mutate.t) =
      match m.op with
      | "expr-replace" | "junct-add-and" | "junct-add-or" -> true
      | _ -> false
    in
    let depth1 =
      Session.time session "mutation" (fun () ->
          (* overlapping suspicious subtrees would repeat locations; dedup *)
          let seen = Hashtbl.create 64 in
          List.concat_map mutations_of_location top_locations
          |> List.filter (fun (m : Mutation.Mutate.t) ->
                 let key = (m.site, m.path, m.replacement) in
                 if Hashtbl.mem seen key then false
                 else begin
                   Hashtbl.add seen key ();
                   true
                 end)
          (* cheap structural edits across every location before any
             pool-synthesized replacement, so one pool-heavy location cannot
             starve the rest of the budget *)
          |> List.stable_sort (fun a b ->
                 compare (is_pool_op a) (is_pool_op b)))
    in
    Telemetry.candidates_generated telemetry (List.length depth1);
    let try_candidate spec' =
      incr tried;
      Telemetry.candidate_evaluated telemetry;
      match Common.env_of_spec spec' with
      | None -> None
      | Some env' ->
          (* pruning: must kill every known counterexample *)
          let kills_cexs =
            List.for_all (fun (name, i) -> not (admits_cex env' name i)) cexs
          in
          if not kills_cexs then None
          else if
            all_instances <> [] && not (distinguishable env0 env' all_instances)
          then None
          else if verify env' then Some spec'
          else None
    in
    let rec search1 = function
      | [] -> None
      | m :: rest ->
          if !tried >= budget.Session.max_candidates || Session.expired session
          then None
          else begin
            match try_candidate (Mutation.Mutate.apply env0.spec m) with
            | Some s -> Some s
            | None -> search1 rest
          end
    in
    let result1 = search1 depth1 in
    let result =
      match result1 with
      | Some s -> Some s
      | None when budget.Session.max_depth >= 2 ->
          (* Depth 2: compose pairs of mutations at distinct locations.
             Enumerate by anti-diagonals (wavefront) so pairs of two
             early-ranked mutations are tried long before pairs involving a
             late one — a plain nested loop would spend the whole budget on
             pairs anchored at index 0. *)
          let ms =
            Array.of_list (List.filteri (fun i _ -> i < 150) depth1)
          in
          let n = Array.length ms in
          let found = ref None in
          (try
             for s = 1 to (2 * n) - 3 do
               for i = max 0 (s - n + 1) to (s - 1) / 2 do
                 let j = s - i in
                 if j > i && j < n then begin
                   let m1 = ms.(i) and m2 = ms.(j) in
                   if (m1.Mutation.Mutate.site, m1.path) <> (m2.site, m2.path)
                   then begin
                     if
                       !tried >= budget.Session.max_candidates
                       || Session.expired session
                     then raise Exit;
                     match
                       Mutation.Mutate.apply
                         (Mutation.Mutate.apply env0.spec m1)
                         m2
                     with
                     | spec' -> (
                         match try_candidate spec' with
                         | Some s ->
                             found := Some s;
                             raise Exit
                         | None -> ())
                     | exception _ -> ()
                   end
                 end
               done
             done
           with Exit -> ());
          !found
      | None -> None
    in
    match result with
    | Some s ->
        Common.result ~tool:"BeAFix" ~repaired:true s ~candidates:!tried
          ~iterations:1
    | None ->
        Common.result ~tool:"BeAFix" ~repaired:false
          ~timed_out:(Session.timed_out session) env0.spec ~candidates:!tried
          ~iterations:1
  end
