(** ARepair-style test-driven repair (Wang, Sullivan, Khurshid, ASE'18).

    Given a faulty specification and an AUnit test suite, localizes faults
    from the failing tests, then greedily applies the single mutation that
    maximises the number of passing tests, repeating until the suite passes
    or the budget is exhausted.

    Success means only that all tests pass — like the original tool, this
    overfits when the suite undersamples the intended semantics, which is
    exactly the behaviour the study measures. *)

module Alloy = Specrepair_alloy

val repair :
  ?session:Session.t ->
  Alloy.Typecheck.env ->
  Specrepair_aunit.Aunit.test list ->
  Common.result
(** Without [?session] a fresh default one is created from the input env.
    The search is pure test evaluation and never queries the solver, but it
    honours the session budget and deadline and feeds its telemetry. *)
