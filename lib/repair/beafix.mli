(** BeAFix-style bounded-exhaustive repair (Gutiérrez Brida et al.,
    ICSE'21).

    Explores all mutations of the suspicious locations up to a small
    composition depth, pruning candidates that (a) no longer type-check,
    (b) fail to invalidate the known counterexamples, or (c) are
    indistinguishable from the faulty spec on every collected instance
    (and therefore cannot change any verdict).  Surviving candidates are
    verified against the property oracle — the spec's own check and run
    commands — with the analyzer; no tests are needed. *)

module Alloy = Specrepair_alloy

val repair : ?session:Session.t -> Alloy.Typecheck.env -> Common.result
(** Without [?session] a fresh default one is created from the input env.
    The session's oracle serves every verification and instance query; its
    budget bounds the sweep and its deadline is checked between
    candidates. *)
