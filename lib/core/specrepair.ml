(* The public umbrella: one module per subsystem, re-exported under stable
   names.  Downstream users depend on the [specrepair] library and reach
   everything as [Specrepair.<Area>.<Module>]. *)

(** The Mini-Alloy language: AST, parser, pretty printer, type checker,
    instances, and the reference evaluator. *)
module Alloy = struct
  module Ast = Specrepair_alloy.Ast
  module Lexer = Specrepair_alloy.Lexer
  module Parser = Specrepair_alloy.Parser
  module Pretty = Specrepair_alloy.Pretty
  module Typecheck = Specrepair_alloy.Typecheck
  module Instance = Specrepair_alloy.Instance
  module Eval = Specrepair_alloy.Eval
  module Implicit = Specrepair_alloy.Implicit
end

(** The SAT substrate: CDCL solver, boolean formulas, Tseitin, cardinality
    encodings, DIMACS I/O, proof-preserving simplification, the racing
    portfolio, and hard-instance generators. *)
module Sat = struct
  module Lit = Specrepair_sat.Lit
  module Solver = Specrepair_sat.Solver
  module Proof = Specrepair_sat.Proof
  module Drat = Specrepair_sat.Drat
  module Formula = Specrepair_sat.Formula
  module Tseitin = Specrepair_sat.Tseitin
  module Card = Specrepair_sat.Card
  module Dimacs = Specrepair_sat.Dimacs
  module Simplify = Specrepair_sat.Simplify
  module Portfolio = Specrepair_sat.Portfolio
  module Hard_cnf = Specrepair_sat.Hard_cnf
end

(** The bounded model finder (the "Alloy Analyzer" of this repository). *)
module Analyzer = struct
  module Bounds = Specrepair_solver.Bounds
  module Matrix = Specrepair_solver.Matrix
  module Translate = Specrepair_solver.Translate
  module Oracle = Specrepair_solver.Oracle
  include Specrepair_solver.Analyzer
end

(** AUnit-style unit tests for specifications. *)
module Aunit = Specrepair_aunit.Aunit

(** Mutation operators, AST locations, and the typed expression pool. *)
module Mutation = struct
  module Location = Specrepair_mutation.Location
  module Pool = Specrepair_mutation.Pool
  module Mutate = Specrepair_mutation.Mutate
end

(** Fault localization. *)
module Faultloc = Specrepair_faultloc.Faultloc

(** The repair session and its telemetry: the one instrumented context
    (oracle, budget, seed, deadline, counters) threaded through every
    technique. *)
module Engine = struct
  module Session = Specrepair_engine.Session
  module Telemetry = Specrepair_engine.Telemetry
end

(** The four traditional repair engines and their shared vocabulary. *)
module Repair = struct
  module Session = Specrepair_repair.Session
  module Common = Specrepair_repair.Common
  module Arepair = Specrepair_repair.Arepair
  module Icebar = Specrepair_repair.Icebar
  module Beafix = Specrepair_repair.Beafix
  module Atr = Specrepair_repair.Atr
end

(** The LLM-based pipelines: simulated model, prompts, extraction,
    single-round and multi-round repair. *)
module Llm = struct
  module Rng = Specrepair_llm.Rng
  module Task = Specrepair_llm.Task
  module Prompt = Specrepair_llm.Prompt
  module Model = Specrepair_llm.Model
  module Extract = Specrepair_llm.Extract
  module Single_round = Specrepair_llm.Single_round
  module Multi_round = Specrepair_llm.Multi_round
end

(** The study's metrics: REP, Token Match, Syntax Match, Pearson. *)
module Metrics = struct
  module Rep = Specrepair_metrics.Rep
  module Bleu = Specrepair_metrics.Bleu
  module Tree_kernel = Specrepair_metrics.Tree_kernel
  module Pearson = Specrepair_metrics.Pearson
end

(** The two benchmarks: domains, fault injection, variant generation. *)
module Benchmarks = struct
  module Domains = Specrepair_benchmarks.Domains
  module Fault = Specrepair_benchmarks.Fault
  module Generate = Specrepair_benchmarks.Generate
end

(** The repair-as-a-service daemon: wire protocol, warm-session registry,
    fork-worker pool, event-loop daemon, and the line client. *)
module Serve = struct
  module Json = Specrepair_serve.Json
  module Protocol = Specrepair_serve.Protocol
  module Registry = Specrepair_serve.Registry
  module Handler = Specrepair_serve.Handler
  module Pool = Specrepair_serve.Pool
  module Daemon = Specrepair_serve.Daemon
  module Client = Specrepair_serve.Client
end

(** The study runner and the table/figure renderers. *)
module Eval = struct
  module Technique = Specrepair_eval.Technique
  module Scheduler = Specrepair_eval.Scheduler
  module Manifest = Specrepair_eval.Manifest
  module Corpus_stream = Specrepair_eval.Corpus_stream
  module Study = Specrepair_eval.Study
  module Tables = Specrepair_eval.Tables
  module Learned = Specrepair_eval.Learned
  module Portfolio = Specrepair_eval.Portfolio
end
