(* A dynamic, fault-tolerant work scheduler over forked workers.

   The parent owns a chunked queue of work-item ranges.  Chunk sizes are
   adaptive (a fraction of the remaining work, "guided self-scheduling"),
   so the queue starts coarse and ends fine — slow items stop creating
   stragglers because no worker is pinned to a static slice.

   Wire protocol (one line per message, '\n'-terminated):

     parent -> worker  (per-worker command pipe)
       CHUNK <id> <i1> <i2> ...   evaluate these work items
       QUIT                       no more work; exit 0

     worker -> parent  (per-worker message pipe)
       HB <id> <k>                k items of chunk <id> finished (heartbeat)
       DONE <id> <n>              chunk published with n result rows
       ERR <id> <message>         deterministic evaluation error; exiting

   A worker publishes each finished chunk by writing `chunk_<id>.tmp` in
   the run's scratch directory and renaming it to `chunk_<id>.res` — the
   rename is atomic, so the parent never observes a torn file.  The file
   carries `R <index> <result>` lines plus `T <line>` sideband lines
   (telemetry), and the parent cross-checks received vs expected row
   counts before merging.

   Two merge modes share the scheduling loop:

   - {!map} collects rows into an in-memory array (scratch directory
     deleted afterwards) — the classic study runner.
   - {!map_checkpointed} keeps every verified chunk as a result shard
     `shard_<lo>_<hi>.res` in a caller-owned run directory and records
     the range in an atomically-replaced checkpoint manifest
     ({!Manifest}); rows never enter parent memory, so the corpus size
     is bounded only by disk, and [~resume] restarts a killed run from
     the manifest's pending complement.

   Fault tolerance: the parent polls `waitpid WNOHANG` on every live
   worker and tracks a per-chunk heartbeat.  A dead or silent worker has
   its in-flight chunk requeued (bounded by [max_retries]) and a
   replacement is forked; `kill -9` mid-run therefore costs one chunk of
   recompute, not the study. *)

module Telemetry = Specrepair_engine.Telemetry

type stats = Telemetry.Scheduler.t

exception Chunk_failed of { indices : int list; attempts : int; reason : string }

type chunk = { id : int; lo : int; hi : int; mutable attempts : int }

let chunk_indices c = List.init (c.hi - c.lo) (fun k -> c.lo + k)

type worker = {
  pid : int;
  cmd_w : Unix.file_descr;  (* parent's end: commands out *)
  msg_r : Unix.file_descr;  (* parent's end: messages in *)
  rbuf : Buffer.t;  (* partial message line *)
  mutable inflight : chunk option;
  mutable last_beat : float;
  mutable quitting : bool;  (* QUIT sent; a clean exit is expected *)
  mutable eof : bool;  (* message pipe closed; await waitpid *)
}

let now () = Unix.gettimeofday ()

let res_path dir id = Filename.concat dir (Printf.sprintf "chunk_%d.res" id)

let shard_path dir ~lo ~hi =
  Filename.concat dir (Printf.sprintf "shard_%d_%d.res" lo hi)

(* {2 Worker side} *)

let write_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length b in
  let rec go off = if off < len then go (off + Unix.write fd b off (len - off)) in
  go 0

let one_line s = String.map (fun c -> if c = '\n' then ' ' else c) s

(* Test-only fault injection: with SPECREPAIR_SCHED_KILL_ITEM=<i> and
   SPECREPAIR_SCHED_KILL_MARK=<path>, the first worker to reach item <i>
   creates <path> and SIGKILLs itself — a deterministic stand-in for
   `kill -9` mid-run (the marker makes it a one-shot, so the retry
   completes).  Unset in normal operation. *)
let chaos_kill () =
  match
    ( Sys.getenv_opt "SPECREPAIR_SCHED_KILL_ITEM",
      Sys.getenv_opt "SPECREPAIR_SCHED_KILL_MARK" )
  with
  | Some item, Some mark when mark <> "" ->
      Option.map (fun k -> (k, mark)) (int_of_string_opt item)
  | _ -> None

(* Test-only crash injection for the checkpointed mode: with
   SPECREPAIR_SCHED_CRASH_AFTER_CHUNKS=<k>, the *parent* SIGKILLs its own
   process group the moment the k-th chunk of this run has been verified
   and checkpointed — the deterministic stand-in for the machine (or the
   operator) killing a long study mid-flight, which [~resume] must then
   recover from.  Unset in normal operation. *)
let chaos_crash_after () =
  Option.bind
    (Sys.getenv_opt "SPECREPAIR_SCHED_CRASH_AFTER_CHUNKS")
    int_of_string_opt

let child_main ~dir ~f ~cmd_r ~msg_w =
  let ic = Unix.in_channel_of_descr cmd_r in
  let send line = write_line msg_w line in
  let chaos = chaos_kill () in
  let run_chunk id indices =
    let tmp = Filename.concat dir (Printf.sprintf "chunk_%d.tmp" id) in
    let oc = open_out tmp in
    let finished = ref 0 in
    List.iter
      (fun i ->
        (match chaos with
        | Some (k, mark) when k = i && not (Sys.file_exists mark) ->
            (try close_out (open_out mark) with Sys_error _ -> ());
            Unix.kill (Unix.getpid ()) Sys.sigkill
        | _ -> ());
        let emit line = output_string oc ("T " ^ one_line line ^ "\n") in
        let r = f ~emit i in
        if String.contains r '\n' then
          failwith (Printf.sprintf "Scheduler: result for item %d spans lines" i);
        output_string oc (Printf.sprintf "R %d %s\n" i r);
        incr finished;
        send (Printf.sprintf "HB %d %d" id !finished))
      indices;
    close_out oc;
    Sys.rename tmp (res_path dir id);
    send (Printf.sprintf "DONE %d %d" id !finished)
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | "QUIT" -> ()
    | line -> (
        match String.split_on_char ' ' line with
        | "CHUNK" :: id :: indices -> (
            let id = int_of_string id in
            let indices = List.map int_of_string indices in
            match run_chunk id indices with
            | () -> loop ()
            | exception e ->
                (* a deterministic failure: retrying would repeat it, so
                   report and die rather than burn the retry budget *)
                send
                  (Printf.sprintf "ERR %d %s" id (one_line (Printexc.to_string e)));
                Unix._exit 3)
        | _ -> ())
  in
  loop ()

(* {2 Result files} *)

(* Parse a chunk/shard file into its rows and telemetry sideband.  [None]
   on a missing, torn or garbled file — the caller recomputes (merge
   paths) or fails loudly (resume validation). *)
let parse_res_file ~max_index path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let rows = ref [] and tlines = ref [] and bad = ref false in
      List.iter
        (fun line ->
          if line = "" then ()
          else if String.length line > 2 && String.sub line 0 2 = "T " then
            tlines := String.sub line 2 (String.length line - 2) :: !tlines
          else if String.length line > 2 && String.sub line 0 2 = "R " then begin
            let rest = String.sub line 2 (String.length line - 2) in
            match String.index_opt rest ' ' with
            | Some sp -> (
                match int_of_string_opt (String.sub rest 0 sp) with
                | Some i when i >= 0 && i < max_index ->
                    rows :=
                      (i, String.sub rest (sp + 1) (String.length rest - sp - 1))
                      :: !rows
                | _ -> bad := true)
            | None -> bad := true
          end
          else bad := true)
        (String.split_on_char '\n' text);
      if !bad then None else Some (List.rev !rows, List.rev !tlines))

(* Do [rows] cover exactly [lo, hi), each index once? *)
let rows_cover ~lo ~hi rows =
  List.length rows = hi - lo
  && List.for_all (fun i -> List.mem_assoc i rows) (List.init (hi - lo) (fun k -> lo + k))

(* {2 Parent side} *)

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

(* The shared scheduling loop.  [pending] is the sorted list of row
   ranges still to compute out of [0, total); [on_verified] consumes each
   cross-checked chunk result file (its path still present) and either
   keeps it (checkpoint mode renames it to a shard) or folds it into
   memory; [keep_dir] controls scratch cleanup. *)
let run_core ~jobs ~max_retries ~heartbeat_timeout_ms ~progress ~emit ~dir
    ~keep_dir ~pending ~total ~on_verified ~f () =
  let stats = Telemetry.Scheduler.create () in
  let todo = List.fold_left (fun n (lo, hi) -> n + (hi - lo)) 0 pending in
  if todo = 0 then stats
  else begin
    let jobs = max 1 (min jobs todo) in
    let started = now () in
    (* the work queue: a list of pending ranges plus requeued chunks *)
    let ranges = ref pending in
    let remaining = ref todo in
    let next_id = ref 0 in
    let requeued : chunk Queue.t = Queue.create () in
    let pending_work () = (not (Queue.is_empty requeued)) || !ranges <> [] in
    let next_chunk () =
      if not (Queue.is_empty requeued) then Some (Queue.pop requeued)
      else
        match !ranges with
        | [] -> None
        | (lo, hi) :: rest ->
            (* guided self-scheduling: a fraction of the remaining work,
               capped so a CHUNK message stays a short pipe write and a
               lost worker forfeits a bounded amount of recompute *)
            let size =
              min (hi - lo) (min 512 (max 1 (!remaining / (jobs * 2))))
            in
            ranges := if lo + size < hi then (lo + size, hi) :: rest else rest;
            remaining := !remaining - size;
            let id = !next_id in
            incr next_id;
            Some { id; lo; hi = lo + size; attempts = 0 }
    in
    let requeue_chunk ~reason (c : chunk) =
      c.attempts <- c.attempts + 1;
      stats.retries <- stats.retries + 1;
      if c.attempts > max_retries then
        raise
          (Chunk_failed { indices = chunk_indices c; attempts = c.attempts; reason })
      else begin
        progress
          (Printf.sprintf "requeueing chunk %d, attempt %d/%d (%s)" c.id
             (c.attempts + 1) (max_retries + 1) reason);
        Queue.push c requeued
      end
    in
    let workers : (int, worker) Hashtbl.t = Hashtbl.create jobs in
    let live_workers () = Hashtbl.fold (fun _ w acc -> w :: acc) workers [] in
    let spawn () =
      let cmd_r, cmd_w = Unix.pipe ~cloexec:false () in
      let msg_r, msg_w = Unix.pipe ~cloexec:false () in
      match Unix.fork () with
      | 0 ->
          Unix.close cmd_w;
          Unix.close msg_r;
          (* drop the parent's ends of every sibling's pipes, so a sibling
             sees EOF as soon as the parent closes its command pipe *)
          Hashtbl.iter
            (fun _ w ->
              (try Unix.close w.cmd_w with Unix.Unix_error _ -> ());
              (try Unix.close w.msg_r with Unix.Unix_error _ -> ()))
            workers;
          (match child_main ~dir ~f ~cmd_r ~msg_w with
          | () -> Unix._exit 0
          | exception _ -> Unix._exit 2)
      | pid ->
          Unix.close cmd_r;
          Unix.close msg_w;
          stats.workers_spawned <- stats.workers_spawned + 1;
          let w =
            {
              pid;
              cmd_w;
              msg_r;
              rbuf = Buffer.create 256;
              inflight = None;
              last_beat = now ();
              quitting = false;
              eof = false;
            }
          in
          Hashtbl.replace workers pid w;
          w
    in
    let send_to w line =
      match write_line w.cmd_w line with
      | () -> true
      | exception Unix.Unix_error ((EPIPE | EBADF), _, _) -> false
    in
    let assign w =
      match next_chunk () with
      | Some c ->
          w.inflight <- Some c;
          w.last_beat <- now ();
          stats.chunks_dispatched <- stats.chunks_dispatched + 1;
          (* a failed write means the worker is already dead; the waitpid
             poll will requeue the chunk *)
          ignore
            (send_to w
               (Printf.sprintf "CHUNK %d %s" c.id
                  (String.concat " " (List.map string_of_int (chunk_indices c)))))
      | None ->
          w.quitting <- true;
          ignore (send_to w "QUIT")
    in
    (* Remove [w] from the pool; requeue its in-flight chunk.  The message
       pipe is closed before requeueing, so a DONE the dead worker managed
       to send can never merge a chunk that is also being recomputed. *)
    let retire w ~lost ~reason =
      Hashtbl.remove workers w.pid;
      (try Unix.close w.cmd_w with Unix.Unix_error _ -> ());
      (try Unix.close w.msg_r with Unix.Unix_error _ -> ());
      if lost then stats.workers_lost <- stats.workers_lost + 1;
      match w.inflight with
      | Some c ->
          w.inflight <- None;
          requeue_chunk ~reason c
      | None -> ()
    in
    let reap_blocking pid =
      try ignore (Unix.waitpid [] pid)
      with Unix.Unix_error (ECHILD, _, _) -> ()
    in
    let merged = ref 0 in
    let merge_chunk w (c : chunk) ~reported =
      let path = res_path dir c.id in
      let parsed = parse_res_file ~max_index:total path in
      match parsed with
      | Some (rows, tlines)
        when reported = List.length rows && rows_cover ~lo:c.lo ~hi:c.hi rows ->
          on_verified c ~path ~rows ~tlines;
          List.iter emit tlines;
          merged := !merged + List.length rows;
          stats.chunks_completed <- stats.chunks_completed + 1;
          stats.rows_completed <- stats.rows_completed + List.length rows;
          let elapsed = now () -. started in
          let rate = float_of_int !merged /. max 1e-9 elapsed in
          let eta = float_of_int (todo - !merged) /. max 1e-9 rate in
          progress
            (Printf.sprintf
               "%d/%d rows done (chunk %d, %d rows, worker %d; %.1f rows/s, \
                ETA %.0fs)"
               !merged todo c.id (List.length rows) w.pid rate eta)
      | _ ->
          (* expected vs received cross-check failed: the file is missing,
             torn, or short a row — recompute the chunk *)
          (try Sys.remove path with Sys_error _ -> ());
          requeue_chunk
            ~reason:
              (Printf.sprintf "chunk %d: result rows do not match the %d expected"
                 c.id (c.hi - c.lo))
            c
    in
    let handle_line w line =
      match String.split_on_char ' ' line with
      | [ "HB"; _; _ ] -> w.last_beat <- now ()
      | [ "DONE"; id; nrows ] -> (
          w.last_beat <- now ();
          match w.inflight with
          | Some c
            when int_of_string_opt id = Some c.id
                 && Option.is_some (int_of_string_opt nrows) ->
              w.inflight <- None;
              merge_chunk w c ~reported:(int_of_string nrows);
              assign w
          | _ -> () (* stale or garbled; the poll paths recover *))
      | "ERR" :: id :: rest ->
          let indices, attempts =
            match w.inflight with
            | Some c when int_of_string_opt id = Some c.id ->
                (chunk_indices c, c.attempts + 1)
            | _ -> ([], 1)
          in
          raise
            (Chunk_failed
               { indices; attempts; reason = "worker error: " ^ String.concat " " rest })
      | _ -> ()
    in
    let rec drain_lines w =
      let s = Buffer.contents w.rbuf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
          Buffer.clear w.rbuf;
          Buffer.add_substring w.rbuf s (i + 1) (String.length s - i - 1);
          handle_line w (String.sub s 0 i);
          drain_lines w
    in
    let scratch = Bytes.create 65536 in
    let read_messages w =
      match Unix.read w.msg_r scratch 0 (Bytes.length scratch) with
      | 0 -> w.eof <- true
      | k ->
          Buffer.add_subbytes w.rbuf scratch 0 k;
          drain_lines w
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    let cleanup () =
      List.iter
        (fun w ->
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap_blocking w.pid;
          (try Unix.close w.cmd_w with Unix.Unix_error _ -> ());
          (try Unix.close w.msg_r with Unix.Unix_error _ -> ()))
        (live_workers ());
      Hashtbl.reset workers;
      if not keep_dir then (
        try
          Array.iter
            (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
            (Sys.readdir dir);
          Unix.rmdir dir
        with Sys_error _ | Unix.Unix_error _ -> ())
    in
    (* the parent writes into worker pipes that may vanish under it: turn
       SIGPIPE into EPIPE for the duration of the run *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let restore_sigpipe () =
      match old_sigpipe with
      | Some h -> ( try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
      | None -> ()
    in
    Fun.protect
      ~finally:(fun () ->
        restore_sigpipe ();
        cleanup ())
      (fun () ->
        while !merged < todo do
          (* keep the pool at strength while there is queued work; [assign]
             immediately hands each fresh worker a chunk *)
          while
            pending_work ()
            && List.length
                 (List.filter (fun w -> not w.quitting) (live_workers ()))
               < jobs
          do
            assign (spawn ())
          done;
          (* 1. messages: heartbeats, completions, errors *)
          let readable = List.filter (fun w -> not w.eof) (live_workers ()) in
          let fds = List.map (fun w -> w.msg_r) readable in
          let ready, _, _ =
            if fds = [] then ([], [], [])
            else
              try Unix.select fds [] [] 0.05
              with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun w -> if List.mem w.msg_r ready then read_messages w)
            readable;
          (* 2. death poll: reap exited workers, requeue their chunks *)
          List.iter
            (fun w ->
              match Unix.waitpid [ Unix.WNOHANG ] w.pid with
              | 0, _ -> ()
              | _, status ->
                  retire w
                    ~lost:(not (w.quitting && w.inflight = None))
                    ~reason:(Printf.sprintf "worker %d %s" w.pid (status_to_string status))
              | exception Unix.Unix_error (ECHILD, _, _) ->
                  retire w ~lost:false ~reason:"already reaped")
            (live_workers ());
          (* 3. heartbeat: a worker that holds a chunk but has gone silent
             is presumed hung; kill it and recompute the chunk *)
          List.iter
            (fun w ->
              if
                w.inflight <> None
                && now () -. w.last_beat > heartbeat_timeout_ms /. 1000.
              then begin
                stats.heartbeat_kills <- stats.heartbeat_kills + 1;
                (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
                reap_blocking w.pid;
                retire w ~lost:true
                  ~reason:
                    (Printf.sprintf "worker %d silent for %.0f ms" w.pid
                       heartbeat_timeout_ms)
              end)
            (live_workers ())
        done;
        (* all rows merged: release the pool *)
        List.iter
          (fun w ->
            if not w.quitting then ignore (send_to w "QUIT");
            reap_blocking w.pid;
            (try Unix.close w.cmd_w with Unix.Unix_error _ -> ());
            (try Unix.close w.msg_r with Unix.Unix_error _ -> ()))
          (live_workers ());
        Hashtbl.reset workers;
        stats)
  end

let map ~jobs ?(max_retries = 2) ?(heartbeat_timeout_ms = 300_000.)
    ?(progress = fun _ -> ()) ?(emit = fun _ -> ()) ~f n =
  if n = 0 then ([||], Telemetry.Scheduler.create ())
  else begin
    let dir = Filename.temp_dir "specrepair_sched_" "" in
    let results : string option array = Array.make n None in
    let on_verified _c ~path ~rows ~tlines:_ =
      List.iter (fun (i, r) -> results.(i) <- Some r) rows;
      try Sys.remove path with Sys_error _ -> ()
    in
    let stats =
      run_core ~jobs ~max_retries ~heartbeat_timeout_ms ~progress ~emit ~dir
        ~keep_dir:false
        ~pending:[ (0, n) ]
        ~total:n ~on_verified ~f ()
    in
    ( Array.mapi
        (fun i r ->
          match r with
          | Some line -> line
          | None ->
              raise
                (Chunk_failed
                   {
                     indices = [ i ];
                     attempts = 0;
                     reason = "internal: row never merged";
                   }))
        results,
      stats )
  end

(* {2 Checkpointed streaming mode} *)

(* Verify that the shard backing a completed range still parses and
   covers exactly its rows; anything less means the checkpoint lies. *)
let verify_shard ~dir ~total (lo, hi) =
  let path = shard_path dir ~lo ~hi in
  match parse_res_file ~max_index:total path with
  | None ->
      raise
        (Manifest.Corrupt
           (Printf.sprintf
              "manifest records [%d, %d) complete but %s is missing or torn" lo
              hi path))
  | Some (rows, _) ->
      if not (rows_cover ~lo ~hi rows) then
        raise
          (Manifest.Corrupt
             (Printf.sprintf "%s does not cover its recorded range [%d, %d)"
                path lo hi))

(* Leftover chunk files (a crash between a worker's rename and the
   parent's checkpoint) are recomputed, never trusted. *)
let sweep_stray_chunks dir =
  Array.iter
    (fun f ->
      if String.length f >= 6 && String.sub f 0 6 = "chunk_" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir)

let map_checkpointed ~jobs ?(max_retries = 2) ?(heartbeat_timeout_ms = 300_000.)
    ?(progress = fun _ -> ()) ?(emit = fun _ -> ()) ?(resume = false) ~dir
    ~fingerprint ~f n =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let manifest =
    if resume then begin
      let m = Manifest.load ~dir in
      if m.Manifest.fingerprint <> fingerprint then
        raise
          (Manifest.Corrupt
             (Printf.sprintf
                "run parameters changed: manifest fingerprint %S, expected %S"
                m.Manifest.fingerprint fingerprint));
      if m.Manifest.total <> n then
        raise
          (Manifest.Corrupt
             (Printf.sprintf "manifest total %d, expected %d" m.Manifest.total n));
      List.iter (verify_shard ~dir ~total:n) m.Manifest.completed;
      progress
        (Printf.sprintf "resuming: %d/%d rows already checkpointed"
           (Manifest.rows_done m) n);
      ref m
    end
    else begin
      (match Manifest.load ~dir with
      | exception Manifest.Corrupt _ -> ()
      | m when Manifest.rows_done m > 0 ->
          failwith
            (Printf.sprintf
               "Scheduler.map_checkpointed: %s already holds a checkpoint with \
                %d completed rows; pass ~resume:true to continue it or use a \
                fresh directory"
               dir (Manifest.rows_done m))
      | _ -> ());
      let m = Manifest.create ~fingerprint ~total:n in
      Manifest.save ~dir m;
      ref m
    end
  in
  sweep_stray_chunks dir;
  let crash_after = chaos_crash_after () in
  let completed_this_run = ref 0 in
  let on_verified (c : chunk) ~path ~rows:_ ~tlines:_ =
    (* shard first, checkpoint second: the manifest only ever vouches for
       a shard that is already in place *)
    Sys.rename path (shard_path dir ~lo:c.lo ~hi:c.hi);
    manifest := Manifest.add !manifest ~lo:c.lo ~hi:c.hi;
    Manifest.save ~dir !manifest;
    incr completed_this_run;
    match crash_after with
    | Some k when !completed_this_run >= k ->
        Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ()
  in
  let pending = Manifest.pending !manifest in
  let stats =
    run_core ~jobs ~max_retries ~heartbeat_timeout_ms ~progress ~emit ~dir
      ~keep_dir:true ~pending ~total:n ~on_verified ~f ()
  in
  stats

let fold_shards ~dir f acc =
  let m = Manifest.load ~dir in
  if not (Manifest.is_complete m) then
    failwith
      (Printf.sprintf
         "Scheduler.fold_shards: run in %s is incomplete (%d/%d rows); resume \
          it first"
         dir (Manifest.rows_done m) m.Manifest.total);
  List.fold_left
    (fun acc (lo, hi) ->
      verify_shard ~dir ~total:m.Manifest.total (lo, hi);
      match parse_res_file ~max_index:m.Manifest.total (shard_path dir ~lo ~hi) with
      | None -> assert false (* verify_shard just accepted it *)
      | Some (rows, _) ->
          (* one shard (≤ 512 rows) in memory at a time *)
          let in_order = List.sort (fun (a, _) (b, _) -> compare a b) rows in
          List.fold_left (fun acc (i, r) -> f acc i r) acc in_order)
    acc m.Manifest.completed

let () =
  Printexc.register_printer (function
    | Chunk_failed { indices; attempts; reason } ->
        Some
          (Printf.sprintf
             "Scheduler.Chunk_failed: rows [%s] failed after %d attempt(s): %s"
             (String.concat "; " (List.map string_of_int indices))
             attempts reason)
    | _ -> None)
