(** Renderers for the paper's tables and figures from raw study results.

    Each function returns plain text (fixed-width tables / series listings)
    that mirrors the corresponding artifact:
    - {!table1}: REP counts per domain per technique (Table I),
    - {!fig2}: mean TM and SM per technique (Figure 2's bar data),
    - {!fig3}: Pearson correlation matrix between techniques with
      significance (Figure 3's heatmap data),
    - {!table2}: hybrid traditional x LLM combinations — individual counts,
      overlap, unique union (Table II, the numbers behind Figure 4's Venn
      diagrams). *)

val table1 : Study.spec_result list -> string
val fig2 : Study.spec_result list -> string
val fig3 : Study.spec_result list -> string
val table2 : Study.spec_result list -> string
val summary : Study.spec_result list -> string
(** Headline findings (top technique, best hybrid, rates), Section IV prose. *)

(** {2 Raw accessors, used by tests and the bench harness} *)

val rep_count : Study.spec_result list -> technique:string -> int
val rep_count_in :
  Study.spec_result list ->
  technique:string ->
  benchmark:Specrepair_benchmarks.Domains.benchmark ->
  int
val mean_tm : Study.spec_result list -> technique:string -> float
val mean_sm : Study.spec_result list -> technique:string -> float
val correlation :
  Study.spec_result list -> t1:string -> t2:string -> float * float
(** Pearson r and p over per-variant match scores ((TM+SM)/2). *)

val hybrid :
  Study.spec_result list -> traditional:string -> llm:string -> int * int * int
(** (traditional repairs, overlap, unique union). *)

(** {2 Panel coverage (Table III)} *)

val panel_coverage :
  Study.spec_result list -> (string * int * string list) list * string list
(** Per-profile (name, LLM techniques present, repaired variant-id set) in
    panel order, plus the panel union set — the data behind
    {!panel_table}.  A profile with no techniques in the results is
    omitted. *)

val panel_table : Study.spec_result list -> string
(** The hybrid coverage table extending the paper's union analysis across
    the model panel: per-profile repair coverage and the panel union, with
    a final strictly-exceeds verdict line. *)

(** {2 Machine-readable artifacts (CSV)} *)

val table1_csv : Study.spec_result list -> string
val fig2_csv : Study.spec_result list -> string
val fig3_csv : Study.spec_result list -> string
val table2_csv : Study.spec_result list -> string
val panel_table_csv : Study.spec_result list -> string
