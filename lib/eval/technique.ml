module Llm = Specrepair_llm

type t =
  | ARepair
  | ICEBAR
  | BeAFix
  | ATR
  | Single of Llm.Prompt.single_setting * Llm.Model.profile
  | Multi of Llm.Multi_round.feedback * Llm.Model.profile

let traditional = [ ARepair; ICEBAR; BeAFix; ATR ]

let llm_for profile =
  List.map (fun s -> Single (s, profile)) Llm.Prompt.all_single_settings
  @ List.map (fun f -> Multi (f, profile)) Llm.Multi_round.all_feedbacks

let llm_based = llm_for Llm.Model.gpt4

let all = traditional @ llm_based

let profile_of = function
  | Single (_, p) | Multi (_, p) -> Some p
  | ARepair | ICEBAR | BeAFix | ATR -> None

let with_profile p = function
  | Single (s, _) -> Single (s, p)
  | Multi (f, _) -> Multi (f, p)
  | t -> t

(* The default profile keeps the bare paper labels ("Multi-Round_Auto"),
   so CSVs and tables from panel-free runs stay byte-identical to the
   pre-panel baseline; other panel members are suffixed "@<profile>". *)
let suffix (p : Llm.Model.profile) =
  if p.name = Llm.Model.gpt4.name then "" else "@" ^ p.name

let name = function
  | ARepair -> "ARepair"
  | ICEBAR -> "ICEBAR"
  | BeAFix -> "BeAFix"
  | ATR -> "ATR"
  | Single (s, p) -> Llm.Single_round.tool_name s ^ suffix p
  | Multi (f, p) -> Llm.Multi_round.tool_name f ^ suffix p

let of_name n =
  match String.index_opt n '@' with
  | None -> List.find_opt (fun t -> name t = n) all
  | Some i -> (
      let base = String.sub n 0 i in
      let pname = String.sub n (i + 1) (String.length n - i - 1) in
      match Llm.Model.profile_of_name pname with
      | None -> None
      | Some p -> (
          match List.find_opt (fun t -> name t = base) all with
          | Some (Single _ as t) | Some (Multi _ as t) ->
              Some (with_profile p t)
          | Some _ | None -> None))
